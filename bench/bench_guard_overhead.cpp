// Guard overhead on owner-computes loops (paper §2.4): the idiomatic XDP
// loop `for i in 1..n: if iown(A[i]) A[i] = ...` evaluates an ownership
// guard every iteration. Compares three schedules of the same loop:
//   unguarded      — mylb/myub bounds, no guard at all (the floor)
//   guarded/naive  — per-iteration iown query (splitGuardedLoops off)
//   guarded/split  — one ownedRanges query, owned subranges run unguarded
// The fast path is meant to put guarded throughput within ~1.5x of the
// unguarded floor instead of paying a runtime-table query per element.
#include <benchmark/benchmark.h>

#include "xdp/interp/interpreter.hpp"

using namespace xdp;

namespace {

constexpr int kProcs = 4;

il::Program makeProg(sec::Index n, bool guarded) {
  il::Program prog;
  prog.nprocs = kProcs;
  sec::Section g{sec::Triplet(1, n)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 dist::Distribution(g, {dist::DimSpec::block(kProcs)}),
                 {}});
  il::ExprPtr i = il::scalar("i");
  il::StmtPtr writeA = il::elemAssign(
      0, il::secPoint({i}), il::mul(il::scalar("i"), il::realConst(0.5)));
  if (guarded) {
    prog.body = il::block({il::forLoop(
        "i", il::intConst(1), il::intConst(n),
        il::block({il::guarded(
            il::iown(0, il::secPoint({il::scalar("i")})),
            il::block({std::move(writeA)}))}))});
  } else {
    il::SectionExprPtr all = il::secLit(
        {il::TripletExpr{il::intConst(1), il::intConst(n), {}}});
    prog.body = il::block({il::forLoop("i", il::mylb(0, all, 0),
                                       il::myub(0, all, 0),
                                       il::block({std::move(writeA)}))});
  }
  return prog;
}

void runLoop(benchmark::State& state, bool guarded, bool split) {
  const sec::Index n = state.range(0);
  interp::InterpOptions io;
  io.splitGuardedLoops = split;
  interp::InterpStats last;
  for (auto _ : state) {
    interp::Interpreter in(makeProg(n, guarded), {}, io);
    in.run();
    last = in.totalStats();
    benchmark::DoNotOptimize(&last);
  }
  // Every element is written exactly once by its owner per run.
  state.counters["elems/s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["range_splits"] = static_cast<double>(last.rangeSplits);
  state.counters["iters_saved"] =
      static_cast<double>(last.guardedItersSaved);
  state.counters["cache_hits"] = static_cast<double>(last.guardCacheHits);
  state.SetLabel(!guarded ? "unguarded"
                          : (split ? "guarded/split" : "guarded/naive"));
}

void BM_LoopUnguarded(benchmark::State& state) {
  runLoop(state, false, false);
}
void BM_LoopGuardedNaive(benchmark::State& state) {
  runLoop(state, true, false);
}
void BM_LoopGuardedSplit(benchmark::State& state) {
  runLoop(state, true, true);
}

}  // namespace

BENCHMARK(BM_LoopUnguarded)
    ->Arg(1024)->Arg(16384)->Arg(131072)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoopGuardedNaive)
    ->Arg(1024)->Arg(16384)->Arg(131072)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoopGuardedSplit)
    ->Arg(1024)->Arg(16384)->Arg(131072)
    ->Unit(benchmark::kMillisecond);
