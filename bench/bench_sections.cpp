// E4 — section algebra microbenchmarks (paper Fig. 3 substrate): triplet
// intersection under various stride relationships, multi-dimensional
// section intersection, the coverage check behind iown(), and set
// difference (the segment-splitting primitive of ownership transfer).
#include <benchmark/benchmark.h>

#include "xdp/dist/segmentation.hpp"
#include "xdp/sections/region_list.hpp"

using namespace xdp::sec;
using xdp::dist::DimSpec;
using xdp::dist::Distribution;
using xdp::dist::SegmentShape;

namespace {

void BM_TripletIntersectUnitStride(benchmark::State& state) {
  Triplet a(1, 100000);
  Triplet b(50000, 150000);
  for (auto _ : state) benchmark::DoNotOptimize(Triplet::intersect(a, b));
}

void BM_TripletIntersectCoprimeStrides(benchmark::State& state) {
  // Worst case for the CRT path: large coprime strides.
  Triplet a(0, 1000000, 7919);
  Triplet b(3, 1000000, 104729);
  for (auto _ : state) benchmark::DoNotOptimize(Triplet::intersect(a, b));
}

void BM_TripletSubtract(benchmark::State& state) {
  Triplet a(1, 100000);
  Triplet b(5000, 90000, state.range(0));
  for (auto _ : state) {
    auto rest = Triplet::subtract(a, b);
    benchmark::DoNotOptimize(rest);
  }
  state.counters["pieces"] =
      static_cast<double>(Triplet::subtract(a, b).size());
}

void BM_SectionIntersect(benchmark::State& state) {
  const int rank = static_cast<int>(state.range(0));
  std::vector<Triplet> da, db;
  for (int d = 0; d < rank; ++d) {
    da.emplace_back(1, 1024, d + 1);
    db.emplace_back(512, 2048, d + 2);
  }
  Section a(da), b(db);
  for (auto _ : state) benchmark::DoNotOptimize(Section::intersect(a, b));
  state.counters["rank"] = rank;
}

void BM_CoverageCheck(benchmark::State& state) {
  // The iown() algorithm of section 3.1 at the RegionList level: coverage
  // of a query by `pieces` disjoint sections.
  const int pieces = static_cast<int>(state.range(0));
  RegionList rl;
  const Index per = 4096 / pieces;
  for (int i = 0; i < pieces; ++i)
    rl.add(Section{Triplet(i * per + 1, (i + 1) * per)});
  Section query{Triplet(1000, 3000)};
  for (auto _ : state) benchmark::DoNotOptimize(rl.covers(query));
  state.counters["pieces"] = pieces;
}

void BM_SectionSubtract2D(benchmark::State& state) {
  // Segment splitting: carve a window out of a plane.
  Section a{Triplet(1, 1024), Triplet(1, 1024)};
  Section b{Triplet(100, 900), Triplet(200, 800)};
  for (auto _ : state) {
    auto rest = Section::subtract(a, b);
    benchmark::DoNotOptimize(rest);
  }
}

void BM_LocalPartCompute(benchmark::State& state) {
  // Ownership layout computation per distribution kind.
  Section g{Triplet(1, 4096), Triplet(1, 4096)};
  Distribution d =
      state.range(0) == 0
          ? Distribution(g, {DimSpec::block(4), DimSpec::block(4)})
          : state.range(0) == 1
                ? Distribution(g, {DimSpec::block(4), DimSpec::cyclic(4)})
                : Distribution(g, {DimSpec::blockCyclic(4, 16),
                                   DimSpec::blockCyclic(4, 16)});
  for (auto _ : state) benchmark::DoNotOptimize(d.localPart(5));
  state.SetLabel(state.range(0) == 0   ? "(BLOCK,BLOCK)"
                 : state.range(0) == 1 ? "(BLOCK,CYCLIC)"
                                       : "(CYCLIC(16),CYCLIC(16))");
}

void BM_Segmentation(benchmark::State& state) {
  Section g{Triplet(1, 1024), Triplet(1, 1024)};
  Distribution d(g, {DimSpec::block(2), DimSpec::block(2)});
  const Index tile = state.range(0);
  for (auto _ : state) {
    auto segs = xdp::dist::segmentsOf(d, 3, SegmentShape::of({tile, tile}));
    benchmark::DoNotOptimize(segs);
  }
  state.counters["tile"] = static_cast<double>(tile);
}

}  // namespace

BENCHMARK(BM_TripletIntersectUnitStride);
BENCHMARK(BM_TripletIntersectCoprimeStrides);
BENCHMARK(BM_TripletSubtract)->Arg(1)->Arg(2)->Arg(5)->Arg(50);
BENCHMARK(BM_SectionIntersect)->Arg(1)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_CoverageCheck)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_SectionSubtract2D);
BENCHMARK(BM_LocalPartCompute)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Segmentation)->Arg(16)->Arg(64)->Arg(256);
