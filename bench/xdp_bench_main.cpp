// Shared entry point for every XDP benchmark binary. Replaces
// benchmark::benchmark_main so each run emits machine-readable results —
// name, args/config, repetitions, ns/op, and rate counters — to
// BENCH_<exe>.json alongside the usual console table. The JSON lands in
// the working directory unless XDP_BENCH_JSON_DIR points elsewhere, so
// before/after comparisons are a `diff`/`jq` away. An explicit
// --benchmark_out on the command line wins over the default path.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

std::string exeBaseName(const char* argv0) {
  std::string s = argv0 ? argv0 : "bench";
  const auto pos = s.find_last_of("/\\");
  if (pos != std::string::npos) s = s.substr(pos + 1);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool haveOut = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) haveOut = true;

  const char* dir = std::getenv("XDP_BENCH_JSON_DIR");
  const std::string outFlag =
      "--benchmark_out=" +
      (dir && *dir ? std::string(dir) + "/" : std::string()) + "BENCH_" +
      exeBaseName(argc > 0 ? argv[0] : nullptr) + ".json";
  const std::string fmtFlag = "--benchmark_out_format=json";

  std::vector<char*> args(argv, argv + argc);
  if (!haveOut) {
    args.push_back(const_cast<char*>(outFlag.c_str()));
    args.push_back(const_cast<char*>(fmtFlag.c_str()));
  }
  int nargs = static_cast<int>(args.size());
  args.push_back(nullptr);

  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
