// Bytecode backend benchmarks: compilation throughput of the flat-IL
// pipeline (flatten + bc::compile, in statements/s), and execution
// throughput of the two interpreter backends on IL programs the VM can
// compile hot.
//
// Counters (deterministic ones are gated by PERF_TRAJECTORY.json):
//   stmts_per_s       flat statement rows compiled per second (rate)
//   flat_nodes        flat::FlatProgram::nodeCount() (deterministic)
//   hot / cold        bc::Module statement split (deterministic)
//   logical_ops       stmts + loop iters + rule evals + elem assigns,
//                     summed over processors; must be identical for both
//                     backends on the same program (deterministic)
//   logical_ops_per_s backend throughput on those ops (rate) — the
//                     tree-walk vs VM rows are the speedup measurement
#include <benchmark/benchmark.h>

#include "xdp/il/flat.hpp"
#include "xdp/il/program.hpp"
#include "xdp/interp/bytecode.hpp"
#include "xdp/interp/interpreter.hpp"

using namespace xdp;

namespace {

/// A synthetic program with ~n top-level statements mixing the kinds the
/// compiler sees in practice: scalar arithmetic, element loops, and
/// ownership-guarded compute.
il::Program buildSynthetic(int n) {
  il::Program prog;
  prog.nprocs = 2;
  sec::Section g{sec::Triplet(1, 64)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 dist::Distribution(g, {dist::DimSpec::block(2)}), {}});
  std::vector<il::StmtPtr> body;
  for (int k = 0; k < n; ++k) {
    switch (k % 3) {
      case 0:
        body.push_back(il::scalarAssign(
            "s" + std::to_string(k % 8),
            il::add(il::intConst(k), il::mul(il::intConst(3),
                                             il::intConst(k % 7)))));
        break;
      case 1:
        body.push_back(il::forLoop(
            "i", il::intConst(1), il::intConst(8),
            il::block({il::elemAssign(
                0, il::secPoint({il::scalar("i")}),
                il::add(il::elem(0, il::secPoint({il::scalar("i")})),
                        il::realConst(0.5)))})));
        break;
      default:
        body.push_back(il::guarded(
            il::iown(0, il::secPoint({il::intConst(k % 64 + 1)})),
            il::block({il::computeCost(il::intConst(1))})));
        break;
    }
  }
  prog.body = il::block(std::move(body));
  return prog;
}

void BM_FlattenCompile(benchmark::State& state) {
  il::Program prog = buildSynthetic(static_cast<int>(state.range(0)));
  std::size_t flatStmts = 0, nodes = 0;
  std::uint32_t hot = 0, cold = 0;
  for (auto _ : state) {
    il::flat::FlatProgram fp = il::flat::flatten(prog);
    interp::bc::Module m = interp::bc::compile(fp);
    benchmark::DoNotOptimize(m.code.data());
    flatStmts = fp.stmts.size();
    nodes = fp.nodeCount();
    hot = m.hotStmts;
    cold = m.coldStmts;
  }
  state.counters["stmts_per_s"] = benchmark::Counter(
      static_cast<double>(flatStmts) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["flat_nodes"] = static_cast<double>(nodes);
  state.counters["hot"] = static_cast<double>(hot);
  state.counters["cold"] = static_cast<double>(cold);
}

/// Guard-free 3-point stencil over n elements (kSweeps sweeps). Every
/// statement compiles hot, so this is the VM's best case: the number it
/// reports is the headline tree-walk vs VM logical-op throughput.
il::Program buildStencil(sec::Index n) {
  il::Program prog;
  prog.nprocs = 1;
  sec::Section g{sec::Triplet(1, n)};
  dist::Distribution d(g, {dist::DimSpec::block(1)});
  prog.addArray({"A", rt::ElemType::F64, g, d, {}});
  prog.addArray({"B", rt::ElemType::F64, g, d, {}});
  auto pt = [](il::ExprPtr e) { return il::secPoint({std::move(e)}); };
  auto i = [] { return il::scalar("i"); };
  std::vector<il::StmtPtr> body;
  body.push_back(il::forLoop(
      "i", il::intConst(1), il::intConst(n),
      il::block({
          il::elemAssign(1, pt(i()),
                         il::mul(il::realConst(0.3), i())),
          il::elemAssign(0, pt(i()), il::realConst(0.0)),
      })));
  constexpr int kSweeps = 8;
  body.push_back(il::forLoop(
      "t", il::intConst(1), il::intConst(kSweeps),
      il::block({
          il::forLoop(
              "i", il::intConst(2), il::intConst(n - 1),
              il::block({il::elemAssign(
                  0, pt(i()),
                  il::add(
                      il::mul(il::realConst(0.25),
                              il::elem(1, pt(il::sub(i(), il::intConst(1))))),
                      il::add(il::mul(il::realConst(0.5),
                                      il::elem(1, pt(i()))),
                              il::mul(il::realConst(0.25),
                                      il::elem(1, pt(il::add(
                                                  i(), il::intConst(1))))))))})),
          il::forLoop("i", il::intConst(2), il::intConst(n - 1),
                      il::block({il::elemAssign(1, pt(i()),
                                                il::elem(0, pt(i())))})),
      })));
  prog.body = il::block(std::move(body));
  return prog;
}

/// The same stencil under per-iteration iown guards on 4 processors —
/// jacobi-shaped owner-computes code, where every guard is a cold
/// EvalRule callback into ProcTable. Shows what guards cost both engines.
il::Program buildGuardedStencil(sec::Index n) {
  il::Program prog;
  prog.nprocs = 4;
  sec::Section g{sec::Triplet(1, n)};
  dist::Distribution d(g, {dist::DimSpec::block(4)});
  prog.addArray({"A", rt::ElemType::F64, g, d, {}});
  auto pt = [](il::ExprPtr e) { return il::secPoint({std::move(e)}); };
  auto i = [] { return il::scalar("i"); };
  constexpr int kSweeps = 8;
  prog.body = il::block({
      il::forLoop("i", il::intConst(1), il::intConst(n),
                  il::block({il::guarded(
                      il::iown(0, pt(i())),
                      il::block({il::elemAssign(
                          0, pt(i()), il::mul(il::realConst(0.1), i()))}))})),
      il::forLoop(
          "t", il::intConst(1), il::intConst(kSweeps),
          il::block({il::forLoop(
              "i", il::intConst(1), il::intConst(n),
              il::block({il::guarded(
                  il::iown(0, pt(i())),
                  il::block({il::elemAssign(
                      0, pt(i()),
                      il::add(il::elem(0, pt(i())),
                              il::realConst(1.0)))}))}))})),
  });
  return prog;
}

std::uint64_t logicalOps(const interp::InterpStats& s) {
  return s.stmtsExecuted + s.loopIterations + s.rulesEvaluated +
         s.elemAssigns;
}

void runExec(benchmark::State& state, const il::Program& prog) {
  interp::InterpOptions io;
  io.backend = state.range(0) == 0 ? interp::Backend::TreeWalk
                                   : interp::Backend::Bytecode;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    interp::Interpreter in(prog, {}, io);
    in.run();
    ops = logicalOps(in.totalStats());
  }
  state.counters["logical_ops"] = static_cast<double>(ops);
  state.counters["logical_ops_per_s"] = benchmark::Counter(
      static_cast<double>(ops) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(state.range(0) == 0 ? "tree-walk" : "bytecode-vm");
}

void BM_StencilExec(benchmark::State& state) {
  runExec(state, buildStencil(state.range(1)));
}

void BM_GuardedStencilExec(benchmark::State& state) {
  runExec(state, buildGuardedStencil(state.range(1)));
}

}  // namespace

BENCHMARK(BM_FlattenCompile)->Arg(64)->Arg(1024);
// Process CPU time: the SPMD runtime executes on worker threads, so the
// calling thread's CPU misses the interpreter work and wall time is
// mostly thread orchestration on small runs. Process CPU counts the
// interpreter itself, and the rate counters divide by it.
BENCHMARK(BM_StencilExec)
    ->ArgsProduct({{0, 1}, {256, 4096}})
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime();
BENCHMARK(BM_GuardedStencilExec)
    ->ArgsProduct({{0, 1}, {256}})
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime();
