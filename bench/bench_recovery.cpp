// E15 — checkpoint/restore cost: what crash tolerance charges the
// fault-free path and what recovery itself costs. Four figures:
//
//   * BM_CheckpointedRun — steady-state overhead of auto-checkpointing
//     the 4-proc jacobi at interval 0 (off) / 64 / 256 statements;
//   * BM_SnapshotEncode / BM_SnapshotDecode — wire-format throughput on
//     the deterministic genesis snapshot (the encode half is the capture
//     hot path, the decode half is restore admission);
//   * BM_RestoreResume — end-to-end restore latency: a fresh runtime
//     adopts a mid-run snapshot and replays the remaining statements;
//   * BM_CrashRecover — a full fail-recover run: endpoint dies on its
//     first send, rolls back to the last snapshot, replays to the
//     fault-free digest.
//
// The perf trajectory gates the deterministic counters (genesis snapshot
// bytes/records, recovery count); wall time is never gated.
#include <benchmark/benchmark.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "xdp/apps/fft.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/ckpt/io.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/interp/interpreter.hpp"

using namespace xdp;

namespace {

il::Program loadExample(const char* name) {
  std::ifstream in(std::string(XDP_PROGRAMS_DIR) + "/" + name);
  std::stringstream buf;
  buf << in.rdbuf();
  return il::parseProgram(buf.str());
}

const il::Program& jacobi() {
  static const il::Program prog = loadExample("jacobi.xdp");
  return prog;
}

rt::RuntimeOptions withPlan(std::optional<net::FaultPlan> plan = {}) {
  rt::RuntimeOptions opts;
  opts.faultPlan = std::move(plan);
  return opts;
}

void setupCkpt(interp::Interpreter& in, std::uint64_t intervalSteps) {
  ckpt::CkptOptions co;
  co.intervalSteps = intervalSteps;
  in.runtime().enableCheckpointing(co);
  apps::registerFillKernel(in, 42);
  apps::registerFftKernels(in);
}

/// The genesis snapshot (taken before any node thread runs) — the one
/// capture whose bytes are bit-deterministic, so the trajectory can pin
/// it exactly.
const ckpt::Snapshot& genesisSnapshot() {
  static const ckpt::Snapshot snap = [] {
    interp::Interpreter in(jacobi(), withPlan(), {});
    setupCkpt(in, 0);
    in.run();
    return in.runtime().ckptStore()->loadLatestGood();
  }();
  return snap;
}

/// A mid-run interval capture: realistic restore input (the exact cut
/// depends on scheduling, so only its wall time is interesting).
const std::vector<std::byte>& midRunSnapshotBytes() {
  static const std::vector<std::byte> encoded = [] {
    interp::Interpreter in(jacobi(), withPlan(), {});
    setupCkpt(in, 64);
    in.run();
    return ckpt::encodeSnapshot(in.runtime().ckptStore()->loadLatestGood());
  }();
  return encoded;
}

void BM_CheckpointedRun(benchmark::State& state) {
  const std::uint64_t interval = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t snapshots = 0, bytes = 0;
  for (auto _ : state) {
    if (interval == 0) {
      // Baseline: checkpointing machinery absent entirely.
      interp::Interpreter in(jacobi(), {}, {});
      apps::registerFillKernel(in, 42);
      apps::registerFftKernels(in);
      in.run();
    } else {
      interp::Interpreter in(jacobi(), withPlan(), {});
      setupCkpt(in, interval);
      in.run();
      const ckpt::StoreStats& cs = in.runtime().ckptStore()->stats();
      snapshots = cs.snapshots;
      bytes = cs.totalBytes;
    }
  }
  state.counters["snapshots"] = static_cast<double>(snapshots);
  state.counters["snapshot_bytes_total"] = static_cast<double>(bytes);
  state.SetLabel(interval == 0 ? "checkpointing off"
                               : "every " + std::to_string(interval));
}

void BM_SnapshotEncode(benchmark::State& state) {
  const ckpt::Snapshot& snap = genesisSnapshot();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::vector<std::byte> enc = ckpt::encodeSnapshot(snap);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["snapshot_records"] =
      static_cast<double>(ckpt::snapshotRecordCount(snap));
  state.counters["bytes_per_s"] = benchmark::Counter(
      static_cast<double>(bytes) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_SnapshotDecode(benchmark::State& state) {
  const std::vector<std::byte> enc =
      ckpt::encodeSnapshot(genesisSnapshot());
  for (auto _ : state) {
    ckpt::Snapshot snap = ckpt::decodeSnapshot(enc);
    benchmark::DoNotOptimize(snap);
  }
  state.counters["bytes_per_s"] = benchmark::Counter(
      static_cast<double>(enc.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_RestoreResume(benchmark::State& state) {
  const std::vector<std::byte>& enc = midRunSnapshotBytes();
  std::uint64_t tailStmts = 0;
  for (auto _ : state) {
    interp::Interpreter in(jacobi(), withPlan(), {});
    setupCkpt(in, 0);
    in.runtime().restoreFrom(ckpt::decodeSnapshot(enc));
    in.run();
    tailStmts = in.totalStats().stmtsExecuted;
  }
  state.counters["tail_stmts"] = static_cast<double>(tailStmts);
}

void BM_CrashRecover(benchmark::State& state) {
  net::FaultPlan plan;
  for (int p = 0; p < jacobi().nprocs; ++p) plan.crashPids.push_back(p);
  plan.crashAfterSends = 0;  // first send from any endpoint kills it
  plan.crashFate = net::CrashFate::Recover;
  std::uint64_t recoveries = 0;
  for (auto _ : state) {
    interp::Interpreter in(jacobi(), withPlan(plan), {});
    setupCkpt(in, 32);
    in.run();
    recoveries = in.runtime().recoveries();
  }
  state.counters["recoveries"] = static_cast<double>(recoveries);
}

}  // namespace

BENCHMARK(BM_CheckpointedRun)
    ->Arg(0)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotEncode)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotDecode)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RestoreResume)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CrashRecover)->Unit(benchmark::kMillisecond);
