// E6 — load balancing by data-ownership migration and by the section-2.7
// task farm, versus static owner-computes, under increasing task-cost
// skew.
//
// Work is modeled with sleeps so the simulated processors really overlap
// (even on a single-core host), and wall time is the measured quantity:
// static scheduling degrades with skew while both XDP schemes stay near
// the balanced ideal. UseRealTime + few iterations: each run sleeps for
// real milliseconds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "xdp/apps/workloads.hpp"
#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

namespace {

constexpr int kProcs = 4;
constexpr int kTasks = 64;
constexpr double kCost0 = 2e-4;  // ~13ms of total work per run

void work(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

std::vector<double> costsFor(const benchmark::State& state) {
  const double skew = 1.0 + static_cast<double>(state.range(0)) / 100.0;
  return apps::skewedCosts(kTasks, kCost0, skew, 42);
}

void BM_Static(benchmark::State& state) {
  auto costs = costsFor(state);
  for (auto _ : state) {
    rt::Runtime runtime(kProcs);
    Section g{Triplet(1, kTasks)};
    const int W = runtime.declareArray<double>(
        "W", g, Distribution(g, {DimSpec::block(kProcs)}),
        dist::SegmentShape::of({1}));
    runtime.run([&](rt::Proc& p) {
      for (Index t = 1; t <= kTasks; ++t) {
        if (p.iown(W, Section{Triplet(t)}))
          work(costs[static_cast<std::size_t>(t - 1)]);
      }
    });
  }
  state.counters["skew_pct"] = static_cast<double>(state.range(0));
}

void BM_TaskFarm(benchmark::State& state) {
  auto costs = costsFor(state);
  for (auto _ : state) {
    rt::Runtime runtime(kProcs);
    Section g{Triplet(0, 0)};
    const int W = runtime.declareArray<double>(
        "W", g, Distribution(g, {DimSpec::block(1)}),
        dist::SegmentShape::of({1}));
    Section gp{Triplet(0, kProcs - 1)};
    const int M = runtime.declareArray<double>(
        "M", gp, Distribution(gp, {DimSpec::block(kProcs)}));
    runtime.run([&](rt::Proc& p) {
      Section w0{Triplet(0)};
      if (p.mypid() == 0) {
        for (int t = 0; t < kTasks; ++t) {
          p.set<double>(W, Point{0}, costs[static_cast<std::size_t>(t)]);
          p.send(W, w0);  // W[0] -> unspecified: FCFS at the matchmaker
        }
        for (int w = 0; w < kProcs; ++w) {
          p.set<double>(W, Point{0}, -1.0);
          p.send(W, w0);  // poison pills
        }
      }
      Section slot{Triplet(p.mypid())};
      while (true) {
        p.recv(M, slot, W, w0);
        if (!p.await(M, slot)) break;
        const double job = p.get<double>(M, Point{p.mypid()});
        if (job < 0) break;
        work(job);
      }
    });
  }
  state.counters["skew_pct"] = static_cast<double>(state.range(0));
}

void BM_OwnershipMigration(benchmark::State& state) {
  auto costs = costsFor(state);
  // Greedy LPT targets (the compiler/runtime rebalancing policy).
  std::vector<int> target(kTasks);
  {
    std::vector<std::pair<double, int>> order;
    for (int t = 0; t < kTasks; ++t)
      order.emplace_back(costs[static_cast<std::size_t>(t)], t);
    std::sort(order.rbegin(), order.rend());
    std::vector<double> load(kProcs, 0.0);
    for (auto& [c, t] : order) {
      int best = 0;
      for (int q = 1; q < kProcs; ++q)
        if (load[static_cast<std::size_t>(q)] <
            load[static_cast<std::size_t>(best)])
          best = q;
      target[static_cast<std::size_t>(t)] = best;
      load[static_cast<std::size_t>(best)] += c;
    }
  }
  const Index blk = kTasks / kProcs;
  for (auto _ : state) {
    rt::Runtime runtime(kProcs);
    Section g{Triplet(1, kTasks)};
    const int W = runtime.declareArray<double>(
        "W", g, Distribution(g, {DimSpec::block(kProcs)}),
        dist::SegmentShape::of({1}));
    runtime.run([&](rt::Proc& p) {
      const int me = p.mypid();
      for (Index t = 1; t <= kTasks; ++t) {
        const int from = static_cast<int>((t - 1) / blk);
        const int to = target[static_cast<std::size_t>(t - 1)];
        if (from == to) continue;
        Section st{Triplet(t)};
        if (me == from) p.sendOwnership(W, st, true, std::vector<int>{to});
        if (me == to) p.recvOwnership(W, st, true);
      }
      // The same SPMD loop as BM_Static: ownership decides placement.
      for (Index t = 1; t <= kTasks; ++t) {
        Section st{Triplet(t)};
        if (p.await(W, st)) work(costs[static_cast<std::size_t>(t - 1)]);
      }
    });
  }
  state.counters["skew_pct"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_Static)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(20)
    ->UseRealTime()->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_TaskFarm)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(20)
    ->UseRealTime()->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_OwnershipMigration)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(20)
    ->UseRealTime()->Unit(benchmark::kMillisecond)->Iterations(3);
