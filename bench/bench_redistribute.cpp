// E7 — transfer granularity and pipelining (paper section 3.1: "The use of
// segments allows the pipelining of a transfer of a section ... In many
// cases, this can effectively reduce the total time by allowing a
// processor to overlap one segment's transfer with computation on another
// segment").
//
// Each of P processors computes over its slab chunk by chunk and ships
// ownership of each finished chunk to its successor. Sweeping the number
// of chunks trades per-message overhead (alpha per chunk) against overlap
// (receivers synchronize on chunks as they arrive instead of on the whole
// slab): modeled time follows a U-curve — the paper's motivation for
// letting the *compiler* pick the segment shape.
#include <benchmark/benchmark.h>

#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Section;
using sec::Triplet;

namespace {

void BM_RedistributeGranularity(benchmark::State& state) {
  const int P = 4;
  const Index perProc = 8192;
  const Index chunks = state.range(0);
  const Index chunkElems = perProc / chunks;
  const double computePerElem = 5e-8;
  // A slow processor makes overlap matter (cf. E2).
  const double skew = 4.0;

  double modeled = 0, avg = 0, consumer = 0, msgs = 0;
  for (auto _ : state) {
    net::CostModel cm;  // default alpha/beta/latency
    rt::RuntimeOptions opts;
    opts.costModel = cm;
    rt::Runtime runtime(P, opts);
    Section g{Triplet(1, P * perProc)};
    const int A = runtime.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(P)}),
        dist::SegmentShape::of({chunkElems}));
    runtime.run([&](rt::Proc& p) {
      const int me = p.mypid();
      const int next = (me + 1) % P;
      const Index base = me * perProc;
      const double myCost =
          computePerElem * (me == 0 ? skew : 1.0);
      // Post receives for everything the predecessor will ship.
      const int prev = (me + P - 1) % P;
      const Index pbase = prev * perProc;
      for (Index c = 0; c < chunks; ++c) {
        Section in{Triplet(pbase + c * chunkElems + 1,
                           pbase + (c + 1) * chunkElems)};
        p.recvOwnership(A, in, true);
      }
      // Compute chunk, ship chunk — the pipelined producer loop.
      for (Index c = 0; c < chunks; ++c) {
        Section chunk{Triplet(base + c * chunkElems + 1,
                              base + (c + 1) * chunkElems)};
        p.compute(myCost * static_cast<double>(chunkElems));
        p.sendOwnership(A, chunk, true, std::vector<int>{next});
      }
      // Consume: synchronize on each incoming chunk, compute on it.
      for (Index c = 0; c < chunks; ++c) {
        Section in{Triplet(pbase + c * chunkElems + 1,
                           pbase + (c + 1) * chunkElems)};
        p.await(A, in);
        p.compute(computePerElem * static_cast<double>(chunkElems));
      }
    });
    modeled = runtime.fabric().makespan();
    double sum = 0;
    for (int q = 0; q < P; ++q) sum += runtime.fabric().clock(q);
    avg = sum / P;
    // Processor 1 consumes the slow producer's chunks; its finish time is
    // where the overlap-vs-overhead U-curve lives.
    consumer = runtime.fabric().clock(1);
    msgs = static_cast<double>(runtime.fabric().totalStats().messagesSent);
  }
  state.counters["modeled_s"] = modeled;
  state.counters["avg_finish"] = avg;
  state.counters["consumer_finish"] = consumer;
  state.counters["msgs"] = msgs;
  state.counters["chunk_elems"] = static_cast<double>(chunkElems);
}

}  // namespace

BENCHMARK(BM_RedistributeGranularity)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);
