// E12 — Cannon's matrix multiply: ownership-migration shifts vs
// conventional value-message shifts, across matrix sizes. Counters report
// traffic, modeled time, and the peak per-processor storage footprint
// (the paper 2.6 storage-reuse effect: the ownership plan needs no
// auxiliary in-buffers).
#include <benchmark/benchmark.h>

#include "xdp/apps/cannon.hpp"

using namespace xdp;

namespace {

void BM_Cannon(benchmark::State& state) {
  apps::CannonConfig cfg;
  cfg.n = state.range(1);
  cfg.q = 4;
  cfg.flopCost = 1e-8;
  cfg.plan = state.range(0) == 0 ? apps::ShiftPlan::DataShift
                                 : apps::ShiftPlan::OwnershipShift;
  apps::CannonResult r;
  for (auto _ : state) {
    r = apps::runCannon(cfg);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["modeled_s"] = r.makespan;
  state.counters["msgs"] = static_cast<double>(r.net.messagesSent);
  state.counters["bytes"] = static_cast<double>(r.net.bytesSent);
  state.counters["peak_elems"] = static_cast<double>(r.peakElemsPerProc);
  state.SetLabel(cfg.plan == apps::ShiftPlan::DataShift
                     ? "value-messages"
                     : "ownership-migration");
}

}  // namespace

BENCHMARK(BM_Cannon)
    ->ArgsProduct({{0, 1}, {32, 64, 128}})
    ->Unit(benchmark::kMillisecond);
