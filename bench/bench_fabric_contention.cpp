// Fabric lock contention under real multi-threaded traffic.
//
// The pre-shard fabric serialized every operation — sends, receives,
// clock ticks, stats — on one mutex, so P threads measured lock handoff
// latency, not the XDP cost model. With per-endpoint mailbox locks plus a
// separate rendezvous-matcher lock, disjoint direct traffic should scale
// with the thread count; the Mixed variant prices the one shared matcher
// critical section against that baseline.
//
// Each benchmark runs P OS threads (Args: P = 1/4/16/64). Every thread
// posts a receive for its own name and sends to its partner's (pid ^ 1;
// P = 1 self-exchanges), so traffic is balanced per endpoint, everything
// drains inside the iteration, and msgs_per_sec means completed
// deliveries — the number BENCH_*.json tracks for the contention
// trajectory.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "xdp/net/fabric.hpp"
#include "xdp/net/spmd.hpp"

using namespace xdp;
using net::Fabric;
using net::Message;
using net::Name;
using net::TransferKind;
using sec::Section;
using sec::Triplet;

namespace {

constexpr int kMsgsPerThread = 2000;

Name threadName(int pid) { return Name{pid, Section{Triplet(0, 7)}, {}}; }

// rendezvousEvery = 0 disables rendezvous; N routes every Nth send through
// the matchmaker instead of directly to the partner.
void runTrafficLoop(benchmark::State& state, int rendezvousEvery) {
  const int nprocs = static_cast<int>(state.range(0));
  Fabric f(nprocs);
  const std::vector<std::byte> payload(64);
  for (auto _ : state) {
    net::runSpmd(nprocs, [&](int pid) {
      const int partner = nprocs > 1 ? (pid ^ 1) : 0;
      const Name mine = threadName(pid);
      const Name theirs = threadName(partner);
      for (int i = 0; i < kMsgsPerThread; ++i) {
        f.postReceive(pid, mine, TransferKind::Data, [](const Message&) {});
        const bool rendezvous =
            rendezvousEvery > 0 && i % rendezvousEvery == rendezvousEvery - 1;
        f.send(pid, theirs, TransferKind::Data, payload,
               rendezvous ? std::nullopt : std::optional<int>(partner));
      }
    });
    f.clearMatchState();  // hygiene between iterations; queues are empty
    f.resetClocks();
  }
  const double msgs = static_cast<double>(state.iterations()) *
                      static_cast<double>(nprocs) * kMsgsPerThread;
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
  state.counters["msgs_per_sec"] =
      benchmark::Counter(msgs, benchmark::Counter::kIsRate);
}

// Disjoint pairwise direct traffic: touches only the two endpoint locks
// involved, so throughput should rise with P until cores run out.
void BM_FabricContention_Direct(benchmark::State& state) {
  runTrafficLoop(state, 0);
}

// Mixed 3:1 direct:rendezvous — every fourth send goes through the
// matchmaker, putting the shared matcher critical section on the hot path.
void BM_FabricContention_Mixed(benchmark::State& state) {
  runTrafficLoop(state, 4);
}

}  // namespace

BENCHMARK(BM_FabricContention_Direct)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FabricContention_Mixed)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
