// Fabric lock contention under real multi-threaded traffic, across
// message transports.
//
// The pre-shard fabric serialized every operation — sends, receives,
// clock ticks, stats — on one mutex, so P threads measured lock handoff
// latency, not the XDP cost model. With per-endpoint mailbox locks plus a
// separate rendezvous-matcher lock, disjoint direct traffic should scale
// with the thread count; the Mixed variant prices the one shared matcher
// critical section against that baseline. The second argument selects
// the transport (0 = locked inline delivery, 1 = lock-free ring): the
// ring fast path removes the destination-lock round-trip from the send
// side entirely, so its headroom over locked is the price of inline
// delivery under contention.
//
// Each benchmark runs P OS threads (Args: P = 4/16/64/256 x transport).
// Every thread posts a receive for its own name and sends to its
// partner's (pid ^ 1), so traffic is balanced per endpoint and everything
// drains inside the iteration (a final pollAll reaps ring stragglers) —
// msgs_per_sec means completed deliveries. The `delivered` counter is the
// deterministic per-iteration completion count that PERF_TRAJECTORY.json
// tracks; never gate on the wall-clock rate.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "xdp/net/fabric.hpp"
#include "xdp/net/spmd.hpp"

using namespace xdp;
using net::Fabric;
using net::Message;
using net::Name;
using net::TransferKind;
using sec::Section;
using sec::Triplet;

namespace {

constexpr int kMsgsPerThread = 2000;

Name threadName(int pid) { return Name{pid, Section{Triplet(0, 7)}, {}}; }

// rendezvousEvery = 0 disables rendezvous; N routes every Nth send through
// the matchmaker instead of directly to the partner.
void runTrafficLoop(benchmark::State& state, int rendezvousEvery) {
  const int nprocs = static_cast<int>(state.range(0));
  net::TransportOptions topts;
  topts.kind = state.range(1) == 0 ? net::TransportKind::Locked
                                   : net::TransportKind::Ring;
  Fabric f(nprocs, net::CostModel{}, topts);
  const std::vector<std::byte> payload(64);
  for (auto _ : state) {
    net::runSpmd(nprocs, [&](int pid) {
      const int partner = nprocs > 1 ? (pid ^ 1) : 0;
      const Name mine = threadName(pid);
      const Name theirs = threadName(partner);
      for (int i = 0; i < kMsgsPerThread; ++i) {
        f.postReceive(pid, mine, TransferKind::Data, [](const Message&) {});
        const bool rendezvous =
            rendezvousEvery > 0 && i % rendezvousEvery == rendezvousEvery - 1;
        f.send(pid, theirs, TransferKind::Data, payload,
               rendezvous ? std::nullopt : std::optional<int>(partner));
      }
    });
    f.pollAll();  // reap ring stragglers (the last few in-flight sends)
    f.clearMatchState();  // hygiene between iterations; queues are empty
    f.resetClocks();
  }
  const double msgs = static_cast<double>(state.iterations()) *
                      static_cast<double>(nprocs) * kMsgsPerThread;
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
  state.counters["msgs_per_sec"] =
      benchmark::Counter(msgs, benchmark::Counter::kIsRate);
  // Deterministic completions per iteration: every send must have been
  // delivered, on either transport. Gated by PERF_TRAJECTORY.json.
  state.counters["delivered"] = benchmark::Counter(
      static_cast<double>(f.totalStats().messagesReceived) /
      static_cast<double>(state.iterations()));
}

// Disjoint pairwise direct traffic: touches only the two endpoint locks
// involved (none on the ring fast path), so throughput should rise with P
// until cores run out.
void BM_FabricContention_Direct(benchmark::State& state) {
  runTrafficLoop(state, 0);
}

// Mixed 3:1 direct:rendezvous — every fourth send goes through the
// matchmaker, putting the shared matcher critical section on the hot path.
void BM_FabricContention_Mixed(benchmark::State& state) {
  runTrafficLoop(state, 4);
}

}  // namespace

BENCHMARK(BM_FabricContention_Direct)
    ->ArgsProduct({{4, 16, 64, 256}, {0, 1}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FabricContention_Mixed)
    ->ArgsProduct({{4, 16, 64, 256}, {0, 1}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
