// E3 — run-time symbol table operation cost (paper section 3.1 / Fig. 2).
//
// The paper's iown() algorithm intersects the query with every segment
// descriptor; the cost therefore scales with the number of segments the
// compiler chose. This bench measures iown / accessible / mylb / await on
// a processor whose partition is split into 1..4096 segments, under BLOCK
// and CYCLIC distributions, plus the cost of the ownership-state update
// performed by a receive initiation/completion pair.
//
// These are real single-thread latencies (ns), directly meaningful even
// on a one-core host.
#include <benchmark/benchmark.h>

#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using dist::SegmentShape;
using sec::Index;
using sec::Section;
using sec::Triplet;

namespace {

constexpr Index kN = 4096;

struct Fixture {
  rt::Runtime runtime;
  int sym;

  Fixture(bool cyclic, Index nsegs)
      : runtime(1), sym(-1) {
    Section g{Triplet(1, kN)};
    Distribution d(g, {cyclic ? DimSpec::cyclic(1) : DimSpec::block(1)});
    sym = runtime.declareArray<double>(
        "A", g, d, SegmentShape::of({kN / nsegs}));
    runtime.run([](rt::Proc&) {});  // materialize tables
  }
};

void BM_Iown(benchmark::State& state) {
  Fixture f(state.range(1) != 0, state.range(0));
  rt::ProcTable& t = f.runtime.table(0);
  Section query{Triplet(kN / 4, kN / 2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.iown(f.sym, query));
  }
  state.counters["segments"] = static_cast<double>(state.range(0));
  state.SetLabel(state.range(1) ? "cyclic" : "block");
}

void BM_Accessible(benchmark::State& state) {
  Fixture f(false, state.range(0));
  rt::ProcTable& t = f.runtime.table(0);
  Section query{Triplet(1, kN)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.accessible(f.sym, query));
  }
  state.counters["segments"] = static_cast<double>(state.range(0));
}

void BM_Mylb(benchmark::State& state) {
  Fixture f(false, state.range(0));
  rt::ProcTable& t = f.runtime.table(0);
  Section query{Triplet(1, kN)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.mylb(f.sym, query, 0));
  }
  state.counters["segments"] = static_cast<double>(state.range(0));
}

void BM_AwaitAccessibleFastPath(benchmark::State& state) {
  // await() on an already-accessible section: the fast path a compiler
  // pays when it could not prove the await removable.
  Fixture f(false, state.range(0));
  rt::ProcTable& t = f.runtime.table(0);
  Section query{Triplet(1, kN)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.await(f.sym, query, nullptr));
  }
  state.counters["segments"] = static_cast<double>(state.range(0));
}

void BM_ReceiveStateUpdate(benchmark::State& state) {
  // beginReceive + completeReceive over one segment-sized section: the
  // transitional/accessible bookkeeping of Figure 1.
  Fixture f(false, state.range(0));
  rt::ProcTable& t = f.runtime.table(0);
  const Index segElems = kN / state.range(0);
  Section s{Triplet(1, segElems)};
  std::vector<std::byte> payload(
      static_cast<std::size_t>(segElems) * sizeof(double));
  for (auto _ : state) {
    t.beginReceive(f.sym, s);
    t.completeReceive(f.sym, s, payload.data(), 0.0);
  }
  state.counters["segments"] = static_cast<double>(state.range(0));
  state.counters["elems_moved"] = static_cast<double>(segElems);
}

}  // namespace

BENCHMARK(BM_Iown)->ArgsProduct({{1, 16, 256, 4096}, {0, 1}});
BENCHMARK(BM_Accessible)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_Mylb)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_AwaitAccessibleFastPath)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_ReceiveStateUpdate)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
