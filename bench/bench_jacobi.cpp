// E10 — the §2.2/§3.2 optimizations on a real stencil: Jacobi halo
// exchange with element-wise vs row-section messages, bound vs
// matchmaker-routed, across grid sizes. Modeled time shows the combined
// alpha-amortization (vectorization) and hop-removal (binding) effects on
// a workload, complementing the microbenchmarks E8/E9.
#include <benchmark/benchmark.h>

#include "xdp/apps/jacobi.hpp"

using namespace xdp;

namespace {

void BM_Jacobi(benchmark::State& state) {
  apps::JacobiConfig cfg;
  cfg.rows = state.range(1);
  cfg.cols = state.range(1);
  cfg.nprocs = 4;
  cfg.iterations = 10;
  cfg.flopCost = 1e-8;
  cfg.plan = state.range(0) / 2 == 0 ? apps::HaloPlan::ElementWise
                                     : apps::HaloPlan::RowSections;
  cfg.bindDestinations = state.range(0) % 2 == 1;

  apps::JacobiResult r;
  for (auto _ : state) {
    r = apps::runJacobi(cfg);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["modeled_s"] = r.makespan;
  state.counters["msgs"] = static_cast<double>(r.net.messagesSent);
  state.counters["bytes"] = static_cast<double>(r.net.bytesSent);
  state.counters["rendezvous"] = static_cast<double>(r.net.rendezvousSends);
  state.SetLabel(std::string(cfg.plan == apps::HaloPlan::ElementWise
                                 ? "element-wise"
                                 : "row-sections") +
                 (cfg.bindDestinations ? "/bound" : "/matchmaker"));
}

}  // namespace

BENCHMARK(BM_Jacobi)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 64, 128}})
    ->Unit(benchmark::kMillisecond);
