// E1 — the section 2.2 example (`A[i] = A[i] + B[i]`) across the paper's
// optimization stages, for the aligned (BLOCK/BLOCK) and misaligned
// (BLOCK/CYCLIC) cases.
//
// Reported counters (per run):
//   msgs        messages sent (the paper's per-element -> per-section claim)
//   bytes       payload volume
//   rendezvous  sends routed through the matchmaker (removed by binding)
//   rules       compute-rule evaluations (removed by CRE)
//   modeled_s   virtual-time makespan under the LogGP-style cost model
// Wall time measures simulator throughput, not parallel speedup (the host
// may have a single core); modeled_s is the reproducible quantity.
#include <benchmark/benchmark.h>

#include "xdp/apps/programs.hpp"
#include "xdp/opt/passes.hpp"

using namespace xdp;

namespace {

enum Stage : int {
  kLowered = 0,
  kRte = 1,
  kVectorized = 2,
  kCre = 3,
  kBound = 4,
};

const char* stageName(int s) {
  switch (s) {
    case kLowered: return "lowered";
    case kRte: return "rte";
    case kVectorized: return "vectorized";
    case kCre: return "cre";
    case kBound: return "bound";
  }
  return "?";
}

il::Program buildStage(const apps::VecAddConfig& cfg, int stage) {
  il::Program p = opt::lowerOwnerComputes(apps::buildVecAdd(cfg));
  if (stage >= kRte) p = opt::redundantTransferElimination(p);
  if (stage >= kVectorized) p = opt::messageVectorization(p);
  if (stage >= kCre) p = opt::computeRuleElimination(p);
  if (stage >= kBound) p = opt::commBinding(p);
  return p;
}

void runStage(benchmark::State& state, const apps::VecAddConfig& cfg,
              int stage) {
  il::Program prog = buildStage(cfg, stage);
  net::NetStats net;
  interp::InterpStats is;
  double makespan = 0;
  for (auto _ : state) {
    interp::Interpreter in(prog, {});
    apps::registerFillKernel(in, cfg.seed);
    in.run();
    net = in.runtime().fabric().totalStats();
    is = in.totalStats();
    makespan = in.runtime().fabric().makespan();
    benchmark::DoNotOptimize(makespan);
  }
  state.counters["msgs"] = static_cast<double>(net.messagesSent);
  state.counters["bytes"] = static_cast<double>(net.bytesSent);
  state.counters["rendezvous"] = static_cast<double>(net.rendezvousSends);
  state.counters["rules"] = static_cast<double>(is.rulesEvaluated);
  state.counters["modeled_s"] = makespan;
  state.SetLabel(stageName(stage));
}

void BM_VecAddMisaligned(benchmark::State& state) {
  auto cfg = apps::vecAddMisaligned(state.range(1), 4);
  runStage(state, cfg, static_cast<int>(state.range(0)));
}

void BM_VecAddAligned(benchmark::State& state) {
  auto cfg = apps::vecAddAligned(state.range(1), 4);
  runStage(state, cfg, static_cast<int>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_VecAddMisaligned)
    ->ArgsProduct({{kLowered, kRte, kVectorized, kCre, kBound},
                   {1024, 4096, 16384}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_VecAddAligned)
    ->ArgsProduct({{kLowered, kRte, kCre}, {1024, 4096, 16384}})
    ->Unit(benchmark::kMillisecond);
