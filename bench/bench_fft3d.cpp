// E2 — the section 4 3-D FFT with redistribution-by-ownership-transfer,
// across the paper's three program stages (+ communication binding), for
// several cube sizes, with and without load skew.
//
// Counters:
//   modeled_s    virtual makespan (critical path)
//   avg_finish   mean processor finish time — where fusion's pipelining
//                shows up under skew (see EXPERIMENTS.md E2)
//   msgs/bytes   identical across stages by design: section 4's
//                optimizations change *when*, not *how much*
#include <benchmark/benchmark.h>

#include "xdp/apps/programs.hpp"
#include "xdp/opt/passes.hpp"

using namespace xdp;

namespace {

enum Stage : int { kStage1 = 0, kStage2 = 1, kStage3 = 2, kBound = 3 };

const char* stageName(int s) {
  switch (s) {
    case kStage1: return "stage1-guarded";
    case kStage2: return "stage2-cre-sie";
    case kStage3: return "stage3-fused";
    case kBound: return "stage3-bound";
  }
  return "?";
}

il::Program buildStage(const apps::Fft3dConfig& cfg, int stage) {
  il::Program p = apps::buildFft3dStage1(cfg);
  if (stage >= kStage2)
    p = opt::singleIterationElimination(opt::computeRuleElimination(p));
  if (stage >= kStage3) p = opt::awaitSinking(opt::loopFusion(p));
  if (stage >= kBound) p = opt::commBinding(p);
  return p;
}

void BM_Fft3d(benchmark::State& state) {
  apps::Fft3dConfig cfg;
  cfg.n = state.range(1);
  cfg.nprocs = 4;
  cfg.flopCost = 2e-6;
  cfg.skewCost = state.range(2) != 0 ? 4e-4 : 0.0;
  const int stage = static_cast<int>(state.range(0));
  il::Program prog = buildStage(cfg, stage);

  net::NetStats net;
  double makespan = 0, avg = 0;
  for (auto _ : state) {
    interp::Interpreter in(prog, {});
    apps::registerFillKernel(in, cfg.seed);
    apps::registerFftKernels(in, cfg.flopCost);
    in.run();
    net = in.runtime().fabric().totalStats();
    makespan = in.runtime().fabric().makespan();
    double sum = 0;
    for (int p = 0; p < cfg.nprocs; ++p)
      sum += in.runtime().fabric().clock(p);
    avg = sum / cfg.nprocs;
  }
  state.counters["modeled_s"] = makespan;
  state.counters["avg_finish"] = avg;
  state.counters["msgs"] = static_cast<double>(net.messagesSent);
  state.counters["bytes"] = static_cast<double>(net.bytesSent);
  state.SetLabel(std::string(stageName(stage)) +
                 (cfg.skewCost > 0 ? "/skewed" : "/uniform"));
}

// Backend comparison on the same staged programs: wall-clock execution
// throughput of the tree-walking interpreter vs the bytecode VM, with the
// deterministic logical-op count as the parity check (both backends must
// report the same logical_ops for a given stage — the perf gate pins it).
void BM_Fft3dExec(benchmark::State& state) {
  apps::Fft3dConfig cfg;
  cfg.n = state.range(1);
  cfg.nprocs = 4;
  const int stage = static_cast<int>(state.range(0));
  il::Program prog = buildStage(cfg, stage);

  interp::InterpOptions io;
  io.backend = state.range(2) == 0 ? interp::Backend::TreeWalk
                                   : interp::Backend::Bytecode;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    interp::Interpreter in(prog, {}, io);
    apps::registerFillKernel(in, cfg.seed);
    apps::registerFftKernels(in, cfg.flopCost);
    in.run();
    const auto s = in.totalStats();
    ops = s.stmtsExecuted + s.loopIterations + s.rulesEvaluated +
          s.elemAssigns;
  }
  state.counters["logical_ops"] = static_cast<double>(ops);
  state.counters["logical_ops_per_s"] = benchmark::Counter(
      static_cast<double>(ops) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(stageName(stage)) +
                 (state.range(2) == 0 ? "/tree-walk" : "/bytecode-vm"));
}

}  // namespace

BENCHMARK(BM_Fft3d)
    ->ArgsProduct({{kStage1, kStage2, kStage3, kBound},
                   {8, 16, 32},
                   {0, 1}})
    ->Unit(benchmark::kMillisecond);
// Process CPU: interpreter work happens on SPMD worker threads (see
// bench_compile.cpp) — wall time would mostly measure thread setup.
BENCHMARK(BM_Fft3dExec)
    ->ArgsProduct({{kStage1, kBound}, {8, 16}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();
