// E14 — multi-tenant serving throughput and tail latency: a DAMOV-style
// session mix (jacobi stencil / cannon ring / vecadd streaming, all 4-proc
// tenants) pushed through the Server at 64/256/1024 concurrent sessions,
// clean and with a 5% hostile-session rate (lossy fault plans that force
// the retry/backoff and watchdog paths). Reported: sessions/s and the
// p50/p99 per-session wall latency — the serving-layer figures the perf
// trajectory tracks alongside the modeled-time benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "xdp/serve/server.hpp"

using namespace xdp;

namespace {

std::string readProgram(const char* name) {
  std::ifstream in(std::string(XDP_PROGRAMS_DIR) + "/" + name);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Mix {
  std::vector<serve::SessionRequest> shapes;
  Mix() {
    serve::SessionRequest jacobi;
    jacobi.name = "jacobi";
    jacobi.source = readProgram("jacobi.xdp");
    serve::SessionRequest cannon;
    cannon.name = "cannon";
    cannon.source = readProgram("cannon.xdp");
    serve::SessionRequest vecadd;
    vecadd.name = "vecadd";
    vecadd.source = readProgram("vecadd.xdp");
    vecadd.usePipeline = true;
    shapes = {jacobi, cannon, vecadd};
  }
};

void BM_Serve(benchmark::State& state) {
  static const Mix mix;  // parse-once program sources
  const int sessions = static_cast<int>(state.range(0));
  const bool hostile = state.range(1) != 0;

  serve::ServerConfig cfg;
  cfg.workers = 8;
  cfg.maxPending = sessions + 1;
  cfg.session.watchdogMs = 100;  // bounds the cost of a hostile deadlock
  cfg.session.retry.maxAttempts = 3;
  cfg.session.retry.backoffBaseMs = 1;
  cfg.session.retry.backoffCapMs = 4;

  std::uint64_t completed = 0;
  std::uint64_t retries = 0;
  std::vector<double> lat;
  for (auto _ : state) {
    serve::Server server(cfg);
    std::vector<std::future<serve::SessionReport>> futs;
    futs.reserve(static_cast<std::size_t>(sessions));
    for (int i = 0; i < sessions; ++i) {
      serve::SessionRequest req =
          mix.shapes[static_cast<std::size_t>(i) % mix.shapes.size()];
      req.name += "#" + std::to_string(i);
      // The 5% hostile-session rate: every 20th tenant runs under a
      // lossy plan that usually deadlocks an attempt.
      if (hostile && i % 20 == 0) {
        net::FaultPlan plan;
        plan.seed = 100 + static_cast<std::uint64_t>(i);
        plan.dropProb = 0.05;
        req.faultPlan = plan;
      }
      futs.push_back(server.submit(std::move(req)));
    }
    lat.clear();
    lat.reserve(futs.size());
    for (auto& f : futs) {
      serve::SessionReport r = f.get();
      lat.push_back(r.wallMs);
      if (r.outcome == serve::SessionOutcome::Completed) ++completed;
      retries += static_cast<std::uint64_t>(r.attempts - 1);
    }
    server.shutdown();
  }

  std::sort(lat.begin(), lat.end());
  auto pct = [&](double p) {
    if (lat.empty()) return 0.0;
    const std::size_t i = std::min(
        lat.size() - 1, static_cast<std::size_t>(p * (lat.size() - 1)));
    return lat[i];
  };
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(sessions) * state.iterations(),
      benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = pct(0.50);
  state.counters["p99_ms"] = pct(0.99);
  state.counters["completed"] =
      static_cast<double>(completed) / state.iterations();
  state.counters["retries"] =
      static_cast<double>(retries) / state.iterations();
  state.SetLabel(hostile ? "5% hostile" : "clean");
}

}  // namespace

BENCHMARK(BM_Serve)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();
