// Throughput of the static verifier (analysis::verifyProgram): abstract
// statements per second over the section 2.2 vector-add program at growing
// sizes, raw and after lowering (the lowered form has ~6x the statements
// plus the send/receive matching work). The verifier runs once per
// processor, so stmts/sec is the end-to-end figure a compile would see.
//
// Reported counters (per run):
//   stmts       abstract statements interpreted across all processors
//   stmts/s     verification throughput
//   diags       diagnostics produced (0 on these programs)
#include <benchmark/benchmark.h>

#include "xdp/analysis/verifier.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/opt/passes.hpp"

using namespace xdp;

namespace {

void runVerify(benchmark::State& state, const il::Program& prog) {
  std::uint64_t stmts = 0;
  std::size_t diags = 0;
  for (auto _ : state) {
    analysis::VerifyResult r = analysis::verifyProgram(prog);
    benchmark::DoNotOptimize(r);
    stmts += r.stmtsAnalyzed;
    diags += r.diagnostics.size();
  }
  state.counters["stmts"] =
      benchmark::Counter(static_cast<double>(stmts) /
                         static_cast<double>(state.iterations()));
  state.counters["stmts/s"] = benchmark::Counter(
      static_cast<double>(stmts), benchmark::Counter::kIsRate);
  state.counters["diags"] = benchmark::Counter(
      static_cast<double>(diags) / static_cast<double>(state.iterations()));
}

void BM_VerifyVecAddRaw(benchmark::State& state) {
  apps::VecAddConfig cfg =
      apps::vecAddMisaligned(state.range(0), 4);
  il::Program prog = apps::buildVecAdd(cfg);
  runVerify(state, prog);
}
BENCHMARK(BM_VerifyVecAddRaw)->Arg(64)->Arg(256)->Arg(1024);

void BM_VerifyVecAddLowered(benchmark::State& state) {
  apps::VecAddConfig cfg =
      apps::vecAddMisaligned(state.range(0), 4);
  il::Program prog = opt::lowerOwnerComputes(apps::buildVecAdd(cfg));
  runVerify(state, prog);
}
BENCHMARK(BM_VerifyVecAddLowered)->Arg(64)->Arg(256)->Arg(1024);

void BM_VerifyFft3dStage1(benchmark::State& state) {
  apps::Fft3dConfig cfg;
  cfg.n = state.range(0);
  il::Program prog = apps::buildFft3dStage1(cfg);
  runVerify(state, prog);
}
BENCHMARK(BM_VerifyFft3dStage1)->Arg(8)->Arg(16);

}  // namespace
