// Static communication-cost analysis over the example programs: parse,
// lower through the standard pipeline, run analysis::analyzeCost, and
// report the modeled traffic against the placement lower bound. The
// cost counters are deterministic (they are the same figures xdpc --cost
// prints and the runtime NetStats reproduce bit-exactly), so the perf
// trajectory tracks them — and with them the "% of optimal" of every
// example's hand-picked placement. BM_AutoPlace measures the placement
// search itself and its outcome on the misaligned vecadd program.
//
// Reported counters (per run):
//   bytes_moved     modeled bytes across all processors (exact model)
//   lower_bound     invariant + parametric placement lower bound
//   pct_of_optimal  100 * lower_bound / bytes_moved (100 when 0/0)
//   analyses/s      end-to-end cost-analysis throughput
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>
#include <string>

#include "xdp/analysis/cost.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/opt/auto_place.hpp"
#include "xdp/opt/passes.hpp"

using namespace xdp;

namespace {

il::Program loadProgram(const char* name) {
  std::ifstream in(std::string(XDP_PROGRAMS_DIR) + "/" + name);
  std::stringstream buf;
  buf << in.rdbuf();
  return il::parseProgram(buf.str());
}

il::Program lowered(const il::Program& prog) {
  opt::PassManager pm;
  for (const opt::Pass& p : opt::standardPipeline()) pm.add(p.name, p.fn);
  return pm.run(prog, nullptr);
}

void BM_CostAnalyze(benchmark::State& state, const char* name) {
  const il::Program pre = loadProgram(name);
  const il::Program low = lowered(pre);
  analysis::CostReport last;
  for (auto _ : state) {
    last = analysis::analyzeCost(low, pre);
    benchmark::DoNotOptimize(last);
  }
  state.counters["bytes_moved"] =
      benchmark::Counter(static_cast<double>(last.bytesMoved));
  state.counters["lower_bound"] =
      benchmark::Counter(static_cast<double>(last.lowerBound()));
  state.counters["pct_of_optimal"] = benchmark::Counter(last.pctOfOptimal());
  state.counters["analyses/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_CostAnalyze, vecadd, "vecadd.xdp");
BENCHMARK_CAPTURE(BM_CostAnalyze, jacobi, "jacobi.xdp");
BENCHMARK_CAPTURE(BM_CostAnalyze, cannon, "cannon.xdp");
BENCHMARK_CAPTURE(BM_CostAnalyze, ownership, "ownership.xdp");
BENCHMARK_CAPTURE(BM_CostAnalyze, taskfarm, "taskfarm.xdp");

void BM_AutoPlace(benchmark::State& state, const char* name) {
  const il::Program prog = loadProgram(name);
  opt::AutoPlaceResult last;
  for (auto _ : state) {
    last = opt::autoPlace(prog);
    benchmark::DoNotOptimize(last);
  }
  state.counters["bytes_moved"] =
      benchmark::Counter(static_cast<double>(last.best.bytes));
  state.counters["original_bytes"] =
      benchmark::Counter(static_cast<double>(last.original.bytes));
  state.counters["lower_bound"] =
      benchmark::Counter(static_cast<double>(last.lowerBound));
  state.counters["pct_of_optimal"] = benchmark::Counter(last.pctOfOptimal());
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(last.candidatesTried));
  state.counters["searches/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_AutoPlace, vecadd, "vecadd.xdp");
BENCHMARK_CAPTURE(BM_AutoPlace, jacobi, "jacobi.xdp");
BENCHMARK_CAPTURE(BM_AutoPlace, cannon, "cannon.xdp");

}  // namespace
