// E8 — delayed communication binding (paper section 3.2). The same
// neighbour-exchange traffic is driven twice:
//
//   unbound  "E ->"     sends to an unspecified processor; sender and
//                       receiver meet at the run-time matchmaker (extra
//                       control hop + matcher queue work)
//   bound    "E -> {q}" after CommBinding derived the receiver, the send
//                       routes directly
//
// Modeled time isolates the matchHop cost; wall time shows the real
// matcher overhead in the simulator. The gap grows linearly with message
// count — exactly the paper's argument for binding at code generation.
#include <benchmark/benchmark.h>

#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Section;
using sec::Triplet;

namespace {

void runExchange(benchmark::State& state, bool bound) {
  const int P = 4;
  const Index msgsPerProc = state.range(0);
  double modeled = 0, rendezvous = 0;
  for (auto _ : state) {
    rt::Runtime runtime(P);
    // One slot per (proc, message) so every transfer has a unique name.
    Section g{Triplet(0, P * msgsPerProc - 1)};
    const int A = runtime.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(P)}),
        dist::SegmentShape::of({1}));
    Section gi{Triplet(0, P * msgsPerProc - 1)};
    const int IN = runtime.declareArray<double>(
        "IN", gi, Distribution(gi, {DimSpec::block(P)}),
        dist::SegmentShape::of({1}));
    runtime.run([&](rt::Proc& p) {
      const int me = p.mypid();
      const int next = (me + 1) % P;
      const int prev = (me + P - 1) % P;
      for (Index k = 0; k < msgsPerProc; ++k) {
        Section mine{Triplet(me * msgsPerProc + k)};
        if (bound)
          p.send(A, mine, std::vector<int>{next});
        else
          p.send(A, mine);  // unspecified: meets receiver at the matcher
        Section from{Triplet(prev * msgsPerProc + k)};
        Section slot{Triplet(me * msgsPerProc + k)};
        p.recv(IN, slot, A, from);
        p.await(IN, slot);
      }
    });
    modeled = runtime.fabric().makespan();
    rendezvous =
        static_cast<double>(runtime.fabric().totalStats().rendezvousSends);
  }
  state.counters["modeled_s"] = modeled;
  state.counters["rendezvous"] = rendezvous;
  state.counters["msgs"] = static_cast<double>(P * msgsPerProc);
  state.SetLabel(bound ? "bound-direct" : "unbound-matchmaker");
}

void BM_ExchangeUnbound(benchmark::State& state) {
  runExchange(state, false);
}
void BM_ExchangeBound(benchmark::State& state) { runExchange(state, true); }

// --- E11: receive posting time (paper 3.2's hoisting rationale) -----------
//
// The same bound exchange, but receives are either posted before the
// local "work" (early: messages find a posted receive) or after it (late:
// every message takes the transport's unexpected-buffer path and pays an
// extra copy at completion).
void runPosting(benchmark::State& state, bool postEarly) {
  const int P = 4;
  const Index msgs = state.range(0);
  const double workBefore = 5e-4;  // enough that messages land mid-work
  double modeled = 0, unexpected = 0;
  for (auto _ : state) {
    rt::Runtime runtime(P);
    Section g{Triplet(0, P * msgs - 1)};
    const int A = runtime.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(P)}),
        dist::SegmentShape::of({1}));
    Section gi{Triplet(0, P * msgs - 1)};
    const int IN = runtime.declareArray<double>(
        "IN", gi, Distribution(gi, {DimSpec::block(P)}),
        dist::SegmentShape::of({1}));
    runtime.run([&](rt::Proc& p) {
      const int me = p.mypid();
      const int next = (me + 1) % P;
      const int prev = (me + P - 1) % P;
      auto postAll = [&] {
        for (Index k = 0; k < msgs; ++k)
          p.recv(IN, Section{Triplet(me * msgs + k)}, A,
                 Section{Triplet(prev * msgs + k)});
      };
      if (postEarly) postAll();
      for (Index k = 0; k < msgs; ++k)
        p.send(A, Section{Triplet(me * msgs + k)}, std::vector<int>{next});
      p.compute(workBefore);
      if (!postEarly) postAll();
      for (Index k = 0; k < msgs; ++k)
        p.await(IN, Section{Triplet(me * msgs + k)});
    });
    modeled = runtime.fabric().makespan();
    unexpected = static_cast<double>(
        runtime.fabric().totalStats().unexpectedMessages);
  }
  state.counters["modeled_s"] = modeled;
  state.counters["unexpected"] = unexpected;
  state.SetLabel(postEarly ? "posted-early" : "posted-late");
}

void BM_RecvPostedEarly(benchmark::State& state) {
  runPosting(state, true);
}
void BM_RecvPostedLate(benchmark::State& state) {
  runPosting(state, false);
}

}  // namespace

BENCHMARK(BM_RecvPostedEarly)
    ->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecvPostedLate)
    ->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ExchangeUnbound)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExchangeBound)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
