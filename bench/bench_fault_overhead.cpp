// Fault-injector overhead on the fabric's hot path.
//
// The injector is a pointer check when no plan is installed, so the
// NoPlan and pre-injector send/receive latencies must coincide — robustness
// instrumentation may not tax the paper-faithful configuration. The other
// variants price the machinery itself: a zero-probability plan pays five
// PRNG draws per send, an active plan additionally pays for duplicate
// routing, dedup bookkeeping and holdback shuffling.
#include <benchmark/benchmark.h>

#include "xdp/net/fabric.hpp"

using namespace xdp;
using net::Fabric;
using net::FaultPlan;
using net::Message;
using net::Name;
using net::TransferKind;
using sec::Section;
using sec::Triplet;

namespace {

void runSendRecvLoop(benchmark::State& state, const FaultPlan* plan) {
  Fabric f(2);
  if (plan) f.setFaultPlan(*plan);
  const Name n{1, Section{Triplet(1, 8)}, {}};
  const std::vector<std::byte> payload(64);
  std::uint64_t completions = 0;
  for (auto _ : state) {
    f.postReceive(1, n, TransferKind::Data,
                  [&](const Message&) { ++completions; });
    f.send(0, n, TransferKind::Data, payload, 1);
  }
  f.flushHeldFaults();
  benchmark::DoNotOptimize(completions);
  state.counters["completions"] =
      static_cast<double>(completions) / static_cast<double>(state.iterations());
}

void BM_SendRecv_NoPlan(benchmark::State& state) {
  runSendRecvLoop(state, nullptr);
}

void BM_SendRecv_ZeroProbPlan(benchmark::State& state) {
  FaultPlan plan;  // installed, but every probability is zero
  runSendRecvLoop(state, &plan);
}

void BM_SendRecv_ActivePlan(benchmark::State& state) {
  FaultPlan plan;
  plan.dupProb = 0.2;
  plan.delayProb = 0.2;
  plan.maxDelay = 10.0;
  plan.reorderProb = 0.2;
  runSendRecvLoop(state, &plan);
}

}  // namespace

BENCHMARK(BM_SendRecv_NoPlan);
BENCHMARK(BM_SendRecv_ZeroProbPlan);
BENCHMARK(BM_SendRecv_ActivePlan);
