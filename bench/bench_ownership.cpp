// E5 — cost of the three transfer flavours of Figure 1 as payload grows:
//
//   ->    data send/receive (value only; ownership unchanged)
//   =>    ownership only (zero payload — the compiler's tool when it can
//         prove the value is dead or will be overwritten)
//   -=>   ownership + value
//
// Counters report modeled cost and bytes per transfer; wall time is the
// simulator's real per-transfer latency (threaded ping-pong). The paper's
// claim: "The compiler may be able to determine that only the ownership,
// and not the value, needs to be transferred" — i.e. "=>" should cost O(1)
// regardless of section size, while "->" and "-=>" pay beta * bytes.
#include <benchmark/benchmark.h>

#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Section;
using sec::Triplet;

namespace {

constexpr int kRounds = 16;

void reportPerOp(benchmark::State& state, rt::Runtime& runtime, Index elems,
                 const char* label) {
  state.counters["modeled_per_op"] =
      runtime.fabric().makespan() / kRounds;
  state.counters["bytes_per_op"] =
      static_cast<double>(runtime.fabric().totalStats().bytesSent) / kRounds;
  state.counters["elems"] = static_cast<double>(elems);
  state.SetLabel(label);
}

void BM_OwnershipPingPong(benchmark::State& state) {
  const bool withValue = state.range(0) != 0;
  const Index elems = state.range(1);
  for (auto _ : state) {
    rt::Runtime runtime(2);
    Section g{Triplet(1, elems)};
    const int A = runtime.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(1)}));
    runtime.run([&](rt::Proc& p) {
      for (int round = 0; round < kRounds; ++round) {
        const int src = round % 2;
        if (p.mypid() == src) {
          p.sendOwnership(A, g, withValue, std::vector<int>{1 - src});
        } else {
          p.recvOwnership(A, g, withValue);
          p.await(A, g);
        }
      }
    });
    if (state.thread_index() == 0) {  // single-threaded driver
      reportPerOp(state, runtime, elems,
                  withValue ? "ownership+value(-=>)" : "ownership(=>)");
    }
  }
}

void BM_DataSendRecv(benchmark::State& state) {
  // "->" flavour: p0 repeatedly sends its block, p1 receives into a
  // same-sized inbox. Ownership never moves.
  const Index elems = state.range(0);
  for (auto _ : state) {
    rt::Runtime runtime(2);
    Section g{Triplet(1, elems)};
    const int A = runtime.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(1)}));
    Section g2{Triplet(1, 2 * elems)};
    const int IN = runtime.declareArray<double>(
        "IN", g2, Distribution(g2, {DimSpec::block(2)}));
    runtime.run([&](rt::Proc& p) {
      Section inbox{Triplet(elems + 1, 2 * elems)};  // p1's half of IN
      for (int round = 0; round < kRounds; ++round) {
        if (p.mypid() == 0) {
          p.send(A, g, std::vector<int>{1});
        } else {
          p.recv(IN, inbox, A, g);
          p.await(IN, inbox);
        }
      }
    });
    reportPerOp(state, runtime, elems, "data(->)");
  }
}

void BM_PartialOwnershipWithSplit(benchmark::State& state) {
  // Shipping an interior slice forces the runtime to split the segment
  // (fresh descriptors + remainder copies) — the granularity price of
  // element-level ownership transfer the paper's segments amortize.
  const Index elems = state.range(0);
  for (auto _ : state) {
    rt::Runtime runtime(2);
    Section g{Triplet(1, elems)};
    const int A = runtime.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(1)}));
    Section mid{Triplet(elems / 4, 3 * elems / 4)};
    runtime.run([&](rt::Proc& p) {
      if (p.mypid() == 0) {
        p.sendOwnership(A, mid, true, std::vector<int>{1});
      } else {
        p.recvOwnership(A, mid, true);
        p.await(A, mid);
      }
    });
    reportPerOp(state, runtime, elems, "split(-=> interior)");
  }
}

}  // namespace

BENCHMARK(BM_OwnershipPingPong)
    ->ArgsProduct({{0, 1}, {64, 1024, 16384, 131072}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DataSendRecv)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(131072)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_PartialOwnershipWithSplit)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(131072)
    ->Unit(benchmark::kMillisecond);
