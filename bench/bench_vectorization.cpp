// E9 — message aggregation under the alpha/beta cost model ("combine or
// vectorize the messages", paper section 2.2; aggregation of transfers
// into one message, section 3.2).
//
// A fixed volume V of elements moves from p0 to p1 as V/g messages of g
// elements. Modeled sender cost = (V/g) * (alpha + g*beta): aggregation
// amortizes alpha. The sweep reproduces the classic saturating curve and
// reports the crossover granularity where per-message overhead stops
// dominating (g ~ alpha/beta elements). Real (wall) time shows the same
// shape through the simulator's genuine per-message bookkeeping.
#include <benchmark/benchmark.h>

#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Section;
using sec::Triplet;

namespace {

void BM_Aggregation(benchmark::State& state) {
  const Index V = 16384;  // elements moved in total
  const Index g = state.range(0);
  const Index nmsgs = V / g;
  double modeled = 0;
  for (auto _ : state) {
    rt::Runtime runtime(2);
    Section gs{Triplet(1, V)};
    const int A = runtime.declareArray<double>(
        "A", gs, Distribution(gs, {DimSpec::block(1)}));
    Section g2{Triplet(1, 2 * V)};
    const int IN = runtime.declareArray<double>(
        "IN", g2, Distribution(g2, {DimSpec::block(2)}));
    runtime.run([&](rt::Proc& p) {
      for (Index m = 0; m < nmsgs; ++m) {
        Section chunk{Triplet(m * g + 1, (m + 1) * g)};
        if (p.mypid() == 0) {
          p.send(A, chunk, std::vector<int>{1});
        } else {
          Section slot{Triplet(V + m * g + 1, V + (m + 1) * g)};
          p.recv(IN, slot, A, chunk);
        }
      }
      if (p.mypid() == 1) {
        Section all{Triplet(V + 1, 2 * V)};
        p.await(IN, all);
      }
    });
    modeled = runtime.fabric().makespan();
  }
  state.counters["modeled_s"] = modeled;
  state.counters["msgs"] = static_cast<double>(nmsgs);
  state.counters["granularity"] = static_cast<double>(g);
}

void BM_AggregationHighAlpha(benchmark::State& state) {
  // Same sweep with a 10x per-message overhead (slow network stack):
  // the crossover moves right, exactly as the model predicts.
  const Index V = 16384;
  const Index g = state.range(0);
  const Index nmsgs = V / g;
  double modeled = 0;
  for (auto _ : state) {
    rt::RuntimeOptions opts;
    opts.costModel.alpha = 1e-4;
    rt::Runtime runtime(2, opts);
    Section gs{Triplet(1, V)};
    const int A = runtime.declareArray<double>(
        "A", gs, Distribution(gs, {DimSpec::block(1)}));
    Section g2{Triplet(1, 2 * V)};
    const int IN = runtime.declareArray<double>(
        "IN", g2, Distribution(g2, {DimSpec::block(2)}));
    runtime.run([&](rt::Proc& p) {
      for (Index m = 0; m < nmsgs; ++m) {
        Section chunk{Triplet(m * g + 1, (m + 1) * g)};
        if (p.mypid() == 0) {
          p.send(A, chunk, std::vector<int>{1});
        } else {
          Section slot{Triplet(V + m * g + 1, V + (m + 1) * g)};
          p.recv(IN, slot, A, chunk);
        }
      }
      if (p.mypid() == 1) p.await(IN, Section{Triplet(V + 1, 2 * V)});
    });
    modeled = runtime.fabric().makespan();
  }
  state.counters["modeled_s"] = modeled;
  state.counters["msgs"] = static_cast<double>(nmsgs);
  state.counters["granularity"] = static_cast<double>(g);
}

void BM_MultiSectionAggregate(benchmark::State& state) {
  // Aggregated *set-of-sections* transfer (paper 3.2's proposed
  // extension, implemented as Proc::sendMulti/recvMulti): `pieces`
  // disjoint strided sections — which cannot be coalesced into one
  // rectangular section — move either as one message per piece or as a
  // single multi-section message.
  const Index V = 16384;
  const Index pieces = state.range(0);
  const bool aggregate = state.range(1) != 0;
  const Index per = V / pieces;
  double modeled = 0;
  for (auto _ : state) {
    rt::Runtime runtime(2);
    Section gs{Triplet(1, 2 * V)};
    const int A = runtime.declareArray<double>(
        "A", gs, Distribution(gs, {DimSpec::block(2)}));
    std::vector<Section> srcs, dsts;
    for (Index k = 0; k < pieces; ++k) {
      // Strided pieces interleave, so no two merge into one triplet.
      srcs.emplace_back(
          Section{Triplet(k + 1, k + 1 + pieces * (per - 1), pieces)});
      dsts.emplace_back(
          Section{Triplet(V + k + 1, V + k + 1 + pieces * (per - 1), pieces)});
    }
    runtime.run([&](rt::Proc& p) {
      if (p.mypid() == 0) {
        if (aggregate) {
          p.sendMulti(A, srcs, std::vector<int>{1});
        } else {
          for (const Section& s : srcs) p.send(A, s, std::vector<int>{1});
        }
      } else {
        if (aggregate) {
          p.recvMulti(A, dsts, A, srcs);
          for (const Section& d : dsts) p.await(A, d);
        } else {
          for (Index k = 0; k < pieces; ++k) {
            p.recv(A, dsts[static_cast<std::size_t>(k)], A,
                   srcs[static_cast<std::size_t>(k)]);
            p.await(A, dsts[static_cast<std::size_t>(k)]);
          }
        }
      }
    });
    modeled = runtime.fabric().makespan();
  }
  state.counters["modeled_s"] = modeled;
  state.counters["pieces"] = static_cast<double>(pieces);
  state.SetLabel(aggregate ? "multi-section" : "per-section");
}

}  // namespace

BENCHMARK(BM_MultiSectionAggregate)
    ->ArgsProduct({{8, 64, 512}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Aggregation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AggregationHighAlpha)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);
