// xdp_perf_gate — the checked-in perf-trajectory regression gate.
//
// Reads bench/PERF_TRAJECTORY.json (one expectation per line; see that
// file) and the BENCH_<exe>.json files a bench-smoke run emitted, and
// fails loudly when any tracked counter drifts outside its tolerance.
// The tracked counters are the *deterministic modeled* figures
// (modeled_s, msgs, bytes, completed-session counts) — never wall time,
// so the gate is stable on loaded CI machines; wall-clock trends belong
// to full bench runs, not to a pass/fail gate.
//
//   xdp_perf_gate bench/PERF_TRAJECTORY.json build/bench/smoke
//
// On failure the actual value is printed next to the expectation, so
// updating the trajectory after an *intentional* change is an edit of
// the printed line. Exit codes: 0 = all entries within tolerance,
// 1 = regression (or missing file/benchmark/counter), 2 = usage error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Expectation {
  std::string file;     // BENCH_*.json under the bench dir
  std::string name;     // benchmark row name, e.g. "BM_Jacobi/0/32"
  std::string counter;  // top-level numeric key in the row
  double value = 0.0;
  double relTol = 0.01;
};

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The quoted string value of `key` within `line`, if present.
std::optional<std::string> quotedField(const std::string& line,
                                       const std::string& key) {
  const std::string tag = "\"" + key + "\":";
  auto pos = line.find(tag);
  if (pos == std::string::npos) return std::nullopt;
  pos = line.find('"', pos + tag.size());
  if (pos == std::string::npos) return std::nullopt;
  const auto end = line.find('"', pos + 1);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(pos + 1, end - pos - 1);
}

std::optional<double> numberField(const std::string& line,
                                  const std::string& key) {
  const std::string tag = "\"" + key + "\":";
  const auto pos = line.find(tag);
  if (pos == std::string::npos) return std::nullopt;
  const char* s = line.c_str() + pos + tag.size();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return std::nullopt;
  return v;
}

/// Parse the trajectory file: every line holding a "file" key is one
/// expectation object (the surrounding JSON array syntax is decorative).
std::vector<Expectation> parseTrajectory(const std::string& text) {
  std::vector<Expectation> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    const auto file = quotedField(line, "file");
    if (!file) continue;
    Expectation e;
    e.file = *file;
    e.name = quotedField(line, "name").value_or("");
    e.counter = quotedField(line, "counter").value_or("");
    e.value = numberField(line, "value").value_or(0.0);
    e.relTol = numberField(line, "rel_tol").value_or(0.01);
    out.push_back(std::move(e));
  }
  return out;
}

/// The value of `counter` in the benchmark row named `name`: scan to the
/// row's `"name": "<name>"` key, then read keys up to the next row.
std::optional<double> rowCounter(const std::string& json,
                                 const std::string& name,
                                 const std::string& counter) {
  const std::string tag = "\"name\": \"" + name + "\"";
  const auto pos = json.find(tag);
  if (pos == std::string::npos) return std::nullopt;
  auto end = json.find("\"name\":", pos + tag.size());
  if (end == std::string::npos) end = json.size();
  const std::string row = json.substr(pos, end - pos);
  return numberField(row, counter);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s TRAJECTORY_JSON BENCH_JSON_DIR\n",
                 argv[0]);
    return 2;
  }
  const auto traj = slurp(argv[1]);
  if (!traj) {
    std::fprintf(stderr, "xdp_perf_gate: cannot read %s\n", argv[1]);
    return 2;
  }
  const std::vector<Expectation> entries = parseTrajectory(*traj);
  if (entries.empty()) {
    std::fprintf(stderr, "xdp_perf_gate: %s holds no expectations\n",
                 argv[1]);
    return 2;
  }

  const std::string dir = argv[2];
  int failures = 0;
  for (const Expectation& e : entries) {
    const std::string path = dir + "/" + e.file;
    const auto json = slurp(path);
    if (!json) {
      std::fprintf(stderr,
                   "FAIL %s %s.%s: missing %s (did the bench-smoke run "
                   "precede the gate?)\n",
                   e.file.c_str(), e.name.c_str(), e.counter.c_str(),
                   path.c_str());
      ++failures;
      continue;
    }
    const auto actual = rowCounter(*json, e.name, e.counter);
    if (!actual) {
      std::fprintf(stderr, "FAIL %s: no counter '%s' in benchmark '%s'\n",
                   e.file.c_str(), e.counter.c_str(), e.name.c_str());
      ++failures;
      continue;
    }
    const double tol = e.relTol * std::max(std::fabs(e.value), 1e-12);
    if (std::fabs(*actual - e.value) > tol) {
      std::fprintf(stderr,
                   "FAIL %s %s.%s: expected %.9g +- %g%%, got %.9g "
                   "(drift %+.2f%%)\n",
                   e.file.c_str(), e.name.c_str(), e.counter.c_str(),
                   e.value, e.relTol * 100.0, *actual,
                   (*actual - e.value) / std::max(std::fabs(e.value), 1e-12) *
                       100.0);
      ++failures;
    } else {
      std::printf("ok   %s %s.%s = %.9g\n", e.file.c_str(), e.name.c_str(),
                  e.counter.c_str(), *actual);
    }
  }
  if (failures) {
    std::fprintf(stderr,
                 "xdp_perf_gate: %d of %zu tracked counters regressed — "
                 "if the change is intentional, update %s with the values "
                 "printed above\n",
                 failures, entries.size(), argv[1]);
    return 1;
  }
  std::printf("xdp_perf_gate: all %zu tracked counters within tolerance\n",
              entries.size());
  return 0;
}
