// xdp_serve — the multi-tenant serving driver.
//
// Admits .xdp programs as sessions onto a shared server (bounded worker
// pool + endpoint arena), optionally injecting per-session faults and
// enforcing per-session quotas, and prints one report line per session
// plus a server summary. The point of the demo: whatever a session does
// — crash, deadlock, blow a quota — the server finishes every other
// session and exits cleanly.
//
//   xdp_serve prog.xdp                                # one session
//   xdp_serve a.xdp b.xdp --sessions 32 --workers 8   # round-robin mix
//   xdp_serve prog.xdp --drop 0.05 --retries 3        # lossy + retry
//   xdp_serve prog.xdp --max-steps 10000              # step quota
//   xdp_serve prog.xdp --spill-dir d --preempt-steps 50   # preempt+spill
//   xdp_serve --spill-dir d                           # resume the spills
//
// With --spill-dir the server re-admits any *.xdpspill files found there
// at startup (sessions preempted by an earlier, possibly killed, server)
// before running the FILE arguments — so FILE... may be empty when the
// directory has spills to resume.
//
// Exit codes: 0 = server ran every admitted session to a report,
// 1 = a session report was lost (server bug), 2 = usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "xdp/net/transport.hpp"
#include "xdp/serve/server.hpp"

namespace {

using namespace xdp;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE... [options]\n"
               "  --sessions N       total sessions (files round-robin; "
               "default: one per file)\n"
               "  --workers N        worker threads (default 4)\n"
               "  --max-pending N    admission bound (default 64)\n"
               "  --pipeline         standard optimization pipeline\n"
               "  --no-analyze       skip the static --analyze gate\n"
               "  --seed N           fill-kernel seed (default 42)\n"
               "  --retries N        max attempts per session (default 3)\n"
               "  --transport=locked|ring\n"
               "                     session fabric transport: inline locked\n"
               "                     delivery (default) or the lock-free\n"
               "                     ring fast path\n"
               "  --watchdog-ms N    per-session watchdog window\n"
               "  --max-steps N      per-session logical step quota\n"
               "  --max-bytes N      per-processor resident-byte quota\n"
               "  --max-msgs N       per-session message quota\n"
               "  --wall-ms N        per-session wall-clock budget\n"
               "  --drop P           per-session fault: drop probability\n"
               "  --delay P          per-session fault: delay probability\n"
               "  --crash PID        per-session fault: crash endpoint PID\n"
               "  --crash-recover    crashed endpoints restore from their\n"
               "                     last snapshot instead of dying\n"
               "                     (fail-recover; implies --checkpoint-"
               "steps 64\n"
               "                     unless given)\n"
               "  --checkpoint-steps N\n"
               "                     per-session auto-checkpoint interval\n"
               "  --preempt-steps N  checkpoint + spill each session after\n"
               "                     N statements (needs --spill-dir)\n"
               "  --spill-dir DIR    spill preempted sessions to DIR and\n"
               "                     re-admit DIR's spills at startup\n"
               "  --fault-seed N     fault decision-stream seed (default 1)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  int sessions = 0;
  serve::ServerConfig cfg;
  serve::SessionRequest proto;
  net::FaultPlan plan;
  bool anyFault = false;

  auto nextArg = [&](int& i) -> const char* {
    if (++i >= argc) {
      usage(argv[0]);
      std::exit(2);
    }
    return argv[i];
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sessions") sessions = std::stoi(nextArg(i));
    else if (arg == "--workers") cfg.workers = std::stoi(nextArg(i));
    else if (arg == "--max-pending") cfg.maxPending = std::stoi(nextArg(i));
    else if (arg == "--pipeline") proto.usePipeline = true;
    else if (arg == "--no-analyze") proto.analyze = false;
    else if (arg == "--seed") proto.fillSeed = std::stoull(nextArg(i));
    else if (arg == "--retries")
      cfg.session.retry.maxAttempts = std::stoi(nextArg(i));
    else if (arg.rfind("--transport=", 0) == 0) {
      auto k = net::parseTransportKind(arg.substr(12));
      if (!k) {
        std::fprintf(stderr, "unknown transport: %s\n", arg.c_str() + 12);
        return usage(argv[0]);
      }
      cfg.session.transport.kind = *k;
    }
    else if (arg == "--watchdog-ms")
      cfg.session.watchdogMs = std::stoi(nextArg(i));
    else if (arg == "--max-steps")
      proto.quotas.maxSteps = std::stoull(nextArg(i));
    else if (arg == "--max-bytes")
      proto.quotas.maxResidentBytes = std::stoull(nextArg(i));
    else if (arg == "--max-msgs")
      proto.quotas.maxMessages = std::stoull(nextArg(i));
    else if (arg == "--wall-ms") proto.quotas.wallBudgetMs = std::stoi(nextArg(i));
    else if (arg == "--drop") { plan.dropProb = std::stod(nextArg(i)); anyFault = true; }
    else if (arg == "--delay") {
      plan.delayProb = std::stod(nextArg(i));
      plan.maxDelay = 1e-4;
      anyFault = true;
    } else if (arg == "--crash") {
      plan.crashPids.push_back(std::stoi(nextArg(i)));
      anyFault = true;
    } else if (arg == "--crash-recover") {
      plan.crashFate = net::CrashFate::Recover;
      anyFault = true;
    } else if (arg == "--checkpoint-steps")
      proto.checkpointIntervalSteps = std::stoull(nextArg(i));
    else if (arg == "--preempt-steps")
      proto.preemptAfterSteps = std::stoull(nextArg(i));
    else if (arg == "--spill-dir") cfg.session.spillDir = nextArg(i);
    else if (arg == "--fault-seed") plan.seed = std::stoull(nextArg(i));
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && cfg.session.spillDir.empty()) return usage(argv[0]);
  if (sessions <= 0) sessions = static_cast<int>(files.size());
  if (anyFault) proto.faultPlan = plan;
  // Fail-recover needs snapshots to roll back to.
  if (plan.crashFate == net::CrashFate::Recover &&
      proto.checkpointIntervalSteps == 0)
    proto.checkpointIntervalSteps = 64;
  if (!cfg.session.spillDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg.session.spillDir, ec);
    if (ec) {
      std::fprintf(stderr, "xdp_serve: cannot create spill dir %s: %s\n",
                   cfg.session.spillDir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  std::vector<std::string> sources;
  for (const auto& f : files) {
    std::ifstream in(f);
    if (!in) {
      std::fprintf(stderr, "xdp_serve: cannot open %s\n", f.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    sources.push_back(buf.str());
  }

  serve::Server server(cfg);
  if (!cfg.session.spillDir.empty()) {
    int n = server.readmitSpilled(cfg.session.spillDir);
    if (n > 0)
      std::printf("xdp_serve: re-admitted %d spilled session%s from %s\n",
                  n, n == 1 ? "" : "s", cfg.session.spillDir.c_str());
  }
  std::vector<std::future<serve::SessionReport>> futs;
  for (int s = 0; s < sessions; ++s) {
    serve::SessionRequest req = proto;
    const std::size_t fi = static_cast<std::size_t>(s) % files.size();
    req.name = files[fi] + "#" + std::to_string(s);
    req.source = sources[fi];
    try {
      futs.push_back(server.submit(std::move(req)));
    } catch (const serve::AdmissionRejected& e) {
      std::printf("session %-28s SHED      %s\n",
                  (files[fi] + "#" + std::to_string(s)).c_str(), e.what());
    }
  }

  int lost = 0;
  serve::ServerStats drained{};
  for (auto& fut : futs) {
    serve::SessionReport r;
    try {
      r = fut.get();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "xdp_serve: lost a session report: %s\n",
                   e.what());
      ++lost;
      continue;
    }
    std::string tail;
    if (!r.quotaResource.empty()) tail += " quota=" + r.quotaResource;
    if (r.recovery.recoveries > 0)
      tail += " recoveries=" + std::to_string(r.recovery.recoveries);
    if (r.recovery.resumed) tail += " resumed";
    if (!r.recovery.spillPath.empty())
      tail += " spill=" + r.recovery.spillPath;
    if (!r.hygieneClean) tail += " HYGIENE-LEAK";
    if (r.outcome != serve::SessionOutcome::Completed && !r.error.empty()) {
      std::string first = r.error.substr(0, r.error.find('\n'));
      if (first.size() > 120) first = first.substr(0, 117) + "...";
      tail += " error: " + first;
    }
    std::printf(
        "session %-28s %-10s attempts=%d procs=%d msgs=%llu digest=%016llx%s\n",
        r.name.c_str(), serve::outcomeName(r.outcome), r.attempts, r.nprocs,
        static_cast<unsigned long long>(r.net.messagesSent),
        static_cast<unsigned long long>(r.resultDigest), tail.c_str());
  }
  server.shutdown();
  drained = server.stats();
  std::printf(
      "xdp_serve: %llu admitted (%llu re-admitted), %llu completed, "
      "%llu failed, %llu shed, %llu retries; arena in use at exit: %d\n",
      static_cast<unsigned long long>(drained.admitted),
      static_cast<unsigned long long>(drained.readmitted),
      static_cast<unsigned long long>(drained.completed),
      static_cast<unsigned long long>(drained.failed),
      static_cast<unsigned long long>(drained.rejected),
      static_cast<unsigned long long>(drained.retries),
      server.endpointsInUse());
  return lost == 0 ? 0 : 1;
}
