// xdpc — the XDP compiler driver.
//
// Reads an IL+XDP program in the textual dialect (see src/il/parser.hpp),
// applies an optimization pipeline, and prints and/or executes the result
// on the simulated SPMD machine.
//
//   xdpc prog.xdp --print                        # parse + pretty-print
//   xdpc prog.xdp --analyze                      # static Figure-1 verifier
//   xdpc prog.xdp --pipeline --print             # the standard pipeline
//   xdpc prog.xdp --pipeline --verify-passes     # re-verify after each pass
//   xdpc prog.xdp --passes lower-owner-computes,comm-binding --run
//   xdpc prog.xdp --pipeline --run --trace       # per-pass program dumps
//
// --run registers the built-in kernels ("fill" with --seed, "fft1d") and
// reports traffic and modeled-time statistics after the SPMD region.
//
// Exit codes: 0 = success, 1 = diagnostics reported or a compile/run
// failure, 2 = usage error (bad flag, unknown pass, missing file).
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "xdp/analysis/cost.hpp"
#include "xdp/analysis/verifier.hpp"
#include "xdp/apps/fft.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/ckpt/io.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/net/transport.hpp"
#include "xdp/opt/auto_place.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/json.hpp"

namespace {

using namespace xdp;

std::map<std::string, opt::PassFn> passRegistry() {
  return {
      {"lower-owner-computes", opt::lowerOwnerComputes},
      {"redundant-transfer-elim", opt::redundantTransferElimination},
      {"dead-array-elim", opt::deadArrayElimination},
      {"message-vectorize", opt::messageVectorization},
      {"compute-rule-elim", opt::computeRuleElimination},
      {"single-iteration-elim", opt::singleIterationElimination},
      {"loop-fusion", opt::loopFusion},
      {"await-sinking", opt::awaitSinking},
      {"const-fold", opt::constantFolding},
      {"recv-hoisting", opt::recvHoisting},
      {"comm-binding", opt::commBinding},
  };
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [options]\n"
               "  --print            pretty-print the (optimized) program\n"
               "  --parseable        print in the re-parseable dialect\n"
               "  --pipeline         apply the standard pass pipeline\n"
               "  --passes a,b,c     apply the named passes in order\n"
               "  --list-passes      list available passes\n"
               "  --analyze          statically verify the Figure-1 section-\n"
               "                     state rules (after any passes applied);\n"
               "                     exit 1 if errors are found\n"
               "  --cost             static communication-cost report: per-\n"
               "                     statement modeled bytes/messages, the\n"
               "                     placement lower bound and %% of optimal\n"
               "  --auto-place       search BLOCK/CYCLIC/CYCLIC(b) placements\n"
               "                     per array, rewrite declarations to the\n"
               "                     modeled-bytes argmin (before any passes)\n"
               "  --format=json      machine-readable --analyze/--cost/\n"
               "                     --auto-place output (stable keys)\n"
               "  --verify-passes    re-run the verifier after every pass and\n"
               "                     fail on the pass that introduces a\n"
               "                     violation (implies --pipeline if no\n"
               "                     passes are named)\n"
               "  --run              execute on the simulated machine\n"
               "  --backend=tree|vm  execution engine for --run: the\n"
               "                     tree-walking interpreter (default) or\n"
               "                     the compiled bytecode VM\n"
               "  --transport=locked|ring\n"
               "                     fabric message transport for --run:\n"
               "                     inline locked delivery (default) or the\n"
               "                     lock-free ring fast path\n"
               "  --debug-checks     enforce the Figure-1 usage rules\n"
               "  --seed N           fill-kernel seed (default 42)\n"
               "  --checkpoint-dir DIR\n"
               "                     persist coordinated snapshots to DIR\n"
               "                     during --run (ckpt-NNNNNNNN.xdpckpt)\n"
               "  --checkpoint-interval N\n"
               "                     auto-checkpoint every N executed\n"
               "                     statements (default 1024 when only\n"
               "                     --checkpoint-dir is given)\n"
               "  --trace            dump the program after every pass\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::vector<std::string> passNames;
  bool print = false, parseable = false, run = false, trace = false;
  bool debugChecks = false, analyze = false, verifyPasses = false;
  bool cost = false, autoPlace = false, jsonFormat = false;
  interp::Backend backend = interp::Backend::TreeWalk;
  net::TransportOptions transport;
  std::uint64_t seed = 42;
  std::string ckptDir;
  std::uint64_t ckptInterval = 0;

  auto reg = passRegistry();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--print") print = true;
    else if (arg == "--parseable") parseable = true;
    else if (arg == "--run") run = true;
    else if (arg == "--backend=tree") backend = interp::Backend::TreeWalk;
    else if (arg == "--backend=vm") backend = interp::Backend::Bytecode;
    else if (arg.rfind("--transport=", 0) == 0) {
      auto k = net::parseTransportKind(arg.substr(12));
      if (!k) {
        std::fprintf(stderr, "unknown transport: %s\n", arg.c_str() + 12);
        return usage(argv[0]);
      }
      transport.kind = *k;
    }
    else if (arg == "--trace") trace = true;
    else if (arg == "--debug-checks") debugChecks = true;
    else if (arg == "--analyze") analyze = true;
    else if (arg == "--cost") cost = true;
    else if (arg == "--auto-place") autoPlace = true;
    else if (arg == "--format=json") jsonFormat = true;
    else if (arg == "--format=text") jsonFormat = false;
    else if (arg == "--verify-passes") verifyPasses = true;
    else if (arg == "--pipeline") {
      for (const auto& p : opt::standardPipeline()) passNames.push_back(p.name);
    } else if (arg == "--passes") {
      if (++i >= argc) return usage(argv[0]);
      std::stringstream ss(argv[i]);
      std::string name;
      while (std::getline(ss, name, ',')) passNames.push_back(name);
    } else if (arg == "--seed") {
      if (++i >= argc) return usage(argv[0]);
      seed = std::stoull(argv[i]);
    } else if (arg == "--checkpoint-dir") {
      if (++i >= argc) return usage(argv[0]);
      ckptDir = argv[i];
    } else if (arg == "--checkpoint-interval") {
      if (++i >= argc) return usage(argv[0]);
      ckptInterval = std::stoull(argv[i]);
    } else if (arg == "--list-passes") {
      for (const auto& [name, fn] : reg) std::printf("%s\n", name.c_str());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      file = arg;
    }
  }
  if (file.empty()) return usage(argv[0]);
  if (verifyPasses && passNames.empty()) {
    for (const auto& p : opt::standardPipeline()) passNames.push_back(p.name);
  }
  for (const std::string& name : passNames) {
    if (!reg.count(name)) {
      std::fprintf(stderr, "xdpc: unknown pass '%s' (see --list-passes)\n",
                   name.c_str());
      return 2;
    }
  }

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "xdpc: cannot open %s\n", file.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    il::Program prog = il::parseProgram(buf.str());
    if (autoPlace) {
      opt::AutoPlaceResult ar = opt::autoPlace(prog);
      if (jsonFormat) {
        auto scoreJson = [&prog](const opt::PlacementScore& s) {
          std::string out = "{\"valid\": ";
          out += s.valid ? "true" : "false";
          out += ", \"bytes\": " + std::to_string(s.bytes);
          out += ", \"messages\": " + std::to_string(s.messages);
          out += ", \"dists\": [";
          for (std::size_t i = 0; i < s.dists.size(); ++i) {
            if (i) out += ", ";
            out += json::str(prog.arrays[i].name + " " + s.dists[i].str());
          }
          out += "]}";
          return out;
        };
        std::printf(
            "{\"file\": %s, \"candidates_tried\": %zu, "
            "\"candidates_valid\": %zu, \"original\": %s, \"best\": %s, "
            "\"lower_bound\": %lld, \"pct_of_optimal\": %.1f}\n",
            json::str(file).c_str(), ar.candidatesTried, ar.candidatesValid,
            scoreJson(ar.original).c_str(), scoreJson(ar.best).c_str(),
            static_cast<long long>(ar.lowerBound), ar.pctOfOptimal());
      } else {
        std::printf("xdpc: auto-place: tried %zu candidates (%zu valid)\n",
                    ar.candidatesTried, ar.candidatesValid);
        for (std::size_t i = 0; i < prog.arrays.size(); ++i) {
          const std::string& from = ar.original.dists[i].str();
          const std::string& to = ar.best.dists[i].str();
          std::printf("xdpc: auto-place: %s %s%s%s\n",
                      prog.arrays[i].name.c_str(), from.c_str(),
                      from == to ? "" : " -> ",
                      from == to ? " (kept)" : to.c_str());
        }
        std::printf(
            "xdpc: auto-place: modeled %lld bytes in %lld messages "
            "(was %lld bytes in %lld messages); lower bound %lld bytes; "
            "%.1f%% of optimal\n",
            static_cast<long long>(ar.best.bytes),
            static_cast<long long>(ar.best.messages),
            static_cast<long long>(ar.original.bytes),
            static_cast<long long>(ar.original.messages),
            static_cast<long long>(ar.lowerBound), ar.pctOfOptimal());
      }
      if (!ar.best.valid) {
        std::fprintf(stderr,
                     "xdpc: auto-place: no candidate placement verifies "
                     "with an exact cost model; keeping the original\n");
        return 1;
      }
      prog = ar.program;
    }
    // Snapshot for the parametric lower bound: the bound reads the
    // owner-computes sweeps, which lowering rewrites into guarded sends.
    const il::Program pre = prog;
    if (!passNames.empty()) {
      opt::PassManager pm;
      for (const std::string& name : passNames) pm.add(name, reg.at(name));
      pm.verifyEachPass(verifyPasses);
      std::string traceStr;
      try {
        prog = pm.run(prog, trace ? &traceStr : nullptr);
      } catch (const opt::PassVerifyError& e) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(), e.what());
        return 1;
      }
      if (trace) std::printf("%s", traceStr.c_str());
      if (verifyPasses) {
        std::printf("xdpc: %zu passes verified: no introduced violations\n",
                    passNames.size());
      }
    }
    if (analyze) {
      analysis::VerifyResult r = analysis::verifyProgram(prog);
      if (jsonFormat) {
        std::printf("%s\n", analysis::diagnosticsJson(prog, r, file).c_str());
      } else {
        std::string report = analysis::formatDiagnostics(prog, r, file);
        if (!report.empty()) std::fprintf(stderr, "%s", report.c_str());
        std::printf("xdpc: analyzed %llu abstract statements: %zu errors, "
                    "%zu warnings%s\n",
                    static_cast<unsigned long long>(r.stmtsAnalyzed),
                    r.errors(), r.count(analysis::Severity::Warning),
                    r.exhaustive ? "" : " (not exhaustive)");
      }
      if (r.errors() > 0) return 1;
    }
    if (cost) {
      analysis::CostReport cr = analysis::analyzeCost(prog, pre);
      if (jsonFormat) {
        std::printf("%s\n", analysis::costReportJson(prog, cr, file).c_str());
      } else {
        std::printf("%s", analysis::formatCostReport(prog, cr, file).c_str());
      }
    }
    if (print && !trace) {
      il::PrintOptions po;
      po.parseable = parseable;
      std::printf("%s", il::printProgram(prog, po).c_str());
    }
    if (run) {
      rt::RuntimeOptions opts;
      opts.debugChecks = debugChecks;
      opts.transport = transport;
      interp::InterpOptions iopts;
      iopts.backend = backend;
      interp::Interpreter interp(prog, opts, iopts);
      apps::registerFillKernel(interp, seed);
      apps::registerFftKernels(interp);
      if (!ckptDir.empty() || ckptInterval > 0) {
        ckpt::CkptOptions co;
        co.dir = ckptDir;
        co.intervalSteps = ckptInterval > 0 ? ckptInterval : 1024;
        interp.runtime().enableCheckpointing(co);
      }
      interp.run();
      if (interp.runtime().checkpointingEnabled()) {
        const ckpt::StoreStats& cs = interp.runtime().ckptStore()->stats();
        std::printf(
            "xdpc: checkpoints: %llu snapshots (%llu records, %llu bytes "
            "newest), %llu recoveries\n",
            static_cast<unsigned long long>(cs.snapshots),
            static_cast<unsigned long long>(cs.lastRecords),
            static_cast<unsigned long long>(cs.lastBytes),
            static_cast<unsigned long long>(interp.runtime().recoveries()));
      }
      auto net = interp.runtime().fabric().totalStats();
      auto st = interp.totalStats();
      std::printf(
          "xdpc: ran on %d processors: %llu msgs (%llu rendezvous, %llu "
          "unexpected), %llu bytes, %llu ownership transfers, %llu rule "
          "evals, modeled makespan %.6g s\n",
          prog.nprocs, static_cast<unsigned long long>(net.messagesSent),
          static_cast<unsigned long long>(net.rendezvousSends),
          static_cast<unsigned long long>(net.unexpectedMessages),
          static_cast<unsigned long long>(net.bytesSent),
          static_cast<unsigned long long>(net.ownershipTransfers),
          static_cast<unsigned long long>(st.rulesEvaluated),
          interp.runtime().fabric().makespan());
      if (interp.runtime().fabric().undeliveredCount() != 0) {
        std::fprintf(stderr,
                     "xdpc: warning: %zu undelivered messages (a send had "
                     "no matching receive)\n",
                     interp.runtime().fabric().undeliveredCount());
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xdpc: %s\n", e.what());
    return 1;
  }
  return 0;
}
