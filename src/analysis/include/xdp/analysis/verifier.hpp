// Static verification of the Figure-1 section-state rules over IL+XDP
// programs — the methodology's promise made checkable: because placement
// and movement are explicit in the IL, the compiler can *prove* the usage
// rules instead of trusting the runtime's --debug-checks to catch a
// violation at execution time.
//
// verifyProgram() abstractly executes the program once per processor.
// Distributions, mypid, nprocs and (in the supported programs) loop bounds
// and compute rules are compile-time evaluable, so the abstract
// interpretation is usually *exact*: per (pid, symbol) it tracks the owned
// region set (including transitional subsections), the pending receive
// initiations, and the regions whose ownership was transferred away.
// Wherever exactness is lost — a data-dependent rule or loop bound — the
// state joins to Top and the verifier goes silent on the affected facts
// rather than risk a false positive; VerifyResult::exhaustive reports
// whether any such widening happened.
//
// Diagnostic classes (DiagKind):
//   NotAccessible    use of a section that is provably not Accessible
//                    (use-before-receive, use-after-ownership-transfer,
//                    read of a transitional section, receive into unowned)
//   SendUnowned      data/ownership send of a section the sender does not own
//   DoubleOwnership  ownership sent twice, or received while still owned
//   UnmatchedSend    a send whose message provably has no matching receive
//   OrphanRecv       a receive initiation no send will ever complete
//                    (an await of it would deadlock)
//   AwaitMismatch    await orderings: await of an unowned section (always
//                    false), or an await that provably precedes the receive
//                    initiation it is meant to synchronize with
//   TransferMismatch size/type/destination mismatches a transfer statement
//                    would trip XDP_CHECK on at run time
//
// Scope / soundness limits (see DESIGN.md §7): kernel calls are opaque and
// their argument sections are not checked (the built-in `fill` touches only
// the owned intersection by contract), and *unguarded* element assignments
// are treated as pre-lowering owner-computes dialect (they denote global
// assignments that lowerOwnerComputes will make explicit) and are exempt.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xdp/il/program.hpp"

namespace xdp::analysis {

enum class Severity { Note, Warning, Error };

enum class DiagKind {
  NotAccessible,
  SendUnowned,
  DoubleOwnership,
  UnmatchedSend,
  OrphanRecv,
  AwaitMismatch,
  TransferMismatch,
};

const char* severityName(Severity s);
const char* kindName(DiagKind k);

struct Diagnostic {
  Severity severity = Severity::Error;
  DiagKind kind = DiagKind::NotAccessible;
  int pid = -1;       ///< processor of the abstract trace (-1 = global fact)
  il::StmtPtr stmt;   ///< offending statement (may be null)
  il::SrcLoc loc;     ///< statement source position (line 0 = unknown)
  std::string message;
};

struct VerifyOptions {
  /// Abstract-statement budget across all processors; exceeding it aborts
  /// the analysis with exhaustive=false (and no matching diagnostics).
  std::uint64_t maxSteps = 4'000'000;
  /// Cross-processor send/receive matching (UnmatchedSend / OrphanRecv).
  bool matchComm = true;
  /// Record a CostEvent at every message-emitting point (see below).
  bool collectCost = false;
  /// Placement-oblivious abstract execution: initial ownership, partition
  /// queries (mypart/partof) and owner-routed destinations are all unknown,
  /// so only communication that happens under *every* placement stays
  /// definite. The cost analyzer's placement-invariant lower bound runs the
  /// verifier in this mode; diagnostics are meaningless here and callers
  /// should ignore them (and disable matchComm).
  bool obliviousPlacement = false;
};

/// Transfer class of a modeled message; numerically mirrors
/// net::TransferKind (analysis does not link against xdp::net).
enum class CostClass { Data, Own, OwnVal };

/// One message-emitting point of one processor's abstract trace. The byte
/// accounting mirrors the runtime exactly (src/rt/proc.cpp): Data and
/// OwnVal messages carry elems*elemSize payload bytes per message, pure
/// Own messages are header-only (0 bytes, still one message). `messages`
/// is the fan-out (one per destination for send-to-set data sends).
/// `definite` means the trace provably emits exactly this event: not under
/// an undecidable guard or widened loop, and — for ownership sends — the
/// sender provably owns the section (an unowned ownership send is a
/// runtime no-op that emits nothing).
struct CostEvent {
  int pid = -1;
  int sym = -1;
  il::StmtPtr stmt;
  il::SrcLoc loc;
  CostClass cls = CostClass::Data;
  sec::Index elems = 0;
  sec::Index messages = 1;
  bool definite = true;
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;
  /// True iff the abstract execution was exact: no widening, no unknown
  /// guard, and the step budget sufficed. When false the verifier may have
  /// stayed silent about parts of the program (never the reverse).
  bool exhaustive = true;
  std::uint64_t stmtsAnalyzed = 0;
  /// Populated when VerifyOptions::collectCost is set.
  std::vector<CostEvent> costEvents;

  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::Error); }
  bool clean() const { return diagnostics.empty(); }
};

VerifyResult verifyProgram(const il::Program& prog,
                           const VerifyOptions& opts = {});

/// "file:line:col: error: message [p2]"; the position prefix is omitted
/// when the statement has no source location (builder-made programs), in
/// which case the pretty-printed statement is appended for context.
std::string formatDiagnostic(const il::Program& prog, const Diagnostic& d,
                             const std::string& file = "");

/// All diagnostics of `r`, one per line (empty string when clean).
std::string formatDiagnostics(const il::Program& prog, const VerifyResult& r,
                              const std::string& file = "");

/// The whole result as one JSON object for machine consumption
/// (`xdpc --analyze --format=json`). Stable keys: every diagnostic is
/// {"class","severity","file","line","col","pid","message"}, and the
/// object carries {"diagnostics","errors","warnings","exhaustive",
/// "stmts_analyzed"}.
std::string diagnosticsJson(const il::Program& prog, const VerifyResult& r,
                            const std::string& file = "");

}  // namespace xdp::analysis
