// Static communication-cost analysis (DESIGN.md §10).
//
// analyzeCost() runs the Figure-1 abstract interpreter twice:
//
//   1. exact mode — per (pid, symbol, statement) it accumulates the
//      modeled bytes and messages of every send the abstract traces emit,
//      mirroring the runtime's NetStats accounting bit for bit: Data and
//      ownership+value messages carry count*elemSize payload bytes, pure
//      ownership messages are header-only, and a send-to-set emits one
//      message per destination. When the abstract execution is exhaustive
//      and every event is definite, CostReport::exact is true and
//      bytesMoved/messages equal the runtime's bytesSent/messagesSent on
//      any backend — the analyzer doubles as a differential oracle.
//
//   2. placement-oblivious mode — initial ownership, partition queries
//      and owner-routed destinations are unknown, so the only sends that
//      stay definite are those the program emits under *every* placement
//      of its arrays. Their bytes form the placement-invariant component
//      of the lower bound.
//
// The parametric component covers the opposite case: pre-lowering
// owner-computes sweeps (`do i: A[a*i+b] = ... A[a*i+b'] ...`) move no
// explicit messages yet, but any placement of A must still move the
// values that cross ownership boundaries. parametricLowerBound() derives
// the closed-form chain-cut bound (see DESIGN.md §10.2) over such loops.
//
// Byte arithmetic throughout uses arith::checkedMulNonNeg /
// checkedAddNonNeg: adversarial extents raise UsageError instead of
// wrapping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xdp/analysis/verifier.hpp"

namespace xdp::analysis {

/// Aggregated cost of one send statement across all pids and iterations.
struct StmtCost {
  il::StmtPtr stmt;
  il::SrcLoc loc;
  int sym = -1;
  CostClass cls = CostClass::Data;
  std::int64_t bytes = 0;
  std::int64_t messages = 0;
  bool definite = true;  ///< every contributing event was definite
};

struct ProcCost {
  std::int64_t bytes = 0;
  std::int64_t messages = 0;
};

struct SymbolCost {
  int sym = -1;
  std::int64_t bytes = 0;
  std::int64_t messages = 0;
};

struct CostReport {
  /// True iff bytesMoved/messages are provably the runtime totals: the
  /// exact abstract execution was exhaustive and every send event
  /// definite. When false the totals are the definite subset (a lower
  /// estimate) and should not be gated on.
  bool exact = false;
  std::int64_t bytesMoved = 0;
  std::int64_t messages = 0;
  /// Placement-invariant component: bytes of sends emitted under every
  /// placement (oblivious-mode definite Data sends).
  std::int64_t invariantBound = 0;
  /// Chain-cut component from owner-computes sweeps (0 unless derived
  /// from a pre-lowering program; see analyzeCost(prog, pre)).
  std::int64_t parametricBound = 0;

  std::vector<ProcCost> perProc;      ///< indexed by pid
  std::vector<SymbolCost> perSymbol;  ///< only symbols with traffic
  std::vector<StmtCost> perStmt;      ///< sorted by source position

  std::int64_t lowerBound() const { return invariantBound + parametricBound; }
  /// 100 * lowerBound / bytesMoved, with 0 bytes counting as 100% when
  /// the bound is 0 too (nothing must move, nothing does).
  double pctOfOptimal() const;
};

/// Cost of `prog` as written; the parametric bound is derived from
/// `prog`'s own owner-computes sweeps (nonzero only pre-lowering).
CostReport analyzeCost(const il::Program& prog);

/// Cost of the optimized program `prog` with the parametric bound derived
/// from `pre`, the same program before the pass pipeline ran (lowering
/// guards the sweeps, so the sweep structure is only visible in `pre`).
CostReport analyzeCost(const il::Program& prog, const il::Program& pre);

/// The closed-form chain-cut bound alone (DESIGN.md §10.2).
std::int64_t parametricLowerBound(const il::Program& prog);

/// Human-readable per-statement report ("file:line:col: ...").
std::string formatCostReport(const il::Program& prog, const CostReport& r,
                             const std::string& file = "");

/// The report as one JSON object (stable keys; see DESIGN.md §10.4).
std::string costReportJson(const il::Program& prog, const CostReport& r,
                           const std::string& file = "");

}  // namespace xdp::analysis
