// The abstract interpreter behind verifyProgram(). Structure mirrors
// interp::Exec statement by statement — where the interpreter performs a
// runtime operation, the verifier applies the operation's Figure-1 state
// transition to an abstract per-(pid, symbol) ownership state and checks
// its preconditions. The correspondence is load-bearing: every diagnostic
// here maps to a concrete failure the runtime's --debug-checks (or the
// fabric's undelivered-message accounting) would report, which is what the
// differential oracle in test_pipeline_fuzz exercises.
#include "xdp/analysis/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <variant>

#include "xdp/il/printer.hpp"
#include "xdp/rt/types.hpp"
#include "xdp/support/arith.hpp"
#include "xdp/support/check.hpp"
#include "xdp/support/json.hpp"

namespace xdp::analysis {
namespace {

using il::DestSpec;
using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SecExprKind;
using il::SectionExprPtr;
using il::SrcLoc;
using il::Stmt;
using il::StmtKind;
using il::StmtPtr;
using sec::Index;
using sec::Point;
using sec::RegionList;
using sec::Section;
using sec::Triplet;

using Value = std::variant<Index, double, bool>;
using AbsVal = std::optional<Value>;

/// Thrown inside compute-rule evaluation when the rule *definitely*
/// references the value of an unowned section: the rule is then false
/// (paper 2.4), exactly as in the interpreter.
struct UnownedRef {};
/// Abstract-step budget exhausted; analysis of this program aborts.
struct BudgetExceeded {};

Index asIntV(const Value& v) {
  if (std::holds_alternative<Index>(v)) return std::get<Index>(v);
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v) ? 1 : 0;
  double d = std::get<double>(v);
  return static_cast<Index>(std::llround(d));
}

bool intExact(const Value& v) {
  if (!std::holds_alternative<double>(v)) return true;
  double d = std::get<double>(v);
  return static_cast<double>(static_cast<Index>(std::llround(d))) == d;
}

double asRealV(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<Index>(v))
    return static_cast<double>(std::get<Index>(v));
  return std::get<bool>(v) ? 1.0 : 0.0;
}

bool asBoolV(const Value& v) {
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v);
  if (std::holds_alternative<Index>(v)) return std::get<Index>(v) != 0;
  return std::get<double>(v) != 0.0;
}

std::optional<Index> knownInt(const AbsVal& v) {
  if (!v || !intExact(*v)) return std::nullopt;
  return asIntV(*v);
}

std::optional<bool> knownBool(const AbsVal& v) {
  if (!v) return std::nullopt;
  return asBoolV(*v);
}

bool sameValue(const Value& a, const Value& b) { return a == b; }

// --- abstract section state -------------------------------------------------

/// Figure-1 state of one symbol on one processor. `owned` includes
/// transitional subsections (segments exist for them); `pending` lists the
/// uncompleted receive initiations (their union with `owned` determines
/// Accessible); `gone` accumulates regions whose ownership this processor
/// transferred away (only used to sharpen double-transfer messages).
struct SymState {
  bool top = false;  ///< unknown — every query about this symbol is silent
  RegionList owned;
  std::vector<Section> pending;
  RegionList gone;

  void makeTop() {
    top = true;
    owned = RegionList();
    pending.clear();
    gone = RegionList();
  }
};

bool pendingOverlaps(const std::vector<Section>& pending, const Section& s) {
  for (const Section& p : pending) {
    if (p.rank() != s.rank()) continue;
    if (!Section::intersect(p, s).empty()) return true;
  }
  return false;
}

void completePendingOver(std::vector<Section>& pending, const Section& s) {
  pending.erase(std::remove_if(pending.begin(), pending.end(),
                               [&](const Section& p) {
                                 return p.rank() == s.rank() &&
                                        !Section::intersect(p, s).empty();
                               }),
                pending.end());
}

std::vector<std::string> pendingKeys(const std::vector<Section>& pending) {
  std::vector<std::string> keys;
  keys.reserve(pending.size());
  for (const Section& p : pending) keys.push_back(p.str());
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool sameSymState(const SymState& a, const SymState& b) {
  if (a.top != b.top) return false;
  if (a.top) return true;
  return a.owned.sameSet(b.owned) && a.gone.sameSet(b.gone) &&
         pendingKeys(a.pending) == pendingKeys(b.pending);
}

/// Per-processor machine state: symbol states + universal scalars.
struct Frame {
  std::vector<SymState> syms;
  std::map<std::string, AbsVal> env;
};

bool sameFrame(const Frame& a, const Frame& b) {
  for (std::size_t i = 0; i < a.syms.size(); ++i)
    if (!sameSymState(a.syms[i], b.syms[i])) return false;
  if (a.env.size() != b.env.size()) return false;
  for (const auto& [k, v] : a.env) {
    auto it = b.env.find(k);
    if (it == b.env.end()) return false;
    if (v.has_value() != it->second.has_value()) return false;
    if (v && !sameValue(*v, *it->second)) return false;
  }
  return true;
}

/// Join `b` into `a`. The domain is deliberately shallow: any disagreement
/// tops the symbol (or forgets the scalar). Precision after a join only
/// matters for programs with data-dependent rules, which are outside the
/// exact fragment anyway — soundness (no false positives) is what counts.
void joinFrame(Frame& a, const Frame& b) {
  for (std::size_t i = 0; i < a.syms.size(); ++i)
    if (!sameSymState(a.syms[i], b.syms[i])) a.syms[i].makeTop();
  for (auto& [k, v] : a.env) {
    auto it = b.env.find(k);
    if (it == b.env.end() || v.has_value() != it->second.has_value() ||
        (v && !sameValue(*v, *it->second)))
      v = std::nullopt;
  }
  for (const auto& [k, v] : b.env)
    if (!a.env.count(k)) a.env[k] = std::nullopt;
}

// --- communication events ---------------------------------------------------

enum class EvClass { Data, Own, OwnVal };

struct Event {
  bool isSend = false;
  EvClass cls = EvClass::Data;
  int pid = -1;
  int sym = -1;    ///< name symbol (the *source* symbol for data receives)
  Section name;    ///< name section (messages match on (sym, name) exactly)
  std::optional<std::vector<int>> dests;  ///< sends: bound destinations
  bool conditional = false;  ///< recorded under an unknown guard / widening
  int seq = 0;               ///< per-pid program order
  StmtPtr stmt;
};

/// Receive initiation viewed from the destination side, for the
/// await-before-initiate ordering check.
struct RecvInit {
  int sym = -1;
  Section sec;
  int seq = 0;
  bool conditional = false;
  SrcLoc loc;
};

/// An await that found the awaited section fully accessible with nothing
/// pending ("trivial"): legal, but suspicious if a *later* receive on the
/// same processor initiates the very data it was meant to wait for.
struct AwaitRec {
  int sym = -1;
  Section sec;
  int seq = 0;
  bool conditional = false;
  StmtPtr stmt;
};

struct Shared {
  std::uint64_t steps = 0;
  std::vector<Event> events;
  std::set<int> poisonedSyms;  ///< name symbol had an unevaluable section
  std::set<std::pair<int, const Stmt*>> seenDiags;
  bool incomplete = false;  ///< some pid's abstract run aborted
};

// --- the per-processor abstract executor -------------------------------------

class PidExec {
 public:
  PidExec(const Program& prog, const VerifyOptions& opts, Shared& sh,
          VerifyResult& res, int pid)
      : prog_(prog), opts_(opts), sh_(sh), res_(res), pid_(pid) {
    frame_.syms.resize(prog.arrays.size());
    for (std::size_t i = 0; i < prog.arrays.size(); ++i) {
      if (opts.obliviousPlacement)
        frame_.syms[i].makeTop();  // who owns what is placement-dependent
      else
        frame_.syms[i].owned = prog.arrays[i].dist.localPart(pid);
    }
  }

  void run() {
    try {
      exec(prog_.body);
    } catch (const BudgetExceeded&) {
      res_.exhaustive = false;
      sh_.incomplete = true;
    } catch (const Error&) {
      // A malformed construct the abstract evaluator could not guard
      // against (the runtime would XDP_CHECK on it). Stay silent.
      res_.exhaustive = false;
      sh_.incomplete = true;
    }
    checkAwaitOrdering();
  }

 private:
  // --- diagnostics -----------------------------------------------------

  void diag(DiagKind kind, Severity sev, const StmtPtr& stmt,
            std::string msg) {
    if (condDepth_ > 0) {
      // The enclosing guard was not decidable: the violation is definite
      // *if* this code runs, but we cannot prove it runs.
      if (sev == Severity::Error) sev = Severity::Warning;
      msg += " (in conditionally-executed code)";
    }
    auto key = std::make_pair(static_cast<int>(kind),
                              static_cast<const Stmt*>(stmt.get()));
    if (!sh_.seenDiags.insert(key).second) return;
    Diagnostic d;
    d.severity = sev;
    d.kind = kind;
    d.pid = pid_;
    d.stmt = stmt;
    d.loc = stmt ? stmt->loc : SrcLoc{};
    d.message = std::move(msg);
    res_.diagnostics.push_back(std::move(d));
  }

  std::string symName(int sym) const { return prog_.decl(sym).name; }

  std::string secOf(int sym, const Section& s) const {
    return s.str() + " of '" + symName(sym) + "'";
  }

  // --- state queries ---------------------------------------------------

  SymState& st(int sym) { return frame_.syms[static_cast<std::size_t>(sym)]; }

  /// Check that (sym, s) is provably Accessible; `what` names the
  /// operation ("read of", "data send of", ...). Returns false if a
  /// definite violation was diagnosed. Silent when the state is Top.
  bool requireAccessible(DiagKind kind, const StmtPtr& stmt, int sym,
                         const Section& s, const char* what) {
    SymState& ss = st(sym);
    if (ss.top || s.empty()) return true;
    if (!ss.owned.covers(s)) {
      const bool wasMine = !ss.gone.empty() &&
                           overlapsRegion(ss.gone, s);
      diag(kind, Severity::Error, stmt,
           std::string(what) + " section " + secOf(sym, s) +
               (wasMine ? " after its ownership was transferred away"
                        : " that this processor does not own"));
      return false;
    }
    if (pendingOverlaps(ss.pending, s)) {
      diag(kind, Severity::Error, stmt,
           std::string(what) + " transitional section " + secOf(sym, s) +
               " (overlaps an uncompleted receive; await it first)");
      return false;
    }
    return true;
  }

  static bool overlapsRegion(const RegionList& rl, const Section& s) {
    for (const Section& piece : rl.sections()) {
      if (piece.rank() != s.rank()) continue;
      if (!Section::intersect(piece, s).empty()) return true;
    }
    return false;
  }

  // --- statement execution ---------------------------------------------

  void step() {
    res_.stmtsAnalyzed += 1;
    if (++sh_.steps > opts_.maxSteps) throw BudgetExceeded{};
  }

  void exec(const StmtPtr& s) {
    if (!s) return;
    step();
    curStmt_ = s;  // anchor for diagnostics raised during expression eval
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& c : s->stmts) exec(c);
        return;
      case StmtKind::ScalarAssign:
        frame_.env[s->name] = evalValue(s->value);
        return;
      case StmtKind::ElemAssign:
        execElemAssign(s);
        return;
      case StmtKind::For:
        execFor(s);
        return;
      case StmtKind::Guarded:
        execGuarded(s);
        return;
      case StmtKind::SendData:
        execSendData(s);
        return;
      case StmtKind::RecvData:
        execRecvData(s);
        return;
      case StmtKind::SendOwn:
        execSendOwn(s);
        return;
      case StmtKind::RecvOwn:
        execRecvOwn(s);
        return;
      case StmtKind::Await:
        execAwait(s);
        return;
      case StmtKind::LocalCopy:
        execLocalCopy(s);
        return;
      case StmtKind::Kernel:
        // Kernels are opaque: by contract they touch only what they may
        // (the built-in `fill` writes the owned intersection of each
        // argument), so argument sections are not checked.
        return;
      case StmtKind::ComputeCost:
        evalValue(s->value);  // still checks element reads in the cost
        return;
    }
  }

  void execElemAssign(const StmtPtr& s) {
    if (guardDepth_ == 0) {
      // Pre-lowering owner-computes dialect: an unguarded element
      // assignment denotes a *global* assignment that lowerOwnerComputes
      // turns into explicit guarded transfers. Not checkable as-is.
      return;
    }
    AbsVal rhs = evalValue(s->rhs);  // checks the reads
    (void)rhs;
    std::optional<Section> pt = evalSection(s->sym, s->lhs);
    if (!pt) return;
    if (pt->count() != 1) {
      diag(DiagKind::TransferMismatch, Severity::Error, s,
           "element assignment target " + secOf(s->sym, *pt) +
               " is not a single point");
      return;
    }
    requireAccessible(DiagKind::NotAccessible, s, s->sym, *pt, "write to");
  }

  void execFor(const StmtPtr& s) {
    std::optional<Index> lb = knownInt(evalValue(s->lb));
    std::optional<Index> ub = knownInt(evalValue(s->ub));
    std::optional<Index> stp =
        s->step ? knownInt(evalValue(s->step)) : std::optional<Index>(1);
    if (lb && ub && stp && *stp > 0) {
      for (Index i = *lb; i <= *ub; i += *stp) {
        frame_.env[s->name] = Value(i);
        exec(s->body);
      }
      return;
    }
    widenLoop(s);
  }

  /// Loop with a bound the analysis cannot evaluate: run the body to a
  /// local fixpoint with the loop variable unknown, topping whatever does
  /// not stabilize, then join with the zero-iteration state. Diagnostics
  /// inside are downgraded (the body may execute zero times) and events
  /// are conditional (their matching groups go silent).
  void widenLoop(const StmtPtr& s) {
    res_.exhaustive = false;
    Frame before = frame_;
    ++condDepth_;
    frame_.env[s->name] = std::nullopt;
    const int kMaxIter = 3;
    for (int k = 0; k < kMaxIter; ++k) {
      Frame entry = frame_;
      exec(s->body);
      frame_.env[s->name] = std::nullopt;
      if (sameFrame(frame_, entry)) break;
      if (k == kMaxIter - 1) {
        // Not converged: drop everything that is still moving.
        for (std::size_t i = 0; i < frame_.syms.size(); ++i)
          if (!sameSymState(frame_.syms[i], entry.syms[i]))
            frame_.syms[i].makeTop();
        for (auto& [key, v] : frame_.env) {
          auto it = entry.env.find(key);
          if (it == entry.env.end() || v.has_value() != it->second.has_value() ||
              (v && !sameValue(*v, *it->second)))
            v = std::nullopt;
        }
      }
    }
    --condDepth_;
    joinFrame(frame_, before);
  }

  void execGuarded(const StmtPtr& s) {
    std::optional<bool> r = evalRule(s->rule);
    ++guardDepth_;
    if (r.has_value()) {
      if (*r) exec(s->body);
    } else {
      res_.exhaustive = false;
      Frame before = frame_;
      ++condDepth_;
      exec(s->body);
      --condDepth_;
      joinFrame(frame_, before);
    }
    --guardDepth_;
  }

  void execSendData(const StmtPtr& s) {
    std::optional<Section> e = evalSection(s->sym, s->lhs);
    if (!e) {
      res_.exhaustive = false;
      sh_.poisonedSyms.insert(s->sym);
      return;
    }
    if (e->empty()) return;
    requireAccessible(DiagKind::SendUnowned, s, s->sym, *e, "data send of");
    // The message is emitted regardless (without --debug-checks the
    // runtime reads whatever the segments hold), so record it either way
    // to keep the matching diagnostics focused on the root cause.
    recordSend(s, EvClass::Data, s->sym, *e, resolveDest(s, s->dest),
               /*expandToSet=*/true);
    // Fan-out is structural: a send-to-set emits one message per listed
    // destination even when a pid expression is not compile-time known.
    const Index fanout = s->dest.kind == DestSpec::Kind::Pids
                             ? static_cast<Index>(s->dest.pids.size())
                             : 1;
    recordCost(s, CostClass::Data, s->sym, e->count(), fanout,
               /*definite=*/condDepth_ == 0);
  }

  void execRecvData(const StmtPtr& s) {
    std::optional<Section> dst = evalSection(s->sym, s->lhs);
    std::optional<Section> name = evalSection(s->sym2, s->sec2);
    if (!name) {
      res_.exhaustive = false;
      sh_.poisonedSyms.insert(s->sym2);
    }
    if (dst && name && dst->empty() && name->empty()) return;
    if (dst && name && dst->count() != name->count()) {
      diag(DiagKind::TransferMismatch, Severity::Error, s,
           "receive destination " + secOf(s->sym, *dst) + " and name " +
               secOf(s->sym2, *name) + " differ in size (" +
               std::to_string(dst->count()) + " vs " +
               std::to_string(name->count()) + " elements)");
      return;
    }
    if (prog_.decl(s->sym).type != prog_.decl(s->sym2).type) {
      diag(DiagKind::TransferMismatch, Severity::Error, s,
           "receive element type mismatch: '" + symName(s->sym) + "' is " +
               rt::elemTypeName(prog_.decl(s->sym).type) + ", '" +
               symName(s->sym2) + "' is " +
               rt::elemTypeName(prog_.decl(s->sym2).type));
      return;
    }
    if (!dst) {
      res_.exhaustive = false;
      st(s->sym).makeTop();
    } else if (!dst->empty()) {
      SymState& ss = st(s->sym);
      if (!ss.top) {
        if (!ss.owned.covers(*dst)) {
          diag(DiagKind::NotAccessible, Severity::Error, s,
               "receive into section " + secOf(s->sym, *dst) +
                   " that this processor does not own");
          return;  // the runtime refuses to post the receive
        }
        // E <- X blocks until E is accessible (completing anything
        // pending over it), then initiates the receive.
        completePendingOver(ss.pending, *dst);
        ss.pending.push_back(*dst);
      }
      recvInits_.push_back(RecvInit{s->sym, *dst, seq_, condDepth_ > 0,
                                    s->loc});
    }
    if (name && !name->empty())
      recordRecv(s, EvClass::Data, s->sym2, *name);
  }

  void execSendOwn(const StmtPtr& s) {
    std::optional<Section> e = evalSection(s->sym, s->lhs);
    if (!e) {
      res_.exhaustive = false;
      sh_.poisonedSyms.insert(s->sym);
      st(s->sym).makeTop();
      return;
    }
    if (e->empty()) return;
    Dest d = resolveDest(s, s->dest);
    if (d.pids && d.pids->size() > 1) {
      diag(DiagKind::TransferMismatch, Severity::Error, s,
           "ownership can be sent to exactly one processor (got " +
               std::to_string(d.pids->size()) + " destinations)");
      return;
    }
    SymState& ss = st(s->sym);
    const bool ownershipProven = !ss.top;
    if (!ss.top) {
      if (!ss.owned.covers(*e)) {
        if (overlapsRegion(ss.gone, *e)) {
          diag(DiagKind::DoubleOwnership, Severity::Error, s,
               "ownership of section " + secOf(s->sym, *e) +
                   " transferred away twice (already sent)");
        } else {
          diag(DiagKind::SendUnowned, Severity::Error, s,
               "ownership send of section " + secOf(s->sym, *e) +
                   " that this processor does not own");
        }
        return;  // the runtime makes this a no-op: no message leaves
      }
      // "Owner send operations block until the section is accessible."
      completePendingOver(ss.pending, *e);
      ss.owned.subtract(*e);
      ss.gone.add(*e);
    }
    recordSend(s, s->withValue ? EvClass::OwnVal : EvClass::Own, s->sym, *e,
               d, /*expandToSet=*/false);
    // Unproven ownership means the runtime may silently drop this send
    // (ownership send of an unowned section is a no-op), so the event is
    // only definite when ownership was proven.
    recordCost(s, s->withValue ? CostClass::OwnVal : CostClass::Own, s->sym,
               e->count(), 1,
               /*definite=*/condDepth_ == 0 && ownershipProven);
  }

  void execRecvOwn(const StmtPtr& s) {
    std::optional<Section> u = evalSection(s->sym, s->lhs);
    if (!u) {
      res_.exhaustive = false;
      sh_.poisonedSyms.insert(s->sym);
      st(s->sym).makeTop();
      return;
    }
    if (u->empty()) return;
    SymState& ss = st(s->sym);
    if (!ss.top) {
      if (overlapsRegion(ss.owned, *u)) {
        diag(DiagKind::DoubleOwnership, Severity::Error, s,
             "ownership receive of section " + secOf(s->sym, *u) +
                 " this processor already owns");
        return;
      }
      ss.owned.add(*u);
      ss.pending.push_back(*u);
      ss.gone.subtract(*u);
    }
    recvInits_.push_back(RecvInit{s->sym, *u, seq_, condDepth_ > 0, s->loc});
    recordRecv(s, s->withValue ? EvClass::OwnVal : EvClass::Own, s->sym, *u);
  }

  void execAwait(const StmtPtr& s) {
    std::optional<Section> sec = evalSection(s->sym, s->lhs);
    if (!sec) {
      res_.exhaustive = false;
      st(s->sym).makeTop();
      return;
    }
    if (sec->empty()) return;
    SymState& ss = st(s->sym);
    if (ss.top) return;
    if (!ss.owned.covers(*sec)) {
      diag(DiagKind::AwaitMismatch, Severity::Warning, s,
           "await of section " + secOf(s->sym, *sec) +
               " this processor does not own: it returns false "
               "immediately and synchronizes nothing");
      return;
    }
    const bool trivial = !pendingOverlaps(ss.pending, *sec);
    completePendingOver(ss.pending, *sec);
    if (trivial)
      awaits_.push_back(AwaitRec{s->sym, *sec, seq_, condDepth_ > 0, s});
    ++seq_;
  }

  void execLocalCopy(const StmtPtr& s) {
    std::optional<Section> dst = evalSection(s->sym, s->lhs);
    std::optional<Section> src = evalSection(s->sym2, s->sec2);
    if (!dst || !src) {
      res_.exhaustive = false;
      return;
    }
    if (dst->empty() && src->empty()) return;
    if (dst->count() != src->count()) {
      diag(DiagKind::TransferMismatch, Severity::Error, s,
           "local copy size mismatch: " + secOf(s->sym, *dst) + " vs " +
               secOf(s->sym2, *src));
      return;
    }
    if (prog_.decl(s->sym).type != prog_.decl(s->sym2).type) {
      diag(DiagKind::TransferMismatch, Severity::Error, s,
           "local copy element type mismatch between '" + symName(s->sym) +
               "' and '" + symName(s->sym2) + "'");
      return;
    }
    requireAccessible(DiagKind::NotAccessible, s, s->sym2, *src, "read of");
    requireAccessible(DiagKind::NotAccessible, s, s->sym, *dst, "write to");
  }

  // --- events ----------------------------------------------------------

  struct Dest {
    bool known = true;
    std::optional<std::vector<int>> pids;  ///< nullopt = unspecified
  };

  void recordSend(const StmtPtr& s, EvClass cls, int sym, const Section& e,
                  const Dest& d, bool expandToSet) {
    Event ev;
    ev.isSend = true;
    ev.cls = cls;
    ev.pid = pid_;
    ev.sym = sym;
    ev.name = e;
    ev.conditional = condDepth_ > 0 || !d.known;
    ev.seq = seq_++;
    ev.stmt = s;
    if (d.known && d.pids && expandToSet && d.pids->size() > 1) {
      // sendToSet: one message per destination processor.
      for (int pid : *d.pids) {
        Event copy = ev;
        copy.dests = std::vector<int>{pid};
        sh_.events.push_back(std::move(copy));
      }
      return;
    }
    if (d.known) ev.dests = d.pids;
    sh_.events.push_back(std::move(ev));
  }

  void recordCost(const StmtPtr& s, CostClass cls, int sym, Index elems,
                  Index messages, bool definite) {
    if (!opts_.collectCost) return;
    CostEvent ce;
    ce.pid = pid_;
    ce.sym = sym;
    ce.stmt = s;
    ce.loc = s ? s->loc : SrcLoc{};
    ce.cls = cls;
    ce.elems = elems;
    ce.messages = messages;
    ce.definite = definite;
    res_.costEvents.push_back(std::move(ce));
  }

  void recordRecv(const StmtPtr& s, EvClass cls, int nameSym,
                  const Section& name) {
    Event ev;
    ev.isSend = false;
    ev.cls = cls;
    ev.pid = pid_;
    ev.sym = nameSym;
    ev.name = name;
    ev.conditional = condDepth_ > 0;
    ev.seq = seq_++;
    ev.stmt = s;
    sh_.events.push_back(std::move(ev));
  }

  Dest resolveDest(const StmtPtr& s, const DestSpec& d) {
    switch (d.kind) {
      case DestSpec::Kind::None:
        return Dest{true, std::nullopt};
      case DestSpec::Kind::Pids: {
        std::vector<int> pids;
        for (const auto& e : d.pids) {
          std::optional<Index> v = knownInt(evalValue(e));
          if (!v) {
            res_.exhaustive = false;
            return Dest{false, std::nullopt};
          }
          if (*v < 0 || *v >= prog_.nprocs) {
            diag(DiagKind::TransferMismatch, Severity::Error, s,
                 "send destination processor " + std::to_string(*v) +
                     " is outside 0.." + std::to_string(prog_.nprocs - 1));
            return Dest{false, std::nullopt};
          }
          pids.push_back(static_cast<int>(*v));
        }
        return Dest{true, std::move(pids)};
      }
      case DestSpec::Kind::OwnerOf: {
        if (opts_.obliviousPlacement) {
          // Who owns the section is exactly what this mode abstracts away.
          res_.exhaustive = false;
          return Dest{false, std::nullopt};
        }
        std::optional<Section> sec = evalSection(d.sym, d.section);
        if (!sec || sec->empty()) {
          res_.exhaustive = false;
          return Dest{false, std::nullopt};
        }
        const dist::Distribution& dd =
            d.distOverride ? *d.distOverride : prog_.decl(d.sym).dist;
        int owner = -1;
        bool unique = true;
        try {
          sec->forEach([&](const Point& p) {
            int o = dd.ownerOf(p);
            if (owner < 0) owner = o;
            else if (o != owner) unique = false;
          });
        } catch (const Error&) {
          res_.exhaustive = false;
          return Dest{false, std::nullopt};
        }
        if (!unique) {
          diag(DiagKind::TransferMismatch, Severity::Error, s,
               "bound destination section " + secOf(d.sym, *sec) +
                   " spans more than one processor");
          return Dest{false, std::nullopt};
        }
        return Dest{true, std::vector<int>{owner}};
      }
    }
    return Dest{false, std::nullopt};
  }

  // --- expression evaluation -------------------------------------------

  std::optional<bool> evalRule(const ExprPtr& e) {
    ++ruleDepth_;
    std::optional<bool> result;
    try {
      result = knownBool(evalValue(e));
    } catch (const UnownedRef&) {
      result = false;  // paper 2.4: unowned value reference => rule false
    }
    --ruleDepth_;
    return result;
  }

  AbsVal evalValue(const ExprPtr& e) {
    if (!e) return std::nullopt;
    switch (e->kind) {
      case ExprKind::IntConst:
        return Value(e->intVal);
      case ExprKind::RealConst:
        return Value(e->realVal);
      case ExprKind::ScalarRef: {
        auto it = frame_.env.find(e->name);
        if (it == frame_.env.end()) return std::nullopt;
        return it->second;
      }
      case ExprKind::MyPid:
        return Value(static_cast<Index>(pid_));
      case ExprKind::NProcs:
        return Value(static_cast<Index>(prog_.nprocs));
      case ExprKind::Bin:
        return evalBin(e);
      case ExprKind::Neg: {
        AbsVal v = evalValue(e->lhs);
        if (!v) return std::nullopt;
        if (std::holds_alternative<Index>(*v))
          return Value(arith::wrapNeg(std::get<Index>(*v)));
        return Value(-asRealV(*v));
      }
      case ExprKind::Not: {
        std::optional<bool> b = knownBool(evalValue(e->lhs));
        if (!b) return std::nullopt;
        return Value(!*b);
      }
      case ExprKind::Elem:
        return evalElem(e);
      case ExprKind::Iown: {
        std::optional<Section> s = evalSection(e->sym, e->section);
        SymState& ss = st(e->sym);
        if (!s || ss.top) return std::nullopt;
        return Value(ss.owned.covers(*s));
      }
      case ExprKind::Accessible: {
        std::optional<Section> s = evalSection(e->sym, e->section);
        SymState& ss = st(e->sym);
        if (!s || ss.top) return std::nullopt;
        return Value(ss.owned.covers(*s) && !pendingOverlaps(ss.pending, *s));
      }
      case ExprKind::Await: {
        // await(X) in rule position: false if unowned, else blocks until
        // accessible — which completes the overlapping pending receives.
        std::optional<Section> s = evalSection(e->sym, e->section);
        SymState& ss = st(e->sym);
        if (!s || ss.top) return std::nullopt;
        if (s->empty()) return Value(true);
        if (!ss.owned.covers(*s)) return Value(false);
        const bool trivial = !pendingOverlaps(ss.pending, *s);
        completePendingOver(ss.pending, *s);
        if (trivial && curStmt_)
          awaits_.push_back(
              AwaitRec{e->sym, *s, seq_, condDepth_ > 0, curStmt_});
        ++seq_;
        return Value(true);
      }
      case ExprKind::MyLb:
      case ExprKind::MyUb: {
        std::optional<Section> s = evalSection(e->sym, e->section);
        SymState& ss = st(e->sym);
        if (!s || ss.top) return std::nullopt;
        if (e->dim < 0 || e->dim >= s->rank()) return std::nullopt;
        const bool lower = e->kind == ExprKind::MyLb;
        Index best = lower ? rt::kMaxInt : rt::kMinInt;
        for (const Section& piece : ss.owned.sections()) {
          if (piece.rank() != s->rank()) continue;
          Section i = Section::intersect(piece, *s);
          if (i.empty()) continue;
          best = lower ? std::min(best, i.dim(e->dim).lb())
                       : std::max(best, i.dim(e->dim).ub());
        }
        return Value(best);
      }
      case ExprKind::SecNonEmpty: {
        std::optional<Section> s = evalSection(e->sym, e->section);
        if (!s) return std::nullopt;
        return Value(!s->empty());
      }
    }
    return std::nullopt;
  }

  AbsVal evalElem(const ExprPtr& e) {
    std::optional<Section> pt = evalSection(e->sym, e->section);
    if (!pt) return std::nullopt;
    if (pt->count() != 1) {
      diag(DiagKind::TransferMismatch, Severity::Error, curStmt_,
           "element reference " + secOf(e->sym, *pt) +
               " is not a single point");
      return std::nullopt;
    }
    SymState& ss = st(e->sym);
    if (ss.top) return std::nullopt;
    if (ruleDepth_ > 0) {
      // Inside a compute rule an unowned value reference makes the whole
      // rule false (no diagnostic); a transitional read is still an error.
      if (!ss.owned.covers(*pt)) throw UnownedRef{};
      if (pendingOverlaps(ss.pending, *pt)) {
        diag(DiagKind::NotAccessible, Severity::Error, curStmt_,
             "compute rule reads transitional section " +
                 secOf(e->sym, *pt) + " (overlaps an uncompleted receive)");
      }
      return std::nullopt;  // element values are not tracked
    }
    requireAccessible(DiagKind::NotAccessible, curStmt_, e->sym, *pt,
                      "read of");
    return std::nullopt;
  }

  AbsVal evalBin(const ExprPtr& e) {
    using il::BinOp;
    if (e->op == BinOp::And || e->op == BinOp::Or) {
      const bool isAnd = e->op == BinOp::And;
      std::optional<bool> a = knownBool(evalValue(e->lhs));
      if (a.has_value()) {
        // Mirror the interpreter's short-circuit: the rhs (and any await
        // side effect in it) is only evaluated when the lhs lets it run.
        if (isAnd && !*a) return Value(false);
        if (!isAnd && *a) return Value(true);
        std::optional<bool> b = knownBool(evalValue(e->rhs));
        if (!b) return std::nullopt;
        return Value(*b);
      }
      // lhs unknown: the rhs may or may not execute. An UnownedRef inside
      // it is no longer a definite rule-falsifier.
      std::optional<bool> b;
      try {
        b = knownBool(evalValue(e->rhs));
      } catch (const UnownedRef&) {
        b = std::nullopt;
      }
      if (b.has_value() && *b == isAnd) return std::nullopt;  // decided by lhs
      if (!b.has_value()) return std::nullopt;
      return Value(*b);  // absorbing element: false&&x / true||x
    }
    AbsVal av = evalValue(e->lhs);
    AbsVal bv = evalValue(e->rhs);
    if (!av || !bv) return std::nullopt;
    const Value& a = *av;
    const Value& b = *bv;
    const bool bothInt =
        std::holds_alternative<Index>(a) && std::holds_alternative<Index>(b);
    switch (e->op) {
      // Same wrap/trap semantics as both execution backends (see
      // xdp/support/arith.hpp); would-trap divisions become "unknown"
      // instead of faulting the analysis.
      case BinOp::Add:
        return bothInt
                   ? Value(arith::wrapAdd(std::get<Index>(a), std::get<Index>(b)))
                   : Value(asRealV(a) + asRealV(b));
      case BinOp::Sub:
        return bothInt
                   ? Value(arith::wrapSub(std::get<Index>(a), std::get<Index>(b)))
                   : Value(asRealV(a) - asRealV(b));
      case BinOp::Mul:
        return bothInt
                   ? Value(arith::wrapMul(std::get<Index>(a), std::get<Index>(b)))
                   : Value(asRealV(a) * asRealV(b));
      case BinOp::Div: {
        if (bothInt) {
          if (auto q = arith::tryFoldDiv(std::get<Index>(a),
                                         std::get<Index>(b)))
            return Value(*q);
          return std::nullopt;
        }
        return Value(asRealV(a) / asRealV(b));
      }
      case BinOp::Mod: {
        if (!bothInt) return std::nullopt;
        if (auto r = arith::tryFoldMod(std::get<Index>(a), std::get<Index>(b)))
          return Value(*r);
        return std::nullopt;
      }
      case BinOp::Lt:
        return Value(asRealV(a) < asRealV(b));
      case BinOp::Le:
        return Value(asRealV(a) <= asRealV(b));
      case BinOp::Gt:
        return Value(asRealV(a) > asRealV(b));
      case BinOp::Ge:
        return Value(asRealV(a) >= asRealV(b));
      case BinOp::Eq:
        return Value(asRealV(a) == asRealV(b));
      case BinOp::Ne:
        return Value(asRealV(a) != asRealV(b));
      case BinOp::Min:
        return bothInt
                   ? Value(std::min(std::get<Index>(a), std::get<Index>(b)))
                   : Value(std::min(asRealV(a), asRealV(b)));
      case BinOp::Max:
        return bothInt
                   ? Value(std::max(std::get<Index>(a), std::get<Index>(b)))
                   : Value(std::max(asRealV(a), asRealV(b)));
      case BinOp::And:
      case BinOp::Or:
        break;  // handled above
    }
    return std::nullopt;
  }

  // --- section evaluation ----------------------------------------------

  static Section emptyOfRank(int rank) {
    std::vector<Triplet> dims;
    dims.emplace_back();  // one empty triplet makes the section empty
    for (int d = 1; d < rank; ++d) dims.emplace_back(0, 0);
    return rank == 0 ? Section{Triplet()} : Section(dims);
  }

  std::optional<Section> evalSection(int sym, const SectionExprPtr& se) {
    if (!se) return std::nullopt;
    try {
      switch (se->kind) {
        case SecExprKind::Literal: {
          std::vector<Triplet> dims;
          for (const auto& t : se->dims) {
            std::optional<Index> lb = knownInt(evalValue(t.lb));
            if (!lb) return std::nullopt;
            std::optional<Index> ub =
                t.ub ? knownInt(evalValue(t.ub)) : lb;
            std::optional<Index> stride =
                t.stride ? knownInt(evalValue(t.stride))
                         : std::optional<Index>(1);
            if (!ub || !stride) return std::nullopt;
            dims.emplace_back(*lb, *ub, *stride);
          }
          return Section(dims);
        }
        case SecExprKind::LocalPart:
          return partOf(se->sym >= 0 ? se->sym : sym, pid_,
                        se->distOverride);
        case SecExprKind::OwnerPart: {
          std::optional<Index> pid = knownInt(evalValue(se->pid));
          if (!pid || *pid < 0) return std::nullopt;
          return partOf(se->sym >= 0 ? se->sym : sym,
                        static_cast<int>(*pid), se->distOverride);
        }
        case SecExprKind::Intersect: {
          std::optional<Section> a = evalSection(sym, se->a);
          std::optional<Section> b = evalSection(sym, se->b);
          if (!a || !b) return std::nullopt;
          if (a->empty() || b->empty() || a->rank() != b->rank())
            return emptyOfRank(a->rank());
          return Section::intersect(*a, *b);
        }
      }
    } catch (const Error&) {
      return std::nullopt;  // the runtime would XDP_CHECK on this shape
    }
    return std::nullopt;
  }

  std::optional<Section> partOf(int sym, int pid,
                                const std::optional<dist::Distribution>& over) {
    if (opts_.obliviousPlacement) {
      res_.exhaustive = false;  // partitions are placement-dependent
      return std::nullopt;
    }
    const dist::Distribution& d = over ? *over : prog_.decl(sym).dist;
    RegionList part = d.localPart(pid);
    if (part.empty()) return emptyOfRank(d.rank());
    if (part.sections().size() != 1) {
      diag(DiagKind::TransferMismatch, Severity::Error, curStmt_,
           "partition of '" + symName(sym) +
               "' is not a single section (CYCLIC(k) local parts cannot "
               "be named by one section expression)");
      return std::nullopt;
    }
    return part.sections()[0];
  }

  // --- await ordering --------------------------------------------------

  void checkAwaitOrdering() {
    for (const AwaitRec& a : awaits_) {
      if (a.conditional) continue;
      for (const RecvInit& r : recvInits_) {
        if (r.conditional || r.seq <= a.seq || r.sym != a.sym) continue;
        if (r.sec.rank() != a.sec.rank()) continue;
        if (Section::intersect(r.sec, a.sec).empty()) continue;
        std::string at = r.loc.valid()
                             ? " (initiated at line " +
                                   std::to_string(r.loc.line) + ")"
                             : "";
        diag(DiagKind::AwaitMismatch, Severity::Warning, a.stmt,
             "await of section " + secOf(a.sym, a.sec) +
                 " precedes the receive that initiates it" + at +
                 ": the await synchronizes with nothing");
        break;
      }
    }
  }

  const Program& prog_;
  const VerifyOptions& opts_;
  Shared& sh_;
  VerifyResult& res_;
  int pid_;
  Frame frame_;
  int guardDepth_ = 0;
  int ruleDepth_ = 0;
  int condDepth_ = 0;
  int seq_ = 0;
  StmtPtr curStmt_;
  std::vector<RecvInit> recvInits_;
  std::vector<AwaitRec> awaits_;
};

// --- communication matching --------------------------------------------------

/// Maximum bipartite matching (Kuhn's augmenting paths) between the sends
/// and receives of one (class, symbol, name-section) group, honoring bound
/// destinations. Group sizes are tiny (per-name message counts).
struct Group {
  std::vector<const Event*> sends;
  std::vector<const Event*> recvs;
};

bool canServe(const Event& send, const Event& recv) {
  if (!send.dests) return true;  // unspecified: rendezvous-routed
  for (int p : *send.dests)
    if (p == recv.pid) return true;
  return false;
}

bool augment(const Group& g, std::size_t si, std::vector<int>& recvOf,
             std::vector<char>& visited) {
  for (std::size_t ri = 0; ri < g.recvs.size(); ++ri) {
    if (visited[ri] || !canServe(*g.sends[si], *g.recvs[ri])) continue;
    visited[ri] = 1;
    if (recvOf[ri] < 0 ||
        augment(g, static_cast<std::size_t>(recvOf[ri]), recvOf, visited)) {
      recvOf[ri] = static_cast<int>(si);
      return true;
    }
  }
  return false;
}

void matchEvents(const Program& prog, const Shared& sh, VerifyResult& res) {
  std::map<std::string, Group> groups;
  std::map<std::string, bool> groupConditional;
  for (const Event& ev : sh.events) {
    if (sh.poisonedSyms.count(ev.sym)) continue;
    std::string key = std::to_string(static_cast<int>(ev.cls)) + "#" +
                      std::to_string(ev.sym) + "#" + ev.name.str();
    Group& g = groups[key];
    (ev.isSend ? g.sends : g.recvs).push_back(&ev);
    if (ev.conditional) groupConditional[key] = true;
  }
  for (auto& [key, g] : groups) {
    if (groupConditional.count(key)) continue;  // cannot reason exactly
    std::vector<int> recvOf(g.recvs.size(), -1);
    std::vector<char> sendMatched(g.sends.size(), 0);
    for (std::size_t si = 0; si < g.sends.size(); ++si) {
      std::vector<char> visited(g.recvs.size(), 0);
      if (augment(g, si, recvOf, visited)) sendMatched[si] = 1;
    }
    // Re-derive which sends ended up matched (augmenting may reassign).
    std::fill(sendMatched.begin(), sendMatched.end(), 0);
    for (std::size_t ri = 0; ri < g.recvs.size(); ++ri)
      if (recvOf[ri] >= 0)
        sendMatched[static_cast<std::size_t>(recvOf[ri])] = 1;
    auto push = [&](const Event& ev, DiagKind kind, const std::string& msg) {
      Diagnostic d;
      d.severity = Severity::Error;
      d.kind = kind;
      d.pid = ev.pid;
      d.stmt = ev.stmt;
      d.loc = ev.stmt ? ev.stmt->loc : SrcLoc{};
      d.message = msg;
      res.diagnostics.push_back(std::move(d));
    };
    std::set<const Stmt*> reported;
    for (std::size_t si = 0; si < g.sends.size(); ++si) {
      const Event& ev = *g.sends[si];
      if (sendMatched[si] || !reported.insert(ev.stmt.get()).second)
        continue;
      std::size_t extra = 0;
      for (std::size_t sj = 0; sj < g.sends.size(); ++sj)
        if (!sendMatched[sj] && g.sends[sj]->stmt == ev.stmt) ++extra;
      std::string times =
          extra > 1 ? " (" + std::to_string(extra) + " times)" : "";
      push(ev, DiagKind::UnmatchedSend,
           "send of " + ev.name.str() + " of '" + prog.decl(ev.sym).name +
               "' has no matching receive" + times +
               ": the message would go undelivered");
    }
    reported.clear();
    for (std::size_t ri = 0; ri < g.recvs.size(); ++ri) {
      const Event& ev = *g.recvs[ri];
      if (recvOf[ri] >= 0 || !reported.insert(ev.stmt.get()).second)
        continue;
      push(ev, DiagKind::OrphanRecv,
           "receive of " + ev.name.str() + " of '" + prog.decl(ev.sym).name +
               "' has no matching send: it never completes and awaiting "
               "it deadlocks");
    }
  }
}

}  // namespace

// --- public API ---------------------------------------------------------------

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

const char* kindName(DiagKind k) {
  switch (k) {
    case DiagKind::NotAccessible: return "not-accessible";
    case DiagKind::SendUnowned: return "send-unowned";
    case DiagKind::DoubleOwnership: return "double-ownership";
    case DiagKind::UnmatchedSend: return "unmatched-send";
    case DiagKind::OrphanRecv: return "orphan-recv";
    case DiagKind::AwaitMismatch: return "await-mismatch";
    case DiagKind::TransferMismatch: return "transfer-mismatch";
  }
  return "?";
}

std::size_t VerifyResult::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == s) ++n;
  return n;
}

VerifyResult verifyProgram(const il::Program& prog,
                           const VerifyOptions& opts) {
  VerifyResult res;
  XDP_CHECK(prog.body != nullptr, "program has no body");
  XDP_CHECK(prog.nprocs > 0, "program needs at least one processor");
  Shared sh;
  for (int pid = 0; pid < prog.nprocs; ++pid) {
    PidExec ex(prog, opts, sh, res, pid);
    ex.run();
  }
  if (opts.matchComm && !sh.incomplete) matchEvents(prog, sh, res);
  res.stmtsAnalyzed = sh.steps;
  std::stable_sort(res.diagnostics.begin(), res.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line)
                       return a.loc.line < b.loc.line;
                     if (a.loc.col != b.loc.col) return a.loc.col < b.loc.col;
                     return a.pid < b.pid;
                   });
  return res;
}

std::string formatDiagnostic(const il::Program& prog, const Diagnostic& d,
                             const std::string& file) {
  std::ostringstream os;
  if (d.loc.valid()) {
    if (!file.empty()) os << file << ":";
    os << d.loc.line << ":" << d.loc.col << ": ";
  } else if (!file.empty()) {
    os << file << ": ";
  }
  os << severityName(d.severity) << ": " << d.message << " ["
     << kindName(d.kind);
  if (d.pid >= 0) os << ", p" << d.pid;
  os << "]";
  if (!d.loc.valid() && d.stmt) {
    std::string text = il::printStmt(prog, d.stmt);
    std::size_t nl = text.find('\n');
    if (nl != std::string::npos) text = text.substr(0, nl) + " ...";
    os << "\n    in: " << text;
  }
  return os.str();
}

std::string formatDiagnostics(const il::Program& prog, const VerifyResult& r,
                              const std::string& file) {
  std::string out;
  for (const Diagnostic& d : r.diagnostics) {
    out += formatDiagnostic(prog, d, file);
    out += '\n';
  }
  return out;
}

std::string diagnosticsJson(const il::Program& prog, const VerifyResult& r,
                            const std::string& file) {
  (void)prog;
  std::ostringstream os;
  os << "{\"file\":" << json::str(file) << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < r.diagnostics.size(); ++i) {
    if (i) os << ",";
    const Diagnostic& d = r.diagnostics[i];
    os << "{\"class\":" << json::str(kindName(d.kind))
       << ",\"severity\":" << json::str(severityName(d.severity))
       << ",\"file\":" << json::str(file) << ",\"line\":" << d.loc.line
       << ",\"col\":" << d.loc.col << ",\"pid\":" << d.pid
       << ",\"message\":" << json::str(d.message) << "}";
  }
  os << "],\"errors\":" << r.errors()
     << ",\"warnings\":" << r.count(Severity::Warning)
     << ",\"exhaustive\":" << (r.exhaustive ? "true" : "false")
     << ",\"stmts_analyzed\":" << r.stmtsAnalyzed << "}";
  return os.str();
}

}  // namespace xdp::analysis
