// See cost.hpp for the model. The exact-mode aggregation is a fold over
// the verifier's CostEvents; the parametric bound is a small affine
// pattern-matcher over pre-lowering owner-computes sweeps. Everything
// placement-dependent funnels through the verifier so there is exactly
// one abstract executor to keep faithful to the runtime.
#include "xdp/analysis/cost.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>

#include "xdp/rt/types.hpp"
#include "xdp/support/arith.hpp"
#include "xdp/support/json.hpp"

namespace xdp::analysis {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::SecExprKind;
using il::SectionExprPtr;
using il::Stmt;
using il::StmtKind;
using il::StmtPtr;
using sec::Index;
using sec::Section;
using sec::Triplet;

std::int64_t elemBytes(const il::Program& prog, int sym) {
  return static_cast<std::int64_t>(rt::elemSize(prog.decl(sym).type));
}

/// Modeled payload bytes of one event, mirroring rt::Proc: pure ownership
/// messages carry no payload; data and ownership+value messages carry
/// count*elemSize per message.
std::int64_t eventBytes(const il::Program& prog, const CostEvent& ev) {
  if (ev.cls == CostClass::Own) return 0;
  std::int64_t per = arith::checkedMulNonNeg(
      ev.elems, elemBytes(prog, ev.sym), "modeled message payload");
  return arith::checkedMulNonNeg(per, ev.messages, "modeled send bytes");
}

const char* className(CostClass c) {
  switch (c) {
    case CostClass::Data: return "data";
    case CostClass::Own: return "ownership";
    case CostClass::OwnVal: return "ownership+value";
  }
  return "?";
}

// --- parametric chain-cut bound (DESIGN.md §10.2) -------------------------

/// Compile-time integer value of a loop-bound expression (literals and
/// constant arithmetic only; anything else disqualifies the loop).
std::optional<Index> constIntOf(const ExprPtr& e, int nprocs) {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case ExprKind::IntConst:
      return e->intVal;
    case ExprKind::NProcs:
      return static_cast<Index>(nprocs);
    case ExprKind::Neg: {
      auto v = constIntOf(e->lhs, nprocs);
      if (!v) return std::nullopt;
      return arith::wrapNeg(*v);
    }
    case ExprKind::Bin: {
      auto a = constIntOf(e->lhs, nprocs);
      auto b = constIntOf(e->rhs, nprocs);
      if (!a || !b) return std::nullopt;
      switch (e->op) {
        case il::BinOp::Add: return arith::wrapAdd(*a, *b);
        case il::BinOp::Sub: return arith::wrapSub(*a, *b);
        case il::BinOp::Mul: return arith::wrapMul(*a, *b);
        case il::BinOp::Div: return arith::tryFoldDiv(*a, *b);
        case il::BinOp::Mod: return arith::tryFoldMod(*a, *b);
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

/// e as a*var + b with integer-constant a, b (nullopt when not affine in
/// `var` alone — mypid or other scalars disqualify, keeping the bound
/// placement- and pid-independent).
std::optional<std::pair<Index, Index>> affineIn(const ExprPtr& e,
                                                const std::string& var) {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case ExprKind::IntConst:
      return std::make_pair(Index{0}, e->intVal);
    case ExprKind::ScalarRef:
      if (e->name == var) return std::make_pair(Index{1}, Index{0});
      return std::nullopt;
    case ExprKind::Neg: {
      auto v = affineIn(e->lhs, var);
      if (!v) return std::nullopt;
      return std::make_pair(arith::wrapNeg(v->first),
                            arith::wrapNeg(v->second));
    }
    case ExprKind::Bin: {
      auto a = affineIn(e->lhs, var);
      auto b = affineIn(e->rhs, var);
      if (!a || !b) return std::nullopt;
      switch (e->op) {
        case il::BinOp::Add:
          return std::make_pair(arith::wrapAdd(a->first, b->first),
                                arith::wrapAdd(a->second, b->second));
        case il::BinOp::Sub:
          return std::make_pair(arith::wrapSub(a->first, b->first),
                                arith::wrapSub(a->second, b->second));
        case il::BinOp::Mul:
          if (a->first == 0)
            return std::make_pair(arith::wrapMul(a->second, b->first),
                                  arith::wrapMul(a->second, b->second));
          if (b->first == 0)
            return std::make_pair(arith::wrapMul(b->second, a->first),
                                  arith::wrapMul(b->second, a->second));
          return std::nullopt;
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

/// The single-subscript affine form of a rank-1 point section expression.
std::optional<std::pair<Index, Index>> pointAffine(const SectionExprPtr& se,
                                                   const std::string& var) {
  if (!se || se->kind != SecExprKind::Literal || se->dims.size() != 1)
    return std::nullopt;
  const il::TripletExpr& t = se->dims[0];
  if (t.ub || t.stride) return std::nullopt;  // a point, not a range
  return affineIn(t.lb, var);
}

/// Collect same-symbol read offsets δ = b' - b of `e` relative to the
/// write A[a*i + b] (only reads with the same linear coefficient count;
/// others cannot share the chain structure and contribute nothing).
void collectOffsets(const ExprPtr& e, int sym, const std::string& var,
                    Index a, Index b, std::vector<Index>& out) {
  if (!e) return;
  if (e->kind == ExprKind::Elem && e->sym == sym) {
    if (auto aff = pointAffine(e->section, var)) {
      if (aff->first == a && aff->second != b)
        out.push_back(arith::wrapSub(aff->second, b));
    }
  }
  collectOffsets(e->lhs, sym, var, a, b, out);
  collectOffsets(e->rhs, sym, var, a, b, out);
  if (e->kind == ExprKind::Elem && e->section &&
      e->section->kind == SecExprKind::Literal) {
    for (const il::TripletExpr& t : e->section->dims) {
      collectOffsets(t.lb, sym, var, a, b, out);
      collectOffsets(t.ub, sym, var, a, b, out);
    }
  }
}

/// Walks the pre-lowering program, finds unguarded owner-computes sweeps
/// (`do i = lb, ub: A[±i + c] = ... A[±i + c'] ...`) and accumulates, per
/// symbol, the best chain-cut bound over all sweeps of that symbol (max,
/// not sum: two sweeps of the same symbol may be servable by overlapping
/// transfers, the cut argument only forces the larger of the two).
class SweepScanner {
 public:
  explicit SweepScanner(const il::Program& prog) : prog_(prog) {
    bestPerSym_.resize(prog.arrays.size(), 0);
  }

  std::int64_t run() {
    walk(prog_.body, /*reps=*/1);
    std::int64_t total = 0;
    for (std::int64_t b : bestPerSym_)
      total = arith::checkedAddNonNeg(total, b, "parametric lower bound");
    return total;
  }

 private:
  void walk(const StmtPtr& s, Index reps) {
    if (!s) return;
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& c : s->stmts) walk(c, reps);
        return;
      case StmtKind::Guarded:
        // Guarded assignments are post-lowering (or explicitly local)
        // code, not the owner-computes dialect; nothing in here is a
        // sweep, and its execution may be placement-dependent.
        return;
      case StmtKind::For: {
        std::optional<Index> lb = constIntOf(s->lb, prog_.nprocs);
        std::optional<Index> ub = constIntOf(s->ub, prog_.nprocs);
        std::optional<Index> step =
            s->step ? constIntOf(s->step, prog_.nprocs)
                    : std::optional<Index>(1);
        if (!lb || !ub || !step || *step <= 0) return;  // not analyzable
        const Index trips = *ub < *lb ? 0 : (*ub - *lb) / *step + 1;
        if (trips <= 0) return;
        if (*step == 1) scanSweep(s, *lb, *ub, trips, reps);
        walk(s->body, arith::checkedMulNonNeg(reps, trips,
                                              "loop repetition count"));
        return;
      }
      default:
        return;
    }
  }

  /// Direct (block-flattened) unguarded element assignments of one
  /// unit-stride loop.
  void scanSweep(const StmtPtr& loop, Index lb, Index ub, Index trips,
                 Index reps) {
    std::vector<StmtPtr> flat;
    flatten(loop->body, flat);
    for (const StmtPtr& ea : flat) {
      if (ea->kind != StmtKind::ElemAssign) continue;
      auto aff = pointAffine(ea->lhs, loop->name);
      if (!aff || (aff->first != 1 && aff->first != -1)) continue;
      const auto& decl = prog_.decl(ea->sym);
      if (decl.global.rank() != 1) continue;
      const auto& specs = decl.dist.specs();
      if (specs.empty() || specs[0].kind == dist::DistKind::Collapsed ||
          specs[0].procs < 2)
        continue;
      const Index a = aff->first, b = aff->second;
      const Index w0 = arith::wrapAdd(arith::wrapMul(a, lb), b);
      const Index w1 = arith::wrapAdd(arith::wrapMul(a, ub), b);
      const Index wlo = std::min(w0, w1), whi = std::max(w0, w1);
      std::vector<Index> deltas;
      collectOffsets(ea->rhs, ea->sym, loop->name, a, b, deltas);
      std::int64_t best = 0;
      for (Index d : deltas) {
        const Index ad = d < 0 ? arith::wrapNeg(d) : d;
        if (ad <= 0) continue;  // wrapNeg(INT64_MIN) stays negative
        best = std::max(best, sweepBound(decl, wlo, whi, trips, ad, reps));
      }
      auto& slot = bestPerSym_[static_cast<std::size_t>(ea->sym)];
      slot = std::max(slot, best);
    }
  }

  /// The chain-cut bound of one sweep (DESIGN.md §10.2): any placement
  /// splits V = W ∪ (W+δ) into ≥ q nonempty owner classes; the δ-offset
  /// dependence edges form |δ| chains covering V, so ≥ q − |δ| edges
  /// cross classes and each crossing edge forces elemSize bytes onto the
  /// wire. Across outer repetitions only edges whose read endpoint is
  /// itself rewritten each sweep (≥ q − 2|δ| of them) are forced again.
  std::int64_t sweepBound(const il::ArrayDecl& decl, Index wlo, Index whi,
                          Index trips, Index delta, Index reps) {
    if (delta <= 0 || delta > trips) return 0;  // V must stay connected
    const Index n = decl.global.dim(0).count();
    const int procs = decl.dist.specs()[0].procs;
    // V as a section, clamped to the array (out-of-bounds reads are a
    // program error the verifier reports elsewhere).
    const Index glo = decl.global.dim(0).lb(), ghi = decl.global.dim(0).ub();
    const Index vlo = std::max(glo, wlo - delta);
    const Index vhi = std::min(ghi, whi + delta);
    if (vlo > vhi) return 0;
    const Index len = vhi - vlo + 1;
    // q over the search family (block sizes ≤ ceil(N/P)): a contiguous
    // range of length L meets ≥ ceil(L / ceil(N/P)) owner classes...
    const Index blk = (n + procs - 1) / procs;
    Index q = (len + blk - 1) / blk;
    // ... and never more classes than the *declared* placement actually
    // populates over V (a declared block size beyond the family cap can
    // leave processors empty).
    const Section v{Triplet(vlo, vhi)};
    int populated = 0;
    for (int pid = 0; pid < prog_.nprocs; ++pid) {
      const sec::RegionList part = decl.dist.localPart(pid);
      for (const Section& piece : part.sections()) {
        if (piece.rank() == 1 && !Section::intersect(piece, v).empty()) {
          ++populated;
          break;
        }
      }
    }
    q = std::min(q, static_cast<Index>(populated));
    const std::int64_t esz =
        static_cast<std::int64_t>(rt::elemSize(decl.type));
    const std::int64_t firstSweep = std::max<Index>(0, q - delta);
    const std::int64_t interior = std::max<Index>(0, q - 2 * delta);
    std::int64_t cuts = arith::checkedAddNonNeg(
        firstSweep,
        arith::checkedMulNonNeg(reps - 1, interior, "sweep repetitions"),
        "chain-cut count");
    return arith::checkedMulNonNeg(cuts, esz, "parametric bound bytes");
  }

  static void flatten(const StmtPtr& s, std::vector<StmtPtr>& out) {
    if (!s) return;
    if (s->kind == StmtKind::Block) {
      for (const auto& c : s->stmts) flatten(c, out);
    } else {
      out.push_back(s);
    }
  }

  const il::Program& prog_;
  std::vector<std::int64_t> bestPerSym_;
};

CostReport buildReport(const il::Program& prog, const il::Program& pre) {
  VerifyOptions exactOpts;
  exactOpts.collectCost = true;
  exactOpts.matchComm = false;
  VerifyResult exact = verifyProgram(prog, exactOpts);

  VerifyOptions oblOpts = exactOpts;
  oblOpts.obliviousPlacement = true;
  VerifyResult obl = verifyProgram(prog, oblOpts);

  CostReport r;
  r.exact = exact.exhaustive;
  r.perProc.resize(static_cast<std::size_t>(prog.nprocs));
  std::map<const Stmt*, StmtCost> byStmt;
  std::map<int, SymbolCost> bySym;
  for (const CostEvent& ev : exact.costEvents) {
    if (!ev.definite) {
      r.exact = false;
      continue;  // non-definite stmts are flagged in a second pass below
    }
    const std::int64_t bytes = eventBytes(prog, ev);
    const std::int64_t msgs = ev.messages;
    r.bytesMoved = arith::checkedAddNonNeg(r.bytesMoved, bytes,
                                           "total modeled bytes");
    r.messages = arith::checkedAddNonNeg(r.messages, msgs,
                                         "total modeled messages");
    auto& pc = r.perProc[static_cast<std::size_t>(ev.pid)];
    pc.bytes += bytes;
    pc.messages += msgs;
    auto& sc = bySym[ev.sym];
    sc.sym = ev.sym;
    sc.bytes += bytes;
    sc.messages += msgs;
    auto& st = byStmt[ev.stmt.get()];
    if (!st.stmt) {
      st.stmt = ev.stmt;
      st.loc = ev.loc;
      st.sym = ev.sym;
      st.cls = ev.cls;
    }
    st.bytes += bytes;
    st.messages += msgs;
  }
  for (const CostEvent& ev : exact.costEvents) {
    if (ev.definite) continue;
    // Flag the statement as undercounted; a purely conditional statement
    // still gets a row (with zero counted bytes) so the report shows it.
    auto& st = byStmt[ev.stmt.get()];
    if (!st.stmt) {
      st.stmt = ev.stmt;
      st.loc = ev.loc;
      st.sym = ev.sym;
      st.cls = ev.cls;
    }
    st.definite = false;
  }
  for (auto& [sym, sc] : bySym) r.perSymbol.push_back(sc);
  for (auto& [p, st] : byStmt) r.perStmt.push_back(st);
  std::stable_sort(r.perStmt.begin(), r.perStmt.end(),
                   [](const StmtCost& a, const StmtCost& b) {
                     if (a.loc.line != b.loc.line)
                       return a.loc.line < b.loc.line;
                     return a.loc.col < b.loc.col;
                   });

  for (const CostEvent& ev : obl.costEvents) {
    if (!ev.definite) continue;
    r.invariantBound = arith::checkedAddNonNeg(
        r.invariantBound, eventBytes(prog, ev), "invariant lower bound");
  }
  r.parametricBound = parametricLowerBound(pre);
  return r;
}

}  // namespace

double CostReport::pctOfOptimal() const {
  if (bytesMoved <= 0) return lowerBound() <= 0 ? 100.0 : 0.0;
  const double p =
      100.0 * static_cast<double>(lowerBound()) /
      static_cast<double>(bytesMoved);
  return p > 100.0 ? 100.0 : p;
}

CostReport analyzeCost(const il::Program& prog) {
  return buildReport(prog, prog);
}

CostReport analyzeCost(const il::Program& prog, const il::Program& pre) {
  return buildReport(prog, pre);
}

std::int64_t parametricLowerBound(const il::Program& prog) {
  return SweepScanner(prog).run();
}

std::string formatCostReport(const il::Program& prog, const CostReport& r,
                             const std::string& file) {
  std::ostringstream os;
  os << "cost: " << r.bytesMoved << " bytes in " << r.messages
     << " messages"
     << (r.exact ? " (exact)" : " (lower estimate: analysis inexact)")
     << "\n";
  char pct[32];
  std::snprintf(pct, sizeof pct, "%.1f", r.pctOfOptimal());
  os << "lower bound: " << r.lowerBound() << " bytes (invariant "
     << r.invariantBound << ", parametric " << r.parametricBound << "); "
     << pct << "% of optimal\n";
  os << "per processor:\n";
  for (std::size_t p = 0; p < r.perProc.size(); ++p)
    os << "  p" << p << ": " << r.perProc[p].bytes << " bytes, "
       << r.perProc[p].messages << " messages\n";
  os << "per symbol:\n";
  for (const SymbolCost& sc : r.perSymbol)
    os << "  " << prog.decl(sc.sym).name << ": " << sc.bytes << " bytes, "
       << sc.messages << " messages\n";
  os << "per statement:\n";
  for (const StmtCost& st : r.perStmt) {
    os << "  ";
    if (st.loc.valid()) {
      if (!file.empty()) os << file << ":";
      os << st.loc.line << ":" << st.loc.col << ": ";
    }
    os << className(st.cls) << " send of '" << prog.decl(st.sym).name
       << "': " << st.bytes << " bytes, " << st.messages << " messages";
    if (!st.definite) os << " (+ sends the analysis could not count)";
    os << "\n";
  }
  return os.str();
}

std::string costReportJson(const il::Program& prog, const CostReport& r,
                           const std::string& file) {
  std::ostringstream os;
  char pct[32];
  std::snprintf(pct, sizeof pct, "%.1f", r.pctOfOptimal());
  os << "{\"file\":" << json::str(file)
     << ",\"exact\":" << (r.exact ? "true" : "false")
     << ",\"bytes_moved\":" << r.bytesMoved
     << ",\"messages\":" << r.messages
     << ",\"lower_bound\":" << r.lowerBound()
     << ",\"invariant_bound\":" << r.invariantBound
     << ",\"parametric_bound\":" << r.parametricBound
     << ",\"pct_of_optimal\":" << pct << ",\"per_proc\":[";
  for (std::size_t p = 0; p < r.perProc.size(); ++p) {
    if (p) os << ",";
    os << "{\"pid\":" << p << ",\"bytes\":" << r.perProc[p].bytes
       << ",\"messages\":" << r.perProc[p].messages << "}";
  }
  os << "],\"per_symbol\":[";
  for (std::size_t i = 0; i < r.perSymbol.size(); ++i) {
    if (i) os << ",";
    const SymbolCost& sc = r.perSymbol[i];
    os << "{\"symbol\":" << json::str(prog.decl(sc.sym).name)
       << ",\"bytes\":" << sc.bytes << ",\"messages\":" << sc.messages
       << "}";
  }
  os << "],\"per_stmt\":[";
  for (std::size_t i = 0; i < r.perStmt.size(); ++i) {
    if (i) os << ",";
    const StmtCost& st = r.perStmt[i];
    os << "{\"file\":" << json::str(file) << ",\"line\":" << st.loc.line
       << ",\"col\":" << st.loc.col
       << ",\"symbol\":" << json::str(prog.decl(st.sym).name)
       << ",\"class\":" << json::str(className(st.cls))
       << ",\"bytes\":" << st.bytes << ",\"messages\":" << st.messages
       << ",\"definite\":" << (st.definite ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace xdp::analysis
