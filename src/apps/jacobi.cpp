#include "xdp/apps/jacobi.hpp"

#include "xdp/apps/programs.hpp"
#include "xdp/support/check.hpp"

namespace xdp::apps {

using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

namespace {

double initValue(const JacobiConfig& cfg, Index i, Index j) {
  return cellValueAt(cfg.seed, 0, Point{i, j});
}

}  // namespace

JacobiResult runJacobi(const JacobiConfig& cfg) {
  XDP_CHECK(cfg.rows >= cfg.nprocs && cfg.cols >= 3,
            "jacobi grid too small for the processor count");
  const Index n = cfg.rows, m = cfg.cols;
  const int P = cfg.nprocs;

  rt::RuntimeOptions ropts;
  ropts.transport = cfg.transport;
  rt::Runtime runtime(P, ropts);
  Section g{Triplet(1, n), Triplet(1, m)};
  Distribution rowBlock(g, {DimSpec::block(P), DimSpec::collapsed()});
  const int A = runtime.declareArray<double>("A", g, rowBlock);
  const int B = runtime.declareArray<double>("B", g, rowBlock);
  // Halo rows: HN[p,*] caches the row just above p's block of the current
  // buffer; HS[p,*] the row just below.
  Section gh{Triplet(0, P - 1), Triplet(1, m)};
  Distribution haloDist(gh, {DimSpec::block(P), DimSpec::collapsed()});
  const int HN = runtime.declareArray<double>("HN", gh, haloDist);
  const int HS = runtime.declareArray<double>("HS", gh, haloDist);

  runtime.run([&](rt::Proc& p) {
    const int me = p.mypid();
    const sec::RegionList part = rowBlock.localPart(me);
    if (part.empty()) return;
    const Index rlo = part.sections()[0].dim(0).lb();
    const Index rhi = part.sections()[0].dim(0).ub();

    // Both buffers start from the initial condition, so global boundary
    // rows/columns stay correct without ever being rewritten.
    for (Index i = rlo; i <= rhi; ++i) {
      std::vector<double> row(static_cast<std::size_t>(m));
      for (Index j = 1; j <= m; ++j)
        row[static_cast<std::size_t>(j - 1)] = initValue(cfg, i, j);
      Section rowSec{Triplet(i), Triplet(1, m)};
      p.write<double>(A, rowSec, row);
      p.write<double>(B, rowSec, row);
    }
    p.barrier();  // neighbours' initial rows must exist before exchange

    auto dests = [&](int q) -> std::optional<std::vector<int>> {
      if (!cfg.bindDestinations) return std::nullopt;
      return std::vector<int>{q};
    };

    int cur = A, nxt = B;
    for (int it = 0; it < cfg.iterations; ++it) {
      Section myTop{Triplet(rlo), Triplet(1, m)};
      Section myBot{Triplet(rhi), Triplet(1, m)};
      Section haloN{Triplet(me), Triplet(1, m)};
      Section haloS{Triplet(me), Triplet(1, m)};
      // --- send boundary rows, post halo receives -----------------------
      if (cfg.plan == HaloPlan::RowSections) {
        if (me > 0) p.send(cur, myTop, dests(me - 1));
        if (me < P - 1) p.send(cur, myBot, dests(me + 1));
        if (me > 0)
          p.recv(HN, haloN, cur, Section{Triplet(rlo - 1), Triplet(1, m)});
        if (me < P - 1)
          p.recv(HS, haloS, cur, Section{Triplet(rhi + 1), Triplet(1, m)});
        if (me > 0) p.await(HN, haloN);
        if (me < P - 1) p.await(HS, haloS);
      } else {  // ElementWise: one message per halo element
        for (Index j = 1; j <= m; ++j) {
          if (me > 0)
            p.send(cur, Section{Triplet(rlo), Triplet(j)}, dests(me - 1));
          if (me < P - 1)
            p.send(cur, Section{Triplet(rhi), Triplet(j)}, dests(me + 1));
        }
        for (Index j = 1; j <= m; ++j) {
          if (me > 0)
            p.recv(HN, Section{Triplet(me), Triplet(j)}, cur,
                   Section{Triplet(rlo - 1), Triplet(j)});
          if (me < P - 1)
            p.recv(HS, Section{Triplet(me), Triplet(j)}, cur,
                   Section{Triplet(rhi + 1), Triplet(j)});
        }
        if (me > 0) p.await(HN, haloN);
        if (me < P - 1) p.await(HS, haloS);
      }

      // --- relax the interior rows of my block --------------------------
      auto readRow = [&](Index i) {
        if (i < rlo) return p.read<double>(HN, haloN);
        if (i > rhi) return p.read<double>(HS, haloS);
        return p.read<double>(cur, Section{Triplet(i), Triplet(1, m)});
      };
      const Index lo = std::max<Index>(2, rlo);
      const Index hi = std::min<Index>(n - 1, rhi);
      for (Index i = lo; i <= hi; ++i) {
        const std::vector<double> north = readRow(i - 1);
        const std::vector<double> mid = readRow(i);
        const std::vector<double> south = readRow(i + 1);
        std::vector<double> out = mid;  // boundary columns keep old values
        for (Index j = 2; j <= m - 1; ++j) {
          const auto ju = static_cast<std::size_t>(j - 1);
          out[ju] =
              0.25 * (north[ju] + south[ju] + mid[ju - 1] + mid[ju + 1]);
        }
        p.write<double>(nxt, Section{Triplet(i), Triplet(1, m)}, out);
      }
      if (cfg.flopCost > 0.0)
        p.compute(cfg.flopCost * static_cast<double>((hi - lo + 1) * m));
      std::swap(cur, nxt);
      p.barrier();  // iteration boundary: halo slots are reused
    }
  });

  JacobiResult r;
  const int finalSym = (cfg.iterations % 2 == 0) ? A : B;
  r.grid = gatherF64(runtime, finalSym, g);
  r.net = runtime.fabric().totalStats();
  r.makespan = runtime.fabric().makespan();
  return r;
}

std::vector<double> jacobiReference(const JacobiConfig& cfg) {
  const Index n = cfg.rows, m = cfg.cols;
  std::vector<double> cur(static_cast<std::size_t>(n * m));
  Section g{Triplet(1, n), Triplet(1, m)};
  g.forEach([&](const Point& pt) {
    cur[static_cast<std::size_t>(g.fortranPos(pt))] =
        initValue(cfg, pt[0], pt[1]);
  });
  std::vector<double> nxt = cur;
  auto at = [&](std::vector<double>& v, Index i, Index j) -> double& {
    return v[static_cast<std::size_t>((i - 1) + n * (j - 1))];
  };
  for (int it = 0; it < cfg.iterations; ++it) {
    for (Index i = 2; i <= n - 1; ++i)
      for (Index j = 2; j <= m - 1; ++j)
        at(nxt, i, j) = 0.25 * (at(cur, i - 1, j) + at(cur, i + 1, j) +
                                at(cur, i, j - 1) + at(cur, i, j + 1));
    std::swap(cur, nxt);
  }
  return cur;
}

}  // namespace xdp::apps
