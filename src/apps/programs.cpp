#include "xdp/apps/programs.hpp"

#include <cmath>

#include "xdp/support/check.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::apps {

using dist::DimSpec;
using dist::Distribution;
using il::ExprPtr;
using il::SectionExprPtr;
using il::StmtPtr;
using sec::Triplet;

// --- shared helpers ---------------------------------------------------------

double cellValueAt(std::uint64_t seed, int sym, const Point& pt) {
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(sym + 1) << 56);
  for (int d = 0; d < pt.rank(); ++d) {
    h ^= static_cast<std::uint64_t>(pt[d] + 0x9e37) *
         0x9e3779b97f4a7c15ULL;
    h = (h << 13) | (h >> 51);
  }
  SplitMix64 sm(h);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

Complex complexCellValueAt(std::uint64_t seed, int sym, const Point& pt) {
  return Complex(cellValueAt(seed, sym, pt),
                 cellValueAt(seed ^ 0xabcdef0123456789ULL, sym, pt));
}

void registerFillKernel(interp::Interpreter& in, std::uint64_t seed) {
  // Fills the *owned* part of each (symbol, section) argument — segment by
  // segment, so it works for fragmented partitions (BLOCK-CYCLIC) and for
  // arguments naming the whole array.
  in.registerKernel(
      "fill", [seed](rt::Proc& p,
                     const std::vector<std::pair<int, Section>>& args) {
        for (const auto& [sym, s] : args) {
          if (s.empty()) continue;
          const auto type = p.table().decl(sym).type;
          for (const rt::SegmentDesc& seg : p.table().segments(sym)) {
            Section piece = seg.bounds.rank() == s.rank()
                                ? Section::intersect(seg.bounds, s)
                                : Section{};
            if (seg.bounds.rank() == s.rank() && piece.empty()) continue;
            if (seg.bounds.rank() != s.rank()) continue;
            if (type == rt::ElemType::F64) {
              std::vector<double> vals;
              vals.reserve(static_cast<std::size_t>(piece.count()));
              piece.forEach([&](const Point& pt) {
                vals.push_back(cellValueAt(seed, sym, pt));
              });
              p.write<double>(sym, piece, vals);
            } else if (type == rt::ElemType::C128) {
              std::vector<Complex> vals;
              vals.reserve(static_cast<std::size_t>(piece.count()));
              piece.forEach([&](const Point& pt) {
                vals.push_back(complexCellValueAt(seed, sym, pt));
              });
              p.write<Complex>(sym, piece, std::span<const Complex>(vals));
            } else {
              XDP_CHECK(false, "fill supports f64/c128");
            }
          }
        }
      });
}

namespace {

template <typename T>
std::vector<T> gatherTyped(rt::Runtime& rt, int sym, const Section& global) {
  std::vector<T> out(static_cast<std::size_t>(global.count()));
  for (int pid = 0; pid < rt.nprocs(); ++pid) {
    rt::ProcTable& t = rt.table(pid);
    for (const rt::SegmentDesc& seg : t.segments(sym)) {
      if (seg.status != rt::SegState::Accessible) continue;
      std::vector<T> buf(static_cast<std::size_t>(seg.bounds.count()));
      t.readElems(sym, seg.bounds,
                  reinterpret_cast<std::byte*>(buf.data()));
      seg.bounds.forEach([&](const Point& pt) {
        out[static_cast<std::size_t>(global.fortranPos(pt))] =
            buf[static_cast<std::size_t>(seg.bounds.fortranPos(pt))];
      });
    }
  }
  return out;
}

}  // namespace

std::vector<double> gatherF64(rt::Runtime& rt, int sym,
                              const Section& global) {
  return gatherTyped<double>(rt, sym, global);
}

std::vector<Complex> gatherC128(rt::Runtime& rt, int sym,
                                const Section& global) {
  return gatherTyped<Complex>(rt, sym, global);
}

// --- vector add (section 2.2) ------------------------------------------------

VecAddConfig vecAddAligned(Index n, int nprocs) {
  VecAddConfig cfg;
  cfg.n = n;
  cfg.nprocs = nprocs;
  Section g{Triplet(1, n)};
  cfg.distA = Distribution(g, {DimSpec::block(nprocs)});
  cfg.distB = Distribution(g, {DimSpec::block(nprocs)});
  return cfg;
}

VecAddConfig vecAddMisaligned(Index n, int nprocs) {
  VecAddConfig cfg = vecAddAligned(n, nprocs);
  Section g{Triplet(1, n)};
  cfg.distB = Distribution(g, {DimSpec::cyclic(nprocs)});
  return cfg;
}

il::Program buildVecAdd(const VecAddConfig& cfg) {
  il::Program prog;
  prog.nprocs = cfg.nprocs;
  Section g{Triplet(1, cfg.n)};
  il::ArrayDecl da{"A", rt::ElemType::F64, g, cfg.distA, {}};
  il::ArrayDecl db{"B", rt::ElemType::F64, g, cfg.distB, {}};
  const int A = prog.addArray(da);
  const int B = prog.addArray(db);

  ExprPtr i = il::scalar("i");
  SectionExprPtr ai = il::secPoint({i});
  SectionExprPtr bi = il::secPoint({i});
  StmtPtr init = il::kernel("fill", {{A, il::secLocalPart(A)},
                                     {B, il::secLocalPart(B)}});
  StmtPtr loop = il::forLoop(
      "i", il::intConst(1), il::intConst(cfg.n),
      il::block({il::elemAssign(A, ai,
                                il::add(il::elem(A, ai), il::elem(B, bi)))}));
  prog.body = il::block({init, loop});
  return prog;
}

double vecAddExpected(const VecAddConfig& cfg, Index i) {
  Point pt{i};
  return cellValueAt(cfg.seed, 0, pt) + cellValueAt(cfg.seed, 1, pt);
}

// --- 3-D FFT (section 4) -------------------------------------------------------

dist::Distribution fft3dTargetDist(const Fft3dConfig& cfg) {
  Section g{Triplet(1, cfg.n), Triplet(1, cfg.n), Triplet(1, cfg.n)};
  return Distribution(
      g, {DimSpec::collapsed(), DimSpec::block(cfg.nprocs),
          DimSpec::collapsed()});
}

il::Program buildFft3dStage1(const Fft3dConfig& cfg) {
  XDP_CHECK(isPow2(static_cast<std::size_t>(cfg.n)),
            "fft3d needs a power-of-two edge");
  XDP_CHECK(cfg.n % cfg.nprocs == 0, "fft3d needs n divisible by nprocs");
  il::Program prog;
  prog.nprocs = cfg.nprocs;
  const Index N = cfg.n;
  Section g{Triplet(1, N), Triplet(1, N), Triplet(1, N)};
  Distribution init(g, {DimSpec::collapsed(), DimSpec::collapsed(),
                        DimSpec::block(cfg.nprocs)});
  il::ArrayDecl da{"A", rt::ElemType::C128, g, init,
                   dist::SegmentShape::of({N, 1, 1})};
  const int A = prog.addArray(da);
  Distribution target = fft3dTargetDist(cfg);

  ExprPtr one = il::intConst(1);
  ExprPtr nn = il::intConst(N);
  ExprPtr i = il::scalar("i"), j = il::scalar("j"), k = il::scalar("k");
  ExprPtr p = il::scalar("p"), q = il::scalar("q");
  auto full = [&] { return il::TripletExpr{one, nn, {}}; };

  StmtPtr fillStmt = il::kernel("fill", {{A, il::secLocalPart(A)}});

  // Loop1: do k { iown(A[*,*,k]) : { do i { fft1D(A[i,*,k]) } } }
  SectionExprPtr planeK =
      il::secLit({full(), full(), il::TripletExpr{k, {}, {}}});
  SectionExprPtr lineJdir =
      il::secLit({il::TripletExpr{i, {}, {}}, full(),
                  il::TripletExpr{k, {}, {}}});
  StmtPtr loop1 = il::forLoop(
      "k", one, nn,
      il::block({il::guarded(
          il::iown(A, planeK),
          il::block({il::forLoop(
              "i", one, nn,
              il::block({il::kernel("fft1d", {{A, lineJdir}})}))}))}));

  // Loop2 (j outer so later fusion with the send loop is possible):
  // do j { do k { iown(A[*,*,k]) : { fft1D(A[*,j,k]) } } }
  SectionExprPtr lineIdir =
      il::secLit({full(), il::TripletExpr{j, {}, {}},
                  il::TripletExpr{k, {}, {}}});
  std::vector<StmtPtr> loop2Body;
  loop2Body.push_back(il::forLoop(
      "k", one, nn,
      il::block({il::guarded(
          il::iown(A, planeK),
          il::block({il::kernel("fft1d", {{A, lineIdir}})}))})));
  if (cfg.skewCost > 0.0) {
    // Load imbalance: processor 0 pays extra time per plane.
    loop2Body.push_back(il::computeCost(
        il::mul(il::realConst(cfg.skewCost),
                il::bin(il::BinOp::Eq, il::mypid(), il::intConst(0)))));
  }
  StmtPtr loop2 = il::forLoop("j", one, nn, il::block(std::move(loop2Body)));

  // Loop3: redistribute (*,*,BLOCK) -> (*,BLOCK,*) via ownership+value
  // transfers, one message per (plane j, sender) pair.
  //   do p { iown(part(p)) : {
  //     do j { A[*,j,*]^part(p) -=> }            // my k-slab of plane j
  //     do j { do q { nonempty(V) : { V <=- } } } // V = [*,j,*]^part(q)
  //   } }                                        //     ^mypart@target
  SectionExprPtr planeJ =
      il::secLit({full(), il::TripletExpr{j, {}, {}}, full()});
  SectionExprPtr sendSec =
      il::secIntersect(planeJ, il::secOwnerPart(A, p));
  // Receiver of plane j under (*,BLOCK,*): owner coordinate (j-1)/bs.
  const Index bs = (N + cfg.nprocs - 1) / cfg.nprocs;
  ExprPtr targetOwner =
      il::bin(il::BinOp::Div, il::sub(j, one), il::intConst(bs));
  auto sendStmtBase = il::sendOwn(A, sendSec, /*withValue=*/true,
                                  il::DestSpec::none(), prog.freshLink());
  StmtPtr sendStmt;
  {
    auto n2 = std::make_shared<il::Stmt>(*sendStmtBase);
    n2->bindHint = targetOwner;  // auxiliary link info for CommBinding
    sendStmt = n2;
  }
  StmtPtr sendLoop = il::forLoop("j", one, nn, il::block({sendStmt}));
  SectionExprPtr recvSec = il::secIntersect(
      il::secIntersect(planeJ, il::secOwnerPart(A, q)),
      il::secOwnerPart(A, p, target));
  StmtPtr recvLoop = il::forLoop(
      "j", one, nn,
      il::block({il::forLoop(
          "q", il::intConst(0), il::intConst(cfg.nprocs - 1),
          il::block({il::guarded(
              il::secNonEmpty(A, recvSec),
              il::block({il::recvOwn(A, recvSec, /*withValue=*/true)}))}))}));
  StmtPtr loop3 = il::forLoop(
      "p", il::intConst(0), il::intConst(cfg.nprocs - 1),
      il::block({il::guarded(il::iown(A, il::secOwnerPart(A, p)),
                             il::block({sendLoop, recvLoop}))}));

  // Loop4: do j { await(A[*,j,*]) : { do i { fft1D(A[i,j,*]) } } }
  SectionExprPtr lineKdir =
      il::secLit({il::TripletExpr{i, {}, {}}, il::TripletExpr{j, {}, {}},
                  full()});
  StmtPtr loop4 = il::forLoop(
      "j", one, nn,
      il::block({il::guarded(
          il::awaitOf(A, planeJ),
          il::block({il::forLoop(
              "i", one, nn,
              il::block({il::kernel("fft1d", {{A, lineKdir}})}))}))}));

  prog.body = il::block({fillStmt, loop1, loop2, loop3, loop4});
  return prog;
}

std::vector<Complex> fft3dReference(const Fft3dConfig& cfg) {
  const Index N = cfg.n;
  Section g{Triplet(1, N), Triplet(1, N), Triplet(1, N)};
  std::vector<Complex> cube(static_cast<std::size_t>(N * N * N));
  g.forEach([&](const Point& pt) {
    cube[static_cast<std::size_t>(g.fortranPos(pt))] =
        complexCellValueAt(cfg.seed, 0, pt);
  });
  auto at = [&](Index a, Index b, Index c) -> Complex& {
    return cube[static_cast<std::size_t>((a - 1) + N * ((b - 1) + N * (c - 1)))];
  };
  std::vector<Complex> line(static_cast<std::size_t>(N));
  // dim 1 (j) sweep
  for (Index c = 1; c <= N; ++c)
    for (Index a = 1; a <= N; ++a) {
      for (Index b = 1; b <= N; ++b) line[static_cast<std::size_t>(b - 1)] = at(a, b, c);
      fft1d(line);
      for (Index b = 1; b <= N; ++b) at(a, b, c) = line[static_cast<std::size_t>(b - 1)];
    }
  // dim 0 (i) sweep
  for (Index c = 1; c <= N; ++c)
    for (Index b = 1; b <= N; ++b) {
      for (Index a = 1; a <= N; ++a) line[static_cast<std::size_t>(a - 1)] = at(a, b, c);
      fft1d(line);
      for (Index a = 1; a <= N; ++a) at(a, b, c) = line[static_cast<std::size_t>(a - 1)];
    }
  // dim 2 (k) sweep
  for (Index b = 1; b <= N; ++b)
    for (Index a = 1; a <= N; ++a) {
      for (Index c = 1; c <= N; ++c) line[static_cast<std::size_t>(c - 1)] = at(a, b, c);
      fft1d(line);
      for (Index c = 1; c <= N; ++c) at(a, b, c) = line[static_cast<std::size_t>(c - 1)];
    }
  return cube;
}

}  // namespace xdp::apps
