#include "xdp/apps/fft.hpp"

#include <cmath>
#include <numbers>

#include "xdp/support/check.hpp"

namespace xdp::apps {

bool isPow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft1d(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  XDP_CHECK(isPow2(n), "fft1d requires a power-of-two length");
  if (n == 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex u = data[i + k];
        Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv;
  }
}

std::vector<Complex> naiveDft(std::span<const Complex> data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      acc += data[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

void registerFftKernels(interp::Interpreter& in, double flopCost) {
  in.registerKernel(
      "fft1d",
      [flopCost](rt::Proc& p,
                 const std::vector<std::pair<int, sec::Section>>& args) {
        XDP_CHECK(args.size() == 1, "fft1d takes one section argument");
        const auto& [sym, s] = args[0];
        if (s.empty()) return;
        auto line = p.read<Complex>(sym, s);
        fft1d(line);
        p.write<Complex>(sym, s, std::span<const Complex>(line));
        const double n = static_cast<double>(line.size());
        p.compute(flopCost * n * std::log2(std::max(2.0, n)));
      });
}

}  // namespace xdp::apps
