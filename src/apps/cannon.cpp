#include "xdp/apps/cannon.hpp"

#include "xdp/apps/programs.hpp"
#include "xdp/support/check.hpp"

namespace xdp::apps {

using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

namespace {

struct Grid {
  Index n, b;
  int q;

  int pidOf(int row, int col) const { return row + q * col; }
  int rowOf(int pid) const { return pid % q; }
  int colOf(int pid) const { return pid / q; }

  /// Section of block (br, bc), 0-based block coordinates.
  Section block(int br, int bc) const {
    return Section{Triplet(br * b + 1, (br + 1) * b),
                   Triplet(bc * b + 1, (bc + 1) * b)};
  }
};

double aInit(const CannonConfig& cfg, Index r, Index c) {
  return cellValueAt(cfg.seed, 0, Point{r, c});
}
double bInit(const CannonConfig& cfg, Index r, Index c) {
  return cellValueAt(cfg.seed, 1, Point{r, c});
}

/// C-block += A-block * B-block, all b x b in Fortran (column-major) order.
void gemmAcc(std::vector<double>& c, const std::vector<double>& a,
             const std::vector<double>& bm, Index b) {
  for (Index j = 0; j < b; ++j)
    for (Index k = 0; k < b; ++k) {
      const double bkj = bm[static_cast<std::size_t>(k + b * j)];
      for (Index i = 0; i < b; ++i)
        c[static_cast<std::size_t>(i + b * j)] +=
            a[static_cast<std::size_t>(i + b * k)] * bkj;
    }
}

}  // namespace

CannonResult runCannon(const CannonConfig& cfg) {
  XDP_CHECK(cfg.q >= 2, "cannon needs a processor grid of at least 2x2");
  XDP_CHECK(cfg.n % cfg.q == 0, "matrix edge must divide by the grid edge");
  const Grid gr{cfg.n, cfg.n / cfg.q, cfg.q};
  const int P = cfg.q * cfg.q;

  rt::RuntimeOptions ropts;
  ropts.transport = cfg.transport;
  rt::Runtime runtime(P, ropts);
  Section g{Triplet(1, cfg.n), Triplet(1, cfg.n)};
  Distribution d2(g, {DimSpec::block(cfg.q), DimSpec::block(cfg.q)});
  const int A = runtime.declareArray<double>("A", g, d2);
  const int B = runtime.declareArray<double>("B", g, d2);
  const int C = runtime.declareArray<double>("C", g, d2);
  const bool own = cfg.plan == ShiftPlan::OwnershipShift;
  // In-buffers exist only under the DataShift plan — the ownership plan
  // needs no auxiliary storage at all (section 2.6's storage reuse).
  const int AIN =
      own ? -1 : runtime.declareArray<double>("AIN", g, d2);
  const int BIN =
      own ? -1 : runtime.declareArray<double>("BIN", g, d2);
  const Index b = gr.b;

  runtime.run([&](rt::Proc& p) {
    const int i = gr.rowOf(p.mypid());
    const int j = gr.colOf(p.mypid());
    Section home = gr.block(i, j);

    // Initialize my home blocks.
    {
      std::vector<double> av, bv;
      av.reserve(static_cast<std::size_t>(b * b));
      bv.reserve(static_cast<std::size_t>(b * b));
      home.forEach([&](const Point& pt) {
        av.push_back(aInit(cfg, pt[0], pt[1]));
        bv.push_back(bInit(cfg, pt[0], pt[1]));
      });
      p.write<double>(A, home, av);
      p.write<double>(B, home, bv);
    }
    p.barrier();

    // --- skew: A-block (i,j) -> (i, j-i); B-block (i,j) -> (i-j, j) ----
    const int aSkewDst = gr.pidOf(i, (j - i + cfg.q) % cfg.q);
    const int bSkewDst = gr.pidOf((i - j + cfg.q) % cfg.q, j);
    // After the skew, I hold A(i, i+j) and B(i+j, j).
    int aCol = (i + j) % cfg.q;  // current A block column
    int bRow = (i + j) % cfg.q;  // current B block row
    if (own) {
      if (aSkewDst != p.mypid()) {
        p.sendOwnership(A, home, true, std::vector<int>{aSkewDst});
        p.recvOwnership(A, gr.block(i, aCol), true);
      }
      if (bSkewDst != p.mypid()) {
        p.sendOwnership(B, home, true, std::vector<int>{bSkewDst});
        p.recvOwnership(B, gr.block(bRow, j), true);
      }
    } else {
      // Values travel; home storage keeps the (relabelled) blocks.
      if (aSkewDst != p.mypid()) {
        p.send(A, home, std::vector<int>{aSkewDst});
        // My incoming block is A(i, i+j), whose home is proc (i, i+j).
        p.recv(AIN, home, A, gr.block(i, aCol));
        p.await(AIN, home);
      }
      if (bSkewDst != p.mypid()) {
        p.send(B, home, std::vector<int>{bSkewDst});
        p.recv(BIN, home, B, gr.block(bRow, j));
        p.await(BIN, home);
      }
      p.barrier();  // all sends of this exchange retired before overwrite
      if (aSkewDst != p.mypid()) {
        auto v = p.read<double>(AIN, home);
        p.write<double>(A, home, v);
      }
      if (bSkewDst != p.mypid()) {
        auto v = p.read<double>(BIN, home);
        p.write<double>(B, home, v);
      }
      p.barrier();
    }

    std::vector<double> cAcc(static_cast<std::size_t>(b * b), 0.0);
    const int left = gr.pidOf(i, (j - 1 + cfg.q) % cfg.q);
    const int up = gr.pidOf((i - 1 + cfg.q) % cfg.q, j);

    for (int s = 0; s < cfg.q; ++s) {
      std::vector<double> av, bv;
      if (own) {
        Section aBlk = gr.block(i, aCol);
        Section bBlk = gr.block(bRow, j);
        p.await(A, aBlk);
        p.await(B, bBlk);
        av = p.read<double>(A, aBlk);
        bv = p.read<double>(B, bBlk);
        gemmAcc(cAcc, av, bv, b);
        if (cfg.flopCost > 0)
          p.compute(cfg.flopCost * static_cast<double>(b * b * b));
        if (s + 1 < cfg.q) {
          // Shift: my A block migrates left, my B block migrates up.
          p.sendOwnership(A, aBlk, true, std::vector<int>{left});
          p.sendOwnership(B, bBlk, true, std::vector<int>{up});
          aCol = (aCol + 1) % cfg.q;
          bRow = (bRow + 1) % cfg.q;
          p.recvOwnership(A, gr.block(i, aCol), true);
          p.recvOwnership(B, gr.block(bRow, j), true);
        }
      } else {
        av = p.read<double>(A, home);
        bv = p.read<double>(B, home);
        gemmAcc(cAcc, av, bv, b);
        if (cfg.flopCost > 0)
          p.compute(cfg.flopCost * static_cast<double>(b * b * b));
        if (s + 1 < cfg.q) {
          p.send(A, home, std::vector<int>{left});
          p.send(B, home, std::vector<int>{up});
          // The values now landing in my buffers are whatever my right /
          // down neighbour held — by construction blocks A(i, aCol+1)
          // and B(bRow+1, j), but the message is *named* by the sender's
          // home block.
          const int right = gr.pidOf(i, (j + 1) % cfg.q);
          const int down = gr.pidOf((i + 1) % cfg.q, j);
          p.recv(AIN, home, A, gr.block(gr.rowOf(right), gr.colOf(right)));
          p.recv(BIN, home, B, gr.block(gr.rowOf(down), gr.colOf(down)));
          p.await(AIN, home);
          p.await(BIN, home);
          p.barrier();  // sends retired before the overwrite below
          auto va = p.read<double>(AIN, home);
          p.write<double>(A, home, va);
          auto vb = p.read<double>(BIN, home);
          p.write<double>(B, home, vb);
          aCol = (aCol + 1) % cfg.q;
          bRow = (bRow + 1) % cfg.q;
          p.barrier();
        }
      }
    }
    p.write<double>(C, home, cAcc);
  });

  CannonResult r;
  r.c = gatherF64(runtime, C, g);
  r.net = runtime.fabric().totalStats();
  r.makespan = runtime.fabric().makespan();
  for (int pid = 0; pid < P; ++pid) {
    std::size_t peak = 0;
    for (int sym : {A, B, C, AIN, BIN}) {
      if (sym < 0) continue;
      peak += runtime.table(pid).storageStats(sym).peakElems;
    }
    r.peakElemsPerProc = std::max(r.peakElemsPerProc, peak);
  }
  return r;
}

std::vector<double> cannonReference(const CannonConfig& cfg) {
  const Index n = cfg.n;
  std::vector<double> a(static_cast<std::size_t>(n * n)),
      bm(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (Index col = 1; col <= n; ++col)
    for (Index row = 1; row <= n; ++row) {
      a[static_cast<std::size_t>((row - 1) + n * (col - 1))] =
          aInit(cfg, row, col);
      bm[static_cast<std::size_t>((row - 1) + n * (col - 1))] =
          bInit(cfg, row, col);
    }
  for (Index col = 1; col <= n; ++col)
    for (Index k = 1; k <= n; ++k) {
      const double bkj = bm[static_cast<std::size_t>((k - 1) + n * (col - 1))];
      for (Index row = 1; row <= n; ++row)
        c[static_cast<std::size_t>((row - 1) + n * (col - 1))] +=
            a[static_cast<std::size_t>((row - 1) + n * (k - 1))] * bkj;
    }
  return c;
}

}  // namespace xdp::apps
