// Builders for the paper's running examples as IL+XDP programs, plus the
// verification helpers used by tests, examples and benchmarks.
//
//  * buildVecAdd   — section 2.2: `do i: A[i] = A[i] + B[i]` in its
//    sequential (pre-lowering) form; the optimization pipeline derives the
//    paper's successive versions from it.
//  * buildFft3dStage1 — section 4, first listing (generalized from the
//    4x4x4/P=4 case to any N divisible by P): four loops — fft sweeps
//    along dims 1 and 0, redistribution (*,*,BLOCK) -> (*,BLOCK,*) by
//    per-plane ownership+value transfer, fft sweep along dim 2 under
//    await guards. Stages 2 and 3 of the paper are derived by passes:
//       stage2 = singleIterationElimination(computeRuleElimination(s1))
//       stage3 = awaitSinking(loopFusion(stage2))
#pragma once

#include "xdp/apps/fft.hpp"
#include "xdp/il/program.hpp"

namespace xdp::apps {

using sec::Index;
using sec::Point;
using sec::Section;

// --- section 2.2 vector add ------------------------------------------------

struct VecAddConfig {
  Index n = 16;
  int nprocs = 4;
  dist::Distribution distA;  ///< distribution of A over [1:n]
  dist::Distribution distB;  ///< distribution of B over [1:n]
  std::uint64_t seed = 42;   ///< fill seed (the program starts with fills)
};

/// Block/Block (aligned) config — transfers are all redundant.
VecAddConfig vecAddAligned(Index n, int nprocs);
/// Block/Cyclic (misaligned) — every element moves.
VecAddConfig vecAddMisaligned(Index n, int nprocs);

il::Program buildVecAdd(const VecAddConfig& cfg);

/// Expected final value of A[i] (1-based i) given the fill seed.
double vecAddExpected(const VecAddConfig& cfg, Index i);

// --- section 4 3-D FFT ------------------------------------------------------

struct Fft3dConfig {
  Index n = 8;        ///< cube edge; power of two, divisible by nprocs
  int nprocs = 4;
  std::uint64_t seed = 7;
  double flopCost = 1e-8;  ///< modeled cost per fft butterfly unit
  /// Extra modeled compute per plane of the second fft sweep, charged on
  /// processor 0 only. Models load imbalance: this is where loop fusion's
  /// pipelining pays off (a slow sender's early planes reach their targets
  /// long before its sweep finishes). 0 disables.
  double skewCost = 0.0;
};

il::Program buildFft3dStage1(const Fft3dConfig& cfg);

/// The target distribution (*,BLOCK,*) of the redistribution.
dist::Distribution fft3dTargetDist(const Fft3dConfig& cfg);

/// Reference result: the same fills, transformed with local fft1d sweeps.
std::vector<Complex> fft3dReference(const Fft3dConfig& cfg);

// --- shared helpers -----------------------------------------------------------

/// Deterministic cell value at a global index point.
double cellValueAt(std::uint64_t seed, int sym, const Point& pt);
Complex complexCellValueAt(std::uint64_t seed, int sym, const Point& pt);

/// Register the "fill" kernel: fills each (sym, section) argument — which
/// must be owned by the executing processor — with deterministic values.
void registerFillKernel(interp::Interpreter& in, std::uint64_t seed);

/// Collect a distributed f64/c128 array into Fortran order of `global` by
/// reading every processor's accessible segments (post-run verification).
std::vector<double> gatherF64(rt::Runtime& rt, int sym,
                              const Section& global);
std::vector<Complex> gatherC128(rt::Runtime& rt, int sym,
                                const Section& global);

}  // namespace xdp::apps
