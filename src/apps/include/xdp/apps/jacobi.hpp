// 2-D Jacobi relaxation on the XDP runtime — the archetypal
// distributed-memory workload of the paper's era (its related-work
// compilers [4,8,21] all lead with stencils).
//
// The grid A[1:n, 1:m] is row-BLOCK distributed; each sweep reads the
// north/south neighbour rows, so every processor exchanges its boundary
// rows with its neighbours each iteration. Halos live in exclusive halo
// arrays (HN/HS) so the receive statement's destination is owner-local,
// exactly as XDP requires.
//
// Two communication plans, selectable per run:
//   * ElementWise — one message per halo element ("A[i,j] ->"), the naive
//     owner-computes shape;
//   * RowSections — one message per boundary row ("A[i,1:m] ->"), the
//     message-vectorized shape.
// Both compute identical results; the bench quantifies the difference.
#pragma once

#include <cstdint>
#include <vector>

#include "xdp/net/transport.hpp"
#include "xdp/rt/proc.hpp"

namespace xdp::apps {

enum class HaloPlan { ElementWise, RowSections };

struct JacobiConfig {
  sec::Index rows = 32;
  sec::Index cols = 32;
  int nprocs = 4;
  int iterations = 10;
  HaloPlan plan = HaloPlan::RowSections;
  bool bindDestinations = true;  ///< direct sends vs matchmaker routing
  std::uint64_t seed = 11;
  double flopCost = 0.0;  ///< modeled cost per stencil point
  /// Fabric transport (locked inline delivery vs lock-free ring).
  net::TransportOptions transport{};
};

struct JacobiResult {
  std::vector<double> grid;  ///< final A, Fortran order
  net::NetStats net;
  double makespan = 0.0;
};

/// Run the SPMD Jacobi solver on a fresh simulated machine.
JacobiResult runJacobi(const JacobiConfig& cfg);

/// Sequential reference with identical initial conditions.
std::vector<double> jacobiReference(const JacobiConfig& cfg);

}  // namespace xdp::apps
