// 1-D FFT kernel (the paper's fft1D()) and a naive DFT reference.
//
// The 3-D FFT of section 4 applies fft1D along lines of each dimension in
// turn; our IL programs call it through the interpreter's kernel registry.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

#include "xdp/interp/interpreter.hpp"

namespace xdp::apps {

using Complex = std::complex<double>;

/// In-place iterative radix-2 Cooley–Tukey FFT. n must be a power of two.
void fft1d(std::span<Complex> data, bool inverse = false);

/// O(n^2) reference DFT (allocates the result).
std::vector<Complex> naiveDft(std::span<const Complex> data,
                              bool inverse = false);

/// True iff n is a power of two (and > 0).
bool isPow2(std::size_t n);

/// Register the "fft1d" kernel with an interpreter. The kernel expects one
/// (symbol, section) argument naming a line of a C128 array owned by the
/// executing processor; it gathers the line, transforms it, scatters it
/// back, and charges `flopCost * n log2 n` of modeled compute time.
void registerFftKernels(interp::Interpreter& in, double flopCost = 1e-8);

}  // namespace xdp::apps
