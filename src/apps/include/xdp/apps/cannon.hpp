// Cannon's algorithm for distributed matrix multiplication on the XDP
// runtime — the classic 2-D torus algorithm, and a natural showcase for
// XDP's unified data/ownership transfer:
//
//   C = A * B on a q x q processor grid, all three (BLOCK:q, BLOCK:q)
//   distributed. After skewing, each of q rounds does a local GEMM on the
//   resident blocks and then *shifts* A one step left and B one step up.
//
// The shift can be implemented two ways, selectable per run:
//
//   * DataShift — each processor keeps ownership of its original block
//     storage and exchanges *values* through separate in-buffers (the
//     conventional message-passing formulation; needs a second buffer per
//     operand).
//   * OwnershipShift — the block itself migrates: "A[block] -=>" to the
//     left neighbour, "<=-" from the right. No auxiliary buffers exist at
//     all; the storage freed by the outgoing block is reused by the
//     incoming one (paper section 2.6: "the storage it had occupied can
//     be reused for a newly acquired section").
//
// Both compute identical results; the bench contrasts their storage
// footprints and traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "xdp/net/transport.hpp"
#include "xdp/rt/proc.hpp"

namespace xdp::apps {

enum class ShiftPlan { DataShift, OwnershipShift };

struct CannonConfig {
  sec::Index n = 16;   ///< matrix edge; divisible by q
  int q = 2;           ///< processor grid edge (P = q*q)
  ShiftPlan plan = ShiftPlan::OwnershipShift;
  std::uint64_t seed = 21;
  double flopCost = 0.0;  ///< modeled cost per multiply-add
  /// Fabric transport (locked inline delivery vs lock-free ring).
  net::TransportOptions transport{};
};

struct CannonResult {
  std::vector<double> c;  ///< n*n result, Fortran order
  net::NetStats net;
  double makespan = 0.0;
  std::size_t peakElemsPerProc = 0;  ///< max over procs of peak pool slots
};

CannonResult runCannon(const CannonConfig& cfg);

/// Sequential reference with the same deterministic inputs.
std::vector<double> cannonReference(const CannonConfig& cfg);

}  // namespace xdp::apps
