// Synthetic workload generators for the benchmark harness.
//
// The paper has no workload suite; these generators synthesize the inputs
// its claims are about: deterministic array contents (so optimized and
// unoptimized pipelines can be checked for identical results) and skewed
// task-cost profiles (for the section-2.6/2.7 load-balancing experiments).
#pragma once

#include <cstdint>
#include <vector>

#include "xdp/rt/proc.hpp"

namespace xdp::apps {

/// Deterministic value for element `pos` of array `sym` under `seed`
/// (uniform in [0,1)). Same on every processor, so owners can initialize
/// their parts independently and verification can recompute expectations.
double cellValue(std::uint64_t seed, int sym, std::int64_t pos);

/// Owner-side initialization: every processor writes cellValue into the
/// elements of `s` it owns (others are skipped). Call from a node program.
void fillOwned(rt::Proc& p, int sym, const sec::Section& s,
               std::uint64_t seed);

/// Skewed task costs: `n` tasks whose cost follows cost0 * skew^(rank of
/// task), normalized so the total is `n * cost0`. skew == 1 is uniform;
/// larger skews concentrate work in few tasks (Zipf-flavoured).
std::vector<double> skewedCosts(int n, double cost0, double skew,
                                std::uint64_t seed);

}  // namespace xdp::apps
