#include "xdp/apps/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "xdp/support/rng.hpp"

namespace xdp::apps {

double cellValue(std::uint64_t seed, int sym, std::int64_t pos) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(sym) << 32) ^
                static_cast<std::uint64_t>(pos) * 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

void fillOwned(rt::Proc& p, int sym, const sec::Section& s,
               std::uint64_t seed) {
  s.forEach([&](const sec::Point& pt) {
    std::vector<sec::Triplet> dims;
    for (int d = 0; d < pt.rank(); ++d) dims.emplace_back(pt[d]);
    sec::Section cell(dims);
    if (p.iown(sym, cell))
      p.set<double>(sym, pt, cellValue(seed, sym, s.fortranPos(pt)));
  });
}

std::vector<double> skewedCosts(int n, double cost0, double skew,
                                std::uint64_t seed) {
  std::vector<double> costs(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    costs[static_cast<std::size_t>(i)] =
        cost0 * std::pow(skew, static_cast<double>(i));
    total += costs[static_cast<std::size_t>(i)];
  }
  const double scale = (static_cast<double>(n) * cost0) / total;
  for (auto& c : costs) c *= scale;
  // Shuffle deterministically so heavy tasks are not all at one end.
  Rng rng(seed);
  for (int i = n - 1; i > 0; --i)
    std::swap(costs[static_cast<std::size_t>(i)],
              costs[rng.below(static_cast<std::uint64_t>(i + 1))]);
  return costs;
}

}  // namespace xdp::apps
