// Deterministic random number generation for tests, workload generators
// and benchmarks. We avoid std::mt19937 seeding subtleties by using a
// small, well-understood generator (splitmix64 feeding xoshiro256**),
// so every run of a test or bench sees the same stream on every platform.
#pragma once

#include <cstdint>

namespace xdp {

/// splitmix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace xdp
