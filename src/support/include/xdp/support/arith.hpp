// The single definition of IL integer arithmetic semantics.
//
// Every consumer of IL arithmetic — the tree-walking interpreter, the
// bytecode VM, and compile-time constant folding — must agree bit-for-bit,
// or the differential oracle (tree walk vs VM vs folded-then-run) reports
// false mismatches and real miscompiles hide behind them. The rules:
//
//   * Add / Sub / Mul / Neg wrap modulo 2^64 (two's complement). C++
//     signed overflow is UB, so these route through uint64_t; the result
//     is what the hardware produces and what both backends and the
//     folder reproduce identically.
//   * Div / Mod by zero raise UsageError (a program bug, reported — not
//     UB, not a crash). INT64_MIN / -1 and INT64_MIN % -1 overflow the
//     result (SIGFPE on x86) and raise the same UsageError.
//
// Const-fold must NEVER raise these at compile time: a trapping division
// may sit under a guard that is false at run time (or inside a zero-trip
// loop), and folding it would introduce a fault on a path the program
// never executes. It calls the tryFold* forms, which decline instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "xdp/support/check.hpp"

namespace xdp::arith {

inline std::int64_t wrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

inline std::int64_t wrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

inline std::int64_t wrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

inline std::int64_t wrapNeg(std::int64_t a) {
  return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
}

/// True iff a/b (and a%b) would trap: divisor zero, or the one overflowing
/// quotient INT64_MIN / -1.
inline bool divTraps(std::int64_t a, std::int64_t b) {
  return b == 0 || (a == INT64_MIN && b == -1);
}

[[noreturn]] inline void raiseDivTrap(std::int64_t a, std::int64_t b,
                                      const char* what) {
  if (b == 0)
    throw UsageError(std::string(what) + " by zero");
  throw UsageError(std::string(what) + " overflow: " + std::to_string(a) +
                   (what[0] == 'd' ? " / " : " % ") + std::to_string(b));
}

inline std::int64_t checkedDiv(std::int64_t a, std::int64_t b) {
  if (divTraps(a, b)) raiseDivTrap(a, b, "division");
  return a / b;
}

inline std::int64_t checkedMod(std::int64_t a, std::int64_t b) {
  if (divTraps(a, b)) raiseDivTrap(a, b, "modulo");
  return a % b;
}

/// Checked non-wrapping product for the static cost model's byte
/// accounting: element counts can approach 2^63 before the
/// segment-count × element-size multiplication, so the product goes
/// through __int128 and raises UsageError instead of silently wrapping on
/// adversarial extents (the same hardening as Triplet::intersect's
/// overflow fix). Operands must be non-negative.
inline std::int64_t checkedMulNonNeg(std::int64_t a, std::int64_t b,
                                     const char* what) {
  if (a < 0 || b < 0)
    throw UsageError(std::string(what) + " is negative (" +
                     std::to_string(a) + " * " + std::to_string(b) + ")");
  const __int128 p = static_cast<__int128>(a) * static_cast<__int128>(b);
  if (p > static_cast<__int128>(INT64_MAX))
    throw UsageError(std::string(what) + " overflows 64-bit accounting: " +
                     std::to_string(a) + " * " + std::to_string(b));
  return static_cast<std::int64_t>(p);
}

/// Checked non-wrapping sum, same contract as checkedMulNonNeg.
inline std::int64_t checkedAddNonNeg(std::int64_t a, std::int64_t b,
                                     const char* what) {
  if (a < 0 || b < 0)
    throw UsageError(std::string(what) + " is negative (" +
                     std::to_string(a) + " + " + std::to_string(b) + ")");
  const __int128 s = static_cast<__int128>(a) + static_cast<__int128>(b);
  if (s > static_cast<__int128>(INT64_MAX))
    throw UsageError(std::string(what) + " overflows 64-bit accounting: " +
                     std::to_string(a) + " + " + std::to_string(b));
  return static_cast<std::int64_t>(s);
}

/// Fold-time forms: return nullopt on would-trap inputs so the folder
/// leaves the expression for runtime (see header comment).
inline std::optional<std::int64_t> tryFoldDiv(std::int64_t a, std::int64_t b) {
  if (divTraps(a, b)) return std::nullopt;
  return a / b;
}

inline std::optional<std::int64_t> tryFoldMod(std::int64_t a, std::int64_t b) {
  if (divTraps(a, b)) return std::nullopt;
  return a % b;
}

}  // namespace xdp::arith
