// Diagnostics for the XDP runtime and compiler.
//
// The paper's semantics are deliberately unsafe: the runtime performs no
// automatic state checks, because the compiler is expected to have proven
// them unnecessary (XDP paper, section 2.1/2.5). We therefore split
// diagnostics into two tiers:
//
//   * XDP_CHECK   — precondition violations of the *implementation* API
//                   (bad rank, out-of-range index). Always on; throws.
//   * XDP_DEBUG_CHECK — violations of the *XDP usage rules* (reading a
//                   transitional section, mismatched send/receive names,
//                   receiving ownership of an owned section). Enabled per
//                   runtime instance via RuntimeOptions::debug_checks;
//                   this macro is the cheap always-compiled variant used
//                   in hot paths guarded by a bool.
#pragma once

#include <stdexcept>
#include <string>

namespace xdp {

/// Root of the XDP exception hierarchy. Every error the fabric, runtime
/// or compiler raises derives from this, so callers can catch one type.
class XdpError : public std::runtime_error {
 public:
  explicit XdpError(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Historical name for the base error (implementation-precondition
/// violations throw it directly).
using Error = XdpError;

/// Error thrown (in debug-checks mode) when a program violates the XDP
/// usage rules of Figure 1 — e.g. reading a transitional section.
class UsageError : public XdpError {
 public:
  explicit UsageError(std::string what) : XdpError(std::move(what)) {}
};

/// Error thrown out of blocked awaits / barrier waits when the runtime's
/// hang watchdog has diagnosed a deadlock: every processor is blocked and
/// no message in the fabric can complete any posted receive. Carries a
/// structured multi-line report (one line per fact: blocked processors,
/// pending receives, undelivered messages, section ownership states).
class DeadlockError : public XdpError {
 public:
  DeadlockError(const std::string& summary, std::string report)
      : XdpError(report.empty() ? summary : summary + "\n" + report),
        summary_(summary),
        report_(std::move(report)) {}

  /// One-line description ("XDP deadlock: 2 processors blocked ...").
  const std::string& summary() const { return summary_; }
  /// The full diagnostic dump (see xdp::rt::dumpDeadlock for the format).
  const std::string& report() const { return report_; }

 private:
  std::string summary_;
  std::string report_;
};

/// Error thrown by the fault injector when a simulated endpoint crash
/// fires (FaultPlan::crashPids): the endpoint's send aborts its node
/// program, as a died-mid-run processor would.
class FaultAbort : public XdpError {
 public:
  explicit FaultAbort(std::string what) : XdpError(std::move(what)) {}
};

/// Error thrown when a multi-tenant session exceeds one of its enforced
/// resource quotas (logical steps, resident bytes, fabric messages/bytes,
/// wall-time budget — see xdp::serve::Quotas). `resource()` names the
/// breached quota so reports can aggregate by kind.
class QuotaExceeded : public XdpError {
 public:
  QuotaExceeded(std::string resource, std::string what)
      : XdpError("quota exceeded [" + resource + "]: " + what),
        resource_(std::move(resource)) {}

  const std::string& resource() const { return resource_; }

 private:
  std::string resource_;
};

namespace detail {
[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
[[noreturn]] void usageFailed(const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace xdp

#define XDP_CHECK(expr, msg)                                          \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::xdp::detail::checkFailed(__FILE__, __LINE__, #expr, (msg));   \
    }                                                                 \
  } while (0)

#define XDP_USAGE_FAIL(msg) ::xdp::detail::usageFailed(__FILE__, __LINE__, (msg))
