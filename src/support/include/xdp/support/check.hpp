// Diagnostics for the XDP runtime and compiler.
//
// The paper's semantics are deliberately unsafe: the runtime performs no
// automatic state checks, because the compiler is expected to have proven
// them unnecessary (XDP paper, section 2.1/2.5). We therefore split
// diagnostics into two tiers:
//
//   * XDP_CHECK   — precondition violations of the *implementation* API
//                   (bad rank, out-of-range index). Always on; throws.
//   * XDP_DEBUG_CHECK — violations of the *XDP usage rules* (reading a
//                   transitional section, mismatched send/receive names,
//                   receiving ownership of an owned section). Enabled per
//                   runtime instance via RuntimeOptions::debug_checks;
//                   this macro is the cheap always-compiled variant used
//                   in hot paths guarded by a bool.
#pragma once

#include <stdexcept>
#include <string>

namespace xdp {

/// Error thrown on violated implementation preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Error thrown (in debug-checks mode) when a program violates the XDP
/// usage rules of Figure 1 — e.g. reading a transitional section.
class UsageError : public Error {
 public:
  explicit UsageError(std::string what) : Error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
[[noreturn]] void usageFailed(const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace xdp

#define XDP_CHECK(expr, msg)                                          \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::xdp::detail::checkFailed(__FILE__, __LINE__, #expr, (msg));   \
    }                                                                 \
  } while (0)

#define XDP_USAGE_FAIL(msg) ::xdp::detail::usageFailed(__FILE__, __LINE__, (msg))
