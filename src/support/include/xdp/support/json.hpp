// Minimal JSON string escaping shared by every hand-rolled JSON emitter
// (diagnostics, cost reports, bench counters). We emit JSON in several
// places but never parse it, so a full JSON library would be dead weight;
// correct string escaping is the one part that must not be improvised per
// call site.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace xdp::json {

/// `s` with JSON string escapes applied (no surrounding quotes).
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// `s` as a quoted JSON string literal.
inline std::string str(std::string_view s) {
  return "\"" + escape(s) + "\"";
}

}  // namespace xdp::json
