#include "xdp/support/check.hpp"

#include <sstream>

namespace xdp::detail {

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": XDP_CHECK(" << expr << ") failed: " << msg;
  throw Error(os.str());
}

void usageFailed(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": XDP usage rule violated: " << msg;
  throw UsageError(os.str());
}

}  // namespace xdp::detail
