// Bytecode compiler + register VM (see bytecode.hpp for the model).
//
// Everything here is semantics-mirroring: each hot op and each cold-path
// evaluator case corresponds to one case of the tree walker in
// interpreter.cpp, and must stay bit-identical to it — the differential
// tests (test_vm_differential, test_pipeline_fuzz) hold both backends to
// equal result digests and logical counters.
#include "xdp/interp/bytecode.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "xdp/ckpt/io.hpp"
#include "xdp/interp/cont.hpp"
#include "xdp/support/arith.hpp"
#include "xdp/support/check.hpp"

namespace xdp::interp::bc {
namespace {

namespace flat = il::flat;
using flat::ExprRef;
using flat::SecRef;
using flat::StmtRef;
using il::BinOp;
using il::ExprKind;
using il::SecExprKind;
using il::StmtKind;
using sec::Point;
using sec::Triplet;

/// Thrown (inside compute-rule evaluation only) when the rule references
/// the value of an unowned section — the rule then evaluates to false.
struct UnownedRef {};

enum class Tag : std::uint8_t { Undef, Int, Real, Bool };

/// A tagged register slot — the VM's Value. The tag set matches the tree
/// walker's std::variant<Index, double, bool> exactly (plus Undef for
/// never-assigned universal scalars).
struct Slot {
  Tag tag = Tag::Undef;
  union {
    Index i;
    double r;
    bool b;
  };
  Slot() : i(0) {}
  static Slot ofInt(Index v) {
    Slot s;
    s.tag = Tag::Int;
    s.i = v;
    return s;
  }
  static Slot ofReal(double v) {
    Slot s;
    s.tag = Tag::Real;
    s.r = v;
    return s;
  }
  static Slot ofBool(bool v) {
    Slot s;
    s.tag = Tag::Bool;
    s.b = v;
    return s;
  }
};

// --- Value coercions: byte-for-byte the tree walker's asInt/asReal/asBool.

Index asInt(const Slot& v) {
  if (v.tag == Tag::Int) return v.i;
  if (v.tag == Tag::Bool) return v.b ? 1 : 0;
  double d = v.r;
  if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
    XDP_USAGE_FAIL("index value out of range (non-finite or beyond int64): " +
                   std::to_string(d));
  }
  Index i = static_cast<Index>(std::llround(d));
  XDP_CHECK(static_cast<double>(i) == d, "non-integral value in index context");
  return i;
}

double asReal(const Slot& v) {
  if (v.tag == Tag::Real) return v.r;
  if (v.tag == Tag::Int) return static_cast<double>(v.i);
  return v.b ? 1.0 : 0.0;
}

bool asBool(const Slot& v) {
  if (v.tag == Tag::Bool) return v.b;
  if (v.tag == Tag::Int) return v.i != 0;
  return v.r != 0.0;
}

// =========================================================================
// Cold path: a flat-IL walking evaluator mirroring interpreter.cpp's Exec
// case-for-case, sharing the VM's register file as the scalar environment.
// It never range-splits guarded loops — the VM runs the naive logical
// schedule, which is the schedule the logical counters describe.
// =========================================================================

class FlatEval {
 public:
  FlatEval(const Module& m, rt::Proc& proc, InterpStats& stats,
           const InterpOptions& iopts,
           const std::map<std::string, KernelFn>& kernels, Slot* regs)
      : m_(m),
        fp_(m.fp),
        proc_(proc),
        stats_(stats),
        iopts_(iopts),
        kernels_(kernels),
        regs_(regs) {}

  void exec(StmtRef sr) {
    const flat::Stmt& s = fp_[sr];
    if (iopts_.stepHook) iopts_.stepHook(proc_);
    stats_.stmtsExecuted += 1;
    switch (s.kind) {
      case StmtKind::Block:
        for (std::uint32_t k = 0; k < s.kidsLen; ++k)
          exec(fp_.stmtKids[s.kidsOff + k]);
        return;
      case StmtKind::ScalarAssign:
        regs_[s.scalarId] = evalValue(s.value);
        return;
      case StmtKind::ElemAssign: {
        stats_.elemAssigns += 1;
        Section pt = evalSection(s.sym, s.lhs);
        XDP_CHECK(pt.count() == 1, "element assignment needs a single point");
        double v = asReal(evalValue(s.rhs));
        writeReal(s.sym, pt, v);
        return;
      }
      case StmtKind::For: {
        Index lb = asInt(evalValue(s.lb));
        Index ub = asInt(evalValue(s.ub));
        Index step = s.step.valid() ? asInt(evalValue(s.step)) : 1;
        XDP_CHECK(step > 0, "loop step must be positive");
        if (lb > ub) return;
        for (Index i = lb;;) {
          stats_.loopIterations += 1;
          regs_[s.scalarId] = Slot::ofInt(i);
          exec(s.body);
          if (static_cast<std::uint64_t>(ub) - static_cast<std::uint64_t>(i) <
              static_cast<std::uint64_t>(step))
            break;
          i += step;
        }
        return;
      }
      case StmtKind::Guarded: {
        stats_.rulesEvaluated += 1;
        if (!evalRule(s.rule)) return;
        stats_.rulesTrue += 1;
        exec(s.body);
        return;
      }
      case StmtKind::SendData: {
        Section e = evalSection(s.sym, s.lhs);
        if (e.empty()) return;
        proc_.send(s.sym, e, resolveDest(s));
        return;
      }
      case StmtKind::RecvData: {
        Section dst = evalSection(s.sym, s.lhs);
        Section name = evalSection(s.sym2, s.sec2);
        if (dst.empty() && name.empty()) return;
        proc_.recv(s.sym, dst, s.sym2, name);
        return;
      }
      case StmtKind::SendOwn: {
        Section e = evalSection(s.sym, s.lhs);
        if (e.empty()) return;
        proc_.sendOwnership(s.sym, e, s.withValue, resolveDest(s));
        return;
      }
      case StmtKind::RecvOwn: {
        Section u = evalSection(s.sym, s.lhs);
        if (u.empty()) return;
        proc_.recvOwnership(s.sym, u, s.withValue);
        return;
      }
      case StmtKind::Await: {
        Section s2 = evalSection(s.sym, s.lhs);
        if (s2.empty()) return;
        proc_.await(s.sym, s2);
        return;
      }
      case StmtKind::LocalCopy: {
        Section dst = evalSection(s.sym, s.lhs);
        Section src = evalSection(s.sym2, s.sec2);
        if (dst.empty() && src.empty()) return;
        XDP_CHECK(dst.count() == src.count(), "local copy size mismatch");
        const auto type = proc_.table().decl(s.sym).type;
        XDP_CHECK(type == proc_.table().decl(s.sym2).type,
                  "local copy type mismatch");
        std::vector<std::byte> buf(
            static_cast<std::size_t>(src.count()) * rt::elemSize(type));
        proc_.table().readElems(s.sym2, src, buf.data());
        proc_.table().writeElems(s.sym, dst, buf.data());
        return;
      }
      case StmtKind::Kernel: {
        stats_.kernelCalls += 1;
        const std::string& name = fp_.names[static_cast<std::size_t>(s.nameId)];
        auto it = kernels_.find(name);
        XDP_CHECK(it != kernels_.end(), "unregistered kernel: " + name);
        std::vector<std::pair<int, Section>> args;
        for (std::uint32_t k = 0; k < s.argsLen; ++k) {
          const flat::KernelArg& ka = fp_.kernelArgs[s.argsOff + k];
          args.emplace_back(ka.sym, evalSection(ka.sym, ka.section));
        }
        it->second(proc_, args);
        return;
      }
      case StmtKind::ComputeCost:
        proc_.compute(asReal(evalValue(s.value)));
        return;
    }
  }

  bool evalRule(ExprRef e) {
    ruleDepth_ += 1;
    bool result;
    try {
      result = asBool(evalValue(e));
    } catch (const UnownedRef&) {
      result = false;  // paper 2.4: unowned value reference => rule false
    }
    ruleDepth_ -= 1;
    return result;
  }

  Slot evalValue(ExprRef er) {
    XDP_CHECK(er.valid(), "evaluating null expression");
    const flat::Expr& e = fp_[er];
    switch (e.kind) {
      case ExprKind::IntConst:
        return Slot::ofInt(e.intVal);
      case ExprKind::RealConst:
        return Slot::ofReal(e.realVal);
      case ExprKind::ScalarRef: {
        const Slot& s = regs_[e.scalarId];
        if (s.tag == Tag::Undef) {
          XDP_USAGE_FAIL(
              "use of undefined universal scalar: " +
              fp_.scalarNames[static_cast<std::size_t>(e.scalarId)]);
        }
        return s;
      }
      case ExprKind::MyPid:
        return Slot::ofInt(static_cast<Index>(proc_.mypid()));
      case ExprKind::NProcs:
        return Slot::ofInt(static_cast<Index>(proc_.nprocs()));
      case ExprKind::Bin:
        return evalBin(e);
      case ExprKind::Neg: {
        Slot v = evalValue(e.lhs);
        if (v.tag == Tag::Int) return Slot::ofInt(arith::wrapNeg(v.i));
        return Slot::ofReal(-asReal(v));
      }
      case ExprKind::Not:
        return Slot::ofBool(!asBool(evalValue(e.lhs)));
      case ExprKind::Elem: {
        Section pt = evalSection(e.sym, e.section);
        XDP_CHECK(pt.count() == 1, "element reference needs a single point");
        if (ruleDepth_ > 0 && !proc_.iown(e.sym, pt)) throw UnownedRef{};
        return Slot::ofReal(readReal(e.sym, pt));
      }
      case ExprKind::Iown:
        return Slot::ofBool(proc_.iown(e.sym, evalSection(e.sym, e.section)));
      case ExprKind::Accessible:
        return Slot::ofBool(
            proc_.accessible(e.sym, evalSection(e.sym, e.section)));
      case ExprKind::Await:
        return Slot::ofBool(proc_.await(e.sym, evalSection(e.sym, e.section)));
      case ExprKind::MyLb:
        return Slot::ofInt(
            proc_.mylb(e.sym, evalSection(e.sym, e.section), e.dim));
      case ExprKind::MyUb:
        return Slot::ofInt(
            proc_.myub(e.sym, evalSection(e.sym, e.section), e.dim));
      case ExprKind::SecNonEmpty:
        return Slot::ofBool(!evalSection(e.sym, e.section).empty());
    }
    XDP_CHECK(false, "unreachable expression kind");
    return Slot::ofInt(0);
  }

 private:
  Slot evalBin(const flat::Expr& e) {
    // Short-circuit logicals first.
    if (e.op == BinOp::And) {
      if (!asBool(evalValue(e.lhs))) return Slot::ofBool(false);
      return Slot::ofBool(asBool(evalValue(e.rhs)));
    }
    if (e.op == BinOp::Or) {
      if (asBool(evalValue(e.lhs))) return Slot::ofBool(true);
      return Slot::ofBool(asBool(evalValue(e.rhs)));
    }
    Slot a = evalValue(e.lhs);
    Slot b = evalValue(e.rhs);
    const bool bothInt = a.tag == Tag::Int && b.tag == Tag::Int;
    switch (e.op) {
      case BinOp::Add:
        return bothInt ? Slot::ofInt(arith::wrapAdd(a.i, b.i))
                       : Slot::ofReal(asReal(a) + asReal(b));
      case BinOp::Sub:
        return bothInt ? Slot::ofInt(arith::wrapSub(a.i, b.i))
                       : Slot::ofReal(asReal(a) - asReal(b));
      case BinOp::Mul:
        return bothInt ? Slot::ofInt(arith::wrapMul(a.i, b.i))
                       : Slot::ofReal(asReal(a) * asReal(b));
      case BinOp::Div:
        if (bothInt) return Slot::ofInt(arith::checkedDiv(a.i, b.i));
        return Slot::ofReal(asReal(a) / asReal(b));
      case BinOp::Mod:
        XDP_CHECK(bothInt, "mod requires integer operands");
        return Slot::ofInt(arith::checkedMod(a.i, b.i));
      case BinOp::Lt:
        return Slot::ofBool(asReal(a) < asReal(b));
      case BinOp::Le:
        return Slot::ofBool(asReal(a) <= asReal(b));
      case BinOp::Gt:
        return Slot::ofBool(asReal(a) > asReal(b));
      case BinOp::Ge:
        return Slot::ofBool(asReal(a) >= asReal(b));
      case BinOp::Eq:
        return Slot::ofBool(asReal(a) == asReal(b));
      case BinOp::Ne:
        return Slot::ofBool(asReal(a) != asReal(b));
      case BinOp::Min:
        return bothInt ? Slot::ofInt(std::min(a.i, b.i))
                       : Slot::ofReal(std::min(asReal(a), asReal(b)));
      case BinOp::Max:
        return bothInt ? Slot::ofInt(std::max(a.i, b.i))
                       : Slot::ofReal(std::max(asReal(a), asReal(b)));
      case BinOp::And:
      case BinOp::Or:
        break;  // handled above
    }
    XDP_CHECK(false, "unreachable binop");
    return Slot::ofInt(0);
  }

  Section emptyOfRank(int rank) {
    std::vector<Triplet> dims;
    dims.emplace_back();
    for (int d = 1; d < rank; ++d) dims.emplace_back(0, 0);
    return rank == 0 ? Section{Triplet()} : Section(dims);
  }

  Section evalSection(int sym, SecRef sr) {
    XDP_CHECK(sr.valid(), "evaluating null section expression");
    const flat::Sec& se = fp_[sr];
    switch (se.kind) {
      case SecExprKind::Literal: {
        std::vector<Triplet> dims;
        for (std::uint32_t k = 0; k < se.dimsLen; ++k) {
          const flat::TripletRef& t = fp_.triplets[se.dimsOff + k];
          Index lb = asInt(evalValue(t.lb));
          Index ub = t.ub.valid() ? asInt(evalValue(t.ub)) : lb;
          Index stride = t.stride.valid() ? asInt(evalValue(t.stride)) : 1;
          dims.emplace_back(lb, ub, stride);
        }
        return Section(dims);
      }
      case SecExprKind::LocalPart:
        return partOf(se.sym >= 0 ? se.sym : sym, proc_.mypid(), se.dist);
      case SecExprKind::OwnerPart:
        return partOf(se.sym >= 0 ? se.sym : sym,
                      static_cast<int>(asInt(evalValue(se.pid))), se.dist);
      case SecExprKind::Intersect: {
        Section a = evalSection(sym, se.a);
        Section b = evalSection(sym, se.b);
        if (a.empty() || b.empty() || a.rank() != b.rank())
          return emptyOfRank(a.rank());
        return Section::intersect(a, b);
      }
    }
    XDP_CHECK(false, "unreachable section expression kind");
    return Section{};
  }

  Section partOf(int sym, int pid, std::int32_t distId) {
    const dist::Distribution& d =
        distId >= 0 ? fp_.dists[static_cast<std::size_t>(distId)]
                    : proc_.table().decl(sym).dist;
    sec::RegionList part = d.localPart(pid);
    if (part.empty()) return emptyOfRank(d.rank());
    XDP_CHECK(part.sections().size() == 1,
              "partition is not a single section (CYCLIC(k) local parts "
              "cannot be named by one section expression)");
    return part.sections()[0];
  }

  /// The one point of a single-point section, without materializing the
  /// point list.
  static Point onlyPointOf(const Section& pt) {
    std::array<sec::Index, sec::kMaxRank> idx{};
    for (int d = 0; d < pt.rank(); ++d)
      idx[static_cast<std::size_t>(d)] = pt.dim(d).lb();
    return Point(pt.rank(), idx);
  }

  double readReal(int sym, const Section& pt) {
    const auto type = proc_.table().decl(sym).type;
    if (type == rt::ElemType::F64) {
      double v = 0.0;
      if (proc_.table().tryReadElemAt(sym, onlyPointOf(pt),
                                      reinterpret_cast<std::byte*>(&v)))
        return v;
      return proc_.read<double>(sym, pt)[0];
    }
    if (type == rt::ElemType::I64) {
      std::int64_t v = 0;
      if (proc_.table().tryReadElemAt(sym, onlyPointOf(pt),
                                      reinterpret_cast<std::byte*>(&v)))
        return static_cast<double>(v);
      return static_cast<double>(proc_.read<std::int64_t>(sym, pt)[0]);
    }
    XDP_CHECK(false, "IL element access supports f64/i64 (use kernels for "
                     "complex data)");
    return 0.0;
  }

  void writeReal(int sym, const Section& pt, double v) {
    const auto type = proc_.table().decl(sym).type;
    if (type == rt::ElemType::F64) {
      if (proc_.table().tryWriteElemAt(
              sym, onlyPointOf(pt), reinterpret_cast<const std::byte*>(&v)))
        return;
      proc_.set<double>(sym, pt.points()[0], v);
      return;
    }
    if (type == rt::ElemType::I64) {
      const std::int64_t w = static_cast<std::int64_t>(std::llround(v));
      if (proc_.table().tryWriteElemAt(
              sym, onlyPointOf(pt), reinterpret_cast<const std::byte*>(&w)))
        return;
      proc_.set<std::int64_t>(sym, pt.points()[0], w);
      return;
    }
    XDP_CHECK(false, "IL element access supports f64/i64");
  }

  std::optional<std::vector<int>> resolveDest(const flat::Stmt& s) {
    switch (s.destKind) {
      case flat::DestKind::None:
        return std::nullopt;
      case flat::DestKind::Pids: {
        std::vector<int> pids;
        for (std::uint32_t k = 0; k < s.destPidsLen; ++k)
          pids.push_back(static_cast<int>(
              asInt(evalValue(fp_.exprKids[s.destPidsOff + k]))));
        return pids;
      }
      case flat::DestKind::OwnerOf: {
        Section sect = evalSection(s.destSym, s.destSection);
        XDP_CHECK(!sect.empty(), "owner-of an empty section");
        const dist::Distribution& dd =
            s.destDist >= 0 ? fp_.dists[static_cast<std::size_t>(s.destDist)]
                            : proc_.table().decl(s.destSym).dist;
        int owner = -1;
        bool unique = true;
        sect.forEach([&](const Point& p) {
          int o = dd.ownerOf(p);
          if (owner < 0) owner = o;
          else if (o != owner) unique = false;
        });
        XDP_CHECK(unique, "bound destination section spans processors");
        return std::vector<int>{owner};
      }
    }
    return std::nullopt;
  }

  const Module& m_;
  const flat::FlatProgram& fp_;
  rt::Proc& proc_;
  InterpStats& stats_;
  const InterpOptions& iopts_;
  const std::map<std::string, KernelFn>& kernels_;
  Slot* regs_;
  int ruleDepth_ = 0;
};

// =========================================================================
// Compiler
// =========================================================================

class Compiler {
 public:
  explicit Compiler(flat::FlatProgram fp) {
    m_.fp = std::move(fp);
    for (const auto& a : m_.fp.arrays) m_.elemTypes.push_back(a.type);
    tempTop_ = static_cast<std::uint32_t>(m_.fp.numScalars());
    maxReg_ = tempTop_;
  }

  Module take() {
    internConsts();
    if (m_.fp.body.valid()) compileStmt(m_.fp.body);
    emit({Op::Halt, 0, 0, 0, 0, 0});
    m_.numRegs = static_cast<std::uint16_t>(maxReg_);
    return std::move(m_);
  }

 private:
  const flat::FlatProgram& fp() const { return m_.fp; }

  std::int32_t emit(Insn in) {
    m_.code.push_back(in);
    return static_cast<std::int32_t>(m_.code.size() - 1);
  }

  std::uint16_t allocTemp() {
    XDP_CHECK(tempTop_ < 0xFFFF, "bytecode register file exhausted");
    const auto r = static_cast<std::uint16_t>(tempTop_++);
    maxReg_ = std::max(maxReg_, tempTop_);
    return r;
  }

  // --- constant hoisting -------------------------------------------------
  //
  // Every distinct literal in the program gets one persistent register,
  // materialized once in a prologue before the body. Inside loops this
  // removes the per-iteration ConstI/ConstR dispatches entirely (constants
  // are immutable and no op ever writes through a source register).
  // Persistent registers sit between the scalars and the per-statement
  // temporaries; compileStmt's tempTop_ reset never drops below them
  // because the prologue is emitted before any statement is compiled.

  std::uint16_t internInt(Index v) {
    auto it = cintReg_.find(v);
    if (it != cintReg_.end()) return it->second;
    const auto r = allocTemp();
    emit({Op::ConstI, 0, r, 0, 0, ipool(v)});
    cintReg_.emplace(v, r);
    intConstRegs_.insert(r);
    return r;
  }

  std::uint16_t internReal(double v) {
    const auto key = std::bit_cast<std::uint64_t>(v);
    auto it = crealReg_.find(key);
    if (it != crealReg_.end()) return it->second;
    const auto r = allocTemp();
    emit({Op::ConstR, 0, r, 0, 0, rpool(v)});
    crealReg_.emplace(key, r);
    return r;
  }

  void internConsts() {
    for (const flat::Expr& e : m_.fp.exprs) {
      if (e.kind == ExprKind::IntConst) internInt(e.intVal);
      else if (e.kind == ExprKind::RealConst) internReal(e.realVal);
    }
    // Implicit step of step-less For loops.
    for (const flat::Stmt& s : m_.fp.stmts)
      if (s.kind == StmtKind::For && !s.step.valid()) internInt(1);
  }

  std::int32_t ipool(Index v) {
    auto [it, fresh] =
        ipoolIdx_.emplace(v, static_cast<std::int32_t>(m_.ipool.size()));
    if (fresh) m_.ipool.push_back(v);
    return it->second;
  }

  std::int32_t rpool(double v) {
    auto [it, fresh] = rpoolIdx_.emplace(
        std::bit_cast<std::uint64_t>(v),
        static_cast<std::int32_t>(m_.rpool.size()));
    if (fresh) m_.rpool.push_back(v);
    return it->second;
  }

  // --- compilability -----------------------------------------------------

  bool elemTypeOk(int sym) const {
    return sym >= 0 && sym < static_cast<int>(m_.elemTypes.size()) &&
           (m_.elemTypes[static_cast<std::size_t>(sym)] == rt::ElemType::F64 ||
            m_.elemTypes[static_cast<std::size_t>(sym)] == rt::ElemType::I64);
  }

  /// Expression compilable to register ops. `allowElem` is false inside
  /// compute rules, where an element read must go through the cold
  /// evaluator's UnownedRef protocol (paper 2.4).
  bool hotExpr(ExprRef er, bool allowElem) const {
    if (!er.valid()) return false;
    const flat::Expr& e = fp()[er];
    switch (e.kind) {
      case ExprKind::IntConst:
      case ExprKind::RealConst:
      case ExprKind::ScalarRef:
      case ExprKind::MyPid:
      case ExprKind::NProcs:
        return true;
      case ExprKind::Bin:
        return hotExpr(e.lhs, allowElem) && hotExpr(e.rhs, allowElem);
      case ExprKind::Neg:
      case ExprKind::Not:
        return hotExpr(e.lhs, allowElem);
      case ExprKind::Elem:
        return allowElem && elemTypeOk(e.sym) && hotPoint(e.section);
      default:
        return false;
    }
  }

  /// Literal single-point section with compilable subscripts.
  bool hotPoint(SecRef sr) const {
    if (!sr.valid()) return false;
    const flat::Sec& s = fp()[sr];
    if (s.kind != SecExprKind::Literal || s.dimsLen == 0 ||
        s.dimsLen > static_cast<std::uint32_t>(sec::kMaxRank))
      return false;
    for (std::uint32_t k = 0; k < s.dimsLen; ++k) {
      const flat::TripletRef& t = fp().triplets[s.dimsOff + k];
      if (t.ub.valid() || t.stride.valid()) return false;  // points only
      if (!hotExpr(t.lb, /*allowElem=*/true)) return false;
    }
    return true;
  }

  // --- expression compilation -------------------------------------------

  std::uint16_t compileExpr(ExprRef er) {
    const flat::Expr& e = fp()[er];
    switch (e.kind) {
      case ExprKind::IntConst:
        // Interned in the prologue; no instruction at the use site.
        return cintReg_.at(e.intVal);
      case ExprKind::RealConst:
        return crealReg_.at(std::bit_cast<std::uint64_t>(e.realVal));
      case ExprKind::ScalarRef:
        // Scalars live in their register; consumers check Undef.
        return static_cast<std::uint16_t>(e.scalarId);
      case ExprKind::MyPid: {
        const auto t = allocTemp();
        emit({Op::MyPid, 0, t, 0, 0, 0});
        return t;
      }
      case ExprKind::NProcs: {
        const auto t = allocTemp();
        emit({Op::NProcs, 0, t, 0, 0, 0});
        return t;
      }
      case ExprKind::Neg: {
        const auto v = compileExpr(e.lhs);
        const auto t = allocTemp();
        emit({Op::Neg, 0, t, v, 0, 0});
        return t;
      }
      case ExprKind::Not: {
        const auto v = compileExpr(e.lhs);
        const auto t = allocTemp();
        emit({Op::Not, 0, t, v, 0, 0});
        return t;
      }
      case ExprKind::Elem: {
        if (auto aff = affine1(e.section)) {
          const auto t = allocTemp();
          emit({Op::LoadElem1, 1, t, aff->first, aff->second, e.sym});
          return t;
        }
        const auto base = compileSubscripts(e.section);
        const auto rank = static_cast<std::uint8_t>(fp()[e.section].dimsLen);
        const auto t = allocTemp();
        emit({Op::LoadElem, rank, t, base, 0, e.sym});
        return t;
      }
      case ExprKind::Bin:
        return compileBin(e);
      default:
        XDP_CHECK(false, "compileExpr on non-hot expression");
        return 0;
    }
  }

  std::uint16_t compileBin(const flat::Expr& e) {
    // Short-circuit logicals become branches, mirroring the tree walker's
    // evaluate-lhs-first, skip-rhs semantics.
    if (e.op == BinOp::And || e.op == BinOp::Or) {
      const auto dst = allocTemp();
      const auto l = compileExpr(e.lhs);
      emit({Op::ToBool, 0, dst, l, 0, 0});
      if (e.op == BinOp::And) {
        const auto j = emit({Op::JmpIfFalse, 0, dst, 0, 0, 0});
        const auto r = compileExpr(e.rhs);
        emit({Op::ToBool, 0, dst, r, 0, 0});
        m_.code[static_cast<std::size_t>(j)].d =
            static_cast<std::int32_t>(m_.code.size());
      } else {
        const auto jr = emit({Op::JmpIfFalse, 0, dst, 0, 0, 0});
        const auto jend = emit({Op::Jmp, 0, 0, 0, 0, 0});
        m_.code[static_cast<std::size_t>(jr)].d =
            static_cast<std::int32_t>(m_.code.size());
        const auto r = compileExpr(e.rhs);
        emit({Op::ToBool, 0, dst, r, 0, 0});
        m_.code[static_cast<std::size_t>(jend)].d =
            static_cast<std::int32_t>(m_.code.size());
      }
      return dst;
    }
    const auto l = compileExpr(e.lhs);
    const auto r = compileExpr(e.rhs);
    const auto dst = allocTemp();
    Op op;
    switch (e.op) {
      case BinOp::Add: op = Op::Add; break;
      case BinOp::Sub: op = Op::Sub; break;
      case BinOp::Mul: op = Op::Mul; break;
      case BinOp::Div: op = Op::Div; break;
      case BinOp::Mod: op = Op::Mod; break;
      case BinOp::Lt: op = Op::Lt; break;
      case BinOp::Le: op = Op::Le; break;
      case BinOp::Gt: op = Op::Gt; break;
      case BinOp::Ge: op = Op::Ge; break;
      case BinOp::Eq: op = Op::Eq; break;
      case BinOp::Ne: op = Op::Ne; break;
      case BinOp::Min: op = Op::Min; break;
      case BinOp::Max: op = Op::Max; break;
      default:
        XDP_CHECK(false, "unreachable binop in compileBin");
        op = Op::Add;
    }
    emit({op, 0, dst, l, r, 0});
    return dst;
  }

  /// Rank-1 affine subscript pattern `A[s]`, `A[s±c]`, `A[c±?]`: the
  /// index is one register plus a compile-time offset. Returns the
  /// (register, offset-pool-index) pair, or nullopt when the section
  /// doesn't match or the offset pool index overflows the c field.
  /// wrapSub(i,c) == wrapAdd(i,wrapNeg(c)) in two's complement, so Sub
  /// folds into a negative offset.
  std::optional<std::pair<std::uint16_t, std::uint16_t>> affine1(SecRef sr) {
    const flat::Sec& s = fp()[sr];
    if (s.dimsLen != 1) return std::nullopt;
    const flat::Expr& e = fp()[fp().triplets[s.dimsOff].lb];
    std::uint16_t reg;
    Index off = 0;
    if (e.kind == ExprKind::ScalarRef) {
      reg = static_cast<std::uint16_t>(e.scalarId);
    } else if (e.kind == ExprKind::IntConst) {
      reg = cintReg_.at(e.intVal);
    } else if (e.kind == ExprKind::Bin &&
               (e.op == BinOp::Add || e.op == BinOp::Sub)) {
      const flat::Expr& l = fp()[e.lhs];
      const flat::Expr& r = fp()[e.rhs];
      if (l.kind == ExprKind::ScalarRef && r.kind == ExprKind::IntConst) {
        reg = static_cast<std::uint16_t>(l.scalarId);
        off = e.op == BinOp::Add ? r.intVal : arith::wrapNeg(r.intVal);
      } else if (e.op == BinOp::Add && l.kind == ExprKind::IntConst &&
                 r.kind == ExprKind::ScalarRef) {
        reg = static_cast<std::uint16_t>(r.scalarId);
        off = l.intVal;
      } else {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    const std::int32_t pi = ipool(off);
    if (pi > 0xFFFF) return std::nullopt;
    return std::make_pair(reg, static_cast<std::uint16_t>(pi));
  }

  /// Evaluate a hot point section's subscripts into consecutive int temps;
  /// returns the base register.
  std::uint16_t compileSubscripts(SecRef sr) {
    const flat::Sec& s = fp()[sr];
    // Reserve the destination block first so nested element reads in the
    // subscripts don't interleave their temps into it.
    const auto base = static_cast<std::uint16_t>(tempTop_);
    for (std::uint32_t k = 0; k < s.dimsLen; ++k) allocTemp();
    for (std::uint32_t k = 0; k < s.dimsLen; ++k) {
      const auto v = compileExpr(fp().triplets[s.dimsOff + k].lb);
      emit({Op::ToIndex, 0, static_cast<std::uint16_t>(base + k), v, 0, 0});
    }
    return base;
  }

  // --- statement compilation --------------------------------------------

  void cold(StmtRef sr) {
    emit({Op::ExecFlat, 0, 0, 0, 0, static_cast<std::int32_t>(sr.id)});
    m_.coldStmts += 1;
  }

  void compileStmt(StmtRef sr) {
    const flat::Stmt& s = fp()[sr];
    const std::uint32_t mark = tempTop_;
    switch (s.kind) {
      case StmtKind::Block:
        emit({Op::Step, 0, 0, 0, 0, 0});
        m_.hotStmts += 1;
        for (std::uint32_t k = 0; k < s.kidsLen; ++k)
          compileStmt(fp().stmtKids[s.kidsOff + k]);
        break;
      case StmtKind::ScalarAssign: {
        if (!hotExpr(s.value, /*allowElem=*/true)) {
          cold(sr);
          break;
        }
        emit({Op::Step, 0, 0, 0, 0, 0});
        m_.hotStmts += 1;
        const auto v = compileExpr(s.value);
        emit({Op::Mov, 0, static_cast<std::uint16_t>(s.scalarId), v, 0, 0});
        break;
      }
      case StmtKind::ElemAssign: {
        if (!(elemTypeOk(s.sym) && hotPoint(s.lhs) &&
              hotExpr(s.rhs, /*allowElem=*/true))) {
          cold(sr);
          break;
        }
        emit({Op::StepElem, 0, 0, 0, 0, 0});
        m_.hotStmts += 1;
        // Same order as the tree walker: target point, then value. The
        // affine shortcut still computes the index first (IdxAff) so
        // subscript errors precede value errors exactly as in the walker.
        if (auto aff = affine1(s.lhs)) {
          const auto ix = allocTemp();
          emit({Op::IdxAff, 0, ix, aff->first, aff->second, 0});
          const auto v = compileExpr(s.rhs);
          emit({Op::StoreElem, 1, v, ix, 0, s.sym});
          break;
        }
        const auto base = compileSubscripts(s.lhs);
        const auto rank = static_cast<std::uint8_t>(fp()[s.lhs].dimsLen);
        const auto v = compileExpr(s.rhs);
        emit({Op::StoreElem, rank, v, base, 0, s.sym});
        break;
      }
      case StmtKind::For: {
        // For loops always compile hot: bounds the expression compiler
        // cannot handle are evaluated by one cold EvalFlat each (walker
        // semantics, may block) feeding the hot loop skeleton. This keeps
        // every ExecFlat a restartable leaf statement — no cold
        // instruction ever wraps a compound body — which checkpoint
        // capture relies on (DESIGN.md §11).
        emit({Op::Step, 0, 0, 0, 0, 0});
        m_.hotStmts += 1;
        auto boundReg = [&](ExprRef e) -> std::uint16_t {
          if (hotExpr(e, /*allowElem=*/true))
            return toIndexTemp(compileExpr(e));
          const auto t = allocTemp();
          emit({Op::EvalFlat, 0, t, 0, 0, static_cast<std::int32_t>(e.id)});
          emit({Op::ToIndex, 0, t, t, 0, 0});
          return t;
        };
        const auto lbR = boundReg(s.lb);
        const auto ubR = boundReg(s.ub);
        const std::uint16_t stR =
            s.step.valid() ? boundReg(s.step) : cintReg_.at(1);
        emit({Op::CheckStep, 0, stR, 0, 0, 0});
        // The loop counter is a dedicated temp (the tree walker's local
        // `i`): a body assignment to the loop scalar must not change the
        // trip sequence.
        const auto iR = allocTemp();
        const auto enter = emit({Op::ForEnter, 0, iR, lbR, ubR, 0});
        const auto head = static_cast<std::int32_t>(m_.code.size());
        emit({Op::ForIter, 0, static_cast<std::uint16_t>(s.scalarId), iR, 0,
              0});
        compileStmt(s.body);
        emit({Op::ForNext, 0, iR, ubR, stR, head});
        m_.code[static_cast<std::size_t>(enter)].d =
            static_cast<std::int32_t>(m_.code.size());
        // Pure-loop flag (ForEnter.rank = 1): the body runs only register
        // ops and point element accesses — no modeled cost, no cold
        // callbacks — so the VM may hold one table lease across all
        // iterations (see rt::ProcTable::ElemLease).
        bool pure = true;
        for (std::size_t k = static_cast<std::size_t>(head);
             k + 1 < m_.code.size() && pure; ++k) {
          switch (m_.code[k].op) {
            case Op::Cost:
            case Op::EvalFlat:
            case Op::EvalRule:
            case Op::ExecFlat:
            case Op::Halt:
              pure = false;
              break;
            default:
              break;
          }
        }
        if (pure) m_.code[static_cast<std::size_t>(enter)].rank = 1;
        break;
      }
      case StmtKind::Guarded: {
        emit({Op::StepRule, 0, 0, 0, 0, 0});
        m_.hotStmts += 1;
        std::uint16_t r;
        if (hotExpr(s.rule, /*allowElem=*/false)) {
          r = compileExpr(s.rule);
        } else {
          r = allocTemp();
          emit({Op::EvalRule, 0, r, 0, 0,
                static_cast<std::int32_t>(s.rule.id)});
        }
        const auto j = emit({Op::JmpIfFalse, 0, r, 0, 0, 0});
        emit({Op::CountRuleTrue, 0, 0, 0, 0, 0});
        compileStmt(s.body);
        m_.code[static_cast<std::size_t>(j)].d =
            static_cast<std::int32_t>(m_.code.size());
        break;
      }
      case StmtKind::ComputeCost: {
        if (!hotExpr(s.value, /*allowElem=*/true)) {
          cold(sr);
          break;
        }
        emit({Op::Step, 0, 0, 0, 0, 0});
        m_.hotStmts += 1;
        const auto v = compileExpr(s.value);
        emit({Op::Cost, 0, v, 0, 0, 0});
        break;
      }
      default:
        cold(sr);
        break;
    }
    tempTop_ = mark;
  }

  std::uint16_t toIndexTemp(std::uint16_t src) {
    // A hoisted int constant is already a validated Int slot: ToIndex on
    // it would be an identity copy.
    if (intConstRegs_.count(src)) return src;
    const auto t = allocTemp();
    emit({Op::ToIndex, 0, t, src, 0, 0});
    return t;
  }

  Module m_;
  std::uint32_t tempTop_ = 0;
  std::uint32_t maxReg_ = 0;
  std::unordered_map<Index, std::int32_t> ipoolIdx_;
  std::unordered_map<std::uint64_t, std::int32_t> rpoolIdx_;
  std::unordered_map<Index, std::uint16_t> cintReg_;
  std::unordered_map<std::uint64_t, std::uint16_t> crealReg_;
  std::unordered_set<std::uint16_t> intConstRegs_;
};

[[noreturn]] void undefinedReg(const Module& m, std::uint16_t r) {
  if (r < m.fp.scalarNames.size()) {
    XDP_USAGE_FAIL("use of undefined universal scalar: " +
                   m.fp.scalarNames[r]);
  }
  XDP_CHECK(false, "VM read of undefined temporary register");
  std::abort();  // unreachable
}

}  // namespace

Module compile(flat::FlatProgram fp) { return Compiler(std::move(fp)).take(); }

void execute(const Module& m, rt::Proc& proc, InterpStats& stats,
             const InterpOptions& iopts,
             const std::map<std::string, KernelFn>& kernels,
             ckpt::Controller* ctrl) {
  std::vector<Slot> regs(m.numRegs);
  FlatEval fe(m, proc, stats, iopts, kernels, regs.data());
  const Insn* code = m.code.data();
  const Index* ipool = m.ipool.data();
  const double* rpool = m.rpool.data();
  const int pid = proc.mypid();

  // Operand read with the undefined-scalar check (temps are always
  // written before read by construction; only scalar registers can be
  // Undef here).
  auto val = [&](std::uint16_t r) -> const Slot& {
    const Slot& s = regs[r];
    if (s.tag == Tag::Undef) undefinedReg(m, r);
    return s;
  };

  // Pure-loop element lease (see ProcTable::ElemLease): taken at the
  // outermost pure ForEnter, dropped when that loop exits or on the
  // first access the lease cannot serve. A step hook may run arbitrary
  // code per statement, so leasing is disabled under one.
  std::optional<rt::ProcTable::ElemLease> lease;
  std::int32_t leaseOwner = -1;
  const bool canLease = !iopts.stepHook;
  auto dropLease = [&] {
    lease.reset();
    leaseOwner = -1;
  };

  // Three-tier element access shared by LoadElem/LoadElem1/StoreElem:
  // held lease → per-point locked fast path → generic Section path.
  auto loadAt = [&](int rank, const std::array<sec::Index, sec::kMaxRank>& idx,
                    std::int32_t sym) -> Slot {
    const Point p(rank, idx);
    const auto type = m.elemTypes[static_cast<std::size_t>(sym)];
    // Zero-initialized like the tree walker's vector-backed read: with
    // debug checks off, an unowned element reads as 0 on both engines
    // (readElems fills only the covered subsection).
    std::int64_t vi = 0;
    double vr = 0.0;
    std::byte* bytes = type == rt::ElemType::F64
                           ? reinterpret_cast<std::byte*>(&vr)
                           : reinterpret_cast<std::byte*>(&vi);
    bool done = false;
    if (lease) {
      done = lease->tryRead(static_cast<int>(sym), p, bytes);
      // A leased loop that touches an unowned or transitional point
      // needs the generic semantics; drop to the per-element path
      // (same mutex — must release before the fallback).
      if (!done) dropLease();
    }
    if (!done) done = proc.table().tryReadElemAt(static_cast<int>(sym), p, bytes);
    if (!done) {
      std::array<Triplet, sec::kMaxRank> dims{};
      for (int k = 0; k < rank; ++k)
        dims[static_cast<std::size_t>(k)] =
            Triplet(idx[static_cast<std::size_t>(k)]);
      proc.table().readElems(static_cast<int>(sym), Section(rank, dims),
                             bytes);
    }
    return type == rt::ElemType::F64 ? Slot::ofReal(vr)
                                     : Slot::ofReal(static_cast<double>(vi));
  };
  auto storeAt = [&](int rank,
                     const std::array<sec::Index, sec::kMaxRank>& idx,
                     std::int32_t sym, double v) {
    const Point p(rank, idx);
    const auto type = m.elemTypes[static_cast<std::size_t>(sym)];
    const std::int64_t w =
        type == rt::ElemType::F64 ? 0
                                  : static_cast<std::int64_t>(std::llround(v));
    const std::byte* bytes = type == rt::ElemType::F64
                                 ? reinterpret_cast<const std::byte*>(&v)
                                 : reinterpret_cast<const std::byte*>(&w);
    bool done = false;
    if (lease) {
      done = lease->tryWrite(static_cast<int>(sym), p, bytes);
      if (!done) dropLease();
    }
    if (!done)
      done = proc.table().tryWriteElemAt(static_cast<int>(sym), p, bytes);
    if (!done) {
      std::array<Triplet, sec::kMaxRank> dims{};
      for (int k = 0; k < rank; ++k)
        dims[static_cast<std::size_t>(k)] =
            Triplet(idx[static_cast<std::size_t>(k)]);
      proc.table().writeElems(static_cast<int>(sym), Section(rank, dims),
                              bytes);
    }
  };

  // --- checkpoint continuations (DESIGN.md §11) --------------------------
  // Between any two instructions the VM's whole control state is
  // (pc, register file), so a continuation is exact: resuming re-executes
  // from the captured pc against the restored tables/fabric. Boundaries
  // are observed at statement tops (Step/StepElem/StepRule/ExecFlat), and
  // a restart point is published before every instruction that can block
  // (the cold calls into the flat walker). The lease is dropped before
  // parking so a capture never waits on a held table lock.
  std::size_t pc = 0;
  auto makeImage = [&](bool unsafe) {
    ckpt::ContImage img;
    img.engine = static_cast<std::uint8_t>(ckpt::ContEngine::Vm);
    img.unsafe = unsafe;
    img.stats = statsToArray(stats);
    ckpt::Writer w;
    w.u32(static_cast<std::uint32_t>(pc));
    w.u32(m.numRegs);
    for (const Slot& s : regs) {
      w.u8(static_cast<std::uint8_t>(s.tag));
      std::uint64_t bits = 0;
      if (s.tag == Tag::Int) bits = static_cast<std::uint64_t>(s.i);
      else if (s.tag == Tag::Real) bits = std::bit_cast<std::uint64_t>(s.r);
      else if (s.tag == Tag::Bool) bits = s.b ? 1 : 0;
      w.u64(bits);
    }
    img.payload = w.take();
    return img;
  };
  auto boundary = [&] {
    if (ctrl->signal() != 0) {
      dropLease();
      ctrl->deliverSignal(pid, makeImage(false));
    }
    if (stats.stmtsExecuted >= ctrl->nextParkAt(pid)) {
      dropLease();
      ctrl->parkAtBoundary(pid, makeImage(false));
    }
  };
  if (ctrl != nullptr && ctrl->hasResume(pid)) {
    ckpt::ContImage img = ctrl->takeResume(pid);
    if (img.finished) return;
    stats = statsFromArray(img.stats);
    if (img.engine == static_cast<std::uint8_t>(ckpt::ContEngine::Vm)) {
      ckpt::Reader r(img.payload);
      const std::uint32_t rpc = r.u32();
      if (r.u32() != m.numRegs || rpc >= m.code.size())
        throw ckpt::CkptError("VM continuation does not fit this module");
      for (std::uint16_t k = 0; k < m.numRegs; ++k) {
        const std::uint8_t tag = r.u8();
        const std::uint64_t bits = r.u64();
        switch (tag) {
          case 0:
            regs[k] = Slot{};
            break;
          case 1:
            regs[k] = Slot::ofInt(static_cast<Index>(bits));
            break;
          case 2:
            regs[k] = Slot::ofReal(std::bit_cast<double>(bits));
            break;
          case 3:
            regs[k] = Slot::ofBool(bits != 0);
            break;
          default:
            throw ckpt::CkptError("bad register tag in VM continuation");
        }
      }
      pc = rpc;
    } else if (img.engine !=
               static_cast<std::uint8_t>(ckpt::ContEngine::None)) {
      throw ckpt::CkptError(
          "VM cannot resume a continuation captured by another engine");
    }
    // ContEngine::None (genesis snapshot): restart from pc 0.
  }

  for (;;) {
    const Insn& in = code[pc];
    switch (in.op) {
      case Op::Halt:
        return;
      case Op::Step:
        if (ctrl != nullptr) boundary();
        if (iopts.stepHook) iopts.stepHook(proc);
        stats.stmtsExecuted += 1;
        break;
      case Op::ConstI:
        regs[in.a] = Slot::ofInt(ipool[in.d]);
        break;
      case Op::ConstR:
        regs[in.a] = Slot::ofReal(rpool[in.d]);
        break;
      case Op::ConstB:
        regs[in.a] = Slot::ofBool(in.d != 0);
        break;
      case Op::MyPid:
        regs[in.a] = Slot::ofInt(static_cast<Index>(proc.mypid()));
        break;
      case Op::NProcs:
        regs[in.a] = Slot::ofInt(static_cast<Index>(proc.nprocs()));
        break;
      case Op::Mov:
        regs[in.a] = val(in.b);
        break;
      case Op::Add: {
        const Slot& x = val(in.b);
        const Slot& y = val(in.c);
        regs[in.a] = (x.tag == Tag::Int && y.tag == Tag::Int)
                         ? Slot::ofInt(arith::wrapAdd(x.i, y.i))
                         : Slot::ofReal(asReal(x) + asReal(y));
        break;
      }
      case Op::Sub: {
        const Slot& x = val(in.b);
        const Slot& y = val(in.c);
        regs[in.a] = (x.tag == Tag::Int && y.tag == Tag::Int)
                         ? Slot::ofInt(arith::wrapSub(x.i, y.i))
                         : Slot::ofReal(asReal(x) - asReal(y));
        break;
      }
      case Op::Mul: {
        const Slot& x = val(in.b);
        const Slot& y = val(in.c);
        regs[in.a] = (x.tag == Tag::Int && y.tag == Tag::Int)
                         ? Slot::ofInt(arith::wrapMul(x.i, y.i))
                         : Slot::ofReal(asReal(x) * asReal(y));
        break;
      }
      case Op::Div: {
        const Slot& x = val(in.b);
        const Slot& y = val(in.c);
        regs[in.a] = (x.tag == Tag::Int && y.tag == Tag::Int)
                         ? Slot::ofInt(arith::checkedDiv(x.i, y.i))
                         : Slot::ofReal(asReal(x) / asReal(y));
        break;
      }
      case Op::Mod: {
        const Slot& x = val(in.b);
        const Slot& y = val(in.c);
        XDP_CHECK(x.tag == Tag::Int && y.tag == Tag::Int,
                  "mod requires integer operands");
        regs[in.a] = Slot::ofInt(arith::checkedMod(x.i, y.i));
        break;
      }
      case Op::Lt:
        regs[in.a] = Slot::ofBool(asReal(val(in.b)) < asReal(val(in.c)));
        break;
      case Op::Le:
        regs[in.a] = Slot::ofBool(asReal(val(in.b)) <= asReal(val(in.c)));
        break;
      case Op::Gt:
        regs[in.a] = Slot::ofBool(asReal(val(in.b)) > asReal(val(in.c)));
        break;
      case Op::Ge:
        regs[in.a] = Slot::ofBool(asReal(val(in.b)) >= asReal(val(in.c)));
        break;
      case Op::Eq:
        regs[in.a] = Slot::ofBool(asReal(val(in.b)) == asReal(val(in.c)));
        break;
      case Op::Ne:
        regs[in.a] = Slot::ofBool(asReal(val(in.b)) != asReal(val(in.c)));
        break;
      case Op::Min: {
        const Slot& x = val(in.b);
        const Slot& y = val(in.c);
        regs[in.a] = (x.tag == Tag::Int && y.tag == Tag::Int)
                         ? Slot::ofInt(std::min(x.i, y.i))
                         : Slot::ofReal(std::min(asReal(x), asReal(y)));
        break;
      }
      case Op::Max: {
        const Slot& x = val(in.b);
        const Slot& y = val(in.c);
        regs[in.a] = (x.tag == Tag::Int && y.tag == Tag::Int)
                         ? Slot::ofInt(std::max(x.i, y.i))
                         : Slot::ofReal(std::max(asReal(x), asReal(y)));
        break;
      }
      case Op::Neg: {
        const Slot& x = val(in.b);
        regs[in.a] = x.tag == Tag::Int ? Slot::ofInt(arith::wrapNeg(x.i))
                                       : Slot::ofReal(-asReal(x));
        break;
      }
      case Op::Not:
        regs[in.a] = Slot::ofBool(!asBool(val(in.b)));
        break;
      case Op::ToBool:
        regs[in.a] = Slot::ofBool(asBool(val(in.b)));
        break;
      case Op::ToIndex:
        regs[in.a] = Slot::ofInt(asInt(val(in.b)));
        break;
      case Op::CheckStep:
        XDP_CHECK(regs[in.a].i > 0, "loop step must be positive");
        break;
      case Op::Jmp:
        pc = static_cast<std::size_t>(in.d);
        continue;
      case Op::JmpIfFalse:
        if (!asBool(val(in.a))) {
          pc = static_cast<std::size_t>(in.d);
          continue;
        }
        break;
      case Op::ForEnter: {
        const Index lb = regs[in.b].i;
        const Index ub = regs[in.c].i;
        if (lb > ub) {
          pc = static_cast<std::size_t>(in.d);
          continue;
        }
        if (in.rank != 0 && canLease && !lease) {
          lease.emplace(proc.table());
          leaseOwner = static_cast<std::int32_t>(pc) + 1;
        }
        regs[in.a] = Slot::ofInt(lb);
        break;
      }
      case Op::ForNext: {
        const Index i = regs[in.a].i;
        const Index ub = regs[in.b].i;
        const Index step = regs[in.c].i;
        // Same overflow-safe termination test as the tree walker.
        if (static_cast<std::uint64_t>(ub) - static_cast<std::uint64_t>(i) >=
            static_cast<std::uint64_t>(step)) {
          regs[in.a].i = i + step;
          pc = static_cast<std::size_t>(in.d);
          continue;
        }
        // ForNext.d is its loop's head = enter pc + 1: release the lease
        // exactly when the owning loop terminates.
        if (lease && in.d == leaseOwner) dropLease();
        break;
      }
      case Op::CountLoopIter:
        stats.loopIterations += 1;
        break;
      case Op::CountRuleEval:
        stats.rulesEvaluated += 1;
        break;
      case Op::CountRuleTrue:
        stats.rulesTrue += 1;
        break;
      case Op::CountElemAssign:
        stats.elemAssigns += 1;
        break;
      case Op::LoadElem: {
        std::array<sec::Index, sec::kMaxRank> idx{};
        for (int k = 0; k < in.rank; ++k)
          idx[static_cast<std::size_t>(k)] = regs[in.b + k].i;
        regs[in.a] = loadAt(in.rank, idx, in.d);
        break;
      }
      case Op::StoreElem: {
        const double v = asReal(val(in.a));
        if (in.rank == 1 && lease) {
          const Index x = regs[in.b].i;
          const auto type = m.elemTypes[static_cast<std::size_t>(in.d)];
          const std::int64_t w =
              type == rt::ElemType::F64
                  ? 0
                  : static_cast<std::int64_t>(std::llround(v));
          const std::byte* bytes =
              type == rt::ElemType::F64
                  ? reinterpret_cast<const std::byte*>(&v)
                  : reinterpret_cast<const std::byte*>(&w);
          if (lease->tryWrite1(static_cast<int>(in.d), x, bytes)) break;
          dropLease();
        }
        std::array<sec::Index, sec::kMaxRank> idx{};
        for (int k = 0; k < in.rank; ++k)
          idx[static_cast<std::size_t>(k)] = regs[in.b + k].i;
        storeAt(in.rank, idx, in.d, v);
        break;
      }
      case Op::Cost:
        proc.compute(asReal(val(in.a)));
        break;
      case Op::EvalFlat:
        // Publish-before-block: the expression may contain an await; the
        // continuation re-evaluates it against the restored state.
        if (ctrl != nullptr) ctrl->publish(pid, makeImage(false));
        regs[in.a] =
            fe.evalValue(ExprRef{static_cast<std::uint32_t>(in.d)});
        break;
      case Op::EvalRule:
        if (ctrl != nullptr) ctrl->publish(pid, makeImage(false));
        regs[in.a] = Slot::ofBool(
            fe.evalRule(ExprRef{static_cast<std::uint32_t>(in.d)}));
        break;
      case Op::ExecFlat: {
        const StmtRef sr{static_cast<std::uint32_t>(in.d)};
        if (ctrl != nullptr) {
          // Cold statements are restartable leaves (For always compiles
          // hot), so re-executing from this pc is the continuation —
          // except kernels, which may block mid-way after side effects.
          boundary();
          ctrl->publish(pid,
                        makeImage(m.fp[sr].kind == StmtKind::Kernel));
        }
        fe.exec(sr);
        break;
      }
      // Fused bookkeeping ops: exact concatenation of their components.
      case Op::ForIter:
        stats.loopIterations += 1;
        regs[in.a] = regs[in.b];  // iR is always set by ForEnter
        break;
      case Op::StepElem:
        if (ctrl != nullptr) boundary();
        if (iopts.stepHook) iopts.stepHook(proc);
        stats.stmtsExecuted += 1;
        stats.elemAssigns += 1;
        break;
      case Op::StepRule:
        if (ctrl != nullptr) boundary();
        if (iopts.stepHook) iopts.stepHook(proc);
        stats.stmtsExecuted += 1;
        stats.rulesEvaluated += 1;
        break;
      case Op::LoadElem1: {
        const Index x = arith::wrapAdd(asInt(val(in.b)), ipool[in.c]);
        if (lease) {
          // Inline window-hit path (see ElemLease::tryRead1); both element
          // types are 8 bytes, reinterpreted to real exactly like loadAt.
          const auto type = m.elemTypes[static_cast<std::size_t>(in.d)];
          std::int64_t vi = 0;
          double vr = 0.0;
          std::byte* bytes = type == rt::ElemType::F64
                                 ? reinterpret_cast<std::byte*>(&vr)
                                 : reinterpret_cast<std::byte*>(&vi);
          if (lease->tryRead1(static_cast<int>(in.d), x, bytes)) {
            regs[in.a] = type == rt::ElemType::F64
                             ? Slot::ofReal(vr)
                             : Slot::ofReal(static_cast<double>(vi));
            break;
          }
          dropLease();
        }
        std::array<sec::Index, sec::kMaxRank> idx{};
        idx[0] = x;
        regs[in.a] = loadAt(1, idx, in.d);
        break;
      }
      case Op::IdxAff:
        regs[in.a] = Slot::ofInt(arith::wrapAdd(asInt(val(in.b)), ipool[in.c]));
        break;
    }
    ++pc;
  }
}

std::string disassemble(const Module& m) {
  static const char* kNames[] = {
      "Halt",    "Step",      "ConstI",     "ConstR",   "ConstB",
      "MyPid",   "NProcs",    "Mov",        "Add",      "Sub",
      "Mul",     "Div",       "Mod",        "Lt",       "Le",
      "Gt",      "Ge",        "Eq",         "Ne",       "Min",
      "Max",     "Neg",       "Not",        "ToBool",   "ToIndex",
      "CheckStep", "Jmp",     "JmpIfFalse", "ForEnter", "ForNext",
      "CountLoopIter", "CountRuleEval", "CountRuleTrue",
      "CountElemAssign", "LoadElem", "StoreElem", "Cost",
      "EvalFlat", "EvalRule", "ExecFlat",
      "ForIter", "StepElem", "StepRule", "LoadElem1", "IdxAff",
  };
  std::ostringstream os;
  os << "regs=" << m.numRegs << " scalars=" << m.fp.numScalars()
     << " hot=" << m.hotStmts << " cold=" << m.coldStmts << "\n";
  for (std::size_t k = 0; k < m.code.size(); ++k) {
    const Insn& in = m.code[k];
    os << k << ": " << kNames[static_cast<int>(in.op)] << " a=" << in.a
       << " b=" << in.b << " c=" << in.c << " d=" << in.d;
    if (in.rank != 0) os << " rank=" << static_cast<int>(in.rank);
    os << "\n";
  }
  return os.str();
}

}  // namespace xdp::interp::bc
