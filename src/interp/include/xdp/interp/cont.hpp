// Continuation-image helpers shared by both execution engines
// (DESIGN.md §11). The ckpt layer carries InterpStats as an opaque
// ordered array; this header pins the order so tree-walker and VM
// images agree and the controller's park threshold (stats[2] =
// executed statements) reads the right counter.
#pragma once

#include <array>
#include <cstdint>

#include "xdp/ckpt/image.hpp"
#include "xdp/interp/interpreter.hpp"

namespace xdp::interp {

inline std::array<std::uint64_t, ckpt::kNumContStats> statsToArray(
    const InterpStats& s) {
  return {s.rulesEvaluated, s.rulesTrue,   s.stmtsExecuted,
          s.loopIterations, s.elemAssigns, s.kernelCalls,
          s.guardCacheHits, s.rangeSplits, s.guardedItersSaved};
}

inline InterpStats statsFromArray(
    const std::array<std::uint64_t, ckpt::kNumContStats>& a) {
  InterpStats s;
  s.rulesEvaluated = a[0];
  s.rulesTrue = a[1];
  s.stmtsExecuted = a[2];
  s.loopIterations = a[3];
  s.elemAssigns = a[4];
  s.kernelCalls = a[5];
  s.guardCacheHits = a[6];
  s.rangeSplits = a[7];
  s.guardedItersSaved = a[8];
  return s;
}

}  // namespace xdp::interp
