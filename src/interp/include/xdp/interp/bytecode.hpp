// Register-based bytecode for IL+XDP programs — the compiled execution
// backend behind InterpOptions::backend (see DESIGN.md §9).
//
// compile() lowers a flat::FlatProgram (xdp/il/flat.hpp) into one dense
// instruction stream per program: scalar arithmetic, For loops, guards,
// and single-point element access become register ops over a tagged-slot
// register file; everything stateful — ownership queries, sends/receives,
// awaits, kernels, general sections — stays a single cold instruction
// (EvalFlat / EvalRule / ExecFlat) that walks the flat IL and calls back
// into the same rt::Proc the tree walker uses. Quotas (stepHook), fault
// injection, the watchdog, and NetStats are therefore untouched, and the
// logical InterpStats counters are bit-identical to the tree walker's by
// construction (the VM runs the naive guard-per-iteration schedule, which
// is exactly what the logical counters describe).
//
// Register file layout: registers [0, numScalars) ARE the universal
// scalars (register index == flat scalarId, so the cold-path evaluator
// shares the environment with compiled code); registers above that are
// expression temporaries. Slots start Undef, which is how
// use-of-undefined-scalar is detected — same diagnostic as the tree
// walker.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "xdp/ckpt/controller.hpp"
#include "xdp/il/flat.hpp"
#include "xdp/interp/interpreter.hpp"

namespace xdp::interp::bc {

enum class Op : std::uint8_t {
  Halt,        ///< end of program
  Step,        ///< stepHook + stmtsExecuted (top of every hot statement)
  ConstI,      ///< a = ipool[d]
  ConstR,      ///< a = rpool[d]
  ConstB,      ///< a = bool(d)
  MyPid,       ///< a = mypid (int)
  NProcs,      ///< a = nprocs (int)
  Mov,         ///< a = b
  // Binary arithmetic: a = b <op> c, Value-variant semantics (both ints →
  // wrapping int op, else real; Div/Mod trap via xdp::arith; comparisons
  // always compare as real and yield bool).
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  Min, Max,
  Neg,         ///< a = -b (wrapping int / real)
  Not,         ///< a = !asBool(b)
  ToBool,      ///< a = asBool(b)
  ToIndex,     ///< a = asInt(b) — llround + range + integrality checks
  CheckStep,   ///< XDP_CHECK(a > 0, "loop step must be positive")
  Jmp,         ///< pc = d
  JmpIfFalse,  ///< if (!asBool(a)) pc = d
  ForEnter,    ///< if (b > c) pc = d else a = b   (a=var, b=lb, c=ub; ints)
  ForNext,     ///< overflow-safe: if (step <= ub-a) { a += step; pc = d }
               ///< (a=var, b=ub, c=step)
  CountLoopIter,   ///< stats.loopIterations += 1
  CountRuleEval,   ///< stats.rulesEvaluated += 1
  CountRuleTrue,   ///< stats.rulesTrue += 1
  CountElemAssign, ///< stats.elemAssigns += 1
  LoadElem,    ///< a = A_d[regs[b..b+rank)] as real (subscripts are ints)
  StoreElem,   ///< A_d[regs[b..b+rank)] = asReal(a)
  Cost,        ///< proc.compute(asReal(a))
  // Cold path: d is a flat node id; the flat-walking evaluator mirrors the
  // tree walker exactly (including its own Step accounting for ExecFlat).
  EvalFlat,    ///< a = evalValue(expr d)
  EvalRule,    ///< a = evalRule(expr d) — UnownedRef ⇒ false (paper 2.4)
  ExecFlat,    ///< exec(stmt d) via the flat walker
  // Fused bookkeeping ops — pure dispatch reduction on the hot loop path.
  // Each is the exact concatenation of the two ops it replaces, in the
  // same program position, so logical stats and hook timing are unchanged.
  ForIter,     ///< CountLoopIter + Mov: loopIterations += 1; a = b
  StepElem,    ///< Step + CountElemAssign (top of a hot element assign)
  StepRule,    ///< Step + CountRuleEval (top of a hot guarded statement)
  // Rank-1 affine subscripts (`A[i]`, `A[i±c]`) — the stencil inner-loop
  // shape — skip the Sub/Add + ToIndex temp chain entirely.
  LoadElem1,   ///< a = A_d[asInt(b) +w ipool[c]] (wrapping add, as real)
  IdxAff,      ///< a = asInt(b) +w ipool[c] — store-side subscript, kept
               ///< before the value expression (tree-walker eval order)
};

/// One fixed-size instruction. `a`/`b`/`c` are register indices, `rank`
/// the subscript count of LoadElem/StoreElem, `d` an op-specific payload:
/// jump target, pool index, symbol, or flat node id.
struct Insn {
  Op op = Op::Halt;
  std::uint8_t rank = 0;
  std::uint16_t a = 0, b = 0, c = 0;
  std::int32_t d = 0;
};
static_assert(sizeof(Insn) == 12, "Insn packs to 12 bytes");

/// A compiled program: the flat IL it was lowered from (the cold path
/// walks it), the instruction stream, constant pools, and per-symbol
/// element types resolved at compile time.
struct Module {
  il::flat::FlatProgram fp;
  std::vector<Insn> code;
  std::vector<Index> ipool;
  std::vector<double> rpool;
  std::vector<rt::ElemType> elemTypes;  ///< by symbol index
  std::uint16_t numRegs = 0;            ///< scalars + consts + temporaries
  std::uint32_t hotStmts = 0;           ///< statements fully compiled
  std::uint32_t coldStmts = 0;          ///< statements left to ExecFlat
};

/// Lower a flat program to bytecode. Pure function of the program.
Module compile(il::flat::FlatProgram fp);

/// Run `m` as the node program of `proc`. Counters accumulate into
/// `stats`; `iopts.stepHook` fires exactly as in the tree walker; kernels
/// resolve by name from `kernels`. With a checkpoint controller the VM
/// observes statement boundaries (park/signal/publish; DESIGN.md §11) and
/// resumes from a pc + register-file continuation when one is seeded.
void execute(const Module& m, rt::Proc& proc, InterpStats& stats,
             const InterpOptions& iopts,
             const std::map<std::string, KernelFn>& kernels,
             ckpt::Controller* ctrl = nullptr);

/// Human-readable disassembly (tests / debugging).
std::string disassemble(const Module& m);

}  // namespace xdp::interp::bc
