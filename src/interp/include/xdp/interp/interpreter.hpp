// The IL+XDP interpreter: executes a program as the SPMD node program of
// every simulated processor, mapping IL transfer statements onto the
// xdp::rt runtime (our "code generation" stage — on a real machine the
// back end would emit communication-library calls here instead; see paper
// section 3.2 on delayed binding).
//
// Compute-rule semantics (paper section 2.4): a rule evaluates to false if
// it references the *value* of any section the processor does not own;
// intrinsic arguments are names, not values, and never trigger this.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "xdp/il/program.hpp"
#include "xdp/rt/proc.hpp"

namespace xdp::interp {

using sec::Index;
using sec::Section;

/// Per-processor execution counters. `rulesEvaluated - rulesTrue` is the
/// wasted guard work that ComputeRuleElimination removes (paper 2.4).
struct InterpStats {
  std::uint64_t rulesEvaluated = 0;
  std::uint64_t rulesTrue = 0;
  std::uint64_t stmtsExecuted = 0;
  std::uint64_t loopIterations = 0;
  std::uint64_t elemAssigns = 0;
  std::uint64_t kernelCalls = 0;

  InterpStats& operator+=(const InterpStats& o);
};

/// A computational kernel callable from IL (e.g. fft1D). Receives the
/// executing processor and the resolved (symbol, section) arguments.
using KernelFn =
    std::function<void(rt::Proc&, const std::vector<std::pair<int, Section>>&)>;

class Interpreter {
 public:
  explicit Interpreter(il::Program prog, rt::RuntimeOptions opts = {});

  const il::Program& program() const { return prog_; }
  rt::Runtime& runtime() { return rt_; }

  /// Register a kernel by name before run().
  void registerKernel(std::string name, KernelFn fn);

  /// Execute the program body on every processor; joins before returning.
  void run();

  InterpStats stats(int pid) const;
  InterpStats totalStats() const;
  void resetStats();

 private:
  friend class Exec;
  il::Program prog_;
  rt::Runtime rt_;
  std::map<std::string, KernelFn> kernels_;
  std::vector<InterpStats> stats_;
};

}  // namespace xdp::interp
