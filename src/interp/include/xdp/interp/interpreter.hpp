// The IL+XDP interpreter: executes a program as the SPMD node program of
// every simulated processor, mapping IL transfer statements onto the
// xdp::rt runtime (our "code generation" stage — on a real machine the
// back end would emit communication-library calls here instead; see paper
// section 3.2 on delayed binding).
//
// Compute-rule semantics (paper section 2.4): a rule evaluates to false if
// it references the *value* of any section the processor does not own;
// intrinsic arguments are names, not values, and never trigger this.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "xdp/il/program.hpp"
#include "xdp/rt/proc.hpp"

namespace xdp::interp {

namespace bc {
struct Module;  // compiled bytecode (xdp/interp/bytecode.hpp)
}

using sec::Index;
using sec::Section;

/// Per-processor execution counters. `rulesEvaluated - rulesTrue` is the
/// wasted guard work that ComputeRuleElimination removes (paper 2.4).
/// The counters describe *logical* work: a guarded loop executed via the
/// range-split fast path still reports one rule evaluation per iteration,
/// so exact-count expectations are independent of how the loop ran; the
/// fast-path counters below record what was actually saved.
struct InterpStats {
  std::uint64_t rulesEvaluated = 0;
  std::uint64_t rulesTrue = 0;
  std::uint64_t stmtsExecuted = 0;
  std::uint64_t loopIterations = 0;
  std::uint64_t elemAssigns = 0;
  std::uint64_t kernelCalls = 0;

  // --- ownership fast path -----------------------------------------------
  /// Run-time table memo-cache hits on this processor (all state queries).
  std::uint64_t guardCacheHits = 0;
  /// Guarded loops executed by splitting the iteration space via
  /// ownedRanges instead of evaluating the guard per iteration.
  std::uint64_t rangeSplits = 0;
  /// Per-iteration guard evaluations those splits replaced.
  std::uint64_t guardedItersSaved = 0;

  InterpStats& operator+=(const InterpStats& o);
};

/// Called by every executing processor at the top of each statement —
/// the interpreter's step-accounting and cancellation points. Throwing
/// aborts that processor's node program (the exception propagates out of
/// Interpreter::run via the SPMD failure aggregation); xdp::serve hangs
/// per-session step/memory/wall-time quota enforcement off it.
using StepHook = std::function<void(rt::Proc&)>;

/// Which execution engine runs the node programs. Both engines produce
/// bit-identical results, NetStats, and logical InterpStats (the
/// differential tests enforce it); they differ in speed and in the
/// non-logical fast-path counters (the VM never range-splits, so
/// rangeSplits/guardedItersSaved stay 0 and guardCacheHits differ).
enum class Backend {
  TreeWalk,  ///< reference tree-walking interpreter (the oracle)
  Bytecode,  ///< flat-IL register VM (xdp/interp/bytecode.hpp)
};

/// Interpreter-level execution switches (distinct from RuntimeOptions,
/// which configure the simulated machine).
struct InterpOptions {
  /// When a loop body is a single guarded statement whose rule is
  /// iown/accessible over a section affine in the loop variable, execute
  /// the owned subranges unguarded via ProcTable::ownedRanges. Observable
  /// only through InterpStats and speed; off reproduces the naive
  /// guard-per-iteration schedule exactly.
  bool splitGuardedLoops = true;
  /// Per-statement hook (see StepHook); empty = no per-step overhead
  /// beyond one branch.
  StepHook stepHook;
  /// Execution engine (see Backend). The program is flattened and
  /// compiled lazily on the first run() when Bytecode is selected.
  Backend backend = Backend::TreeWalk;
};

/// A computational kernel callable from IL (e.g. fft1D). Receives the
/// executing processor and the resolved (symbol, section) arguments.
using KernelFn =
    std::function<void(rt::Proc&, const std::vector<std::pair<int, Section>>&)>;

class Interpreter {
 public:
  explicit Interpreter(il::Program prog, rt::RuntimeOptions opts = {},
                       InterpOptions iopts = {});
  ~Interpreter();  // out-of-line: bc::Module is incomplete here

  const il::Program& program() const { return prog_; }
  rt::Runtime& runtime() { return rt_; }

  /// Register a kernel by name before run().
  void registerKernel(std::string name, KernelFn fn);

  /// Execute the program body on every processor; joins before returning.
  void run();

  InterpStats stats(int pid) const;
  InterpStats totalStats() const;
  void resetStats();

 private:
  friend class Exec;

  // Universal scalars are interned to dense ids at construction (the IL
  // tree is immutable, so every ScalarRef/ScalarAssign/For node can be
  // resolved once); the executor then runs on a vector-backed environment
  // instead of hashing names per access.
  void internScalars();
  int internName(const std::string& n);
  int scalarIdOfExpr(const il::Expr* e) const;
  int scalarIdOfStmt(const il::Stmt* s) const;
  int numScalars() const { return static_cast<int>(scalarNames_.size()); }

  // Checkpointing (DESIGN.md §11): the tree walker publishes a
  // continuation before every statement that can block, so the set of
  // such statements is precomputed once when the runtime has a
  // checkpoint controller. A statement blocks if it is itself a
  // transfer/await/kernel or if any expression under it awaits.
  void computeBlockingStmts();
  bool isBlockingStmt(const il::Stmt* s) const {
    return blockingStmts_.count(s) != 0;
  }

  il::Program prog_;
  rt::Runtime rt_;
  InterpOptions iopts_;
  std::map<std::string, KernelFn> kernels_;
  std::vector<InterpStats> stats_;
  std::unique_ptr<bc::Module> module_;  ///< lazily compiled (Bytecode)

  std::vector<std::string> scalarNames_;
  std::unordered_map<std::string, int> scalarIdByName_;
  std::unordered_map<const il::Expr*, int> exprScalarIds_;
  std::unordered_map<const il::Stmt*, int> stmtScalarIds_;
  std::unordered_set<const il::Stmt*> blockingStmts_;
  bool blockingComputed_ = false;
};

}  // namespace xdp::interp
