#include "xdp/interp/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "xdp/ckpt/io.hpp"
#include "xdp/il/flat.hpp"
#include "xdp/interp/bytecode.hpp"
#include "xdp/interp/cont.hpp"
#include "xdp/support/arith.hpp"
#include "xdp/support/check.hpp"

namespace xdp::interp {
namespace {

using il::DestSpec;
using il::Expr;
using il::ExprKind;
using il::ExprPtr;
using il::SecExprKind;
using il::SectionExpr;
using il::SectionExprPtr;
using il::Stmt;
using il::StmtKind;
using il::StmtPtr;
using sec::Point;
using sec::Triplet;

/// Thrown (inside compute-rule evaluation only) when the rule references
/// the value of an unowned section — the rule then evaluates to false.
struct UnownedRef {};

using Value = std::variant<Index, double, bool>;

Index asInt(const Value& v) {
  if (std::holds_alternative<Index>(v)) return std::get<Index>(v);
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v) ? 1 : 0;
  double d = std::get<double>(v);
  // Reject before llround: beyond int64 range (or NaN, which fails every
  // comparison) the conversion is undefined behaviour, not a wrong value.
  if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
    XDP_USAGE_FAIL("index value out of range (non-finite or beyond int64): " +
                   std::to_string(d));
  }
  Index i = static_cast<Index>(std::llround(d));
  XDP_CHECK(static_cast<double>(i) == d, "non-integral value in index context");
  return i;
}

double asReal(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<Index>(v))
    return static_cast<double>(std::get<Index>(v));
  return std::get<bool>(v) ? 1.0 : 0.0;
}

bool asBool(const Value& v) {
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v);
  if (std::holds_alternative<Index>(v)) return std::get<Index>(v) != 0;
  return std::get<double>(v) != 0.0;
}

}  // namespace

InterpStats& InterpStats::operator+=(const InterpStats& o) {
  rulesEvaluated += o.rulesEvaluated;
  rulesTrue += o.rulesTrue;
  stmtsExecuted += o.stmtsExecuted;
  loopIterations += o.loopIterations;
  elemAssigns += o.elemAssigns;
  kernelCalls += o.kernelCalls;
  guardCacheHits += o.guardCacheHits;
  rangeSplits += o.rangeSplits;
  guardedItersSaved += o.guardedItersSaved;
  return *this;
}

/// Per-processor executor.
class Exec {
 public:
  Exec(Interpreter& in, rt::Proc& proc, InterpStats& stats)
      : in_(in),
        proc_(proc),
        stats_(stats),
        ctrl_(in.rt_.ckptController()),
        pid_(proc.mypid()),
        env_(static_cast<std::size_t>(in.numScalars())),
        def_(static_cast<std::size_t>(in.numScalars()), 0) {}

  void exec(const StmtPtr& s) {
    XDP_CHECK(s != nullptr, "executing null statement");
    // Statement boundary (DESIGN.md §11): nothing of `s` has run yet, so
    // a continuation published here means "re-execute this statement".
    if (ctrl_ != nullptr) boundary(s);
    // Step accounting / cancellation point: a quota or cancellation hook
    // can abort this processor before the statement runs.
    if (in_.iopts_.stepHook) in_.iopts_.stepHook(proc_);
    stats_.stmtsExecuted += 1;
    switch (s->kind) {
      case StmtKind::Block:
        if (ctrl_ == nullptr) {
          for (const auto& c : s->stmts) exec(c);
        } else {
          for (std::size_t k = 0; k < s->stmts.size(); ++k) {
            frames_.push_back({0, static_cast<Index>(k), 0, 0});
            exec(s->stmts[k]);
            frames_.pop_back();
          }
        }
        return;
      case StmtKind::ScalarAssign: {
        const int id = in_.scalarIdOfStmt(s.get());
        env_[static_cast<std::size_t>(id)] = evalValue(s->value);
        def_[static_cast<std::size_t>(id)] = 1;
        return;
      }
      case StmtKind::ElemAssign: {
        stats_.elemAssigns += 1;
        Section pt = evalSection(s->sym, s->lhs);
        XDP_CHECK(pt.count() == 1, "element assignment needs a single point");
        double v = asReal(evalValue(s->rhs));
        writeReal(s->sym, pt, v);
        return;
      }
      case StmtKind::For: {
        Index lb = asInt(evalValue(s->lb));
        Index ub = asInt(evalValue(s->ub));
        Index step = s->step ? asInt(evalValue(s->step)) : 1;
        XDP_CHECK(step > 0, "loop step must be positive");
        if (lb > ub) return;
        const int var = in_.scalarIdOfStmt(s.get());
        // Range splitting is off under checkpointing: the split schedule
        // executes body statements with a frame stack that no longer
        // matches the program tree, so no valid continuation could be
        // published from inside it. Logical counters are split-invariant,
        // so differential parity with unsplit runs still holds.
        if (ctrl_ == nullptr && in_.iopts_.splitGuardedLoops &&
            execSplitLoop(s, var, Triplet(lb, ub, step))) {
          return;
        }
        for (Index i = lb;;) {
          stats_.loopIterations += 1;
          env_[static_cast<std::size_t>(var)] = i;
          def_[static_cast<std::size_t>(var)] = 1;
          if (ctrl_ != nullptr) {
            frames_.push_back({1, i, ub, step});
            exec(s->body);
            frames_.pop_back();
          } else {
            exec(s->body);
          }
          // `i + step` can overflow past a ub near INT64_MAX; decide
          // termination on the (always in-range) remaining distance.
          if (static_cast<std::uint64_t>(ub) - static_cast<std::uint64_t>(i) <
              static_cast<std::uint64_t>(step))
            break;
          i += step;
        }
        return;
      }
      case StmtKind::Guarded: {
        stats_.rulesEvaluated += 1;
        if (!evalRule(s->rule)) return;
        stats_.rulesTrue += 1;
        if (ctrl_ != nullptr) {
          frames_.push_back({2, 0, 0, 0});
          exec(s->body);
          frames_.pop_back();
        } else {
          exec(s->body);
        }
        return;
      }
      case StmtKind::SendData: {
        Section e = evalSection(s->sym, s->lhs);
        if (e.empty()) return;
        proc_.send(s->sym, e, resolveDest(s->dest));
        return;
      }
      case StmtKind::RecvData: {
        Section dst = evalSection(s->sym, s->lhs);
        Section name = evalSection(s->sym2, s->sec2);
        if (dst.empty() && name.empty()) return;
        proc_.recv(s->sym, dst, s->sym2, name);
        return;
      }
      case StmtKind::SendOwn: {
        Section e = evalSection(s->sym, s->lhs);
        if (e.empty()) return;
        proc_.sendOwnership(s->sym, e, s->withValue, resolveDest(s->dest));
        return;
      }
      case StmtKind::RecvOwn: {
        Section u = evalSection(s->sym, s->lhs);
        if (u.empty()) return;
        proc_.recvOwnership(s->sym, u, s->withValue);
        return;
      }
      case StmtKind::Await: {
        Section s2 = evalSection(s->sym, s->lhs);
        if (s2.empty()) return;
        proc_.await(s->sym, s2);
        return;
      }
      case StmtKind::LocalCopy: {
        Section dst = evalSection(s->sym, s->lhs);
        Section src = evalSection(s->sym2, s->sec2);
        if (dst.empty() && src.empty()) return;
        XDP_CHECK(dst.count() == src.count(), "local copy size mismatch");
        const auto type = proc_.table().decl(s->sym).type;
        XDP_CHECK(type == proc_.table().decl(s->sym2).type,
                  "local copy type mismatch");
        std::vector<std::byte> buf(
            static_cast<std::size_t>(src.count()) * rt::elemSize(type));
        proc_.table().readElems(s->sym2, src, buf.data());
        proc_.table().writeElems(s->sym, dst, buf.data());
        return;
      }
      case StmtKind::Kernel: {
        stats_.kernelCalls += 1;
        auto it = in_.kernels_.find(s->name);
        XDP_CHECK(it != in_.kernels_.end(),
                  "unregistered kernel: " + s->name);
        std::vector<std::pair<int, Section>> args;
        for (const auto& [sym, se] : s->args)
          args.emplace_back(sym, evalSection(sym, se));
        it->second(proc_, args);
        return;
      }
      case StmtKind::ComputeCost:
        proc_.compute(asReal(evalValue(s->value)));
        return;
    }
  }

  /// Resume from a captured tree continuation: restore the interned-
  /// scalar environment, then descend the saved frame path and re-execute
  /// the leaf statement in full (capture only cuts where nothing of the
  /// in-flight statement has taken effect, so full re-execution is the
  /// continuation).
  void runFrom(const StmtPtr& root, const ckpt::ContImage& img) {
    ckpt::Reader r(img.payload);
    const std::uint32_t n = r.u32();
    if (n != env_.size())
      throw ckpt::CkptError("tree continuation scalar count mismatch");
    for (std::uint32_t k = 0; k < n; ++k) {
      def_[k] = r.u8();
      switch (r.u8()) {
        case 0:
          env_[k] = static_cast<Index>(r.i64());
          break;
        case 1:
          env_[k] = r.f64();
          break;
        case 2:
          env_[k] = r.u8() != 0;
          break;
        default:
          throw ckpt::CkptError("bad scalar tag in tree continuation");
      }
    }
    const std::uint32_t depth = r.u32();
    resume_.clear();
    resume_.reserve(depth);
    for (std::uint32_t k = 0; k < depth; ++k) {
      Frame f;
      f.kind = r.u8();
      f.a = r.i64();
      f.b = r.i64();
      f.c = r.i64();
      resume_.push_back(f);
    }
    execResume(root, 0);
  }

 private:
  // --- checkpoint continuations (DESIGN.md §11) --------------------------

  /// One level of the execution cursor: where inside a compound statement
  /// the walker currently stands. kind 0 = Block (a: child index), 1 = For
  /// (a: current i, b: ub, c: step), 2 = Guarded body.
  struct Frame {
    std::uint8_t kind = 0;
    Index a = 0;
    Index b = 0;
    Index c = 0;
  };

  /// Statement-boundary protocol, in order: deliver a pending rollback/
  /// preempt signal; park for a coordinated capture when the executed-
  /// statement count crosses the threshold; publish a restart point
  /// before any statement that can block (kernels are flagged unsafe —
  /// they may block mid-way after side effects, so a capture refuses to
  /// cut there).
  void boundary(const StmtPtr& s) {
    if (ctrl_->signal() != 0) ctrl_->deliverSignal(pid_, makeImage(false));
    if (stats_.stmtsExecuted >= ctrl_->nextParkAt(pid_))
      ctrl_->parkAtBoundary(pid_, makeImage(false));
    if (in_.isBlockingStmt(s.get()))
      ctrl_->publish(pid_, makeImage(s->kind == StmtKind::Kernel));
  }

  ckpt::ContImage makeImage(bool unsafe) const {
    ckpt::ContImage img;
    img.engine = static_cast<std::uint8_t>(ckpt::ContEngine::Tree);
    img.unsafe = unsafe;
    img.stats = statsToArray(stats_);
    ckpt::Writer w;
    w.u32(static_cast<std::uint32_t>(env_.size()));
    for (std::size_t k = 0; k < env_.size(); ++k) {
      w.u8(def_[k]);
      const Value& v = env_[k];
      if (std::holds_alternative<Index>(v)) {
        w.u8(0);
        w.i64(std::get<Index>(v));
      } else if (std::holds_alternative<double>(v)) {
        w.u8(1);
        w.f64(std::get<double>(v));
      } else {
        w.u8(2);
        w.u8(std::get<bool>(v) ? 1 : 0);
      }
    }
    w.u32(static_cast<std::uint32_t>(frames_.size()));
    for (const Frame& f : frames_) {
      w.u8(f.kind);
      w.i64(f.a);
      w.i64(f.b);
      w.i64(f.c);
    }
    img.payload = w.take();
    return img;
  }

  /// Descend the saved frame path: re-enter each compound statement at
  /// its saved cursor WITHOUT re-running its already-performed parts
  /// (loop bound evaluation, guard evaluation — their effects, like every
  /// enclosing statement's counters, are already in the image), run the
  /// leaf in full, then fall back into the normal schedule.
  void execResume(const StmtPtr& s, std::size_t depth) {
    if (depth == resume_.size()) {
      exec(s);
      return;
    }
    XDP_CHECK(s != nullptr, "resuming null statement");
    const Frame f = resume_[depth];
    switch (s->kind) {
      case StmtKind::Block: {
        if (f.kind != 0 || f.a < 0 ||
            static_cast<std::size_t>(f.a) >= s->stmts.size())
          throw ckpt::CkptError("continuation path does not fit this block");
        std::size_t k = static_cast<std::size_t>(f.a);
        frames_.push_back(f);
        execResume(s->stmts[k], depth + 1);
        frames_.pop_back();
        for (++k; k < s->stmts.size(); ++k) {
          frames_.push_back({0, static_cast<Index>(k), 0, 0});
          exec(s->stmts[k]);
          frames_.pop_back();
        }
        return;
      }
      case StmtKind::For: {
        if (f.kind != 1 || f.c <= 0)
          throw ckpt::CkptError("continuation path does not fit this loop");
        const int var = in_.scalarIdOfStmt(s.get());
        Index i = f.a;
        const Index ub = f.b;
        const Index step = f.c;
        env_[static_cast<std::size_t>(var)] = i;
        def_[static_cast<std::size_t>(var)] = 1;
        frames_.push_back(f);
        execResume(s->body, depth + 1);
        frames_.pop_back();
        // The in-flight iteration's loopIterations count is already in
        // the image; count only the remaining ones.
        for (;;) {
          if (static_cast<std::uint64_t>(ub) - static_cast<std::uint64_t>(i) <
              static_cast<std::uint64_t>(step))
            break;
          i += step;
          stats_.loopIterations += 1;
          env_[static_cast<std::size_t>(var)] = i;
          def_[static_cast<std::size_t>(var)] = 1;
          frames_.push_back({1, i, ub, step});
          exec(s->body);
          frames_.pop_back();
        }
        return;
      }
      case StmtKind::Guarded: {
        if (f.kind != 2)
          throw ckpt::CkptError(
              "continuation path does not fit this guarded statement");
        frames_.push_back(f);
        execResume(s->body, depth + 1);
        frames_.pop_back();
        return;
      }
      default:
        throw ckpt::CkptError(
            "continuation path descends into a leaf statement");
    }
  }


  // --- guarded-loop range splitting --------------------------------------
  //
  // The owner-computes lowering produces loops of the shape
  //     do i = lb, ub { iown(A[a*i+b]) : { body } }
  // where the guard is re-decided once per iteration although ownership is
  // a property of whole index ranges. When the pattern is recognized (and
  // the body provably cannot change the guard's answer mid-loop), the
  // owned iterations are computed in ONE ownedRanges query and executed
  // unguarded, in ascending order — identical observable behaviour, O(1)
  // guard work. All legacy counters still report the logical per-iteration
  // schedule (see InterpStats).

  /// value = a * loopVar + b, with a and b already-evaluated constants.
  struct AffineDim {
    Index a = 0;
    Index b = 0;
  };

  /// True iff `e` cannot reference the loop variable or any run-dependent
  /// state — safe to evaluate once at split time. (Conservative: only the
  /// arithmetic subset the lowered guards actually use.)
  bool isPureInvariant(const ExprPtr& e, int var) {
    switch (e->kind) {
      case ExprKind::IntConst:
      case ExprKind::MyPid:
      case ExprKind::NProcs:
        return true;
      case ExprKind::ScalarRef:
        return in_.scalarIdOfExpr(e.get()) != var;
      case ExprKind::Neg:
        return isPureInvariant(e->lhs, var);
      case ExprKind::Bin:
        switch (e->op) {
          // Div/Mod are deliberately absent: they can trap (divisor zero,
          // INT64_MIN / -1), and the split path must never hoist a trap
          // onto a schedule position the naive schedule doesn't have.
          case il::BinOp::Add:
          case il::BinOp::Sub:
          case il::BinOp::Mul:
          case il::BinOp::Min:
          case il::BinOp::Max:
            return isPureInvariant(e->lhs, var) &&
                   isPureInvariant(e->rhs, var);
          default:
            return false;
        }
      default:
        return false;
    }
  }

  /// Decompose `e` as a*var + b; evaluates the invariant parts (so this
  /// must only run when the loop executes at least one iteration — the
  /// naive schedule would evaluate them then too).
  bool affineInVar(const ExprPtr& e, int var, AffineDim* out) {
    if (e->kind == ExprKind::ScalarRef &&
        in_.scalarIdOfExpr(e.get()) == var) {
      out->a = 1;
      out->b = 0;
      return true;
    }
    if (isPureInvariant(e, var)) {
      out->a = 0;
      out->b = asInt(evalValue(e));
      return true;
    }
    switch (e->kind) {
      case ExprKind::Neg: {
        AffineDim i;
        if (!affineInVar(e->lhs, var, &i)) return false;
        out->a = -i.a;
        out->b = -i.b;
        return true;
      }
      case ExprKind::Bin: {
        if (e->op == il::BinOp::Add || e->op == il::BinOp::Sub) {
          AffineDim l, r;
          if (!affineInVar(e->lhs, var, &l) || !affineInVar(e->rhs, var, &r))
            return false;
          out->a = e->op == il::BinOp::Add ? l.a + r.a : l.a - r.a;
          out->b = e->op == il::BinOp::Add ? l.b + r.b : l.b - r.b;
          return true;
        }
        if (e->op == il::BinOp::Mul) {
          // One side must be invariant (both-invariant was handled above).
          const bool lInv = isPureInvariant(e->lhs, var);
          const bool rInv = isPureInvariant(e->rhs, var);
          if (!lInv && !rInv) return false;
          AffineDim inner;
          if (!affineInVar(lInv ? e->rhs : e->lhs, var, &inner)) return false;
          const Index c = asInt(evalValue(lInv ? e->lhs : e->rhs));
          out->a = inner.a * c;
          out->b = inner.b * c;
          return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  /// No blocking/awaiting expression anywhere in `e`.
  bool exprSplitSafe(const ExprPtr& e) {
    if (e == nullptr) return true;
    if (e->kind == ExprKind::Await) return false;
    if (e->lhs && !exprSplitSafe(e->lhs)) return false;
    if (e->rhs && !exprSplitSafe(e->rhs)) return false;
    if (e->section && !secSplitSafe(e->section)) return false;
    return true;
  }

  bool secSplitSafe(const SectionExprPtr& se) {
    if (se == nullptr) return true;
    switch (se->kind) {
      case SecExprKind::Literal:
        for (const auto& t : se->dims) {
          if (!exprSplitSafe(t.lb) || !exprSplitSafe(t.ub) ||
              !exprSplitSafe(t.stride))
            return false;
        }
        return true;
      case SecExprKind::LocalPart:
        return true;
      case SecExprKind::OwnerPart:
        return exprSplitSafe(se->pid);
      case SecExprKind::Intersect:
        return secSplitSafe(se->a) && secSplitSafe(se->b);
    }
    return false;
  }

  bool destSplitSafe(const DestSpec& d) {
    for (const auto& e : d.pids)
      if (!exprSplitSafe(e)) return false;
    return secSplitSafe(d.section);
  }

  /// Mark every scalar id referenced under `e` in `frozen`.
  void collectScalars(const ExprPtr& e, std::vector<char>& frozen) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::ScalarRef)
      frozen[static_cast<std::size_t>(in_.scalarIdOfExpr(e.get()))] = 1;
    if (e->lhs) collectScalars(e->lhs, frozen);
    if (e->rhs) collectScalars(e->rhs, frozen);
    if (e->section) collectScalarsSec(e->section, frozen);
  }

  void collectScalarsSec(const SectionExprPtr& se, std::vector<char>& frozen) {
    if (se == nullptr) return;
    for (const auto& t : se->dims) {
      collectScalars(t.lb, frozen);
      collectScalars(t.ub, frozen);
      collectScalars(t.stride, frozen);
    }
    collectScalars(se->pid, frozen);
    collectScalarsSec(se->a, frozen);
    collectScalarsSec(se->b, frozen);
  }

  /// The body may run unguarded only if it cannot change what the guard
  /// would have answered on a later iteration: no ownership transitions,
  /// no receives, no blocking, no kernels (opaque), and no assignment to
  /// the loop variable or any scalar the guard's section reads.
  bool bodySplitSafe(const StmtPtr& st, const std::vector<char>& frozen) {
    switch (st->kind) {
      case StmtKind::Block:
        return std::all_of(st->stmts.begin(), st->stmts.end(),
                           [&](const StmtPtr& c) {
                             return bodySplitSafe(c, frozen);
                           });
      case StmtKind::ScalarAssign:
        return frozen[static_cast<std::size_t>(
                   in_.scalarIdOfStmt(st.get()))] == 0 &&
               exprSplitSafe(st->value);
      case StmtKind::ElemAssign:
        return secSplitSafe(st->lhs) && exprSplitSafe(st->rhs);
      case StmtKind::For:
        return frozen[static_cast<std::size_t>(
                   in_.scalarIdOfStmt(st.get()))] == 0 &&
               exprSplitSafe(st->lb) && exprSplitSafe(st->ub) &&
               exprSplitSafe(st->step) && bodySplitSafe(st->body, frozen);
      case StmtKind::Guarded:
        return exprSplitSafe(st->rule) && bodySplitSafe(st->body, frozen);
      case StmtKind::SendData:
        // Plain data sends read values and talk to the fabric; they never
        // touch this processor's ownership or pending-receive state.
        return secSplitSafe(st->lhs) && destSplitSafe(st->dest);
      case StmtKind::LocalCopy:
        return secSplitSafe(st->lhs) && secSplitSafe(st->sec2);
      case StmtKind::ComputeCost:
        return exprSplitSafe(st->value);
      case StmtKind::SendOwn:
      case StmtKind::RecvOwn:
      case StmtKind::RecvData:
      case StmtKind::Await:
      case StmtKind::Kernel:
        return false;
    }
    return false;
  }

  /// Try to execute `do var = loop { guard : body }` via ownedRanges.
  /// Returns false (having changed nothing) when the pattern or the
  /// safety conditions do not hold.
  bool execSplitLoop(const StmtPtr& s, int var, const Triplet& loop) {
    // Unwrap single-statement blocks down to the guarded statement.
    int unwrapDepth = 0;
    StmtPtr g = s->body;
    while (g->kind == StmtKind::Block && g->stmts.size() == 1) {
      g = g->stmts.front();
      ++unwrapDepth;
    }
    if (g->kind != StmtKind::Guarded) return false;
    const ExprPtr& rule = g->rule;
    if (rule->kind != ExprKind::Iown && rule->kind != ExprKind::Accessible)
      return false;
    const SectionExprPtr& se = rule->section;
    if (se == nullptr || se->kind != SecExprKind::Literal) return false;

    std::vector<AffineDim> dims;
    bool anyVarying = false;
    for (const auto& t : se->dims) {
      if (t.ub != nullptr || t.stride != nullptr) return false;  // points only
      AffineDim ad;
      if (!affineInVar(t.lb, var, &ad)) return false;
      anyVarying = anyVarying || ad.a != 0;
      dims.push_back(ad);
    }
    if (dims.empty() || !anyVarying) return false;

    std::vector<char> frozen(static_cast<std::size_t>(in_.numScalars()), 0);
    frozen[static_cast<std::size_t>(var)] = 1;
    collectScalars(rule, frozen);
    if (!bodySplitSafe(g->body, frozen)) return false;

    // The image of the whole iteration space under the affine subscripts.
    std::vector<Triplet> qdims;
    for (const AffineDim& ad : dims) {
      if (ad.a == 0) {
        qdims.emplace_back(ad.b);
      } else if (ad.a > 0) {
        qdims.emplace_back(ad.a * loop.lb() + ad.b, ad.a * loop.ub() + ad.b,
                           ad.a * loop.stride());
      } else {
        qdims.emplace_back(ad.a * loop.ub() + ad.b, ad.a * loop.lb() + ad.b,
                           -ad.a * loop.stride());
      }
    }
    sec::RegionList owned = proc_.ownedRanges(
        rule->sym, Section(qdims), rule->kind == ExprKind::Accessible);

    // Pull each owned rectangle back to the loop iterations landing in it.
    // Rectangles are disjoint and each iteration maps to one point, so the
    // per-rectangle iteration sets are disjoint.
    std::vector<Triplet> iterSets;
    for (const Section& r : owned.sections()) {
      Triplet it = loop;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        if (dims[d].a == 0) continue;
        it = Triplet::intersect(
            it, r.dim(static_cast<int>(d))
                    .affinePreimage(dims[d].a, dims[d].b));
        if (it.empty()) break;
      }
      if (!it.empty()) iterSets.push_back(it);
    }

    const Index total = loop.count();
    stats_.rangeSplits += 1;
    stats_.guardedItersSaved += total;
    // Logical schedule: every iteration ran, entered the body chain, and
    // evaluated the guard (see InterpStats).
    stats_.loopIterations += static_cast<std::uint64_t>(total);
    stats_.stmtsExecuted +=
        static_cast<std::uint64_t>(unwrapDepth + 1) *
        static_cast<std::uint64_t>(total);
    stats_.rulesEvaluated += static_cast<std::uint64_t>(total);

    auto runIter = [&](Index i) {
      stats_.rulesTrue += 1;
      env_[static_cast<std::size_t>(var)] = i;
      def_[static_cast<std::size_t>(var)] = 1;
      exec(g->body);
    };
    if (iterSets.size() == 1) {
      const Triplet& t = iterSets.front();
      for (Index k = 0; k < t.count(); ++k) runIter(t.at(k));
    } else if (!iterSets.empty()) {
      // Interleaved strided sets: materialize and sort so iterations run
      // in the ascending order the naive schedule uses.
      std::vector<Index> all;
      for (const Triplet& t : iterSets)
        for (Index k = 0; k < t.count(); ++k) all.push_back(t.at(k));
      std::sort(all.begin(), all.end());
      for (Index i : all) runIter(i);
    }
    // The naive schedule assigns the variable on every (also unowned)
    // iteration; leave it at the last logical value.
    env_[static_cast<std::size_t>(var)] = loop.ub();
    def_[static_cast<std::size_t>(var)] = 1;
    return true;
  }

  // --- expression evaluation -------------------------------------------

  bool evalRule(const ExprPtr& e) {
    ruleDepth_ += 1;
    bool result;
    try {
      result = asBool(evalValue(e));
    } catch (const UnownedRef&) {
      result = false;  // paper 2.4: unowned value reference => rule false
    }
    ruleDepth_ -= 1;
    return result;
  }

  Value evalValue(const ExprPtr& e) {
    XDP_CHECK(e != nullptr, "evaluating null expression");
    switch (e->kind) {
      case ExprKind::IntConst:
        return e->intVal;
      case ExprKind::RealConst:
        return e->realVal;
      case ExprKind::ScalarRef: {
        const auto id =
            static_cast<std::size_t>(in_.scalarIdOfExpr(e.get()));
        XDP_CHECK(def_[id] != 0,
                  "use of undefined universal scalar: " + e->name);
        return env_[id];
      }
      case ExprKind::MyPid:
        return static_cast<Index>(proc_.mypid());
      case ExprKind::NProcs:
        return static_cast<Index>(proc_.nprocs());
      case ExprKind::Bin:
        return evalBin(e);
      case ExprKind::Neg: {
        Value v = evalValue(e->lhs);
        if (std::holds_alternative<Index>(v))
          return arith::wrapNeg(std::get<Index>(v));
        return -asReal(v);
      }
      case ExprKind::Not:
        return !asBool(evalValue(e->lhs));
      case ExprKind::Elem: {
        Section pt = evalSection(e->sym, e->section);
        XDP_CHECK(pt.count() == 1, "element reference needs a single point");
        // Inside a compute rule, an unowned value reference makes the
        // whole rule false instead of being an error.
        if (ruleDepth_ > 0 && !proc_.iown(e->sym, pt)) throw UnownedRef{};
        return readReal(e->sym, pt);
      }
      case ExprKind::Iown:
        return proc_.iown(e->sym, evalSection(e->sym, e->section));
      case ExprKind::Accessible:
        return proc_.accessible(e->sym, evalSection(e->sym, e->section));
      case ExprKind::Await:
        return proc_.await(e->sym, evalSection(e->sym, e->section));
      case ExprKind::MyLb:
        return proc_.mylb(e->sym, evalSection(e->sym, e->section), e->dim);
      case ExprKind::MyUb:
        return proc_.myub(e->sym, evalSection(e->sym, e->section), e->dim);
      case ExprKind::SecNonEmpty:
        return !evalSection(e->sym, e->section).empty();
    }
    XDP_CHECK(false, "unreachable expression kind");
    return Index{0};
  }

  Value evalBin(const ExprPtr& e) {
    using il::BinOp;
    // Short-circuit logicals first.
    if (e->op == BinOp::And) {
      if (!asBool(evalValue(e->lhs))) return false;
      return asBool(evalValue(e->rhs));
    }
    if (e->op == BinOp::Or) {
      if (asBool(evalValue(e->lhs))) return true;
      return asBool(evalValue(e->rhs));
    }
    Value a = evalValue(e->lhs);
    Value b = evalValue(e->rhs);
    const bool bothInt =
        std::holds_alternative<Index>(a) && std::holds_alternative<Index>(b);
    switch (e->op) {
      case BinOp::Add:
        return bothInt
                   ? Value(arith::wrapAdd(std::get<Index>(a), std::get<Index>(b)))
                   : Value(asReal(a) + asReal(b));
      case BinOp::Sub:
        return bothInt
                   ? Value(arith::wrapSub(std::get<Index>(a), std::get<Index>(b)))
                   : Value(asReal(a) - asReal(b));
      case BinOp::Mul:
        return bothInt
                   ? Value(arith::wrapMul(std::get<Index>(a), std::get<Index>(b)))
                   : Value(asReal(a) * asReal(b));
      case BinOp::Div:
        if (bothInt)
          return arith::checkedDiv(std::get<Index>(a), std::get<Index>(b));
        return asReal(a) / asReal(b);
      case BinOp::Mod:
        XDP_CHECK(bothInt, "mod requires integer operands");
        return arith::checkedMod(std::get<Index>(a), std::get<Index>(b));
      case BinOp::Lt:
        return asReal(a) < asReal(b);
      case BinOp::Le:
        return asReal(a) <= asReal(b);
      case BinOp::Gt:
        return asReal(a) > asReal(b);
      case BinOp::Ge:
        return asReal(a) >= asReal(b);
      case BinOp::Eq:
        return asReal(a) == asReal(b);
      case BinOp::Ne:
        return asReal(a) != asReal(b);
      case BinOp::Min:
        return bothInt ? Value(std::min(std::get<Index>(a), std::get<Index>(b)))
                       : Value(std::min(asReal(a), asReal(b)));
      case BinOp::Max:
        return bothInt ? Value(std::max(std::get<Index>(a), std::get<Index>(b)))
                       : Value(std::max(asReal(a), asReal(b)));
      case BinOp::And:
      case BinOp::Or:
        break;  // handled above
    }
    XDP_CHECK(false, "unreachable binop");
    return Index{0};
  }

  // --- section evaluation ------------------------------------------------

  Section emptyOfRank(int rank) {
    std::vector<Triplet> dims;
    dims.emplace_back();  // one empty triplet makes the section empty
    for (int d = 1; d < rank; ++d) dims.emplace_back(0, 0);
    return rank == 0 ? Section{Triplet()} : Section(dims);
  }

  Section evalSection(int sym, const SectionExprPtr& se) {
    XDP_CHECK(se != nullptr, "evaluating null section expression");
    switch (se->kind) {
      case SecExprKind::Literal: {
        std::vector<Triplet> dims;
        for (const auto& t : se->dims) {
          Index lb = asInt(evalValue(t.lb));
          Index ub = t.ub ? asInt(evalValue(t.ub)) : lb;
          Index stride = t.stride ? asInt(evalValue(t.stride)) : 1;
          dims.emplace_back(lb, ub, stride);
        }
        return Section(dims);
      }
      case SecExprKind::LocalPart:
        return partOf(se->sym >= 0 ? se->sym : sym, proc_.mypid(),
                      se->distOverride);
      case SecExprKind::OwnerPart:
        return partOf(se->sym >= 0 ? se->sym : sym,
                      static_cast<int>(asInt(evalValue(se->pid))),
                      se->distOverride);
      case SecExprKind::Intersect: {
        Section a = evalSection(sym, se->a);
        Section b = evalSection(sym, se->b);
        if (a.empty() || b.empty() || a.rank() != b.rank())
          return emptyOfRank(a.rank());
        return Section::intersect(a, b);
      }
    }
    XDP_CHECK(false, "unreachable section expression kind");
    return Section{};
  }

  Section partOf(int sym, int pid,
                 const std::optional<dist::Distribution>& over) {
    const dist::Distribution& d =
        over ? *over : proc_.table().decl(sym).dist;
    sec::RegionList part = d.localPart(pid);
    if (part.empty()) return emptyOfRank(d.rank());
    XDP_CHECK(part.sections().size() == 1,
              "partition is not a single section (CYCLIC(k) local parts "
              "cannot be named by one section expression)");
    return part.sections()[0];
  }

  // --- typed element access ----------------------------------------------

  /// The one point of a single-point section, without materializing the
  /// point list.
  static Point onlyPointOf(const Section& pt) {
    std::array<sec::Index, sec::kMaxRank> idx{};
    for (int d = 0; d < pt.rank(); ++d)
      idx[static_cast<std::size_t>(d)] = pt.dim(d).lb();
    return Point(pt.rank(), idx);
  }

  double readReal(int sym, const Section& pt) {
    const auto type = proc_.table().decl(sym).type;
    if (type == rt::ElemType::F64) {
      double v = 0.0;
      if (proc_.table().tryReadElemAt(sym, onlyPointOf(pt),
                                      reinterpret_cast<std::byte*>(&v)))
        return v;
      return proc_.read<double>(sym, pt)[0];
    }
    if (type == rt::ElemType::I64) {
      std::int64_t v = 0;
      if (proc_.table().tryReadElemAt(sym, onlyPointOf(pt),
                                      reinterpret_cast<std::byte*>(&v)))
        return static_cast<double>(v);
      return static_cast<double>(proc_.read<std::int64_t>(sym, pt)[0]);
    }
    XDP_CHECK(false, "IL element access supports f64/i64 (use kernels for "
                     "complex data)");
    return 0.0;
  }

  void writeReal(int sym, const Section& pt, double v) {
    const auto type = proc_.table().decl(sym).type;
    if (type == rt::ElemType::F64) {
      if (proc_.table().tryWriteElemAt(
              sym, onlyPointOf(pt), reinterpret_cast<const std::byte*>(&v)))
        return;
      proc_.set<double>(sym, pt.points()[0], v);
      return;
    }
    if (type == rt::ElemType::I64) {
      const std::int64_t w = static_cast<std::int64_t>(std::llround(v));
      if (proc_.table().tryWriteElemAt(
              sym, onlyPointOf(pt), reinterpret_cast<const std::byte*>(&w)))
        return;
      proc_.set<std::int64_t>(sym, pt.points()[0], w);
      return;
    }
    XDP_CHECK(false, "IL element access supports f64/i64");
  }

  // --- destinations --------------------------------------------------------

  std::optional<std::vector<int>> resolveDest(const DestSpec& d) {
    switch (d.kind) {
      case DestSpec::Kind::None:
        return std::nullopt;
      case DestSpec::Kind::Pids: {
        std::vector<int> pids;
        for (const auto& e : d.pids)
          pids.push_back(static_cast<int>(asInt(evalValue(e))));
        return pids;
      }
      case DestSpec::Kind::OwnerOf: {
        Section s = evalSection(d.sym, d.section);
        XDP_CHECK(!s.empty(), "owner-of an empty section");
        const dist::Distribution& dd =
            d.distOverride ? *d.distOverride : proc_.table().decl(d.sym).dist;
        int owner = -1;
        bool unique = true;
        s.forEach([&](const Point& p) {
          int o = dd.ownerOf(p);
          if (owner < 0) owner = o;
          else if (o != owner) unique = false;
        });
        XDP_CHECK(unique, "bound destination section spans processors");
        return std::vector<int>{owner};
      }
    }
    return std::nullopt;
  }

  Interpreter& in_;
  rt::Proc& proc_;
  InterpStats& stats_;
  ckpt::Controller* ctrl_;  ///< null when checkpointing is off
  int pid_;
  std::vector<Value> env_;
  std::vector<std::uint8_t> def_;
  std::vector<Frame> frames_;  ///< live execution cursor (ctrl_ only)
  std::vector<Frame> resume_;  ///< saved path being re-entered
  int ruleDepth_ = 0;
};

// --- scalar interning ------------------------------------------------------

int Interpreter::internName(const std::string& n) {
  auto [it, fresh] =
      scalarIdByName_.emplace(n, static_cast<int>(scalarNames_.size()));
  if (fresh) scalarNames_.push_back(n);
  return it->second;
}

int Interpreter::scalarIdOfExpr(const il::Expr* e) const {
  auto it = exprScalarIds_.find(e);
  XDP_CHECK(it != exprScalarIds_.end(),
            "scalar reference not interned (expression is not part of the "
            "interpreted program)");
  return it->second;
}

int Interpreter::scalarIdOfStmt(const il::Stmt* s) const {
  auto it = stmtScalarIds_.find(s);
  XDP_CHECK(it != stmtScalarIds_.end(),
            "scalar binding not interned (statement is not part of the "
            "interpreted program)");
  return it->second;
}

void Interpreter::internScalars() {
  // Walk the (immutable, possibly DAG-shaped) program once; `seen` keeps
  // shared subtrees from being walked repeatedly.
  std::unordered_set<const void*> seen;

  std::function<void(const ExprPtr&)> walkExpr;
  std::function<void(const SectionExprPtr&)> walkSec;
  std::function<void(const StmtPtr&)> walkStmt;

  walkExpr = [&](const ExprPtr& e) {
    if (e == nullptr || !seen.insert(e.get()).second) return;
    if (e->kind == ExprKind::ScalarRef)
      exprScalarIds_[e.get()] = internName(e->name);
    walkExpr(e->lhs);
    walkExpr(e->rhs);
    walkSec(e->section);
  };

  walkSec = [&](const SectionExprPtr& se) {
    if (se == nullptr || !seen.insert(se.get()).second) return;
    for (const auto& t : se->dims) {
      walkExpr(t.lb);
      walkExpr(t.ub);
      walkExpr(t.stride);
    }
    walkExpr(se->pid);
    walkSec(se->a);
    walkSec(se->b);
  };

  walkStmt = [&](const StmtPtr& s) {
    if (s == nullptr || !seen.insert(s.get()).second) return;
    if (s->kind == StmtKind::ScalarAssign || s->kind == StmtKind::For)
      stmtScalarIds_[s.get()] = internName(s->name);
    for (const auto& c : s->stmts) walkStmt(c);
    walkExpr(s->value);
    walkSec(s->lhs);
    walkExpr(s->rhs);
    walkExpr(s->lb);
    walkExpr(s->ub);
    walkExpr(s->step);
    walkStmt(s->body);
    walkExpr(s->rule);
    walkSec(s->sec2);
    for (const auto& e : s->dest.pids) walkExpr(e);
    walkSec(s->dest.section);
    walkExpr(s->bindHint);
    for (const auto& [sym, se] : s->args) walkSec(se);
  };

  walkStmt(prog_.body);
}

Interpreter::Interpreter(il::Program prog, rt::RuntimeOptions opts,
                         InterpOptions iopts)
    : prog_(std::move(prog)),
      rt_(prog_.nprocs, opts),
      iopts_(iopts),
      stats_(static_cast<std::size_t>(prog_.nprocs)) {
  for (const auto& a : prog_.arrays)
    rt_.declareArray(a.name, a.type, a.global, a.dist, a.segShape);
  internScalars();
}

Interpreter::~Interpreter() = default;

void Interpreter::computeBlockingStmts() {
  if (blockingComputed_) return;
  blockingComputed_ = true;

  // Memoized await-search over the (possibly DAG-shaped) expression
  // forest; `seen` bounds the statement walk the same way internScalars'
  // does.
  std::unordered_map<const void*, bool> memo;
  std::unordered_set<const void*> seen;

  std::function<bool(const ExprPtr&)> exprAwaits;
  std::function<bool(const SectionExprPtr&)> secAwaits;

  exprAwaits = [&](const ExprPtr& e) -> bool {
    if (e == nullptr) return false;
    auto it = memo.find(e.get());
    if (it != memo.end()) return it->second;
    const bool b = e->kind == ExprKind::Await || exprAwaits(e->lhs) ||
                   exprAwaits(e->rhs) || secAwaits(e->section);
    memo[e.get()] = b;
    return b;
  };
  secAwaits = [&](const SectionExprPtr& se) -> bool {
    if (se == nullptr) return false;
    auto it = memo.find(se.get());
    if (it != memo.end()) return it->second;
    bool b = exprAwaits(se->pid) || secAwaits(se->a) || secAwaits(se->b);
    for (const auto& t : se->dims) {
      b = b || exprAwaits(t.lb) || exprAwaits(t.ub) || exprAwaits(t.stride);
    }
    memo[se.get()] = b;
    return b;
  };

  std::function<void(const StmtPtr&)> walk = [&](const StmtPtr& s) {
    if (s == nullptr || !seen.insert(s.get()).second) return;
    bool blocking = false;
    switch (s->kind) {
      case StmtKind::SendData:  // rendezvous sends can block on delivery
      case StmtKind::RecvData:  // awaits destination accessibility
      case StmtKind::SendOwn:   // awaits the outgoing section
      case StmtKind::RecvOwn:
      case StmtKind::Await:
      case StmtKind::Kernel:  // opaque: may transfer, await, or barrier
        blocking = true;
        break;
      default:
        break;
    }
    blocking = blocking || exprAwaits(s->value) || secAwaits(s->lhs) ||
               exprAwaits(s->rhs) || exprAwaits(s->lb) || exprAwaits(s->ub) ||
               exprAwaits(s->step) || exprAwaits(s->rule) ||
               secAwaits(s->sec2) || exprAwaits(s->bindHint) ||
               secAwaits(s->dest.section);
    for (const auto& e : s->dest.pids) blocking = blocking || exprAwaits(e);
    for (const auto& [sym, se] : s->args) blocking = blocking || secAwaits(se);
    if (blocking) blockingStmts_.insert(s.get());
    for (const auto& c : s->stmts) walk(c);
    walk(s->body);
  };
  walk(prog_.body);
}

void Interpreter::registerKernel(std::string name, KernelFn fn) {
  kernels_[std::move(name)] = std::move(fn);
}

void Interpreter::run() {
  XDP_CHECK(prog_.body != nullptr, "program has no body");
  if (iopts_.backend == Backend::Bytecode && module_ == nullptr) {
    module_ =
        std::make_unique<bc::Module>(bc::compile(il::flat::flatten(prog_)));
  }
  ckpt::Controller* ctrl = rt_.ckptController();
  if (ctrl != nullptr && iopts_.backend == Backend::TreeWalk)
    computeBlockingStmts();
  rt_.run([&](rt::Proc& proc) {
    const int pid = proc.mypid();
    InterpStats& st = stats_[static_cast<std::size_t>(pid)];
    if (iopts_.backend == Backend::Bytecode) {
      bc::execute(*module_, proc, st, iopts_, kernels_, ctrl);
      return;
    }
    if (ctrl != nullptr && ctrl->hasResume(pid)) {
      // A recovery round: overwrite the partial counters of the crashed
      // round with the snapshot's, then re-enter at the saved cursor.
      ckpt::ContImage img = ctrl->takeResume(pid);
      if (img.finished) return;
      st = statsFromArray(img.stats);
      Exec ex(*this, proc, st);
      if (img.engine == static_cast<std::uint8_t>(ckpt::ContEngine::Tree)) {
        ex.runFrom(prog_.body, img);
      } else if (img.engine ==
                 static_cast<std::uint8_t>(ckpt::ContEngine::None)) {
        ex.exec(prog_.body);  // genesis snapshot: restart from the top
      } else {
        throw ckpt::CkptError(
            "tree walker cannot resume a continuation captured by another "
            "engine");
      }
      return;
    }
    Exec ex(*this, proc, st);
    ex.exec(prog_.body);
  });
  // The run's tables are fresh per run(), so their lifetime hit counts are
  // exactly this run's contribution.
  for (int pid = 0; pid < prog_.nprocs; ++pid) {
    stats_[static_cast<std::size_t>(pid)].guardCacheHits +=
        rt_.table(pid).cacheStats().hits;
  }
}

InterpStats Interpreter::stats(int pid) const {
  XDP_CHECK(pid >= 0 && pid < prog_.nprocs, "bad pid");
  return stats_[static_cast<std::size_t>(pid)];
}

InterpStats Interpreter::totalStats() const {
  InterpStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

void Interpreter::resetStats() {
  for (auto& s : stats_) s = InterpStats{};
}

}  // namespace xdp::interp
