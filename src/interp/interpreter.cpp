#include "xdp/interp/interpreter.hpp"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "xdp/support/check.hpp"

namespace xdp::interp {
namespace {

using il::DestSpec;
using il::Expr;
using il::ExprKind;
using il::ExprPtr;
using il::SecExprKind;
using il::SectionExpr;
using il::SectionExprPtr;
using il::Stmt;
using il::StmtKind;
using il::StmtPtr;
using sec::Point;
using sec::Triplet;

/// Thrown (inside compute-rule evaluation only) when the rule references
/// the value of an unowned section — the rule then evaluates to false.
struct UnownedRef {};

using Value = std::variant<Index, double, bool>;

Index asInt(const Value& v) {
  if (std::holds_alternative<Index>(v)) return std::get<Index>(v);
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v) ? 1 : 0;
  double d = std::get<double>(v);
  Index i = static_cast<Index>(std::llround(d));
  XDP_CHECK(static_cast<double>(i) == d, "non-integral value in index context");
  return i;
}

double asReal(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<Index>(v))
    return static_cast<double>(std::get<Index>(v));
  return std::get<bool>(v) ? 1.0 : 0.0;
}

bool asBool(const Value& v) {
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v);
  if (std::holds_alternative<Index>(v)) return std::get<Index>(v) != 0;
  return std::get<double>(v) != 0.0;
}

}  // namespace

InterpStats& InterpStats::operator+=(const InterpStats& o) {
  rulesEvaluated += o.rulesEvaluated;
  rulesTrue += o.rulesTrue;
  stmtsExecuted += o.stmtsExecuted;
  loopIterations += o.loopIterations;
  elemAssigns += o.elemAssigns;
  kernelCalls += o.kernelCalls;
  return *this;
}

/// Per-processor executor.
class Exec {
 public:
  Exec(Interpreter& in, rt::Proc& proc, InterpStats& stats)
      : in_(in), proc_(proc), stats_(stats) {}

  void exec(const StmtPtr& s) {
    XDP_CHECK(s != nullptr, "executing null statement");
    stats_.stmtsExecuted += 1;
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& c : s->stmts) exec(c);
        return;
      case StmtKind::ScalarAssign:
        env_[s->name] = evalValue(s->value);
        return;
      case StmtKind::ElemAssign: {
        stats_.elemAssigns += 1;
        Section pt = evalSection(s->sym, s->lhs);
        XDP_CHECK(pt.count() == 1, "element assignment needs a single point");
        double v = asReal(evalValue(s->rhs));
        writeReal(s->sym, pt, v);
        return;
      }
      case StmtKind::For: {
        Index lb = asInt(evalValue(s->lb));
        Index ub = asInt(evalValue(s->ub));
        Index step = s->step ? asInt(evalValue(s->step)) : 1;
        XDP_CHECK(step > 0, "loop step must be positive");
        for (Index i = lb; i <= ub; i += step) {
          stats_.loopIterations += 1;
          env_[s->name] = i;
          exec(s->body);
        }
        return;
      }
      case StmtKind::Guarded: {
        stats_.rulesEvaluated += 1;
        if (!evalRule(s->rule)) return;
        stats_.rulesTrue += 1;
        exec(s->body);
        return;
      }
      case StmtKind::SendData: {
        Section e = evalSection(s->sym, s->lhs);
        if (e.empty()) return;
        proc_.send(s->sym, e, resolveDest(s->dest));
        return;
      }
      case StmtKind::RecvData: {
        Section dst = evalSection(s->sym, s->lhs);
        Section name = evalSection(s->sym2, s->sec2);
        if (dst.empty() && name.empty()) return;
        proc_.recv(s->sym, dst, s->sym2, name);
        return;
      }
      case StmtKind::SendOwn: {
        Section e = evalSection(s->sym, s->lhs);
        if (e.empty()) return;
        proc_.sendOwnership(s->sym, e, s->withValue, resolveDest(s->dest));
        return;
      }
      case StmtKind::RecvOwn: {
        Section u = evalSection(s->sym, s->lhs);
        if (u.empty()) return;
        proc_.recvOwnership(s->sym, u, s->withValue);
        return;
      }
      case StmtKind::Await: {
        Section s2 = evalSection(s->sym, s->lhs);
        if (s2.empty()) return;
        proc_.await(s->sym, s2);
        return;
      }
      case StmtKind::LocalCopy: {
        Section dst = evalSection(s->sym, s->lhs);
        Section src = evalSection(s->sym2, s->sec2);
        if (dst.empty() && src.empty()) return;
        XDP_CHECK(dst.count() == src.count(), "local copy size mismatch");
        const auto type = proc_.table().decl(s->sym).type;
        XDP_CHECK(type == proc_.table().decl(s->sym2).type,
                  "local copy type mismatch");
        std::vector<std::byte> buf(
            static_cast<std::size_t>(src.count()) * rt::elemSize(type));
        proc_.table().readElems(s->sym2, src, buf.data());
        proc_.table().writeElems(s->sym, dst, buf.data());
        return;
      }
      case StmtKind::Kernel: {
        stats_.kernelCalls += 1;
        auto it = in_.kernels_.find(s->name);
        XDP_CHECK(it != in_.kernels_.end(),
                  "unregistered kernel: " + s->name);
        std::vector<std::pair<int, Section>> args;
        for (const auto& [sym, se] : s->args)
          args.emplace_back(sym, evalSection(sym, se));
        it->second(proc_, args);
        return;
      }
      case StmtKind::ComputeCost:
        proc_.compute(asReal(evalValue(s->value)));
        return;
    }
  }

 private:
  // --- expression evaluation -------------------------------------------

  bool evalRule(const ExprPtr& e) {
    ruleDepth_ += 1;
    bool result;
    try {
      result = asBool(evalValue(e));
    } catch (const UnownedRef&) {
      result = false;  // paper 2.4: unowned value reference => rule false
    }
    ruleDepth_ -= 1;
    return result;
  }

  Value evalValue(const ExprPtr& e) {
    XDP_CHECK(e != nullptr, "evaluating null expression");
    switch (e->kind) {
      case ExprKind::IntConst:
        return e->intVal;
      case ExprKind::RealConst:
        return e->realVal;
      case ExprKind::ScalarRef: {
        auto it = env_.find(e->name);
        XDP_CHECK(it != env_.end(),
                  "use of undefined universal scalar: " + e->name);
        return it->second;
      }
      case ExprKind::MyPid:
        return static_cast<Index>(proc_.mypid());
      case ExprKind::NProcs:
        return static_cast<Index>(proc_.nprocs());
      case ExprKind::Bin:
        return evalBin(e);
      case ExprKind::Neg: {
        Value v = evalValue(e->lhs);
        if (std::holds_alternative<Index>(v)) return -std::get<Index>(v);
        return -asReal(v);
      }
      case ExprKind::Not:
        return !asBool(evalValue(e->lhs));
      case ExprKind::Elem: {
        Section pt = evalSection(e->sym, e->section);
        XDP_CHECK(pt.count() == 1, "element reference needs a single point");
        // Inside a compute rule, an unowned value reference makes the
        // whole rule false instead of being an error.
        if (ruleDepth_ > 0 && !proc_.iown(e->sym, pt)) throw UnownedRef{};
        return readReal(e->sym, pt);
      }
      case ExprKind::Iown:
        return proc_.iown(e->sym, evalSection(e->sym, e->section));
      case ExprKind::Accessible:
        return proc_.accessible(e->sym, evalSection(e->sym, e->section));
      case ExprKind::Await:
        return proc_.await(e->sym, evalSection(e->sym, e->section));
      case ExprKind::MyLb:
        return proc_.mylb(e->sym, evalSection(e->sym, e->section), e->dim);
      case ExprKind::MyUb:
        return proc_.myub(e->sym, evalSection(e->sym, e->section), e->dim);
      case ExprKind::SecNonEmpty:
        return !evalSection(e->sym, e->section).empty();
    }
    XDP_CHECK(false, "unreachable expression kind");
    return Index{0};
  }

  Value evalBin(const ExprPtr& e) {
    using il::BinOp;
    // Short-circuit logicals first.
    if (e->op == BinOp::And) {
      if (!asBool(evalValue(e->lhs))) return false;
      return asBool(evalValue(e->rhs));
    }
    if (e->op == BinOp::Or) {
      if (asBool(evalValue(e->lhs))) return true;
      return asBool(evalValue(e->rhs));
    }
    Value a = evalValue(e->lhs);
    Value b = evalValue(e->rhs);
    const bool bothInt =
        std::holds_alternative<Index>(a) && std::holds_alternative<Index>(b);
    switch (e->op) {
      case BinOp::Add:
        return bothInt ? Value(std::get<Index>(a) + std::get<Index>(b))
                       : Value(asReal(a) + asReal(b));
      case BinOp::Sub:
        return bothInt ? Value(std::get<Index>(a) - std::get<Index>(b))
                       : Value(asReal(a) - asReal(b));
      case BinOp::Mul:
        return bothInt ? Value(std::get<Index>(a) * std::get<Index>(b))
                       : Value(asReal(a) * asReal(b));
      case BinOp::Div:
        if (bothInt) {
          XDP_CHECK(std::get<Index>(b) != 0, "integer division by zero");
          return std::get<Index>(a) / std::get<Index>(b);
        }
        return asReal(a) / asReal(b);
      case BinOp::Mod:
        XDP_CHECK(bothInt, "mod requires integer operands");
        XDP_CHECK(std::get<Index>(b) != 0, "mod by zero");
        return std::get<Index>(a) % std::get<Index>(b);
      case BinOp::Lt:
        return asReal(a) < asReal(b);
      case BinOp::Le:
        return asReal(a) <= asReal(b);
      case BinOp::Gt:
        return asReal(a) > asReal(b);
      case BinOp::Ge:
        return asReal(a) >= asReal(b);
      case BinOp::Eq:
        return asReal(a) == asReal(b);
      case BinOp::Ne:
        return asReal(a) != asReal(b);
      case BinOp::Min:
        return bothInt ? Value(std::min(std::get<Index>(a), std::get<Index>(b)))
                       : Value(std::min(asReal(a), asReal(b)));
      case BinOp::Max:
        return bothInt ? Value(std::max(std::get<Index>(a), std::get<Index>(b)))
                       : Value(std::max(asReal(a), asReal(b)));
      case BinOp::And:
      case BinOp::Or:
        break;  // handled above
    }
    XDP_CHECK(false, "unreachable binop");
    return Index{0};
  }

  // --- section evaluation ------------------------------------------------

  Section emptyOfRank(int rank) {
    std::vector<Triplet> dims;
    dims.emplace_back();  // one empty triplet makes the section empty
    for (int d = 1; d < rank; ++d) dims.emplace_back(0, 0);
    return rank == 0 ? Section{Triplet()} : Section(dims);
  }

  Section evalSection(int sym, const SectionExprPtr& se) {
    XDP_CHECK(se != nullptr, "evaluating null section expression");
    switch (se->kind) {
      case SecExprKind::Literal: {
        std::vector<Triplet> dims;
        for (const auto& t : se->dims) {
          Index lb = asInt(evalValue(t.lb));
          Index ub = t.ub ? asInt(evalValue(t.ub)) : lb;
          Index stride = t.stride ? asInt(evalValue(t.stride)) : 1;
          dims.emplace_back(lb, ub, stride);
        }
        return Section(dims);
      }
      case SecExprKind::LocalPart:
        return partOf(se->sym >= 0 ? se->sym : sym, proc_.mypid(),
                      se->distOverride);
      case SecExprKind::OwnerPart:
        return partOf(se->sym >= 0 ? se->sym : sym,
                      static_cast<int>(asInt(evalValue(se->pid))),
                      se->distOverride);
      case SecExprKind::Intersect: {
        Section a = evalSection(sym, se->a);
        Section b = evalSection(sym, se->b);
        if (a.empty() || b.empty() || a.rank() != b.rank())
          return emptyOfRank(a.rank());
        return Section::intersect(a, b);
      }
    }
    XDP_CHECK(false, "unreachable section expression kind");
    return Section{};
  }

  Section partOf(int sym, int pid,
                 const std::optional<dist::Distribution>& over) {
    const dist::Distribution& d =
        over ? *over : proc_.table().decl(sym).dist;
    sec::RegionList part = d.localPart(pid);
    if (part.empty()) return emptyOfRank(d.rank());
    XDP_CHECK(part.sections().size() == 1,
              "partition is not a single section (CYCLIC(k) local parts "
              "cannot be named by one section expression)");
    return part.sections()[0];
  }

  // --- typed element access ----------------------------------------------

  double readReal(int sym, const Section& pt) {
    const auto type = proc_.table().decl(sym).type;
    if (type == rt::ElemType::F64) return proc_.read<double>(sym, pt)[0];
    if (type == rt::ElemType::I64)
      return static_cast<double>(proc_.read<std::int64_t>(sym, pt)[0]);
    XDP_CHECK(false, "IL element access supports f64/i64 (use kernels for "
                     "complex data)");
    return 0.0;
  }

  void writeReal(int sym, const Section& pt, double v) {
    const auto type = proc_.table().decl(sym).type;
    if (type == rt::ElemType::F64) {
      proc_.set<double>(sym, pt.points()[0], v);
      return;
    }
    if (type == rt::ElemType::I64) {
      proc_.set<std::int64_t>(sym, pt.points()[0],
                              static_cast<std::int64_t>(std::llround(v)));
      return;
    }
    XDP_CHECK(false, "IL element access supports f64/i64");
  }

  // --- destinations --------------------------------------------------------

  std::optional<std::vector<int>> resolveDest(const DestSpec& d) {
    switch (d.kind) {
      case DestSpec::Kind::None:
        return std::nullopt;
      case DestSpec::Kind::Pids: {
        std::vector<int> pids;
        for (const auto& e : d.pids)
          pids.push_back(static_cast<int>(asInt(evalValue(e))));
        return pids;
      }
      case DestSpec::Kind::OwnerOf: {
        Section s = evalSection(d.sym, d.section);
        XDP_CHECK(!s.empty(), "owner-of an empty section");
        const dist::Distribution& dd =
            d.distOverride ? *d.distOverride : proc_.table().decl(d.sym).dist;
        int owner = -1;
        bool unique = true;
        s.forEach([&](const Point& p) {
          int o = dd.ownerOf(p);
          if (owner < 0) owner = o;
          else if (o != owner) unique = false;
        });
        XDP_CHECK(unique, "bound destination section spans processors");
        return std::vector<int>{owner};
      }
    }
    return std::nullopt;
  }

  Interpreter& in_;
  rt::Proc& proc_;
  InterpStats& stats_;
  std::unordered_map<std::string, Value> env_;
  int ruleDepth_ = 0;
};

Interpreter::Interpreter(il::Program prog, rt::RuntimeOptions opts)
    : prog_(std::move(prog)),
      rt_(prog_.nprocs, opts),
      stats_(static_cast<std::size_t>(prog_.nprocs)) {
  for (const auto& a : prog_.arrays)
    rt_.declareArray(a.name, a.type, a.global, a.dist, a.segShape);
}

void Interpreter::registerKernel(std::string name, KernelFn fn) {
  kernels_[std::move(name)] = std::move(fn);
}

void Interpreter::run() {
  XDP_CHECK(prog_.body != nullptr, "program has no body");
  rt_.run([&](rt::Proc& proc) {
    Exec ex(*this, proc, stats_[static_cast<std::size_t>(proc.mypid())]);
    ex.exec(prog_.body);
  });
}

InterpStats Interpreter::stats(int pid) const {
  XDP_CHECK(pid >= 0 && pid < prog_.nprocs, "bad pid");
  return stats_[static_cast<std::size_t>(pid)];
}

InterpStats Interpreter::totalStats() const {
  InterpStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

void Interpreter::resetStats() {
  for (auto& s : stats_) s = InterpStats{};
}

}  // namespace xdp::interp
