#include "xdp/net/transport.hpp"

#include <algorithm>
#include <limits>

#include "xdp/support/check.hpp"

namespace xdp::net {

Transport::~Transport() = default;

const char* transportKindName(TransportKind k) {
  switch (k) {
    case TransportKind::Locked:
      return "locked";
    case TransportKind::Ring:
      return "ring";
  }
  return "?";
}

std::optional<TransportKind> parseTransportKind(std::string_view s) {
  if (s == "locked") return TransportKind::Locked;
  if (s == "ring") return TransportKind::Ring;
  return std::nullopt;
}

namespace {

/// The original backend: decline every submission so the Fabric delivers
/// inline under the destination endpoint's lock, exactly as before the
/// transport split.
class LockedTransport final : public Transport {
 public:
  TransportKind kind() const noexcept override {
    return TransportKind::Locked;
  }
  bool trySubmit(int, int, Message&&) override { return false; }
  std::size_t reap(int, std::size_t, Sink&) override { return 0; }
  std::size_t discardAll() override { return 0; }
  std::size_t backlog(int) const noexcept override { return 0; }
  std::size_t totalBacklog() const noexcept override { return 0; }
};

std::uint32_t ceilPow2(std::uint32_t v) {
  std::uint32_t c = 2;
  while (c < v && c < (1u << 30)) c <<= 1;
  return c;
}

class RingTransport final : public Transport {
 public:
  RingTransport(int nprocs, const TransportOptions& opts)
      : nprocs_(static_cast<std::size_t>(nprocs)),
        capacity_(ceilPow2(std::max<std::uint32_t>(opts.ringSlots, 2))),
        dsts_(nprocs_) {
    for (DstState& d : dsts_) {
      d.rings = std::make_unique<std::atomic<Ring*>[]>(nprocs_);
      for (std::size_t s = 0; s < nprocs_; ++s)
        d.rings[s].store(nullptr, std::memory_order_relaxed);
      d.active = std::make_unique<std::uint32_t[]>(nprocs_);
    }
  }

  ~RingTransport() override {
    for (DstState& d : dsts_)
      for (std::size_t s = 0; s < nprocs_; ++s)
        delete d.rings[s].load(std::memory_order_relaxed);
  }

  TransportKind kind() const noexcept override { return TransportKind::Ring; }

  bool trySubmit(int src, int dst, Message&& msg) override {
    DstState& d = dsts_[static_cast<std::size_t>(dst)];
    Ring* r = d.rings[static_cast<std::size_t>(src)].load(
        std::memory_order_acquire);
    if (r == nullptr) r = addRing(d, static_cast<std::size_t>(src));
    const std::uint64_t t = r->tail.load(std::memory_order_relaxed);
    // Full check against the consumer's published head; acquire pairs with
    // the consumer's head release so the slot we are about to overwrite
    // has really been vacated.
    if (t - r->head.load(std::memory_order_acquire) >= capacity_)
      return false;
    r->slots[t & r->mask].msg = std::move(msg);
    // Backlog rises before the tail publish — see the ordering note in
    // transport.hpp (keeps the reap-side decrement from underflowing).
    d.backlog.fetch_add(1, std::memory_order_relaxed);
    r->tail.store(t + 1, std::memory_order_release);
    return true;
  }

  std::size_t reap(int dst, std::size_t max, Sink& sink) override {
    DstState& d = dsts_[static_cast<std::size_t>(dst)];
    if (d.backlog.load(std::memory_order_acquire) == 0) return 0;
    const std::uint32_t nActive = d.nActive.load(std::memory_order_acquire);
    std::size_t n = 0;
    // Round-robin over the producer rings so a chatty source cannot starve
    // the others when `max` binds. sweepStart is consumer state: guarded by
    // the caller's consumer context, not by any atomic.
    for (std::uint32_t k = 0; k < nActive && n < max; ++k) {
      const std::uint32_t slot = (d.sweepStart + k) % nActive;
      Ring* r =
          d.rings[d.active[slot]].load(std::memory_order_acquire);
      std::uint64_t h = r->head.load(std::memory_order_relaxed);
      const std::uint64_t t = r->tail.load(std::memory_order_acquire);
      while (h != t && n < max) {
        sink(std::move(r->slots[h & r->mask].msg));
        ++h;
        ++n;
      }
      r->head.store(h, std::memory_order_release);
    }
    if (n != 0) {
      if (nActive != 0) d.sweepStart = (d.sweepStart + 1) % nActive;
      d.backlog.fetch_sub(n, std::memory_order_release);
    }
    return n;
  }

  std::size_t discardAll() override {
    struct Discard final : Sink {
      void operator()(Message&&) override {}
    } sink;
    std::size_t n = 0;
    for (std::size_t dst = 0; dst < nprocs_; ++dst)
      n += reap(static_cast<int>(dst),
                std::numeric_limits<std::size_t>::max(), sink);
    return n;
  }

  std::size_t backlog(int dst) const noexcept override {
    return dsts_[static_cast<std::size_t>(dst)].backlog.load(
        std::memory_order_acquire);
  }

  std::size_t totalBacklog() const noexcept override {
    std::size_t n = 0;
    for (const DstState& d : dsts_)
      n += d.backlog.load(std::memory_order_acquire);
    return n;
  }

 private:
  /// One slot per message; cache-line-aligned so neighbouring slots never
  /// share a line between the producer writing slot t and the consumer
  /// reading slot h.
  struct alignas(64) Slot {
    Message msg;
  };

  /// SPSC ring for one (src, dst) pair. head (consumer cursor) and tail
  /// (producer cursor) live on separate cache lines so the two sides never
  /// false-share.
  struct Ring {
    explicit Ring(std::uint32_t cap) : mask(cap - 1), slots(cap) {}
    const std::uint64_t mask;
    std::vector<Slot> slots;
    alignas(64) std::atomic<std::uint64_t> head{0};
    alignas(64) std::atomic<std::uint64_t> tail{0};
  };

  /// Per-destination mailbox: lazily created per-producer rings (allocating
  /// P² rings up front would be prohibitive at P=256 and the communication
  /// graph of real programs is sparse) plus the active-producer list the
  /// consumer sweeps.
  struct alignas(64) DstState {
    std::unique_ptr<std::atomic<Ring*>[]> rings;  ///< by src; null = none yet
    std::unique_ptr<std::uint32_t[]> active;      ///< src ids, creation order
    std::atomic<std::uint32_t> nActive{0};
    std::mutex registerMu;  ///< serializes ring creation only
    /// Queued-message estimate (see the ordering note in transport.hpp).
    std::atomic<std::uint64_t> backlog{0};
    std::uint32_t sweepStart = 0;  ///< consumer-context round-robin cursor
  };

  Ring* addRing(DstState& d, std::size_t src) {
    std::lock_guard lk(d.registerMu);
    Ring* r = d.rings[src].load(std::memory_order_acquire);
    if (r != nullptr) return r;  // lost the creation race
    r = new Ring(capacity_);
    const std::uint32_t idx = d.nActive.load(std::memory_order_relaxed);
    d.active[idx] = static_cast<std::uint32_t>(src);
    // Publish the ring pointer before the count: a consumer that reads the
    // new count (acquire) sees both the active[] entry and the ring.
    d.rings[src].store(r, std::memory_order_release);
    d.nActive.store(idx + 1, std::memory_order_release);
    return r;
  }

  const std::size_t nprocs_;
  const std::uint64_t capacity_;
  std::vector<DstState> dsts_;
};

}  // namespace

std::unique_ptr<Transport> makeTransport(int nprocs,
                                         const TransportOptions& opts) {
  XDP_CHECK(nprocs >= 1, "transport needs at least one endpoint");
  switch (opts.kind) {
    case TransportKind::Locked:
      return std::make_unique<LockedTransport>();
    case TransportKind::Ring:
      return std::make_unique<RingTransport>(nprocs, opts);
  }
  XDP_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace xdp::net
