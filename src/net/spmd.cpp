#include "xdp/net/spmd.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "xdp/support/check.hpp"

namespace xdp::net {

void runSpmd(int nprocs, const std::function<void(int pid)>& node) {
  XDP_CHECK(nprocs >= 1, "runSpmd needs at least one processor");
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    threads.emplace_back([&, p] {
      try {
        node(p);
      } catch (...) {
        errors[static_cast<std::size_t>(p)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace xdp::net
