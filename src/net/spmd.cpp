#include "xdp/net/spmd.hpp"

#include <exception>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "xdp/support/check.hpp"

namespace xdp::net {

void runSpmd(int nprocs, const std::function<void(int pid)>& node) {
  XDP_CHECK(nprocs >= 1, "runSpmd needs at least one processor");
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  threads.reserve(static_cast<std::size_t>(nprocs));
  // Spawn-failure safety: if creating thread p fails (resource
  // exhaustion under heavy multi-session load), the failure must be
  // *collected* like any node failure — never propagated past joinable
  // threads, where the vector's destructor would std::terminate and race
  // the teardown of peers that may already have crashed. Unspawned nodes
  // record the spawn error; everything that did start is always joined.
  for (int p = 0; p < nprocs; ++p) {
    try {
      threads.emplace_back([&, p] {
        try {
          node(p);
        } catch (...) {
          errors[static_cast<std::size_t>(p)] = std::current_exception();
        }
      });
    } catch (...) {
      for (int q = p; q < nprocs; ++q)
        errors[static_cast<std::size_t>(q)] = std::current_exception();
      break;
    }
  }
  for (auto& t : threads) t.join();

  std::vector<std::pair<int, std::exception_ptr>> fails;
  for (int p = 0; p < nprocs; ++p) {
    if (errors[static_cast<std::size_t>(p)])
      fails.emplace_back(p, errors[static_cast<std::size_t>(p)]);
  }
  if (fails.empty()) return;
  if (fails.size() == 1) std::rethrow_exception(fails[0].second);

  // Several nodes failed. Aggregate every failure into one error so no
  // diagnostic is lost, and keep the most specific common type: a
  // watchdog-diagnosed deadlock dominates (its report travels along),
  // otherwise uniform usage errors stay usage errors.
  std::ostringstream os;
  os << fails.size() << " of " << nprocs << " SPMD nodes failed:";
  bool sawDeadlock = false;
  bool allUsage = true;
  std::string deadlockReport;
  for (const auto& [pid, err] : fails) {
    os << "\n  p" << pid << ": ";
    try {
      std::rethrow_exception(err);
    } catch (const DeadlockError& e) {
      os << e.summary();
      if (!sawDeadlock) deadlockReport = e.report();
      sawDeadlock = true;
      allUsage = false;
    } catch (const UsageError& e) {
      os << e.what();
    } catch (const std::exception& e) {
      os << e.what();
      allUsage = false;
    } catch (...) {
      os << "unknown error";
      allUsage = false;
    }
  }
  if (sawDeadlock) throw DeadlockError(os.str(), std::move(deadlockReport));
  if (allUsage) throw UsageError(os.str());
  throw XdpError(os.str());
}

}  // namespace xdp::net
