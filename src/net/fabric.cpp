#include "xdp/net/fabric.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

#include "xdp/net/wire.hpp"
#include "xdp/support/check.hpp"

// Rendezvous protocol (two locks, never held together)
// ----------------------------------------------------
// The matcher lock serializes the *pairing decision* for unspecified
// sends; an endpoint lock serializes *completion* at that endpoint. A
// matching message/receive pair can therefore never be lost:
//
//   * postReceive first posts the receive at its endpoint (under the
//     endpoint lock), then — under the matcher lock — either registers
//     interest or takes a parked message; it never leaves the matcher
//     critical section unpublished and unmatched.
//   * a rendezvous send — under the matcher lock — either takes a
//     registered interest or parks its message; same invariant.
//
// Because completion happens after the pairing decision, an interest
// entry can be *stale*: the receive it names may have been completed by
// a direct send in between. Staleness is detected when the completion
// step finds no pending receive with the entry's id; the sender then
// simply retries the next matching entry (and the direct-delivery path
// cancels the stale interest itself, so entries do not accumulate).
//
// Exactly-once for fault-injected duplicates moves to a leaf lock
// (dupMu_): the twin-suppression test-and-mark runs at every completion
// attempt and at every park, so no interleaving can complete both copies
// or strand a suppressed copy in a queue (a parked copy whose twin
// completes afterwards is purged under the queue's own lock, which the
// purge acquires after the completion marked the pair done).

namespace xdp::net {

const char* transferKindName(TransferKind k) {
  switch (k) {
    case TransferKind::Data:
      return "data";
    case TransferKind::Ownership:
      return "ownership";
    case TransferKind::OwnershipAndValue:
      return "ownership+value";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Name& n) {
  return os << "sym#" << n.symbol << n.section;
}

NetStats& NetStats::operator+=(const NetStats& o) {
  messagesSent += o.messagesSent;
  bytesSent += o.bytesSent;
  messagesReceived += o.messagesReceived;
  bytesReceived += o.bytesReceived;
  rendezvousSends += o.rendezvousSends;
  directSends += o.directSends;
  ownershipTransfers += o.ownershipTransfers;
  unexpectedMessages += o.unexpectedMessages;
  return *this;
}

Fabric::Fabric(int nprocs, CostModel model, TransportOptions transport)
    : nprocs_(nprocs),
      model_(model),
      transport_(makeTransport(std::max(nprocs, 1), transport)),
      ringActive_(transport_->kind() == TransportKind::Ring),
      reapBatch_(std::max<std::uint32_t>(transport.reapBatch, 1)),
      eps_(static_cast<std::size_t>(nprocs)) {
  XDP_CHECK(nprocs >= 1, "fabric needs at least one endpoint");
  if (auto plan = currentGlobalFaultPlan()) {
    injector_ = std::make_unique<FaultInjector>(*plan, nprocs_);
    faultsActive_.store(true, std::memory_order_release);
  }
}

Fabric::~Fabric() = default;

void Fabric::checkPid(int pid, const char* what) const {
  if (pid < 0 || pid >= nprocs_) {
    std::ostringstream os;
    os << what << ": pid " << pid << " out of range [0, " << nprocs_ << ")";
    XDP_USAGE_FAIL(os.str());
  }
}

double Fabric::clock(int pid) const {
  checkPid(pid, "clock");
  const Endpoint& e = ep(pid);
  std::lock_guard lk(e.mu);
  return e.clock;
}

void Fabric::advance(int pid, double dt) {
  checkPid(pid, "advance");
  Endpoint& e = ep(pid);
  std::lock_guard lk(e.mu);
  e.clock += dt;
}

void Fabric::syncClock(int pid, double t) {
  checkPid(pid, "syncClock");
  Endpoint& e = ep(pid);
  std::lock_guard lk(e.mu);
  e.clock = std::max(e.clock, t);
}

double Fabric::makespan() const {
  double m = 0.0;
  for (const auto& e : eps_) {
    std::lock_guard lk(e.mu);
    m = std::max(m, e.clock);
  }
  return m;
}

void Fabric::resetClocks() {
  for (auto& e : eps_) {
    std::lock_guard lk(e.mu);
    e.clock = 0.0;
  }
}

bool Fabric::matches(const Name& a, TransferKind ka, const Name& b,
                     TransferKind kb) {
  return ka == kb && a == b;
}

bool Fabric::dupSuppressed(const Message& msg) {
  if (msg.dupId == 0) return false;
  std::lock_guard lk(dupMu_);
  if (completedDups_.count(msg.dupId) == 0) return false;
  dupSuppressedCount_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Fabric::tryCompleteLocked(Endpoint& e, const PendingReceive& pr,
                               Message msg) {
  if (msg.dupId != 0) {
    // First of a duplicated pair to get here wins; marking the pair done
    // under dupMu_ makes sure the twin can never complete too
    // (exactly-once semantics). The loser is counted and discarded.
    std::lock_guard lk(dupMu_);
    if (!completedDups_.insert(msg.dupId).second) {
      dupSuppressedCount_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  e.stats.messagesReceived += 1;
  e.stats.bytesReceived += msg.payload.size();
  // Unexpected-message criterion in *virtual* time: the message landed
  // before the receive was posted, so the transport buffered it and the
  // completion pays an extra copy — receiver CPU time, so it accumulates
  // on the receiver's clock, and the data only becomes usable once the
  // copy is done. Judged on deterministic clocks, not on real thread
  // scheduling.
  if (msg.arrival < pr.postClock) {
    e.stats.unexpectedMessages += 1;
    const double copy = model_.unexpectedCost(msg.payload.size());
    e.clock += copy;
    msg.arrival = pr.postClock + copy;
  }
  pr.fn(msg);
  return true;
}

void Fabric::purgeDuplicate(std::uint64_t dupId) {
  auto drop = [&](std::deque<Message>& q) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->dupId == dupId) {
        q.erase(it);
        dupSuppressedCount_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  };
  {
    std::lock_guard mk(matcherMu_);
    if (drop(matcherMsgs_)) return;
  }
  for (auto& e : eps_) {
    std::lock_guard lk(e.mu);
    if (drop(e.unexpected)) return;
  }
}

void Fabric::deliverLocked(Endpoint& e, Message msg, DeliveryEffects& fx) {
  const std::uint64_t dupId = msg.dupId;
  bool consumed = false;
  for (auto it = e.pending.begin(); it != e.pending.end(); ++it) {
    if (!matches(it->name, it->kind, msg.name, msg.kind)) continue;
    if (tryCompleteLocked(e, *it, std::move(msg))) {
      // The completed receive may have registered rendezvous interest;
      // retiring it (and purging a completed duplicate's twin) takes the
      // matcher / other endpoints' locks, so both are deferred into `fx`
      // until this endpoint's lock is released.
      fx.cancels.push_back(it->id);
      if (dupId != 0) fx.purges.push_back(dupId);
      e.pending.erase(it);
    }
    // On suppression the receive stays posted (its real message is the
    // twin that already completed elsewhere or is still in flight for
    // another receive); this copy is simply gone.
    consumed = true;
    break;
  }
  // Park-or-suppress under the endpoint lock: a copy whose twin
  // completes after this check is removed by that completion's purge,
  // which takes e.mu after us.
  if (!consumed && !dupSuppressed(msg)) e.unexpected.push_back(std::move(msg));
}

std::size_t Fabric::reapLocked(int dst, Endpoint& e, std::size_t max,
                               DeliveryEffects& fx) {
  if (!ringActive_) return 0;
  struct DeliverSink final : Transport::Sink {
    Fabric* f = nullptr;
    Endpoint* e = nullptr;
    DeliveryEffects* fx = nullptr;
    void operator()(Message&& m) override {
      f->deliverLocked(*e, std::move(m), *fx);
    }
  } sink;
  sink.f = this;
  sink.e = &e;
  sink.fx = &fx;
  return transport_->reap(dst, max, sink);
}

void Fabric::applyEffects(DeliveryEffects& fx) {
  for (ReceiveId id : fx.cancels) cancelMatcherInterest(id);
  for (std::uint64_t d : fx.purges) purgeDuplicate(d);
  fx.cancels.clear();
  fx.purges.clear();
}

void Fabric::cancelMatcherInterest(ReceiveId id) {
  std::lock_guard mk(matcherMu_);
  if (matcherLive_.erase(id) == 0) return;  // never registered, or taken
  ++matcherDead_;
  if (matcherDead_ * 2 > matcherRecvs_.size() && matcherRecvs_.size() >= 64)
    compactMatcherLocked();
}

void Fabric::compactMatcherLocked() {
  std::deque<MatcherEntry> keep;
  for (MatcherEntry& me : matcherRecvs_)
    if (matcherLive_.count(me.id) != 0) keep.push_back(std::move(me));
  matcherRecvs_ = std::move(keep);
  matcherDead_ = 0;
}

void Fabric::deliverDirect(int dst, Message msg, bool allowFast) {
  if (ringActive_ && allowFast) {
    const int src = msg.src;
    if (transport_->trySubmit(src, dst, std::move(msg))) {
      // Queued; the receiver completes it at its next reap. Wake a parked
      // receiver with no fabric lock held.
      if (wakeHook_) wakeHook_(dst);
      return;
    }
    // Ring full: fall through to inline delivery (`msg` is untouched).
  }
  Endpoint& e = ep(dst);
  DeliveryEffects fx;
  {
    std::lock_guard lk(e.mu);
    // Drain queued descriptors first so this inline message can never
    // overtake an earlier submission on the same (src, dst) route.
    reapLocked(dst, e, std::numeric_limits<std::size_t>::max(), fx);
    deliverLocked(e, std::move(msg), fx);
  }
  applyEffects(fx);
}

void Fabric::routeRendezvous(Message msg) {
  if (dupSuppressed(msg)) return;  // twin already completed a receive
  for (;;) {
    std::optional<MatcherEntry> entry;
    {
      std::lock_guard mk(matcherMu_);
      // FCFS: hand to the first *live* registered receive interest with
      // this name. Dead entries (retired in O(1) by a direct completion —
      // see cancelMatcherInterest) are reclaimed in passing.
      for (auto it = matcherRecvs_.begin(); it != matcherRecvs_.end();) {
        if (matcherLive_.count(it->id) == 0) {
          it = matcherRecvs_.erase(it);
          if (matcherDead_ > 0) --matcherDead_;
          continue;
        }
        if (matches(it->name, it->kind, msg.name, msg.kind)) {
          entry = *it;
          matcherLive_.erase(it->id);
          matcherRecvs_.erase(it);
          break;
        }
        ++it;
      }
      if (!entry.has_value()) {
        // Park-or-suppress inside the matcher critical section (same
        // reasoning as the unexpected-queue park in deliverDirect).
        if (!dupSuppressed(msg)) matcherMsgs_.push_back(std::move(msg));
        return;
      }
    }
    const std::uint64_t dupId = msg.dupId;
    Endpoint& e = ep(entry->pid);
    bool completed = false;
    bool suppressed = false;
    DeliveryEffects fx;
    {
      std::lock_guard lk(e.mu);
      // Drain queued descriptors first: a ring-queued direct message may
      // be older than this rendezvous one and must get first claim on the
      // receive (if it takes it, the by-id scan below turns up empty and
      // the stale-retry path re-circulates our message).
      reapLocked(entry->pid, e, std::numeric_limits<std::size_t>::max(), fx);
      for (auto it = e.pending.begin(); it != e.pending.end(); ++it) {
        if (it->id != entry->id) continue;
        if (tryCompleteLocked(e, *it, std::move(msg))) {
          e.pending.erase(it);
          completed = true;
        } else {
          suppressed = true;
        }
        break;
      }
    }
    applyEffects(fx);
    if (completed) {
      if (dupId != 0) purgeDuplicate(dupId);
      return;
    }
    if (suppressed) {
      // The twin won the completion race while we held the entry; the
      // receive is still live, so restore its interest where it was
      // (front keeps it first among same-name entries).
      std::lock_guard mk(matcherMu_);
      matcherRecvs_.push_front(*entry);
      matcherLive_.insert(entry->id);
      return;
    }
    // Stale entry: the receive was completed by a direct send after
    // registering interest. Discard it and try the next waiter.
  }
}

void Fabric::route(Message msg, std::optional<int> dest, bool allowFast) {
  if (dest.has_value()) {
    deliverDirect(*dest, std::move(msg), allowFast);
    return;
  }
  // Rendezvous sends always pair inline: the matcher decision needs the
  // sending thread anyway, and the extra control hop is already the
  // dominant modeled cost.
  routeRendezvous(std::move(msg));
}

void Fabric::send(int src, const Name& name, TransferKind kind,
                  std::vector<std::byte> payload, std::optional<int> dest) {
  checkPid(src, "send source");
  if (dest.has_value()) checkPid(*dest, "send destination");
  const std::size_t bytes = payload.size();
  // Admission first, with no lock held and no state changed: a rejected
  // send (quota throw) costs the fabric nothing.
  if (sendHook_) sendHook_(src, bytes);

  Message msg;
  msg.name = name;
  msg.kind = kind;
  msg.src = src;
  msg.payload = std::move(payload);
  {
    Endpoint& s = ep(src);
    std::lock_guard lk(s.mu);
    s.clock += model_.sendCost(bytes);
    s.stats.messagesSent += 1;
    s.stats.bytesSent += bytes;
    if (kind != TransferKind::Data) s.stats.ownershipTransfers += 1;
    msg.arrival = s.clock + model_.latency;
    if (dest.has_value()) {
      s.stats.directSends += 1;
    } else {
      s.stats.rendezvousSends += 1;
      msg.arrival += model_.matchHop;  // extra control hop via the matchmaker
    }
  }
  if (faultsActive_.load(std::memory_order_acquire)) {
    faultSend(src, std::move(msg), dest);
    return;
  }
  route(std::move(msg), dest, /*allowFast=*/true);
}

void Fabric::faultSend(int src, Message msg, std::optional<int> dest) {
  // Decide every fate under the injector's per-source lock (faultMu_ held
  // shared, for injector-pointer stability only — concurrent sources no
  // longer serialize here), releasing both before any routing so no
  // injector lock is ever held together with endpoint/matcher locks.
  // `out` preserves the required delivery order.
  std::vector<std::pair<Message, std::optional<int>>> out;
  bool crashRecover = false;
  {
    std::shared_lock fk(faultMu_);
    if (!injector_) {
      out.emplace_back(std::move(msg), dest);
    } else {
      FaultInjector& in = *injector_;
      std::lock_guard sk(in.sourceMu(src));
      if (in.crashNow(src)) {
        // The fate is decided here, but a recovery unwinds outside
        // faultMu_: the crash hook reaches into the checkpoint
        // controller, which must never run under a fabric lock.
        if (in.plan().crashFate != CrashFate::Recover || !crashHook_) {
          std::ostringstream os;
          os << "fault injection: endpoint p" << src
             << " crashed (plan allows " << in.plan().crashAfterSends
             << " sends)";
          throw FaultAbort(os.str());
        }
        crashRecover = true;  // the crashed endpoint's send is lost
      } else {
        const FaultInjector::Outcome o = in.classify(src);
        msg.arrival += o.extraDelay;

        // Never let two same-name messages from one source overtake each
        // other (MPI's non-overtaking rule): release a held twin-channel
        // message first.
        if (in.hasHeld(src) && in.heldName(src) == msg.name) {
          FaultInjector::Held h = in.takeHeld(src);
          out.emplace_back(std::move(h.msg), h.dest);
        }
        if (!o.drop) {  // on drop: sender paid for it; the fabric lost it
          std::optional<Message> dup;
          if (o.duplicate) {
            msg.dupId = in.newDupId();
            dup = msg;  // deep copy, including the shared dupId
          }
          if (o.hold && !in.hasHeld(src)) {
            in.hold(src, std::move(msg), dest);
            if (dup.has_value()) out.emplace_back(std::move(*dup), dest);
          } else {
            out.emplace_back(std::move(msg), dest);
            if (dup.has_value()) out.emplace_back(std::move(*dup), dest);
            if (in.hasHeld(src)) {
              // This send releases the previously held message *after*
              // the new one: the adjacent pair has been reordered.
              FaultInjector::Held h = in.takeHeld(src);
              out.emplace_back(std::move(h.msg), h.dest);
            }
          }
        }
      }
    }
  }
  if (crashRecover) {
    crashHook_(src);
    throw ckpt::RollbackSignal{src};
  }
  // Everything in `out` originates from `src`, whose sending thread we
  // are — the SPSC producer role holds, so the fast path stays open.
  for (auto& [m, d] : out) route(std::move(m), d, /*allowFast=*/true);
}

void Fabric::sendToSet(int src, const Name& name, TransferKind kind,
                       const std::vector<std::byte>& payload,
                       const std::vector<int>& dests) {
  XDP_CHECK(!dests.empty(), "sendToSet: empty destination set");
  for (int d : dests) send(src, name, kind, payload, d);
}

ReceiveId Fabric::postReceive(int pid, const Name& name, TransferKind kind,
                              CompletionFn fn) {
  return postReceiveImpl(pid, name, kind, std::move(fn), std::nullopt);
}

ReceiveId Fabric::postReceive(int pid, const Name& name, TransferKind kind,
                              CompletionFn fn, RecvDesc desc) {
  return postReceiveImpl(pid, name, kind, std::move(fn), std::move(desc));
}

ReceiveId Fabric::postReceiveImpl(int pid, const Name& name,
                                  TransferKind kind, CompletionFn fn,
                                  std::optional<RecvDesc> desc) {
  checkPid(pid, "postReceive");
  Endpoint& e = ep(pid);
  const ReceiveId id = nextId_.fetch_add(1, std::memory_order_relaxed);

  // Phase 1 (endpoint lock): reap queued transport descriptors (batched —
  // this is the ring backend's main completion point), then complete from
  // the unexpected queue, or post the receive so a concurrent direct send
  // can find it.
  {
    bool done = false;
    std::uint64_t purgeId = 0;
    DeliveryEffects fx;
    {
      std::lock_guard lk(e.mu);
      // Before pr.postClock is read: reaped completions may advance
      // e.clock (unexpected-copy penalty), exactly as their inline
      // delivery would have under the locked backend.
      reapLocked(pid, e, reapBatch_, fx);
      PendingReceive pr{id, name, kind, std::move(fn), e.clock,
                       std::move(desc)};
      for (auto it = e.unexpected.begin(); it != e.unexpected.end();) {
        if (!matches(name, kind, it->name, it->kind)) {
          ++it;
          continue;
        }
        // A directly-addressed message may already have arrived
        // (physically); whether it counts as "unexpected" is decided on
        // virtual clocks inside tryCompleteLocked.
        const std::uint64_t dupId = it->dupId;
        Message msg = std::move(*it);
        it = e.unexpected.erase(it);
        if (tryCompleteLocked(e, pr, std::move(msg))) {
          done = true;
          purgeId = dupId;
          break;
        }
        // Suppressed duplicate dropped from the queue; keep scanning.
      }
      if (!done) e.pending.push_back(std::move(pr));
    }
    applyEffects(fx);
    if (done) {
      if (purgeId != 0) purgeDuplicate(purgeId);
      return id;
    }
  }

  // Phase 2 (matcher lock): pair with a parked unspecified send, or
  // register interest. The pairing decision is serialized by matcherMu_;
  // completion happens afterwards under the endpoint lock and re-routes
  // the message if a direct send completed this receive in between.
  for (;;) {
    std::optional<Message> paired;
    {
      std::lock_guard mk(matcherMu_);
      for (auto it = matcherMsgs_.begin(); it != matcherMsgs_.end(); ++it) {
        if (matches(name, kind, it->name, it->kind)) {
          paired = std::move(*it);
          matcherMsgs_.erase(it);
          break;
        }
      }
      if (!paired.has_value()) {
        matcherRecvs_.push_back(MatcherEntry{id, pid, name, kind});
        matcherLive_.insert(id);
        return id;
      }
    }
    const std::uint64_t dupId = paired->dupId;
    bool completed = false;
    bool stale = true;
    DeliveryEffects fx;
    {
      std::lock_guard lk(e.mu);
      // Same drain-first rule as the rendezvous completion: an older
      // ring-queued direct message gets first claim on this receive.
      reapLocked(pid, e, std::numeric_limits<std::size_t>::max(), fx);
      for (auto it = e.pending.begin(); it != e.pending.end(); ++it) {
        if (it->id != id) continue;
        stale = false;
        if (tryCompleteLocked(e, *it, std::move(*paired))) {
          e.pending.erase(it);
          completed = true;
        }
        // else: suppressed duplicate; the receive stays pending and we
        // retry the matcher for another parked message.
        break;
      }
    }
    applyEffects(fx);
    if (completed) {
      if (dupId != 0) purgeDuplicate(dupId);
      return id;
    }
    if (stale) {
      // A direct send completed this receive between phases; the parked
      // message we took must go back into rendezvous circulation.
      routeRendezvous(std::move(*paired));
      return id;
    }
  }
}

void Fabric::barrier(int pid) {
  checkPid(pid, "barrier");
  // A processor entering a barrier will not send again until released;
  // anything the injector held back for it must land now.
  if (faultsActive_.load(std::memory_order_acquire)) {
    std::optional<FaultInjector::Held> due;
    {
      std::shared_lock fk(faultMu_);
      if (injector_) {
        std::lock_guard sk(injector_->sourceMu(pid));
        if (injector_->hasHeld(pid)) due = injector_->takeHeld(pid);
      }
    }
    // The entrant is pid's own sending thread, so the fast path is open.
    if (due.has_value()) route(std::move(due->msg), due->dest, true);
  }
  // Drain the entrant's own transport inbox before its entry clock is
  // read: deferred deliveries (and their unexpected-copy penalties) must
  // land pre-barrier, as the locked backend's inline deliveries do.
  if (ringActive_) poll(pid, std::numeric_limits<std::size_t>::max());
  double myClock;
  {
    Endpoint& e = ep(pid);
    std::lock_guard lk(e.mu);
    myClock = e.clock;
  }
  std::unique_lock lk(barrierMu_);
  if (aborted_)
    throw DeadlockError(abortSummary_ + " [p" + std::to_string(pid) +
                            " entering barrier]",
                        abortReport_ ? *abortReport_ : std::string());
  // Polled before joining so a rollback/preempt unwinds the entrant with
  // its continuation still pointing at the barrier statement.
  if (barrierInterrupt_) barrierInterrupt_();
  barrierMax_ = std::max(barrierMax_, myClock);
  std::uint64_t gen = barrierGen_;
  if (++barrierCount_ == nprocs_) {
    barrierCount_ = 0;
    double release = barrierMax_ + model_.barrierCost;
    barrierMax_ = 0.0;
    // Lock order barrierMu_ -> endpoint is taken only here; barrier
    // entrants never hold an endpoint lock when acquiring barrierMu_, so
    // this cannot deadlock.
    if (ringActive_) {
      // Every endpoint's queued descriptors must land before the release
      // clock is applied: with the locked backend those messages were
      // delivered inline pre-barrier, and their unexpected-copy penalties
      // belong on the pre-release clocks. Applying each endpoint's
      // deferred effects right after its unlock keeps the never-held-
      // together rule intact (barrierMu_ -> matcher is a fresh edge, but
      // no path acquires barrierMu_ while holding the matcher lock).
      for (int p = 0; p < nprocs_; ++p) {
        Endpoint& e = ep(p);
        DeliveryEffects fx;
        {
          std::lock_guard g(e.mu);
          reapLocked(p, e, std::numeric_limits<std::size_t>::max(), fx);
        }
        applyEffects(fx);
      }
    }
    for (auto& e : eps_) {
      std::lock_guard g(e.mu);
      e.clock = std::max(e.clock, release);
    }
    ++barrierGen_;
    barrierCv_.notify_all();
    return;
  }
  while (barrierGen_ == gen && !aborted_) {
    // May throw a rollback/preempt signal; the leaked entrant count is
    // reset by clearAbort at the start of the next recovery round.
    if (barrierInterrupt_) barrierInterrupt_();
    barrierCv_.wait(lk);
  }
  if (barrierGen_ == gen && aborted_)
    throw DeadlockError(abortSummary_ + " [p" + std::to_string(pid) +
                            " blocked at barrier]",
                        abortReport_ ? *abortReport_ : std::string());
}

void Fabric::setBarrierInterrupt(std::function<void()> check) {
  barrierInterrupt_ = std::move(check);
}

void Fabric::notifyBarrierWaiters() {
  std::lock_guard lk(barrierMu_);
  barrierCv_.notify_all();
}

std::size_t Fabric::poll(int pid, std::size_t max) {
  checkPid(pid, "poll");
  if (!ringActive_ || transport_->backlog(pid) == 0) return 0;
  if (max == 0) max = reapBatch_;
  Endpoint& e = ep(pid);
  DeliveryEffects fx;
  std::size_t n;
  {
    std::lock_guard lk(e.mu);
    n = reapLocked(pid, e, max, fx);
  }
  applyEffects(fx);
  return n;
}

std::size_t Fabric::pollAll() {
  if (!ringActive_) return 0;
  std::size_t total = 0;
  // Sweep until a whole pass reaps nothing: reaps never create new
  // submissions themselves, but concurrent senders may still be landing
  // messages while early endpoints are drained.
  for (;;) {
    std::size_t n = 0;
    for (int p = 0; p < nprocs_; ++p)
      n += poll(p, std::numeric_limits<std::size_t>::max());
    total += n;
    if (n == 0) return total;
  }
}

std::size_t Fabric::transportBacklog(int pid) const {
  checkPid(pid, "transportBacklog");
  return transport_->backlog(pid);
}

std::size_t Fabric::totalTransportBacklog() const {
  return transport_->totalBacklog();
}

void Fabric::setDeliveryWake(std::function<void(int)> hook) {
  wakeHook_ = std::move(hook);
}

NetStats Fabric::stats(int pid) const {
  checkPid(pid, "stats");
  const Endpoint& e = ep(pid);
  std::lock_guard lk(e.mu);
  return e.stats;
}

NetStats Fabric::totalStats() const {
  NetStats total;
  for (const auto& e : eps_) {
    std::lock_guard lk(e.mu);
    total += e.stats;
  }
  return total;
}

void Fabric::resetStats() {
  for (auto& e : eps_) {
    std::lock_guard lk(e.mu);
    e.stats = NetStats{};
  }
}

std::size_t Fabric::undeliveredCount() const {
  std::size_t n = transport_->totalBacklog();
  {
    std::lock_guard mk(matcherMu_);
    n += matcherMsgs_.size();
  }
  for (const auto& e : eps_) {
    std::lock_guard lk(e.mu);
    n += e.unexpected.size();
  }
  return n;
}

std::size_t Fabric::pendingReceiveCount() const {
  std::size_t n = 0;
  for (const auto& e : eps_) {
    std::lock_guard lk(e.mu);
    n += e.pending.size();
  }
  return n;
}

void Fabric::clearMatchState() { (void)drain(); }

DrainReport Fabric::drain() {
  DrainReport r;
  // Transport-queued messages were never matched; count them with the
  // other unmatched residue. Drain runs at region/session boundaries with
  // no traffic in flight, which is discardAll's contract.
  r.unmatchedMessages += transport_->discardAll();
  {
    std::lock_guard mk(matcherMu_);
    r.unmatchedMessages += matcherMsgs_.size();
    // Matcher interest entries mirror posted receives; the receive itself
    // is counted once, at its endpoint below. Dead entries mirror nothing.
    matcherMsgs_.clear();
    matcherRecvs_.clear();
    matcherLive_.clear();
    matcherDead_ = 0;
  }
  for (auto& e : eps_) {
    std::lock_guard lk(e.mu);
    r.unmatchedMessages += e.unexpected.size();
    r.unmatchedReceives += e.pending.size();
    e.unexpected.clear();
    e.pending.clear();
  }
  {
    std::lock_guard dk(dupMu_);
    r.dupEntries = completedDups_.size();
    completedDups_.clear();
  }
  std::lock_guard fk(faultMu_);
  if (injector_) r.heldFaults = injector_->takeAllHeld().size();  // discard
  return r;
}

void Fabric::setSendHook(SendHook hook) { sendHook_ = std::move(hook); }

void Fabric::setFaultPlan(const FaultPlan& plan) {
  std::vector<FaultInjector::Held> due;
  {
    std::lock_guard fk(faultMu_);
    if (injector_) due = injector_->takeAllHeld();
    injector_ = std::make_unique<FaultInjector>(plan, nprocs_);
    dupSuppressedCount_.store(0, std::memory_order_relaxed);
    faultsActive_.store(true, std::memory_order_release);
  }
  // Plan-swap releases may run off the holders' sending threads, so the
  // SPSC fast path stays closed for them (same for the flushes below).
  for (auto& h : due) route(std::move(h.msg), h.dest, /*allowFast=*/false);
}

void Fabric::clearFaultPlan() {
  std::vector<FaultInjector::Held> due;
  {
    std::lock_guard fk(faultMu_);
    if (!injector_) return;
    due = injector_->takeAllHeld();
    injector_.reset();
    faultsActive_.store(false, std::memory_order_release);
  }
  for (auto& h : due) route(std::move(h.msg), h.dest, /*allowFast=*/false);
}

bool Fabric::hasFaultPlan() const {
  std::shared_lock fk(faultMu_);
  return injector_ != nullptr;
}

bool Fabric::faultPlanLossy() const {
  std::shared_lock fk(faultMu_);
  return injector_ != nullptr && injector_->plan().lossy();
}

FaultStats Fabric::faultStats() const {
  std::shared_lock fk(faultMu_);
  if (!injector_) return FaultStats{};
  FaultStats s = injector_->stats();
  s.suppressedDuplicates +=
      dupSuppressedCount_.load(std::memory_order_relaxed);
  return s;
}

std::size_t Fabric::flushHeldFaults() {
  std::vector<FaultInjector::Held> due;
  {
    std::shared_lock fk(faultMu_);
    if (injector_) due = injector_->takeAllHeld();
  }
  for (auto& h : due) route(std::move(h.msg), h.dest, /*allowFast=*/false);
  return due.size();
}

std::size_t Fabric::heldFaultCount() const {
  std::shared_lock fk(faultMu_);
  return injector_ ? injector_->heldCount() : 0;
}

FabricSnapshot Fabric::snapshot() const {
  FabricSnapshot snap;
  {
    // All endpoint locks at once, ascending pid order, so the pending /
    // unexpected picture is a single consistent cut across endpoints.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(eps_.size());
    for (const auto& e : eps_) locks.emplace_back(e.mu);
    for (std::size_t p = 0; p < eps_.size(); ++p) {
      const Endpoint& e = eps_[p];
      for (const auto& pr : e.pending) {
        FabricSnapshot::RecvInfo r;
        r.pid = static_cast<int>(p);
        r.name = pr.name;
        r.kind = pr.kind;
        snap.pendingReceives.push_back(std::move(r));
      }
      for (const auto& m : e.unexpected) {
        snap.undelivered.push_back(FabricSnapshot::MsgInfo{
            m.src, static_cast<int>(p), m.name, m.kind, m.payload.size()});
      }
    }
  }
  {
    std::lock_guard mk(matcherMu_);
    for (const auto& m : matcherMsgs_) {
      snap.undelivered.push_back(
          FabricSnapshot::MsgInfo{m.src, -1, m.name, m.kind, m.payload.size()});
    }
  }
  {
    std::shared_lock fk(faultMu_);
    snap.heldFaults = injector_ ? injector_->heldCount() : 0;
  }
  snap.transportBacklog = transport_->totalBacklog();
  {
    std::lock_guard lk(barrierMu_);
    snap.barrierWaiters = barrierCount_;
  }
  return snap;
}

int Fabric::barrierWaiters() const {
  std::lock_guard lk(barrierMu_);
  return barrierCount_;
}

std::uint64_t Fabric::barrierEpoch() const {
  std::lock_guard lk(barrierMu_);
  return barrierGen_;
}

void Fabric::abortBlockedOps(const std::string& summary,
                             std::shared_ptr<const std::string> report) {
  std::lock_guard lk(barrierMu_);
  aborted_ = true;
  abortSummary_ = summary;
  abortReport_ = std::move(report);
  barrierCv_.notify_all();
}

namespace {

void putNetStats(ckpt::Writer& w, const NetStats& s) {
  w.u64(s.messagesSent);
  w.u64(s.bytesSent);
  w.u64(s.messagesReceived);
  w.u64(s.bytesReceived);
  w.u64(s.rendezvousSends);
  w.u64(s.directSends);
  w.u64(s.ownershipTransfers);
  w.u64(s.unexpectedMessages);
}

NetStats getNetStats(ckpt::Reader& r) {
  NetStats s;
  s.messagesSent = r.u64();
  s.bytesSent = r.u64();
  s.messagesReceived = r.u64();
  s.bytesReceived = r.u64();
  s.rendezvousSends = r.u64();
  s.directSends = r.u64();
  s.ownershipTransfers = r.u64();
  s.unexpectedMessages = r.u64();
  return s;
}

}  // namespace

void Fabric::setCrashHook(CrashHook hook) { crashHook_ = std::move(hook); }

void Fabric::disarmCrashes() {
  std::lock_guard fk(faultMu_);
  if (injector_) injector_->disarmCrashes();
}

std::vector<std::byte> Fabric::exportImage() const {
  // The image format has no representation for transport-queued messages;
  // callers (the checkpoint layer) must pollAll() to quiescence first.
  if (const std::size_t q = transport_->totalBacklog(); q != 0)
    throw ckpt::CkptError("transport backlog not drained before export (" +
                          std::to_string(q) + " queued)");
  ckpt::Writer w;
  w.u32(static_cast<std::uint32_t>(nprocs_));
  // Pending-receive id -> (pid, position) so the matcher's FCFS interest
  // order can be stored positionally (ReceiveIds are regenerated on
  // restore and must not leak into the image).
  std::vector<std::pair<int, std::uint32_t>> posOf;  // indexed by id lookup
  std::vector<ReceiveId> idOf;
  {
    // All endpoint locks at once, ascending pid order — one consistent cut
    // (callers only export at a capture point, with no traffic running).
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(eps_.size());
    for (const auto& e : eps_) locks.emplace_back(e.mu);
    for (std::size_t p = 0; p < eps_.size(); ++p) {
      const Endpoint& e = eps_[p];
      w.f64(e.clock);
      putNetStats(w, e.stats);
      w.u32(static_cast<std::uint32_t>(e.unexpected.size()));
      for (const Message& m : e.unexpected) wire::putMessage(w, m);
      w.u32(static_cast<std::uint32_t>(e.pending.size()));
      std::uint32_t idx = 0;
      for (const PendingReceive& pr : e.pending) {
        if (!pr.desc.has_value())
          throw ckpt::CkptError(
              "pending receive without a rebuild recipe; cannot export "
              "fabric image");
        wire::putName(w, pr.name);
        w.u8(static_cast<std::uint8_t>(pr.kind));
        w.f64(pr.postClock);
        w.i64(pr.desc->dstSym);
        w.u32(static_cast<std::uint32_t>(pr.desc->dsts.size()));
        for (const sec::Section& s : pr.desc->dsts) wire::putSection(w, s);
        w.boolean(pr.desc->withValue);
        idOf.push_back(pr.id);
        posOf.emplace_back(static_cast<int>(p), idx++);
      }
    }
  }
  {
    std::lock_guard mk(matcherMu_);
    w.u32(static_cast<std::uint32_t>(matcherMsgs_.size()));
    for (const Message& m : matcherMsgs_) wire::putMessage(w, m);
    // Interest entries, FCFS order, as (pid, pending-position). Dead and
    // stale entries (their receive already completed) are dropped here —
    // they carry no information a restore could use.
    std::vector<std::pair<int, std::uint32_t>> entries;
    for (const MatcherEntry& me : matcherRecvs_) {
      if (matcherLive_.count(me.id) == 0) continue;
      for (std::size_t k = 0; k < idOf.size(); ++k) {
        if (idOf[k] == me.id) {
          entries.push_back(posOf[k]);
          break;
        }
      }
    }
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& [pid, idx] : entries) {
      w.i64(pid);
      w.u32(idx);
    }
  }
  {
    std::lock_guard dk(dupMu_);
    std::vector<std::uint64_t> dups(completedDups_.begin(),
                                    completedDups_.end());
    std::sort(dups.begin(), dups.end());
    w.u32(static_cast<std::uint32_t>(dups.size()));
    for (std::uint64_t d : dups) w.u64(d);
    w.u64(dupSuppressedCount_.load(std::memory_order_relaxed));
  }
  {
    std::shared_lock fk(faultMu_);
    w.boolean(injector_ != nullptr);
    if (injector_) injector_->exportState(w);
  }
  return w.take();
}

void Fabric::restoreImage(const std::vector<std::byte>& image,
                          const CompletionFactory& factory) {
  XDP_CHECK(factory != nullptr, "restoreImage needs a completion factory");
  ckpt::Reader r(image);
  if (r.u32() != static_cast<std::uint32_t>(nprocs_))
    throw ckpt::CkptError("fabric image endpoint count mismatch");

  struct PendingImg {
    Name name;
    TransferKind kind;
    double postClock;
    RecvDesc desc;
  };
  struct EpImg {
    double clock;
    NetStats stats;
    std::deque<Message> unexpected;
    std::vector<PendingImg> pending;
  };
  // Decode (and validate) everything before touching live state, so a
  // malformed image throws without leaving the fabric half-restored.
  std::vector<EpImg> eps;
  eps.reserve(eps_.size());
  for (int p = 0; p < nprocs_; ++p) {
    EpImg e;
    e.clock = r.f64();
    e.stats = getNetStats(r);
    const std::uint32_t nu = r.u32();
    for (std::uint32_t k = 0; k < nu; ++k)
      e.unexpected.push_back(wire::getMessage(r));
    const std::uint32_t np = r.u32();
    for (std::uint32_t k = 0; k < np; ++k) {
      PendingImg pi;
      pi.name = wire::getName(r);
      pi.kind = static_cast<TransferKind>(r.u8());
      pi.postClock = r.f64();
      pi.desc.dstSym = static_cast<int>(r.i64());
      const std::uint32_t nd = r.u32();
      for (std::uint32_t j = 0; j < nd; ++j)
        pi.desc.dsts.push_back(wire::getSection(r));
      pi.desc.withValue = r.boolean();
      e.pending.push_back(std::move(pi));
    }
    eps.push_back(std::move(e));
  }
  std::deque<Message> mMsgs;
  const std::uint32_t nm = r.u32();
  for (std::uint32_t k = 0; k < nm; ++k) mMsgs.push_back(wire::getMessage(r));
  std::vector<std::pair<int, std::uint32_t>> mEntries;
  const std::uint32_t ne = r.u32();
  for (std::uint32_t k = 0; k < ne; ++k) {
    const int pid = static_cast<int>(r.i64());
    const std::uint32_t idx = r.u32();
    if (pid < 0 || pid >= nprocs_ ||
        idx >= eps[static_cast<std::size_t>(pid)].pending.size())
      throw ckpt::CkptError("fabric image matcher entry out of range");
    mEntries.emplace_back(pid, idx);
  }
  std::vector<std::uint64_t> dups;
  const std::uint32_t ndup = r.u32();
  for (std::uint32_t k = 0; k < ndup; ++k) dups.push_back(r.u64());
  const std::uint64_t dupSuppressed = r.u64();
  const bool hasInjector = r.boolean();

  // Apply. Restore runs between rounds with no traffic in flight; locks
  // are still taken so the store is clean under TSan. Any descriptors a
  // crashed round left queued predate the snapshot's world and are
  // dropped first.
  transport_->discardAll();
  std::vector<std::vector<MatcherEntry>> reposted(
      static_cast<std::size_t>(nprocs_));  // (pid, idx) -> rebuilt entry
  for (int p = 0; p < nprocs_; ++p) {
    Endpoint& e = ep(p);
    EpImg& img = eps[static_cast<std::size_t>(p)];
    std::lock_guard lk(e.mu);
    e.clock = img.clock;
    e.stats = img.stats;
    e.unexpected = std::move(img.unexpected);
    e.pending.clear();
    for (PendingImg& pi : img.pending) {
      const ReceiveId id = nextId_.fetch_add(1, std::memory_order_relaxed);
      CompletionFn fn = factory(p, pi.desc, pi.name, pi.kind);
      XDP_CHECK(fn != nullptr, "completion factory returned no callback");
      reposted[static_cast<std::size_t>(p)].push_back(
          MatcherEntry{id, p, pi.name, pi.kind});
      e.pending.push_back(PendingReceive{id, std::move(pi.name), pi.kind,
                                         std::move(fn), pi.postClock,
                                         std::move(pi.desc)});
    }
  }
  {
    // Endpoint locks are released: entries are rebuilt from the `reposted`
    // mirror, so the endpoint/matcher never-held-together rule holds even
    // here.
    std::lock_guard mk(matcherMu_);
    matcherMsgs_ = std::move(mMsgs);
    matcherRecvs_.clear();
    matcherLive_.clear();
    matcherDead_ = 0;
    for (const auto& [pid, idx] : mEntries) {
      const MatcherEntry& me = reposted[static_cast<std::size_t>(pid)][idx];
      matcherRecvs_.push_back(me);
      matcherLive_.insert(me.id);
    }
  }
  {
    std::lock_guard dk(dupMu_);
    completedDups_.clear();
    completedDups_.insert(dups.begin(), dups.end());
    dupSuppressedCount_.store(dupSuppressed, std::memory_order_relaxed);
  }
  {
    std::lock_guard fk(faultMu_);
    if (hasInjector && injector_) injector_->restoreState(r);
  }
}

void Fabric::clearAbort() {
  std::lock_guard lk(barrierMu_);
  aborted_ = false;
  abortSummary_.clear();
  abortReport_.reset();
  // Threads that threw out of an aborted barrier left their entrant counts
  // behind; between runs nobody is inside, so reset the incomplete barrier.
  barrierCount_ = 0;
  barrierMax_ = 0.0;
}

}  // namespace xdp::net
