#include "xdp/net/fabric.hpp"

#include <algorithm>
#include <ostream>

#include "xdp/support/check.hpp"

namespace xdp::net {

const char* transferKindName(TransferKind k) {
  switch (k) {
    case TransferKind::Data:
      return "data";
    case TransferKind::Ownership:
      return "ownership";
    case TransferKind::OwnershipAndValue:
      return "ownership+value";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Name& n) {
  return os << "sym#" << n.symbol << n.section;
}

NetStats& NetStats::operator+=(const NetStats& o) {
  messagesSent += o.messagesSent;
  bytesSent += o.bytesSent;
  messagesReceived += o.messagesReceived;
  bytesReceived += o.bytesReceived;
  rendezvousSends += o.rendezvousSends;
  directSends += o.directSends;
  ownershipTransfers += o.ownershipTransfers;
  unexpectedMessages += o.unexpectedMessages;
  return *this;
}

Fabric::Fabric(int nprocs, CostModel model)
    : nprocs_(nprocs), model_(model), eps_(static_cast<std::size_t>(nprocs)) {
  XDP_CHECK(nprocs >= 1, "fabric needs at least one endpoint");
}

double Fabric::clock(int pid) const {
  std::lock_guard lk(mu_);
  return eps_[static_cast<std::size_t>(pid)].clock;
}

void Fabric::advance(int pid, double dt) {
  std::lock_guard lk(mu_);
  eps_[static_cast<std::size_t>(pid)].clock += dt;
}

void Fabric::syncClock(int pid, double t) {
  std::lock_guard lk(mu_);
  auto& c = eps_[static_cast<std::size_t>(pid)].clock;
  c = std::max(c, t);
}

double Fabric::makespan() const {
  std::lock_guard lk(mu_);
  double m = 0.0;
  for (const auto& ep : eps_) m = std::max(m, ep.clock);
  return m;
}

void Fabric::resetClocks() {
  std::lock_guard lk(mu_);
  for (auto& ep : eps_) ep.clock = 0.0;
}

bool Fabric::matches(const Name& a, TransferKind ka, const Name& b,
                     TransferKind kb) {
  return ka == kb && a == b;
}

void Fabric::completeLocked(Endpoint& ep, const PendingReceive& pr,
                            Message msg) {
  ep.stats.messagesReceived += 1;
  ep.stats.bytesReceived += msg.payload.size();
  // Unexpected-message criterion in *virtual* time: the message landed
  // before the receive was posted, so the transport buffered it and the
  // completion pays an extra copy — receiver CPU time, so it accumulates
  // on the receiver's clock, and the data only becomes usable once the
  // copy is done. Judged on deterministic clocks, not on real thread
  // interleaving.
  if (msg.arrival < pr.postClock) {
    ep.stats.unexpectedMessages += 1;
    const double copy = model_.unexpectedCost(msg.payload.size());
    ep.clock += copy;
    msg.arrival = pr.postClock + copy;
  }
  pr.fn(msg);
}

void Fabric::deliverLocked(int dst, Message msg) {
  auto& ep = eps_[static_cast<std::size_t>(dst)];
  for (auto it = ep.pending.begin(); it != ep.pending.end(); ++it) {
    if (!matches(it->name, it->kind, msg.name, msg.kind)) continue;
    PendingReceive pr = std::move(*it);
    ep.pending.erase(it);
    // Drop the matcher interest registered for this receive, if any.
    for (auto mit = matcherRecvs_.begin(); mit != matcherRecvs_.end(); ++mit) {
      if (mit->id == pr.id) {
        matcherRecvs_.erase(mit);
        break;
      }
    }
    completeLocked(ep, pr, std::move(msg));
    return;
  }
  ep.unexpected.push_back(std::move(msg));
}

void Fabric::send(int src, const Name& name, TransferKind kind,
                  std::vector<std::byte> payload, std::optional<int> dest) {
  std::lock_guard lk(mu_);
  XDP_CHECK(src >= 0 && src < nprocs_, "send: bad source pid");
  auto& sep = eps_[static_cast<std::size_t>(src)];
  const std::size_t bytes = payload.size();
  sep.clock += model_.sendCost(bytes);
  sep.stats.messagesSent += 1;
  sep.stats.bytesSent += bytes;
  if (kind != TransferKind::Data) sep.stats.ownershipTransfers += 1;

  Message msg;
  msg.name = name;
  msg.kind = kind;
  msg.src = src;
  msg.payload = std::move(payload);
  msg.arrival = sep.clock + model_.latency;

  if (dest.has_value()) {
    XDP_CHECK(*dest >= 0 && *dest < nprocs_, "send: bad destination pid");
    sep.stats.directSends += 1;
    deliverLocked(*dest, std::move(msg));
    return;
  }
  sep.stats.rendezvousSends += 1;
  msg.arrival += model_.matchHop;  // extra control hop via the matchmaker
  // FCFS: hand to the first registered receive interest with this name.
  for (auto it = matcherRecvs_.begin(); it != matcherRecvs_.end(); ++it) {
    if (matches(it->name, it->kind, msg.name, msg.kind)) {
      int pid = it->pid;
      // deliverLocked erases the interest entry (by id) and the pending
      // receive; erase the interest here first to keep iterators simple.
      deliverLocked(pid, std::move(msg));
      return;
    }
  }
  matcherMsgs_.push_back(std::move(msg));
}

void Fabric::sendToSet(int src, const Name& name, TransferKind kind,
                       const std::vector<std::byte>& payload,
                       const std::vector<int>& dests) {
  XDP_CHECK(!dests.empty(), "sendToSet: empty destination set");
  for (int d : dests) send(src, name, kind, payload, d);
}

ReceiveId Fabric::postReceive(int pid, const Name& name, TransferKind kind,
                              CompletionFn fn) {
  std::lock_guard lk(mu_);
  XDP_CHECK(pid >= 0 && pid < nprocs_, "postReceive: bad pid");
  auto& ep = eps_[static_cast<std::size_t>(pid)];
  const ReceiveId id = nextId_++;
  PendingReceive pr{id, name, kind, std::move(fn), ep.clock};

  // A directly-addressed message may already have arrived (physically);
  // whether it counts as "unexpected" is decided on virtual clocks inside
  // completeLocked.
  for (auto it = ep.unexpected.begin(); it != ep.unexpected.end(); ++it) {
    if (matches(name, kind, it->name, it->kind)) {
      Message msg = std::move(*it);
      ep.unexpected.erase(it);
      completeLocked(ep, pr, std::move(msg));
      return id;
    }
  }
  // An unspecified send may be parked at the matchmaker.
  for (auto it = matcherMsgs_.begin(); it != matcherMsgs_.end(); ++it) {
    if (matches(name, kind, it->name, it->kind)) {
      Message msg = std::move(*it);
      matcherMsgs_.erase(it);
      completeLocked(ep, pr, std::move(msg));
      return id;
    }
  }
  // Nothing yet: post locally and register interest with the matchmaker.
  ep.pending.push_back(std::move(pr));
  matcherRecvs_.push_back(MatcherEntry{id, pid, name, kind});
  return id;
}

void Fabric::barrier(int pid) {
  double myClock;
  {
    std::lock_guard lk(mu_);
    myClock = eps_[static_cast<std::size_t>(pid)].clock;
  }
  std::unique_lock lk(barrierMu_);
  barrierMax_ = std::max(barrierMax_, myClock);
  std::uint64_t gen = barrierGen_;
  if (++barrierCount_ == nprocs_) {
    barrierCount_ = 0;
    double release = barrierMax_ + model_.barrierCost;
    barrierMax_ = 0.0;
    {
      // Lock order barrierMu_ -> mu_ is taken only here; barrier entrants
      // never hold mu_ when acquiring barrierMu_, so this cannot deadlock.
      std::lock_guard g(mu_);
      for (auto& ep : eps_) ep.clock = std::max(ep.clock, release);
    }
    ++barrierGen_;
    barrierCv_.notify_all();
    return;
  }
  barrierCv_.wait(lk, [&] { return barrierGen_ != gen; });
}

NetStats Fabric::stats(int pid) const {
  std::lock_guard lk(mu_);
  return eps_[static_cast<std::size_t>(pid)].stats;
}

NetStats Fabric::totalStats() const {
  std::lock_guard lk(mu_);
  NetStats total;
  for (const auto& ep : eps_) total += ep.stats;
  return total;
}

void Fabric::resetStats() {
  std::lock_guard lk(mu_);
  for (auto& ep : eps_) ep.stats = NetStats{};
}

std::size_t Fabric::undeliveredCount() const {
  std::lock_guard lk(mu_);
  std::size_t n = matcherMsgs_.size();
  for (const auto& ep : eps_) n += ep.unexpected.size();
  return n;
}

std::size_t Fabric::pendingReceiveCount() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& ep : eps_) n += ep.pending.size();
  return n;
}

void Fabric::clearMatchState() {
  std::lock_guard lk(mu_);
  matcherMsgs_.clear();
  matcherRecvs_.clear();
  for (auto& ep : eps_) {
    ep.unexpected.clear();
    ep.pending.clear();
  }
}

}  // namespace xdp::net
