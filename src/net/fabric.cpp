#include "xdp/net/fabric.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::net {

const char* transferKindName(TransferKind k) {
  switch (k) {
    case TransferKind::Data:
      return "data";
    case TransferKind::Ownership:
      return "ownership";
    case TransferKind::OwnershipAndValue:
      return "ownership+value";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Name& n) {
  return os << "sym#" << n.symbol << n.section;
}

NetStats& NetStats::operator+=(const NetStats& o) {
  messagesSent += o.messagesSent;
  bytesSent += o.bytesSent;
  messagesReceived += o.messagesReceived;
  bytesReceived += o.bytesReceived;
  rendezvousSends += o.rendezvousSends;
  directSends += o.directSends;
  ownershipTransfers += o.ownershipTransfers;
  unexpectedMessages += o.unexpectedMessages;
  return *this;
}

Fabric::Fabric(int nprocs, CostModel model)
    : nprocs_(nprocs), model_(model), eps_(static_cast<std::size_t>(nprocs)) {
  XDP_CHECK(nprocs >= 1, "fabric needs at least one endpoint");
  if (auto plan = currentGlobalFaultPlan())
    injector_ = std::make_unique<FaultInjector>(*plan, nprocs_);
}

Fabric::~Fabric() = default;

double Fabric::clock(int pid) const {
  std::lock_guard lk(mu_);
  return eps_[static_cast<std::size_t>(pid)].clock;
}

void Fabric::advance(int pid, double dt) {
  std::lock_guard lk(mu_);
  eps_[static_cast<std::size_t>(pid)].clock += dt;
}

void Fabric::syncClock(int pid, double t) {
  std::lock_guard lk(mu_);
  auto& c = eps_[static_cast<std::size_t>(pid)].clock;
  c = std::max(c, t);
}

double Fabric::makespan() const {
  std::lock_guard lk(mu_);
  double m = 0.0;
  for (const auto& ep : eps_) m = std::max(m, ep.clock);
  return m;
}

void Fabric::resetClocks() {
  std::lock_guard lk(mu_);
  for (auto& ep : eps_) ep.clock = 0.0;
}

bool Fabric::matches(const Name& a, TransferKind ka, const Name& b,
                     TransferKind kb) {
  return ka == kb && a == b;
}

void Fabric::completeLocked(Endpoint& ep, const PendingReceive& pr,
                            Message msg) {
  if (msg.dupId != 0) {
    // First of a duplicated pair to complete wins; make sure the twin can
    // never complete too (exactly-once semantics).
    completedDups_.insert(msg.dupId);
    purgeDuplicateLocked(msg.dupId);
  }
  ep.stats.messagesReceived += 1;
  ep.stats.bytesReceived += msg.payload.size();
  // Unexpected-message criterion in *virtual* time: the message landed
  // before the receive was posted, so the transport buffered it and the
  // completion pays an extra copy — receiver CPU time, so it accumulates
  // on the receiver's clock, and the data only becomes usable once the
  // copy is done. Judged on deterministic clocks, not on real thread
  // interleaving.
  if (msg.arrival < pr.postClock) {
    ep.stats.unexpectedMessages += 1;
    const double copy = model_.unexpectedCost(msg.payload.size());
    ep.clock += copy;
    msg.arrival = pr.postClock + copy;
  }
  pr.fn(msg);
}

void Fabric::deliverLocked(int dst, Message msg) {
  auto& ep = eps_[static_cast<std::size_t>(dst)];
  for (auto it = ep.pending.begin(); it != ep.pending.end(); ++it) {
    if (!matches(it->name, it->kind, msg.name, msg.kind)) continue;
    PendingReceive pr = std::move(*it);
    ep.pending.erase(it);
    // Drop the matcher interest registered for this receive, if any.
    for (auto mit = matcherRecvs_.begin(); mit != matcherRecvs_.end(); ++mit) {
      if (mit->id == pr.id) {
        matcherRecvs_.erase(mit);
        break;
      }
    }
    completeLocked(ep, pr, std::move(msg));
    return;
  }
  ep.unexpected.push_back(std::move(msg));
}

void Fabric::send(int src, const Name& name, TransferKind kind,
                  std::vector<std::byte> payload, std::optional<int> dest) {
  std::lock_guard lk(mu_);
  XDP_CHECK(src >= 0 && src < nprocs_, "send: bad source pid");
  auto& sep = eps_[static_cast<std::size_t>(src)];
  const std::size_t bytes = payload.size();
  sep.clock += model_.sendCost(bytes);
  sep.stats.messagesSent += 1;
  sep.stats.bytesSent += bytes;
  if (kind != TransferKind::Data) sep.stats.ownershipTransfers += 1;

  Message msg;
  msg.name = name;
  msg.kind = kind;
  msg.src = src;
  msg.payload = std::move(payload);
  msg.arrival = sep.clock + model_.latency;

  if (dest.has_value()) {
    XDP_CHECK(*dest >= 0 && *dest < nprocs_, "send: bad destination pid");
    sep.stats.directSends += 1;
  } else {
    sep.stats.rendezvousSends += 1;
    msg.arrival += model_.matchHop;  // extra control hop via the matchmaker
  }
  if (injector_) {
    faultSendLocked(src, std::move(msg), dest);
    return;
  }
  routeLocked(std::move(msg), dest);
}

void Fabric::routeLocked(Message msg, std::optional<int> dest) {
  if (msg.dupId != 0 && completedDups_.count(msg.dupId) != 0) {
    // Its twin already completed a receive; a real transport's sequence
    // numbers would detect and discard this copy on arrival.
    injector_->stats().suppressedDuplicates += 1;
    return;
  }
  if (dest.has_value()) {
    deliverLocked(*dest, std::move(msg));
    return;
  }
  // FCFS: hand to the first registered receive interest with this name.
  for (auto it = matcherRecvs_.begin(); it != matcherRecvs_.end(); ++it) {
    if (matches(it->name, it->kind, msg.name, msg.kind)) {
      int pid = it->pid;
      // deliverLocked erases the interest entry (by id) and the pending
      // receive; erase the interest here first to keep iterators simple.
      deliverLocked(pid, std::move(msg));
      return;
    }
  }
  matcherMsgs_.push_back(std::move(msg));
}

void Fabric::faultSendLocked(int src, Message msg, std::optional<int> dest) {
  FaultInjector& in = *injector_;
  if (in.crashNow(src)) {
    std::ostringstream os;
    os << "fault injection: endpoint p" << src << " crashed (plan allows "
       << in.plan().crashAfterSends << " sends)";
    throw FaultAbort(os.str());
  }
  const FaultInjector::Outcome out = in.classify(src);
  msg.arrival += out.extraDelay;

  // Never let two same-name messages from one source overtake each other
  // (MPI's non-overtaking rule): release a held twin-channel message first.
  if (in.hasHeld(src) && in.heldName(src) == msg.name) {
    FaultInjector::Held h = in.takeHeld(src);
    routeLocked(std::move(h.msg), h.dest);
  }
  if (out.drop) return;  // sender paid for it; the fabric lost it

  std::optional<Message> dup;
  if (out.duplicate) {
    msg.dupId = in.newDupId();
    dup = msg;  // deep copy, including the shared dupId
  }
  if (out.hold && !in.hasHeld(src)) {
    in.hold(src, std::move(msg), dest);
    if (dup.has_value()) routeLocked(std::move(*dup), dest);
    return;
  }
  routeLocked(std::move(msg), dest);
  if (dup.has_value()) routeLocked(std::move(*dup), dest);
  if (in.hasHeld(src)) {
    // This send releases the previously held message *after* the new one:
    // the adjacent pair has been reordered.
    FaultInjector::Held h = in.takeHeld(src);
    routeLocked(std::move(h.msg), h.dest);
  }
}

std::size_t Fabric::flushHeldLocked(int src) {
  if (!injector_) return 0;
  std::vector<FaultInjector::Held> due;
  if (src < 0) {
    due = injector_->takeAllHeld();
  } else if (injector_->hasHeld(src)) {
    due.push_back(injector_->takeHeld(src));
  }
  for (auto& h : due) routeLocked(std::move(h.msg), h.dest);
  return due.size();
}

void Fabric::purgeDuplicateLocked(std::uint64_t dupId) {
  auto drop = [&](std::deque<Message>& q) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->dupId == dupId) {
        q.erase(it);
        injector_->stats().suppressedDuplicates += 1;
        return true;
      }
    }
    return false;
  };
  if (drop(matcherMsgs_)) return;
  for (auto& ep : eps_)
    if (drop(ep.unexpected)) return;
}

void Fabric::sendToSet(int src, const Name& name, TransferKind kind,
                       const std::vector<std::byte>& payload,
                       const std::vector<int>& dests) {
  XDP_CHECK(!dests.empty(), "sendToSet: empty destination set");
  for (int d : dests) send(src, name, kind, payload, d);
}

ReceiveId Fabric::postReceive(int pid, const Name& name, TransferKind kind,
                              CompletionFn fn) {
  std::lock_guard lk(mu_);
  XDP_CHECK(pid >= 0 && pid < nprocs_, "postReceive: bad pid");
  auto& ep = eps_[static_cast<std::size_t>(pid)];
  const ReceiveId id = nextId_++;
  PendingReceive pr{id, name, kind, std::move(fn), ep.clock};

  // A directly-addressed message may already have arrived (physically);
  // whether it counts as "unexpected" is decided on virtual clocks inside
  // completeLocked.
  for (auto it = ep.unexpected.begin(); it != ep.unexpected.end(); ++it) {
    if (matches(name, kind, it->name, it->kind)) {
      Message msg = std::move(*it);
      ep.unexpected.erase(it);
      completeLocked(ep, pr, std::move(msg));
      return id;
    }
  }
  // An unspecified send may be parked at the matchmaker.
  for (auto it = matcherMsgs_.begin(); it != matcherMsgs_.end(); ++it) {
    if (matches(name, kind, it->name, it->kind)) {
      Message msg = std::move(*it);
      matcherMsgs_.erase(it);
      completeLocked(ep, pr, std::move(msg));
      return id;
    }
  }
  // Nothing yet: post locally and register interest with the matchmaker.
  ep.pending.push_back(std::move(pr));
  matcherRecvs_.push_back(MatcherEntry{id, pid, name, kind});
  return id;
}

void Fabric::barrier(int pid) {
  double myClock;
  {
    std::lock_guard lk(mu_);
    myClock = eps_[static_cast<std::size_t>(pid)].clock;
    // A processor entering a barrier will not send again until released;
    // anything the injector held back for it must land now.
    if (injector_) flushHeldLocked(pid);
  }
  std::unique_lock lk(barrierMu_);
  if (aborted_)
    throw DeadlockError(abortSummary_ + " [p" + std::to_string(pid) +
                            " entering barrier]",
                        abortReport_ ? *abortReport_ : std::string());
  barrierMax_ = std::max(barrierMax_, myClock);
  std::uint64_t gen = barrierGen_;
  if (++barrierCount_ == nprocs_) {
    barrierCount_ = 0;
    double release = barrierMax_ + model_.barrierCost;
    barrierMax_ = 0.0;
    {
      // Lock order barrierMu_ -> mu_ is taken only here; barrier entrants
      // never hold mu_ when acquiring barrierMu_, so this cannot deadlock.
      std::lock_guard g(mu_);
      for (auto& ep : eps_) ep.clock = std::max(ep.clock, release);
    }
    ++barrierGen_;
    barrierCv_.notify_all();
    return;
  }
  barrierCv_.wait(lk, [&] { return barrierGen_ != gen || aborted_; });
  if (barrierGen_ == gen && aborted_)
    throw DeadlockError(abortSummary_ + " [p" + std::to_string(pid) +
                            " blocked at barrier]",
                        abortReport_ ? *abortReport_ : std::string());
}

NetStats Fabric::stats(int pid) const {
  std::lock_guard lk(mu_);
  return eps_[static_cast<std::size_t>(pid)].stats;
}

NetStats Fabric::totalStats() const {
  std::lock_guard lk(mu_);
  NetStats total;
  for (const auto& ep : eps_) total += ep.stats;
  return total;
}

void Fabric::resetStats() {
  std::lock_guard lk(mu_);
  for (auto& ep : eps_) ep.stats = NetStats{};
}

std::size_t Fabric::undeliveredCount() const {
  std::lock_guard lk(mu_);
  std::size_t n = matcherMsgs_.size();
  for (const auto& ep : eps_) n += ep.unexpected.size();
  return n;
}

std::size_t Fabric::pendingReceiveCount() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& ep : eps_) n += ep.pending.size();
  return n;
}

void Fabric::clearMatchState() {
  std::lock_guard lk(mu_);
  matcherMsgs_.clear();
  matcherRecvs_.clear();
  for (auto& ep : eps_) {
    ep.unexpected.clear();
    ep.pending.clear();
  }
  completedDups_.clear();
  if (injector_) injector_->takeAllHeld();  // discard, not deliver
}

void Fabric::setFaultPlan(const FaultPlan& plan) {
  std::lock_guard lk(mu_);
  if (injector_) flushHeldLocked(-1);
  injector_ = std::make_unique<FaultInjector>(plan, nprocs_);
}

void Fabric::clearFaultPlan() {
  std::lock_guard lk(mu_);
  if (!injector_) return;
  flushHeldLocked(-1);
  injector_.reset();
}

bool Fabric::hasFaultPlan() const {
  std::lock_guard lk(mu_);
  return injector_ != nullptr;
}

bool Fabric::faultPlanLossy() const {
  std::lock_guard lk(mu_);
  return injector_ != nullptr && injector_->plan().lossy();
}

FaultStats Fabric::faultStats() const {
  std::lock_guard lk(mu_);
  return injector_ ? injector_->stats() : FaultStats{};
}

std::size_t Fabric::flushHeldFaults() {
  std::lock_guard lk(mu_);
  return flushHeldLocked(-1);
}

std::size_t Fabric::heldFaultCount() const {
  std::lock_guard lk(mu_);
  return injector_ ? injector_->heldCount() : 0;
}

FabricSnapshot Fabric::snapshot() const {
  FabricSnapshot snap;
  {
    std::lock_guard lk(mu_);
    for (const auto& ep : eps_) {
      for (const auto& pr : ep.pending) {
        // Attribute the receive to its endpoint via the matcher registry
        // when present; endpoints are scanned in pid order anyway.
        FabricSnapshot::RecvInfo r;
        r.pid = static_cast<int>(&ep - eps_.data());
        r.name = pr.name;
        r.kind = pr.kind;
        snap.pendingReceives.push_back(std::move(r));
      }
      for (const auto& m : ep.unexpected) {
        snap.undelivered.push_back(FabricSnapshot::MsgInfo{
            m.src, static_cast<int>(&ep - eps_.data()), m.name, m.kind,
            m.payload.size()});
      }
    }
    for (const auto& m : matcherMsgs_) {
      snap.undelivered.push_back(
          FabricSnapshot::MsgInfo{m.src, -1, m.name, m.kind, m.payload.size()});
    }
    snap.heldFaults = injector_ ? injector_->heldCount() : 0;
  }
  {
    std::lock_guard lk(barrierMu_);
    snap.barrierWaiters = barrierCount_;
  }
  return snap;
}

int Fabric::barrierWaiters() const {
  std::lock_guard lk(barrierMu_);
  return barrierCount_;
}

std::uint64_t Fabric::barrierEpoch() const {
  std::lock_guard lk(barrierMu_);
  return barrierGen_;
}

void Fabric::abortBlockedOps(const std::string& summary,
                             std::shared_ptr<const std::string> report) {
  std::lock_guard lk(barrierMu_);
  aborted_ = true;
  abortSummary_ = summary;
  abortReport_ = std::move(report);
  barrierCv_.notify_all();
}

void Fabric::clearAbort() {
  std::lock_guard lk(barrierMu_);
  aborted_ = false;
  abortSummary_.clear();
  abortReport_.reset();
  // Threads that threw out of an aborted barrier left their entrant counts
  // behind; between runs nobody is inside, so reset the incomplete barrier.
  barrierCount_ = 0;
  barrierMax_ = 0.0;
}

}  // namespace xdp::net
