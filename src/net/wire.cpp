#include "xdp/net/wire.hpp"

namespace xdp::net::wire {

void putSection(ckpt::Writer& w, const sec::Section& s) {
  w.u8(static_cast<std::uint8_t>(s.rank()));
  for (int d = 0; d < s.rank(); ++d) {
    const sec::Triplet& t = s.dim(d);
    w.i64(t.lb());
    w.i64(t.ub());
    w.i64(t.stride());
  }
}

sec::Section getSection(ckpt::Reader& r) {
  const int rank = static_cast<int>(r.u8());
  if (rank < 0 || rank > sec::kMaxRank)
    throw ckpt::CkptError("section rank out of range in image");
  std::vector<sec::Triplet> dims;
  dims.reserve(static_cast<std::size_t>(rank));
  for (int d = 0; d < rank; ++d) {
    const sec::Index lb = r.i64();
    const sec::Index ub = r.i64();
    const sec::Index stride = r.i64();
    if (stride < 1) throw ckpt::CkptError("section stride out of range in image");
    dims.emplace_back(lb, ub, stride);
  }
  return sec::Section(dims);
}

void putName(ckpt::Writer& w, const Name& n) {
  w.i64(n.symbol);
  putSection(w, n.section);
  w.u32(static_cast<std::uint32_t>(n.rest.size()));
  for (const sec::Section& s : n.rest) putSection(w, s);
}

Name getName(ckpt::Reader& r) {
  Name n;
  n.symbol = static_cast<int>(r.i64());
  n.section = getSection(r);
  const std::uint32_t rest = r.u32();
  n.rest.reserve(rest);
  for (std::uint32_t k = 0; k < rest; ++k) n.rest.push_back(getSection(r));
  return n;
}

void putMessage(ckpt::Writer& w, const Message& m) {
  putName(w, m.name);
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.i64(m.src);
  w.bytes(m.payload);
  w.f64(m.arrival);
  w.u64(m.dupId);
}

Message getMessage(ckpt::Reader& r) {
  Message m;
  m.name = getName(r);
  m.kind = static_cast<TransferKind>(r.u8());
  m.src = static_cast<int>(r.i64());
  m.payload = r.bytes();
  m.arrival = r.f64();
  m.dupId = r.u64();
  return m;
}

}  // namespace xdp::net::wire
