// Pluggable intra-process message transport (DESIGN.md §12).
//
// The Fabric owns all *matching* state — posted receives, unexpected
// queues, the rendezvous matcher, duplicate suppression. A Transport is
// the layer underneath: it moves a finished Message descriptor from the
// sending thread to the destination endpoint. Two backends exist:
//
//   * locked — the original behaviour. trySubmit() always declines, so
//     every message is delivered inline on the sending thread under the
//     destination endpoint's lock. Delivery is synchronous: send()
//     returns only after the message completed a receive or was parked.
//
//   * ring   — a lock-free fast path borrowed from the AF_XDP UMEM
//     fill/completion-ring idiom: one SPSC ring per (src, dst) endpoint
//     pair (MPSC per destination = per-producer rings + a batched
//     consumer sweep), cache-line-aligned slots, power-of-two capacity,
//     acquire/release head/tail indices. The sender never touches the
//     receiver's lock; the receiver reaps up to a batch of descriptors
//     per poll instead of paying one lock round-trip per message.
//     Delivery is *deferred*: a submitted message completes a receive
//     only when the destination is next reaped (postReceive, an rt-layer
//     await poll, barrier entry/release, or Fabric::pollAll).
//
// Concurrency contract:
//   * trySubmit(src, dst, ...) — at most one thread per `src` at a time
//     (the SPSC producer role). The Fabric guarantees this by only
//     submitting from the sending thread's own call chain; auxiliary
//     routes (watchdog held-fault flushes, plan teardown) deliver inline.
//   * reap(dst, ...) / discardAll() — the consumer role for `dst` must be
//     serialized externally; the Fabric calls them only while holding
//     dst's endpoint lock.
//   * backlog queries are lock-free estimates, safe from any thread.
//
// Memory-ordering invariants of the ring backend (the full argument is
// in DESIGN.md §12):
//   1. producer: slot write  →  backlog.fetch_add(relaxed)  →
//      tail.store(release);
//   2. consumer: tail.load(acquire) → slot read/move → head.store(release);
//   3. producer full-check: head.load(acquire) before overwriting a slot.
// (1)+(2) make the slot contents visible to the consumer; (2)+(3) keep
// the producer from reusing a slot the consumer still reads; (1)'s
// ordering of the backlog increment *before* the tail publish means a
// consumer that reaped a message has already observed its backlog
// increment (RMWs on one object are totally ordered), so the decrement
// in reap() can never underflow.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "xdp/net/message.hpp"

namespace xdp::net {

enum class TransportKind : std::uint8_t {
  Locked = 0,  ///< inline delivery under the destination endpoint lock
  Ring = 1,    ///< per-(src,dst) SPSC rings with batched completion reaping
};

const char* transportKindName(TransportKind k);
/// Parse "locked" / "ring"; nullopt on anything else.
std::optional<TransportKind> parseTransportKind(std::string_view s);

struct TransportOptions {
  TransportKind kind = TransportKind::Locked;
  /// Ring backend: per-(src,dst) ring capacity, rounded up to a power of
  /// two (min 2). A full ring falls back to inline delivery, which first
  /// drains the destination so per-(src,dst) FIFO order is preserved.
  std::uint32_t ringSlots = 1024;
  /// Ring backend: max descriptors reaped per poll (postReceive / await
  /// poll). Quiescent-point drains (barrier, pollAll) ignore it.
  std::uint32_t reapBatch = 256;
};

/// The descriptor-movement interface. See the file comment for the
/// concurrency contract.
class Transport {
 public:
  /// Non-owning reap callback (no std::function allocation per poll).
  class Sink {
   public:
    virtual void operator()(Message&& m) = 0;

   protected:
    ~Sink() = default;
  };

  virtual ~Transport();

  virtual TransportKind kind() const noexcept = 0;

  /// Queue `msg` for deferred delivery at `dst`. Returns false — leaving
  /// `msg` intact — when the caller must deliver inline instead (locked
  /// backend always; ring backend when the (src,dst) ring is full).
  virtual bool trySubmit(int src, int dst, Message&& msg) = 0;

  /// Pop up to `max` queued messages for `dst` into `sink`, sweeping the
  /// active producer rings round-robin. Caller holds dst's consumer
  /// context (the Fabric: dst's endpoint lock). Returns the count.
  virtual std::size_t reap(int dst, std::size_t max, Sink& sink) = 0;

  /// Drop every queued message (restore/teardown). Caller must hold every
  /// consumer context, or guarantee no traffic runs. Returns the count.
  virtual std::size_t discardAll() = 0;

  /// Queued-message estimate for one destination / the whole transport.
  virtual std::size_t backlog(int dst) const noexcept = 0;
  virtual std::size_t totalBacklog() const noexcept = 0;
};

std::unique_ptr<Transport> makeTransport(int nprocs,
                                         const TransportOptions& opts);

}  // namespace xdp::net
