// Communication cost model for the simulated machine.
//
// The paper has no testbed numbers (it predates its own implementation's
// evaluation), so reproducibility comes from *modeled* time: every endpoint
// carries a virtual clock, and message events advance clocks under a
// LogGP-flavoured model:
//
//   sender overhead            alpha + beta * bytes
//   wire latency               latency (one hop; rendezvous-matched
//                              messages pay an extra control hop,
//                              see Fabric)
//   receiver completion        max(receiver clock, arrival) when the
//                              receiver synchronizes on the data (await)
//
// Benchmarks report both wall-clock time (threads really run) and modeled
// time (deterministic shape). Units are arbitrary "seconds".
#pragma once

#include <cstddef>

namespace xdp::net {

struct CostModel {
  double alpha = 1e-5;       ///< per-message overhead (each side)
  double beta = 1e-9;        ///< per-byte cost
  double latency = 5e-6;     ///< wire latency per hop
  double matchHop = 1e-5;    ///< extra cost of a rendezvous control hop
  double barrierCost = 2e-5; ///< synchronization cost of a barrier
  /// Extra cost when a message arrives before its receive is posted (the
  /// classic "unexpected message" path: the transport must buffer it and
  /// copy again once the receive appears). Charged as
  /// `unexpectedAlpha + unexpectedBeta * bytes` on top of the arrival
  /// time. This is what makes receive hoisting (paper section 3.2:
  /// "move the XDP receive statements as early ... as possible")
  /// profitable in the model, exactly as it is on real transports.
  double unexpectedAlpha = 5e-6;
  double unexpectedBeta = 5e-10;

  double sendCost(std::size_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }
  double unexpectedCost(std::size_t bytes) const {
    return unexpectedAlpha + unexpectedBeta * static_cast<double>(bytes);
  }
};

}  // namespace xdp::net
