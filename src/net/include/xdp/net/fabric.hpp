// The simulated message-passing machine.
//
// A Fabric has P endpoints (one per simulated processor). All operations
// are non-blocking: XDP's blocking semantics (await, blocked owner-sends)
// live in the runtime layer, which waits on its symbol table's condition
// variable; the fabric merely matches messages to posted receives and runs
// a completion callback when a match happens.
//
// Two delivery routes exist, reflecting the paper's delayed communication
// binding (section 3.2):
//
//   * direct    — the send named its destination set ("E -> S", or the
//                 CommBinding pass annotated the receiver). One hop.
//   * rendezvous— "send to an unspecified processor" ("E ->", "E -=>").
//                 Sender and receiver meet at a matchmaker, FCFS per name;
//                 the message pays an extra control hop (CostModel::
//                 matchHop). This is also what makes the paper's
//                 section 2.7 pattern work: several processors may have
//                 receives outstanding for the *same* name, and each
//                 matching send is handed to the first waiter in line.
//
// Underneath the matching logic sits a pluggable Transport
// (transport.hpp): `locked` delivers every message inline on the sending
// thread (the original synchronous behaviour, still the default);
// `ring` queues descriptors in per-(src,dst) lock-free SPSC rings and
// defers delivery to the next *reap* of the destination. Reaping happens
// under the destination endpoint's lock at every natural drain point —
// postReceive (before the unexpected scan), barrier entry (own inbox)
// and barrier release (all endpoints, so modeled clocks agree with the
// locked backend), any inline delivery (so a ring message can never be
// overtaken by a same-route inline one), and poll()/pollAll(). The
// rt layer additionally polls from blocked awaits and wakes parked
// receivers through the delivery-wake hook.
//
// Locking: the matching state is sharded so that P endpoints do not
// serialize on one fabric-wide mutex.
//
//   * Each endpoint owns a mutex guarding its virtual clock, its traffic
//     counters, its posted-but-unmatched receives and its
//     unexpected-message queue — and the *consumer* side of its
//     transport rings (reaps are serialized by it; ring producers take
//     no lock at all). A direct send touches at most two endpoint
//     locks, one at a time: the sender's (accounting) and then — only
//     when delivering inline — the receiver's (delivery).
//   * The rendezvous matcher (parked unspecified sends + registered
//     receive interest) has its own mutex. An endpoint lock and the
//     matcher lock are NEVER held together; cross-domain matching is a
//     publish-then-complete protocol (see fabric.cpp, "Rendezvous
//     protocol") that retries stale interest entries instead of taking
//     both locks.
//   * Leaf locks, each taken with at most one endpoint lock held and
//     never while holding each other: the duplicate-suppression set
//     (exactly-once bookkeeping for fault-injected duplicates). The fault
//     injector's mutex and the barrier mutex are taken with no endpoint
//     or matcher lock held; the barrier *release* path and snapshot()
//     additionally take endpoint locks (barrier/snapshot -> endpoint,
//     ascending pid order when more than one is held).
//   * Completion callbacks run while the destination endpoint's lock is
//     held and may take the destination symbol table's lock (lock order:
//     endpoint -> symtab — the pre-shard fabric-state -> symtab order).
//     Callers must never invoke fabric operations while holding a symbol
//     table lock, and completion callbacks must never re-enter the
//     fabric.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "xdp/net/cost_model.hpp"
#include "xdp/net/fault.hpp"
#include "xdp/net/message.hpp"
#include "xdp/net/transport.hpp"

namespace xdp::net {

/// Traffic counters, kept per endpoint. `read()`-style accessors
/// (`Fabric::stats`, `Fabric::totalStats`) copy a whole endpoint's
/// counters under that endpoint's lock, so they are safe — and internally
/// consistent per endpoint — at any time, including mid-run from a
/// monitoring thread.
struct NetStats {
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t messagesReceived = 0;
  std::uint64_t bytesReceived = 0;
  std::uint64_t rendezvousSends = 0;   ///< sends routed via the matcher
  std::uint64_t directSends = 0;       ///< sends with a bound destination
  std::uint64_t ownershipTransfers = 0;///< ownership(+value) messages sent
  std::uint64_t unexpectedMessages = 0;///< arrived before a receive posted

  NetStats& operator+=(const NetStats& o);
};

/// Invoked (under the destination endpoint's lock) when a posted receive
/// is matched. The callback must copy the payload out and update runtime
/// state; it must not call back into the fabric.
using CompletionFn = std::function<void(const Message&)>;

/// Invoked at the top of every send (before any accounting or fault
/// decision) with the source pid and payload size. Throwing aborts the
/// send with no fabric state changed — the mechanism per-tenant traffic
/// quotas hang off (see xdp::serve). Must not call back into the fabric.
using SendHook = std::function<void(int src, std::size_t bytes)>;

/// Invoked (with no fabric lock held) when a crash-plan endpoint with
/// CrashFate::Recover exhausts its send budget, just before the sending
/// thread unwinds with ckpt::RollbackSignal. The runtime's checkpoint
/// controller hangs its rollback request off this. Must not send.
using CrashHook = std::function<void(int src)>;

/// Rebuild recipe for a posted receive's completion callback. Closures do
/// not serialize, so every receive posted by the runtime carries the data
/// needed to re-create its `fn` when a checkpoint image is restored:
/// scatter the payload into `dsts` of `dstSym` (data receives), or
/// complete the transitional segments (ownership receives, `withValue`
/// deciding whether the payload carries element values).
struct RecvDesc {
  int dstSym = -1;
  std::vector<sec::Section> dsts;  ///< destination sections, payload order
  bool withValue = false;          ///< ownership receives: scatter payload
};

/// Builds a CompletionFn back from its RecvDesc during image restore.
/// `name`/`kind` are the receive's match criteria, as originally posted.
using CompletionFactory = std::function<CompletionFn(
    int pid, const RecvDesc& desc, const Name& name, TransferKind kind)>;

/// What a drain (session/region teardown) actually reclaimed, for
/// hygiene reporting: nonzero counts after a *clean* run indicate leaked
/// match state (an XDP usage error or a faulted session's residue).
struct DrainReport {
  std::size_t unmatchedMessages = 0;  ///< parked at matcher + unexpected
  std::size_t unmatchedReceives = 0;  ///< posted, never completed
  std::size_t heldFaults = 0;         ///< reorder holdbacks discarded
  /// Duplicate-suppression entries reclaimed. Informational: a clean run
  /// under duplicate faults legitimately accumulates these.
  std::size_t dupEntries = 0;

  /// Leaked state proper (excludes the informational dup bookkeeping).
  std::size_t leaked() const {
    return unmatchedMessages + unmatchedReceives + heldFaults;
  }
};

/// Identifies a posted receive, for cancellation of rendezvous interest.
using ReceiveId = std::uint64_t;

/// Point-in-time picture of the fabric's matching state, for failure
/// diagnostics: what every hung receive is waiting for and where every
/// unmatched message is parked.
struct FabricSnapshot {
  struct RecvInfo {
    int pid = -1;
    Name name;
    TransferKind kind = TransferKind::Data;
  };
  struct MsgInfo {
    int src = -1;
    int dst = -1;  ///< -1 = parked at the rendezvous matcher
    Name name;
    TransferKind kind = TransferKind::Data;
    std::size_t bytes = 0;
  };
  std::vector<RecvInfo> pendingReceives;
  std::vector<MsgInfo> undelivered;
  std::size_t heldFaults = 0;  ///< messages parked inside the fault injector
  /// Messages queued in the transport, not yet reaped (ring backend;
  /// always 0 for locked). Estimate from the backlog atomics — nothing is
  /// popped, so a mid-run snapshot stays non-invasive.
  std::size_t transportBacklog = 0;
  int barrierWaiters = 0;      ///< entrants of the current incomplete barrier
};

class Fabric {
 public:
  /// If a FaultScope is live, the new fabric adopts its plan.
  Fabric(int nprocs, CostModel model = {}, TransportOptions transport = {});
  ~Fabric();

  int nprocs() const { return nprocs_; }
  const CostModel& model() const { return model_; }
  TransportKind transportKind() const { return transport_->kind(); }

  /// --- virtual time ---------------------------------------------------
  /// All clock operations validate `pid` and throw UsageError on an
  /// out-of-range value; they take only that endpoint's lock.
  double clock(int pid) const;
  void advance(int pid, double dt);
  /// clock(pid) = max(clock(pid), t) — used when a processor synchronizes
  /// on a message that arrived at virtual time t.
  void syncClock(int pid, double t);
  /// Max clock over all endpoints (the modeled makespan). Endpoint locks
  /// are taken one at a time; call after the region joined for an exact
  /// figure.
  double makespan() const;
  void resetClocks();

  /// --- point-to-point -------------------------------------------------

  /// Send `payload` under `name`. If `dest` is set, route directly;
  /// otherwise go through the rendezvous matcher. Advances the sender's
  /// clock by the send overhead. Non-blocking.
  void send(int src, const Name& name, TransferKind kind,
            std::vector<std::byte> payload, std::optional<int> dest);

  /// Broadcast/multicast form "E -> S": one message per destination.
  void sendToSet(int src, const Name& name, TransferKind kind,
                 const std::vector<std::byte>& payload,
                 const std::vector<int>& dests);

  /// Post a receive for `name` at `pid`. If a matching message is already
  /// queued (directly addressed or waiting at the matcher), `fn` runs
  /// before this returns. Otherwise `fn` runs later, on the delivering
  /// thread. Returns an id usable only for diagnostics.
  ReceiveId postReceive(int pid, const Name& name, TransferKind kind,
                        CompletionFn fn);

  /// postReceive carrying the rebuild recipe for checkpoint images. The
  /// runtime's Proc layer always uses this form so every pending receive
  /// in a snapshot can be re-posted on restore.
  ReceiveId postReceive(int pid, const Name& name, TransferKind kind,
                        CompletionFn fn, RecvDesc desc);

  /// --- collectives ----------------------------------------------------

  /// Rendezvous of all endpoints; clocks advance to max + barrierCost.
  /// Drains the entrant's transport inbox on entry and every endpoint's
  /// on release, so deferred (ring) deliveries interact with the release
  /// clock exactly as the locked backend's inline deliveries do.
  void barrier(int pid);

  /// --- transport reaping ------------------------------------------------
  /// With the ring transport, delivery is deferred until the destination
  /// is reaped; these are the explicit reap entry points. Both are no-ops
  /// (and cheap: one relaxed load) under the locked transport.

  /// Reap up to `max` queued messages for `pid` (0 = the configured reap
  /// batch), completing receives / parking unexpected as usual. Any
  /// thread may call it; reaps for one endpoint serialize on its lock.
  /// Returns the number of messages delivered.
  std::size_t poll(int pid, std::size_t max = 0);

  /// Drain every endpoint's queue completely. Called at region join /
  /// before hygiene checks and checkpoint exports; raw-fabric users of
  /// the ring transport must call it before asserting on stats or
  /// draining match state.
  std::size_t pollAll();

  /// Queued-but-unreaped message estimate (always 0 under locked).
  std::size_t transportBacklog(int pid) const;
  std::size_t totalTransportBacklog() const;

  /// Install (or clear) the deferred-delivery wake hook: called with the
  /// destination pid after every successful transport submission, with no
  /// fabric lock held, so the runtime can wake a receiver parked in an
  /// await. Same publication discipline as setSendHook (set while no
  /// traffic runs). Must not call back into the fabric.
  void setDeliveryWake(std::function<void(int dst)> hook);

  /// --- accounting -----------------------------------------------------
  /// Safe to call at any time, including concurrently with traffic: each
  /// endpoint's counters are copied under its own lock, so a mid-run read
  /// never observes a torn per-endpoint snapshot.
  NetStats stats(int pid) const;
  NetStats totalStats() const;
  void resetStats();

  /// Number of messages parked at the matcher / in unexpected queues
  /// (diagnostic; nonzero after a run usually means a send had no
  /// matching receive — an XDP usage error).
  std::size_t undeliveredCount() const;

  /// Number of posted receives not yet matched (diagnostic, as above).
  std::size_t pendingReceiveCount() const;

  /// Drop all unmatched messages and posted receives (used at SPMD region
  /// boundaries so a leaked receive can never fire into a later region).
  /// Also drops fault-injector holdbacks and duplicate-suppression state.
  void clearMatchState();

  /// clearMatchState that reports what it reclaimed — the endpoint-drain
  /// half of session teardown (xdp::serve). A session that ended cleanly
  /// drains to an all-zero report; anything else is leaked state the
  /// session left behind, now reclaimed.
  DrainReport drain();

  /// Install (or, with nullptr, remove) the send admission hook. NOT
  /// thread-safe against in-flight sends: set it while no traffic is
  /// running (before an SPMD region starts); thread creation publishes it
  /// to the node threads.
  void setSendHook(SendHook hook);

  /// --- fault injection -------------------------------------------------

  /// Install (or replace) a fault plan; takes effect on the next send.
  /// Replacing a plan first releases any held-back messages.
  void setFaultPlan(const FaultPlan& plan);
  /// Remove the plan, releasing any held-back messages first.
  void clearFaultPlan();
  bool hasFaultPlan() const;
  /// True iff a plan is installed and it can lose messages (see
  /// FaultPlan::lossy) — the runtime waives end-of-run usage checks then.
  bool faultPlanLossy() const;
  FaultStats faultStats() const;
  /// Deliver every message the injector is holding back (reorder faults).
  /// Returns how many were released. Called at quiescence by the watchdog
  /// and at the end of an SPMD region.
  std::size_t flushHeldFaults();
  std::size_t heldFaultCount() const;

  /// --- hang diagnostics ------------------------------------------------

  /// Takes every endpoint lock simultaneously, in ascending pid order,
  /// so the per-endpoint picture (pending receives + unexpected queues)
  /// is one consistent cut; matcher, injector and barrier state are read
  /// immediately after under their own locks.
  FabricSnapshot snapshot() const;

  /// --- checkpoint image ------------------------------------------------

  /// Serialize the in-flight state: per-endpoint clocks, stats,
  /// unexpected queues and pending receives (with their RecvDescs),
  /// matcher-parked messages and FCFS interest order, duplicate
  /// bookkeeping, and the fault injector's dynamic state. Endpoint locks
  /// are taken in ascending order for one consistent cut — callers invoke
  /// this only at a capture point (no traffic in flight). Receives posted
  /// without a RecvDesc make the export fail with CkptError (the image
  /// could not be restored faithfully).
  std::vector<std::byte> exportImage() const;

  /// Inverse of exportImage: drop all current match state, then rebuild
  /// from `image`, re-creating each pending receive's completion callback
  /// via `factory` (fresh ReceiveIds are assigned; FCFS matcher order is
  /// preserved). Throws CkptError on a malformed or mismatched image.
  void restoreImage(const std::vector<std::byte>& image,
                    const CompletionFactory& factory);

  /// Install (or clear) the crash-recovery hook; same discipline as
  /// setSendHook (set while no traffic runs).
  void setCrashHook(CrashHook hook);

  /// Install a hook polled by barrier waiters on entry and on every
  /// wake-up; it may throw (the checkpoint controller's signal check), so
  /// a rollback/preempt can unwind a processor parked in a barrier. Set
  /// while no traffic runs. Entrant counts left behind by an unwound
  /// barrier are reset by clearAbort between rounds.
  void setBarrierInterrupt(std::function<void()> check);
  /// Wake barrier waiters so they re-poll the interrupt hook.
  void notifyBarrierWaiters();

  /// Clear the injector's crash flags after a successful rollback (counts
  /// one absorbed crash). No-op without a plan.
  void disarmCrashes();
  /// Entrants of the current *incomplete* barrier (0 when no barrier is in
  /// progress). Waiters of an already-released barrier do not count.
  int barrierWaiters() const;
  /// Generation counter; advances when a barrier completes. Stable value +
  /// stable waiter count across two observations = a genuinely stuck wait.
  std::uint64_t barrierEpoch() const;
  /// Fail every current and future barrier wait with a DeadlockError built
  /// from `summary`/`report` (watchdog teardown). Sticky until clearAbort.
  void abortBlockedOps(const std::string& summary,
                       std::shared_ptr<const std::string> report);
  void clearAbort();

 private:
  struct PendingReceive {
    ReceiveId id;
    Name name;
    TransferKind kind;
    CompletionFn fn;
    double postClock = 0.0;  ///< receiver's virtual clock at post time
    std::optional<RecvDesc> desc;  ///< rebuild recipe (checkpoint images)
  };
  /// One simulated processor's mailbox. Everything in it — including the
  /// virtual clock and the stats — is guarded by `mu`, which is the lock
  /// completion callbacks run under. Cache-line-aligned so two endpoints'
  /// hot state (lock word, clock, counters) never false-share a line
  /// when P threads hammer adjacent mailboxes.
  struct alignas(64) Endpoint {
    mutable std::mutex mu;
    std::deque<Message> unexpected;      // arrived before a receive posted
    std::deque<PendingReceive> pending;  // posted, not yet matched
    NetStats stats;
    double clock = 0.0;
  };
  struct MatcherEntry {  // receive interest registered for unspecified sends
    ReceiveId id;
    int pid;
    Name name;
    TransferKind kind;
  };

  /// Deferred lock-free work collected while an endpoint lock is held
  /// (matcher-interest cancellations, duplicate purges); applied by
  /// applyEffects() after the lock is released so the
  /// endpoint/matcher-never-held-together rule survives batched reaping.
  struct DeliveryEffects {
    std::vector<ReceiveId> cancels;
    std::vector<std::uint64_t> purges;
  };

  Endpoint& ep(int pid) { return eps_[static_cast<std::size_t>(pid)]; }
  const Endpoint& ep(int pid) const {
    return eps_[static_cast<std::size_t>(pid)];
  }
  /// Throws UsageError unless 0 <= pid < nprocs.
  void checkPid(int pid, const char* what) const;

  /// Route a message: deliver directly or via the rendezvous matcher.
  /// No locks held on entry. `allowFast` gates the transport fast path:
  /// true only on the sending thread's own call chain (send/faultSend,
  /// barrier-entry held-flush) — the SPSC producer role requires one
  /// producer per source, so auxiliary routes (watchdog flushes, plan
  /// teardown) always deliver inline.
  void route(Message msg, std::optional<int> dest, bool allowFast);

  /// Deliver msg at dst. With the fast path allowed and accepted, the
  /// message is queued in the transport and the wake hook fires.
  /// Otherwise delivery is inline: take the dst endpoint lock, drain the
  /// transport first (FIFO: queued messages arrived earlier), then
  /// complete a matching pending receive or park as unexpected.
  void deliverDirect(int dst, Message msg, bool allowFast);

  /// Inline delivery of one message at dst; caller holds e.mu. Cancels /
  /// purges are deferred into `fx` (applied after the lock drops).
  void deliverLocked(Endpoint& e, Message msg, DeliveryEffects& fx);

  /// Reap up to `max` transport messages for dst into deliverLocked;
  /// caller holds e.mu. Returns the number delivered.
  std::size_t reapLocked(int dst, Endpoint& e, std::size_t max,
                         DeliveryEffects& fx);

  /// Apply deferred cancels/purges. No locks held on entry.
  void applyEffects(DeliveryEffects& fx);

  /// Retire a completed receive's matcher interest, if it registered any
  /// (O(1): erase from the live-id set; the FCFS deque entry goes stale
  /// and is skipped/compacted lazily).
  void cancelMatcherInterest(ReceiveId id);

  /// Rendezvous half of route(): hand the message to the first registered
  /// receive interest with a matching name, retrying entries whose
  /// receive was concurrently completed by a direct send, or park it at
  /// the matcher. Never holds an endpoint lock and the matcher lock
  /// together.
  void routeRendezvous(Message msg);

  /// Complete `pr` with `msg` under ep.mu (held by the caller), applying
  /// the unexpected-message penalty when the message's (virtual) arrival
  /// precedes the receive's (virtual) post time — a deterministic
  /// criterion independent of real thread scheduling. Returns false —
  /// completing nothing and consuming neither `pr` nor `msg` — iff `msg`
  /// is a duplicate whose twin already completed (exactly-once).
  bool tryCompleteLocked(Endpoint& e, const PendingReceive& pr, Message msg);

  /// True iff this message is a fault-injected duplicate whose twin has
  /// already completed a receive; counts the suppression. Any-lock-safe
  /// (takes only dupMu_).
  bool dupSuppressed(const Message& msg);

  /// Remove the not-yet-completed twin of a completed duplicate from
  /// every parking queue. No locks held on entry; takes the matcher lock
  /// and endpoint locks one at a time.
  void purgeDuplicate(std::uint64_t dupId);

  /// The fault-injected send path: crash, drop, duplicate, delay, hold.
  /// Decides fates under the injector's per-source lock (holding faultMu_
  /// shared for injector-pointer stability), then routes with no lock
  /// held.
  void faultSend(int src, Message msg, std::optional<int> dest);

  ReceiveId postReceiveImpl(int pid, const Name& name, TransferKind kind,
                            CompletionFn fn, std::optional<RecvDesc> desc);

  static bool matches(const Name& a, TransferKind ka, const Name& b,
                      TransferKind kb);

  const int nprocs_;
  const CostModel model_;

  /// Send admission hook; set only while no traffic runs (see
  /// setSendHook), read by every sending thread.
  SendHook sendHook_;

  /// Crash-recovery hook; same publication discipline as sendHook_.
  CrashHook crashHook_;

  /// Barrier interrupt hook; same publication discipline as sendHook_.
  std::function<void()> barrierInterrupt_;

  /// Deferred-delivery wake hook; same publication discipline as
  /// sendHook_. Fired after every accepted transport submission.
  std::function<void(int)> wakeHook_;

  /// The descriptor mover underneath the matching logic (see
  /// transport.hpp). ringActive_ caches kind()==Ring so the no-ring send
  /// path pays one branch, not a virtual call.
  std::unique_ptr<Transport> transport_;
  const bool ringActive_;
  const std::size_t reapBatch_;

  /// Endpoint shards. Sized once in the constructor; never resized, so
  /// the embedded mutexes stay put.
  std::vector<Endpoint> eps_;

  /// Rendezvous matcher: guards matcherMsgs_, matcherRecvs_ and the
  /// live-interest index. Retiring a completed receive's interest is
  /// O(1): erase its id from matcherLive_; its deque entry becomes dead
  /// weight that pairing scans skip and compactMatcherLocked() reclaims
  /// once dead entries outnumber live ones (amortized O(1) per cancel).
  /// The pre-ring fabric instead scanned the FCFS deque on every direct
  /// completion — quadratic under oversubscription, and the reason the
  /// seed bench collapsed from 482k (P=16) to 147k msgs/s (P=64).
  mutable std::mutex matcherMu_;
  std::deque<Message> matcherMsgs_;        // unspecified sends, unmatched
  std::deque<MatcherEntry> matcherRecvs_;  // receive interest, FCFS
  std::unordered_set<ReceiveId> matcherLive_;  // ids with a live entry
  std::size_t matcherDead_ = 0;  // dead entries still in matcherRecvs_

  /// Reclaim dead FCFS entries. Caller holds matcherMu_.
  void compactMatcherLocked();

  std::atomic<ReceiveId> nextId_{1};

  /// Exactly-once bookkeeping for fault-injected duplicates. dupMu_ is a
  /// leaf lock (may be taken under an endpoint lock; takes nothing).
  mutable std::mutex dupMu_;
  std::unordered_set<std::uint64_t> completedDups_;
  std::atomic<std::uint64_t> dupSuppressedCount_{0};

  /// Fault injector. faultMu_ guards the injector *pointer*: sends take
  /// it shared (pointer stability only — per-message decision state lives
  /// behind the injector's per-source locks, so concurrent senders no
  /// longer serialize here), plan install/teardown and state export take
  /// it exclusive. Never held while an endpoint or matcher lock is taken
  /// (fault fates are decided first, messages routed after).
  /// faultsActive_ mirrors `injector_ != nullptr` so the no-plan send
  /// path stays a single atomic load.
  mutable std::shared_mutex faultMu_;
  std::unique_ptr<FaultInjector> injector_;       // null = no faults
  std::atomic<bool> faultsActive_{false};

  // Reusable barrier.
  mutable std::mutex barrierMu_;
  std::condition_variable barrierCv_;
  int barrierCount_ = 0;
  std::uint64_t barrierGen_ = 0;
  double barrierMax_ = 0.0;

  // Watchdog teardown (guarded by barrierMu_; sticky until clearAbort).
  bool aborted_ = false;
  std::string abortSummary_;
  std::shared_ptr<const std::string> abortReport_;
};

}  // namespace xdp::net
