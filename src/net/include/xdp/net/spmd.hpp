// SPMD execution: "the program will be loaded onto every processor of the
// target machine that is assigned to the program" (paper section 1).
// runSpmd launches the node program once per simulated processor, joins,
// and rethrows the failure(s).
#pragma once

#include <functional>

namespace xdp::net {

/// Run `node(pid)` on `nprocs` threads; every thread is always joined.
/// Deterministic memory visibility is guaranteed at the join.
///
/// Failure handling: one failed node rethrows its exception unchanged.
/// When several nodes fail, ALL failures are aggregated into one error
/// whose message lists each pid and its what(); the aggregate is a
/// DeadlockError (keeping the first diagnostic report) if any node
/// deadlocked, a UsageError if every failure was a usage error, and a
/// plain XdpError otherwise.
void runSpmd(int nprocs, const std::function<void(int pid)>& node);

}  // namespace xdp::net
