// SPMD execution: "the program will be loaded onto every processor of the
// target machine that is assigned to the program" (paper section 1).
// runSpmd launches the node program once per simulated processor, joins,
// and rethrows the first failure.
#pragma once

#include <functional>

namespace xdp::net {

/// Run `node(pid)` on `nprocs` threads. If any node throws, every thread is
/// still joined and the first exception (by pid) is rethrown. Deterministic
/// memory visibility is guaranteed at the join.
void runSpmd(int nprocs, const std::function<void(int pid)>& node);

}  // namespace xdp::net
