// Messages and names.
//
// "The name is used as a tag to associate a send with a corresponding
// receive" (paper section 2.6, footnote 2). A Name is a symbol id plus the
// canonical section; sends and receives match on exact name equality, and
// it is the compiler's responsibility that the sections of matched
// operations are identical — mismatches are unpredictable in XDP, and our
// debug-checks mode turns them into hard errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "xdp/sections/section.hpp"

namespace xdp::net {

/// What a transfer moves (paper Figure 1):
///   Data              ->  / <-     value only
///   Ownership         =>  / <=     ownership only, no value
///   OwnershipAndValue -=> / <=-    both
enum class TransferKind : std::uint8_t { Data, Ownership, OwnershipAndValue };

const char* transferKindName(TransferKind k);

/// The tag associating a send with its receive. A name is normally one
/// section; the aggregated-transfer extension (paper section 3.2: "allow
/// ... the left-hand side of XDP send and receive statements to be a set
/// of sections") adds further sections in `rest`, all packed into one
/// message in order.
struct Name {
  int symbol = -1;                ///< run-time symbol table index
  sec::Section section;           ///< canonical (first) section
  std::vector<sec::Section> rest; ///< additional sections, in payload order

  friend bool operator==(const Name& a, const Name& b) {
    return a.symbol == b.symbol && a.section == b.section &&
           a.rest == b.rest;
  }
};

std::ostream& operator<<(std::ostream& os, const Name& n);

struct Message {
  Name name;
  TransferKind kind = TransferKind::Data;
  int src = -1;
  std::vector<std::byte> payload;  ///< element values in Fortran order
  double arrival = 0.0;            ///< virtual time the message lands
  /// Nonzero only on fault-injected duplicated messages: original and copy
  /// carry the same id, and the fabric completes at most one of the pair
  /// (exactly-once delivery over an at-least-once transport).
  std::uint64_t dupId = 0;
};

}  // namespace xdp::net
