// Byte-level codecs for the net-layer pieces of a checkpoint image
// (DESIGN.md §11): sections, names, and in-flight messages. The encoding
// rides on ckpt::Writer/Reader, so everything here inherits the snapshot
// file's little-endian framing and bounds-checked decoding.
//
// Round-trip exactness: Triplet canonicalizes on construction and a
// Section stores canonical triplets, so encode→decode reproduces the
// identical value (operator== holds), which the checkpoint tests assert.
#pragma once

#include "xdp/ckpt/io.hpp"
#include "xdp/net/message.hpp"

namespace xdp::net::wire {

void putSection(ckpt::Writer& w, const sec::Section& s);
sec::Section getSection(ckpt::Reader& r);

void putName(ckpt::Writer& w, const Name& n);
Name getName(ckpt::Reader& r);

void putMessage(ckpt::Writer& w, const Message& m);
Message getMessage(ckpt::Reader& r);

}  // namespace xdp::net::wire
