// Fault injection for the simulated fabric.
//
// The paper's position (section 2.2) is that the *compiler* guarantees
// communication is well-formed, so the machine model is perfectly
// reliable. Production data-movement systems are validated the other way
// around: the transport is stressed with dropped, duplicated, delayed and
// reordered messages, and the stack on top must either mask the fault or
// fail loudly. A FaultPlan describes such a stress configuration; the
// FaultInjector applies it inside Fabric::send, so every program written
// against the runtime — jacobi, cannon, fft3d, the task farm — runs under
// faults unmodified.
//
// Determinism: decisions are drawn from a counter-based PRNG keyed on
// (plan seed, source pid, per-source send ordinal). A processor's send
// sequence is its program order, so the same plan yields the same fault
// decisions for every message on every run, regardless of how the OS
// schedules the SPMD threads.
//
// Fault semantics:
//   * drop      — the message is charged to the sender and then discarded.
//                 Lossy: the matching receive never completes (the hang
//                 watchdog converts that into a DeadlockError).
//   * duplicate — the message is delivered twice carrying the same dupId;
//                 the fabric's dedup layer guarantees exactly-once
//                 *completion* (the twin is suppressed or purged), so
//                 correct programs stay correct — this exercises the
//                 queue-purging paths.
//   * delay     — the message's virtual arrival time is pushed back,
//                 perturbing unexpected-message accounting and awaited
//                 clock synchronization. Non-lossy.
//   * reorder   — the message is held back and released after the *next*
//                 send from the same source (adjacent swap). Messages with
//                 equal names never swap (per-name FIFO is preserved, the
//                 MPI non-overtaking rule), so matching stays well-defined.
//   * stall     — every send from a stalled endpoint pays a fixed extra
//                 virtual delay (a slow NIC).
//   * crash     — sends from a crash endpoint die once the configured
//                 send count is exceeded. The fate is configurable: Abort
//                 throws FaultAbort (the run fails loudly); Recover hands
//                 the crash to the runtime's checkpoint layer, which rolls
//                 every processor back to the last good snapshot and
//                 disarms the crash (the died processor rejoins).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "xdp/ckpt/io.hpp"
#include "xdp/net/message.hpp"

namespace xdp::net {

/// What a crash-plan endpoint does when its send budget is exhausted.
enum class CrashFate : std::uint8_t {
  Abort = 0,    ///< throw FaultAbort — the whole run fails
  Recover = 1,  ///< request a checkpoint rollback and rejoin
};

/// One stress configuration. Probabilities are per message, in [0, 1].
struct FaultPlan {
  std::uint64_t seed = 1;     ///< decision-stream seed

  double dropProb = 0.0;      ///< P(message silently discarded)   — lossy
  double dupProb = 0.0;       ///< P(message delivered twice)
  double delayProb = 0.0;     ///< P(virtual delivery delay added)
  double maxDelay = 0.0;      ///< delay drawn uniformly from [0, maxDelay)
  double reorderProb = 0.0;   ///< P(message held past the next send)

  std::vector<int> stallPids; ///< endpoints with a slow NIC
  double stallDelay = 0.0;    ///< extra virtual delay per stalled send

  std::vector<int> crashPids;        ///< endpoints that die mid-run — lossy
  std::uint64_t crashAfterSends = 0; ///< sends completed before the crash
  CrashFate crashFate = CrashFate::Abort;  ///< what the crash does

  /// A lossy plan can legitimately leave unmatched receives / undelivered
  /// messages behind, so the runtime's end-of-run usage checks are waived.
  bool lossy() const { return dropProb > 0.0 || !crashPids.empty(); }
};

/// Counters of what the injector actually did (whole-fabric totals).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;             ///< extra copies created
  std::uint64_t suppressedDuplicates = 0;   ///< copies dedup'd at delivery
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;              ///< messages held back
  std::uint64_t stalled = 0;
  std::uint64_t crashed = 0;                ///< crash budgets exhausted
  std::uint64_t recovered = 0;              ///< crashes absorbed by rollback
};

/// Per-fabric fault state. All methods are called by the Fabric with its
/// faultMu_ held (the injector has no lock of its own); the Fabric never
/// holds faultMu_ while routing, so injector calls never nest inside
/// endpoint or matcher critical sections.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int nprocs);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  FaultStats& stats() { return stats_; }

  /// Per-message fate, decided deterministically from (seed, src, ordinal).
  struct Outcome {
    bool drop = false;
    bool duplicate = false;
    bool hold = false;        ///< reorder: park until the next send from src
    double extraDelay = 0.0;  ///< virtual-time delay (delay and/or stall)
  };
  Outcome classify(int src);

  /// True when this send's endpoint just died (its crash budget is
  /// exhausted). The caller picks the fate from plan().crashFate.
  bool crashNow(int src);

  /// Clear every crash flag and count one absorbed crash — called after a
  /// successful rollback so the recovered endpoint does not immediately
  /// die again (its send counters were rewound by restoreState).
  void disarmCrashes();

  // --- checkpoint image --------------------------------------------------
  /// Serialize the dynamic decision state (ordinals, send counts, held
  /// messages, dup ids, stats). The plan itself is runtime configuration
  /// and is not part of the image.
  void exportState(ckpt::Writer& w) const;
  /// Inverse of exportState. Crash/stall flags stay as configured.
  void restoreState(ckpt::Reader& r);

  /// Fresh nonzero id tagging a duplicated original/copy pair.
  std::uint64_t newDupId() { return nextDupId_++; }

  // --- reorder holdback (at most one held message per source) -----------
  struct Held {
    Message msg;
    std::optional<int> dest;  ///< original route (nullopt = rendezvous)
  };
  bool hasHeld(int src) const;
  const Name& heldName(int src) const;
  void hold(int src, Message msg, std::optional<int> dest);
  Held takeHeld(int src);
  /// Release every held message, lowest source pid first.
  std::vector<Held> takeAllHeld();
  std::size_t heldCount() const { return heldCount_; }

 private:
  FaultPlan plan_;
  FaultStats stats_;
  std::vector<char> stalled_;             // by pid
  std::vector<char> crashy_;              // by pid
  std::vector<std::uint64_t> seq_;        // per-source decision ordinal
  std::vector<std::uint64_t> sendCount_;  // per-source sends (for crash)
  std::vector<std::optional<Held>> held_;
  std::size_t heldCount_ = 0;
  std::uint64_t nextDupId_ = 1;
};

/// RAII default plan: every Fabric constructed while a FaultScope is alive
/// picks the plan up, which is how existing apps (whose runJacobi-style
/// drivers build their own Runtime) run under faults unmodified:
///
///   net::FaultScope faults(plan);
///   auto r = apps::runJacobi(cfg);   // fabric inside runs under `plan`
///
/// Scopes nest; destruction restores the previous plan.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::optional<FaultPlan> prev_;
};

/// The plan installed by the innermost live FaultScope, if any.
std::optional<FaultPlan> currentGlobalFaultPlan();

}  // namespace xdp::net
