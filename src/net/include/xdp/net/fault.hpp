// Fault injection for the simulated fabric.
//
// The paper's position (section 2.2) is that the *compiler* guarantees
// communication is well-formed, so the machine model is perfectly
// reliable. Production data-movement systems are validated the other way
// around: the transport is stressed with dropped, duplicated, delayed and
// reordered messages, and the stack on top must either mask the fault or
// fail loudly. A FaultPlan describes such a stress configuration; the
// FaultInjector applies it inside Fabric::send, so every program written
// against the runtime — jacobi, cannon, fft3d, the task farm — runs under
// faults unmodified.
//
// Determinism: decisions are drawn from a counter-based PRNG keyed on
// (plan seed, source pid, per-source send ordinal). A processor's send
// sequence is its program order, so the same plan yields the same fault
// decisions for every message on every run, regardless of how the OS
// schedules the SPMD threads.
//
// Fault semantics:
//   * drop      — the message is charged to the sender and then discarded.
//                 Lossy: the matching receive never completes (the hang
//                 watchdog converts that into a DeadlockError).
//   * duplicate — the message is delivered twice carrying the same dupId;
//                 the fabric's dedup layer guarantees exactly-once
//                 *completion* (the twin is suppressed or purged), so
//                 correct programs stay correct — this exercises the
//                 queue-purging paths.
//   * delay     — the message's virtual arrival time is pushed back,
//                 perturbing unexpected-message accounting and awaited
//                 clock synchronization. Non-lossy.
//   * reorder   — the message is held back and released after the *next*
//                 send from the same source (adjacent swap). Messages with
//                 equal names never swap (per-name FIFO is preserved, the
//                 MPI non-overtaking rule), so matching stays well-defined.
//   * stall     — every send from a stalled endpoint pays a fixed extra
//                 virtual delay (a slow NIC).
//   * crash     — sends from a crash endpoint die once the configured
//                 send count is exceeded. The fate is configurable: Abort
//                 throws FaultAbort (the run fails loudly); Recover hands
//                 the crash to the runtime's checkpoint layer, which rolls
//                 every processor back to the last good snapshot and
//                 disarms the crash (the died processor rejoins).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "xdp/ckpt/io.hpp"
#include "xdp/net/message.hpp"

namespace xdp::net {

/// What a crash-plan endpoint does when its send budget is exhausted.
enum class CrashFate : std::uint8_t {
  Abort = 0,    ///< throw FaultAbort — the whole run fails
  Recover = 1,  ///< request a checkpoint rollback and rejoin
};

/// One stress configuration. Probabilities are per message, in [0, 1].
struct FaultPlan {
  std::uint64_t seed = 1;     ///< decision-stream seed

  double dropProb = 0.0;      ///< P(message silently discarded)   — lossy
  double dupProb = 0.0;       ///< P(message delivered twice)
  double delayProb = 0.0;     ///< P(virtual delivery delay added)
  double maxDelay = 0.0;      ///< delay drawn uniformly from [0, maxDelay)
  double reorderProb = 0.0;   ///< P(message held past the next send)

  std::vector<int> stallPids; ///< endpoints with a slow NIC
  double stallDelay = 0.0;    ///< extra virtual delay per stalled send

  std::vector<int> crashPids;        ///< endpoints that die mid-run — lossy
  std::uint64_t crashAfterSends = 0; ///< sends completed before the crash
  CrashFate crashFate = CrashFate::Abort;  ///< what the crash does

  /// A lossy plan can legitimately leave unmatched receives / undelivered
  /// messages behind, so the runtime's end-of-run usage checks are waived.
  bool lossy() const { return dropProb > 0.0 || !crashPids.empty(); }
};

/// Counters of what the injector actually did (whole-fabric totals).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;             ///< extra copies created
  std::uint64_t suppressedDuplicates = 0;   ///< copies dedup'd at delivery
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;              ///< messages held back
  std::uint64_t stalled = 0;
  std::uint64_t crashed = 0;                ///< crash budgets exhausted
  std::uint64_t recovered = 0;              ///< crashes absorbed by rollback
};

/// Per-fabric fault state, sharded by source endpoint so concurrent
/// senders never serialize on one injector-wide lock (the decision
/// stream is keyed per source anyway — see the determinism note above).
///
/// Locking: each source's dynamic state (decision ordinal, send count,
/// reorder holdback) sits behind its own cache-line-aligned mutex,
/// exposed via sourceMu(src); the per-message methods (classify,
/// crashNow, the held accessors) require that lock held — the Fabric's
/// faultSend takes it once around the whole fate decision. Whole-fabric
/// stats are relaxed atomics (torn-read-free without any lock). Plan
/// configuration (stall/crash flags) is written only while no traffic
/// runs (construction, disarmCrashes under the Fabric's exclusive
/// faultMu_). The Fabric never holds any injector lock while routing, so
/// injector calls never nest inside endpoint or matcher critical
/// sections.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int nprocs);

  const FaultPlan& plan() const { return plan_; }
  /// Whole-fabric totals, materialized from the relaxed counters; safe at
  /// any time, including mid-run from a monitoring thread.
  FaultStats stats() const;

  /// The lock serializing per-message decisions for one source.
  std::mutex& sourceMu(int src) { return src_[idx(src)].mu; }

  /// Per-message fate, decided deterministically from (seed, src, ordinal).
  struct Outcome {
    bool drop = false;
    bool duplicate = false;
    bool hold = false;        ///< reorder: park until the next send from src
    double extraDelay = 0.0;  ///< virtual-time delay (delay and/or stall)
  };
  /// Caller holds sourceMu(src).
  Outcome classify(int src);

  /// True when this send's endpoint just died (its crash budget is
  /// exhausted). The caller picks the fate from plan().crashFate.
  /// Caller holds sourceMu(src).
  bool crashNow(int src);

  /// Clear every crash flag and count one absorbed crash — called after a
  /// successful rollback so the recovered endpoint does not immediately
  /// die again (its send counters were rewound by restoreState). Called
  /// while no traffic runs (under the Fabric's exclusive faultMu_).
  void disarmCrashes();

  // --- checkpoint image --------------------------------------------------
  /// Serialize the dynamic decision state (ordinals, send counts, held
  /// messages, dup ids, stats). The plan itself is runtime configuration
  /// and is not part of the image. Takes the per-source locks itself;
  /// callers export only at a capture point.
  void exportState(ckpt::Writer& w) const;
  /// Inverse of exportState. Crash/stall flags stay as configured.
  void restoreState(ckpt::Reader& r);

  /// Fresh nonzero id tagging a duplicated original/copy pair.
  std::uint64_t newDupId() {
    return nextDupId_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- reorder holdback (at most one held message per source) -----------
  /// All four single-source accessors require sourceMu(src) held.
  struct Held {
    Message msg;
    std::optional<int> dest;  ///< original route (nullopt = rendezvous)
  };
  bool hasHeld(int src) const;
  const Name& heldName(int src) const;
  void hold(int src, Message msg, std::optional<int> dest);
  Held takeHeld(int src);
  /// Release every held message, lowest source pid first. Takes the
  /// per-source locks itself.
  std::vector<Held> takeAllHeld();
  std::size_t heldCount() const {
    return heldCount_.load(std::memory_order_relaxed);
  }

 private:
  /// One source endpoint's dynamic state, cache-line-aligned so two
  /// sources' send paths never false-share.
  struct alignas(64) SrcState {
    mutable std::mutex mu;  ///< mutable: exportState is const but must lock
    std::uint64_t seq = 0;        ///< decision ordinal
    std::uint64_t sendCount = 0;  ///< sends so far (for crash budgets)
    std::optional<Held> held;     ///< reorder holdback
  };
  struct AtomicStats {
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> suppressedDuplicates{0};
    std::atomic<std::uint64_t> delayed{0};
    std::atomic<std::uint64_t> reordered{0};
    std::atomic<std::uint64_t> stalled{0};
    std::atomic<std::uint64_t> crashed{0};
    std::atomic<std::uint64_t> recovered{0};
  };

  std::size_t idx(int src) const { return static_cast<std::size_t>(src); }

  FaultPlan plan_;
  AtomicStats stats_;
  std::vector<char> stalled_;  // by pid; written only while no traffic runs
  std::vector<char> crashy_;   // by pid; same discipline
  /// Sized once in the constructor; never resized, so the embedded
  /// mutexes stay put.
  std::vector<SrcState> src_;
  std::atomic<std::size_t> heldCount_{0};
  std::atomic<std::uint64_t> nextDupId_{1};
};

/// RAII default plan: every Fabric constructed while a FaultScope is alive
/// picks the plan up, which is how existing apps (whose runJacobi-style
/// drivers build their own Runtime) run under faults unmodified:
///
///   net::FaultScope faults(plan);
///   auto r = apps::runJacobi(cfg);   // fabric inside runs under `plan`
///
/// Scopes nest; destruction restores the previous plan.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::optional<FaultPlan> prev_;
};

/// The plan installed by the innermost live FaultScope, if any.
std::optional<FaultPlan> currentGlobalFaultPlan();

}  // namespace xdp::net
