#include "xdp/net/fault.hpp"

#include <algorithm>
#include <mutex>

#include "xdp/net/wire.hpp"
#include "xdp/support/check.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::net {

namespace {

void markPids(const std::vector<int>& pids, int nprocs,
              std::vector<char>& flags, const char* what) {
  for (int p : pids) {
    XDP_CHECK(p >= 0 && p < nprocs, std::string("FaultPlan: bad pid in ") + what);
    flags[static_cast<std::size_t>(p)] = 1;
  }
}

double unitReal(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, int nprocs)
    : plan_(std::move(plan)),
      stalled_(static_cast<std::size_t>(nprocs), 0),
      crashy_(static_cast<std::size_t>(nprocs), 0),
      src_(static_cast<std::size_t>(nprocs)) {
  auto checkProb = [](double p, const char* what) {
    XDP_CHECK(p >= 0.0 && p <= 1.0,
              std::string("FaultPlan: probability out of [0,1]: ") + what);
  };
  checkProb(plan_.dropProb, "dropProb");
  checkProb(plan_.dupProb, "dupProb");
  checkProb(plan_.delayProb, "delayProb");
  checkProb(plan_.reorderProb, "reorderProb");
  markPids(plan_.stallPids, nprocs, stalled_, "stallPids");
  markPids(plan_.crashPids, nprocs, crashy_, "crashPids");
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.dropped = stats_.dropped.load(kRelaxed);
  s.duplicated = stats_.duplicated.load(kRelaxed);
  s.suppressedDuplicates = stats_.suppressedDuplicates.load(kRelaxed);
  s.delayed = stats_.delayed.load(kRelaxed);
  s.reordered = stats_.reordered.load(kRelaxed);
  s.stalled = stats_.stalled.load(kRelaxed);
  s.crashed = stats_.crashed.load(kRelaxed);
  s.recovered = stats_.recovered.load(kRelaxed);
  return s;
}

FaultInjector::Outcome FaultInjector::classify(int src) {
  SrcState& st = src_[idx(src)];
  const std::uint64_t ordinal = st.seq++;
  // Counter-based decision stream: one generator per (seed, src, ordinal),
  // so decisions do not depend on the interleaving of other endpoints.
  SplitMix64 g(plan_.seed +
               0x9e3779b97f4a7c15ULL * (ordinal + 1) +
               0x2545f4914f6cdd1dULL * (static_cast<std::uint64_t>(src) + 1));
  const double uDrop = unitReal(g.next());
  const double uDup = unitReal(g.next());
  const double uDelay = unitReal(g.next());
  const double uDelayAmt = unitReal(g.next());
  const double uReorder = unitReal(g.next());

  Outcome o;
  o.drop = uDrop < plan_.dropProb;
  if (o.drop) {
    stats_.dropped.fetch_add(1, kRelaxed);
    return o;
  }
  o.duplicate = uDup < plan_.dupProb;
  if (o.duplicate) stats_.duplicated.fetch_add(1, kRelaxed);
  if (uDelay < plan_.delayProb) {
    o.extraDelay += uDelayAmt * plan_.maxDelay;
    stats_.delayed.fetch_add(1, kRelaxed);
  }
  if (stalled_[idx(src)]) {
    o.extraDelay += plan_.stallDelay;
    stats_.stalled.fetch_add(1, kRelaxed);
  }
  o.hold = uReorder < plan_.reorderProb;
  return o;
}

bool FaultInjector::crashNow(int src) {
  if (!crashy_[idx(src)]) return false;
  SrcState& st = src_[idx(src)];
  st.sendCount += 1;
  if (st.sendCount <= plan_.crashAfterSends) return false;
  if (st.sendCount == plan_.crashAfterSends + 1)
    stats_.crashed.fetch_add(1, kRelaxed);
  return true;
}

void FaultInjector::disarmCrashes() {
  std::fill(crashy_.begin(), crashy_.end(), 0);
  // The crash that triggered this recovery was counted by crashNow and
  // then rewound by restoreState (the snapshot predates it) — re-record
  // it here so stats stay truthful across the rollback.
  stats_.crashed.fetch_add(1, kRelaxed);
  stats_.recovered.fetch_add(1, kRelaxed);
}

void FaultInjector::exportState(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(src_.size()));
  for (const SrcState& st : src_) {
    std::lock_guard lk(st.mu);
    w.u64(st.seq);
  }
  for (const SrcState& st : src_) {
    std::lock_guard lk(st.mu);
    w.u64(st.sendCount);
  }
  w.u64(nextDupId_.load(kRelaxed));
  const FaultStats s = stats();
  w.u64(s.dropped);
  w.u64(s.duplicated);
  w.u64(s.suppressedDuplicates);
  w.u64(s.delayed);
  w.u64(s.reordered);
  w.u64(s.stalled);
  w.u64(s.crashed);
  w.u64(s.recovered);
  w.u32(static_cast<std::uint32_t>(src_.size()));
  for (const SrcState& st : src_) {
    std::lock_guard lk(st.mu);
    w.boolean(st.held.has_value());
    if (!st.held.has_value()) continue;
    wire::putMessage(w, st.held->msg);
    w.boolean(st.held->dest.has_value());
    if (st.held->dest.has_value()) w.i64(*st.held->dest);
  }
}

void FaultInjector::restoreState(ckpt::Reader& r) {
  const std::uint32_t n = r.u32();
  if (n != src_.size())
    throw ckpt::CkptError("fault image endpoint count mismatch");
  for (SrcState& st : src_) {
    std::lock_guard lk(st.mu);
    st.seq = r.u64();
  }
  for (SrcState& st : src_) {
    std::lock_guard lk(st.mu);
    st.sendCount = r.u64();
  }
  nextDupId_.store(r.u64(), kRelaxed);
  stats_.dropped.store(r.u64(), kRelaxed);
  stats_.duplicated.store(r.u64(), kRelaxed);
  stats_.suppressedDuplicates.store(r.u64(), kRelaxed);
  stats_.delayed.store(r.u64(), kRelaxed);
  stats_.reordered.store(r.u64(), kRelaxed);
  stats_.stalled.store(r.u64(), kRelaxed);
  stats_.crashed.store(r.u64(), kRelaxed);
  stats_.recovered.store(r.u64(), kRelaxed);
  const std::uint32_t hn = r.u32();
  if (hn != src_.size())
    throw ckpt::CkptError("fault image held-slot count mismatch");
  std::size_t count = 0;
  for (SrcState& st : src_) {
    std::lock_guard lk(st.mu);
    st.held.reset();
    if (!r.boolean()) continue;
    Held h;
    h.msg = wire::getMessage(r);
    if (r.boolean()) h.dest = static_cast<int>(r.i64());
    st.held = std::move(h);
    count += 1;
  }
  heldCount_.store(count, kRelaxed);
}

bool FaultInjector::hasHeld(int src) const {
  return src_[idx(src)].held.has_value();
}

const Name& FaultInjector::heldName(int src) const {
  const auto& h = src_[idx(src)].held;
  XDP_CHECK(h.has_value(), "heldName: no held message for this source");
  return h->msg.name;
}

void FaultInjector::hold(int src, Message msg, std::optional<int> dest) {
  auto& slot = src_[idx(src)].held;
  XDP_CHECK(!slot.has_value(), "hold: source already has a held message");
  slot = Held{std::move(msg), dest};
  heldCount_.fetch_add(1, kRelaxed);
  stats_.reordered.fetch_add(1, kRelaxed);
}

FaultInjector::Held FaultInjector::takeHeld(int src) {
  auto& slot = src_[idx(src)].held;
  XDP_CHECK(slot.has_value(), "takeHeld: no held message for this source");
  Held h = std::move(*slot);
  slot.reset();
  heldCount_.fetch_sub(1, kRelaxed);
  return h;
}

std::vector<FaultInjector::Held> FaultInjector::takeAllHeld() {
  std::vector<Held> out;
  for (SrcState& st : src_) {
    std::lock_guard lk(st.mu);
    if (!st.held.has_value()) continue;
    out.push_back(std::move(*st.held));
    st.held.reset();
    heldCount_.fetch_sub(1, kRelaxed);
  }
  return out;
}

namespace {
std::mutex gScopeMu;
std::optional<FaultPlan> gScopePlan;
}  // namespace

FaultScope::FaultScope(FaultPlan plan) {
  std::lock_guard lk(gScopeMu);
  prev_ = std::move(gScopePlan);
  gScopePlan = std::move(plan);
}

FaultScope::~FaultScope() {
  std::lock_guard lk(gScopeMu);
  gScopePlan = std::move(prev_);
}

std::optional<FaultPlan> currentGlobalFaultPlan() {
  std::lock_guard lk(gScopeMu);
  return gScopePlan;
}

}  // namespace xdp::net
