#include "xdp/net/fault.hpp"

#include <algorithm>
#include <mutex>

#include "xdp/net/wire.hpp"
#include "xdp/support/check.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::net {

namespace {

void markPids(const std::vector<int>& pids, int nprocs,
              std::vector<char>& flags, const char* what) {
  for (int p : pids) {
    XDP_CHECK(p >= 0 && p < nprocs, std::string("FaultPlan: bad pid in ") + what);
    flags[static_cast<std::size_t>(p)] = 1;
  }
}

double unitReal(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, int nprocs)
    : plan_(std::move(plan)),
      stalled_(static_cast<std::size_t>(nprocs), 0),
      crashy_(static_cast<std::size_t>(nprocs), 0),
      seq_(static_cast<std::size_t>(nprocs), 0),
      sendCount_(static_cast<std::size_t>(nprocs), 0),
      held_(static_cast<std::size_t>(nprocs)) {
  auto checkProb = [](double p, const char* what) {
    XDP_CHECK(p >= 0.0 && p <= 1.0,
              std::string("FaultPlan: probability out of [0,1]: ") + what);
  };
  checkProb(plan_.dropProb, "dropProb");
  checkProb(plan_.dupProb, "dupProb");
  checkProb(plan_.delayProb, "delayProb");
  checkProb(plan_.reorderProb, "reorderProb");
  markPids(plan_.stallPids, nprocs, stalled_, "stallPids");
  markPids(plan_.crashPids, nprocs, crashy_, "crashPids");
}

FaultInjector::Outcome FaultInjector::classify(int src) {
  const auto s = static_cast<std::size_t>(src);
  const std::uint64_t ordinal = seq_[s]++;
  // Counter-based decision stream: one generator per (seed, src, ordinal),
  // so decisions do not depend on the interleaving of other endpoints.
  SplitMix64 g(plan_.seed +
               0x9e3779b97f4a7c15ULL * (ordinal + 1) +
               0x2545f4914f6cdd1dULL * (static_cast<std::uint64_t>(src) + 1));
  const double uDrop = unitReal(g.next());
  const double uDup = unitReal(g.next());
  const double uDelay = unitReal(g.next());
  const double uDelayAmt = unitReal(g.next());
  const double uReorder = unitReal(g.next());

  Outcome o;
  o.drop = uDrop < plan_.dropProb;
  if (o.drop) {
    stats_.dropped += 1;
    return o;
  }
  o.duplicate = uDup < plan_.dupProb;
  if (o.duplicate) stats_.duplicated += 1;
  if (uDelay < plan_.delayProb) {
    o.extraDelay += uDelayAmt * plan_.maxDelay;
    stats_.delayed += 1;
  }
  if (stalled_[s]) {
    o.extraDelay += plan_.stallDelay;
    stats_.stalled += 1;
  }
  o.hold = uReorder < plan_.reorderProb;
  return o;
}

bool FaultInjector::crashNow(int src) {
  const auto s = static_cast<std::size_t>(src);
  if (!crashy_[s]) return false;
  sendCount_[s] += 1;
  if (sendCount_[s] <= plan_.crashAfterSends) return false;
  if (sendCount_[s] == plan_.crashAfterSends + 1) stats_.crashed += 1;
  return true;
}

void FaultInjector::disarmCrashes() {
  std::fill(crashy_.begin(), crashy_.end(), 0);
  // The crash that triggered this recovery was counted by crashNow and
  // then rewound by restoreState (the snapshot predates it) — re-record
  // it here so stats stay truthful across the rollback.
  stats_.crashed += 1;
  stats_.recovered += 1;
}

void FaultInjector::exportState(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(seq_.size()));
  for (std::uint64_t v : seq_) w.u64(v);
  for (std::uint64_t v : sendCount_) w.u64(v);
  w.u64(nextDupId_);
  w.u64(stats_.dropped);
  w.u64(stats_.duplicated);
  w.u64(stats_.suppressedDuplicates);
  w.u64(stats_.delayed);
  w.u64(stats_.reordered);
  w.u64(stats_.stalled);
  w.u64(stats_.crashed);
  w.u64(stats_.recovered);
  w.u32(static_cast<std::uint32_t>(held_.size()));
  for (const auto& slot : held_) {
    w.boolean(slot.has_value());
    if (!slot.has_value()) continue;
    wire::putMessage(w, slot->msg);
    w.boolean(slot->dest.has_value());
    if (slot->dest.has_value()) w.i64(*slot->dest);
  }
}

void FaultInjector::restoreState(ckpt::Reader& r) {
  const std::uint32_t n = r.u32();
  if (n != seq_.size())
    throw ckpt::CkptError("fault image endpoint count mismatch");
  for (auto& v : seq_) v = r.u64();
  for (auto& v : sendCount_) v = r.u64();
  nextDupId_ = r.u64();
  stats_.dropped = r.u64();
  stats_.duplicated = r.u64();
  stats_.suppressedDuplicates = r.u64();
  stats_.delayed = r.u64();
  stats_.reordered = r.u64();
  stats_.stalled = r.u64();
  stats_.crashed = r.u64();
  stats_.recovered = r.u64();
  const std::uint32_t hn = r.u32();
  if (hn != held_.size())
    throw ckpt::CkptError("fault image held-slot count mismatch");
  heldCount_ = 0;
  for (auto& slot : held_) {
    slot.reset();
    if (!r.boolean()) continue;
    Held h;
    h.msg = wire::getMessage(r);
    if (r.boolean()) h.dest = static_cast<int>(r.i64());
    slot = std::move(h);
    heldCount_ += 1;
  }
}

bool FaultInjector::hasHeld(int src) const {
  return held_[static_cast<std::size_t>(src)].has_value();
}

const Name& FaultInjector::heldName(int src) const {
  const auto& h = held_[static_cast<std::size_t>(src)];
  XDP_CHECK(h.has_value(), "heldName: no held message for this source");
  return h->msg.name;
}

void FaultInjector::hold(int src, Message msg, std::optional<int> dest) {
  auto& slot = held_[static_cast<std::size_t>(src)];
  XDP_CHECK(!slot.has_value(), "hold: source already has a held message");
  slot = Held{std::move(msg), dest};
  heldCount_ += 1;
  stats_.reordered += 1;
}

FaultInjector::Held FaultInjector::takeHeld(int src) {
  auto& slot = held_[static_cast<std::size_t>(src)];
  XDP_CHECK(slot.has_value(), "takeHeld: no held message for this source");
  Held h = std::move(*slot);
  slot.reset();
  heldCount_ -= 1;
  return h;
}

std::vector<FaultInjector::Held> FaultInjector::takeAllHeld() {
  std::vector<Held> out;
  for (auto& slot : held_) {
    if (!slot.has_value()) continue;
    out.push_back(std::move(*slot));
    slot.reset();
  }
  heldCount_ = 0;
  return out;
}

namespace {
std::mutex gScopeMu;
std::optional<FaultPlan> gScopePlan;
}  // namespace

FaultScope::FaultScope(FaultPlan plan) {
  std::lock_guard lk(gScopeMu);
  prev_ = std::move(gScopePlan);
  gScopePlan = std::move(plan);
}

FaultScope::~FaultScope() {
  std::lock_guard lk(gScopeMu);
  gScopePlan = std::move(prev_);
}

std::optional<FaultPlan> currentGlobalFaultPlan() {
  std::lock_guard lk(gScopeMu);
  return gScopePlan;
}

}  // namespace xdp::net
