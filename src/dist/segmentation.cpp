#include "xdp/dist/segmentation.hpp"

#include "xdp/support/check.hpp"

namespace xdp::dist {

std::vector<Triplet> chopTriplet(const Triplet& t, Index m) {
  std::vector<Triplet> out;
  if (t.empty()) return out;
  if (m <= 0 || m >= t.count()) {
    out.push_back(t);
    return out;
  }
  for (Index k = 0; k < t.count(); k += m) {
    Index last = std::min(t.count() - 1, k + m - 1);
    out.emplace_back(t.at(k), t.at(last), t.stride());
  }
  return out;
}

std::vector<Section> tileSection(const Section& s, const SegmentShape& shape) {
  std::vector<Section> product{Section(std::vector<Triplet>{})};
  for (int d = 0; d < s.rank(); ++d) {
    auto chunks = chopTriplet(s.dim(d), shape.elems[static_cast<unsigned>(d)]);
    std::vector<Section> next;
    // Fortran order: earlier dimensions vary fastest, so each new
    // dimension's chunks become the outer loop of the product.
    for (const Triplet& t : chunks) {
      for (const Section& partial : product) {
        std::vector<Triplet> dims;
        for (int e = 0; e < partial.rank(); ++e) dims.push_back(partial.dim(e));
        dims.push_back(t);
        next.emplace_back(dims);
      }
    }
    product = std::move(next);
  }
  return product;
}

std::vector<Section> segmentsOf(const Distribution& dist, int pid,
                                const SegmentShape& shape) {
  std::vector<Section> out;
  const RegionList part = dist.localPart(pid);
  for (const Section& piece : part.sections()) {
    auto tiles = tileSection(piece, shape);
    out.insert(out.end(), tiles.begin(), tiles.end());
  }
  return out;
}

}  // namespace xdp::dist
