#include "xdp/dist/distribution.hpp"

#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::dist {

Distribution::Distribution(Section global, std::vector<DimSpec> specs)
    : global_(std::move(global)), specs_(std::move(specs)) {
  XDP_CHECK(static_cast<int>(specs_.size()) == global_.rank(),
            "one DimSpec required per array dimension");
  nprocs_ = 1;
  for (int d = 0; d < global_.rank(); ++d) {
    const Triplet& t = global_.dim(d);
    XDP_CHECK(t.stride() == 1 && !t.empty(),
              "global shape must be a dense, non-empty box");
    const DimSpec& s = specs_[static_cast<unsigned>(d)];
    if (s.kind == DistKind::Collapsed) continue;
    XDP_CHECK(s.procs >= 1, "distributed dimension needs procs >= 1");
    XDP_CHECK(s.kind != DistKind::BlockCyclic || s.blockSize >= 1,
              "BlockCyclic needs blockSize >= 1");
    nprocs_ *= s.procs;
  }
}

Index Distribution::blockSizeOf(int d) const {
  const DimSpec& s = specs_[static_cast<unsigned>(d)];
  const Triplet& t = global_.dim(d);
  Index n = t.count();
  switch (s.kind) {
    case DistKind::Collapsed:
      return n;
    case DistKind::Block:
      return (n + s.procs - 1) / s.procs;
    case DistKind::Cyclic:
      return 1;
    case DistKind::BlockCyclic:
      return s.blockSize;
  }
  return n;
}

int Distribution::dimCoordOf(int d, Index i) const {
  const DimSpec& s = specs_[static_cast<unsigned>(d)];
  if (s.kind == DistKind::Collapsed) return 0;
  const Triplet& t = global_.dim(d);
  XDP_CHECK(i >= t.lb() && i <= t.ub(), "index outside global bounds");
  Index off = i - t.lb();
  switch (s.kind) {
    case DistKind::Block:
      return static_cast<int>(off / blockSizeOf(d));
    case DistKind::Cyclic:
      return static_cast<int>(off % s.procs);
    case DistKind::BlockCyclic:
      return static_cast<int>((off / s.blockSize) % s.procs);
    case DistKind::Collapsed:
      break;
  }
  return 0;
}

int Distribution::ownerOf(const Point& p) const {
  XDP_CHECK(p.rank() == rank(), "point rank mismatch");
  int pid = 0;
  int mult = 1;
  for (int d = 0; d < rank(); ++d) {
    const DimSpec& s = specs_[static_cast<unsigned>(d)];
    if (s.kind == DistKind::Collapsed) continue;
    pid += dimCoordOf(d, p[d]) * mult;
    mult *= s.procs;
  }
  return pid;
}

std::array<int, sec::kMaxRank> Distribution::coordsOf(int pid) const {
  XDP_CHECK(pid >= 0 && pid < nprocs_, "pid out of range");
  std::array<int, sec::kMaxRank> c{};
  int rem = pid;
  for (int d = 0; d < rank(); ++d) {
    const DimSpec& s = specs_[static_cast<unsigned>(d)];
    if (s.kind == DistKind::Collapsed) {
      c[static_cast<unsigned>(d)] = 0;
      continue;
    }
    c[static_cast<unsigned>(d)] = rem % s.procs;
    rem /= s.procs;
  }
  return c;
}

std::vector<Triplet> Distribution::dimLocal(int d, int c) const {
  const DimSpec& s = specs_[static_cast<unsigned>(d)];
  const Triplet& t = global_.dim(d);
  std::vector<Triplet> out;
  switch (s.kind) {
    case DistKind::Collapsed:
      out.push_back(t);
      break;
    case DistKind::Block: {
      Index bs = blockSizeOf(d);
      Index lo = t.lb() + c * bs;
      Index hi = std::min(t.ub(), lo + bs - 1);
      if (lo <= hi) out.emplace_back(lo, hi);
      break;
    }
    case DistKind::Cyclic: {
      Index lo = t.lb() + c;
      if (lo <= t.ub()) out.emplace_back(lo, t.ub(), s.procs);
      break;
    }
    case DistKind::BlockCyclic: {
      Index b = s.blockSize;
      for (Index start = t.lb() + c * b; start <= t.ub();
           start += static_cast<Index>(s.procs) * b) {
        out.emplace_back(start, std::min(t.ub(), start + b - 1));
      }
      break;
    }
  }
  return out;
}

RegionList Distribution::localPart(int pid) const {
  // A distribution may use fewer processors than the machine has; the
  // remaining processors simply own nothing initially.
  if (pid >= nprocs_) return RegionList();
  auto coords = coordsOf(pid);
  // Cartesian product of the per-dimension triplet lists.
  std::vector<Section> product{Section(std::vector<Triplet>{})};
  for (int d = 0; d < rank(); ++d) {
    auto trips = dimLocal(d, coords[static_cast<unsigned>(d)]);
    std::vector<Section> next;
    for (const Section& partial : product) {
      for (const Triplet& t : trips) {
        std::vector<Triplet> dims;
        for (int e = 0; e < partial.rank(); ++e) dims.push_back(partial.dim(e));
        dims.push_back(t);
        next.emplace_back(dims);
      }
    }
    product = std::move(next);
  }
  // Filter out any degenerate empty sections (an empty per-dim list above
  // already yields an empty product).
  std::vector<Section> nonEmpty;
  for (Section& s : product) {
    if (s.rank() == rank() && !s.empty()) nonEmpty.push_back(std::move(s));
  }
  return RegionList(std::move(nonEmpty));
}

std::string Distribution::str() const {
  std::ostringstream os;
  os << "(";
  for (int d = 0; d < rank(); ++d) {
    if (d) os << ", ";
    const DimSpec& s = specs_[static_cast<unsigned>(d)];
    switch (s.kind) {
      case DistKind::Collapsed:
        os << "*";
        break;
      case DistKind::Block:
        os << "BLOCK";
        break;
      case DistKind::Cyclic:
        os << "CYCLIC";
        break;
      case DistKind::BlockCyclic:
        os << "CYCLIC(" << s.blockSize << ")";
        break;
    }
  }
  os << ")";
  return os.str();
}

}  // namespace xdp::dist
