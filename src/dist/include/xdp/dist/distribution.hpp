// HPF-style data distributions (paper section 3: "we assume a fixed, known
// processor grid and partitioning as allowed in HPF").
//
// A Distribution maps every element of an array's global index space to
// exactly one owning processor. Each array dimension is either
//   * collapsed  ("*")            — not distributed,
//   * BLOCK                        — contiguous chunks of ceil(N/P),
//   * CYCLIC                       — round-robin single elements,
//   * CYCLIC(b) / BLOCK-CYCLIC     — round-robin blocks of b.
// The distributed dimensions span a Cartesian processor arrangement; the
// arrangement's positions are linearized (first distributed dimension
// fastest) onto machine processor ids 0..P-1.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "xdp/sections/region_list.hpp"
#include "xdp/sections/section.hpp"

namespace xdp::dist {

using sec::Index;
using sec::Point;
using sec::RegionList;
using sec::Section;
using sec::Triplet;

enum class DistKind { Collapsed, Block, Cyclic, BlockCyclic };

/// Per-dimension distribution spec.
struct DimSpec {
  DistKind kind = DistKind::Collapsed;
  int procs = 1;        ///< processor arrangement extent in this dimension
  Index blockSize = 1;  ///< block size for BlockCyclic

  static DimSpec collapsed() { return {DistKind::Collapsed, 1, 1}; }
  static DimSpec block(int procs) { return {DistKind::Block, procs, 1}; }
  static DimSpec cyclic(int procs) { return {DistKind::Cyclic, procs, 1}; }
  static DimSpec blockCyclic(int procs, Index blockSize) {
    return {DistKind::BlockCyclic, procs, blockSize};
  }

  friend bool operator==(const DimSpec& a, const DimSpec& b) {
    return a.kind == b.kind && a.procs == b.procs &&
           (a.kind != DistKind::BlockCyclic || a.blockSize == b.blockSize);
  }
};

class Distribution {
 public:
  Distribution() = default;

  /// `global` must be a dense box (stride-1 triplet per dimension); `specs`
  /// has one entry per dimension. The number of machine processors is the
  /// product of `procs` over distributed dimensions.
  Distribution(Section global, std::vector<DimSpec> specs);

  int rank() const { return global_.rank(); }
  int nprocs() const { return nprocs_; }
  const Section& global() const { return global_; }
  const std::vector<DimSpec>& specs() const { return specs_; }

  /// Owning processor id of a global index (every element has exactly one).
  int ownerOf(const Point& p) const;

  /// Processor-arrangement coordinate owning index i in dimension d
  /// (0 for collapsed dimensions).
  int dimCoordOf(int d, Index i) const;

  /// Index set owned by arrangement coordinate c in dimension d, as
  /// disjoint triplets (a single triplet except for BlockCyclic).
  std::vector<Triplet> dimLocal(int d, int c) const;

  /// Arrangement coordinates of processor pid (first distributed dimension
  /// fastest); entry is 0 for collapsed dimensions.
  std::array<int, sec::kMaxRank> coordsOf(int pid) const;

  /// All elements owned by pid, as disjoint sections.
  RegionList localPart(int pid) const;

  /// "(*, BLOCK)"-style rendering, as in the paper's Figure 2.
  std::string str() const;

  /// True iff the two distributions assign every index the same owner.
  /// (Structural check: identical global box and specs.)
  friend bool operator==(const Distribution& a, const Distribution& b) {
    return a.global_ == b.global_ && a.specs_ == b.specs_;
  }

  /// Effective block size used in dimension d (for Block this is the
  /// computed ceil(N/P); for Cyclic 1; for Collapsed the whole extent).
  Index blockSizeOf(int d) const;

 private:
  Section global_;
  std::vector<DimSpec> specs_;
  int nprocs_ = 1;
};

}  // namespace xdp::dist
