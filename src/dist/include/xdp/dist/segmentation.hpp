// Segmentation of a processor's local partition (paper section 3.1 and
// Figure 3): "the compiler can logically divide each processor's local
// partition of an array into segments of a size and shape chosen by the
// compiler. A processor can transfer the ownership of each segment
// individually."
//
// A segment shape gives, per dimension, how many *owned elements* (not
// index-space span) each segment covers. Under a CYCLIC distribution a
// processor's owned elements in a dimension are strided; a segment of m
// elements is then a strided triplet. This generalizes the paper's picture
// (which shows dense blocks) to every HPF distribution uniformly.
#pragma once

#include <array>
#include <vector>

#include "xdp/dist/distribution.hpp"

namespace xdp::dist {

/// Elements per segment, per dimension. Extent 0 means "whole dimension".
struct SegmentShape {
  std::array<Index, sec::kMaxRank> elems{};

  static SegmentShape of(std::initializer_list<Index> e) {
    SegmentShape s;
    int d = 0;
    for (Index v : e) s.elems[static_cast<unsigned>(d++)] = v;
    return s;
  }
  /// One segment spanning the whole local partition piece.
  static SegmentShape whole() { return SegmentShape{}; }
};

/// Split a triplet into consecutive chunks of `m` elements (last chunk may
/// be smaller). m == 0 means a single chunk.
std::vector<Triplet> chopTriplet(const Triplet& t, Index m);

/// Tile one rectangular piece of a local partition into segments.
std::vector<Section> tileSection(const Section& s, const SegmentShape& shape);

/// All segments of processor `pid`'s local partition under `dist`,
/// in deterministic order (partition pieces in localPart order, then
/// Fortran order of tiles within a piece).
std::vector<Section> segmentsOf(const Distribution& dist, int pid,
                                const SegmentShape& shape);

}  // namespace xdp::dist
