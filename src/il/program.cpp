#include "xdp/il/program.hpp"

#include "xdp/support/check.hpp"

namespace xdp::il {

const ArrayDecl& Program::decl(int sym) const {
  XDP_CHECK(sym >= 0 && sym < static_cast<int>(arrays.size()),
            "bad symbol index");
  return arrays[static_cast<std::size_t>(sym)];
}

int Program::findSymbol(const std::string& name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == name) return static_cast<int>(i);
  return -1;
}

int Program::addArray(ArrayDecl d) {
  XDP_CHECK(findSymbol(d.name) < 0, "duplicate array name: " + d.name);
  arrays.push_back(std::move(d));
  return static_cast<int>(arrays.size()) - 1;
}

}  // namespace xdp::il
