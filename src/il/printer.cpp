#include "xdp/il/printer.hpp"

#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::il {
namespace {

class Printer {
 public:
  Printer(const Program& prog, PrintOptions opts) : prog_(prog), opts_(opts) {}

  std::string expr(const ExprPtr& e) {
    XDP_CHECK(e != nullptr, "printing null expression");
    switch (e->kind) {
      case ExprKind::IntConst: {
        std::ostringstream os;
        os << e->intVal;
        return os.str();
      }
      case ExprKind::RealConst: {
        std::ostringstream os;
        os << e->realVal;
        return os.str();
      }
      case ExprKind::ScalarRef:
        return e->name;
      case ExprKind::MyPid:
        return "mypid";
      case ExprKind::NProcs:
        return "nprocs";
      case ExprKind::Bin:
        if (e->op == BinOp::Min || e->op == BinOp::Max)
          return std::string(binOpName(e->op)) + "(" + expr(e->lhs) + ", " +
                 expr(e->rhs) + ")";
        return "(" + expr(e->lhs) + " " + binOpName(e->op) + " " +
               expr(e->rhs) + ")";
      case ExprKind::Neg:
        return "(-" + expr(e->lhs) + ")";
      case ExprKind::Not:
        return "!(" + expr(e->lhs) + ")";
      case ExprKind::Elem:
        return ref(e->sym, e->section);
      case ExprKind::Iown:
        return "iown(" + ref(e->sym, e->section) + ")";
      case ExprKind::Accessible:
        return "accessible(" + ref(e->sym, e->section) + ")";
      case ExprKind::Await:
        return "await(" + ref(e->sym, e->section) + ")";
      case ExprKind::MyLb:
        return "mylb(" + ref(e->sym, e->section) + "," +
               std::to_string(e->dim) + ")";
      case ExprKind::MyUb:
        return "myub(" + ref(e->sym, e->section) + "," +
               std::to_string(e->dim) + ")";
      case ExprKind::SecNonEmpty:
        return "nonempty(" + ref(e->sym, e->section) + ")";
    }
    return "?";
  }

  std::string section(const SectionExprPtr& s) {
    XDP_CHECK(s != nullptr, "printing null section expression");
    switch (s->kind) {
      case SecExprKind::Literal: {
        std::string out = "[";
        for (std::size_t d = 0; d < s->dims.size(); ++d) {
          if (d) out += ",";
          const TripletExpr& t = s->dims[d];
          out += expr(t.lb);
          if (t.ub) out += ":" + expr(t.ub);
          if (t.stride) out += ":" + expr(t.stride);
        }
        return out + "]";
      }
      case SecExprKind::LocalPart:
        return std::string("[mypart") +
               (s->distOverride ? "@" + s->distOverride->str() : "") + "]";
      case SecExprKind::OwnerPart:
        return "[part(" + expr(s->pid) + ")" +
               (s->distOverride ? "@" + s->distOverride->str() : "") + "]";
      case SecExprKind::Intersect:
        return section(s->a) + "^" + section(s->b);
    }
    return "?";
  }

  std::string ref(int sym, const SectionExprPtr& s) {
    std::string name =
        sym >= 0 && sym < static_cast<int>(prog_.arrays.size())
            ? prog_.decl(sym).name
            : "sym#" + std::to_string(sym);
    // OwnerPart/LocalPart of another symbol's dist prints inside section().
    if (s && s->kind == SecExprKind::Literal) {
      // A[i] style: drop the brackets' outer [] duplication.
      std::string inner = section(s);
      // section() returns "[...]"; reuse directly.
      return name + inner;
    }
    return name + (s ? section(s) : std::string("[?]"));
  }

  std::string link(const StmtPtr& s) {
    if (!opts_.showLinks || s->linkId < 0) return "";
    return "  //link " + std::to_string(s->linkId);
  }

  void stmt(const StmtPtr& s, int indent, std::ostringstream& os) {
    XDP_CHECK(s != nullptr, "printing null statement");
    std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& c : s->stmts) stmt(c, indent, os);
        return;
      case StmtKind::ScalarAssign:
        os << pad << s->name << " = " << expr(s->value) << "\n";
        return;
      case StmtKind::ElemAssign:
        os << pad << ref(s->sym, s->lhs) << " = " << expr(s->rhs) << "\n";
        return;
      case StmtKind::For:
        os << pad << "do " << s->name << " = " << expr(s->lb) << ", "
           << expr(s->ub);
        if (s->step) os << ", " << expr(s->step);
        os << "\n";
        stmt(s->body, indent + 1, os);
        os << pad << "enddo\n";
        return;
      case StmtKind::Guarded:
        os << pad << expr(s->rule) << " : {\n";
        stmt(s->body, indent + 1, os);
        os << pad << "}\n";
        return;
      case StmtKind::SendData:
        os << pad << ref(s->sym, s->lhs) << " ->" << destStr(s->dest)
           << link(s) << "\n";
        return;
      case StmtKind::RecvData:
        os << pad << ref(s->sym, s->lhs) << " <- " << ref(s->sym2, s->sec2)
           << link(s) << "\n";
        return;
      case StmtKind::SendOwn:
        os << pad << ref(s->sym, s->lhs) << (s->withValue ? " -=>" : " =>")
           << destStr(s->dest) << link(s) << "\n";
        return;
      case StmtKind::RecvOwn:
        os << pad << ref(s->sym, s->lhs) << (s->withValue ? " <=-" : " <=")
           << link(s) << "\n";
        return;
      case StmtKind::Await:
        os << pad << "await(" << ref(s->sym, s->lhs) << ")\n";
        return;
      case StmtKind::LocalCopy:
        os << pad << ref(s->sym, s->lhs) << " = " << ref(s->sym2, s->sec2)
           << "  // local copy\n";
        return;
      case StmtKind::Kernel: {
        os << pad << s->name << "(";
        for (std::size_t i = 0; i < s->args.size(); ++i) {
          if (i) os << ", ";
          os << ref(s->args[i].first, s->args[i].second);
        }
        os << ")\n";
        return;
      }
      case StmtKind::ComputeCost:
        os << pad << "compute(" << expr(s->value) << ")\n";
        return;
    }
  }

  std::string destStr(const DestSpec& d) {
    switch (d.kind) {
      case DestSpec::Kind::None:
        return "";
      case DestSpec::Kind::Pids: {
        std::string out = " {";
        for (std::size_t i = 0; i < d.pids.size(); ++i) {
          if (i) out += ",";
          out += expr(d.pids[i]);
        }
        return out + "}";
      }
      case DestSpec::Kind::OwnerOf:
        return " {owner(" + ref(d.sym, d.section) +
               (d.distOverride ? "@" + d.distOverride->str() : "") + ")}";
    }
    return "";
  }

 private:
  const Program& prog_;
  PrintOptions opts_;
};

}  // namespace

std::string printExpr(const Program& prog, const ExprPtr& e) {
  return Printer(prog, {}).expr(e);
}

std::string printSection(const Program& prog, const SectionExprPtr& s) {
  return Printer(prog, {}).section(s);
}

std::string printStmt(const Program& prog, const StmtPtr& s,
                      PrintOptions opts) {
  std::ostringstream os;
  Printer(prog, opts).stmt(s, 0, os);
  return os.str();
}

namespace {

const char* typeName(rt::ElemType t) {
  switch (t) {
    case rt::ElemType::F64: return "f64";
    case rt::ElemType::I64: return "i64";
    case rt::ElemType::C128: return "c128";
  }
  return "f64";
}

void printDeclDirective(std::ostringstream& os, const ArrayDecl& d) {
  os << "array " << d.name << " " << typeName(d.type) << " [";
  for (int dd = 0; dd < d.global.rank(); ++dd) {
    if (dd) os << ",";
    os << d.global.dim(dd).lb() << ":" << d.global.dim(dd).ub();
  }
  os << "] (";
  for (int dd = 0; dd < d.dist.rank(); ++dd) {
    if (dd) os << ",";
    const dist::DimSpec& s = d.dist.specs()[static_cast<unsigned>(dd)];
    switch (s.kind) {
      case dist::DistKind::Collapsed:
        os << "*";
        break;
      case dist::DistKind::Block:
        os << "BLOCK:" << s.procs;
        break;
      case dist::DistKind::Cyclic:
        os << "CYCLIC:" << s.procs;
        break;
      case dist::DistKind::BlockCyclic:
        os << "CYCLIC(" << s.blockSize << "):" << s.procs;
        break;
    }
  }
  os << ")";
  bool hasSeg = false;
  for (int dd = 0; dd < d.global.rank(); ++dd)
    if (d.segShape.elems[static_cast<unsigned>(dd)] != 0) hasSeg = true;
  if (hasSeg) {
    os << " seg (";
    for (int dd = 0; dd < d.global.rank(); ++dd) {
      if (dd) os << ",";
      const Index e = d.segShape.elems[static_cast<unsigned>(dd)];
      if (e == 0)
        os << "*";
      else
        os << e;
    }
    os << ")";
  }
  os << "\n";
}

}  // namespace

std::string printProgram(const Program& prog, PrintOptions opts) {
  std::ostringstream os;
  if (opts.parseable) {
    os << "procs " << prog.nprocs << "\n";
    for (const ArrayDecl& d : prog.arrays) printDeclDirective(os, d);
    os << "\n";
  } else {
    for (std::size_t i = 0; i < prog.arrays.size(); ++i) {
      const ArrayDecl& d = prog.arrays[i];
      os << "// " << d.name << d.global.str() << " distributed "
         << d.dist.str() << "\n";
    }
  }
  Printer(prog, opts).stmt(prog.body, 0, os);
  return os.str();
}

}  // namespace xdp::il
