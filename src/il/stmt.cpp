#include "xdp/il/stmt.hpp"

#include "xdp/support/check.hpp"

namespace xdp::il {

DestSpec DestSpec::toPids(std::vector<ExprPtr> pids) {
  DestSpec d;
  d.kind = Kind::Pids;
  d.pids = std::move(pids);
  return d;
}

DestSpec DestSpec::ownerOf(int sym, SectionExprPtr section,
                           std::optional<dist::Distribution> dist) {
  DestSpec d;
  d.kind = Kind::OwnerOf;
  d.sym = sym;
  d.section = std::move(section);
  d.distOverride = std::move(dist);
  return d;
}

namespace {
std::shared_ptr<Stmt> node(StmtKind k) {
  auto s = std::make_shared<Stmt>();
  s->kind = k;
  return s;
}
}  // namespace

StmtPtr block(std::vector<StmtPtr> stmts) {
  auto s = node(StmtKind::Block);
  s->stmts = std::move(stmts);
  return s;
}

StmtPtr scalarAssign(std::string name, ExprPtr value) {
  auto s = node(StmtKind::ScalarAssign);
  s->name = std::move(name);
  s->value = std::move(value);
  return s;
}

StmtPtr elemAssign(int sym, SectionExprPtr point, ExprPtr rhs) {
  auto s = node(StmtKind::ElemAssign);
  s->sym = sym;
  s->lhs = std::move(point);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr forLoop(std::string var, ExprPtr lb, ExprPtr ub, StmtPtr body,
                ExprPtr step) {
  auto s = node(StmtKind::For);
  s->name = std::move(var);
  s->lb = std::move(lb);
  s->ub = std::move(ub);
  s->step = std::move(step);
  s->body = std::move(body);
  return s;
}

StmtPtr guarded(ExprPtr rule, StmtPtr body) {
  auto s = node(StmtKind::Guarded);
  s->rule = std::move(rule);
  s->body = std::move(body);
  return s;
}

StmtPtr sendData(int sym, SectionExprPtr e, DestSpec dest, int linkId) {
  auto s = node(StmtKind::SendData);
  s->sym = sym;
  s->lhs = std::move(e);
  s->dest = std::move(dest);
  s->linkId = linkId;
  return s;
}

StmtPtr recvData(int dstSym, SectionExprPtr dst, int srcSym,
                 SectionExprPtr name, int linkId) {
  auto s = node(StmtKind::RecvData);
  s->sym = dstSym;
  s->lhs = std::move(dst);
  s->sym2 = srcSym;
  s->sec2 = std::move(name);
  s->linkId = linkId;
  return s;
}

StmtPtr sendOwn(int sym, SectionExprPtr e, bool withValue, DestSpec dest,
                int linkId) {
  auto s = node(StmtKind::SendOwn);
  s->sym = sym;
  s->lhs = std::move(e);
  s->withValue = withValue;
  s->dest = std::move(dest);
  s->linkId = linkId;
  return s;
}

StmtPtr recvOwn(int sym, SectionExprPtr u, bool withValue, int linkId) {
  auto s = node(StmtKind::RecvOwn);
  s->sym = sym;
  s->lhs = std::move(u);
  s->withValue = withValue;
  s->linkId = linkId;
  return s;
}

StmtPtr awaitStmt(int sym, SectionExprPtr s) {
  auto n = node(StmtKind::Await);
  n->sym = sym;
  n->lhs = std::move(s);
  return n;
}

StmtPtr localCopy(int dstSym, SectionExprPtr dst, int srcSym,
                  SectionExprPtr src) {
  auto s = node(StmtKind::LocalCopy);
  s->sym = dstSym;
  s->lhs = std::move(dst);
  s->sym2 = srcSym;
  s->sec2 = std::move(src);
  return s;
}

StmtPtr kernel(std::string name,
               std::vector<std::pair<int, SectionExprPtr>> args) {
  auto s = node(StmtKind::Kernel);
  s->name = std::move(name);
  s->args = std::move(args);
  return s;
}

StmtPtr computeCost(ExprPtr cost) {
  auto s = node(StmtKind::ComputeCost);
  s->value = std::move(cost);
  return s;
}

StmtPtr withBody(const StmtPtr& s, StmtPtr newBody) {
  XDP_CHECK(s->kind == StmtKind::For || s->kind == StmtKind::Guarded,
            "withBody applies to For/Guarded");
  auto n = std::make_shared<Stmt>(*s);
  n->body = std::move(newBody);
  return n;
}

StmtPtr withStmts(const StmtPtr& s, std::vector<StmtPtr> newStmts) {
  XDP_CHECK(s->kind == StmtKind::Block, "withStmts applies to Block");
  auto n = std::make_shared<Stmt>(*s);
  n->stmts = std::move(newStmts);
  return n;
}

StmtPtr withDest(const StmtPtr& s, DestSpec dest) {
  XDP_CHECK(s->kind == StmtKind::SendData || s->kind == StmtKind::SendOwn,
            "withDest applies to sends");
  auto n = std::make_shared<Stmt>(*s);
  n->dest = std::move(dest);
  return n;
}

}  // namespace xdp::il
