#include "xdp/il/parser.hpp"

#include <cctype>
#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::il {
namespace {

// --- lexer -------------------------------------------------------------

enum class Tok {
  End, Ident, Int, Real,
  LParen, RParen, LBracket, RBracket, LBrace, RBrace,
  Comma, Colon,
  // operators, longest-match
  ArrowOwnVal,   // -=>
  RecvOwnVal,    // <=-
  Arrow,         // ->
  RecvData,      // <-
  OwnSend,       // =>
  RecvOwn,       // <=
  Le, Ge, EqEq, Ne, AndAnd, OrOr,
  Assign,        // =
  Lt, Gt, Plus, Minus, Star, Slash, Percent, Bang, Caret, At,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  sec::Index intVal = 0;
  double realVal = 0.0;
  int line = 0, col = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { next(); }

  const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    next();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "IL parse error at line " << cur_.line << ", col " << cur_.col
       << ": " << msg << " (got '" << cur_.text << "')";
    throw Error(os.str());
  }

 private:
  void next() {
    skipWsAndComments();
    cur_ = Token{};
    cur_.line = line_;
    cur_.col = col_;
    if (pos_ >= text_.size()) {
      cur_.kind = Tok::End;
      cur_.text = "<end>";
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '$'))
        advance();
      cur_.kind = Tok::Ident;
      cur_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      bool isReal = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')
          isReal = true;
        advance();
      }
      cur_.text = text_.substr(start, pos_ - start);
      if (isReal) {
        cur_.kind = Tok::Real;
        cur_.realVal = std::stod(cur_.text);
      } else {
        cur_.kind = Tok::Int;
        cur_.intVal = std::stoll(cur_.text);
      }
      return;
    }
    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < text_.size() && text_[pos_ + 1] == b;
    };
    auto three = [&](const char* s) {
      return pos_ + 2 < text_.size() && text_[pos_] == s[0] &&
             text_[pos_ + 1] == s[1] && text_[pos_ + 2] == s[2];
    };
    if (three("-=>")) return emit(Tok::ArrowOwnVal, 3);
    if (three("<=-")) return emit(Tok::RecvOwnVal, 3);
    if (two('-', '>')) return emit(Tok::Arrow, 2);
    if (two('<', '-')) return emit(Tok::RecvData, 2);
    if (two('=', '>')) return emit(Tok::OwnSend, 2);
    if (two('<', '=')) return emit(Tok::RecvOwn, 2);  // also "<=" compare
    if (two('>', '=')) return emit(Tok::Ge, 2);
    if (two('=', '=')) return emit(Tok::EqEq, 2);
    if (two('!', '=')) return emit(Tok::Ne, 2);
    if (two('&', '&')) return emit(Tok::AndAnd, 2);
    if (two('|', '|')) return emit(Tok::OrOr, 2);
    switch (c) {
      case '(': return emit(Tok::LParen, 1);
      case ')': return emit(Tok::RParen, 1);
      case '[': return emit(Tok::LBracket, 1);
      case ']': return emit(Tok::RBracket, 1);
      case '{': return emit(Tok::LBrace, 1);
      case '}': return emit(Tok::RBrace, 1);
      case ',': return emit(Tok::Comma, 1);
      case ':': return emit(Tok::Colon, 1);
      case '=': return emit(Tok::Assign, 1);
      case '<': return emit(Tok::Lt, 1);
      case '>': return emit(Tok::Gt, 1);
      case '+': return emit(Tok::Plus, 1);
      case '-': return emit(Tok::Minus, 1);
      case '*': return emit(Tok::Star, 1);
      case '/': return emit(Tok::Slash, 1);
      case '%': return emit(Tok::Percent, 1);
      case '!': return emit(Tok::Bang, 1);
      case '^': return emit(Tok::Caret, 1);
      case '@': return emit(Tok::At, 1);
    }
    std::ostringstream os;
    os << "IL parse error at line " << line_ << ", col " << col_
       << ": unexpected character '" << c << "'";
    throw Error(os.str());
  }

  void emit(Tok kind, int len) {
    cur_.kind = kind;
    cur_.text = text_.substr(pos_, static_cast<std::size_t>(len));
    for (int i = 0; i < len; ++i) advance();
  }

  void skipWsAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else {
        break;
      }
    }
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1, col_ = 1;
  Token cur_;
};

// --- parser --------------------------------------------------------------

class Parser {
 public:
  Parser(Program& prog, Lexer& lex) : prog_(prog), lex_(lex) {}

  /// Parse declarations (procs/array directives) until the body begins.
  void parseDecls() {
    while (lex_.peek().kind == Tok::Ident &&
           (lex_.peek().text == "procs" || lex_.peek().text == "array")) {
      if (lex_.peek().text == "procs") {
        lex_.take();
        prog_.nprocs = static_cast<int>(expectInt("processor count"));
      } else {
        parseArrayDecl();
      }
    }
  }

  StmtPtr parseBlockUntilEnd() {
    std::vector<StmtPtr> stmts;
    while (lex_.peek().kind != Tok::End) stmts.push_back(parseStmt());
    return block(std::move(stmts));
  }

 private:
  // --- declarations ---------------------------------------------------

  void parseArrayDecl() {
    expectIdent("array");
    ArrayDecl d;
    d.name = expectAnyIdent("array name");
    std::string ty = expectAnyIdent("element type");
    if (ty == "f64") d.type = rt::ElemType::F64;
    else if (ty == "i64") d.type = rt::ElemType::I64;
    else if (ty == "c128") d.type = rt::ElemType::C128;
    else lex_.fail("element type must be f64, i64 or c128");
    d.global = parseConstShape();
    d.dist = parseDist(d.global);
    if (lex_.peek().kind == Tok::Ident && lex_.peek().text == "seg") {
      lex_.take();
      d.segShape = parseSegShape(d.global.rank());
    }
    prog_.addArray(std::move(d));
  }

  sec::Section parseConstShape() {
    expect(Tok::LBracket, "'['");
    std::vector<sec::Triplet> dims;
    while (true) {
      sec::Index lb = expectInt("dimension lower bound");
      expect(Tok::Colon, "':'");
      sec::Index ub = expectInt("dimension upper bound");
      dims.emplace_back(lb, ub);
      if (lex_.peek().kind == Tok::Comma) {
        lex_.take();
        continue;
      }
      break;
    }
    expect(Tok::RBracket, "']'");
    return sec::Section(dims);
  }

  dist::Distribution parseDist(const sec::Section& global) {
    expect(Tok::LParen, "'('");
    std::vector<dist::DimSpec> specs;
    int distributedDims = 0;
    std::vector<int> explicitProcs;
    while (true) {
      if (lex_.peek().kind == Tok::Star) {
        lex_.take();
        specs.push_back(dist::DimSpec::collapsed());
        explicitProcs.push_back(-1);
      } else {
        std::string kind = expectAnyIdent("distribution kind");
        sec::Index blockSize = 0;
        if (kind == "CYCLIC" && lex_.peek().kind == Tok::LParen) {
          lex_.take();
          blockSize = expectInt("cyclic block size");
          expect(Tok::RParen, "')'");
        }
        int procs = -1;  // default: all of prog_.nprocs (single dist dim)
        if (lex_.peek().kind == Tok::Colon) {
          lex_.take();
          procs = static_cast<int>(expectInt("processor count"));
        }
        if (kind == "BLOCK") {
          specs.push_back(dist::DimSpec::block(1));
          specs.back().kind = dist::DistKind::Block;
        } else if (kind == "CYCLIC" && blockSize > 0) {
          specs.push_back(dist::DimSpec::blockCyclic(1, blockSize));
        } else if (kind == "CYCLIC") {
          specs.push_back(dist::DimSpec::cyclic(1));
        } else {
          lex_.fail("distribution kind must be *, BLOCK or CYCLIC");
        }
        explicitProcs.push_back(procs);
        ++distributedDims;
      }
      if (lex_.peek().kind == Tok::Comma) {
        lex_.take();
        continue;
      }
      break;
    }
    expect(Tok::RParen, "')'");
    // Resolve processor counts: explicit where given; a single distributed
    // dimension defaults to the whole machine.
    for (std::size_t d = 0; d < specs.size(); ++d) {
      if (specs[d].kind == dist::DistKind::Collapsed) continue;
      int procs = explicitProcs[d];
      if (procs < 0) {
        if (distributedDims != 1)
          lex_.fail("multi-dimensional distributions need explicit ':p' "
                    "processor counts");
        procs = prog_.nprocs;
      }
      specs[d].procs = procs;
    }
    return dist::Distribution(global, specs);
  }

  dist::SegmentShape parseSegShape(int rank) {
    expect(Tok::LParen, "'('");
    dist::SegmentShape shape;
    for (int d = 0; d < rank; ++d) {
      if (d > 0) expect(Tok::Comma, "','");
      if (lex_.peek().kind == Tok::Star) {
        lex_.take();
        shape.elems[static_cast<unsigned>(d)] = 0;
      } else {
        shape.elems[static_cast<unsigned>(d)] =
            expectInt("segment extent");
      }
    }
    expect(Tok::RParen, "')'");
    return shape;
  }

  // --- statements -------------------------------------------------------

  /// Clone `node` with the given source position unless it already has one
  /// (nested parse calls stamp their own nodes first).
  template <typename T>
  static std::shared_ptr<const T> stamped(std::shared_ptr<const T> node,
                                          int line, int col) {
    if (!node || node->loc.valid()) return node;
    auto c = std::make_shared<T>(*node);
    c->loc = SrcLoc{line, col};
    return c;
  }

  StmtPtr parseStmt() {
    const int line = lex_.peek().line, col = lex_.peek().col;
    return stamped(parseStmtUnstamped(), line, col);
  }

  StmtPtr parseStmtUnstamped() {
    const Token& t = lex_.peek();
    if (t.kind == Tok::Ident) {
      if (t.text == "do") return parseDo();
      if (t.text == "compute") return parseCompute();
      // NAME '[' => section-ref statement (assign or transfer);
      // NAME '(' => guard / kernel / bare await;
      // NAME '=' => scalar assign.
      Token name = lex_.take();
      if (lex_.peek().kind == Tok::LBracket) {
        return parseRefStmt(name);
      }
      if (lex_.peek().kind == Tok::Assign) {
        lex_.take();
        return scalarAssign(name.text, parseExpr());
      }
      if (lex_.peek().kind == Tok::LParen) {
        return parseCallOrGuard(name);
      }
      lex_.fail("expected '[', '(' or '=' after identifier");
    }
    if (t.kind == Tok::LParen || t.kind == Tok::Bang) {
      ExprPtr rule = parseExpr();
      return parseGuardTail(rule);
    }
    lex_.fail("expected a statement");
  }

  StmtPtr parseDo() {
    expectIdent("do");
    std::string var = expectAnyIdent("loop variable");
    expect(Tok::Assign, "'='");
    ExprPtr lb = parseExpr();
    expect(Tok::Comma, "','");
    ExprPtr ub = parseExpr();
    ExprPtr step;
    if (lex_.peek().kind == Tok::Comma) {
      lex_.take();
      step = parseExpr();
    }
    std::vector<StmtPtr> body;
    while (!(lex_.peek().kind == Tok::Ident && lex_.peek().text == "enddo"))
      body.push_back(parseStmt());
    lex_.take();  // enddo
    return forLoop(var, lb, ub, block(std::move(body)), step);
  }

  StmtPtr parseCompute() {
    expectIdent("compute");
    expect(Tok::LParen, "'('");
    ExprPtr cost = parseExpr();
    expect(Tok::RParen, "')'");
    return computeCost(cost);
  }

  /// Statement starting with NAME[...]: assignment or transfer.
  StmtPtr parseRefStmt(const Token& name) {
    const int sym = symbolOf(name);
    SectionExprPtr sec = parseSectionRef();
    switch (lex_.peek().kind) {
      case Tok::Assign: {
        lex_.take();
        // `A[sec] = B[sec2]` where both are plain refs is a local copy
        // only via explicit IL construction; textual form is ElemAssign.
        return elemAssign(sym, sec, parseExpr());
      }
      case Tok::Arrow: {
        lex_.take();
        return sendData(sym, sec, parseOptionalDests());
      }
      case Tok::ArrowOwnVal: {
        lex_.take();
        return sendOwn(sym, sec, /*withValue=*/true, parseOptionalDests());
      }
      case Tok::OwnSend: {
        lex_.take();
        return sendOwn(sym, sec, /*withValue=*/false, parseOptionalDests());
      }
      case Tok::RecvData: {
        lex_.take();
        Token src = lex_.take();
        if (src.kind != Tok::Ident) lex_.fail("expected array name after <-");
        const int srcSym = symbolOf(src);
        return recvData(sym, sec, srcSym, parseSectionRef());
      }
      case Tok::RecvOwnVal: {
        lex_.take();
        return recvOwn(sym, sec, /*withValue=*/true);
      }
      case Tok::RecvOwn: {
        lex_.take();
        return recvOwn(sym, sec, /*withValue=*/false);
      }
      default:
        lex_.fail("expected '=', '->', '-=>', '=>', '<-', '<=' or '<=-'");
    }
  }

  DestSpec parseOptionalDests() {
    if (lex_.peek().kind != Tok::LBrace) return DestSpec::none();
    lex_.take();
    if (lex_.peek().kind == Tok::Ident && lex_.peek().text == "owner") {
      lex_.take();
      expect(Tok::LParen, "'('");
      Token name = lex_.take();
      if (name.kind != Tok::Ident) lex_.fail("expected array in owner()");
      const int sym = symbolOf(name);
      SectionExprPtr sec = parseSectionRef();
      expect(Tok::RParen, "')'");
      expect(Tok::RBrace, "'}'");
      return DestSpec::ownerOf(sym, sec);
    }
    std::vector<ExprPtr> pids;
    while (true) {
      pids.push_back(parseExpr());
      if (lex_.peek().kind == Tok::Comma) {
        lex_.take();
        continue;
      }
      break;
    }
    expect(Tok::RBrace, "'}'");
    return DestSpec::toPids(std::move(pids));
  }

  /// NAME '(' ...: guard on an intrinsic, a bare await, or a kernel call.
  StmtPtr parseCallOrGuard(const Token& name) {
    static const char* intrinsics[] = {"iown", "accessible", "await",
                                       "nonempty", "mylb", "myub"};
    bool isIntrinsic = false;
    for (const char* s : intrinsics)
      if (name.text == s) isIntrinsic = true;
    if (isIntrinsic) {
      ExprPtr e = parseIntrinsic(name.text);
      // `await(X)` with no ': {' is the bare synchronization statement.
      if (name.text == "await" && lex_.peek().kind != Tok::Colon &&
          lex_.peek().kind != Tok::AndAnd && lex_.peek().kind != Tok::OrOr)
        return awaitStmt(e->sym, e->section);
      e = parseExprContinuation(e);
      return parseGuardTail(e);
    }
    // Kernel call: name(A[sec], B[sec], ...).
    expect(Tok::LParen, "'('");
    std::vector<std::pair<int, SectionExprPtr>> args;
    if (lex_.peek().kind != Tok::RParen) {
      while (true) {
        Token arr = lex_.take();
        if (arr.kind != Tok::Ident) lex_.fail("expected array argument");
        const int sym = symbolOf(arr);
        args.emplace_back(sym, parseSectionRef());
        if (lex_.peek().kind == Tok::Comma) {
          lex_.take();
          continue;
        }
        break;
      }
    }
    expect(Tok::RParen, "')'");
    return kernel(name.text, std::move(args));
  }

  StmtPtr parseGuardTail(ExprPtr rule) {
    expect(Tok::Colon, "':' (guard)");
    expect(Tok::LBrace, "'{'");
    std::vector<StmtPtr> body;
    while (lex_.peek().kind != Tok::RBrace) body.push_back(parseStmt());
    lex_.take();  // }
    return guarded(std::move(rule), block(std::move(body)));
  }

  // --- sections ----------------------------------------------------------

  SectionExprPtr parseSectionRef() {
    SectionExprPtr s = parseSectionPrimary();
    while (lex_.peek().kind == Tok::Caret) {
      lex_.take();
      s = secIntersect(s, parseSectionPrimary());
    }
    return s;
  }

  SectionExprPtr parseSectionPrimary() {
    expect(Tok::LBracket, "'['");
    if (lex_.peek().kind == Tok::Ident && lex_.peek().text == "mypart") {
      lex_.take();
      expect(Tok::RBracket, "']'");
      return secLocalPart(-1);
    }
    if (lex_.peek().kind == Tok::Ident && lex_.peek().text == "part") {
      lex_.take();
      expect(Tok::LParen, "'('");
      ExprPtr pid = parseExpr();
      expect(Tok::RParen, "')'");
      expect(Tok::RBracket, "']'");
      return secOwnerPart(-1, pid);
    }
    std::vector<TripletExpr> dims;
    while (true) {
      TripletExpr t;
      t.lb = parseExpr();
      if (lex_.peek().kind == Tok::Colon) {
        lex_.take();
        t.ub = parseExpr();
        if (lex_.peek().kind == Tok::Colon) {
          lex_.take();
          t.stride = parseExpr();
        }
      }
      dims.push_back(std::move(t));
      if (lex_.peek().kind == Tok::Comma) {
        lex_.take();
        continue;
      }
      break;
    }
    expect(Tok::RBracket, "']'");
    return secLit(std::move(dims));
  }

  // --- expressions ---------------------------------------------------------

  ExprPtr parseExpr() {
    const int line = lex_.peek().line, col = lex_.peek().col;
    return stamped(parseExprContinuation(parseUnary(), 0), line, col);
  }

  ExprPtr parseExprContinuation(ExprPtr lhs, int minPrec = 0) {
    while (true) {
      int prec;
      BinOp op;
      if (!peekBinOp(op, prec) || prec < minPrec) return lhs;
      lex_.take();
      ExprPtr rhs = parseUnary();
      // Left associative: bind tighter continuations into rhs first.
      int nextPrec;
      BinOp nextOp;
      while (peekBinOp(nextOp, nextPrec) && nextPrec > prec)
        rhs = parseExprContinuation(rhs, nextPrec);
      lhs = bin(op, std::move(lhs), rhs);
    }
  }

  bool peekBinOp(BinOp& op, int& prec) {
    switch (lex_.peek().kind) {
      case Tok::OrOr: op = BinOp::Or; prec = 1; return true;
      case Tok::AndAnd: op = BinOp::And; prec = 2; return true;
      case Tok::EqEq: op = BinOp::Eq; prec = 3; return true;
      case Tok::Ne: op = BinOp::Ne; prec = 3; return true;
      case Tok::Lt: op = BinOp::Lt; prec = 4; return true;
      case Tok::Gt: op = BinOp::Gt; prec = 4; return true;
      case Tok::Le: op = BinOp::Le; prec = 4; return true;
      case Tok::Ge: op = BinOp::Ge; prec = 4; return true;
      // NOTE: in expression position "<=" lexes as RecvOwn; accept it as
      // the comparison operator (statements consume their "<=" before
      // expression parsing ever sees one).
      case Tok::RecvOwn: op = BinOp::Le; prec = 4; return true;
      case Tok::Plus: op = BinOp::Add; prec = 5; return true;
      case Tok::Minus: op = BinOp::Sub; prec = 5; return true;
      case Tok::Star: op = BinOp::Mul; prec = 6; return true;
      case Tok::Slash: op = BinOp::Div; prec = 6; return true;
      case Tok::Percent: op = BinOp::Mod; prec = 6; return true;
      default: return false;
    }
  }

  ExprPtr parseUnary() {
    const int line = lex_.peek().line, col = lex_.peek().col;
    return stamped(parseUnaryUnstamped(), line, col);
  }

  ExprPtr parseUnaryUnstamped() {
    if (lex_.peek().kind == Tok::Minus) {
      lex_.take();
      return neg(parseUnary());
    }
    if (lex_.peek().kind == Tok::Bang) {
      lex_.take();
      return lnot(parseUnary());
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token t = lex_.take();
    switch (t.kind) {
      case Tok::Int:
        return intConst(t.intVal);
      case Tok::Real:
        return realConst(t.realVal);
      case Tok::LParen: {
        ExprPtr e = parseExpr();
        expect(Tok::RParen, "')'");
        return e;
      }
      case Tok::Ident: {
        if (t.text == "mypid") return mypid();
        if (t.text == "nprocs") return nprocs();
        if (t.text == "min" || t.text == "max") {
          expect(Tok::LParen, "'('");
          ExprPtr a = parseExpr();
          expect(Tok::Comma, "','");
          ExprPtr b = parseExpr();
          expect(Tok::RParen, "')'");
          return bin(t.text == "min" ? BinOp::Min : BinOp::Max, a, b);
        }
        if (t.text == "iown" || t.text == "accessible" ||
            t.text == "await" || t.text == "nonempty" || t.text == "mylb" ||
            t.text == "myub")
          return parseIntrinsic(t.text);
        // Array element or scalar?
        if (lex_.peek().kind == Tok::LBracket) {
          const int sym = symbolOfName(t);
          return elem(sym, parseSectionRef());
        }
        return scalar(t.text);
      }
      default:
        lex_.fail("expected an expression");
    }
  }

  /// `name` already consumed; parse `(A[sec][,dim])`.
  ExprPtr parseIntrinsic(const std::string& name) {
    expect(Tok::LParen, "'('");
    Token arr = lex_.take();
    if (arr.kind != Tok::Ident) lex_.fail("expected array name");
    const int sym = symbolOf(arr);
    SectionExprPtr sec = parseSectionRef();
    int dim = 0;
    if (name == "mylb" || name == "myub") {
      expect(Tok::Comma, "','");
      dim = static_cast<int>(expectInt("dimension"));
    }
    expect(Tok::RParen, "')'");
    if (name == "iown") return iown(sym, sec);
    if (name == "accessible") return accessible(sym, sec);
    if (name == "await") return awaitOf(sym, sec);
    if (name == "nonempty") return secNonEmpty(sym, sec);
    if (name == "mylb") return mylb(sym, sec, dim);
    return myub(sym, sec, dim);
  }

  // --- helpers -----------------------------------------------------------

  int symbolOf(const Token& name) {
    int sym = prog_.findSymbol(name.text);
    if (sym < 0) lex_.fail("unknown array '" + name.text + "'");
    return sym;
  }
  int symbolOfName(const Token& name) { return symbolOf(name); }

  void expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) lex_.fail(std::string("expected ") + what);
    lex_.take();
  }

  void expectIdent(const std::string& word) {
    if (lex_.peek().kind != Tok::Ident || lex_.peek().text != word)
      lex_.fail("expected '" + word + "'");
    lex_.take();
  }

  std::string expectAnyIdent(const char* what) {
    if (lex_.peek().kind != Tok::Ident)
      lex_.fail(std::string("expected ") + what);
    return lex_.take().text;
  }

  sec::Index expectInt(const char* what) {
    if (lex_.peek().kind != Tok::Int)
      lex_.fail(std::string("expected ") + what);
    return lex_.take().intVal;
  }

  Program& prog_;
  Lexer& lex_;
};

}  // namespace

Program parseProgram(const std::string& text) {
  Program prog;
  Lexer lex(text);
  Parser parser(prog, lex);
  parser.parseDecls();
  prog.body = parser.parseBlockUntilEnd();
  return prog;
}

StmtPtr parseStmts(const Program& prog, const std::string& text) {
  Program scratch = prog;  // symbol lookup against existing declarations
  Lexer lex(text);
  Parser parser(scratch, lex);
  return parser.parseBlockUntilEnd();
}

}  // namespace xdp::il
