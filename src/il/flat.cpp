#include "xdp/il/flat.hpp"

#include <unordered_map>

#include "xdp/support/check.hpp"

namespace xdp::il::flat {
namespace {

/// One flattening run: memoizes on AST node addresses so shared subtrees
/// (the AST is a DAG — passes share untouched operands across rewrites)
/// become shared refs, and appends nodes post-order so every child ref is
/// numerically smaller than its parent's index.
class Flattener {
 public:
  explicit Flattener(FlatProgram& out) : out_(out) {}

  ExprRef expr(const ExprPtr& e) {
    if (e == nullptr) return {};
    if (auto it = exprMemo_.find(e.get()); it != exprMemo_.end())
      return {it->second};
    Expr n;
    n.kind = e->kind;
    n.op = e->op;
    n.sym = e->sym;
    n.dim = e->dim;
    n.intVal = e->intVal;
    n.realVal = e->realVal;
    if (e->kind == ExprKind::ScalarRef) n.scalarId = internScalar(e->name);
    n.lhs = expr(e->lhs);
    n.rhs = expr(e->rhs);
    n.section = sec(e->section);
    const auto id = static_cast<std::uint32_t>(out_.exprs.size());
    out_.exprs.push_back(n);
    exprMemo_.emplace(e.get(), id);
    return {id};
  }

  SecRef sec(const SectionExprPtr& se) {
    if (se == nullptr) return {};
    if (auto it = secMemo_.find(se.get()); it != secMemo_.end())
      return {it->second};
    Sec n;
    n.kind = se->kind;
    n.sym = se->sym;
    n.dist = internDist(se->distOverride);
    n.pid = expr(se->pid);
    n.a = sec(se->a);
    n.b = sec(se->b);
    if (!se->dims.empty()) {
      // Flatten the bound expressions first, then emit the span in one
      // contiguous run (recursion above may itself append triplets).
      std::vector<TripletRef> dims;
      dims.reserve(se->dims.size());
      for (const auto& t : se->dims)
        dims.push_back({expr(t.lb), expr(t.ub), expr(t.stride)});
      n.dimsOff = static_cast<std::uint32_t>(out_.triplets.size());
      n.dimsLen = static_cast<std::uint32_t>(dims.size());
      out_.triplets.insert(out_.triplets.end(), dims.begin(), dims.end());
    }
    const auto id = static_cast<std::uint32_t>(out_.secs.size());
    out_.secs.push_back(n);
    secMemo_.emplace(se.get(), id);
    return {id};
  }

  StmtRef stmt(const StmtPtr& s) {
    if (s == nullptr) return {};
    if (auto it = stmtMemo_.find(s.get()); it != stmtMemo_.end())
      return {it->second};
    Stmt n;
    n.kind = s->kind;
    n.withValue = s->withValue;
    n.sym = s->sym;
    n.sym2 = s->sym2;
    n.linkId = s->linkId;
    if (s->kind == StmtKind::ScalarAssign || s->kind == StmtKind::For)
      n.scalarId = internScalar(s->name);
    else if (s->kind == StmtKind::Kernel)
      n.nameId = internName(s->name);
    n.value = expr(s->value);
    n.lhs = sec(s->lhs);
    n.rhs = expr(s->rhs);
    n.lb = expr(s->lb);
    n.ub = expr(s->ub);
    n.step = expr(s->step);
    n.body = stmt(s->body);
    n.rule = expr(s->rule);
    n.sec2 = sec(s->sec2);
    n.bindHint = expr(s->bindHint);
    switch (s->dest.kind) {
      case DestSpec::Kind::None:
        n.destKind = DestKind::None;
        break;
      case DestSpec::Kind::Pids: {
        n.destKind = DestKind::Pids;
        std::vector<ExprRef> pids;
        pids.reserve(s->dest.pids.size());
        for (const auto& p : s->dest.pids) pids.push_back(expr(p));
        n.destPidsOff = static_cast<std::uint32_t>(out_.exprKids.size());
        n.destPidsLen = static_cast<std::uint32_t>(pids.size());
        out_.exprKids.insert(out_.exprKids.end(), pids.begin(), pids.end());
        break;
      }
      case DestSpec::Kind::OwnerOf:
        n.destKind = DestKind::OwnerOf;
        n.destSym = s->dest.sym;
        n.destSection = sec(s->dest.section);
        n.destDist = internDist(s->dest.distOverride);
        break;
    }
    if (!s->args.empty()) {
      std::vector<KernelArg> args;
      args.reserve(s->args.size());
      for (const auto& [sym, se] : s->args) args.push_back({sym, sec(se)});
      n.argsOff = static_cast<std::uint32_t>(out_.kernelArgs.size());
      n.argsLen = static_cast<std::uint32_t>(args.size());
      out_.kernelArgs.insert(out_.kernelArgs.end(), args.begin(), args.end());
    }
    if (!s->stmts.empty()) {
      std::vector<StmtRef> kids;
      kids.reserve(s->stmts.size());
      for (const auto& c : s->stmts) kids.push_back(stmt(c));
      n.kidsOff = static_cast<std::uint32_t>(out_.stmtKids.size());
      n.kidsLen = static_cast<std::uint32_t>(kids.size());
      out_.stmtKids.insert(out_.stmtKids.end(), kids.begin(), kids.end());
    }
    const auto id = static_cast<std::uint32_t>(out_.stmts.size());
    out_.stmts.push_back(n);
    stmtMemo_.emplace(s.get(), id);
    return {id};
  }

 private:
  std::int32_t internScalar(const std::string& name) {
    auto [it, fresh] = scalarIds_.emplace(
        name, static_cast<std::int32_t>(out_.scalarNames.size()));
    if (fresh) out_.scalarNames.push_back(name);
    return it->second;
  }

  std::int32_t internName(const std::string& name) {
    auto [it, fresh] =
        nameIds_.emplace(name, static_cast<std::int32_t>(out_.names.size()));
    if (fresh) out_.names.push_back(name);
    return it->second;
  }

  std::int32_t internDist(const std::optional<dist::Distribution>& d) {
    if (!d.has_value()) return -1;
    out_.dists.push_back(*d);
    return static_cast<std::int32_t>(out_.dists.size() - 1);
  }

  FlatProgram& out_;
  std::unordered_map<const void*, std::uint32_t> exprMemo_;
  std::unordered_map<const void*, std::uint32_t> secMemo_;
  std::unordered_map<const void*, std::uint32_t> stmtMemo_;
  std::unordered_map<std::string, std::int32_t> scalarIds_;
  std::unordered_map<std::string, std::int32_t> nameIds_;
};

}  // namespace

FlatProgram flatten(const il::Program& prog) {
  FlatProgram fp;
  fp.nprocs = prog.nprocs;
  fp.arrays = prog.arrays;
  Flattener fl(fp);
  fp.body = fl.stmt(prog.body);
  return fp;
}

namespace {

/// Appends "where: what" for every malformed ref/span found under `check`.
struct Verifier {
  const FlatProgram& fp;
  std::vector<std::string> problems;

  void bad(const std::string& where, const std::string& what) {
    problems.push_back(where + ": " + what);
  }

  void expr(ExprRef r, std::uint32_t parent, const char* where) {
    if (!r.valid()) return;
    if (r.id >= fp.exprs.size())
      bad(where, "expr ref " + std::to_string(r.id) + " out of range");
    else if (r.id >= parent && parent != kNone)
      bad(where, "expr ref " + std::to_string(r.id) +
                     " not strictly before parent " + std::to_string(parent));
  }

  void sec(SecRef r, const char* where) {
    if (!r.valid()) return;
    if (r.id >= fp.secs.size())
      bad(where, "sec ref " + std::to_string(r.id) + " out of range");
  }

  void span(std::uint32_t off, std::uint32_t len, std::size_t limit,
            const char* where) {
    if (len != 0 && (off > limit || off + len > limit))
      bad(where, "span [" + std::to_string(off) + ", +" +
                     std::to_string(len) + ") exceeds side-array of " +
                     std::to_string(limit));
  }

  void scalarId(std::int32_t id, const char* where) {
    if (id < 0 || id >= fp.numScalars())
      bad(where, "scalar id " + std::to_string(id) + " out of range");
  }
};

}  // namespace

std::vector<std::string> verify(const FlatProgram& fp) {
  Verifier v{fp, {}};
  for (std::uint32_t i = 0; i < fp.exprs.size(); ++i) {
    const Expr& e = fp.exprs[i];
    v.expr(e.lhs, i, "expr.lhs");
    v.expr(e.rhs, i, "expr.rhs");
    v.sec(e.section, "expr.section");
    if (e.kind == ExprKind::ScalarRef) v.scalarId(e.scalarId, "expr.scalar");
  }
  for (std::uint32_t i = 0; i < fp.secs.size(); ++i) {
    const Sec& s = fp.secs[i];
    v.expr(s.pid, kNone, "sec.pid");
    v.span(s.dimsOff, s.dimsLen, fp.triplets.size(), "sec.dims");
    for (std::uint32_t k = s.dimsOff; k < s.dimsOff + s.dimsLen &&
                                      k < fp.triplets.size();
         ++k) {
      v.expr(fp.triplets[k].lb, kNone, "triplet.lb");
      v.expr(fp.triplets[k].ub, kNone, "triplet.ub");
      v.expr(fp.triplets[k].stride, kNone, "triplet.stride");
    }
    if (s.kind == SecExprKind::Intersect) {
      if (!s.a.valid() || !s.b.valid()) v.bad("sec", "intersect missing arm");
      if (s.a.valid() && s.a.id >= fp.secs.size())
        v.bad("sec.a", "ref out of range");
      if (s.b.valid() && s.b.id >= fp.secs.size())
        v.bad("sec.b", "ref out of range");
    }
    if (s.dist >= static_cast<std::int32_t>(fp.dists.size()))
      v.bad("sec.dist", "dist index out of range");
  }
  for (std::uint32_t i = 0; i < fp.stmts.size(); ++i) {
    const Stmt& s = fp.stmts[i];
    for (ExprRef r : {s.value, s.rhs, s.lb, s.ub, s.step, s.rule, s.bindHint})
      v.expr(r, kNone, "stmt.expr");
    v.sec(s.lhs, "stmt.lhs");
    v.sec(s.sec2, "stmt.sec2");
    v.sec(s.destSection, "stmt.destSection");
    if (s.body.valid()) {
      if (s.body.id >= fp.stmts.size())
        v.bad("stmt.body", "ref out of range");
      else if (s.body.id >= i)
        v.bad("stmt.body", "body ref " + std::to_string(s.body.id) +
                               " not strictly before parent " +
                               std::to_string(i));
    }
    v.span(s.kidsOff, s.kidsLen, fp.stmtKids.size(), "stmt.kids");
    for (std::uint32_t k = s.kidsOff;
         k < s.kidsOff + s.kidsLen && k < fp.stmtKids.size(); ++k) {
      const StmtRef c = fp.stmtKids[k];
      if (!c.valid() || c.id >= fp.stmts.size())
        v.bad("stmt.kid", "ref out of range");
      else if (c.id >= i)
        v.bad("stmt.kid", "child ref " + std::to_string(c.id) +
                              " not strictly before parent " +
                              std::to_string(i));
    }
    v.span(s.destPidsOff, s.destPidsLen, fp.exprKids.size(), "stmt.destPids");
    v.span(s.argsOff, s.argsLen, fp.kernelArgs.size(), "stmt.args");
    if (s.kind == StmtKind::ScalarAssign || s.kind == StmtKind::For)
      v.scalarId(s.scalarId, "stmt.scalar");
    if (s.kind == StmtKind::Kernel &&
        (s.nameId < 0 || s.nameId >= static_cast<std::int32_t>(fp.names.size())))
      v.bad("stmt.kernel", "name id out of range");
  }
  if (fp.body.valid() && fp.body.id >= fp.stmts.size())
    v.bad("program.body", "ref out of range");
  return v.problems;
}

}  // namespace xdp::il::flat
