#include "xdp/il/expr.hpp"

#include "xdp/support/check.hpp"

namespace xdp::il {

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> node(ExprKind k) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  return e;
}
}  // namespace

ExprPtr intConst(Index v) {
  auto e = node(ExprKind::IntConst);
  e->intVal = v;
  return e;
}

ExprPtr realConst(double v) {
  auto e = node(ExprKind::RealConst);
  e->realVal = v;
  return e;
}

ExprPtr scalar(std::string name) {
  auto e = node(ExprKind::ScalarRef);
  e->name = std::move(name);
  return e;
}

ExprPtr mypid() { return node(ExprKind::MyPid); }
ExprPtr nprocs() { return node(ExprKind::NProcs); }

ExprPtr bin(BinOp op, ExprPtr a, ExprPtr b) {
  auto e = node(ExprKind::Bin);
  e->op = op;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr add(ExprPtr a, ExprPtr b) { return bin(BinOp::Add, a, b); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return bin(BinOp::Sub, a, b); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return bin(BinOp::Mul, a, b); }

ExprPtr neg(ExprPtr a) {
  auto e = node(ExprKind::Neg);
  e->lhs = std::move(a);
  return e;
}

ExprPtr lnot(ExprPtr a) {
  auto e = node(ExprKind::Not);
  e->lhs = std::move(a);
  return e;
}

ExprPtr land(ExprPtr a, ExprPtr b) { return bin(BinOp::And, a, b); }

namespace {
ExprPtr intrinsic(ExprKind k, int sym, SectionExprPtr s, int dim = 0) {
  auto e = node(k);
  e->sym = sym;
  e->section = std::move(s);
  e->dim = dim;
  return e;
}
}  // namespace

ExprPtr elem(int sym, SectionExprPtr point) {
  return intrinsic(ExprKind::Elem, sym, std::move(point));
}
ExprPtr iown(int sym, SectionExprPtr s) {
  return intrinsic(ExprKind::Iown, sym, std::move(s));
}
ExprPtr accessible(int sym, SectionExprPtr s) {
  return intrinsic(ExprKind::Accessible, sym, std::move(s));
}
ExprPtr awaitOf(int sym, SectionExprPtr s) {
  return intrinsic(ExprKind::Await, sym, std::move(s));
}
ExprPtr mylb(int sym, SectionExprPtr s, int dim) {
  return intrinsic(ExprKind::MyLb, sym, std::move(s), dim);
}
ExprPtr myub(int sym, SectionExprPtr s, int dim) {
  return intrinsic(ExprKind::MyUb, sym, std::move(s), dim);
}
ExprPtr secNonEmpty(int sym, SectionExprPtr s) {
  return intrinsic(ExprKind::SecNonEmpty, sym, std::move(s));
}

bool sameExpr(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::IntConst:
      return a->intVal == b->intVal;
    case ExprKind::RealConst:
      return a->realVal == b->realVal;
    case ExprKind::ScalarRef:
      return a->name == b->name;
    case ExprKind::MyPid:
    case ExprKind::NProcs:
      return true;
    case ExprKind::Bin:
      return a->op == b->op && sameExpr(a->lhs, b->lhs) &&
             sameExpr(a->rhs, b->rhs);
    case ExprKind::Neg:
    case ExprKind::Not:
      return sameExpr(a->lhs, b->lhs);
    case ExprKind::Elem:
    case ExprKind::Iown:
    case ExprKind::Accessible:
    case ExprKind::Await:
    case ExprKind::SecNonEmpty:
      return a->sym == b->sym && sameSectionExpr(a->section, b->section);
    case ExprKind::MyLb:
    case ExprKind::MyUb:
      return a->sym == b->sym && a->dim == b->dim &&
             sameSectionExpr(a->section, b->section);
  }
  return false;
}

namespace {
std::shared_ptr<SectionExpr> snode(SecExprKind k) {
  auto s = std::make_shared<SectionExpr>();
  s->kind = k;
  return s;
}
}  // namespace

SectionExprPtr secLit(std::vector<TripletExpr> dims) {
  auto s = snode(SecExprKind::Literal);
  s->dims = std::move(dims);
  return s;
}

SectionExprPtr secPoint(std::vector<ExprPtr> subscripts) {
  std::vector<TripletExpr> dims;
  for (auto& e : subscripts) dims.push_back(TripletExpr{std::move(e), {}, {}});
  return secLit(std::move(dims));
}

SectionExprPtr secRange1(ExprPtr lb, ExprPtr ub) {
  return secLit({TripletExpr{std::move(lb), std::move(ub), {}}});
}

SectionExprPtr secLocalPart(int sym, std::optional<dist::Distribution> dist) {
  auto s = snode(SecExprKind::LocalPart);
  s->sym = sym;
  s->distOverride = std::move(dist);
  return s;
}

SectionExprPtr secOwnerPart(int sym, ExprPtr pid,
                            std::optional<dist::Distribution> dist) {
  auto s = snode(SecExprKind::OwnerPart);
  s->sym = sym;
  s->pid = std::move(pid);
  s->distOverride = std::move(dist);
  return s;
}

SectionExprPtr secIntersect(SectionExprPtr a, SectionExprPtr b) {
  auto s = snode(SecExprKind::Intersect);
  s->a = std::move(a);
  s->b = std::move(b);
  return s;
}

bool sameSectionExpr(const SectionExprPtr& a, const SectionExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case SecExprKind::Literal: {
      if (a->dims.size() != b->dims.size()) return false;
      for (std::size_t d = 0; d < a->dims.size(); ++d) {
        if (!sameExpr(a->dims[d].lb, b->dims[d].lb)) return false;
        if (!sameExpr(a->dims[d].ub, b->dims[d].ub)) return false;
        if (!sameExpr(a->dims[d].stride, b->dims[d].stride)) return false;
      }
      return true;
    }
    case SecExprKind::LocalPart:
      return a->sym == b->sym && a->distOverride == b->distOverride;
    case SecExprKind::OwnerPart:
      return a->sym == b->sym && sameExpr(a->pid, b->pid) &&
             a->distOverride == b->distOverride;
    case SecExprKind::Intersect:
      return sameSectionExpr(a->a, b->a) && sameSectionExpr(a->b, b->b);
  }
  return false;
}

}  // namespace xdp::il
