// An IL+XDP program: array declarations (with their HPF distributions and
// compiler-chosen segmentations) plus a statement body executed SPMD-style
// on every processor. Universal scalars need no declaration — each
// processor materializes its own copy on first assignment (paper 2.1:
// "If an element is universally owned, each processor has a copy").
#pragma once

#include <string>
#include <vector>

#include "xdp/il/stmt.hpp"
#include "xdp/rt/symbol.hpp"

namespace xdp::il {

struct ArrayDecl {
  std::string name;
  rt::ElemType type = rt::ElemType::F64;
  sec::Section global;
  dist::Distribution dist;
  dist::SegmentShape segShape{};
};

struct Program {
  int nprocs = 1;
  std::vector<ArrayDecl> arrays;
  StmtPtr body;

  const ArrayDecl& decl(int sym) const;
  int findSymbol(const std::string& name) const;  ///< -1 if absent

  /// Add a (possibly compiler-generated) array; returns its symbol index.
  int addArray(ArrayDecl d);

  /// Fresh link id for pairing a send with its receive.
  int freshLink() { return nextLink_++; }

 private:
  int nextLink_ = 0;
};

}  // namespace xdp::il
