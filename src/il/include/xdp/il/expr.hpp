// IL+XDP expressions.
//
// The paper extends "a high-level compiler intermediate language" with the
// XDP constructs; this is our IL. Expressions cover integer/real
// arithmetic over universal scalars (each processor has its own copy, per
// section 2.1), array element references, and the XDP intrinsics of
// Figure 1 (mypid, mylb, myub, iown, accessible, await) — all usable
// inside compute rules.
//
// Expression trees are immutable (shared_ptr<const>): optimization passes
// rewrite by rebuilding, so sharing subtrees across program versions is
// safe — exactly what a pass pipeline wants.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xdp/dist/distribution.hpp"

namespace xdp::il {

using sec::Index;

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;
struct SectionExpr;
using SectionExprPtr = std::shared_ptr<const SectionExpr>;

/// Source position of a node in the textual dialect. Parser-produced nodes
/// carry their defining token's position; builder-made nodes keep line 0
/// (= unknown). Functional rewrites clone nodes wholesale, so locations
/// survive the optimization pipeline and diagnostics on transformed
/// programs still point at the originating source line.
struct SrcLoc {
  int line = 0;
  int col = 0;
  bool valid() const { return line > 0; }
};

enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
  Min, Max,
};

const char* binOpName(BinOp op);

enum class ExprKind {
  IntConst,    ///< integer literal
  RealConst,   ///< floating literal
  ScalarRef,   ///< universal scalar (per-processor copy), by name
  MyPid,       ///< intrinsic mypid
  NProcs,      ///< number of processors (compile-time constant at run)
  Bin,         ///< binary operation
  Neg,         ///< arithmetic negation (uses lhs)
  Not,         ///< logical negation (uses lhs)
  Elem,        ///< array element reference A[e1,...,ek] (value use)
  Iown,        ///< iown(X)
  Accessible,  ///< accessible(X)
  Await,       ///< await(X) — blocking; legal only in compute rules
  MyLb,        ///< mylb(X,d)
  MyUb,        ///< myub(X,d)
  SecNonEmpty, ///< true iff the section expression denotes >= 1 element
};

/// One fat node per expression; the `kind` selects which fields are live.
/// (A tagged struct keeps pattern-matching passes short and visible.)
struct Expr {
  ExprKind kind;

  Index intVal = 0;       // IntConst
  double realVal = 0.0;   // RealConst
  std::string name;       // ScalarRef

  BinOp op = BinOp::Add;  // Bin
  ExprPtr lhs, rhs;       // Bin (Neg/Not use lhs only)

  int sym = -1;               // Elem + intrinsics: symbol index
  SectionExprPtr section;     // Elem (single point) + intrinsics (query)
  int dim = 0;                // MyLb / MyUb

  SrcLoc loc;                 // not part of structural equality
};

// --- factories -----------------------------------------------------------
ExprPtr intConst(Index v);
ExprPtr realConst(double v);
ExprPtr scalar(std::string name);
ExprPtr mypid();
ExprPtr nprocs();
ExprPtr bin(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr neg(ExprPtr a);
ExprPtr lnot(ExprPtr a);
ExprPtr land(ExprPtr a, ExprPtr b);
ExprPtr elem(int sym, SectionExprPtr point);
ExprPtr iown(int sym, SectionExprPtr s);
ExprPtr accessible(int sym, SectionExprPtr s);
ExprPtr awaitOf(int sym, SectionExprPtr s);
ExprPtr mylb(int sym, SectionExprPtr s, int dim);
ExprPtr myub(int sym, SectionExprPtr s, int dim);
ExprPtr secNonEmpty(int sym, SectionExprPtr s);

/// Structural equality (used by redundancy elimination and tests).
bool sameExpr(const ExprPtr& a, const ExprPtr& b);

// --- section expressions ---------------------------------------------------

/// A triplet whose bounds are expressions. `ub == nullptr` means a single
/// index (lb:lb); `stride == nullptr` means stride 1.
struct TripletExpr {
  ExprPtr lb;
  ExprPtr ub;
  ExprPtr stride;
};

enum class SecExprKind {
  Literal,    ///< per-dimension triplet expressions
  LocalPart,  ///< the executing processor's partition of `sym` under
              ///< `distOverride` or the symbol's declared distribution
  OwnerPart,  ///< processor `pid`'s partition, same distribution choice
  Intersect,  ///< set intersection of two section expressions
};

struct SectionExpr {
  SecExprKind kind;

  std::vector<TripletExpr> dims;  // Literal

  int sym = -1;                   // LocalPart / OwnerPart
  ExprPtr pid;                    // OwnerPart
  /// When set, LocalPart/OwnerPart use this distribution instead of the
  /// symbol's declared one — how the compiler names "my part under the
  /// *target* distribution" during redistribution (paper section 4).
  std::optional<dist::Distribution> distOverride;

  SectionExprPtr a, b;            // Intersect
};

SectionExprPtr secLit(std::vector<TripletExpr> dims);
/// Single-point literal: A[i], A[i,j], ...
SectionExprPtr secPoint(std::vector<ExprPtr> subscripts);
/// lb:ub (stride 1) in one dimension.
SectionExprPtr secRange1(ExprPtr lb, ExprPtr ub);
SectionExprPtr secLocalPart(int sym,
                            std::optional<dist::Distribution> dist = {});
SectionExprPtr secOwnerPart(int sym, ExprPtr pid,
                            std::optional<dist::Distribution> dist = {});
SectionExprPtr secIntersect(SectionExprPtr a, SectionExprPtr b);

bool sameSectionExpr(const SectionExprPtr& a, const SectionExprPtr& b);

}  // namespace xdp::il
