// Text format for IL+XDP programs — the paper's surface syntax, parsed.
//
//   procs 4
//   array A f64 [1:16] (BLOCK:4)
//   array B f64 [1:16] (CYCLIC:4)
//   array T f64 [0:3] (BLOCK:4)
//
//   do i = 1, 16
//     iown(B[i]) : { B[i] -> }
//     iown(A[i]) : {
//       T[mypid] <- B[i]
//       await(T[mypid])
//       A[i] = A[i] + T[mypid]
//     }
//   enddo
//
// Grammar highlights:
//   * declarations: `procs N` then `array NAME (f64|i64|c128) [lb:ub,...]
//     (DIST,...) [seg (e,...)]` where DIST is `*`, `BLOCK:p`, `CYCLIC:p`
//     or `CYCLIC(k):p` (`:p` may be omitted when only one dimension is
//     distributed — it defaults to `procs`).
//   * statements: do/enddo loops, `expr : { ... }` guards, element and
//     scalar assignment, all six transfer statements (`->`, `-> {dests}`,
//     `=>`, `-=>`, `<-`, `<=`, `<=-`), bare `await(X)`, `compute(e)`,
//     and kernel calls `name(A[sec], ...)`.
//   * sections: literal `[e]`, `[lb:ub]`, `[lb:ub:stride]` per dimension,
//     `[mypart]`, `[part(e)]`, and intersections with `^`.
//   * `// ...` comments are ignored.
//
// printProgram(prog, {.parseable = true}) emits exactly this dialect, so
// parse/print round-trips are stable (modulo link ids and distribution
// overrides, which belong to the pass-internal auxiliary structures).
#pragma once

#include <string>

#include "xdp/il/program.hpp"

namespace xdp::il {

/// Parse a full program (declarations + body). Throws xdp::Error with a
/// line/column diagnostic on malformed input.
Program parseProgram(const std::string& text);

/// Parse a statement block against existing declarations (appended to
/// `prog.body` use-cases; `text` contains statements only).
StmtPtr parseStmts(const Program& prog, const std::string& text);

}  // namespace xdp::il
