// Pretty-printer producing the paper's surface syntax:
//
//   do i = 1, n
//     iown(B[i]) : { B[i] -> }
//     iown(A[i]) : {
//       T[mypid] <- B[i]
//       await(T[mypid])
//       A[i] = A[i] + T[mypid]
//     }
//   enddo
//
// Used for program dumps, documentation, and structural comparison in
// tests (two programs print identically iff they are structurally equal
// up to link ids, which are printed only when `showLinks`).
#pragma once

#include <string>

#include "xdp/il/program.hpp"

namespace xdp::il {

struct PrintOptions {
  bool showLinks = false;  ///< annotate transfers with their link ids
  /// Emit `procs`/`array` directives instead of declaration comments, so
  /// the output round-trips through parseProgram (see parser.hpp). Bodies
  /// are always printed in the parseable dialect; distribution overrides
  /// (`@(...)`) have no textual form and still print as annotations.
  bool parseable = false;
};

std::string printExpr(const Program& prog, const ExprPtr& e);
std::string printSection(const Program& prog, const SectionExprPtr& s);
std::string printStmt(const Program& prog, const StmtPtr& s,
                      PrintOptions opts = {});
std::string printProgram(const Program& prog, PrintOptions opts = {});

}  // namespace xdp::il
