// IL+XDP statements: the base IL (assignments, loops, blocks, kernel
// calls) plus the XDP extensions — guarded statements (compute rules,
// section 2.4) and the send/receive statements of Figure 1.
//
// Send/receive statements carry a `linkId`: the paper's "auxiliary data
// structure ... that links the -=> and <=- statements", used for
// communication binding at code-generation time. LowerOwnerComputes and
// the example pipelines assign link ids; CommBinding consumes them.
#pragma once

#include "xdp/il/expr.hpp"

namespace xdp::il {

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

enum class StmtKind {
  Block,         ///< sequence
  ScalarAssign,  ///< universal scalar = expr
  ElemAssign,    ///< A[point] = expr (lhs must be owned)
  For,           ///< do var = lb, ub [, step]
  Guarded,       ///< computeRule : { body }   (rule false => skip)
  SendData,      ///< E ->  /  E -> S
  RecvData,      ///< E <- X
  SendOwn,       ///< E =>  /  E -=>  (withValue selects)
  RecvOwn,       ///< U <=  /  U <=-  (withValue selects)
  Await,         ///< await(X) as a bare synchronization statement
  LocalCopy,     ///< dst[S] = src[S] elementwise, no communication
  Kernel,        ///< call a registered computational kernel
  ComputeCost,   ///< advance the virtual clock by expr (modeled local work)
};

/// Destination annotation of a send. `None` is the paper's "unspecified
/// processor" (routed via the rendezvous matcher at run time); `Pids` is
/// the explicit "E -> S" form; `OwnerOf` is what the CommBinding pass
/// writes: "the owner of section `section` of `sym` under `distOverride`
/// (or its declared distribution)" — resolvable locally because
/// distributions are compile-time known (section 3).
struct DestSpec {
  enum class Kind { None, Pids, OwnerOf };
  Kind kind = Kind::None;
  std::vector<ExprPtr> pids;               // Pids
  int sym = -1;                            // OwnerOf
  SectionExprPtr section;                  // OwnerOf
  std::optional<dist::Distribution> distOverride;  // OwnerOf

  static DestSpec none() { return {}; }
  static DestSpec toPids(std::vector<ExprPtr> pids);
  static DestSpec ownerOf(int sym, SectionExprPtr section,
                          std::optional<dist::Distribution> dist = {});
};

struct Stmt {
  StmtKind kind;

  std::vector<StmtPtr> stmts;  // Block

  std::string name;            // ScalarAssign: scalar / For: loop var /
                               // Kernel: kernel name
  ExprPtr value;               // ScalarAssign rhs / ComputeCost cost

  int sym = -1;                // ElemAssign / transfers: primary symbol
  SectionExprPtr lhs;          // ElemAssign target point / transfer section
  ExprPtr rhs;                 // ElemAssign value

  ExprPtr lb, ub, step;        // For bounds (step null => 1)
  StmtPtr body;                // For / Guarded

  ExprPtr rule;                // Guarded compute rule

  // Transfers. SendData/SendOwn use (sym, lhs) as the sent section E.
  // RecvData: destination (sym, lhs) <- name (sym2, sec2).
  // RecvOwn uses (sym, lhs) as U. LocalCopy: (sym, lhs) = (sym2, sec2).
  int sym2 = -1;
  SectionExprPtr sec2;
  bool withValue = false;      // SendOwn / RecvOwn
  DestSpec dest;               // sends
  int linkId = -1;             // send<->receive link (see header comment)
  /// Part of the send<->receive auxiliary structure: the pid expression of
  /// the processor that will post the matching receive, recorded by the
  /// pass that *created* the transfer pair (which knows the pairing) and
  /// consumed by CommBinding, which turns it into a bound destination.
  /// Until CommBinding runs, the send still routes via the matcher.
  ExprPtr bindHint;

  std::vector<std::pair<int, SectionExprPtr>> args;  // Kernel arguments

  SrcLoc loc;                  // source position (see expr.hpp); line 0 =
                               // unknown (builder-constructed statement)
};

// --- factories -----------------------------------------------------------
StmtPtr block(std::vector<StmtPtr> stmts);
StmtPtr scalarAssign(std::string name, ExprPtr value);
StmtPtr elemAssign(int sym, SectionExprPtr point, ExprPtr rhs);
StmtPtr forLoop(std::string var, ExprPtr lb, ExprPtr ub, StmtPtr body,
                ExprPtr step = {});
StmtPtr guarded(ExprPtr rule, StmtPtr body);
StmtPtr sendData(int sym, SectionExprPtr e, DestSpec dest = {},
                 int linkId = -1);
StmtPtr recvData(int dstSym, SectionExprPtr dst, int srcSym,
                 SectionExprPtr name, int linkId = -1);
StmtPtr sendOwn(int sym, SectionExprPtr e, bool withValue,
                DestSpec dest = {}, int linkId = -1);
StmtPtr recvOwn(int sym, SectionExprPtr u, bool withValue, int linkId = -1);
StmtPtr awaitStmt(int sym, SectionExprPtr s);
StmtPtr localCopy(int dstSym, SectionExprPtr dst, int srcSym,
                  SectionExprPtr src);
StmtPtr kernel(std::string name,
               std::vector<std::pair<int, SectionExprPtr>> args);
StmtPtr computeCost(ExprPtr cost);

/// Rebuild a statement with one field replaced (functional updates for
/// passes). Each returns a fresh node sharing all other fields.
StmtPtr withBody(const StmtPtr& s, StmtPtr newBody);
StmtPtr withStmts(const StmtPtr& s, std::vector<StmtPtr> newStmts);
StmtPtr withDest(const StmtPtr& s, DestSpec dest);

}  // namespace xdp::il
