// Flat, data-oriented storage for IL+XDP programs — the codegen-side twin
// of the shared_ptr AST in expr.hpp/stmt.hpp.
//
// The pointer AST is the *rewrite* representation: immutable nodes,
// structural sharing, functional updates — what the optimization passes
// want. This file is the *execution* representation the paper's §3.2
// "delayed binding at code generation" lowers to: every node lives in a
// contiguous arena addressed by a 32-bit ref, child lists live in shared
// side-arrays (no per-node vectors), scalar names are interned to dense
// ids, and distribution overrides are interned into one table. A whole
// program is a handful of flat vectors — walking it touches sequential
// memory instead of chasing shared_ptr control blocks, and downstream
// consumers (the bytecode compiler, the flat tree-walk evaluator) address
// nodes by index with no hashing and no reference counting.
//
// Invariants established by flatten() and checked by verify():
//   * children precede parents (post-order): for every node, every ref it
//     holds is numerically smaller than its own index — passes walking a
//     node array front-to-back see operands before users;
//   * DAG sharing survives: a subtree shared in the AST flattens once and
//     is referenced twice (refs are stable identities, like the pointer
//     equality passes use today);
//   * all spans (kidsOff/kidsLen, ...) lie inside their side-array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xdp/il/program.hpp"

namespace xdp::il::flat {

inline constexpr std::uint32_t kNone = 0xFFFFFFFFu;

/// 32-bit typed indices into FlatProgram's node arrays (the
/// felipeagc/new-lang compiler-slice idiom: refs are values, nodes are
/// plain data rows).
struct ExprRef {
  std::uint32_t id = kNone;
  bool valid() const { return id != kNone; }
};
struct StmtRef {
  std::uint32_t id = kNone;
  bool valid() const { return id != kNone; }
};
struct SecRef {
  std::uint32_t id = kNone;
  bool valid() const { return id != kNone; }
};

/// A triplet expression in a literal section: invalid ub means a single
/// index (lb:lb), invalid stride means stride 1 — same convention as
/// il::TripletExpr. Stored in FlatProgram::triplets, never per-node.
struct TripletRef {
  ExprRef lb, ub, stride;
};

/// One expression row. `kind` selects the live fields (same tagged-struct
/// shape as il::Expr, with refs for pointers and a dense id for the
/// scalar name).
struct Expr {
  ExprKind kind = ExprKind::IntConst;
  BinOp op = BinOp::Add;          // Bin
  std::int32_t sym = -1;          // Elem + intrinsics
  std::int32_t dim = 0;           // MyLb / MyUb
  std::int32_t scalarId = -1;     // ScalarRef: index into scalarNames
  ExprRef lhs, rhs;               // Bin (Neg/Not use lhs only)
  SecRef section;                 // Elem + intrinsics
  Index intVal = 0;               // IntConst
  double realVal = 0.0;           // RealConst
};

/// One section-expression row. Literal dims live in the shared triplet
/// side-array as [dimsOff, dimsOff+dimsLen).
struct Sec {
  SecExprKind kind = SecExprKind::Literal;
  std::int32_t sym = -1;          // LocalPart / OwnerPart
  std::int32_t dist = -1;         // index into dists; -1 = declared dist
  ExprRef pid;                    // OwnerPart
  SecRef a, b;                    // Intersect
  std::uint32_t dimsOff = 0, dimsLen = 0;  // Literal -> triplets[]
};

enum class DestKind : std::uint8_t { None, Pids, OwnerOf };

struct KernelArg {
  std::int32_t sym = -1;
  SecRef section;
};

/// One statement row. Block children and destination pid expressions are
/// spans into the shared side-arrays.
struct Stmt {
  StmtKind kind = StmtKind::Block;
  bool withValue = false;          // SendOwn / RecvOwn
  DestKind destKind = DestKind::None;
  std::int32_t scalarId = -1;      // ScalarAssign / For loop variable
  std::int32_t nameId = -1;        // Kernel: index into names
  std::int32_t sym = -1, sym2 = -1;
  std::int32_t linkId = -1;
  ExprRef value, rhs, lb, ub, step, rule, bindHint;
  SecRef lhs, sec2;
  StmtRef body;                    // For / Guarded
  std::uint32_t kidsOff = 0, kidsLen = 0;          // Block -> stmtKids[]
  std::int32_t destSym = -1, destDist = -1;        // dest OwnerOf
  SecRef destSection;                              // dest OwnerOf
  std::uint32_t destPidsOff = 0, destPidsLen = 0;  // dest Pids -> exprKids[]
  std::uint32_t argsOff = 0, argsLen = 0;          // Kernel -> kernelArgs[]
};

/// A whole program as contiguous arrays. Node arrays are append-only;
/// refs are stable for the life of the program.
struct FlatProgram {
  int nprocs = 1;
  std::vector<ArrayDecl> arrays;
  StmtRef body;

  std::vector<Expr> exprs;
  std::vector<Stmt> stmts;
  std::vector<Sec> secs;

  // Shared side-arrays for all child lists.
  std::vector<StmtRef> stmtKids;
  std::vector<ExprRef> exprKids;
  std::vector<TripletRef> triplets;
  std::vector<KernelArg> kernelArgs;

  std::vector<std::string> scalarNames;   ///< dense universal-scalar ids
  std::vector<std::string> names;         ///< kernel names
  std::vector<dist::Distribution> dists;  ///< interned distOverrides

  const Expr& operator[](ExprRef r) const { return exprs[r.id]; }
  const Stmt& operator[](StmtRef r) const { return stmts[r.id]; }
  const Sec& operator[](SecRef r) const { return secs[r.id]; }

  int numScalars() const { return static_cast<int>(scalarNames.size()); }

  /// Total rows across the three node arrays (sizing/throughput metric).
  std::size_t nodeCount() const {
    return exprs.size() + stmts.size() + secs.size();
  }
};

/// Flatten the pointer AST into arena form. Shared AST subtrees flatten
/// to shared refs; scalar names are interned in first-visit order.
FlatProgram flatten(const il::Program& prog);

/// Structural invariant check (see header comment). Returns one message
/// per violation; empty = well-formed. Used by tests and --verify-passes.
std::vector<std::string> verify(const FlatProgram& fp);

}  // namespace xdp::il::flat
