#include "xdp/rt/proc_table.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "xdp/net/wire.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {

namespace {
/// Below this many segments a linear scan beats the binary search setup.
constexpr std::size_t kLinearScanThreshold = 8;
}  // namespace

const char* elemTypeName(ElemType t) {
  switch (t) {
    case ElemType::F64:
      return "f64";
    case ElemType::I64:
      return "i64";
    case ElemType::C128:
      return "c128";
  }
  return "?";
}

const char* segStateName(SegState s) {
  switch (s) {
    case SegState::Unowned:
      return "unowned";
    case SegState::Transitional:
      return "transitional";
    case SegState::Accessible:
      return "accessible";
  }
  return "?";
}

std::size_t ProcTable::Pool::allocate(std::size_t elems) {
  // First fit over the free list; split oversized blocks.
  for (auto it = freeList.begin(); it != freeList.end(); ++it) {
    if (it->second >= elems) {
      std::size_t off = it->first;
      if (it->second == elems) {
        freeList.erase(it);
      } else {
        it->first += elems;
        it->second -= elems;
      }
      stats.allocs += 1;
      stats.currentElems += elems;
      stats.peakElems = std::max(stats.peakElems, stats.currentElems);
      std::memset(bytes.data() + off * elemSz, 0, elems * elemSz);
      return off;
    }
  }
  std::size_t off = bytes.size() / elemSz;
  bytes.resize(bytes.size() + elems * elemSz, std::byte{0});
  stats.allocs += 1;
  stats.currentElems += elems;
  stats.peakElems = std::max(stats.peakElems, stats.currentElems);
  stats.poolElems = bytes.size() / elemSz;
  return off;
}

void ProcTable::Pool::release(std::size_t offset, std::size_t elems) {
  if (elems == 0) return;
  stats.frees += 1;
  stats.currentElems -= elems;
  // Keep the free list sorted by offset and coalesce with both neighbours,
  // so freed segment storage can back later allocations of any shape
  // (the paper's storage-reuse claim, section 2.6).
  auto it = std::lower_bound(
      freeList.begin(), freeList.end(), offset,
      [](const auto& blk, std::size_t off) { return blk.first < off; });
  it = freeList.insert(it, {offset, elems});
  if (it != freeList.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      it = freeList.erase(it);
      it = std::prev(it);
    }
  }
  auto next = std::next(it);
  if (next != freeList.end() && it->first + it->second == next->first) {
    it->second += next->second;
    freeList.erase(next);
  }
}

void ProcTable::rebuildIndexLocked(Entry& e) {
  const std::size_t n = e.segs.size();
  e.order.resize(n);
  e.prefixMaxUb.resize(n);
  for (std::size_t i = 0; i < n; ++i) e.order[i] = static_cast<int>(i);
  if (n == 0) return;
  // Rank-0 symbols (scalars) have at most one segment; the index is only
  // consulted for rank >= 1 queries, where dim 0 is always present.
  if (e.segs.front().bounds.rank() == 0) return;
  std::sort(e.order.begin(), e.order.end(), [&](int a, int b) {
    return e.segs[static_cast<std::size_t>(a)].bounds.dim(0).lb() <
           e.segs[static_cast<std::size_t>(b)].bounds.dim(0).lb();
  });
  Index running = kMinInt;
  for (std::size_t i = 0; i < n; ++i) {
    running = std::max(
        running, e.segs[static_cast<std::size_t>(e.order[i])].bounds.dim(0).ub());
    e.prefixMaxUb[i] = running;
  }
}

template <typename Fn>
void ProcTable::forEachCandidateLocked(const Entry& e, const Section& s,
                                       Fn&& fn) const {
  const std::size_t n = e.segs.size();
  if (s.rank() == 0 || n <= kLinearScanThreshold) {
    for (const SegmentDesc& seg : e.segs) fn(seg);
    return;
  }
  const Index qlb = s.dim(0).lb();
  const Index qub = s.dim(0).ub();
  // First position (in lb order) whose segment starts beyond the query;
  // everything at or after it cannot overlap. Walk backwards from there
  // until the running max upper bound drops below the query start —
  // everything earlier cannot overlap either.
  auto past = std::upper_bound(
      e.order.begin(), e.order.end(), qub, [&](Index v, int idx) {
        return v < e.segs[static_cast<std::size_t>(idx)].bounds.dim(0).lb();
      });
  for (auto j = static_cast<std::size_t>(past - e.order.begin()); j-- > 0;) {
    if (e.prefixMaxUb[j] < qlb) break;
    const SegmentDesc& seg = e.segs[static_cast<std::size_t>(e.order[j])];
    if (seg.bounds.dim(0).ub() >= qlb) fn(seg);
  }
}

ProcTable::ProcTable(int pid, const std::vector<SymbolDecl>& decls,
                     bool debugChecks)
    : pid_(pid), debugChecks_(debugChecks), decls_(decls) {
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const SymbolDecl& d = decls_[i];
    XDP_CHECK(d.index == static_cast<int>(i), "symbol index mismatch");
    Entry& e = entries_.emplace_back();
    e.pool.elemSz = elemSize(d.type);
    for (const Section& bounds :
         dist::segmentsOf(d.dist, pid, d.segShape)) {
      SegmentDesc seg;
      seg.status = SegState::Accessible;
      seg.bounds = bounds;
      seg.elemOffset =
          e.pool.allocate(static_cast<std::size_t>(bounds.count()));
      e.segs.push_back(std::move(seg));
    }
    rebuildIndexLocked(e);
  }
}

const SymbolDecl& ProcTable::decl(int sym) const {
  XDP_CHECK(sym >= 0 && sym < numSymbols(), "bad symbol index");
  return decls_[static_cast<std::size_t>(sym)];
}

const ProcTable::Entry& ProcTable::entry(int sym) const {
  XDP_CHECK(sym >= 0 && sym < numSymbols(), "bad symbol index");
  return entries_[static_cast<std::size_t>(sym)];
}

ProcTable::Entry& ProcTable::entry(int sym) {
  XDP_CHECK(sym >= 0 && sym < numSymbols(), "bad symbol index");
  return entries_[static_cast<std::size_t>(sym)];
}

bool ProcTable::pendingOverlapsLocked(const Entry& e, const Section& s) {
  for (const Section& p : e.pendingRecvs) {
    if (p.rank() != s.rank()) continue;
    if (!Section::intersect(p, s).empty()) return true;
  }
  return false;
}

int ProcTable::stateOfLocked(int sym, const Section& s,
                             double* arrival) const {
  // The paper's iown() algorithm: intersect the query with every segment
  // that can overlap it; since segments are disjoint, coverage holds iff
  // the intersection cardinalities sum to the query cardinality.
  // Accessibility is then a per-section property: no uncompleted receive
  // may overlap the query. The arrival fold is skipped unless asked for.
  const Entry& e = entry(sym);
  Index covered = 0;
  double maxArrival = 0.0;
  forEachCandidateLocked(e, s, [&](const SegmentDesc& seg) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) return;
    covered += i.count();
    if (arrival != nullptr) maxArrival = std::max(maxArrival, seg.arrival);
  });
  if (covered != s.count()) return -1;
  if (arrival != nullptr) *arrival = maxArrival;
  if (e.pendingRecvs.empty()) return 1;  // common case: nothing in flight
  return pendingOverlapsLocked(e, s) ? 0 : 1;
}

bool ProcTable::cacheLookup(const Entry& e, const Section& s,
                            bool wantArrival, int* state,
                            double* arrival) const {
  // Epoch-validated hit, lock-free w.r.t. mu_: slot contents are guarded
  // by the leaf cacheMu; validity is "entry epoch still equals the epoch
  // recorded at fill time". Mutators bump the epoch under the exclusive
  // lock, so an equal epoch proves the cached answer is current (or
  // linearizes immediately before an in-flight mutation, which is an
  // equally legal serialization of the racing query).
  const std::uint64_t cur = e.epoch.load(std::memory_order_acquire);
  std::lock_guard lk(e.cacheMu);
  for (const CacheSlot& slot : e.cache) {
    if (!slot.valid || slot.epoch != cur) continue;
    if (wantArrival && !slot.hasArrival) continue;
    if (!(slot.key == s)) continue;
    *state = slot.state;
    if (arrival != nullptr && slot.hasArrival) *arrival = slot.arrival;
    cacheHits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  cacheMisses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ProcTable::cacheStore(const Entry& e, const Section& s,
                           std::uint64_t epoch, int state, bool hasArrival,
                           double arrival) const {
  std::lock_guard lk(e.cacheMu);
  CacheSlot* victim = nullptr;
  for (CacheSlot& slot : e.cache) {
    if (slot.valid && slot.key == s) {
      victim = &slot;  // refresh in place so hot keys never evict each other
      break;
    }
  }
  if (victim == nullptr) {
    victim = &e.cache[static_cast<std::size_t>(e.cacheHand)];
    e.cacheHand = (e.cacheHand + 1) % static_cast<int>(e.cache.size());
  }
  victim->key = s;
  victim->epoch = epoch;
  victim->state = static_cast<std::int8_t>(state);
  victim->hasArrival = hasArrival;
  victim->arrival = arrival;
  victim->valid = true;
}

int ProcTable::stateCached(int sym, const Section& s, double* arrival) const {
  const Entry& e = entry(sym);
  int st = 0;
  if (cacheLookup(e, s, arrival != nullptr, &st, arrival)) return st;
  std::shared_lock lk(mu_);
  const std::uint64_t ep = e.epoch.load(std::memory_order_relaxed);
  double arr = 0.0;
  st = stateOfLocked(sym, s, arrival != nullptr ? &arr : nullptr);
  if (arrival != nullptr) *arrival = arr;
  cacheStore(e, s, ep, st, arrival != nullptr, arr);
  return st;
}

bool ProcTable::iown(int sym, const Section& s) const {
  return stateCached(sym, s, nullptr) >= 0;
}

bool ProcTable::accessible(int sym, const Section& s) const {
  return stateCached(sym, s, nullptr) == 1;
}

sec::RegionList ProcTable::ownedRanges(int sym, const Section& s,
                                       bool excludeTransitional) const {
  std::shared_lock lk(mu_);
  const Entry& e = entry(sym);
  std::vector<Section> pieces;
  forEachCandidateLocked(e, s, [&](const SegmentDesc& seg) {
    Section i = Section::intersect(seg.bounds, s);
    if (!i.empty()) pieces.push_back(std::move(i));
  });
  // Segments are pairwise disjoint, so their intersections with `s` are
  // too — RegionList can adopt them without re-diffing.
  sec::RegionList out(std::move(pieces));
  if (excludeTransitional && !out.empty()) {
    for (const Section& p : e.pendingRecvs) {
      if (p.rank() == s.rank()) out.subtract(p);
    }
  }
  return out;
}

bool ProcTable::await(int sym, const Section& s, double* arrival) {
  // Fast path: an epoch-valid memo of a decided state needs no lock and
  // no park bookkeeping. A transitional memo falls through to the slow
  // path, as does any abort (so the throw happens under the lock with the
  // abort fields stable).
  if (!aborted_.load(std::memory_order_acquire)) {
    const Entry& e = entry(sym);
    int st = 0;
    if (cacheLookup(e, s, arrival != nullptr, &st, arrival) && st != 0) {
      return st == 1;
    }
  }
  std::unique_lock lk(mu_);
  Entry& e = entry(sym);
  while (true) {
    if (aborted_.load(std::memory_order_relaxed))
      throwAbortLocked("blocked in await");
    // Checkpoint rollback/preempt: the hook throws out of the blocked
    // await (the restart point was published before this statement).
    if (waitInterrupt_) waitInterrupt_();
    double arr = 0.0;
    int st = stateOfLocked(sym, s, arrival != nullptr ? &arr : nullptr);
    if (arrival != nullptr) *arrival = arr;
    if (st != 0) {
      cacheStore(e, s, e.epoch.load(std::memory_order_relaxed), st,
                 arrival != nullptr, arr);
      return st == 1;  // unowned: await returns false (Fig. 1)
    }
    // Transitional, and deferred (ring-transport) deliveries are queued
    // for this processor: reap them instead of parking. The table lock
    // drops for the poll — delivery re-enters this table through
    // completion callbacks (fabric endpoint lock -> table lock order) —
    // and the loop then re-checks the awaited state, which the reap (or
    // any concurrent inline delivery during the unlock window) may have
    // decided.
    if (fabricPoll_ && fabricBacklog_()) {
      lk.unlock();
      fabricPoll_();
      lk.lock();
      continue;
    }
    // Park. Publish what we wait on so the watchdog can tell a genuinely
    // blocked processor from a running one. No unlock separates the
    // backlog/state checks from cv_.wait, and the fabric's delivery-wake
    // notify takes mu_, so a transport submission either lands before the
    // check above or its notify finds us parked — no wake-up is lost.
    wait_.parked = true;
    wait_.sym = sym;
    wait_.section = s;
    waitEpoch_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lk);
    wait_.parked = false;
    waitEpoch_.fetch_add(1, std::memory_order_relaxed);
  }
}

ProcTable::WaitState ProcTable::waitState() const {
  std::shared_lock lk(mu_);
  WaitState w;
  w.epoch = waitEpoch_.load(std::memory_order_relaxed);
  if (!wait_.parked) return w;
  // Re-derive blockedness from the actual table state: if the awaited
  // section has become accessible (or unowned), the thread has a wake-up
  // pending and is not stuck, however long the OS takes to schedule it.
  if (stateOfLocked(wait_.sym, wait_.section, nullptr) != 0) return w;
  w.blocked = true;
  w.sym = wait_.sym;
  w.section = wait_.section;
  return w;
}

void ProcTable::abortWaits(std::string summary,
                           std::shared_ptr<const std::string> report) {
  std::lock_guard lk(mu_);
  abortSummary_ = std::move(summary);
  abortReport_ = std::move(report);
  aborted_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void ProcTable::throwAbortLocked(const char* where) const {
  throw DeadlockError(
      abortSummary_ + " [p" + std::to_string(pid_) + " " + where + "]",
      abortReport_ ? *abortReport_ : std::string());
}

ProcTable::CacheStats ProcTable::cacheStats() const {
  CacheStats c;
  c.hits = cacheHits_.load(std::memory_order_relaxed);
  c.misses = cacheMisses_.load(std::memory_order_relaxed);
  return c;
}

Index ProcTable::mylb(int sym, const Section& s, int d) const {
  std::shared_lock lk(mu_);
  const Entry& e = entry(sym);
  Index best = kMaxInt;
  forEachCandidateLocked(e, s, [&](const SegmentDesc& seg) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) return;
    best = std::min(best, i.dim(d).lb());
  });
  return best;
}

Index ProcTable::myub(int sym, const Section& s, int d) const {
  std::shared_lock lk(mu_);
  const Entry& e = entry(sym);
  Index best = kMinInt;
  forEachCandidateLocked(e, s, [&](const SegmentDesc& seg) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) return;
    best = std::max(best, i.dim(d).ub());
  });
  return best;
}

void ProcTable::readElemsLocked(const Entry& e, int sym, const Section& s,
                                std::byte* out) const {
  const std::size_t sz = e.pool.elemSz;
  if (debugChecks_ && pendingOverlapsLocked(e, s)) {
    std::ostringstream os;
    os << "read of transitional section " << s.str() << " of symbol '"
       << decl(sym).name << "' on p" << pid_
       << " (an initiated receive has not completed)";
    XDP_USAGE_FAIL(os.str());
  }
  Index covered = 0;
  forEachCandidateLocked(e, s, [&](const SegmentDesc& seg) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) return;
    covered += i.count();
    const std::byte* base = e.pool.bytes.data() + seg.elemOffset * sz;
    i.forEach([&](const Point& p) {
      std::memcpy(out + static_cast<std::size_t>(s.fortranPos(p)) * sz,
                  base + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz,
                  sz);
    });
  });
  if (debugChecks_ && covered != s.count()) {
    std::ostringstream os;
    os << "read of unowned elements: " << s.str() << " of '"
       << decl(sym).name << "' on p" << pid_;
    XDP_USAGE_FAIL(os.str());
  }
}

int ProcTable::segmentAtLocked(const Entry& e, const Point& p) const {
  const int hint = e.segHint.load(std::memory_order_relaxed);
  if (hint >= 0 && hint < static_cast<int>(e.segs.size()) &&
      e.segs[static_cast<std::size_t>(hint)].bounds.contains(p))
    return hint;
  std::array<sec::Triplet, sec::kMaxRank> dims{};
  for (int d = 0; d < p.rank(); ++d)
    dims[static_cast<std::size_t>(d)] = sec::Triplet(p[d]);
  const Section ps(p.rank(), dims);
  int found = -1;
  forEachCandidateLocked(e, ps, [&](const SegmentDesc& seg) {
    if (found < 0 && seg.bounds.contains(p))
      found = static_cast<int>(&seg - e.segs.data());
  });
  if (found >= 0) e.segHint.store(found, std::memory_order_relaxed);
  return found;
}

bool ProcTable::tryReadElemAt(int sym, const Point& p, std::byte* out) const {
  std::shared_lock lk(mu_);
  const Entry& e = entry(sym);
  if (!e.pendingRecvs.empty()) return false;
  const int idx = segmentAtLocked(e, p);
  if (idx < 0) return false;
  const SegmentDesc& seg = e.segs[static_cast<std::size_t>(idx)];
  const std::size_t sz = e.pool.elemSz;
  std::memcpy(out,
              e.pool.bytes.data() +
                  (seg.elemOffset +
                   static_cast<std::size_t>(seg.bounds.fortranPos(p))) *
                      sz,
              sz);
  return true;
}

bool ProcTable::tryWriteElemAt(int sym, const Point& p, const std::byte* in) {
  // Exclusive, like writeElems: concurrent shared-locked readers (gather,
  // monitoring) must never observe a mid-write element.
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  if (!e.pendingRecvs.empty()) return false;
  const int idx = segmentAtLocked(e, p);
  if (idx < 0) return false;
  SegmentDesc& seg = e.segs[static_cast<std::size_t>(idx)];
  const std::size_t sz = e.pool.elemSz;
  std::memcpy(e.pool.bytes.data() +
                  (seg.elemOffset +
                   static_cast<std::size_t>(seg.bounds.fortranPos(p))) *
                      sz,
              in, sz);
  return true;
}

ProcTable::ElemLease::ElemLease(ProcTable& t)
    : t_(&t), lk_(t.mu_), win_(t.entries_.size()) {}

/// Address of the element at `p`, window-first. A window hit is pure
/// local arithmetic; a miss re-resolves through the segment index and
/// re-fills the window when the covering segment is contiguous. Returns
/// nullptr when the point is not plainly accessible.
std::byte* ProcTable::ElemLease::resolve(int sym, const Point& p, Window& w) {
  if (w.base != nullptr) {
    std::size_t pos = 0;
    int d = 0;
    for (; d < w.rank; ++d) {
      const Index x = p[d];
      if (x < w.lb[static_cast<std::size_t>(d)] ||
          x > w.ub[static_cast<std::size_t>(d)])
        break;
      pos += static_cast<std::size_t>(
                 (x - w.lb[static_cast<std::size_t>(d)]) *
                 w.mult[static_cast<std::size_t>(d)]);
    }
    if (d == w.rank) return w.base + pos * w.sz;
  }
  Entry& e = t_->entry(sym);
  if (!e.pendingRecvs.empty()) return nullptr;
  const int idx = t_->segmentAtLocked(e, p);
  if (idx < 0) return nullptr;
  const SegmentDesc& seg = e.segs[static_cast<std::size_t>(idx)];
  const std::size_t sz = e.pool.elemSz;
  std::byte* addr =
      e.pool.bytes.data() +
      (seg.elemOffset + static_cast<std::size_t>(seg.bounds.fortranPos(p))) *
          sz;
  bool contiguous = true;
  for (int d = 0; d < seg.bounds.rank(); ++d)
    contiguous = contiguous && seg.bounds.dim(d).stride() == 1;
  if (contiguous) {
    w.base = e.pool.bytes.data() + seg.elemOffset * sz;
    w.sz = sz;
    w.rank = seg.bounds.rank();
    Index mult = 1;
    for (int d = 0; d < w.rank; ++d) {
      const sec::Triplet& tr = seg.bounds.dim(d);
      w.lb[static_cast<std::size_t>(d)] = tr.lb();
      w.ub[static_cast<std::size_t>(d)] = tr.ub();
      w.mult[static_cast<std::size_t>(d)] = mult;
      mult *= tr.count();
    }
  }
  return addr;
}

bool ProcTable::ElemLease::tryRead(int sym, const Point& p, std::byte* out) {
  Window& w = win_[static_cast<std::size_t>(sym)];
  const std::byte* addr = resolve(sym, p, w);
  if (addr == nullptr) return false;
  std::memcpy(out, addr, w.sz != 0 ? w.sz : t_->entry(sym).pool.elemSz);
  return true;
}

bool ProcTable::ElemLease::tryWrite(int sym, const Point& p,
                                    const std::byte* in) {
  Window& w = win_[static_cast<std::size_t>(sym)];
  std::byte* addr = resolve(sym, p, w);
  if (addr == nullptr) return false;
  std::memcpy(addr, in, w.sz != 0 ? w.sz : t_->entry(sym).pool.elemSz);
  return true;
}

// Window-miss halves of the inline rank-1 accessors: fall back to the
// generic resolve(), which also refills the window for the next hit.
bool ProcTable::ElemLease::readSlow1(int sym, Index x, std::byte* out) {
  std::array<Index, sec::kMaxRank> idx{};
  idx[0] = x;
  return tryRead(sym, Point(1, idx), out);
}

bool ProcTable::ElemLease::writeSlow1(int sym, Index x, const std::byte* in) {
  std::array<Index, sec::kMaxRank> idx{};
  idx[0] = x;
  return tryWrite(sym, Point(1, idx), in);
}

void ProcTable::readElems(int sym, const Section& s, std::byte* out) const {
  // Shared lock: element bytes are only written by the owning processor's
  // thread (writeElems) and by completeReceive, which takes the exclusive
  // lock — so a shared-locked read never races a byte write it could see.
  std::shared_lock lk(mu_);
  readElemsLocked(entry(sym), sym, s, out);
}

void ProcTable::writeElems(int sym, const Section& s, const std::byte* in) {
  // Exclusive: scatters into pool bytes, which concurrent shared-locked
  // readers (gather, monitoring) might otherwise observe mid-write.
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  const std::size_t sz = e.pool.elemSz;
  if (debugChecks_ && pendingOverlapsLocked(e, s)) {
    std::ostringstream os;
    os << "write to transitional section " << s.str() << " of '"
       << decl(sym).name << "' on p" << pid_;
    XDP_USAGE_FAIL(os.str());
  }
  Index covered = 0;
  forEachCandidateLocked(e, s, [&](const SegmentDesc& seg) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) return;
    covered += i.count();
    std::byte* base = e.pool.bytes.data() + seg.elemOffset * sz;
    i.forEach([&](const Point& p) {
      std::memcpy(base + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz,
                  in + static_cast<std::size_t>(s.fortranPos(p)) * sz, sz);
    });
  });
  if (debugChecks_ && covered != s.count()) {
    std::ostringstream os;
    os << "write to unowned elements: " << s.str() << " of '"
       << decl(sym).name << "' on p" << pid_;
    XDP_USAGE_FAIL(os.str());
  }
}

void ProcTable::beginReceive(int sym, const Section& s) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  if (debugChecks_) {
    Index covered = 0;
    for (const SegmentDesc& seg : e.segs)
      covered += Section::intersect(seg.bounds, s).count();
    if (covered != s.count()) {
      std::ostringstream os;
      os << "receive initiated into unowned section " << s.str() << " of '"
         << decl(sym).name << "' on p" << pid_;
      XDP_USAGE_FAIL(os.str());
    }
  }
  e.pendingRecvs.push_back(s);
  e.epoch.fetch_add(1, std::memory_order_release);
}

void ProcTable::completeReceive(int sym, const Section& s,
                                const std::byte* payload,
                                double arrivalTime) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  const std::size_t sz = e.pool.elemSz;
  forEachCandidateLocked(e, s, [&](const SegmentDesc& cseg) {
    auto& seg = const_cast<SegmentDesc&>(cseg);
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) return;
    if (payload != nullptr) {
      std::byte* base = e.pool.bytes.data() + seg.elemOffset * sz;
      i.forEach([&](const Point& p) {
        std::memcpy(
            base + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz,
            payload + static_cast<std::size_t>(s.fortranPos(p)) * sz, sz);
      });
    }
    seg.arrival = std::max(seg.arrival, arrivalTime);
  });
  // Retire exactly one outstanding receive for this section (several may
  // legally target the same name, per paper section 2.7).
  for (auto it = e.pendingRecvs.begin(); it != e.pendingRecvs.end(); ++it) {
    if (*it == s) {
      e.pendingRecvs.erase(it);
      break;
    }
  }
  e.epoch.fetch_add(1, std::memory_order_release);
  cv_.notify_all();
}

std::vector<std::byte> ProcTable::takeOwnershipOut(int sym, const Section& s,
                                                   bool withValue) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  const std::size_t sz = e.pool.elemSz;

  std::vector<std::byte> payload;
  if (withValue) {
    payload.resize(static_cast<std::size_t>(s.count()) * sz);
    readElemsLocked(e, sym, s, payload.data());
  } else if (debugChecks_) {
    // Validate full ownership even when no value travels.
    if (stateOfLocked(sym, s, nullptr) < 0) {
      std::ostringstream os;
      os << "ownership send of not-fully-owned section " << s.str()
         << " of '" << decl(sym).name << "' on p" << pid_;
      XDP_USAGE_FAIL(os.str());
    }
  }

  // Split/remove segments. New descriptors for remainder pieces get fresh
  // storage; the transferred elements' storage is released — this is the
  // paper's storage-reuse benefit (section 2.6).
  XDP_CHECK(!pendingOverlapsLocked(e, s),
            "ownership transfer of a transitional section (missing await)");
  std::vector<SegmentDesc> kept;
  std::vector<SegmentDesc> added;
  for (SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) {
      kept.push_back(std::move(seg));
      continue;
    }
    for (const Section& piece : Section::subtract(seg.bounds, s)) {
      SegmentDesc nd;
      nd.status = SegState::Accessible;
      nd.bounds = piece;
      nd.arrival = seg.arrival;
      nd.elemOffset = e.pool.allocate(static_cast<std::size_t>(piece.count()));
      // Copy the surviving values old segment -> new piece.
      const std::byte* src = e.pool.bytes.data() + seg.elemOffset * sz;
      std::byte* dst = e.pool.bytes.data() + nd.elemOffset * sz;
      piece.forEach([&](const Point& p) {
        std::memcpy(
            dst + static_cast<std::size_t>(piece.fortranPos(p)) * sz,
            src + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz, sz);
      });
      added.push_back(std::move(nd));
    }
    e.pool.release(seg.elemOffset, static_cast<std::size_t>(seg.count()));
  }
  e.segs = std::move(kept);
  e.segs.insert(e.segs.end(), std::make_move_iterator(added.begin()),
                std::make_move_iterator(added.end()));
  rebuildIndexLocked(e);
  e.epoch.fetch_add(1, std::memory_order_release);
  cv_.notify_all();
  return payload;
}

void ProcTable::beginOwnershipReceive(int sym, const Section& s) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  if (debugChecks_) {
    for (const SegmentDesc& seg : e.segs) {
      if (!Section::intersect(seg.bounds, s).empty()) {
        std::ostringstream os;
        os << "ownership receive of already-owned section " << s.str()
           << " of '" << decl(sym).name << "' on p" << pid_
           << " (overlaps segment " << seg.bounds.str() << ")";
        XDP_USAGE_FAIL(os.str());
      }
    }
  }
  SegmentDesc seg;
  seg.status = SegState::Transitional;
  seg.bounds = s;
  seg.elemOffset = e.pool.allocate(static_cast<std::size_t>(s.count()));
  e.segs.push_back(std::move(seg));
  e.pendingRecvs.push_back(s);
  rebuildIndexLocked(e);
  e.epoch.fetch_add(1, std::memory_order_release);
}

std::vector<SegmentDesc> ProcTable::segments(int sym) const {
  std::shared_lock lk(mu_);
  const Entry& e = entry(sym);
  std::vector<SegmentDesc> out = e.segs;
  // Statuses are snapshots: a segment is transitional iff an uncompleted
  // receive overlaps it (Figure 1's per-section state, segment-projected).
  for (SegmentDesc& seg : out)
    seg.status = pendingOverlapsLocked(e, seg.bounds)
                     ? SegState::Transitional
                     : SegState::Accessible;
  return out;
}

StorageStats ProcTable::storageStats(int sym) const {
  std::shared_lock lk(mu_);
  return entry(sym).pool.stats;
}

std::size_t ProcTable::totalOwnedElems() const {
  std::shared_lock lk(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.pool.stats.currentElems;
  return n;
}

std::size_t ProcTable::residentBytes() const {
  std::shared_lock lk(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_)
    n += e.pool.stats.currentElems * e.pool.elemSz;
  return n;
}

void ProcTable::setWaitInterrupt(std::function<void()> fn) {
  std::lock_guard lk(mu_);
  waitInterrupt_ = std::move(fn);
}

void ProcTable::notifyWaiters() {
  std::lock_guard lk(mu_);
  cv_.notify_all();
}

void ProcTable::setFabricPoll(std::function<std::size_t()> poll,
                              std::function<bool()> backlog) {
  std::lock_guard lk(mu_);
  fabricPoll_ = std::move(poll);
  fabricBacklog_ = std::move(backlog);
}

std::vector<std::byte> ProcTable::exportImage() const {
  std::shared_lock lk(mu_);
  ckpt::Writer w;
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const std::size_t sz = e.pool.elemSz;
    w.u32(static_cast<std::uint32_t>(e.segs.size()));
    for (const SegmentDesc& seg : e.segs) {
      net::wire::putSection(w, seg.bounds);
      w.f64(seg.arrival);
      w.bytes(e.pool.bytes.data() + seg.elemOffset * sz,
              static_cast<std::size_t>(seg.count()) * sz);
    }
    w.u32(static_cast<std::uint32_t>(e.pendingRecvs.size()));
    for (const Section& s : e.pendingRecvs) net::wire::putSection(w, s);
    w.u64(e.epoch.load(std::memory_order_relaxed));
  }
  return w.take();
}

void ProcTable::restoreImage(const std::vector<std::byte>& image) {
  struct SegImg {
    Section bounds;
    double arrival;
    std::vector<std::byte> payload;
  };
  struct EntryImg {
    std::vector<SegImg> segs;
    std::vector<Section> pendingRecvs;
  };
  // Decode and validate fully before touching live entries, so a corrupt
  // image throws with the table unchanged.
  ckpt::Reader r(image);
  if (r.u32() != entries_.size())
    throw ckpt::CkptError("table image symbol count mismatch");
  std::vector<EntryImg> imgs;
  imgs.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const std::size_t sz = elemSize(decls_[i].type);
    EntryImg img;
    const std::uint32_t nsegs = r.u32();
    for (std::uint32_t k = 0; k < nsegs; ++k) {
      SegImg seg;
      seg.bounds = net::wire::getSection(r);
      seg.arrival = r.f64();
      seg.payload = r.bytes();
      if (seg.payload.size() !=
          static_cast<std::size_t>(seg.bounds.count()) * sz)
        throw ckpt::CkptError("table image segment payload size mismatch");
      img.segs.push_back(std::move(seg));
    }
    const std::uint32_t npend = r.u32();
    for (std::uint32_t k = 0; k < npend; ++k)
      img.pendingRecvs.push_back(net::wire::getSection(r));
    (void)r.u64();  // epoch at capture — diagnostic only, see below
    imgs.push_back(std::move(img));
  }

  std::lock_guard lk(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    EntryImg& img = imgs[i];
    const std::size_t sz = elemSize(decls_[i].type);
    e.pool = Pool{};
    e.pool.elemSz = sz;
    e.segs.clear();
    for (SegImg& si : img.segs) {
      SegmentDesc seg;
      seg.status = SegState::Accessible;
      seg.bounds = std::move(si.bounds);
      seg.arrival = si.arrival;
      seg.elemOffset =
          e.pool.allocate(static_cast<std::size_t>(seg.bounds.count()));
      std::memcpy(e.pool.bytes.data() + seg.elemOffset * sz,
                  si.payload.data(), si.payload.size());
      e.segs.push_back(std::move(seg));
    }
    e.pendingRecvs = std::move(img.pendingRecvs);
    rebuildIndexLocked(e);
    e.segHint.store(-1, std::memory_order_relaxed);
    // The epoch keeps running FORWARD across a rollback (never restored):
    // epochs from the abandoned timeline may live on in memo-cache slots,
    // and re-entering an already-used epoch value with different table
    // contents would validate those stale answers. Invalidate the slots
    // too, for belt and braces.
    e.epoch.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard ck(e.cacheMu);
      for (CacheSlot& slot : e.cache) slot.valid = false;
    }
  }
  cv_.notify_all();
}

}  // namespace xdp::rt
