#include "xdp/rt/proc_table.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::rt {

const char* elemTypeName(ElemType t) {
  switch (t) {
    case ElemType::F64:
      return "f64";
    case ElemType::I64:
      return "i64";
    case ElemType::C128:
      return "c128";
  }
  return "?";
}

const char* segStateName(SegState s) {
  switch (s) {
    case SegState::Unowned:
      return "unowned";
    case SegState::Transitional:
      return "transitional";
    case SegState::Accessible:
      return "accessible";
  }
  return "?";
}

std::size_t ProcTable::Pool::allocate(std::size_t elems) {
  // First fit over the free list; split oversized blocks.
  for (auto it = freeList.begin(); it != freeList.end(); ++it) {
    if (it->second >= elems) {
      std::size_t off = it->first;
      if (it->second == elems) {
        freeList.erase(it);
      } else {
        it->first += elems;
        it->second -= elems;
      }
      stats.allocs += 1;
      stats.currentElems += elems;
      stats.peakElems = std::max(stats.peakElems, stats.currentElems);
      std::memset(bytes.data() + off * elemSz, 0, elems * elemSz);
      return off;
    }
  }
  std::size_t off = bytes.size() / elemSz;
  bytes.resize(bytes.size() + elems * elemSz, std::byte{0});
  stats.allocs += 1;
  stats.currentElems += elems;
  stats.peakElems = std::max(stats.peakElems, stats.currentElems);
  stats.poolElems = bytes.size() / elemSz;
  return off;
}

void ProcTable::Pool::release(std::size_t offset, std::size_t elems) {
  if (elems == 0) return;
  stats.frees += 1;
  stats.currentElems -= elems;
  // Keep the free list sorted by offset and coalesce with both neighbours,
  // so freed segment storage can back later allocations of any shape
  // (the paper's storage-reuse claim, section 2.6).
  auto it = std::lower_bound(
      freeList.begin(), freeList.end(), offset,
      [](const auto& blk, std::size_t off) { return blk.first < off; });
  it = freeList.insert(it, {offset, elems});
  if (it != freeList.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      it = freeList.erase(it);
      it = std::prev(it);
    }
  }
  auto next = std::next(it);
  if (next != freeList.end() && it->first + it->second == next->first) {
    it->second += next->second;
    freeList.erase(next);
  }
}

ProcTable::ProcTable(int pid, const std::vector<SymbolDecl>& decls,
                     bool debugChecks)
    : pid_(pid), debugChecks_(debugChecks), decls_(decls) {
  entries_.resize(decls_.size());
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const SymbolDecl& d = decls_[i];
    XDP_CHECK(d.index == static_cast<int>(i), "symbol index mismatch");
    Entry& e = entries_[i];
    e.pool.elemSz = elemSize(d.type);
    for (const Section& bounds :
         dist::segmentsOf(d.dist, pid, d.segShape)) {
      SegmentDesc seg;
      seg.status = SegState::Accessible;
      seg.bounds = bounds;
      seg.elemOffset =
          e.pool.allocate(static_cast<std::size_t>(bounds.count()));
      e.segs.push_back(std::move(seg));
    }
  }
}

const SymbolDecl& ProcTable::decl(int sym) const {
  XDP_CHECK(sym >= 0 && sym < numSymbols(), "bad symbol index");
  return decls_[static_cast<std::size_t>(sym)];
}

const ProcTable::Entry& ProcTable::entry(int sym) const {
  XDP_CHECK(sym >= 0 && sym < numSymbols(), "bad symbol index");
  return entries_[static_cast<std::size_t>(sym)];
}

ProcTable::Entry& ProcTable::entry(int sym) {
  XDP_CHECK(sym >= 0 && sym < numSymbols(), "bad symbol index");
  return entries_[static_cast<std::size_t>(sym)];
}

bool ProcTable::pendingOverlapsLocked(const Entry& e, const Section& s) {
  for (const Section& p : e.pendingRecvs) {
    if (p.rank() != s.rank()) continue;
    if (!Section::intersect(p, s).empty()) return true;
  }
  return false;
}

int ProcTable::stateOfLocked(int sym, const Section& s,
                             double* arrival) const {
  // The paper's iown() algorithm: intersect the query with every segment;
  // since segments are disjoint, coverage holds iff the intersection
  // cardinalities sum to the query cardinality. Accessibility is then a
  // per-section property: no uncompleted receive may overlap the query.
  const Entry& e = entry(sym);
  Index covered = 0;
  double maxArrival = 0.0;
  for (const SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) continue;
    covered += i.count();
    maxArrival = std::max(maxArrival, seg.arrival);
  }
  if (covered != s.count()) return -1;
  if (arrival != nullptr) *arrival = maxArrival;
  return pendingOverlapsLocked(e, s) ? 0 : 1;
}

bool ProcTable::iown(int sym, const Section& s) const {
  std::lock_guard lk(mu_);
  return stateOfLocked(sym, s, nullptr) >= 0;
}

bool ProcTable::accessible(int sym, const Section& s) const {
  std::lock_guard lk(mu_);
  return stateOfLocked(sym, s, nullptr) == 1;
}

bool ProcTable::await(int sym, const Section& s, double* arrival) {
  std::unique_lock lk(mu_);
  while (true) {
    if (aborted_) throwAbortLocked("blocked in await");
    int st = stateOfLocked(sym, s, arrival);
    if (st < 0) return false;   // unowned: await returns false (Fig. 1)
    if (st == 1) return true;   // accessible
    // Transitional: park. Publish what we wait on so the watchdog can tell
    // a genuinely blocked processor from a running one.
    wait_.parked = true;
    wait_.sym = sym;
    wait_.section = s;
    waitEpoch_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lk);
    wait_.parked = false;
    waitEpoch_.fetch_add(1, std::memory_order_relaxed);
  }
}

ProcTable::WaitState ProcTable::waitState() const {
  std::lock_guard lk(mu_);
  WaitState w;
  w.epoch = waitEpoch_.load(std::memory_order_relaxed);
  if (!wait_.parked) return w;
  // Re-derive blockedness from the actual table state: if the awaited
  // section has become accessible (or unowned), the thread has a wake-up
  // pending and is not stuck, however long the OS takes to schedule it.
  if (stateOfLocked(wait_.sym, wait_.section, nullptr) != 0) return w;
  w.blocked = true;
  w.sym = wait_.sym;
  w.section = wait_.section;
  return w;
}

void ProcTable::abortWaits(std::string summary,
                           std::shared_ptr<const std::string> report) {
  std::lock_guard lk(mu_);
  aborted_ = true;
  abortSummary_ = std::move(summary);
  abortReport_ = std::move(report);
  cv_.notify_all();
}

void ProcTable::throwAbortLocked(const char* where) const {
  throw DeadlockError(
      abortSummary_ + " [p" + std::to_string(pid_) + " " + where + "]",
      abortReport_ ? *abortReport_ : std::string());
}

Index ProcTable::mylb(int sym, const Section& s, int d) const {
  std::lock_guard lk(mu_);
  const Entry& e = entry(sym);
  Index best = kMaxInt;
  for (const SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) continue;
    best = std::min(best, i.dim(d).lb());
  }
  return best;
}

Index ProcTable::myub(int sym, const Section& s, int d) const {
  std::lock_guard lk(mu_);
  const Entry& e = entry(sym);
  Index best = kMinInt;
  for (const SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) continue;
    best = std::max(best, i.dim(d).ub());
  }
  return best;
}

void ProcTable::readElemsLocked(const Entry& e, int sym, const Section& s,
                                std::byte* out) const {
  const std::size_t sz = e.pool.elemSz;
  if (debugChecks_ && pendingOverlapsLocked(e, s)) {
    std::ostringstream os;
    os << "read of transitional section " << s.str() << " of symbol '"
       << decl(sym).name << "' on p" << pid_
       << " (an initiated receive has not completed)";
    XDP_USAGE_FAIL(os.str());
  }
  Index covered = 0;
  for (const SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) continue;
    covered += i.count();
    const std::byte* base = e.pool.bytes.data() + seg.elemOffset * sz;
    i.forEach([&](const Point& p) {
      std::memcpy(out + static_cast<std::size_t>(s.fortranPos(p)) * sz,
                  base + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz,
                  sz);
    });
  }
  if (debugChecks_ && covered != s.count()) {
    std::ostringstream os;
    os << "read of unowned elements: " << s.str() << " of '"
       << decl(sym).name << "' on p" << pid_;
    XDP_USAGE_FAIL(os.str());
  }
}

void ProcTable::readElems(int sym, const Section& s, std::byte* out) const {
  std::lock_guard lk(mu_);
  readElemsLocked(entry(sym), sym, s, out);
}

void ProcTable::writeElems(int sym, const Section& s, const std::byte* in) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  const std::size_t sz = e.pool.elemSz;
  if (debugChecks_ && pendingOverlapsLocked(e, s)) {
    std::ostringstream os;
    os << "write to transitional section " << s.str() << " of '"
       << decl(sym).name << "' on p" << pid_;
    XDP_USAGE_FAIL(os.str());
  }
  Index covered = 0;
  for (SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) continue;
    covered += i.count();
    std::byte* base = e.pool.bytes.data() + seg.elemOffset * sz;
    i.forEach([&](const Point& p) {
      std::memcpy(base + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz,
                  in + static_cast<std::size_t>(s.fortranPos(p)) * sz, sz);
    });
  }
  if (debugChecks_ && covered != s.count()) {
    std::ostringstream os;
    os << "write to unowned elements: " << s.str() << " of '"
       << decl(sym).name << "' on p" << pid_;
    XDP_USAGE_FAIL(os.str());
  }
}

void ProcTable::beginReceive(int sym, const Section& s) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  if (debugChecks_) {
    Index covered = 0;
    for (const SegmentDesc& seg : e.segs)
      covered += Section::intersect(seg.bounds, s).count();
    if (covered != s.count()) {
      std::ostringstream os;
      os << "receive initiated into unowned section " << s.str() << " of '"
         << decl(sym).name << "' on p" << pid_;
      XDP_USAGE_FAIL(os.str());
    }
  }
  e.pendingRecvs.push_back(s);
}

void ProcTable::completeReceive(int sym, const Section& s,
                                const std::byte* payload,
                                double arrivalTime) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  const std::size_t sz = e.pool.elemSz;
  for (SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) continue;
    if (payload != nullptr) {
      std::byte* base = e.pool.bytes.data() + seg.elemOffset * sz;
      i.forEach([&](const Point& p) {
        std::memcpy(
            base + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz,
            payload + static_cast<std::size_t>(s.fortranPos(p)) * sz, sz);
      });
    }
    seg.arrival = std::max(seg.arrival, arrivalTime);
  }
  // Retire exactly one outstanding receive for this section (several may
  // legally target the same name, per paper section 2.7).
  for (auto it = e.pendingRecvs.begin(); it != e.pendingRecvs.end(); ++it) {
    if (*it == s) {
      e.pendingRecvs.erase(it);
      break;
    }
  }
  cv_.notify_all();
}

std::vector<std::byte> ProcTable::takeOwnershipOut(int sym, const Section& s,
                                                   bool withValue) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  const std::size_t sz = e.pool.elemSz;

  std::vector<std::byte> payload;
  if (withValue) {
    payload.resize(static_cast<std::size_t>(s.count()) * sz);
    readElemsLocked(e, sym, s, payload.data());
  } else if (debugChecks_) {
    // Validate full ownership even when no value travels.
    if (stateOfLocked(sym, s, nullptr) < 0) {
      std::ostringstream os;
      os << "ownership send of not-fully-owned section " << s.str()
         << " of '" << decl(sym).name << "' on p" << pid_;
      XDP_USAGE_FAIL(os.str());
    }
  }

  // Split/remove segments. New descriptors for remainder pieces get fresh
  // storage; the transferred elements' storage is released — this is the
  // paper's storage-reuse benefit (section 2.6).
  XDP_CHECK(!pendingOverlapsLocked(e, s),
            "ownership transfer of a transitional section (missing await)");
  std::vector<SegmentDesc> kept;
  std::vector<SegmentDesc> added;
  for (SegmentDesc& seg : e.segs) {
    Section i = Section::intersect(seg.bounds, s);
    if (i.empty()) {
      kept.push_back(std::move(seg));
      continue;
    }
    for (const Section& piece : Section::subtract(seg.bounds, s)) {
      SegmentDesc nd;
      nd.status = SegState::Accessible;
      nd.bounds = piece;
      nd.arrival = seg.arrival;
      nd.elemOffset = e.pool.allocate(static_cast<std::size_t>(piece.count()));
      // Copy the surviving values old segment -> new piece.
      const std::byte* src = e.pool.bytes.data() + seg.elemOffset * sz;
      std::byte* dst = e.pool.bytes.data() + nd.elemOffset * sz;
      piece.forEach([&](const Point& p) {
        std::memcpy(
            dst + static_cast<std::size_t>(piece.fortranPos(p)) * sz,
            src + static_cast<std::size_t>(seg.bounds.fortranPos(p)) * sz, sz);
      });
      added.push_back(std::move(nd));
    }
    e.pool.release(seg.elemOffset, static_cast<std::size_t>(seg.count()));
  }
  e.segs = std::move(kept);
  e.segs.insert(e.segs.end(), std::make_move_iterator(added.begin()),
                std::make_move_iterator(added.end()));
  cv_.notify_all();
  return payload;
}

void ProcTable::beginOwnershipReceive(int sym, const Section& s) {
  std::lock_guard lk(mu_);
  Entry& e = entry(sym);
  if (debugChecks_) {
    for (const SegmentDesc& seg : e.segs) {
      if (!Section::intersect(seg.bounds, s).empty()) {
        std::ostringstream os;
        os << "ownership receive of already-owned section " << s.str()
           << " of '" << decl(sym).name << "' on p" << pid_
           << " (overlaps segment " << seg.bounds.str() << ")";
        XDP_USAGE_FAIL(os.str());
      }
    }
  }
  SegmentDesc seg;
  seg.status = SegState::Transitional;
  seg.bounds = s;
  seg.elemOffset = e.pool.allocate(static_cast<std::size_t>(s.count()));
  e.segs.push_back(std::move(seg));
  e.pendingRecvs.push_back(s);
}

std::vector<SegmentDesc> ProcTable::segments(int sym) const {
  std::lock_guard lk(mu_);
  const Entry& e = entry(sym);
  std::vector<SegmentDesc> out = e.segs;
  // Statuses are snapshots: a segment is transitional iff an uncompleted
  // receive overlaps it (Figure 1's per-section state, segment-projected).
  for (SegmentDesc& seg : out)
    seg.status = pendingOverlapsLocked(e, seg.bounds)
                     ? SegState::Transitional
                     : SegState::Accessible;
  return out;
}

StorageStats ProcTable::storageStats(int sym) const {
  std::lock_guard lk(mu_);
  return entry(sym).pool.stats;
}

std::size_t ProcTable::totalOwnedElems() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.pool.stats.currentElems;
  return n;
}

}  // namespace xdp::rt
