#include "xdp/rt/dump.hpp"

#include <iomanip>
#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::rt {

std::string dumpSymbolTable(const ProcTable& table) {
  std::ostringstream os;
  os << "XDP run-time symbol table, processor p" << table.pid() << "\n";
  os << std::left << std::setw(6) << "index" << std::setw(8) << "name"
     << std::setw(6) << "rank" << std::setw(16) << "global" << std::setw(20)
     << "partitioning" << std::setw(12) << "segshape" << std::setw(6)
     << "#segs" << "\n";
  for (int i = 0; i < table.numSymbols(); ++i) {
    const SymbolDecl& d = table.decl(i);
    auto segs = table.segments(i);
    std::ostringstream shape;
    shape << "(";
    for (int dd = 0; dd < d.rank(); ++dd) {
      if (dd) shape << ",";
      Index e = d.segShape.elems[static_cast<unsigned>(dd)];
      if (e == 0)
        shape << "*";
      else
        shape << e;
    }
    shape << ")";
    os << std::left << std::setw(6) << i << std::setw(8) << d.name
       << std::setw(6) << d.rank() << std::setw(16) << d.global.str()
       << std::setw(20) << d.dist.str() << std::setw(12) << shape.str()
       << std::setw(6) << segs.size() << "\n";
    for (std::size_t s = 0; s < segs.size(); ++s) {
      os << "    segdesc[" << s << "] " << std::setw(13)
         << segStateName(segs[s].status) << " bounds " << segs[s].bounds.str()
         << " @elem " << segs[s].elemOffset << "\n";
    }
  }
  return os.str();
}

std::string dumpOwnerGrid(const SymbolDecl& decl) {
  XDP_CHECK(decl.rank() == 2, "owner grid rendering needs a rank-2 array");
  std::ostringstream os;
  os << decl.name << decl.global.str() << " distributed " << decl.dist.str()
     << " — owner of each element:\n";
  const auto& rows = decl.global.dim(0);
  const auto& cols = decl.global.dim(1);
  for (Index i = rows.lb(); i <= rows.ub(); ++i) {
    os << "  ";
    for (Index j = cols.lb(); j <= cols.ub(); ++j) {
      os << "P" << decl.dist.ownerOf(Point{i, j}) << " ";
    }
    os << "\n";
  }
  return os.str();
}

std::string dumpSegmentGrid(const SymbolDecl& decl, int pid) {
  XDP_CHECK(decl.rank() == 2, "segment grid rendering needs a rank-2 array");
  auto segs = dist::segmentsOf(decl.dist, pid, decl.segShape);
  std::ostringstream os;
  os << decl.name << decl.global.str() << " " << decl.dist.str()
     << ", processor P" << pid << " local segmentation (" << segs.size()
     << " segments):\n";
  const auto& rows = decl.global.dim(0);
  const auto& cols = decl.global.dim(1);
  for (Index i = rows.lb(); i <= rows.ub(); ++i) {
    os << "  ";
    for (Index j = cols.lb(); j <= cols.ub(); ++j) {
      char c = '.';
      for (std::size_t s = 0; s < segs.size(); ++s) {
        if (segs[s].contains(Point{i, j})) {
          c = static_cast<char>('a' + static_cast<int>(s % 26));
          break;
        }
      }
      os << c << ' ';
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace xdp::rt
