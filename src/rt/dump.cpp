#include "xdp/rt/dump.hpp"

#include <iomanip>
#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::rt {

std::string dumpSymbolTable(const ProcTable& table) {
  std::ostringstream os;
  os << "XDP run-time symbol table, processor p" << table.pid() << "\n";
  os << std::left << std::setw(6) << "index" << std::setw(8) << "name"
     << std::setw(6) << "rank" << std::setw(16) << "global" << std::setw(20)
     << "partitioning" << std::setw(12) << "segshape" << std::setw(6)
     << "#segs" << "\n";
  for (int i = 0; i < table.numSymbols(); ++i) {
    const SymbolDecl& d = table.decl(i);
    auto segs = table.segments(i);
    std::ostringstream shape;
    shape << "(";
    for (int dd = 0; dd < d.rank(); ++dd) {
      if (dd) shape << ",";
      Index e = d.segShape.elems[static_cast<unsigned>(dd)];
      if (e == 0)
        shape << "*";
      else
        shape << e;
    }
    shape << ")";
    os << std::left << std::setw(6) << i << std::setw(8) << d.name
       << std::setw(6) << d.rank() << std::setw(16) << d.global.str()
       << std::setw(20) << d.dist.str() << std::setw(12) << shape.str()
       << std::setw(6) << segs.size() << "\n";
    for (std::size_t s = 0; s < segs.size(); ++s) {
      os << "    segdesc[" << s << "] " << std::setw(13)
         << segStateName(segs[s].status) << " bounds " << segs[s].bounds.str()
         << " @elem " << segs[s].elemOffset << "\n";
    }
  }
  return os.str();
}

std::string dumpOwnerGrid(const SymbolDecl& decl) {
  XDP_CHECK(decl.rank() == 2, "owner grid rendering needs a rank-2 array");
  std::ostringstream os;
  os << decl.name << decl.global.str() << " distributed " << decl.dist.str()
     << " — owner of each element:\n";
  const auto& rows = decl.global.dim(0);
  const auto& cols = decl.global.dim(1);
  for (Index i = rows.lb(); i <= rows.ub(); ++i) {
    os << "  ";
    for (Index j = cols.lb(); j <= cols.ub(); ++j) {
      os << "P" << decl.dist.ownerOf(Point{i, j}) << " ";
    }
    os << "\n";
  }
  return os.str();
}

namespace {

void printName(std::ostream& os, const net::Name& n,
               const std::vector<std::string>& symbolNames) {
  os << "sym#" << n.symbol;
  if (n.symbol >= 0 && static_cast<std::size_t>(n.symbol) < symbolNames.size())
    os << " '" << symbolNames[static_cast<std::size_t>(n.symbol)] << "'";
  os << " " << n.section.str();
  for (const auto& s : n.rest) os << "+" << s.str();
}

}  // namespace

std::string dumpDeadlock(const DeadlockDiagnostics& d) {
  std::ostringstream os;
  int blocked = 0, atBarrier = 0, finished = 0;
  for (const auto& p : d.procs) {
    switch (p.status) {
      case DeadlockDiagnostics::ProcStatus::Finished: ++finished; break;
      case DeadlockDiagnostics::ProcStatus::BlockedAwait: ++blocked; break;
      case DeadlockDiagnostics::ProcStatus::AtBarrier: ++atBarrier; break;
    }
  }
  os << "=== XDP deadlock report ===\n";
  os << "processors: " << d.procs.size() << " total, " << blocked
     << " blocked in await, " << atBarrier << " at an incomplete barrier, "
     << finished << " finished\n";
  for (const auto& p : d.procs) {
    os << "  p" << p.pid << ": ";
    switch (p.status) {
      case DeadlockDiagnostics::ProcStatus::Finished:
        os << "finished";
        break;
      case DeadlockDiagnostics::ProcStatus::BlockedAwait:
        os << "blocked await sym#" << p.sym;
        if (!p.symName.empty()) os << " '" << p.symName << "'";
        os << " section=" << p.section;
        break;
      case DeadlockDiagnostics::ProcStatus::AtBarrier:
        os << "waiting at barrier (" << d.fabric.barrierWaiters << " of "
           << d.procs.size() << " arrived)";
        break;
    }
    os << "\n";
  }
  os << "pending receives (" << d.fabric.pendingReceives.size() << "):\n";
  for (const auto& r : d.fabric.pendingReceives) {
    os << "  p" << r.pid << " <- ";
    printName(os, r.name, d.symbolNames);
    os << " kind=" << net::transferKindName(r.kind) << "\n";
  }
  os << "undelivered messages (" << d.fabric.undelivered.size() << "):\n";
  for (const auto& m : d.fabric.undelivered) {
    os << "  p" << m.src << " -> ";
    if (m.dst < 0)
      os << "matcher";
    else
      os << "p" << m.dst;
    os << " ";
    printName(os, m.name, d.symbolNames);
    os << " kind=" << net::transferKindName(m.kind) << " bytes=" << m.bytes
       << "\n";
  }
  if (d.fabric.heldFaults != 0)
    os << "fault-injector holdbacks: " << d.fabric.heldFaults << "\n";
  if (!d.symbolTables.empty()) {
    os << "--- symbol tables of blocked processors ---\n";
    for (const auto& t : d.symbolTables) os << t;
  }
  return os.str();
}

std::string dumpSegmentGrid(const SymbolDecl& decl, int pid) {
  XDP_CHECK(decl.rank() == 2, "segment grid rendering needs a rank-2 array");
  auto segs = dist::segmentsOf(decl.dist, pid, decl.segShape);
  std::ostringstream os;
  os << decl.name << decl.global.str() << " " << decl.dist.str()
     << ", processor P" << pid << " local segmentation (" << segs.size()
     << " segments):\n";
  const auto& rows = decl.global.dim(0);
  const auto& cols = decl.global.dim(1);
  for (Index i = rows.lb(); i <= rows.ub(); ++i) {
    os << "  ";
    for (Index j = cols.lb(); j <= cols.ub(); ++j) {
      char c = '.';
      for (std::size_t s = 0; s < segs.size(); ++s) {
        if (segs[s].contains(Point{i, j})) {
          c = static_cast<char>('a' + static_cast<int>(s % 26));
          break;
        }
      }
      os << c << ' ';
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace xdp::rt
