// The per-processor run-time XDP symbol table (paper section 3.1).
//
// "Each processor must maintain and update its own local copy of the XDP
// symbol table structure at run-time, unless all uses of the table have
// been optimized away. In contrast to a regular symbol table, the run-time
// XDP symbol table only contains information about exclusive sections."
//
// The table holds, per symbol, a dynamic array of segment descriptors and
// a storage pool. Ownership transfer removes/creates descriptors (the
// paper's "shaded" run-time fields); a section is *unowned* exactly when
// some element of it is covered by no descriptor. Segments are split when
// ownership of a sub-section leaves, so transfers work at any granularity
// the compiler chooses (the language permits single elements; segments are
// the efficiency mechanism).
//
// Ownership fast path (DESIGN.md "Ownership fast path"): the paper's
// iown() sits on the hot path of every owner-computes guard, so the table
// keeps three accelerating structures per symbol:
//   * a sorted dim-0 interval index over the segment descriptors, so
//     coverage queries intersect O(log n + k) candidates instead of every
//     segment;
//   * an *ownership epoch*, bumped under the writer lock by every mutating
//     transition (receive initiation/completion, ownership send/receive),
//     which timestamps any derived result;
//   * a small epoch-validated memo cache, so a repeated iown/accessible/
//     await query on the same section is one atomic epoch compare.
//
// Thread-safety: reads (iown, accessible, the read half of await, mylb,
// myub, readElems, introspection) take a shared lock; mutations take the
// exclusive lock and bump the entry epoch before returning. Cache hits are
// lock-free with respect to mu_ (see stateCached). Fabric completion
// callbacks call back into beginReceive/completeReceive; the lock order is
// always fabric -> table (see Fabric docs).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "xdp/rt/symbol.hpp"
#include "xdp/sections/region_list.hpp"

namespace xdp::rt {

/// Storage accounting, for the paper's "storage it had occupied can be
/// reused for a newly acquired section" claim (section 2.6).
struct StorageStats {
  std::size_t currentElems = 0;
  std::size_t peakElems = 0;
  std::size_t poolElems = 0;  ///< backing pool size (high-water allocation)
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
};

class ProcTable {
 public:
  ProcTable(int pid, const std::vector<SymbolDecl>& decls, bool debugChecks);

  int pid() const { return pid_; }
  const SymbolDecl& decl(int sym) const;
  int numSymbols() const { return static_cast<int>(decls_.size()); }

  // --- intrinsics (paper Figure 1) ------------------------------------
  bool iown(int sym, const Section& s) const;
  bool accessible(int sym, const Section& s) const;
  /// Returns false immediately if `s` is unowned; otherwise blocks until
  /// accessible and returns true. If `arrival` is non-null it receives the
  /// max virtual arrival time over the segments covering `s`.
  bool await(int sym, const Section& s, double* arrival = nullptr);
  Index mylb(int sym, const Section& s, int d) const;
  Index myub(int sym, const Section& s, int d) const;

  /// The maximal owned sub-sections of `s`, as disjoint sections, computed
  /// in one indexed pass (the query API behind interpreter guard
  /// range-splitting). With `excludeTransitional`, sub-sections overlapped
  /// by an uncompleted receive are removed, i.e. the result is the
  /// *accessible* part of `s`.
  sec::RegionList ownedRanges(int sym, const Section& s,
                              bool excludeTransitional = false) const;

  // --- element access --------------------------------------------------
  /// Gather the owned elements of `s` into `out` (count()*elemSize bytes),
  /// in `s`'s Fortran order. Unowned positions are left untouched. In
  /// debug-checks mode, reading an incompletely-owned or non-accessible
  /// section is a usage error.
  void readElems(int sym, const Section& s, std::byte* out) const;
  /// Scatter `in` (Fortran order of `s`) into the owned elements of `s`.
  void writeElems(int sym, const Section& s, const std::byte* in);

  /// Single-element fast path for the interpreters' point accesses: copy
  /// the one element at `p`, resolving the covering segment via a
  /// per-symbol last-segment hint instead of the generic candidate walk
  /// and per-point intersection. Returns false — touching nothing — when
  /// the element is not plainly accessible (uncovered, or any receive
  /// outstanding on the symbol); callers then fall back to
  /// readElems/writeElems, which implement the exact unowned and
  /// transitional semantics and diagnostics.
  bool tryReadElemAt(int sym, const Point& p, std::byte* out) const;
  bool tryWriteElemAt(int sym, const Point& p, const std::byte* in);

  /// Exclusive element lease for compiled pure loops. The bytecode
  /// backend proves at compile time that a loop body performs only
  /// register arithmetic and point element accesses — no communication,
  /// no cold callbacks, nothing blocking — takes the table lock once for
  /// the whole loop, and touches elements directly. (The tree walker
  /// cannot: it discovers statement kinds dynamically.) Holding the
  /// exclusive lock across the loop is deadlock-free because leased code
  /// acquires nothing else: the table is the innermost lock in the
  /// fabric -> table order, so concurrent deliveries into this table
  /// simply wait out the loop (wall-clock only; virtual times are
  /// computed at send). A failed try* means the access needs the generic
  /// path — the caller must DROP the lease first (same mutex).
  class ElemLease {
   public:
    explicit ElemLease(ProcTable& t);
    bool tryRead(int sym, const Point& p, std::byte* out);
    bool tryWrite(int sym, const Point& p, const std::byte* in);

    /// Rank-1 access with the window-hit path inlined at the call site:
    /// a hit is two compares, one multiply-add, and a fixed 8-byte copy
    /// (all XDP element types are 8 bytes wide) — no out-of-line call.
    bool tryRead1(int sym, Index x, std::byte* out) {
      const Window& w = win_[static_cast<std::size_t>(sym)];
      if (w.base != nullptr && w.rank == 1 && x >= w.lb[0] && x <= w.ub[0]) {
        copy8(out, w.base + static_cast<std::size_t>(x - w.lb[0]) * w.sz,
              w.sz);
        return true;
      }
      return readSlow1(sym, x, out);
    }
    bool tryWrite1(int sym, Index x, const std::byte* in) {
      const Window& w = win_[static_cast<std::size_t>(sym)];
      if (w.base != nullptr && w.rank == 1 && x >= w.lb[0] && x <= w.ub[0]) {
        copy8(w.base + static_cast<std::size_t>(x - w.lb[0]) * w.sz, in,
              w.sz);
        return true;
      }
      return writeSlow1(sym, x, in);
    }

   private:
    static void copy8(std::byte* dst, const std::byte* src, std::size_t sz) {
      if (sz == 8)
        std::memcpy(dst, src, 8);  // compiles to one load/store pair
      else
        std::memcpy(dst, src, sz);
    }
    bool readSlow1(int sym, Index x, std::byte* out);
    bool writeSlow1(int sym, Index x, const std::byte* in);
    /// Per-symbol window onto the last-hit contiguous segment: bounds
    /// and Fortran multipliers unpacked into flat arrays so the hot
    /// access is pure local arithmetic (no Section calls, no lookups).
    /// Strided segments are never cached — they resolve per access.
    struct Window {
      std::byte* base = nullptr;  ///< storage for the segment's first elem
      std::size_t sz = 0;
      int rank = 0;
      std::array<Index, sec::kMaxRank> lb{}, ub{}, mult{};
    };
    std::byte* resolve(int sym, const Point& p, Window& w);

    ProcTable* t_;
    std::unique_lock<std::shared_mutex> lk_;
    std::vector<Window> win_;  ///< by symbol
  };

  // --- transfer-engine hooks (used by Proc, not by node programs) ------
  /// Receive initiation: put every segment intersecting `s` in state
  /// transitional (paper section 2.7). `s` must be owned.
  void beginReceive(int sym, const Section& s);
  /// Receive completion: optionally scatter `payload` (Fortran order of
  /// `s`), restore segments to accessible, record `arrivalTime`, wake
  /// awaiters.
  void completeReceive(int sym, const Section& s, const std::byte* payload,
                       double arrivalTime);
  /// Ownership-send bookkeeping: remove `s` from the owned set, splitting
  /// boundary segments; returns the serialized values of `s` when
  /// `withValue` (empty vector otherwise). Caller must have awaited
  /// accessibility of `s` first.
  std::vector<std::byte> takeOwnershipOut(int sym, const Section& s,
                                          bool withValue);
  /// Ownership-receive initiation: `s` must be entirely unowned; creates a
  /// transitional segment (zero-initialized storage) covering `s`.
  void beginOwnershipReceive(int sym, const Section& s);

  // --- introspection ----------------------------------------------------
  std::vector<SegmentDesc> segments(int sym) const;
  StorageStats storageStats(int sym) const;
  /// Sum of currently owned elements over all symbols (storage footprint).
  std::size_t totalOwnedElems() const;

  /// Bytes currently resident (owned elements x element size, summed over
  /// all symbols) — the figure per-session memory quotas are enforced
  /// against (see xdp::serve::Quotas::maxResidentBytes).
  std::size_t residentBytes() const;

  /// Memo-cache effectiveness over this table's lifetime (all symbols).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  CacheStats cacheStats() const;

  // --- hang diagnostics (used by the runtime watchdog) ------------------
  /// What this processor's thread is blocked on, if anything. `blocked` is
  /// true only when the thread is parked in await() AND the awaited
  /// section is still transitional *right now* (re-checked under the
  /// table lock), so a woken-but-not-yet-scheduled thread never reads as
  /// blocked. `epoch` increments on every park/unpark; two observations
  /// with equal epochs and blocked=true mean the thread never moved.
  struct WaitState {
    bool blocked = false;
    int sym = -1;
    Section section;
    std::uint64_t epoch = 0;
  };
  WaitState waitState() const;

  /// Fail the current await (and every later one on this table) with a
  /// DeadlockError carrying `summary` and `report`. Called by the
  /// watchdog once a deadlock is certain; sticky for this table's life.
  void abortWaits(std::string summary,
                  std::shared_ptr<const std::string> report);

  // --- checkpoint image (DESIGN.md §11) ---------------------------------
  /// Serialize this table's run-time contents: per symbol, the segment
  /// descriptors (bounds, arrival, element payload) and the outstanding
  /// receive sections, plus the ownership epoch. Shared lock; callers
  /// export only at a capture point.
  std::vector<std::byte> exportImage() const;
  /// Inverse of exportImage: rebuild every entry from the image under the
  /// exclusive lock. Storage is reallocated, indexes rebuilt, memo caches
  /// invalidated, epochs advanced past every value ever handed out (so no
  /// stale epoch-validated cache entry can survive the rollback), and
  /// waiters woken. Throws CkptError on a malformed image.
  void restoreImage(const std::vector<std::byte>& image);

  /// Install a hook polled by blocked awaits on every wake-up, before the
  /// state re-check. The runtime points it at the checkpoint controller so
  /// a rollback/preempt signal can unwind a blocked processor (the hook
  /// throws; the continuation image for this position was published
  /// before the blocking statement). Set while no node threads run.
  void setWaitInterrupt(std::function<void()> fn);
  /// Wake every blocked await so it re-polls the interrupt hook.
  void notifyWaiters();

  /// Install the deferred-delivery (ring transport) hook pair: `poll`
  /// reaps this processor's fabric inbox (returning how many messages it
  /// delivered), `backlog` reports whether anything is still queued.
  /// Blocked awaits poll before parking — with the table lock dropped,
  /// since fabric delivery re-enters this table through completion
  /// callbacks — and re-poll instead of sleeping whenever the backlog is
  /// nonzero, which together with the fabric's delivery-wake notify makes
  /// parking lost-wakeup-free. Set while no node threads run.
  void setFabricPoll(std::function<std::size_t()> poll,
                     std::function<bool()> backlog);

 private:
  struct Pool {
    std::vector<std::byte> bytes;
    std::vector<std::pair<std::size_t, std::size_t>> freeList;  // offset,elems
    std::size_t elemSz = 1;
    StorageStats stats;

    std::size_t allocate(std::size_t elems);
    void release(std::size_t offset, std::size_t elems);
  };
  /// One memo slot: the state (and optionally arrival fold) of a query
  /// section, valid while the entry epoch still equals `epoch`.
  struct CacheSlot {
    Section key;
    std::uint64_t epoch = 0;
    double arrival = 0.0;
    std::int8_t state = 0;        // -1 unowned / 0 transitional / 1 accessible
    bool valid = false;
    bool hasArrival = false;      // arrival fold was computed for this fill
  };
  struct Entry {
    std::vector<SegmentDesc> segs;
    /// Outstanding (initiated, uncompleted) receive sections. A section of
    /// the symbol is transitional iff it intersects one of these — exact
    /// per-section state, so disjoint concurrent receives do not shadow
    /// each other the way coarse per-segment flags would.
    std::vector<Section> pendingRecvs;
    Pool pool;

    // --- ownership fast path ------------------------------------------
    /// Seg indices sorted by dim-0 lower bound, plus the running max of
    /// dim-0 upper bound over that order: candidates overlapping a query
    /// [qlb,qub] are a binary search plus a bounded backward walk.
    std::vector<int> order;
    std::vector<Index> prefixMaxUb;
    /// Bumped (under the exclusive lock) by every mutation that can change
    /// the answer of a state query: segs or pendingRecvs edits, arrival
    /// updates. Readable lock-free.
    std::atomic<std::uint64_t> epoch{0};
    /// Leaf lock guarding the memo slots; never held together with mu_
    /// acquisition (taken while holding mu_ on fills, alone on hits).
    mutable std::mutex cacheMu;
    mutable std::array<CacheSlot, 4> cache;
    mutable int cacheHand = 0;
    /// Hint for the single-element fast path: index of the segment that
    /// served the last point access. Pure accelerator — always
    /// re-validated against the live descriptor before use. Atomic so
    /// concurrent shared-lock holders may refresh it racelessly.
    mutable std::atomic<int> segHint{-1};
  };

  const Entry& entry(int sym) const;
  Entry& entry(int sym);

  /// Coverage of `s` by this table's segments: -1 if some element unowned,
  /// 0 if owned but an uncompleted receive overlaps `s` (transitional),
  /// 1 if accessible. Folds the max arrival only when `arrival` is
  /// non-null. Caller holds mu_ (shared suffices).
  int stateOfLocked(int sym, const Section& s, double* arrival) const;

  /// Cached state query: memo hit (lock-free w.r.t. mu_) or shared-locked
  /// compute + fill. Returns the state; fills `*arrival` when non-null.
  int stateCached(int sym, const Section& s, double* arrival) const;

  /// Visit the segments that can intersect `s`, via the dim-0 index when
  /// profitable. Caller holds mu_.
  template <typename Fn>
  void forEachCandidateLocked(const Entry& e, const Section& s,
                              Fn&& fn) const;

  /// Recompute `order`/`prefixMaxUb` after a segs mutation. Caller holds
  /// mu_ exclusively.
  static void rebuildIndexLocked(Entry& e);

  /// True iff an outstanding receive overlaps `s`. Caller holds mu_.
  static bool pendingOverlapsLocked(const Entry& e, const Section& s);

  bool cacheLookup(const Entry& e, const Section& s, bool wantArrival,
                   int* state, double* arrival) const;
  void cacheStore(const Entry& e, const Section& s, std::uint64_t epoch,
                  int state, bool hasArrival, double arrival) const;

  void readElemsLocked(const Entry& e, int sym, const Section& s,
                       std::byte* out) const;

  /// Index of the segment containing `p`, hint-first; -1 if uncovered.
  /// Caller holds mu_ (shared suffices).
  int segmentAtLocked(const Entry& e, const Point& p) const;

  const int pid_;
  const bool debugChecks_;
  std::vector<SymbolDecl> decls_;

  [[noreturn]] void throwAbortLocked(const char* where) const;

  mutable std::shared_mutex mu_;
  std::condition_variable_any cv_;
  /// Deque: entries hold atomics/mutexes (immovable) and references must
  /// stay stable for the lock-free cache-hit path.
  std::deque<Entry> entries_;

  mutable std::atomic<std::uint64_t> cacheHits_{0};
  mutable std::atomic<std::uint64_t> cacheMisses_{0};

  // Watchdog state (wait_ guarded by mu_; epoch also readable lock-free).
  struct CurrentWait {
    bool parked = false;
    int sym = -1;
    Section section;
  };
  CurrentWait wait_;
  std::atomic<std::uint64_t> waitEpoch_{0};
  std::atomic<bool> aborted_{false};
  std::string abortSummary_;
  std::shared_ptr<const std::string> abortReport_;
  std::function<void()> waitInterrupt_;  ///< polled in await's wait loop
  std::function<std::size_t()> fabricPoll_;  ///< drain my fabric inbox
  std::function<bool()> fabricBacklog_;      ///< anything still queued?
};

}  // namespace xdp::rt
