// Element types and section states of the XDP runtime.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace xdp::rt {

/// Element types storable in exclusive sections. The runtime stores raw
/// bytes tagged with one of these; typed access is checked at the API edge.
enum class ElemType : std::uint8_t { F64, I64, C128 };

constexpr std::size_t elemSize(ElemType t) {
  switch (t) {
    case ElemType::F64:
      return sizeof(double);
    case ElemType::I64:
      return sizeof(std::int64_t);
    case ElemType::C128:
      return sizeof(std::complex<double>);
  }
  return 0;
}

const char* elemTypeName(ElemType t);

template <typename T>
constexpr ElemType elemTypeOf();
template <>
constexpr ElemType elemTypeOf<double>() {
  return ElemType::F64;
}
template <>
constexpr ElemType elemTypeOf<std::int64_t>() {
  return ElemType::I64;
}
template <>
constexpr ElemType elemTypeOf<std::complex<double>>() {
  return ElemType::C128;
}

/// States of a section with respect to a processor (paper Figure 1).
/// A *segment* is always in exactly one of these; a *section*'s state is
/// derived from the segments covering it.
enum class SegState : std::uint8_t { Unowned, Transitional, Accessible };

const char* segStateName(SegState s);

/// mylb/myub sentinel values (paper: "MAXINT, the largest representable
/// integer, is returned").
inline constexpr std::int64_t kMaxInt = INT64_MAX;
inline constexpr std::int64_t kMinInt = INT64_MIN;

}  // namespace xdp::rt
