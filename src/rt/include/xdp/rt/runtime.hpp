// The XDP runtime: compile-time symbol declarations + the simulated
// machine + per-processor run-time tables, tied together by an SPMD
// launcher.
//
// Typical use:
//
//   xdp::rt::Runtime rt(4);                       // 4 processors
//   int A = rt.declareArray<double>("A", global, distBlock, segShape);
//   rt.run([&](xdp::rt::Proc& p) {                // the node program
//     if (p.iown(A, sec)) { ... }
//   });
//
// Each run() materializes fresh per-processor symbol tables from the
// declarations (initial ownership = the declared distribution, all
// segments accessible, zero-initialized), runs the node program on every
// processor, and joins. Fabric statistics and virtual clocks persist
// across runs so callers control when to reset them.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "xdp/net/fabric.hpp"
#include "xdp/rt/proc_table.hpp"

namespace xdp::rt {

struct RuntimeOptions {
  /// Validate the XDP usage rules at run time (reads of transitional
  /// sections, mismatched transfers, double ownership). The paper's
  /// position is that the *compiler* guarantees these; debug mode is the
  /// belt-and-braces configuration used by our tests.
  bool debugChecks = false;
  net::CostModel costModel{};
  /// Hang watchdog window in wall-clock milliseconds. Within this window a
  /// run in which every processor is blocked (await / blocked owner-send /
  /// barrier) with no deliverable message is aborted: blocked waits fail
  /// with a DeadlockError carrying a full diagnostic dump instead of the
  /// process hanging forever. 0 disables the watchdog (set it — or
  /// XDP_WATCHDOG_MS=0 — for debugger runs, where a paused process looks
  /// quiescent only because nothing is scheduled); -1 (default) reads the
  /// XDP_WATCHDOG_MS environment variable, falling back to 10000.
  /// Detection is based on quiescence (every processor provably parked),
  /// not elapsed time, so sanitizer slowdown cannot cause false
  /// positives; under heavy slowdown raise the window only to reduce
  /// polling overhead.
  int watchdogMs = -1;
  /// Watchdog poll period in milliseconds. -1 (default) reads
  /// XDP_WATCHDOG_POLL_MS, falling back to watchdogMs/8 clamped to
  /// [1, 200] — raise it when polling itself is too intrusive (e.g.
  /// hundreds of concurrent session runtimes under TSan).
  int watchdogPollMs = -1;
  /// Fault plan to install on the fabric at construction (fault injection
  /// can also be enabled for unmodified drivers via net::FaultScope).
  std::optional<net::FaultPlan> faultPlan;
};

/// The effective watchdog window: `configured` if >= 0, else
/// XDP_WATCHDOG_MS from the environment, else 10000 ms.
int resolveWatchdogMs(int configured);

/// The effective watchdog poll period: `configured` if > 0, else
/// XDP_WATCHDOG_POLL_MS from the environment, else watchdogMs/8 clamped
/// to [1, 200] ms.
int resolveWatchdogPollMs(int configured, int watchdogMs);

class Proc;

class Runtime {
 public:
  explicit Runtime(int nprocs, RuntimeOptions opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int nprocs() const { return nprocs_; }
  net::Fabric& fabric() { return fabric_; }
  const RuntimeOptions& options() const { return opts_; }

  /// Programmatic watchdog knob: override the construction-time window
  /// for subsequent run() calls (same semantics as
  /// RuntimeOptions::watchdogMs; 0 disables, -1 re-reads the
  /// environment). Call between runs, not during one.
  void setWatchdogMs(int ms) { watchdogMsOverride_ = ms; }
  int effectiveWatchdogMs() const;

  /// Declare an exclusively-owned distributed array. Must be called before
  /// run(). Returns the symtab index.
  int declareArray(std::string name, ElemType type, Section global,
                   Distribution dist, SegmentShape segShape = {});

  template <typename T>
  int declareArray(std::string name, Section global, Distribution dist,
                   SegmentShape segShape = {}) {
    return declareArray(std::move(name), elemTypeOf<T>(), std::move(global),
                        std::move(dist), segShape);
  }

  const std::vector<SymbolDecl>& decls() const { return decls_; }

  /// Run the node program on every simulated processor; joins before
  /// returning. Node failures are rethrown (aggregated across nodes, see
  /// net::runSpmd); a diagnosed hang surfaces as a DeadlockError. Match
  /// state is cleared at region entry, and under debugChecks the region
  /// must end with no undelivered message and no unmatched receive
  /// (waived when a lossy fault plan is installed).
  void run(const std::function<void(Proc&)>& node);

  /// The per-processor table of the most recent/current run (valid during
  /// run() and, for inspection, after it returns).
  ProcTable& table(int pid);

 private:
  const int nprocs_;
  const RuntimeOptions opts_;
  std::optional<int> watchdogMsOverride_;
  net::Fabric fabric_;
  std::vector<SymbolDecl> decls_;
  std::vector<std::unique_ptr<ProcTable>> tables_;
};

}  // namespace xdp::rt
