// The XDP runtime: compile-time symbol declarations + the simulated
// machine + per-processor run-time tables, tied together by an SPMD
// launcher.
//
// Typical use:
//
//   xdp::rt::Runtime rt(4);                       // 4 processors
//   int A = rt.declareArray<double>("A", global, distBlock, segShape);
//   rt.run([&](xdp::rt::Proc& p) {                // the node program
//     if (p.iown(A, sec)) { ... }
//   });
//
// Each run() materializes fresh per-processor symbol tables from the
// declarations (initial ownership = the declared distribution, all
// segments accessible, zero-initialized), runs the node program on every
// processor, and joins. Fabric statistics and virtual clocks persist
// across runs so callers control when to reset them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "xdp/ckpt/controller.hpp"
#include "xdp/ckpt/io.hpp"
#include "xdp/net/fabric.hpp"
#include "xdp/rt/proc_table.hpp"

namespace xdp::rt {

struct RuntimeOptions {
  /// Validate the XDP usage rules at run time (reads of transitional
  /// sections, mismatched transfers, double ownership). The paper's
  /// position is that the *compiler* guarantees these; debug mode is the
  /// belt-and-braces configuration used by our tests.
  bool debugChecks = false;
  net::CostModel costModel{};
  /// Hang watchdog window in wall-clock milliseconds. Within this window a
  /// run in which every processor is blocked (await / blocked owner-send /
  /// barrier) with no deliverable message is aborted: blocked waits fail
  /// with a DeadlockError carrying a full diagnostic dump instead of the
  /// process hanging forever. 0 disables the watchdog (set it — or
  /// XDP_WATCHDOG_MS=0 — for debugger runs, where a paused process looks
  /// quiescent only because nothing is scheduled); -1 (default) reads the
  /// XDP_WATCHDOG_MS environment variable, falling back to 10000.
  /// Detection is based on quiescence (every processor provably parked),
  /// not elapsed time, so sanitizer slowdown cannot cause false
  /// positives; under heavy slowdown raise the window only to reduce
  /// polling overhead.
  int watchdogMs = -1;
  /// Watchdog poll period in milliseconds. -1 (default) reads
  /// XDP_WATCHDOG_POLL_MS, falling back to watchdogMs/8 clamped to
  /// [1, 200] — raise it when polling itself is too intrusive (e.g.
  /// hundreds of concurrent session runtimes under TSan).
  int watchdogPollMs = -1;
  /// Fault plan to install on the fabric at construction (fault injection
  /// can also be enabled for unmodified drivers via net::FaultScope).
  std::optional<net::FaultPlan> faultPlan;
  /// Message transport under the fabric (net::TransportKind::Locked keeps
  /// the original inline-delivery behaviour; Ring enables the lock-free
  /// SPSC fast path with batched completion reaping). The runtime wires
  /// the deferred-delivery plumbing — await polls, delivery wakes,
  /// quiescence drains — whenever the ring backend is selected.
  net::TransportOptions transport{};
};

/// The effective watchdog window: `configured` if >= 0, else
/// XDP_WATCHDOG_MS from the environment, else 10000 ms.
int resolveWatchdogMs(int configured);

/// The effective watchdog poll period: `configured` if > 0, else
/// XDP_WATCHDOG_POLL_MS from the environment, else watchdogMs/8 clamped
/// to [1, 200] ms.
int resolveWatchdogPollMs(int configured, int watchdogMs);

class Proc;

class Runtime {
 public:
  explicit Runtime(int nprocs, RuntimeOptions opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int nprocs() const { return nprocs_; }
  net::Fabric& fabric() { return fabric_; }
  const RuntimeOptions& options() const { return opts_; }

  /// Programmatic watchdog knob: override the construction-time window
  /// for subsequent run() calls (same semantics as
  /// RuntimeOptions::watchdogMs; 0 disables, -1 re-reads the
  /// environment). Call between runs, not during one.
  void setWatchdogMs(int ms) { watchdogMsOverride_ = ms; }
  int effectiveWatchdogMs() const;

  /// Declare an exclusively-owned distributed array. Must be called before
  /// run(). Returns the symtab index.
  int declareArray(std::string name, ElemType type, Section global,
                   Distribution dist, SegmentShape segShape = {});

  template <typename T>
  int declareArray(std::string name, Section global, Distribution dist,
                   SegmentShape segShape = {}) {
    return declareArray(std::move(name), elemTypeOf<T>(), std::move(global),
                        std::move(dist), segShape);
  }

  const std::vector<SymbolDecl>& decls() const { return decls_; }

  /// Run the node program on every simulated processor; joins before
  /// returning. Node failures are rethrown (aggregated across nodes, see
  /// net::runSpmd); a diagnosed hang surfaces as a DeadlockError. Match
  /// state is cleared at region entry, and under debugChecks the region
  /// must end with no undelivered message and no unmatched receive
  /// (waived when a lossy fault plan is installed).
  void run(const std::function<void(Proc&)>& node);

  /// The per-processor table of the most recent/current run (valid during
  /// run() and, for inspection, after it returns).
  ProcTable& table(int pid);

  // --- checkpoint/restore (DESIGN.md §11) ------------------------------
  /// Enable deterministic checkpoint/restore and crash recovery for
  /// subsequent run() calls. Wires the controller, snapshot store, crash
  /// hook, and blocked-wait interrupts. Call before run(), once.
  void enableCheckpointing(const ckpt::CkptOptions& opts);
  bool checkpointingEnabled() const { return ctrl_ != nullptr; }
  /// The capture controller (engines publish continuations through it);
  /// null unless enableCheckpointing was called.
  ckpt::Controller* ckptController() { return ctrl_.get(); }
  /// The snapshot store; null unless checkpointing is enabled.
  ckpt::CheckpointStore* ckptStore() { return store_.get(); }

  /// Identity stamped into every snapshot; restoreFrom() rejects a
  /// snapshot whose hash disagrees (0 = unchecked).
  void setCkptProgram(std::uint8_t backend, std::uint64_t programHash) {
    ckptBackend_ = backend;
    ckptProgramHash_ = programHash;
  }

  /// Build a snapshot of the current machine state (tables + fabric +
  /// continuation slots). Valid between runs or from the capture leader;
  /// requires checkpointing enabled and materialized tables.
  ckpt::Snapshot checkpoint();
  /// Seed the next run() to resume from `snap` instead of starting fresh
  /// (also stores it, so an immediate crash can roll back to it). Throws
  /// CkptError when the snapshot does not fit this runtime.
  void restoreFrom(ckpt::Snapshot snap);

  /// Ask the current run to stop at the next statement boundaries and
  /// return with preempted() == true and a resumable snapshot pending in
  /// takePreemptSnapshot(). Callable from any thread.
  void requestPreempt();
  bool preempted() const { return preempted_; }
  /// The snapshot captured when a preempted run unwound (consume once).
  ckpt::Snapshot takePreemptSnapshot();

  /// Completed crash recoveries across all runs of this runtime.
  std::uint64_t recoveries() const { return recoveries_; }

 private:
  /// One watchdog-supervised SPMD execution over the current tables.
  /// Returns true when every node ran to completion (no failure); recovery
  /// signals are absorbed (read ctrl_->signal() afterwards).
  bool runRound(const std::function<void(Proc&)>& node);
  /// Wire each fresh table's deferred-delivery poll hooks (no-op unless
  /// the ring transport is active). Called after every tables_ rebuild.
  void installTransportHooks();
  std::vector<ckpt::ContImage> applySnapshot(const ckpt::Snapshot& snap);
  ckpt::Snapshot buildSnapshot();
  bool captureAttempt();

  const int nprocs_;
  const RuntimeOptions opts_;
  std::optional<int> watchdogMsOverride_;
  net::Fabric fabric_;
  std::vector<SymbolDecl> decls_;
  std::vector<std::unique_ptr<ProcTable>> tables_;

  std::unique_ptr<ckpt::Controller> ctrl_;
  std::unique_ptr<ckpt::CheckpointStore> store_;
  std::optional<ckpt::Snapshot> pendingRestore_;
  std::optional<ckpt::Snapshot> preemptSnap_;
  bool preempted_ = false;
  std::uint64_t recoveries_ = 0;
  std::uint8_t ckptBackend_ = 0;
  std::uint64_t ckptProgramHash_ = 0;
};

}  // namespace xdp::rt
