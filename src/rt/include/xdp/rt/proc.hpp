// Proc — the per-processor view of the XDP runtime, i.e. the API a
// compiled SPMD node program calls. Every operation of the paper's
// Figure 1 has a direct counterpart here:
//
//   intrinsic / statement      Proc method
//   -------------------------  ---------------------------------------
//   mypid                      mypid()
//   mylb(X,d) / myub(X,d)      mylb(sym,X,d) / myub(sym,X,d)
//   iown(X)                    iown(sym,X)
//   accessible(X)              accessible(sym,X)
//   await(X)                   await(sym,X)
//   E ->                       send(sym,E)
//   E -> S                     send(sym,E,S)
//   E =>                       sendOwnership(sym,E,/*withValue=*/false)
//   E -=>                      sendOwnership(sym,E,/*withValue=*/true)
//   E <- X                     recv(dstSym,E, srcSym,X)
//   U <=                       recvOwnership(sym,U,/*withValue=*/false)
//   U <=-                      recvOwnership(sym,U,/*withValue=*/true)
//
// Sends are non-blocking initiations except the ownership flavours, which
// (per Figure 1) block until the section is accessible. `recv` blocks
// until the destination is accessible, then initiates; completion is
// observed via await()/accessible().
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "xdp/rt/runtime.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {

class Proc {
 public:
  Proc(Runtime& rt, int pid);

  // --- intrinsics -------------------------------------------------------
  int mypid() const { return pid_; }
  int nprocs() const { return rt_.nprocs(); }
  bool iown(int sym, const Section& s) const;
  bool accessible(int sym, const Section& s) const;
  /// Blocks until `s` is accessible (true), or returns false if unowned.
  /// Synchronizes the virtual clock with the awaited data's arrival time.
  bool await(int sym, const Section& s);
  Index mylb(int sym, const Section& s, int d) const;
  Index myub(int sym, const Section& s, int d) const;
  /// The owned (or, with `excludeTransitional`, accessible) sub-sections
  /// of `s`, disjoint, from one indexed table pass. One call answers what
  /// a per-element iown loop over `s` would.
  sec::RegionList ownedRanges(int sym, const Section& s,
                              bool excludeTransitional = false) const;

  // --- transfer statements ----------------------------------------------
  /// "E ->" / "E -> S": initiate a send of the name and value of `e`.
  void send(int sym, const Section& e,
            std::optional<std::vector<int>> dests = std::nullopt);
  /// "E =>" / "E -=>": block until accessible, then send ownership
  /// (and, for withValue, the data) to `dests` or an unspecified processor.
  void sendOwnership(int sym, const Section& e, bool withValue,
                     std::optional<std::vector<int>> dests = std::nullopt);
  /// "E <- X": block until `e` accessible, then initiate a receive of the
  /// message named (srcSym, x) into `e`. Element counts must match.
  void recv(int dstSym, const Section& e, int srcSym, const Section& x);
  /// "U <=" / "U <=-": initiate a receive of ownership (and value) of `u`.
  void recvOwnership(int sym, const Section& u, bool withValue);

  // --- aggregated transfers (paper 3.2's proposed extension) -------------
  // A *set* of sections moves as ONE message: one alpha, one match. The
  // sections are packed in order; the matching receive must name the same
  // set. `sendOwnershipMulti` additionally relinquishes every section
  // (blocking until each is accessible, like "-=>").
  void sendMulti(int sym, const std::vector<Section>& secs,
                 std::optional<std::vector<int>> dests = std::nullopt);
  void recvMulti(int dstSym, const std::vector<Section>& dsts, int srcSym,
                 const std::vector<Section>& names);
  void sendOwnershipMulti(int sym, const std::vector<Section>& secs,
                          bool withValue,
                          std::optional<std::vector<int>> dests = std::nullopt);
  void recvOwnershipMulti(int sym, const std::vector<Section>& secs,
                          bool withValue);

  // --- local data access --------------------------------------------------
  template <typename T>
  std::vector<T> read(int sym, const Section& s) const {
    checkType<T>(sym);
    std::vector<T> out(static_cast<std::size_t>(s.count()));
    table().readElems(sym, s, reinterpret_cast<std::byte*>(out.data()));
    return out;
  }
  template <typename T>
  void write(int sym, const Section& s, std::span<const T> values) {
    checkType<T>(sym);
    XDP_CHECK(static_cast<Index>(values.size()) == s.count(),
              "write: value count != section count");
    table().writeElems(sym, s,
                       reinterpret_cast<const std::byte*>(values.data()));
  }
  template <typename T>
  T get(int sym, const Point& p) const {
    return read<T>(sym, pointSection(p))[0];
  }
  template <typename T>
  void set(int sym, const Point& p, const T& v) {
    write<T>(sym, pointSection(p), std::span<const T>(&v, 1));
  }

  // --- machine ------------------------------------------------------------
  /// Advance this processor's virtual clock by `dt` (modeled local work).
  void compute(double dt);
  void barrier();
  double clock() const;
  ProcTable& table() const;

 private:
  template <typename T>
  void checkType(int sym) const {
    XDP_CHECK(table().decl(sym).type == elemTypeOf<T>(),
              "element type mismatch");
  }
  static Section pointSection(const Point& p);
  net::Name nameOf(int sym, const Section& s) const;

  Runtime& rt_;
  const int pid_;
};

}  // namespace xdp::rt
