// Human-readable renderings of the runtime structures, mirroring the
// paper's figures: dumpSymbolTable produces the Figure-2 table for one
// processor; dumpOwnerGrid / dumpSegmentGrid produce the Figure-3 pictures
// (element-by-element owner map and one processor's local segmentation)
// for rank-2 arrays.
#pragma once

#include <string>

#include "xdp/rt/proc_table.hpp"

namespace xdp::rt {

/// Figure 2: one row per symbol — index, name, rank, global shape,
/// partitioning, segment shape, #segments — plus the run-time segment
/// descriptor array (status + bounds per segment).
std::string dumpSymbolTable(const ProcTable& table);

/// Figure 3 (left): for a rank-2 declaration, a grid of owner pids.
std::string dumpOwnerGrid(const SymbolDecl& decl);

/// Figure 3 (right): the segments of `pid`'s local partition, one letter
/// per segment, '.' for elements owned by other processors.
std::string dumpSegmentGrid(const SymbolDecl& decl, int pid);

}  // namespace xdp::rt
