// Human-readable renderings of the runtime structures, mirroring the
// paper's figures: dumpSymbolTable produces the Figure-2 table for one
// processor; dumpOwnerGrid / dumpSegmentGrid produce the Figure-3 pictures
// (element-by-element owner map and one processor's local segmentation)
// for rank-2 arrays.
#pragma once

#include <string>
#include <vector>

#include "xdp/net/fabric.hpp"
#include "xdp/rt/proc_table.hpp"

namespace xdp::rt {

/// Figure 2: one row per symbol — index, name, rank, global shape,
/// partitioning, segment shape, #segments — plus the run-time segment
/// descriptor array (status + bounds per segment).
std::string dumpSymbolTable(const ProcTable& table);

/// Figure 3 (left): for a rank-2 declaration, a grid of owner pids.
std::string dumpOwnerGrid(const SymbolDecl& decl);

/// Figure 3 (right): the segments of `pid`'s local partition, one letter
/// per segment, '.' for elements owned by other processors.
std::string dumpSegmentGrid(const SymbolDecl& decl, int pid);

/// Everything the watchdog learned when it diagnosed a hang. Gathered by
/// Runtime's monitor thread, rendered by dumpDeadlock, and carried (as the
/// rendered report) inside the DeadlockError that fails the blocked waits.
struct DeadlockDiagnostics {
  enum class ProcStatus { Finished, BlockedAwait, AtBarrier };
  struct ProcState {
    int pid = -1;
    ProcStatus status = ProcStatus::Finished;
    int sym = -1;            ///< awaited symbol (BlockedAwait only)
    std::string symName;     ///< its declared name
    std::string section;     ///< awaited section, rendered
  };
  std::vector<ProcState> procs;
  net::FabricSnapshot fabric;
  std::vector<std::string> symbolNames;   ///< by symtab index
  std::vector<std::string> symbolTables;  ///< dumpSymbolTable of blocked pids
};

/// One-screen, line-oriented deadlock report: blocked processors and what
/// they await, unmatched receive names, undelivered message names, and the
/// owning-section state of every blocked processor's symbol table.
std::string dumpDeadlock(const DeadlockDiagnostics& d);

}  // namespace xdp::rt
