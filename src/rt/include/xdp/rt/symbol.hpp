// Compile-time and run-time symbol table entries (paper Figure 2).
//
// The *compile-time* part — symtab index, symbol name, rank, global shape,
// partitioning, segment shape — is shared by all processors and fixed
// before the SPMD region starts. The *run-time* part (the shaded fields of
// Figure 2: the segment count and the segment descriptor array) is
// per-processor and mutates as receives are initiated/completed and as
// ownership migrates.
#pragma once

#include <cstdint>
#include <string>

#include "xdp/dist/distribution.hpp"
#include "xdp/dist/segmentation.hpp"
#include "xdp/rt/types.hpp"

namespace xdp::rt {

using dist::Distribution;
using dist::SegmentShape;
using sec::Index;
using sec::Point;
using sec::Section;

/// Compile-time symbol table entry.
struct SymbolDecl {
  int index = -1;          ///< symtab index
  std::string name;        ///< symbol name
  ElemType type = ElemType::F64;
  Section global;          ///< global shape (rank derives from it)
  Distribution dist;       ///< partitioning (over the machine's processors)
  SegmentShape segShape;   ///< compiler-chosen segmentation (Fig. 3)

  int rank() const { return global.rank(); }
};

/// Run-time segment descriptor — the paper's `struct SegmentDesc`
/// (section 3.1): status, per-dimension lbound/ubound/stride (our Section
/// holds exactly that), and the pointer to local storage (our offset into
/// the per-symbol pool).
///
/// Transitional state is tracked per outstanding-receive *section* in the
/// table (the paper's states are properties of sections; segments are its
/// efficiency mechanism), so `status` here is a snapshot derived when the
/// descriptor array is read out: Transitional iff some uncompleted receive
/// overlaps the segment.
struct SegmentDesc {
  SegState status = SegState::Unowned;
  Section bounds;               ///< global indices contained in the segment
  std::size_t elemOffset = 0;   ///< first element slot in the local pool
  double arrival = 0.0;         ///< virtual time last receive completed

  Index count() const { return bounds.count(); }
};

}  // namespace xdp::rt
