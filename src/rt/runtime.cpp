#include "xdp/rt/runtime.hpp"

#include "xdp/net/spmd.hpp"
#include "xdp/rt/proc.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {

Runtime::Runtime(int nprocs, RuntimeOptions opts)
    : nprocs_(nprocs), opts_(opts), fabric_(nprocs, opts.costModel) {}

Runtime::~Runtime() = default;

int Runtime::declareArray(std::string name, ElemType type, Section global,
                          Distribution dist, SegmentShape segShape) {
  XDP_CHECK(dist.nprocs() <= nprocs_,
            "distribution uses more processors than the machine has");
  XDP_CHECK(dist.global() == global,
            "distribution global shape must equal the array's global shape");
  SymbolDecl d;
  d.index = static_cast<int>(decls_.size());
  d.name = std::move(name);
  d.type = type;
  d.global = std::move(global);
  d.dist = std::move(dist);
  d.segShape = segShape;
  decls_.push_back(std::move(d));
  return decls_.back().index;
}

void Runtime::run(const std::function<void(Proc&)>& node) {
  // Drop any match state leaked by a previous (buggy) run so stale
  // completion callbacks can never touch the fresh tables.
  fabric_.clearMatchState();
  tables_.clear();
  tables_.resize(static_cast<std::size_t>(nprocs_));
  for (int p = 0; p < nprocs_; ++p)
    tables_[static_cast<std::size_t>(p)] =
        std::make_unique<ProcTable>(p, decls_, opts_.debugChecks);
  net::runSpmd(nprocs_, [&](int pid) {
    Proc proc(*this, pid);
    node(proc);
  });
  if (opts_.debugChecks && fabric_.undeliveredCount() != 0) {
    XDP_USAGE_FAIL("SPMD region ended with undelivered messages: a send had "
                   "no matching receive");
  }
}

ProcTable& Runtime::table(int pid) {
  XDP_CHECK(pid >= 0 && pid < nprocs_, "bad pid");
  XDP_CHECK(tables_.size() == static_cast<std::size_t>(nprocs_),
            "tables not materialized; call run() first");
  return *tables_[static_cast<std::size_t>(pid)];
}

}  // namespace xdp::rt
