#include "xdp/rt/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "xdp/net/spmd.hpp"
#include "xdp/rt/dump.hpp"
#include "xdp/rt/proc.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {

namespace {

/// Parse a non-negative integer environment variable; nullopt when unset
/// or malformed.
std::optional<int> envInt(const char* name) {
  const char* env = std::getenv(name);
  if (!env) return std::nullopt;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end != env && *end == '\0' && v >= 0 && v <= 1000 * 1000 * 1000)
    return static_cast<int>(v);
  return std::nullopt;
}

}  // namespace

int resolveWatchdogMs(int configured) {
  if (configured >= 0) return configured;
  if (auto v = envInt("XDP_WATCHDOG_MS")) return *v;
  return 10000;
}

int resolveWatchdogPollMs(int configured, int watchdogMs) {
  if (configured > 0) return configured;
  if (configured < 0) {
    if (auto v = envInt("XDP_WATCHDOG_POLL_MS"); v.has_value() && *v > 0)
      return *v;
  }
  return std::clamp(watchdogMs / 8, 1, 200);
}

Runtime::Runtime(int nprocs, RuntimeOptions opts)
    : nprocs_(nprocs), opts_(opts), fabric_(nprocs, opts.costModel) {
  if (opts_.faultPlan.has_value()) fabric_.setFaultPlan(*opts_.faultPlan);
}

Runtime::~Runtime() = default;

int Runtime::effectiveWatchdogMs() const {
  return resolveWatchdogMs(watchdogMsOverride_.value_or(opts_.watchdogMs));
}

int Runtime::declareArray(std::string name, ElemType type, Section global,
                          Distribution dist, SegmentShape segShape) {
  XDP_CHECK(dist.nprocs() <= nprocs_,
            "distribution uses more processors than the machine has");
  XDP_CHECK(dist.global() == global,
            "distribution global shape must equal the array's global shape");
  SymbolDecl d;
  d.index = static_cast<int>(decls_.size());
  d.name = std::move(name);
  d.type = type;
  d.global = std::move(global);
  d.dist = std::move(dist);
  d.segShape = segShape;
  decls_.push_back(std::move(d));
  return decls_.back().index;
}

namespace {

/// One watchdog observation of the whole machine. The machine is certainly
/// deadlocked when every processor is accounted for as finished, genuinely
/// blocked in an await (re-verified against table state under its lock),
/// or an entrant of an incomplete barrier — then no thread can ever run
/// again — and two observations a poll apart agree on every epoch (so no
/// thread moved in between and the non-atomic multi-lock snapshot is
/// consistent).
///
/// This stays sound with the sharded fabric: delivery is synchronous on
/// the sending thread (send() returns only after the message completed a
/// receive or was parked), so when every thread is blocked/finished there
/// is no message in flight between endpoint shards that could still wake
/// a blocked await — exactly as with the old fabric-wide lock.
struct QuiescenceSnapshot {
  std::vector<ProcTable::WaitState> waits;  // by pid
  std::vector<char> finished;               // by pid
  int barrierWaiters = 0;
  std::uint64_t barrierEpoch = 0;

  int blockedCount() const {
    int n = 0;
    for (const auto& w : waits) n += w.blocked ? 1 : 0;
    return n;
  }
  int finishedCount() const {
    int n = 0;
    for (char f : finished) n += f ? 1 : 0;
    return n;
  }
  bool quiescent(int nprocs) const {
    const int blocked = blockedCount() + barrierWaiters;
    return blocked > 0 && blocked + finishedCount() == nprocs;
  }
  static bool stable(const QuiescenceSnapshot& a, const QuiescenceSnapshot& b) {
    if (a.barrierWaiters != b.barrierWaiters ||
        a.barrierEpoch != b.barrierEpoch)
      return false;
    for (std::size_t i = 0; i < a.waits.size(); ++i) {
      if (a.waits[i].blocked != b.waits[i].blocked ||
          a.waits[i].epoch != b.waits[i].epoch ||
          a.finished[i] != b.finished[i])
        return false;
    }
    return true;
  }
};

}  // namespace

void Runtime::run(const std::function<void(Proc&)>& node) {
  // Region hygiene: drop any match state leaked by a previous (buggy or
  // faulted) run so stale completion callbacks and leaked receives can
  // never touch the fresh tables, and clear a previous watchdog abort.
  fabric_.clearAbort();
  fabric_.clearMatchState();
  tables_.clear();
  tables_.resize(static_cast<std::size_t>(nprocs_));
  for (int p = 0; p < nprocs_; ++p)
    tables_[static_cast<std::size_t>(p)] =
        std::make_unique<ProcTable>(p, decls_, opts_.debugChecks);

  const int watchdogMs = effectiveWatchdogMs();
  auto finished = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(nprocs_));

  std::mutex wdMu;
  std::condition_variable wdCv;
  bool wdStop = false;

  auto gather = [&] {
    QuiescenceSnapshot s;
    s.waits.reserve(static_cast<std::size_t>(nprocs_));
    s.finished.reserve(static_cast<std::size_t>(nprocs_));
    for (int p = 0; p < nprocs_; ++p) {
      s.finished.push_back(
          finished[static_cast<std::size_t>(p)].load() ? 1 : 0);
      s.waits.push_back(tables_[static_cast<std::size_t>(p)]->waitState());
    }
    s.barrierWaiters = fabric_.barrierWaiters();
    s.barrierEpoch = fabric_.barrierEpoch();
    return s;
  };

  auto fireWatchdog = [&](const QuiescenceSnapshot& snap) {
    DeadlockDiagnostics diag;
    for (const auto& d : decls_) diag.symbolNames.push_back(d.name);
    for (int p = 0; p < nprocs_; ++p) {
      const auto& w = snap.waits[static_cast<std::size_t>(p)];
      DeadlockDiagnostics::ProcState ps;
      ps.pid = p;
      if (w.blocked) {
        ps.status = DeadlockDiagnostics::ProcStatus::BlockedAwait;
        ps.sym = w.sym;
        ps.symName = decls_[static_cast<std::size_t>(w.sym)].name;
        ps.section = w.section.str();
        diag.symbolTables.push_back(
            dumpSymbolTable(*tables_[static_cast<std::size_t>(p)]));
      } else if (snap.finished[static_cast<std::size_t>(p)]) {
        ps.status = DeadlockDiagnostics::ProcStatus::Finished;
      } else {
        // Quiescence accounting says every non-finished, non-awaiting
        // processor is an entrant of the incomplete barrier.
        ps.status = DeadlockDiagnostics::ProcStatus::AtBarrier;
      }
      diag.procs.push_back(std::move(ps));
    }
    diag.fabric = fabric_.snapshot();

    std::ostringstream sum;
    sum << "XDP deadlock detected by watchdog: "
        << (snap.blockedCount() + snap.barrierWaiters) << " of " << nprocs_
        << " processors blocked with no deliverable message";
    auto report = std::make_shared<const std::string>(dumpDeadlock(diag));
    for (auto& t : tables_) t->abortWaits(sum.str(), report);
    fabric_.abortBlockedOps(sum.str(), report);
  };

  std::thread watchdog;
  if (watchdogMs > 0) {
    const auto poll = std::chrono::milliseconds(
        resolveWatchdogPollMs(opts_.watchdogPollMs, watchdogMs));
    watchdog = std::thread([&, poll] {
      std::optional<QuiescenceSnapshot> prev;
      std::unique_lock lk(wdMu);
      while (!wdCv.wait_for(lk, poll, [&] { return wdStop; })) {
        lk.unlock();
        QuiescenceSnapshot snap = gather();
        if (!snap.quiescent(nprocs_)) {
          prev.reset();
        } else if (fabric_.flushHeldFaults() != 0) {
          // Reordering holdbacks were still parked; delivering them may
          // unblock the machine, so this round does not count.
          prev.reset();
        } else if (prev.has_value() &&
                   QuiescenceSnapshot::stable(*prev, snap)) {
          fireWatchdog(snap);
          return;
        } else {
          prev = std::move(snap);
        }
        lk.lock();
      }
    });
  }

  std::exception_ptr failure;
  try {
    net::runSpmd(nprocs_, [&](int pid) {
      struct FinishGuard {
        std::atomic<bool>& flag;
        ~FinishGuard() { flag.store(true); }
      } guard{finished[static_cast<std::size_t>(pid)]};
      Proc proc(*this, pid);
      node(proc);
    });
  } catch (...) {
    failure = std::current_exception();
  }

  if (watchdog.joinable()) {
    {
      std::lock_guard lk(wdMu);
      wdStop = true;
    }
    wdCv.notify_all();
    watchdog.join();
  }
  fabric_.flushHeldFaults();
  if (failure) std::rethrow_exception(failure);

  if (opts_.debugChecks && !fabric_.faultPlanLossy()) {
    if (fabric_.undeliveredCount() != 0) {
      XDP_USAGE_FAIL("SPMD region ended with undelivered messages: a send "
                     "had no matching receive");
    }
    if (fabric_.pendingReceiveCount() != 0) {
      XDP_USAGE_FAIL("SPMD region ended with unmatched posted receives: a "
                     "receive had no matching send");
    }
  }
}

ProcTable& Runtime::table(int pid) {
  XDP_CHECK(pid >= 0 && pid < nprocs_, "bad pid");
  XDP_CHECK(tables_.size() == static_cast<std::size_t>(nprocs_),
            "tables not materialized; call run() first");
  return *tables_[static_cast<std::size_t>(pid)];
}

}  // namespace xdp::rt
