#include "xdp/rt/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "xdp/net/spmd.hpp"
#include "xdp/rt/dump.hpp"
#include "xdp/rt/proc.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {

namespace {

/// Parse a non-negative integer environment variable; nullopt when unset
/// or malformed.
std::optional<int> envInt(const char* name) {
  const char* env = std::getenv(name);
  if (!env) return std::nullopt;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end != env && *end == '\0' && v >= 0 && v <= 1000 * 1000 * 1000)
    return static_cast<int>(v);
  return std::nullopt;
}

}  // namespace

int resolveWatchdogMs(int configured) {
  if (configured >= 0) return configured;
  if (auto v = envInt("XDP_WATCHDOG_MS")) return *v;
  return 10000;
}

int resolveWatchdogPollMs(int configured, int watchdogMs) {
  if (configured > 0) return configured;
  if (configured < 0) {
    if (auto v = envInt("XDP_WATCHDOG_POLL_MS"); v.has_value() && *v > 0)
      return *v;
  }
  return std::clamp(watchdogMs / 8, 1, 200);
}

Runtime::Runtime(int nprocs, RuntimeOptions opts)
    : nprocs_(nprocs),
      opts_(opts),
      fabric_(nprocs, opts.costModel, opts.transport) {
  if (opts_.faultPlan.has_value()) fabric_.setFaultPlan(*opts_.faultPlan);
  if (fabric_.transportKind() == net::TransportKind::Ring) {
    // A deferred (ring) delivery must wake its receiver if it is parked in
    // an await. The hook indexes tables_ at fire time: tables churn per
    // run, but only between rounds, when no sender can be firing it.
    fabric_.setDeliveryWake([this](int dst) {
      const auto i = static_cast<std::size_t>(dst);
      if (i < tables_.size() && tables_[i]) tables_[i]->notifyWaiters();
    });
  }
}

Runtime::~Runtime() = default;

int Runtime::effectiveWatchdogMs() const {
  return resolveWatchdogMs(watchdogMsOverride_.value_or(opts_.watchdogMs));
}

int Runtime::declareArray(std::string name, ElemType type, Section global,
                          Distribution dist, SegmentShape segShape) {
  XDP_CHECK(dist.nprocs() <= nprocs_,
            "distribution uses more processors than the machine has");
  XDP_CHECK(dist.global() == global,
            "distribution global shape must equal the array's global shape");
  SymbolDecl d;
  d.index = static_cast<int>(decls_.size());
  d.name = std::move(name);
  d.type = type;
  d.global = std::move(global);
  d.dist = std::move(dist);
  d.segShape = segShape;
  decls_.push_back(std::move(d));
  return decls_.back().index;
}

namespace {

/// One watchdog observation of the whole machine. The machine is certainly
/// deadlocked when every processor is accounted for as finished, genuinely
/// blocked in an await (re-verified against table state under its lock),
/// or an entrant of an incomplete barrier — then no thread can ever run
/// again — and two observations a poll apart agree on every epoch (so no
/// thread moved in between and the non-atomic multi-lock snapshot is
/// consistent).
///
/// This stays sound with the sharded fabric: under the locked transport,
/// delivery is synchronous on the sending thread (send() returns only
/// after the message completed a receive or was parked), so when every
/// thread is blocked/finished there is no message in flight between
/// endpoint shards that could still wake a blocked await. Under the ring
/// transport delivery is deferred, so the watchdog loop additionally
/// treats a nonzero transport backlog as non-quiescence and reaps it
/// (Fabric::pollAll) before any observation may count toward stability.
struct QuiescenceSnapshot {
  std::vector<ProcTable::WaitState> waits;  // by pid
  std::vector<char> finished;               // by pid
  int barrierWaiters = 0;
  std::uint64_t barrierEpoch = 0;

  int blockedCount() const {
    int n = 0;
    for (const auto& w : waits) n += w.blocked ? 1 : 0;
    return n;
  }
  int finishedCount() const {
    int n = 0;
    for (char f : finished) n += f ? 1 : 0;
    return n;
  }
  bool quiescent(int nprocs) const {
    const int blocked = blockedCount() + barrierWaiters;
    return blocked > 0 && blocked + finishedCount() == nprocs;
  }
  static bool stable(const QuiescenceSnapshot& a, const QuiescenceSnapshot& b) {
    if (a.barrierWaiters != b.barrierWaiters ||
        a.barrierEpoch != b.barrierEpoch)
      return false;
    for (std::size_t i = 0; i < a.waits.size(); ++i) {
      if (a.waits[i].blocked != b.waits[i].blocked ||
          a.waits[i].epoch != b.waits[i].epoch ||
          a.finished[i] != b.finished[i])
        return false;
    }
    return true;
  }
};

}  // namespace

void Runtime::run(const std::function<void(Proc&)>& node) {
  preempted_ = false;
  preemptSnap_.reset();
  std::vector<ckpt::ContImage> resume;
  bool restored = false;
  if (ctrl_ && pendingRestore_.has_value()) {
    ckpt::Snapshot snap = std::move(*pendingRestore_);
    pendingRestore_.reset();
    resume = applySnapshot(snap);
    restored = true;
  }
  int rollbacks = 0;
  for (;;) {
    if (!restored) {
      // Region hygiene: drop any match state leaked by a previous (buggy
      // or faulted) run so stale completion callbacks and leaked receives
      // can never touch the fresh tables, and clear a previous watchdog
      // abort.
      fabric_.clearAbort();
      fabric_.clearMatchState();
      tables_.clear();
      tables_.resize(static_cast<std::size_t>(nprocs_));
      for (int p = 0; p < nprocs_; ++p)
        tables_[static_cast<std::size_t>(p)] =
            std::make_unique<ProcTable>(p, decls_, opts_.debugChecks);
      installTransportHooks();
    }
    restored = false;
    if (ctrl_) {
      // Blocked awaits poll the controller so a rollback/preempt unwinds
      // them; their restart point was published before they blocked.
      for (auto& t : tables_)
        t->setWaitInterrupt([this] { ctrl_->checkSignal(); });
      ctrl_->beginRound(std::move(resume));
      resume.clear();
      // Genesis snapshot, taken before any node thread runs: a crash
      // before the first interval capture rolls back to the start.
      if (store_->empty()) store_->add(buildSnapshot());
    }
    const bool completed = runRound(node);
    if (!ctrl_) break;
    const int sig = ctrl_->signal();
    if (sig == 1) {
      recoveries_ += 1;
      if (++rollbacks > ctrl_->options().maxRecoveries) {
        std::ostringstream os;
        os << "recovery budget exhausted (" << ctrl_->options().maxRecoveries
           << " rollbacks in one run)";
        throw ckpt::CkptError(os.str());
      }
      resume = applySnapshot(store_->loadLatestGood());
      fabric_.disarmCrashes();
      restored = true;
      continue;
    }
    if (sig == 2) {
      // Every unwound processor republished at its throw point (or was
      // blocked with its image already on file), so the machine state is
      // a consistent statement-boundary cut.
      preemptSnap_ = buildSnapshot();
      preempted_ = true;
      return;
    }
    (void)completed;
    break;
  }

  // Reap any messages still queued in the transport: their completions are
  // part of the region's observable result (the locked backend delivered
  // them inline at send time), and the hygiene checks below must judge a
  // fully-delivered machine. No-op under the locked transport.
  fabric_.pollAll();

  if (opts_.debugChecks && !fabric_.faultPlanLossy()) {
    if (fabric_.undeliveredCount() != 0) {
      XDP_USAGE_FAIL("SPMD region ended with undelivered messages: a send "
                     "had no matching receive");
    }
    if (fabric_.pendingReceiveCount() != 0) {
      XDP_USAGE_FAIL("SPMD region ended with unmatched posted receives: a "
                     "receive had no matching send");
    }
  }
}

bool Runtime::runRound(const std::function<void(Proc&)>& node) {
  const int watchdogMs = effectiveWatchdogMs();
  auto finished = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(nprocs_));

  std::mutex wdMu;
  std::condition_variable wdCv;
  bool wdStop = false;

  auto gather = [&] {
    QuiescenceSnapshot s;
    s.waits.reserve(static_cast<std::size_t>(nprocs_));
    s.finished.reserve(static_cast<std::size_t>(nprocs_));
    for (int p = 0; p < nprocs_; ++p) {
      s.finished.push_back(
          finished[static_cast<std::size_t>(p)].load() ? 1 : 0);
      s.waits.push_back(tables_[static_cast<std::size_t>(p)]->waitState());
    }
    s.barrierWaiters = fabric_.barrierWaiters();
    s.barrierEpoch = fabric_.barrierEpoch();
    return s;
  };

  auto fireWatchdog = [&](const QuiescenceSnapshot& snap) {
    DeadlockDiagnostics diag;
    for (const auto& d : decls_) diag.symbolNames.push_back(d.name);
    for (int p = 0; p < nprocs_; ++p) {
      const auto& w = snap.waits[static_cast<std::size_t>(p)];
      DeadlockDiagnostics::ProcState ps;
      ps.pid = p;
      if (w.blocked) {
        ps.status = DeadlockDiagnostics::ProcStatus::BlockedAwait;
        ps.sym = w.sym;
        ps.symName = decls_[static_cast<std::size_t>(w.sym)].name;
        ps.section = w.section.str();
        diag.symbolTables.push_back(
            dumpSymbolTable(*tables_[static_cast<std::size_t>(p)]));
      } else if (snap.finished[static_cast<std::size_t>(p)]) {
        ps.status = DeadlockDiagnostics::ProcStatus::Finished;
      } else {
        // Quiescence accounting says every non-finished, non-awaiting
        // processor is an entrant of the incomplete barrier.
        ps.status = DeadlockDiagnostics::ProcStatus::AtBarrier;
      }
      diag.procs.push_back(std::move(ps));
    }
    diag.fabric = fabric_.snapshot();

    std::ostringstream sum;
    sum << "XDP deadlock detected by watchdog: "
        << (snap.blockedCount() + snap.barrierWaiters) << " of " << nprocs_
        << " processors blocked with no deliverable message";
    auto report = std::make_shared<const std::string>(dumpDeadlock(diag));
    for (auto& t : tables_) t->abortWaits(sum.str(), report);
    fabric_.abortBlockedOps(sum.str(), report);
  };

  std::thread watchdog;
  if (watchdogMs > 0) {
    const auto poll = std::chrono::milliseconds(
        resolveWatchdogPollMs(opts_.watchdogPollMs, watchdogMs));
    watchdog = std::thread([&, poll] {
      std::optional<QuiescenceSnapshot> prev;
      std::unique_lock lk(wdMu);
      while (!wdCv.wait_for(lk, poll, [&] { return wdStop; })) {
        lk.unlock();
        QuiescenceSnapshot snap = gather();
        if (!snap.quiescent(nprocs_)) {
          prev.reset();
        } else if (fabric_.totalTransportBacklog() != 0) {
          // Deferred (ring) deliveries are queued; reaping them may
          // unblock parked awaits, so this round does not count.
          fabric_.pollAll();
          prev.reset();
        } else if (fabric_.flushHeldFaults() != 0) {
          // Reordering holdbacks were still parked; delivering them may
          // unblock the machine, so this round does not count.
          prev.reset();
        } else if (prev.has_value() &&
                   QuiescenceSnapshot::stable(*prev, snap)) {
          fireWatchdog(snap);
          return;
        } else {
          prev = std::move(snap);
        }
        lk.lock();
      }
    });
  }

  std::exception_ptr failure;
  try {
    net::runSpmd(nprocs_, [&](int pid) {
      struct FinishGuard {
        std::atomic<bool>& flag;
        ~FinishGuard() { flag.store(true); }
      } guard{finished[static_cast<std::size_t>(pid)]};
      try {
        Proc proc(*this, pid);
        node(proc);
        if (ctrl_) ctrl_->finish(pid);
      } catch (const ckpt::RollbackSignal&) {
        // Recovery unwind, not a failure: the round loop rolls the whole
        // machine back to the last good snapshot.
      } catch (const ckpt::PreemptSignal&) {
        // Preemption unwind: the round loop snapshots and returns.
      }
    });
  } catch (...) {
    failure = std::current_exception();
  }

  if (watchdog.joinable()) {
    {
      std::lock_guard lk(wdMu);
      wdStop = true;
    }
    wdCv.notify_all();
    watchdog.join();
  }
  fabric_.flushHeldFaults();
  // A rollback discards the round wholesale, including any failure another
  // processor hit while the crash unwound it (the restored timeline
  // re-executes deterministically and re-raises anything real).
  if (failure && !(ctrl_ && ctrl_->signal() == 1))
    std::rethrow_exception(failure);
  return failure == nullptr;
}

void Runtime::installTransportHooks() {
  if (fabric_.transportKind() != net::TransportKind::Ring) return;
  for (int p = 0; p < nprocs_; ++p)
    tables_[static_cast<std::size_t>(p)]->setFabricPoll(
        [this, p] { return fabric_.poll(p); },
        [this, p] { return fabric_.transportBacklog(p) != 0; });
}

ProcTable& Runtime::table(int pid) {
  XDP_CHECK(pid >= 0 && pid < nprocs_, "bad pid");
  XDP_CHECK(tables_.size() == static_cast<std::size_t>(nprocs_),
            "tables not materialized; call run() first");
  return *tables_[static_cast<std::size_t>(pid)];
}

void Runtime::enableCheckpointing(const ckpt::CkptOptions& opts) {
  XDP_CHECK(!ctrl_, "checkpointing already enabled");
  ctrl_ = std::make_unique<ckpt::Controller>(nprocs_, opts);
  store_ = std::make_unique<ckpt::CheckpointStore>(opts.dir);
  ctrl_->setCaptureFn([this] { return captureAttempt(); });
  // Wake every blocked wait so it re-polls the pending signal.
  ctrl_->setInterruptFn([this] {
    for (auto& t : tables_)
      if (t) t->notifyWaiters();
    fabric_.notifyBarrierWaiters();
  });
  fabric_.setCrashHook([this](int src) { ctrl_->requestRollback(src); });
  fabric_.setBarrierInterrupt([this] { ctrl_->checkSignal(); });
}

std::vector<ckpt::ContImage> Runtime::applySnapshot(
    const ckpt::Snapshot& snap) {
  if (snap.nprocs != nprocs_) {
    std::ostringstream os;
    os << "snapshot is for " << snap.nprocs << " processors, machine has "
       << nprocs_;
    throw ckpt::CkptError(os.str());
  }
  if (snap.tables.size() != static_cast<std::size_t>(nprocs_) ||
      snap.conts.size() != static_cast<std::size_t>(nprocs_))
    throw ckpt::CkptError(
        "snapshot image count disagrees with its processor count");
  fabric_.clearAbort();
  tables_.clear();
  tables_.resize(static_cast<std::size_t>(nprocs_));
  for (int p = 0; p < nprocs_; ++p) {
    auto& t = tables_[static_cast<std::size_t>(p)];
    t = std::make_unique<ProcTable>(p, decls_, opts_.debugChecks);
    t->restoreImage(snap.tables[static_cast<std::size_t>(p)]);
  }
  installTransportHooks();
  // Rebuild each restored pending receive's completion callback from its
  // RecvDesc, mirroring the closures Proc's receive operations install: a
  // sectioned scatter into the destination table, valueless for plain
  // ownership transfers.
  net::CompletionFactory factory =
      [this](int pid, const net::RecvDesc& d, const net::Name& name,
             net::TransferKind kind) -> net::CompletionFn {
    ProcTable* tp = tables_[static_cast<std::size_t>(pid)].get();
    const int sym = d.dstSym >= 0 ? d.dstSym : name.symbol;
    const std::size_t sz = elemSize(tp->decl(sym).type);
    const bool value = kind == net::TransferKind::Data || d.withValue;
    auto dsts = d.dsts;
    return [tp, sym, dsts, sz, value](const net::Message& msg) {
      std::size_t off = 0;
      for (const Section& s : dsts) {
        tp->completeReceive(sym, s,
                            value ? msg.payload.data() + off : nullptr,
                            msg.arrival);
        off += static_cast<std::size_t>(s.count()) * sz;
      }
    };
  };
  fabric_.restoreImage(snap.fabric, factory);
  return snap.conts;
}

ckpt::Snapshot Runtime::buildSnapshot() {
  XDP_CHECK(ctrl_ != nullptr, "checkpointing not enabled");
  XDP_CHECK(tables_.size() == static_cast<std::size_t>(nprocs_),
            "tables not materialized");
  // The fabric image cannot represent transport-queued messages; deliver
  // them first. Callers capture only at quiescent points (every processor
  // parked/finished/unwound), so reaping here cannot race a producer.
  fabric_.pollAll();
  ckpt::Snapshot s;
  s.version = ckpt::kSnapshotVersion;
  s.backend = ckptBackend_;
  s.nprocs = nprocs_;
  s.programHash = ckptProgramHash_;
  s.conts.reserve(static_cast<std::size_t>(nprocs_));
  s.tables.reserve(static_cast<std::size_t>(nprocs_));
  for (int p = 0; p < nprocs_; ++p) {
    ckpt::ContImage img = ctrl_->slotImage(p);
    if (img.unsafe) {
      std::ostringstream os;
      os << "continuation for p" << p << " is not a clean re-execution point";
      throw ckpt::CkptError(os.str());
    }
    s.captureStep = std::max(s.captureStep, img.stats[2]);
    s.conts.push_back(std::move(img));
  }
  for (int p = 0; p < nprocs_; ++p)
    s.tables.push_back(tables_[static_cast<std::size_t>(p)]->exportImage());
  s.fabric = fabric_.exportImage();
  return s;
}

bool Runtime::captureAttempt() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(ctrl_->options().captureTimeoutMs);
  std::vector<ProcTable::WaitState> waits(static_cast<std::size_t>(nprocs_));
  for (;;) {
    // Deferred (ring) deliveries must land *before* stability is judged:
    // a pinned processor may have submitted just before parking, and a
    // delivery here can wake a blocked await — which the epoch checks
    // below then see as movement and retry. Draining after the stability
    // window instead would race the export against the woken thread.
    fabric_.pollAll();
    // A capturable state: every processor parked *for this capture*,
    // finished, or blocked in an await (its restart point was published
    // before it blocked), and nobody inside a barrier. A Parked slot left
    // over from a previous generation is NOT a pin — its waiter's wake
    // predicate is already true and it may start running (and sending)
    // at any moment, poisoning the export.
    bool settled = true;
    std::vector<char> blocked(static_cast<std::size_t>(nprocs_), 0);
    for (int p = 0; p < nprocs_ && settled; ++p) {
      if (ctrl_->pinned(p)) continue;
      waits[static_cast<std::size_t>(p)] =
          tables_[static_cast<std::size_t>(p)]->waitState();
      blocked[static_cast<std::size_t>(p)] = 1;
      if (!waits[static_cast<std::size_t>(p)].blocked) settled = false;
    }
    if (settled && fabric_.barrierWaiters() == 0) {
      // Double-observe: every blocked processor must still be in the same
      // wait (same epoch) after a settle delay. Parked processors cannot
      // move while the leader holds the rendezvous, so a stable second
      // observation means the export below reads frozen state.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      bool stable = true;
      for (int p = 0; p < nprocs_ && stable; ++p) {
        if (!blocked[static_cast<std::size_t>(p)]) continue;
        const auto w = tables_[static_cast<std::size_t>(p)]->waitState();
        if (!w.blocked || w.epoch != waits[static_cast<std::size_t>(p)].epoch)
          stable = false;
      }
      if (stable && fabric_.barrierWaiters() == 0) {
        try {
          store_->add(buildSnapshot());
        } catch (const ckpt::CkptError&) {
          return false;  // e.g. an unsafe continuation; retry next interval
        }
        return true;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

ckpt::Snapshot Runtime::checkpoint() { return buildSnapshot(); }

void Runtime::restoreFrom(ckpt::Snapshot snap) {
  XDP_CHECK(ctrl_ != nullptr, "enableCheckpointing before restoreFrom");
  if (snap.version != ckpt::kSnapshotVersion) {
    std::ostringstream os;
    os << "snapshot version " << snap.version << " does not match "
       << ckpt::kSnapshotVersion;
    throw ckpt::CkptError(os.str());
  }
  if (snap.nprocs != nprocs_) {
    std::ostringstream os;
    os << "snapshot is for " << snap.nprocs << " processors, machine has "
       << nprocs_;
    throw ckpt::CkptError(os.str());
  }
  if (snap.programHash != 0 && ckptProgramHash_ != 0 &&
      snap.programHash != ckptProgramHash_)
    throw ckpt::CkptError("snapshot was taken from a different program");
  store_->add(snap);
  pendingRestore_ = std::move(snap);
}

void Runtime::requestPreempt() {
  if (ctrl_) ctrl_->requestPreempt();
}

ckpt::Snapshot Runtime::takePreemptSnapshot() {
  XDP_CHECK(preemptSnap_.has_value(), "no preemption snapshot pending");
  ckpt::Snapshot s = std::move(*preemptSnap_);
  preemptSnap_.reset();
  return s;
}

}  // namespace xdp::rt
