#include "xdp/rt/proc.hpp"

#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::rt {

Proc::Proc(Runtime& rt, int pid) : rt_(rt), pid_(pid) {}

ProcTable& Proc::table() const { return rt_.table(pid_); }

Section Proc::pointSection(const Point& p) {
  std::vector<sec::Triplet> dims;
  for (int d = 0; d < p.rank(); ++d) dims.emplace_back(p[d]);
  return Section(dims);
}

net::Name Proc::nameOf(int sym, const Section& s) const {
  return net::Name{sym, s, {}};
}

bool Proc::iown(int sym, const Section& s) const {
  return table().iown(sym, s);
}

bool Proc::accessible(int sym, const Section& s) const {
  return table().accessible(sym, s);
}

bool Proc::await(int sym, const Section& s) {
  double arrival = 0.0;
  if (!table().await(sym, s, &arrival)) return false;
  // Synchronizing with received data: pull this processor's virtual clock
  // to the data's arrival time (overlap already performed locally is kept)
  // and charge the receive-side overhead once.
  if (arrival > 0.0) {
    rt_.fabric().syncClock(pid_, arrival);
    rt_.fabric().advance(pid_, rt_.fabric().model().alpha);
  }
  return true;
}

Index Proc::mylb(int sym, const Section& s, int d) const {
  return table().mylb(sym, s, d);
}

Index Proc::myub(int sym, const Section& s, int d) const {
  return table().myub(sym, s, d);
}

sec::RegionList Proc::ownedRanges(int sym, const Section& s,
                                  bool excludeTransitional) const {
  return table().ownedRanges(sym, s, excludeTransitional);
}

void Proc::send(int sym, const Section& e,
                std::optional<std::vector<int>> dests) {
  ProcTable& t = table();
  const std::size_t sz = elemSize(t.decl(sym).type);
  std::vector<std::byte> payload(static_cast<std::size_t>(e.count()) * sz);
  t.readElems(sym, e, payload.data());
  const net::Name name = nameOf(sym, e);
  if (!dests.has_value()) {
    rt_.fabric().send(pid_, name, net::TransferKind::Data,
                      std::move(payload), std::nullopt);
    return;
  }
  rt_.fabric().sendToSet(pid_, name, net::TransferKind::Data, payload,
                         *dests);
}

void Proc::sendOwnership(int sym, const Section& e, bool withValue,
                         std::optional<std::vector<int>> dests) {
  ProcTable& t = table();
  // "Owner send operations block until the section is accessible."
  double arrival = 0.0;
  if (!t.await(sym, e, &arrival)) {
    if (rt_.options().debugChecks) {
      std::ostringstream os;
      os << "ownership send of unowned section " << e.str() << " on p"
         << pid_;
      XDP_USAGE_FAIL(os.str());
    }
    return;  // undefined behaviour in XDP; we make it a silent no-op
  }
  std::vector<std::byte> payload = t.takeOwnershipOut(sym, e, withValue);
  const auto kind = withValue ? net::TransferKind::OwnershipAndValue
                              : net::TransferKind::Ownership;
  const net::Name name = nameOf(sym, e);
  if (!dests.has_value()) {
    rt_.fabric().send(pid_, name, kind, std::move(payload), std::nullopt);
    return;
  }
  XDP_CHECK(dests->size() == 1,
            "ownership can be sent to exactly one processor");
  rt_.fabric().send(pid_, name, kind, std::move(payload), (*dests)[0]);
}

void Proc::recv(int dstSym, const Section& e, int srcSym, const Section& x) {
  ProcTable& t = table();
  XDP_CHECK(e.count() == x.count(),
            "receive: destination and name sections differ in size");
  XDP_CHECK(t.decl(dstSym).type == t.decl(srcSym).type,
            "receive: element type mismatch");
  // "E <- X blocks until E is accessible, then initiates the receive."
  if (!t.await(dstSym, e, nullptr)) {
    if (rt_.options().debugChecks) {
      std::ostringstream os;
      os << "receive into unowned section " << e.str() << " on p" << pid_;
      XDP_USAGE_FAIL(os.str());
    }
    return;
  }
  t.beginReceive(dstSym, e);
  ProcTable* tp = &t;
  const bool debug = rt_.options().debugChecks;
  const std::size_t expect =
      static_cast<std::size_t>(e.count()) * elemSize(t.decl(dstSym).type);
  rt_.fabric().postReceive(
      pid_, nameOf(srcSym, x), net::TransferKind::Data,
      [tp, dstSym, e, expect, debug](const net::Message& msg) {
        if (debug && msg.payload.size() != expect) {
          XDP_USAGE_FAIL("matched send/receive transfer different sizes");
        }
        tp->completeReceive(dstSym, e, msg.payload.data(), msg.arrival);
      },
      net::RecvDesc{dstSym, {e}, false});
}

void Proc::recvOwnership(int sym, const Section& u, bool withValue) {
  ProcTable& t = table();
  t.beginOwnershipReceive(sym, u);
  ProcTable* tp = &t;
  const auto kind = withValue ? net::TransferKind::OwnershipAndValue
                              : net::TransferKind::Ownership;
  rt_.fabric().postReceive(
      pid_, nameOf(sym, u), kind,
      [tp, sym, u, withValue](const net::Message& msg) {
        tp->completeReceive(sym, u,
                            withValue ? msg.payload.data() : nullptr,
                            msg.arrival);
      },
      net::RecvDesc{sym, {u}, withValue});
}

namespace {

net::Name multiName(int sym, const std::vector<Section>& secs) {
  XDP_CHECK(!secs.empty(), "aggregated transfer needs at least one section");
  net::Name n;
  n.symbol = sym;
  n.section = secs.front();
  n.rest.assign(secs.begin() + 1, secs.end());
  return n;
}

}  // namespace

void Proc::sendMulti(int sym, const std::vector<Section>& secs,
                     std::optional<std::vector<int>> dests) {
  ProcTable& t = table();
  const std::size_t sz = elemSize(t.decl(sym).type);
  std::vector<std::byte> payload;
  for (const Section& s : secs) {
    const std::size_t off = payload.size();
    payload.resize(off + static_cast<std::size_t>(s.count()) * sz);
    t.readElems(sym, s, payload.data() + off);
  }
  const net::Name name = multiName(sym, secs);
  if (!dests.has_value()) {
    rt_.fabric().send(pid_, name, net::TransferKind::Data,
                      std::move(payload), std::nullopt);
    return;
  }
  rt_.fabric().sendToSet(pid_, name, net::TransferKind::Data, payload,
                         *dests);
}

void Proc::recvMulti(int dstSym, const std::vector<Section>& dsts,
                     int srcSym, const std::vector<Section>& names) {
  ProcTable& t = table();
  XDP_CHECK(dsts.size() == names.size(),
            "aggregated receive: destination/name section counts differ");
  const std::size_t sz = elemSize(t.decl(dstSym).type);
  for (std::size_t k = 0; k < dsts.size(); ++k) {
    XDP_CHECK(dsts[k].count() == names[k].count(),
              "aggregated receive: section size mismatch");
    if (!t.await(dstSym, dsts[k], nullptr)) {
      if (rt_.options().debugChecks)
        XDP_USAGE_FAIL("aggregated receive into unowned section");
      return;
    }
  }
  for (const Section& d : dsts) t.beginReceive(dstSym, d);
  ProcTable* tp = &t;
  auto dstsCopy = dsts;
  rt_.fabric().postReceive(
      pid_, multiName(srcSym, names), net::TransferKind::Data,
      [tp, dstSym, dstsCopy, sz](const net::Message& msg) {
        std::size_t off = 0;
        for (const Section& d : dstsCopy) {
          tp->completeReceive(dstSym, d, msg.payload.data() + off,
                              msg.arrival);
          off += static_cast<std::size_t>(d.count()) * sz;
        }
      },
      net::RecvDesc{dstSym, dstsCopy, false});
}

void Proc::sendOwnershipMulti(int sym, const std::vector<Section>& secs,
                              bool withValue,
                              std::optional<std::vector<int>> dests) {
  ProcTable& t = table();
  std::vector<std::byte> payload;
  for (const Section& s : secs) {
    double arrival = 0.0;
    if (!t.await(sym, s, &arrival)) {
      if (rt_.options().debugChecks)
        XDP_USAGE_FAIL("aggregated ownership send of unowned section");
      return;
    }
    std::vector<std::byte> part = t.takeOwnershipOut(sym, s, withValue);
    payload.insert(payload.end(), part.begin(), part.end());
  }
  const auto kind = withValue ? net::TransferKind::OwnershipAndValue
                              : net::TransferKind::Ownership;
  const net::Name name = multiName(sym, secs);
  if (!dests.has_value()) {
    rt_.fabric().send(pid_, name, kind, std::move(payload), std::nullopt);
    return;
  }
  XDP_CHECK(dests->size() == 1,
            "ownership can be sent to exactly one processor");
  rt_.fabric().send(pid_, name, kind, std::move(payload), (*dests)[0]);
}

void Proc::recvOwnershipMulti(int sym, const std::vector<Section>& secs,
                              bool withValue) {
  ProcTable& t = table();
  for (const Section& s : secs) t.beginOwnershipReceive(sym, s);
  ProcTable* tp = &t;
  const std::size_t sz = elemSize(t.decl(sym).type);
  auto secsCopy = secs;
  const auto kind = withValue ? net::TransferKind::OwnershipAndValue
                              : net::TransferKind::Ownership;
  rt_.fabric().postReceive(
      pid_, multiName(sym, secs), kind,
      [tp, sym, secsCopy, withValue, sz](const net::Message& msg) {
        std::size_t off = 0;
        for (const Section& s : secsCopy) {
          tp->completeReceive(sym, s,
                              withValue ? msg.payload.data() + off : nullptr,
                              msg.arrival);
          off += static_cast<std::size_t>(s.count()) * sz;
        }
      },
      net::RecvDesc{sym, secsCopy, withValue});
}

void Proc::compute(double dt) { rt_.fabric().advance(pid_, dt); }

void Proc::barrier() { rt_.fabric().barrier(pid_); }

double Proc::clock() const { return rt_.fabric().clock(pid_); }

}  // namespace xdp::rt
