// Multi-tenant session execution: one tenant's .xdp program run through
// the full pipeline (parse -> static --analyze gate -> optimize ->
// execute) inside a containment boundary that guarantees NOTHING the
// session does — crash, deadlock, runaway loop, memory blow-up, fault-
// injected message loss — can escape to the process hosting it.
//
// The boundary is the SessionScope. Per attempt it composes:
//
//   * an isolated simulated machine (Runtime + Fabric) whose fault plan
//     is the session's own, reseeded per attempt so retries see fresh
//     fault decisions (a deterministic plan would otherwise replay the
//     exact same drops and make retry pointless);
//   * a per-session hang watchdog window: a deadlocked session surfaces
//     as a session-level DeadlockError, never a hung server;
//   * enforced quotas (logical steps, resident ProcTable bytes, fabric
//     messages/bytes, wall-time budget) hooked into the interpreter's
//     statement loop and the fabric's send path. The first breach
//     cancels the whole session: running processors throw QuotaExceeded
//     at their next statement, parked processors are woken out of
//     await/barrier (the watchdog's abort mechanism, reused as a
//     cancellation point).
//
// Transient fabric faults (drop/delay/reorder/stall) are absorbed at the
// session boundary by bounded retry with exponential backoff; crash
// faults and quota breaches tear the session down immediately. Teardown
// always drains the session fabric (endpoint drain + match-state
// hygiene check) and reports what was reclaimed, so a faulted session
// can never leak state into the server.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "xdp/il/program.hpp"
#include "xdp/interp/interpreter.hpp"
#include "xdp/net/fault.hpp"

namespace xdp::serve {

/// Per-tenant resource quotas. 0 = unlimited. Enforcement points:
/// `maxSteps`/`maxResidentBytes`/`wallBudgetMs` at the interpreter's
/// per-statement hook (resident bytes and wall clock are sampled every
/// few steps), `maxMessages`/`maxSendBytes` at the fabric send hook
/// (checked before the send changes any fabric state).
struct Quotas {
  std::uint64_t maxSteps = 0;        ///< executed IL statements, all procs
  std::size_t maxResidentBytes = 0;  ///< per-processor ProcTable residency
  std::uint64_t maxMessages = 0;     ///< fabric messages sent
  std::uint64_t maxSendBytes = 0;    ///< fabric payload bytes sent
  int wallBudgetMs = 0;              ///< whole-session wall-clock budget
};

/// Bounded retry with exponential backoff for *transient* failures (a
/// deadlock under a lossy/perturbing fault plan). Attempt k (1-based)
/// sleeps backoffBaseMs << (k-2) before running, capped at backoffCapMs.
struct RetryPolicy {
  int maxAttempts = 3;   ///< total attempts; 1 = never retry
  int backoffBaseMs = 1;
  int backoffCapMs = 50;
};

/// One tenant's job: a program plus its execution envelope.
struct SessionRequest {
  std::string name = "session";
  /// The program, as .xdp source text...
  std::string source;
  /// ...or prebuilt IL (wins over `source` when set).
  std::shared_ptr<const il::Program> program;
  bool usePipeline = false;  ///< apply the standard optimization pipeline
  bool analyze = true;       ///< static Figure-1 gate before execution
  std::uint64_t fillSeed = 42;
  Quotas quotas;
  /// Faults injected into this session's fabric (and nobody else's).
  std::optional<net::FaultPlan> faultPlan;
};

enum class SessionOutcome {
  Completed,         ///< ran to completion; resultDigest is valid
  RejectedParse,     ///< source did not parse
  RejectedAnalysis,  ///< static verifier found errors; never executed
  QuotaExceeded,     ///< a quota breach cancelled the session
  Crashed,           ///< a crash fault killed an endpoint mid-run
  Deadlocked,        ///< watchdog-diagnosed deadlock (retries exhausted)
  Failed,            ///< any other error
};
const char* outcomeName(SessionOutcome o);

/// Everything the server knows about a finished session. For failures,
/// the stats/hygiene fields describe the *final* attempt.
struct SessionReport {
  std::uint64_t id = 0;
  std::string name;
  SessionOutcome outcome = SessionOutcome::Failed;
  std::string error;          ///< what() of the final failure ("" if none)
  std::string quotaResource;  ///< breached quota (outcome QuotaExceeded)
  int attempts = 0;           ///< 1 + retries used
  int nprocs = 0;

  /// FNV-1a over every declared array's gathered contents (Completed
  /// only) — bit-identical runs produce identical digests.
  std::uint64_t resultDigest = 0;

  interp::InterpStats stats;
  net::NetStats net;
  net::FaultStats faults;
  double makespan = 0.0;  ///< modeled seconds
  double wallMs = 0.0;    ///< real time, all attempts + backoff

  // --- teardown hygiene -------------------------------------------------
  /// What draining the session fabric reclaimed (leaked() == 0 for a
  /// clean session).
  net::DrainReport drained;
  /// Bytes still resident in the session's ProcTables at teardown,
  /// summed over processors (reclaimed with the session; recorded so
  /// leak trends are visible).
  std::size_t residentBytesAtTeardown = 0;
  /// Post-drain re-check: fabric shows zero undelivered messages, zero
  /// pending receives, zero held faults. False means reclamation itself
  /// is broken — test_serve_chaos asserts this never happens.
  bool hygieneClean = false;
};

/// Server-level execution knobs shared by every session (the per-tenant
/// envelope rides in SessionRequest).
struct SessionOptions {
  bool debugChecks = true;
  /// Per-session watchdog window; sessions, not the server, own hangs.
  int watchdogMs = 1000;
  int watchdogPollMs = -1;
  bool splitGuardedLoops = true;
  /// Execution engine for session programs (quotas, fault isolation,
  /// watchdog, and stats behave identically on both — the VM reuses the
  /// same stepHook and fabric hooks).
  interp::Backend backend = interp::Backend::TreeWalk;
  net::CostModel costModel{};
  RetryPolicy retry{};
};

/// Run one session synchronously in the calling thread (the server's
/// workers call this; tests use it for solo reference runs). Never
/// throws for session-contained failures — every outcome, including
/// parse errors and quota kills, is a SessionReport.
SessionReport runSession(const SessionRequest& req,
                         const SessionOptions& opts = {},
                         std::uint64_t id = 0);

}  // namespace xdp::serve
