// Multi-tenant session execution: one tenant's .xdp program run through
// the full pipeline (parse -> static --analyze gate -> optimize ->
// execute) inside a containment boundary that guarantees NOTHING the
// session does — crash, deadlock, runaway loop, memory blow-up, fault-
// injected message loss — can escape to the process hosting it.
//
// The boundary is the SessionScope. Per attempt it composes:
//
//   * an isolated simulated machine (Runtime + Fabric) whose fault plan
//     is the session's own, reseeded per attempt so retries see fresh
//     fault decisions (a deterministic plan would otherwise replay the
//     exact same drops and make retry pointless);
//   * a per-session hang watchdog window: a deadlocked session surfaces
//     as a session-level DeadlockError, never a hung server;
//   * enforced quotas (logical steps, resident ProcTable bytes, fabric
//     messages/bytes, wall-time budget) hooked into the interpreter's
//     statement loop and the fabric's send path. The first breach
//     cancels the whole session: running processors throw QuotaExceeded
//     at their next statement, parked processors are woken out of
//     await/barrier (the watchdog's abort mechanism, reused as a
//     cancellation point).
//
// Transient fabric faults (drop/delay/reorder/stall) are absorbed at the
// session boundary by bounded retry with exponential backoff; crash
// faults and quota breaches tear the session down immediately. Teardown
// always drains the session fabric (endpoint drain + match-state
// hygiene check) and reports what was reclaimed, so a faulted session
// can never leak state into the server.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "xdp/ckpt/image.hpp"
#include "xdp/il/program.hpp"
#include "xdp/interp/interpreter.hpp"
#include "xdp/net/fault.hpp"

namespace xdp::serve {

/// One-way shutdown gate for retry backoff: sessions wait on it instead
/// of sleeping, so Server teardown interrupts a backoff immediately
/// instead of being delayed by up to the full backoff cap per session.
class StopLatch {
 public:
  void stop() {
    {
      std::lock_guard lk(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }
  bool stopped() const {
    std::lock_guard lk(mu_);
    return stopped_;
  }
  /// Wait up to `ms` milliseconds; true when the latch tripped (the wait
  /// was cut short by shutdown).
  bool waitFor(int ms) {
    std::unique_lock lk(mu_);
    return cv_.wait_for(lk, std::chrono::milliseconds(ms),
                        [&] { return stopped_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

/// Per-tenant resource quotas. 0 = unlimited. Enforcement points:
/// `maxSteps`/`maxResidentBytes`/`wallBudgetMs` at the interpreter's
/// per-statement hook (resident bytes and wall clock are sampled every
/// few steps), `maxMessages`/`maxSendBytes` at the fabric send hook
/// (checked before the send changes any fabric state).
struct Quotas {
  std::uint64_t maxSteps = 0;        ///< executed IL statements, all procs
  std::size_t maxResidentBytes = 0;  ///< per-processor ProcTable residency
  std::uint64_t maxMessages = 0;     ///< fabric messages sent
  std::uint64_t maxSendBytes = 0;    ///< fabric payload bytes sent
  int wallBudgetMs = 0;              ///< whole-session wall-clock budget
};

/// Bounded retry with exponential backoff for *transient* failures (a
/// deadlock under a lossy/perturbing fault plan). Attempt k (1-based)
/// sleeps backoffBaseMs << (k-2) before running, capped at backoffCapMs.
struct RetryPolicy {
  int maxAttempts = 3;   ///< total attempts; 1 = never retry
  int backoffBaseMs = 1;
  int backoffCapMs = 50;
};

/// One tenant's job: a program plus its execution envelope.
struct SessionRequest {
  std::string name = "session";
  /// The program, as .xdp source text...
  std::string source;
  /// ...or prebuilt IL (wins over `source` when set).
  std::shared_ptr<const il::Program> program;
  bool usePipeline = false;  ///< apply the standard optimization pipeline
  bool analyze = true;       ///< static Figure-1 gate before execution
  std::uint64_t fillSeed = 42;
  Quotas quotas;
  /// Faults injected into this session's fabric (and nobody else's).
  std::optional<net::FaultPlan> faultPlan;

  // --- checkpoint / recovery envelope ----------------------------------
  /// > 0 enables auto-checkpointing every N executed statements; a
  /// `crashRecover` fault fate then rolls the session back to its last
  /// good snapshot instead of killing it (fail-recover, not fail-stop).
  std::uint64_t checkpointIntervalSteps = 0;
  /// Preempt the session once its statement count crosses this bound: it
  /// is checkpointed, spilled to SessionOptions::spillDir (when set), and
  /// reported as Preempted. 0 = never preempt.
  std::uint64_t preemptAfterSteps = 0;
  /// Resume from a spill file written by a previously preempted session
  /// (Server::readmitSpilled fills this in). The file's snapshot is
  /// restored before execution and deleted once the session completes.
  std::string resumeFrom;
};

enum class SessionOutcome {
  Completed,         ///< ran to completion; resultDigest is valid
  RejectedParse,     ///< source did not parse
  RejectedAnalysis,  ///< static verifier found errors; never executed
  QuotaExceeded,     ///< a quota breach cancelled the session
  Crashed,           ///< a crash fault killed an endpoint mid-run
  Deadlocked,        ///< watchdog-diagnosed deadlock (retries exhausted)
  Preempted,         ///< checkpointed and unwound; resumable from spill
  Failed,            ///< any other error
};
const char* outcomeName(SessionOutcome o);

/// Structured account of what the checkpoint/recovery machinery did for
/// one session (all zero when the session ran without a checkpoint
/// envelope).
struct RecoveryReport {
  std::uint64_t snapshots = 0;       ///< coordinated captures accepted
  std::uint64_t snapshotBytes = 0;   ///< encoded size of the newest one
  std::uint64_t snapshotRecords = 0; ///< record count of the newest one
  std::uint64_t recoveries = 0;      ///< crash rollbacks completed
  std::uint64_t fallbacks = 0;       ///< corrupt snapshots skipped at load
  bool resumed = false;              ///< session started from a spill file
  std::string spillPath;  ///< spill written on preemption ("" if none)
};

/// Everything the server knows about a finished session. For failures,
/// the stats/hygiene fields describe the *final* attempt.
struct SessionReport {
  std::uint64_t id = 0;
  std::string name;
  SessionOutcome outcome = SessionOutcome::Failed;
  std::string error;          ///< what() of the final failure ("" if none)
  std::string quotaResource;  ///< breached quota (outcome QuotaExceeded)
  int attempts = 0;           ///< 1 + retries used
  int nprocs = 0;

  /// FNV-1a over every declared array's gathered contents (Completed
  /// only) — bit-identical runs produce identical digests.
  std::uint64_t resultDigest = 0;

  interp::InterpStats stats;
  net::NetStats net;
  net::FaultStats faults;
  RecoveryReport recovery;
  double makespan = 0.0;  ///< modeled seconds
  double wallMs = 0.0;    ///< real time, all attempts + backoff

  // --- teardown hygiene -------------------------------------------------
  /// What draining the session fabric reclaimed (leaked() == 0 for a
  /// clean session).
  net::DrainReport drained;
  /// Bytes still resident in the session's ProcTables at teardown,
  /// summed over processors (reclaimed with the session; recorded so
  /// leak trends are visible).
  std::size_t residentBytesAtTeardown = 0;
  /// Post-drain re-check: fabric shows zero undelivered messages, zero
  /// pending receives, zero held faults. False means reclamation itself
  /// is broken — test_serve_chaos asserts this never happens.
  bool hygieneClean = false;
};

/// Server-level execution knobs shared by every session (the per-tenant
/// envelope rides in SessionRequest).
struct SessionOptions {
  bool debugChecks = true;
  /// Per-session watchdog window; sessions, not the server, own hangs.
  int watchdogMs = 1000;
  int watchdogPollMs = -1;
  bool splitGuardedLoops = true;
  /// Execution engine for session programs (quotas, fault isolation,
  /// watchdog, and stats behave identically on both — the VM reuses the
  /// same stepHook and fabric hooks).
  interp::Backend backend = interp::Backend::TreeWalk;
  net::CostModel costModel{};
  /// Message transport for each session's fabric (locked = inline
  /// delivery, ring = lock-free SPSC fast path; see net::TransportOptions).
  net::TransportOptions transport{};
  RetryPolicy retry{};
  /// Directory for preemption spill files. Empty: a preempted session
  /// still reports Preempted but its snapshot is discarded (nothing to
  /// resume from).
  std::string spillDir;
  /// When set, retry backoff waits on this latch instead of sleeping, so
  /// server shutdown interrupts sessions mid-backoff (the Server wires
  /// its own latch in; standalone runSession callers may leave it null).
  StopLatch* stopLatch = nullptr;
};

/// Run one session synchronously in the calling thread (the server's
/// workers call this; tests use it for solo reference runs). Never
/// throws for session-contained failures — every outcome, including
/// parse errors and quota kills, is a SessionReport.
SessionReport runSession(const SessionRequest& req,
                         const SessionOptions& opts = {},
                         std::uint64_t id = 0);

// --- preemption spill files ---------------------------------------------
// A spill file ("<dir>/<name>-<id>.xdpspill") is the request's execution
// envelope plus the encoded snapshot, with a whole-file FNV-1a trailer on
// top of the snapshot's own per-record checksums. Only source-backed
// sessions can spill: prebuilt-IL requests have no serializable program
// identity, so they report Preempted with an empty spillPath.

/// One preempted session at rest.
struct SpillFile {
  std::uint64_t id = 0;
  std::string name;
  std::uint64_t fillSeed = 42;
  bool usePipeline = false;
  bool analyze = true;
  std::uint64_t checkpointIntervalSteps = 0;
  std::uint8_t backend = 0;  ///< interp::Backend the snapshot belongs to
  std::string source;        ///< the program, as .xdp source text
  std::vector<std::byte> snapshot;  ///< encoded ckpt::Snapshot
};

std::string spillFilePath(const std::string& dir, std::uint64_t id,
                          const std::string& name);
void writeSpillFile(const std::string& path, const SpillFile& s);
/// Throws ckpt::CkptError on any defect (bad magic, truncation, checksum
/// mismatch) — a torn spill is rejected, never partially admitted.
SpillFile readSpillFile(const std::string& path);

}  // namespace xdp::serve
