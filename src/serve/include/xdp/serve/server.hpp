// The long-lived multi-tenant server: admits sessions onto a bounded
// worker pool over a shared endpoint arena, contains every failure to
// its session (see session.hpp for the containment boundary), and
// degrades gracefully under load — when the pending queue is full,
// admission control sheds new sessions with a typed AdmissionRejected
// instead of queuing unboundedly.
//
// The endpoint arena is the shared-fabric resource model: the server
// owns a fixed number of endpoint slots; a session leases one slot per
// simulated processor for the duration of its run (its fabric partition
// — barriers and rendezvous matching stay inside the partition, which is
// what makes per-session fault isolation possible at all), and teardown
// always returns the lease, faulted or not. Tests assert the arena
// drains back to zero after any chaos mix.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "xdp/serve/session.hpp"
#include "xdp/support/check.hpp"

namespace xdp::serve {

/// Typed admission-control rejection: the server is shedding load. The
/// caller may back off and resubmit; nothing was queued.
class AdmissionRejected : public XdpError {
 public:
  explicit AdmissionRejected(std::string what) : XdpError(std::move(what)) {}
};

struct ServerConfig {
  int workers = 4;
  /// Admission bound: sessions accepted but not yet running. Submissions
  /// beyond it are shed with AdmissionRejected.
  int maxPending = 64;
  /// Endpoint slots in the shared arena; 0 = 8 * workers. Must be at
  /// least the largest program's nprocs or that program can never run.
  int endpointCapacity = 0;
  SessionOptions session{};
};

struct ServerStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< shed at admission control
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     ///< any non-Completed outcome (Preempted too)
  std::uint64_t retries = 0;    ///< extra attempts across all sessions
  std::uint64_t readmitted = 0; ///< spilled sessions resumed at startup
};

class Server {
 public:
  explicit Server(ServerConfig cfg = {});
  /// Stops admission, finishes every queued session, joins the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit a session. Returns a future for its report; throws
  /// AdmissionRejected when the pending queue is full or the server is
  /// shutting down. Session failures never surface here — they are
  /// outcomes inside the report.
  std::future<SessionReport> submit(SessionRequest req);

  /// Stop admitting, run everything already queued, join the workers.
  /// Trips the stop latch first, so sessions parked in retry backoff wake
  /// immediately instead of serving out their sleep. Idempotent; the
  /// destructor calls it.
  void shutdown();

  /// Scan `dir` for *.xdpspill files written by preempted sessions (this
  /// server's spillDir, or a crashed predecessor's) and resubmit each as
  /// a resume request. Corrupt spills and spills checkpointed under a
  /// different backend are skipped and left on disk; a resumed session
  /// deletes its spill on completion. Returns the number re-admitted.
  int readmitSpilled(const std::string& dir);

  ServerStats stats() const;
  int pendingSessions() const;
  int endpointsInUse() const;
  int endpointCapacity() const { return cfg_.endpointCapacity; }

 private:
  struct Job {
    std::uint64_t id;
    SessionRequest req;
    std::promise<SessionReport> promise;
  };

  void workerLoop();
  SessionReport runJob(Job& job);

  /// Lease `n` endpoint slots, blocking until available (leases are
  /// always returned, so waiting cannot deadlock as long as n <=
  /// capacity; larger requests fail the session instead of blocking
  /// forever).
  bool acquireEndpoints(int n);
  void releaseEndpoints(int n);

  ServerConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< queue activity
  std::condition_variable arenaCv_;   ///< endpoint-lease returns
  std::deque<Job> queue_;
  bool stopping_ = false;
  int endpointsInUse_ = 0;
  std::uint64_t nextId_ = 1;
  ServerStats stats_;

  /// Shared shutdown gate handed to every session via SessionOptions.
  StopLatch stopLatch_;

  std::vector<std::thread> workers_;
};

}  // namespace xdp::serve
