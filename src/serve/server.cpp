#include "xdp/serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "xdp/ckpt/image.hpp"
#include "xdp/il/parser.hpp"

namespace xdp::serve {

Server::Server(ServerConfig cfg) : cfg_(cfg) {
  XDP_CHECK(cfg_.workers >= 1, "server needs at least one worker");
  XDP_CHECK(cfg_.maxPending >= 1, "server needs a positive pending bound");
  if (cfg_.endpointCapacity <= 0) cfg_.endpointCapacity = 8 * cfg_.workers;
  cfg_.session.stopLatch = &stopLatch_;
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

Server::~Server() { shutdown(); }

std::future<SessionReport> Server::submit(SessionRequest req) {
  std::future<SessionReport> fut;
  {
    std::lock_guard lk(mu_);
    if (stopping_)
      throw AdmissionRejected("server is shutting down; session '" +
                              req.name + "' not admitted");
    if (queue_.size() >= static_cast<std::size_t>(cfg_.maxPending)) {
      stats_.rejected += 1;
      throw AdmissionRejected(
          "admission control: pending queue full (" +
          std::to_string(cfg_.maxPending) + " sessions); session '" +
          req.name + "' shed — back off and resubmit");
    }
    Job job;
    job.id = nextId_++;
    job.req = std::move(req);
    fut = job.promise.get_future();
    stats_.admitted += 1;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return fut;
}

void Server::shutdown() {
  {
    std::lock_guard lk(mu_);
    if (stopping_) {
      // Idempotent: a second call (the destructor after an explicit
      // shutdown) finds the workers already joined.
      if (workers_.empty()) return;
    }
    stopping_ = true;
  }
  stopLatch_.stop();
  cv_.notify_all();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

ServerStats Server::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

int Server::readmitSpilled(const std::string& dir) {
  if (dir.empty()) return 0;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& ent : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.size() > 9 && name.substr(name.size() - 9) == ".xdpspill")
      paths.push_back(ent.path().string());
  }
  std::sort(paths.begin(), paths.end());  // deterministic re-admission order

  int readmitted = 0;
  for (const std::string& path : paths) {
    SpillFile sp;
    try {
      sp = readSpillFile(path);
    } catch (const ckpt::CkptError&) {
      continue;  // torn/corrupt spill: leave it for inspection
    }
    // A snapshot carries one backend's continuation representation; this
    // server can only resume spills matching its own engine. Foreign
    // spills stay on disk for a compatible server.
    if (sp.backend != static_cast<std::uint8_t>(cfg_.session.backend))
      continue;
    SessionRequest req;
    req.name = sp.name;
    req.source = sp.source;
    req.fillSeed = sp.fillSeed;
    req.usePipeline = sp.usePipeline;
    req.analyze = sp.analyze;
    req.checkpointIntervalSteps = sp.checkpointIntervalSteps;
    req.resumeFrom = path;
    try {
      submit(std::move(req));
    } catch (const AdmissionRejected&) {
      break;  // queue full: the rest stay spilled for a later sweep
    }
    {
      std::lock_guard lk(mu_);
      stats_.readmitted += 1;
    }
    ++readmitted;
  }
  return readmitted;
}

int Server::pendingSessions() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(queue_.size());
}

int Server::endpointsInUse() const {
  std::lock_guard lk(mu_);
  return endpointsInUse_;
}

void Server::workerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and everything queued ran
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    SessionReport rep = runJob(job);
    {
      std::lock_guard lk(mu_);
      if (rep.outcome == SessionOutcome::Completed)
        stats_.completed += 1;
      else
        stats_.failed += 1;
      if (rep.attempts > 1)
        stats_.retries += static_cast<std::uint64_t>(rep.attempts - 1);
    }
    job.promise.set_value(std::move(rep));
  }
}

SessionReport Server::runJob(Job& job) {
  // Lease the session's fabric partition from the shared endpoint arena.
  // The program's nprocs is not known until it parses, so parse-only
  // outcomes are produced without a lease (they run no fabric); a probe
  // run of runSession with an unparseable/overlarge program never reaches
  // execution either, but we must know nprocs *before* leasing — so peek
  // at the program here.
  int nprocs = 0;
  if (job.req.program) {
    nprocs = job.req.program->nprocs;
  } else {
    try {
      nprocs = il::parseProgram(job.req.source).nprocs;
    } catch (...) {
      // Let runSession produce the canonical RejectedParse report.
      return runSession(job.req, cfg_.session, job.id);
    }
  }

  if (nprocs > cfg_.endpointCapacity) {
    // Larger than the whole arena: blocking would deadlock admission.
    SessionReport rep;
    rep.id = job.id;
    rep.name = job.req.name;
    rep.outcome = SessionOutcome::Failed;
    rep.nprocs = nprocs;
    rep.error = "session needs " + std::to_string(nprocs) +
                " endpoints but the arena has " +
                std::to_string(cfg_.endpointCapacity);
    rep.hygieneClean = true;
    return rep;
  }

  acquireEndpoints(nprocs);
  SessionReport rep;
  try {
    rep = runSession(job.req, cfg_.session, job.id);
  } catch (...) {
    // runSession is no-throw for session failures, but the lease must
    // survive even a logic error in it.
    releaseEndpoints(nprocs);
    throw;
  }
  releaseEndpoints(nprocs);
  return rep;
}

bool Server::acquireEndpoints(int n) {
  std::unique_lock lk(mu_);
  arenaCv_.wait(lk, [&] {
    return endpointsInUse_ + n <= cfg_.endpointCapacity;
  });
  endpointsInUse_ += n;
  return true;
}

void Server::releaseEndpoints(int n) {
  {
    std::lock_guard lk(mu_);
    endpointsInUse_ -= n;
  }
  arenaCv_.notify_all();
}

}  // namespace xdp::serve
