#include "xdp/serve/session.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "xdp/analysis/verifier.hpp"
#include "xdp/ckpt/io.hpp"
#include "xdp/apps/fft.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/rt/runtime.hpp"
#include "xdp/support/check.hpp"

namespace xdp::serve {

const char* outcomeName(SessionOutcome o) {
  switch (o) {
    case SessionOutcome::Completed:
      return "completed";
    case SessionOutcome::RejectedParse:
      return "rejected-parse";
    case SessionOutcome::RejectedAnalysis:
      return "rejected-analysis";
    case SessionOutcome::QuotaExceeded:
      return "quota-exceeded";
    case SessionOutcome::Crashed:
      return "crashed";
    case SessionOutcome::Deadlocked:
      return "deadlocked";
    case SessionOutcome::Preempted:
      return "preempted";
    case SessionOutcome::Failed:
      return "failed";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

/// The containment boundary of one execution attempt (see the header
/// comment). Shared by every processor thread of the attempt: the step
/// hook and the fabric send hook call into it concurrently.
///
/// Breach protocol: the first thread to detect any breach wins a CAS,
/// records which quota fell, wakes every parked peer out of await/barrier
/// (the watchdog's abort mechanism, reused as a cancellation point), and
/// throws QuotaExceeded. Every other thread sees the breached flag at its
/// next statement (or send) and throws too, so the whole session unwinds
/// within one statement per processor. Parked peers surface as
/// DeadlockError — which is why the session classifies its outcome by
/// breached(), not by which exception type won the SPMD aggregation.
class SessionScope {
 public:
  SessionScope(const Quotas& q, Clock::time_point sessionStart,
               std::uint64_t preemptAfterSteps = 0)
      : quotas_(q), preemptAfter_(preemptAfterSteps) {
    if (q.wallBudgetMs > 0)
      deadline_ = sessionStart + std::chrono::milliseconds(q.wallBudgetMs);
  }

  /// Bind the attempt's interpreter so a breach can reach its runtime to
  /// cancel parked peers. Must be called before run().
  void attach(interp::Interpreter* in) { interp_ = in; }

  void onStep(rt::Proc& proc) {
    if (breached_.load(std::memory_order_acquire)) throwCancelled();
    const std::uint64_t steps =
        steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Preemption pressure: unlike a breach, this is a graceful unwind —
    // the runtime checkpoints at the statement-boundary cut and the
    // session is spilled for later resume, not failed.
    if (preemptAfter_ != 0 && steps > preemptAfter_ &&
        !preemptRequested_.exchange(true, std::memory_order_acq_rel))
      interp_->runtime().requestPreempt();
    if (quotas_.maxSteps != 0 && steps > quotas_.maxSteps)
      breach("steps", "logical step budget of " +
                          std::to_string(quotas_.maxSteps) + " exhausted");
    // Wall clock and table residency are sampled, not checked per step:
    // both move slowly relative to statements and the syscalls/locks are
    // too expensive for the hot loop.
    if ((steps & 63u) == 0u) {
      if (quotas_.wallBudgetMs > 0 && Clock::now() > deadline_)
        breach("wall-time", "wall-clock budget of " +
                                std::to_string(quotas_.wallBudgetMs) +
                                " ms exhausted");
      if (quotas_.maxResidentBytes != 0) {
        const std::size_t resident = proc.table().residentBytes();
        if (resident > quotas_.maxResidentBytes)
          breach("memory",
                 "p" + std::to_string(proc.table().pid()) + " holds " +
                     std::to_string(resident) + " resident bytes (limit " +
                     std::to_string(quotas_.maxResidentBytes) + ")");
      }
    }
  }

  /// Fabric send hook; runs before the send changes any fabric state, so
  /// a rejected send costs the session nothing.
  void onSend(int /*src*/, std::size_t bytes) {
    if (breached_.load(std::memory_order_acquire)) throwCancelled();
    const std::uint64_t msgs =
        msgs_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t sent =
        sentBytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (quotas_.maxMessages != 0 && msgs > quotas_.maxMessages)
      breach("messages", "message budget of " +
                             std::to_string(quotas_.maxMessages) +
                             " exhausted");
    if (quotas_.maxSendBytes != 0 && sent > quotas_.maxSendBytes)
      breach("send-bytes", "payload budget of " +
                               std::to_string(quotas_.maxSendBytes) +
                               " bytes exhausted");
  }

  bool breached() const { return breached_.load(std::memory_order_acquire); }
  /// The quota that fell ("" if none). Valid once the run has joined.
  const char* resource() const {
    const char* r = resource_.load(std::memory_order_acquire);
    return r ? r : "";
  }

 private:
  [[noreturn]] void breach(const char* resource, std::string detail) {
    bool expected = false;
    if (breached_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      resource_.store(resource, std::memory_order_release);
      if (interp_) {
        auto& rt = interp_->runtime();
        std::string summary =
            "session quota exceeded [" + std::string(resource) + "]";
        auto report = std::make_shared<const std::string>(detail);
        for (int p = 0; p < rt.nprocs(); ++p)
          rt.table(p).abortWaits(summary, report);
        rt.fabric().abortBlockedOps(summary, report);
      }
    }
    throw QuotaExceeded(resource, std::move(detail));
  }

  [[noreturn]] void throwCancelled() {
    const char* r = resource_.load(std::memory_order_acquire);
    throw QuotaExceeded(r ? r : "cancelled",
                        "session cancelled after quota breach");
  }

  const Quotas quotas_;
  const std::uint64_t preemptAfter_;
  Clock::time_point deadline_{};
  interp::Interpreter* interp_ = nullptr;

  std::atomic<bool> preemptRequested_{false};
  std::atomic<bool> breached_{false};
  std::atomic<const char*> resource_{nullptr};
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> msgs_{0};
  std::atomic<std::uint64_t> sentBytes_{0};
};

/// FNV-1a over every declared array's final contents, gathered into the
/// global Fortran order — canonical with respect to how ownership happens
/// to be segmented, so two runs that computed the same values digest
/// identically even if their segment descriptors differ.
std::uint64_t digestState(rt::Runtime& rt) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::byte* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(std::to_integer<unsigned>(p[i]));
      h *= 1099511628211ULL;
    }
  };
  std::vector<std::byte> buf;
  std::vector<std::byte> seg;
  for (const auto& d : rt.decls()) {
    const std::size_t esz = rt::elemSize(d.type);
    buf.assign(static_cast<std::size_t>(d.global.count()) * esz,
               std::byte{0});
    for (int p = 0; p < rt.nprocs(); ++p) {
      for (const auto& sg : rt.table(p).segments(d.index)) {
        if (sg.status != rt::SegState::Accessible) continue;
        seg.resize(static_cast<std::size_t>(sg.count()) * esz);
        rt.table(p).readElems(d.index, sg.bounds, seg.data());
        std::size_t i = 0;
        sg.bounds.forEach([&](const sec::Point& pt) {
          const std::size_t pos =
              static_cast<std::size_t>(d.global.fortranPos(pt));
          std::memcpy(buf.data() + pos * esz, seg.data() + i * esz, esz);
          ++i;
        });
      }
    }
    mix(buf.data(), buf.size());
  }
  return h;
}

/// Retry only helps when a fresh fault stream can make the failure not
/// recur: a transient (lossy/perturbing) plan that produced a deadlock.
/// Crashes, quota breaches, and fault-free deadlocks (program bugs)
/// deterministically recur and are never retried.
bool planIsTransient(const std::optional<net::FaultPlan>& plan) {
  if (!plan.has_value()) return false;
  return plan->dropProb > 0.0 || plan->dupProb > 0.0 ||
         plan->delayProb > 0.0 || plan->reorderProb > 0.0 ||
         !plan->stallPids.empty();
}

/// SplitMix64: the deterministic jitter source for retry backoff.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

SessionReport runSession(const SessionRequest& req, const SessionOptions& opts,
                         std::uint64_t id) {
  const auto sessionStart = Clock::now();
  SessionReport rep;
  rep.id = id;
  rep.name = req.name;

  auto finish = [&](SessionReport& r) -> SessionReport& {
    r.wallMs = std::chrono::duration<double, std::milli>(Clock::now() -
                                                         sessionStart)
                   .count();
    return r;
  };

  // --- front end: parse, optimize, static gate --------------------------
  il::Program prog;
  if (req.program) {
    prog = *req.program;
  } else {
    try {
      prog = il::parseProgram(req.source);
    } catch (const std::exception& e) {
      rep.outcome = SessionOutcome::RejectedParse;
      rep.error = e.what();
      return finish(rep);
    }
  }
  rep.nprocs = prog.nprocs;

  if (req.usePipeline) {
    try {
      opt::PassManager pm;
      for (const auto& p : opt::standardPipeline()) pm.add(p);
      prog = pm.run(prog, nullptr);
    } catch (const std::exception& e) {
      rep.outcome = SessionOutcome::Failed;
      rep.error = e.what();
      return finish(rep);
    }
  }

  if (req.analyze) {
    try {
      analysis::VerifyResult r = analysis::verifyProgram(prog);
      if (r.errors() > 0) {
        rep.outcome = SessionOutcome::RejectedAnalysis;
        rep.error = analysis::formatDiagnostics(prog, r, req.name);
        return finish(rep);
      }
    } catch (const std::exception& e) {
      rep.outcome = SessionOutcome::Failed;
      rep.error = e.what();
      return finish(rep);
    }
  }

  // --- execution attempts ----------------------------------------------
  const int maxAttempts = std::max(1, opts.retry.maxAttempts);
  const bool transient = planIsTransient(req.faultPlan);

  for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
    rep.attempts = attempt;
    if (attempt > 1) {
      int ms = opts.retry.backoffBaseMs << (attempt - 2);
      ms = std::min(std::max(ms, 0), opts.retry.backoffCapMs);
      // Deterministic full jitter (SplitMix64 over session id + attempt):
      // tenants retrying after a shared fault burst spread out instead of
      // re-hitting the fabric in lockstep, and a given (id, attempt)
      // always waits the same time, so chaos runs stay reproducible.
      if (ms > 0)
        ms = 1 + static_cast<int>(
                     splitmix64(id * 0x9E3779B97F4A7C15ULL +
                                static_cast<std::uint64_t>(attempt)) %
                     static_cast<std::uint64_t>(ms));
      if (ms > 0) {
        if (opts.stopLatch) {
          // Shutdown-interruptible: teardown cuts the wait short and the
          // final attempt runs immediately (queued sessions still finish).
          opts.stopLatch->waitFor(ms);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
      }
    }

    rt::RuntimeOptions ropts;
    ropts.debugChecks = opts.debugChecks;
    ropts.costModel = opts.costModel;
    ropts.transport = opts.transport;
    ropts.watchdogMs = opts.watchdogMs;
    ropts.watchdogPollMs = opts.watchdogPollMs;
    if (req.faultPlan.has_value()) {
      ropts.faultPlan = *req.faultPlan;
      // A deterministic plan replays the exact same faults, which would
      // make retry pointless: reseed every attempt after the first.
      if (attempt > 1)
        ropts.faultPlan->seed ^=
            0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt);
    }

    SessionScope scope(req.quotas, sessionStart, req.preemptAfterSteps);
    interp::InterpOptions iopts;
    iopts.splitGuardedLoops = opts.splitGuardedLoops;
    iopts.backend = opts.backend;
    iopts.stepHook = [&scope](rt::Proc& p) { scope.onStep(p); };

    const bool wantCkpt = req.checkpointIntervalSteps > 0 ||
                          req.preemptAfterSteps > 0 || !req.resumeFrom.empty();

    SessionOutcome outcome = SessionOutcome::Completed;
    std::string error;
    try {
      interp::Interpreter interp(prog, ropts, iopts);
      scope.attach(&interp);
      rt::Runtime& rt = interp.runtime();
      rt.fabric().setSendHook(
          [&scope](int src, std::size_t bytes) { scope.onSend(src, bytes); });
      apps::registerFillKernel(interp, req.fillSeed);
      apps::registerFftKernels(interp);
      if (wantCkpt) {
        ckpt::CkptOptions co;
        co.intervalSteps = req.checkpointIntervalSteps;
        rt.enableCheckpointing(co);
        // Snapshot identity: the source text's digest, so a resume into a
        // different program (or a torn spill) is rejected structurally.
        rt.setCkptProgram(
            static_cast<std::uint8_t>(opts.backend),
            req.source.empty()
                ? 0
                : ckpt::fnv1a(
                      reinterpret_cast<const std::byte*>(req.source.data()),
                      req.source.size()));
      }

      bool deadlocked = false;
      try {
        if (!req.resumeFrom.empty()) {
          // Restore inside the attempt boundary: a defective spill file
          // surfaces as a contained session failure, never a throw.
          SpillFile sp = readSpillFile(req.resumeFrom);
          rt.restoreFrom(ckpt::decodeSnapshot(sp.snapshot));
          rep.recovery.resumed = true;
        }
        interp.run();
      } catch (const DeadlockError& e) {
        deadlocked = true;
        error = e.summary();
      } catch (const std::exception& e) {
        error = e.what();
      }

      // Final-attempt accounting (overwritten by any later attempt).
      rep.stats = interp.totalStats();
      net::Fabric& fab = rt.fabric();
      rep.net = fab.totalStats();
      rep.faults = fab.faultStats();
      rep.makespan = fab.makespan();
      rep.residentBytesAtTeardown = 0;
      for (int p = 0; p < rt.nprocs(); ++p)
        rep.residentBytesAtTeardown += rt.table(p).residentBytes();
      if (rt.checkpointingEnabled()) {
        rep.recovery.recoveries = rt.recoveries();
        if (const auto* st = rt.ckptStore()) {
          rep.recovery.snapshots = st->stats().snapshots;
          rep.recovery.snapshotBytes = st->stats().lastBytes;
          rep.recovery.snapshotRecords = st->stats().lastRecords;
          rep.recovery.fallbacks = st->stats().fallbacks;
        }
      }

      if (error.empty() && !deadlocked && rt.preempted()) {
        outcome = SessionOutcome::Preempted;
        ckpt::Snapshot snap = rt.takePreemptSnapshot();
        if (!opts.spillDir.empty() && !req.source.empty()) {
          SpillFile sp;
          sp.id = id;
          sp.name = req.name;
          sp.fillSeed = req.fillSeed;
          sp.usePipeline = req.usePipeline;
          sp.analyze = req.analyze;
          sp.checkpointIntervalSteps = req.checkpointIntervalSteps;
          sp.backend = static_cast<std::uint8_t>(opts.backend);
          sp.source = req.source;
          sp.snapshot = ckpt::encodeSnapshot(snap);
          rep.recovery.spillPath = spillFilePath(opts.spillDir, id, req.name);
          writeSpillFile(rep.recovery.spillPath, sp);
        }
      } else if (error.empty() && !deadlocked) {
        outcome = SessionOutcome::Completed;
        rep.resultDigest = digestState(rt);
      } else if (scope.breached()) {
        // Parked peers woken by the breach surface as DeadlockError and
        // win the SPMD aggregation; the scope knows better.
        outcome = SessionOutcome::QuotaExceeded;
        rep.quotaResource = scope.resource();
      } else if (rep.faults.crashed > 0) {
        outcome = SessionOutcome::Crashed;
      } else if (deadlocked) {
        outcome = SessionOutcome::Deadlocked;
      } else {
        outcome = SessionOutcome::Failed;
      }

      // Teardown reclamation, success or not: drain the session fabric
      // and re-check that nothing survived the drain.
      rep.drained = fab.drain();
      rep.hygieneClean = fab.undeliveredCount() == 0 &&
                         fab.pendingReceiveCount() == 0 &&
                         fab.heldFaultCount() == 0;
    } catch (const std::exception& e) {
      // Interpreter construction (bad program semantics) — nothing ran.
      outcome = SessionOutcome::Failed;
      error = e.what();
      rep.hygieneClean = true;
    }

    rep.outcome = outcome;
    rep.error = error;

    if (outcome == SessionOutcome::Completed) break;
    if (outcome == SessionOutcome::Deadlocked && transient &&
        attempt < maxAttempts)
      continue;  // transient faults absorbed by retry
    break;
  }

  // A resumed session that ran to completion consumes its spill file, so
  // re-admission is exactly-once across server restarts.
  if (rep.outcome == SessionOutcome::Completed && !req.resumeFrom.empty())
    std::remove(req.resumeFrom.c_str());

  return finish(rep);
}

// --- preemption spill files ---------------------------------------------

namespace {
constexpr char kSpillMagic[8] = {'X', 'D', 'P', 'S', 'P', 'I', 'L', '1'};
}  // namespace

std::string spillFilePath(const std::string& dir, std::uint64_t id,
                          const std::string& name) {
  std::string safe;
  safe.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    safe.push_back(ok ? c : '_');
  }
  return dir + "/" + safe + "-" + std::to_string(id) + ".xdpspill";
}

void writeSpillFile(const std::string& path, const SpillFile& s) {
  ckpt::Writer w;
  for (char c : kSpillMagic) w.u8(static_cast<std::uint8_t>(c));
  w.str(s.name);
  w.u64(s.id);
  w.u64(s.fillSeed);
  w.boolean(s.usePipeline);
  w.boolean(s.analyze);
  w.u64(s.checkpointIntervalSteps);
  w.u8(s.backend);
  w.str(s.source);
  w.bytes(s.snapshot);
  const std::uint64_t sum = ckpt::fnv1a(w.buffer());
  w.u64(sum);
  ckpt::saveSnapshotFile(path, w.buffer());
}

SpillFile readSpillFile(const std::string& path) {
  const std::vector<std::byte> buf = ckpt::loadSnapshotFile(path);
  if (buf.size() < sizeof(kSpillMagic) + 8)
    throw ckpt::CkptError("spill file too short: " + path);
  if (std::memcmp(buf.data(), kSpillMagic, sizeof(kSpillMagic)) != 0)
    throw ckpt::CkptError("not a spill file (bad magic): " + path);
  const std::size_t body = buf.size() - 8;
  ckpt::Reader trailer(buf.data() + body, 8);
  if (trailer.u64() != ckpt::fnv1a(buf.data(), body))
    throw ckpt::CkptError("spill file checksum mismatch (torn write?): " +
                          path);
  ckpt::Reader r(buf.data() + sizeof(kSpillMagic),
                 body - sizeof(kSpillMagic));
  SpillFile s;
  s.name = r.str();
  s.id = r.u64();
  s.fillSeed = r.u64();
  s.usePipeline = r.boolean();
  s.analyze = r.boolean();
  s.checkpointIntervalSteps = r.u64();
  s.backend = r.u8();
  s.source = r.str();
  s.snapshot = r.bytes();
  if (!r.atEnd())
    throw ckpt::CkptError("spill file has trailing bytes: " + path);
  return s;
}

}  // namespace xdp::serve
