// Delayed communication binding (paper section 3.2): "it may be useful for
// optimizations (and essential for code generation) to annotate an XDP
// send statement with the id of the receiving processor".
//
// Until this pass runs, unspecified sends route through the run-time
// matchmaker (an extra control hop). Binding uses two sources, both parts
// of the auxiliary send<->receive link structure:
//
//   1. A bindHint recorded by the pass that created the transfer pair
//      (e.g. message vectorization knows peer q posts the receive).
//   2. The linked receive's enclosing iown(A, lsec) guard: the processor
//      that executes the receive is exactly the owner of lsec, and
//      distributions are compile-time known, so the sender can evaluate
//      owner(A[lsec]) locally. This is the owner-computes case of the
//      lowered form.
#include <map>

#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::DestSpec;
using il::ExprKind;
using il::Program;
using il::SectionExprPtr;
using il::Stmt;
using il::StmtKind;
using il::StmtPtr;

struct RecvGuard {
  int sym = -1;
  SectionExprPtr section;
};

}  // namespace

Program commBinding(const Program& prog) {
  // Map link id -> the iown() guard enclosing the linked receive.
  std::map<int, RecvGuard> guards;
  std::function<void(const StmtPtr&, const StmtPtr&)> scan =
      [&](const StmtPtr& s, const StmtPtr& guard) {
        if (!s) return;
        const StmtPtr& g = (s->kind == StmtKind::Guarded &&
                            s->rule->kind == ExprKind::Iown)
                               ? s
                               : guard;
        for (const auto& c : s->stmts) scan(c, g);
        if (s->body) scan(s->body, g);
        if ((s->kind == StmtKind::RecvData || s->kind == StmtKind::RecvOwn) &&
            s->linkId >= 0 && g)
          guards[s->linkId] = RecvGuard{g->rule->sym, g->rule->section};
      };
  scan(prog.body, nullptr);

  Program out = prog;
  out.body = rewriteStmts(
      prog.body, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        if (s->kind != StmtKind::SendData && s->kind != StmtKind::SendOwn)
          return std::nullopt;
        if (s->dest.kind != DestSpec::Kind::None) return std::nullopt;
        if (s->bindHint) {
          return il::withDest(s, DestSpec::toPids({s->bindHint}));
        }
        if (s->linkId >= 0) {
          auto it = guards.find(s->linkId);
          if (it != guards.end())
            return il::withDest(
                s, DestSpec::ownerOf(it->second.sym, it->second.section));
        }
        return std::nullopt;
      });
  return out;
}

}  // namespace xdp::opt
