// Owner-computes lowering — the translation shown in the paper's
// section 2.2:
//
//   do i = 1, n                      do i = 1, n
//     A[i] = A[i] + B[i]     ==>       iown(B[i]) : { B[i] -> }
//   enddo                              iown(A[i]) : {
//                                        T[mypid] <- B[i]
//                                        await(T[mypid])
//                                        A[i] = A[i] + T[mypid]
//                                      }
//                                    enddo
//
// Every remote-able rhs operand gets a per-processor temporary T (a
// [0:P-1] array block-distributed so T[mypid] is local everywhere), a
// send guarded by the operand's owner, and a linked receive in the lhs
// owner's guard. Operands that are syntactically the lhs itself stay
// local — their locality is the definition of owner-computes.
#include <vector>

#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"
#include "xdp/support/check.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SectionExprPtr;
using il::Stmt;
using il::StmtKind;
using il::StmtPtr;

struct RemoteRef {
  int sym;
  SectionExprPtr section;
  int tempSym;
  int link;
};

class Lowerer {
 public:
  explicit Lowerer(Program& prog) : prog_(prog) {}

  StmtPtr lower(const StmtPtr& s, bool inGuard) {
    if (!s) return s;
    switch (s->kind) {
      case StmtKind::Block: {
        std::vector<StmtPtr> out;
        for (const auto& c : s->stmts) {
          StmtPtr r = lower(c, inGuard);
          if (r->kind == StmtKind::Block && c->kind != StmtKind::Block) {
            // Splice an assignment's expansion into the enclosing block so
            // downstream passes see the canonical flat shape.
            out.insert(out.end(), r->stmts.begin(), r->stmts.end());
          } else {
            out.push_back(std::move(r));
          }
        }
        return il::block(std::move(out));
      }
      case StmtKind::For:
        return il::withBody(s, lower(s->body, inGuard));
      case StmtKind::Guarded:
        return il::withBody(s, lower(s->body, /*inGuard=*/true));
      case StmtKind::ElemAssign:
        return inGuard ? s : lowerAssign(s);
      default:
        return s;
    }
  }

 private:
  StmtPtr lowerAssign(const StmtPtr& s) {
    // Collect distinct remote-able rhs element references.
    std::vector<RemoteRef> refs;
    rewriteExpr(s->rhs, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
      if (e->kind != ExprKind::Elem) return std::nullopt;
      if (e->sym == s->sym && il::sameSectionExpr(e->section, s->lhs))
        return std::nullopt;  // the lhs itself: local by owner-computes
      for (const auto& r : refs)
        if (r.sym == e->sym && il::sameSectionExpr(r.section, e->section))
          return std::nullopt;  // deduplicate
      RemoteRef r;
      r.sym = e->sym;
      r.section = e->section;
      r.tempSym = makeTemp();
      r.link = prog_.freshLink();
      refs.push_back(std::move(r));
      return std::nullopt;
    });

    if (refs.empty())
      return il::guarded(il::iown(s->sym, s->lhs), il::block({s}));

    std::vector<StmtPtr> result;
    std::vector<StmtPtr> ownerBody;
    SectionExprPtr tmypid = il::secPoint({il::mypid()});
    ExprPtr rhs = s->rhs;
    for (const auto& r : refs) {
      // iown(B[i]) : { B[i] -> }
      result.push_back(il::guarded(
          il::iown(r.sym, r.section),
          il::block({il::sendData(r.sym, r.section, il::DestSpec::none(),
                                  r.link)})));
      // T[mypid] <- B[i] ; await(T[mypid])
      ownerBody.push_back(
          il::recvData(r.tempSym, tmypid, r.sym, r.section, r.link));
      ownerBody.push_back(il::awaitStmt(r.tempSym, tmypid));
      // rhs: B[i] -> T[mypid]
      rhs = rewriteExpr(rhs, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
        if (e->kind == ExprKind::Elem && e->sym == r.sym &&
            il::sameSectionExpr(e->section, r.section))
          return il::elem(r.tempSym, tmypid);
        return std::nullopt;
      });
    }
    ownerBody.push_back(il::elemAssign(s->sym, s->lhs, rhs));
    result.push_back(
        il::guarded(il::iown(s->sym, s->lhs), il::block(std::move(ownerBody))));
    return il::block(std::move(result));
  }

  int makeTemp() {
    while (prog_.findSymbol("T" + std::to_string(tempCount_)) >= 0)
      ++tempCount_;
    il::ArrayDecl d;
    d.name = "T" + std::to_string(tempCount_++);
    d.type = rt::ElemType::F64;
    d.global = sec::Section{sec::Triplet(0, prog_.nprocs - 1)};
    d.dist = dist::Distribution(d.global,
                                {dist::DimSpec::block(prog_.nprocs)});
    return prog_.addArray(std::move(d));
  }

  Program& prog_;
  int tempCount_ = 0;
};

}  // namespace

Program lowerOwnerComputes(const Program& prog) {
  Program out = prog;
  Lowerer lw(out);
  out.body = lw.lower(prog.body, /*inGuard=*/false);
  return out;
}

}  // namespace xdp::opt
