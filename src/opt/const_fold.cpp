// Constant folding and guard simplification — the "existing optimizations"
// side of the paper's key idea 2: because XDP transfers and guards live in
// an ordinary IL, ordinary scalar optimizations apply to them unchanged.
// Folding also cleans up the arithmetic residue other passes leave behind
// (compute-rule elimination's `max(1, 1 + mypid*2)` bounds, vectorization's
// `q != mypid && nonempty(...)` guards with constant q, ...).
//
//   * integer/real/boolean operators over constant operands fold;
//   * `true && x` => x, `false && x` => false, `x || true` => true, ...;
//   * `!true` => false; double negation drops;
//   * a Guarded whose rule folds to true is replaced by its body, and one
//     whose rule folds to false is deleted (compute rules have no side
//     effects — paper section 2.4 — so this is always sound);
//   * a For whose constant bounds are empty (lb > ub) is deleted.
#include <cmath>

#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"
#include "xdp/support/arith.hpp"

namespace xdp::opt {
namespace {

using il::BinOp;
using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::StmtKind;
using il::StmtPtr;

bool isIntK(const ExprPtr& e) { return e && e->kind == ExprKind::IntConst; }
bool isRealK(const ExprPtr& e) { return e && e->kind == ExprKind::RealConst; }
bool isConst(const ExprPtr& e) { return isIntK(e) || isRealK(e); }
double asReal(const ExprPtr& e) {
  return isIntK(e) ? static_cast<double>(e->intVal) : e->realVal;
}
bool truthOf(const ExprPtr& e) {
  return isIntK(e) ? e->intVal != 0 : e->realVal != 0.0;
}
ExprPtr boolConst(bool b) { return il::intConst(b ? 1 : 0); }

/// Known constant truth value of e, if it has one.
std::optional<bool> knownTruth(const ExprPtr& e) {
  if (!isConst(e)) return std::nullopt;
  return truthOf(e);
}

std::optional<ExprPtr> foldBin(const ExprPtr& e) {
  const ExprPtr& a = e->lhs;
  const ExprPtr& b = e->rhs;
  // Logical identities work with one constant side.
  if (e->op == BinOp::And) {
    if (auto t = knownTruth(a)) return *t ? b : boolConst(false);
    if (auto t = knownTruth(b)) return *t ? a : boolConst(false);
    return std::nullopt;
  }
  if (e->op == BinOp::Or) {
    if (auto t = knownTruth(a)) return *t ? boolConst(true) : b;
    if (auto t = knownTruth(b)) return *t ? boolConst(true) : a;
    return std::nullopt;
  }
  if (!isConst(a) || !isConst(b)) return std::nullopt;
  const bool bothInt = isIntK(a) && isIntK(b);
  auto intOut = [&](sec::Index v) { return il::intConst(v); };
  auto realOut = [&](double v) { return il::realConst(v); };
  switch (e->op) {
    // Integer +,-,*,neg fold with the same wrap-mod-2^64 semantics both
    // execution backends use (xdp/support/arith.hpp); trapping divisions
    // (divisor 0, INT64_MIN / -1) are left for the runtime so folding
    // never raises a fault on a path the program doesn't execute.
    case BinOp::Add:
      return bothInt ? intOut(arith::wrapAdd(a->intVal, b->intVal))
                     : realOut(asReal(a) + asReal(b));
    case BinOp::Sub:
      return bothInt ? intOut(arith::wrapSub(a->intVal, b->intVal))
                     : realOut(asReal(a) - asReal(b));
    case BinOp::Mul:
      return bothInt ? intOut(arith::wrapMul(a->intVal, b->intVal))
                     : realOut(asReal(a) * asReal(b));
    case BinOp::Div: {
      if (bothInt) {
        if (auto q = arith::tryFoldDiv(a->intVal, b->intVal)) return intOut(*q);
        return std::nullopt;  // leave for runtime error
      }
      if (asReal(b) == 0.0) return std::nullopt;
      return realOut(asReal(a) / asReal(b));
    }
    case BinOp::Mod: {
      if (!bothInt) return std::nullopt;
      if (auto r = arith::tryFoldMod(a->intVal, b->intVal)) return intOut(*r);
      return std::nullopt;
    }
    case BinOp::Lt:
      return boolConst(asReal(a) < asReal(b));
    case BinOp::Le:
      return boolConst(asReal(a) <= asReal(b));
    case BinOp::Gt:
      return boolConst(asReal(a) > asReal(b));
    case BinOp::Ge:
      return boolConst(asReal(a) >= asReal(b));
    case BinOp::Eq:
      return boolConst(asReal(a) == asReal(b));
    case BinOp::Ne:
      return boolConst(asReal(a) != asReal(b));
    case BinOp::Min:
      return bothInt ? intOut(std::min(a->intVal, b->intVal))
                     : realOut(std::min(asReal(a), asReal(b)));
    case BinOp::Max:
      return bothInt ? intOut(std::max(a->intVal, b->intVal))
                     : realOut(std::max(asReal(a), asReal(b)));
    case BinOp::And:
    case BinOp::Or:
      break;
  }
  return std::nullopt;
}

std::optional<ExprPtr> foldExpr(const ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::Bin:
      return foldBin(e);
    case ExprKind::Neg:
      if (isIntK(e->lhs)) return il::intConst(arith::wrapNeg(e->lhs->intVal));
      if (isRealK(e->lhs)) return il::realConst(-e->lhs->realVal);
      if (e->lhs->kind == ExprKind::Neg) return e->lhs->lhs;  // --x => x
      return std::nullopt;
    case ExprKind::Not:
      if (auto t = knownTruth(e->lhs)) return boolConst(!*t);
      if (e->lhs->kind == ExprKind::Not) return e->lhs->lhs;  // !!x => x
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace

Program constantFolding(const Program& prog) {
  Program out = prog;
  StmtPtr folded = rewriteExprsInStmts(prog.body, foldExpr);
  // Guard and loop cleanup on the folded tree.
  out.body = rewriteStmts(
      folded, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        if (s->kind == StmtKind::Guarded) {
          if (auto t = knownTruth(s->rule))
            return *t ? s->body : StmtPtr(nullptr);
          return std::nullopt;
        }
        if (s->kind == StmtKind::For && !s->step && isIntK(s->lb) &&
            isIntK(s->ub) && s->lb->intVal > s->ub->intVal)
          return StmtPtr(nullptr);  // statically empty loop
        return std::nullopt;
      });
  return out;
}

}  // namespace xdp::opt
