// See auto_place.hpp. The search is a plain cross product: per-array
// candidate lists (original spec first), mixed-radix enumeration across
// arrays, one static scoring per candidate. Candidate counts are tiny —
// the placement space of a program with a handful of rank-1/2 arrays is
// a few hundred points — so exhaustive beats clever here, and the cap in
// AutoPlaceOptions keeps adversarial inputs bounded.
#include "xdp/opt/auto_place.hpp"

#include <algorithm>

#include "xdp/analysis/cost.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::opt {
namespace {

using sec::Index;

std::vector<dist::Distribution> candidatesFor(const il::ArrayDecl& decl,
                                              const AutoPlaceOptions& opts) {
  const dist::Distribution& d0 = decl.dist;
  std::vector<std::vector<dist::DimSpec>> dimOpts;
  for (int dim = 0; dim < d0.rank(); ++dim) {
    const dist::DimSpec& orig = d0.specs()[static_cast<std::size_t>(dim)];
    std::vector<dist::DimSpec> o{orig};
    if (orig.kind != dist::DistKind::Collapsed) {
      auto push = [&o](dist::DimSpec cand) {
        if (std::find(o.begin(), o.end(), cand) == o.end())
          o.push_back(cand);
      };
      const int p = orig.procs;
      const Index n = d0.global().dim(dim).count();
      const Index cap = (n + p - 1) / p;  // the §10.2 family cap
      push(dist::DimSpec::block(p));
      push(dist::DimSpec::cyclic(p));
      for (Index b : opts.blockSizes)
        if (b > 1 && b <= cap) push(dist::DimSpec::blockCyclic(p, b));
    }
    dimOpts.push_back(std::move(o));
  }
  std::vector<dist::Distribution> out;
  std::vector<std::size_t> idx(dimOpts.size(), 0);
  while (true) {
    std::vector<dist::DimSpec> specs;
    specs.reserve(dimOpts.size());
    for (std::size_t d = 0; d < dimOpts.size(); ++d)
      specs.push_back(dimOpts[d][idx[d]]);
    out.emplace_back(d0.global(), std::move(specs));
    std::size_t d = 0;
    for (; d < idx.size(); ++d) {
      if (++idx[d] < dimOpts[d].size()) break;
      idx[d] = 0;
    }
    if (d == idx.size()) break;
  }
  return out;
}

il::Program withDists(const il::Program& prog,
                      const std::vector<dist::Distribution>& dists) {
  il::Program cand = prog;
  for (std::size_t i = 0; i < dists.size(); ++i) {
    il::ArrayDecl& a = cand.arrays[i];
    if (a.dist == dists[i]) continue;
    a.dist = dists[i];
    // The segmentation hint was chosen for the old partition shape; let
    // the runtime fall back to whole-part segments under the new one.
    a.segShape = dist::SegmentShape::whole();
  }
  return cand;
}

il::Program lowerForScoring(const il::Program& prog) {
  PassManager pm;
  for (const Pass& p : standardPipeline()) pm.add(p.name, p.fn);
  return pm.run(prog, nullptr);
}

}  // namespace

double AutoPlaceResult::pctOfOptimal() const {
  if (best.bytes <= 0) return lowerBound <= 0 ? 100.0 : 0.0;
  const double p = 100.0 * static_cast<double>(lowerBound) /
                   static_cast<double>(best.bytes);
  return p > 100.0 ? 100.0 : p;
}

AutoPlaceResult autoPlace(const il::Program& prog,
                          const AutoPlaceOptions& opts) {
  std::vector<std::vector<dist::Distribution>> perArray;
  perArray.reserve(prog.arrays.size());
  for (const il::ArrayDecl& a : prog.arrays)
    perArray.push_back(candidatesFor(a, opts));

  AutoPlaceResult res;
  res.program = prog;
  std::vector<std::size_t> idx(perArray.size(), 0);
  bool first = true;
  while (res.candidatesTried < opts.maxCandidates) {
    PlacementScore score;
    score.dists.reserve(perArray.size());
    for (std::size_t a = 0; a < perArray.size(); ++a)
      score.dists.push_back(perArray[a][idx[a]]);
    il::Program cand = withDists(prog, score.dists);
    try {
      il::Program lowered = opts.pipeline ? lowerForScoring(cand) : cand;
      analysis::VerifyResult vr = analysis::verifyProgram(lowered);
      analysis::CostReport cr = first
                                    ? analysis::analyzeCost(lowered, prog)
                                    : analysis::analyzeCost(lowered);
      score.valid = vr.errors() == 0 && cr.exact;
      score.bytes = cr.bytesMoved;
      score.messages = cr.messages;
      if (first) res.lowerBound = cr.lowerBound();
    } catch (const std::exception&) {
      score.valid = false;  // a pass or the cost model rejected the shape
    }
    res.candidatesTried += 1;
    if (score.valid) res.candidatesValid += 1;
    const bool better =
        score.valid &&
        (!res.best.valid || score.bytes < res.best.bytes ||
         (score.bytes == res.best.bytes &&
          score.messages < res.best.messages));
    if (first) {
      res.original = score;
      res.best = score;
    } else if (better) {
      res.best = score;
    }
    first = false;
    std::size_t a = 0;
    for (; a < idx.size(); ++a) {
      if (++idx[a] < perArray[a].size()) break;
      idx[a] = 0;
    }
    if (a == idx.size()) break;
  }
  if (res.best.valid) res.program = withDists(prog, res.best.dists);
  return res;
}

}  // namespace xdp::opt
