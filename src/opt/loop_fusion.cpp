// Loop fusion (paper section 4): fusing the FFT compute loop with the
// redistribution send loop pipelines the ownership transfer — each line's
// "-=>"" is initiated as soon as that line's fft1D finishes, overlapping
// transfer latency with the remaining computation.
//
// We fuse adjacent For statements with structurally identical headers
// (lb/ub/step). The paper's legality condition — "between any -=> and its
// corresponding <=- operation, no ownership queries are performed on the
// associated data, and these data are not accessed by computation in the
// interim" — is discharged syntactically: for every symbol referenced by
// both bodies, every reference must be a literal section carrying the loop
// variable as a single-point subscript in one common dimension, which
// makes the per-iteration footprints of distinct iterations disjoint. Then
// reordering across iterations touches disjoint data, and within one fused
// iteration the original statement order is preserved.
#include <map>
#include <set>

#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SecExprKind;
using il::SectionExprPtr;
using il::StmtKind;
using il::StmtPtr;

bool sameHeader(const StmtPtr& a, const StmtPtr& b) {
  if (a->kind != StmtKind::For || b->kind != StmtKind::For) return false;
  if (!il::sameExpr(a->lb, b->lb) || !il::sameExpr(a->ub, b->ub)) return false;
  if (!a->step != !b->step) return false;
  if (a->step && !il::sameExpr(a->step, b->step)) return false;
  return true;
}

bool exprMentionsVar(const ExprPtr& e, const std::string& var) {
  if (!e) return false;
  bool found = false;
  rewriteExpr(e, [&](const ExprPtr& x) -> std::optional<ExprPtr> {
    if (x->kind == ExprKind::ScalarRef && x->name == var) found = true;
    return std::nullopt;
  });
  return found;
}

// Footprint lattice value for one section reference w.r.t. the loop var:
//   kVarFree (-2): the section does not depend on the loop variable.
//   d >= 0       : footprint confined to the single-point plane `var` in
//                  dimension d — distinct iterations touch disjoint data.
//   kBad (-1)    : var used in a way we cannot bound.
constexpr int kBad = -1;
constexpr int kVarFree = -2;

int varDimOfSection(const SectionExprPtr& s, const std::string& var) {
  if (!s) return kVarFree;
  switch (s->kind) {
    case SecExprKind::Literal: {
      int dim = kVarFree;
      for (std::size_t d = 0; d < s->dims.size(); ++d) {
        const auto& t = s->dims[d];
        const bool isVarPoint = t.lb && t.lb->kind == ExprKind::ScalarRef &&
                                t.lb->name == var && !t.ub && !t.stride;
        if (isVarPoint) {
          if (dim >= 0) return kBad;  // var points in two dimensions
          dim = static_cast<int>(d);
          continue;
        }
        if (exprMentionsVar(t.lb, var) || exprMentionsVar(t.ub, var) ||
            exprMentionsVar(t.stride, var))
          return kBad;  // var in a non-point position
      }
      return dim;
    }
    case SecExprKind::LocalPart:
      return kVarFree;
    case SecExprKind::OwnerPart:
      return exprMentionsVar(s->pid, var) ? kBad : kVarFree;
    case SecExprKind::Intersect: {
      // The intersection's footprint is within each side's footprint, so
      // one var-point side bounds it even if the other is var-free.
      int da = varDimOfSection(s->a, var);
      int db = varDimOfSection(s->b, var);
      if (da == kBad || db == kBad) return kBad;
      if (da == kVarFree) return db;
      if (db == kVarFree) return da;
      return da == db ? da : kBad;
    }
  }
  return kBad;
}

/// Merge footprint values of all references to one symbol.
int mergeDim(int x, int y) {
  if (x == kVarFree) return y;
  if (y == kVarFree) return x;
  return x == y ? x : kBad;
}

void collectVarDims(const StmtPtr& body, const std::string& var,
                    std::map<int, int>& dims) {
  auto consider = [&](int sym, const SectionExprPtr& s) {
    if (sym < 0 || !s) return;
    int dim = varDimOfSection(s, var);
    auto it = dims.find(sym);
    if (it == dims.end())
      dims[sym] = dim;
    else
      it->second = mergeDim(it->second, dim);
  };
  visitStmts(body, [&](const StmtPtr& s) {
    consider(s->sym, s->lhs);
    consider(s->sym2, s->sec2);
    for (const auto& [sym, se] : s->args) consider(sym, se);
  });
  // Expression-embedded references (guards, rhs).
  rewriteExprsInStmts(body, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
    if (e->section) consider(e->sym, e->section);
    return std::nullopt;
  });
}

std::set<int> ownershipSyms(const StmtPtr& body) {
  std::set<int> syms;
  visitStmts(body, [&](const StmtPtr& s) {
    if (s->kind == StmtKind::SendOwn || s->kind == StmtKind::RecvOwn)
      syms.insert(s->sym);
  });
  return syms;
}

std::set<int> awaitSyms(const StmtPtr& body) {
  std::set<int> syms;
  visitStmts(body, [&](const StmtPtr& s) {
    if (s->kind == StmtKind::Await) syms.insert(s->sym);
  });
  rewriteExprsInStmts(body, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
    if (e->kind == ExprKind::Await) syms.insert(e->sym);
    return std::nullopt;
  });
  return syms;
}

bool canFuse(const StmtPtr& a, const StmtPtr& b) {
  // Never pull a consumer's synchronization into the producer loop: if one
  // body awaits a symbol whose ownership the other body transfers, fusing
  // would make each iteration block on every peer's progress, serializing
  // the very pipeline fusion is meant to create (the paper fuses the FFT
  // compute loop with the send loop but leaves Loop 4's awaits outside).
  const std::set<int> ownA = ownershipSyms(a->body);
  const std::set<int> ownB = ownershipSyms(b->body);
  for (int s : awaitSyms(b->body))
    if (ownA.count(s)) return false;
  for (int s : awaitSyms(a->body))
    if (ownB.count(s)) return false;

  std::map<int, int> dimsA, dimsB;
  collectVarDims(a->body, a->name, dimsA);
  collectVarDims(b->body, b->name, dimsB);
  for (const auto& [sym, dA] : dimsA) {
    auto it = dimsB.find(sym);
    if (it == dimsB.end()) continue;  // symbol private to loop a
    // Shared symbol: both loops must confine each iteration's footprint to
    // the same var-indexed plane, so reordering across iterations touches
    // disjoint data. (Var-free shared references could alias across
    // iterations; rejected conservatively.)
    if (dA < 0 || it->second != dA) return false;
  }
  return true;
}

}  // namespace

Program loopFusion(const Program& prog) {
  Program out = prog;
  out.body = rewriteStmts(
      prog.body, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        if (s->kind != StmtKind::Block) return std::nullopt;
        std::vector<StmtPtr> result;
        bool changed = false;
        for (const auto& stmt : s->stmts) {
          if (!result.empty() && sameHeader(result.back(), stmt) &&
              canFuse(result.back(), stmt)) {
            const StmtPtr& prev = result.back();
            // Rename the second loop's variable to the first's.
            StmtPtr body2 =
                substituteScalar(stmt->body, stmt->name,
                                 il::scalar(prev->name));
            StmtPtr fusedBody =
                il::block({prev->body, body2});
            result.back() = il::forLoop(prev->name, prev->lb, prev->ub,
                                        fusedBody, prev->step);
            changed = true;
            continue;
          }
          result.push_back(stmt);
        }
        if (!changed) return std::nullopt;
        return il::withStmts(s, std::move(result));
      });
  return out;
}

}  // namespace xdp::opt
