// Single-iteration loop elimination (paper section 4): when each processor
// owns exactly one iteration of a guarded loop, drop the loop and the
// guard, "replacing all references to the loop's induction variable in the
// body of the loop by mypid".
//
// Two guard shapes are recognized:
//
//   1. iown(A[..., p, ...]) with the subscripted dimension BLOCK-
//      distributed with block size 1 over the loop's full range — the
//      paper's FFT case where the array extent equals the processor count.
//
//   2. iown(OwnerPart(A, p)) — "processor p's partition of A" — over
//      p = 0..P-1. Under the declared (initial) distribution each
//      processor owns exactly its own partition, so iteration p runs only
//      on processor p. This is the general-N form of the same idiom.
#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SecExprKind;
using il::SectionExprPtr;
using il::StmtKind;
using il::StmtPtr;
using il::TripletExpr;

bool isIntConst(const ExprPtr& e, sec::Index v) {
  return e && e->kind == ExprKind::IntConst && e->intVal == v;
}

/// The dimension subscripted by the loop variable as a single point (and
/// nowhere else); -1 if the shape differs.
int pointDim(const SectionExprPtr& sec, const std::string& var) {
  if (!sec || sec->kind != SecExprKind::Literal) return -1;
  int dim = -1;
  for (std::size_t d = 0; d < sec->dims.size(); ++d) {
    const TripletExpr& t = sec->dims[d];
    if (t.lb && t.lb->kind == ExprKind::ScalarRef && t.lb->name == var &&
        !t.ub && !t.stride) {
      if (dim >= 0) return -1;
      dim = static_cast<int>(d);
    }
  }
  return dim;
}

}  // namespace

Program singleIterationElimination(const Program& prog) {
  Program out = prog;
  out.body = rewriteStmts(
      prog.body, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        if (s->kind != StmtKind::For || s->step) return std::nullopt;
        StmtPtr g = s->body;
        if (g && g->kind == StmtKind::Block && g->stmts.size() == 1)
          g = g->stmts[0];
        if (!g || g->kind != StmtKind::Guarded ||
            g->rule->kind != ExprKind::Iown)
          return std::nullopt;
        const int sym = g->rule->sym;
        const SectionExprPtr& sec = g->rule->section;
        const dist::Distribution& dist = prog.decl(sym).dist;

        // Shape 2: iown(OwnerPart(A, p)) over p = 0..P-1.
        if (sec && sec->kind == SecExprKind::OwnerPart &&
            !sec->distOverride && sec->pid &&
            sec->pid->kind == ExprKind::ScalarRef &&
            sec->pid->name == s->name && isIntConst(s->lb, 0) &&
            isIntConst(s->ub, dist.nprocs() - 1)) {
          return substituteScalar(g->body, s->name, il::mypid());
        }

        // Shape 1: iown(A[..., p, ...]) with blockSize-1 BLOCK dimension.
        const int d = pointDim(sec, s->name);
        if (d < 0 || d >= dist.rank()) return std::nullopt;
        const dist::DimSpec& spec = dist.specs()[static_cast<unsigned>(d)];
        if (spec.kind != dist::DistKind::Block || dist.blockSizeOf(d) != 1)
          return std::nullopt;
        for (int e = 0; e < dist.rank(); ++e) {
          if (e != d && dist.specs()[static_cast<unsigned>(e)].kind !=
                            dist::DistKind::Collapsed)
            return std::nullopt;  // mypid must be the dimension-d coordinate
        }
        const sec::Triplet& gdim = prog.decl(sym).global.dim(d);
        if (!isIntConst(s->lb, gdim.lb()) || !isIntConst(s->ub, gdim.ub()))
          return std::nullopt;
        return substituteScalar(
            g->body, s->name,
            gdim.lb() == 0 ? il::mypid()
                           : il::add(il::mypid(), il::intConst(gdim.lb())));
      });
  return out;
}

}  // namespace xdp::opt
