#include <set>

#include "xdp/analysis/verifier.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/check.hpp"

namespace xdp::opt {

namespace {

/// Stable identities of a program's verifier *errors*, for before/after
/// comparison across a pass (statement pointers change; kind+message text
/// identifies the violation).
std::set<std::string> errorKeys(const analysis::VerifyResult& r) {
  std::set<std::string> keys;
  for (const analysis::Diagnostic& d : r.diagnostics)
    if (d.severity == analysis::Severity::Error)
      keys.insert(std::string(analysis::kindName(d.kind)) + "#" + d.message);
  return keys;
}

}  // namespace

PassManager& PassManager::add(std::string name, PassFn fn) {
  passes_.push_back(Pass{std::move(name), std::move(fn)});
  return *this;
}

PassManager& PassManager::add(const Pass& pass) {
  passes_.push_back(pass);
  return *this;
}

PassManager& PassManager::verifyEachPass(bool on) {
  verify_ = on;
  return *this;
}

il::Program PassManager::run(const il::Program& prog,
                             std::string* trace) const {
  il::Program cur = prog;
  if (trace) {
    *trace += "=== input ===\n";
    *trace += il::printProgram(cur);
  }
  std::set<std::string> baseline;
  if (verify_) baseline = errorKeys(analysis::verifyProgram(cur));
  for (const Pass& p : passes_) {
    cur = p.fn(cur);
    XDP_CHECK(cur.body != nullptr, "pass '" + p.name + "' dropped the body");
    if (trace) {
      *trace += "=== after " + p.name + " ===\n";
      *trace += il::printProgram(cur);
    }
    if (verify_) {
      analysis::VerifyResult r = analysis::verifyProgram(cur);
      std::string fresh;
      for (const analysis::Diagnostic& d : r.diagnostics) {
        if (d.severity != analysis::Severity::Error) continue;
        std::string key =
            std::string(analysis::kindName(d.kind)) + "#" + d.message;
        if (baseline.count(key)) continue;
        fresh += analysis::formatDiagnostic(cur, d);
        fresh += '\n';
      }
      if (!fresh.empty()) throw PassVerifyError(p.name, fresh);
    }
  }
  return cur;
}

std::vector<Pass> standardPipeline() {
  return {
      {"lower-owner-computes", lowerOwnerComputes},
      {"redundant-transfer-elim", redundantTransferElimination},
      {"dead-array-elim", deadArrayElimination},
      {"message-vectorize", messageVectorization},
      {"compute-rule-elim", computeRuleElimination},
      {"const-fold", constantFolding},
      {"recv-hoisting", recvHoisting},
      {"comm-binding", commBinding},
  };
}

}  // namespace xdp::opt
