#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/check.hpp"

namespace xdp::opt {

PassManager& PassManager::add(std::string name, PassFn fn) {
  passes_.push_back(Pass{std::move(name), std::move(fn)});
  return *this;
}

PassManager& PassManager::add(const Pass& pass) {
  passes_.push_back(pass);
  return *this;
}

il::Program PassManager::run(const il::Program& prog,
                             std::string* trace) const {
  il::Program cur = prog;
  if (trace) {
    *trace += "=== input ===\n";
    *trace += il::printProgram(cur);
  }
  for (const Pass& p : passes_) {
    cur = p.fn(cur);
    XDP_CHECK(cur.body != nullptr, "pass '" + p.name + "' dropped the body");
    if (trace) {
      *trace += "=== after " + p.name + " ===\n";
      *trace += il::printProgram(cur);
    }
  }
  return cur;
}

std::vector<Pass> standardPipeline() {
  return {
      {"lower-owner-computes", lowerOwnerComputes},
      {"redundant-transfer-elim", redundantTransferElimination},
      {"dead-array-elim", deadArrayElimination},
      {"message-vectorize", messageVectorization},
      {"compute-rule-elim", computeRuleElimination},
      {"const-fold", constantFolding},
      {"recv-hoisting", recvHoisting},
      {"comm-binding", commBinding},
  };
}

}  // namespace xdp::opt
