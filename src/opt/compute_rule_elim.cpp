// Compute rule elimination by loop-bounds localization (paper sections 2.4
// and 4): "adjusting the outer loop bounds so that each processor only
// does those iterations for which it owns the data", after which the guard
// always evaluates to true and is removed.
//
// Recognized shape:   do i = lb, ub        (step 1)
//                       iown(A[..., i, ...]) : { body }
//                     enddo
// where the guard section has the loop variable as a single-point
// subscript in exactly one dimension d, every other dimension of A is
// collapsed (so dimension-d ownership is the whole story), and A's
// distribution in d is BLOCK or CYCLIC.
//
// The new bounds are *static* arithmetic over mypid, derived from the
// compile-time-known distribution (paper section 3: "a fixed, known
// processor grid"):
//
//   BLOCK :  do i = max(lb, g0 + mypid*bs), min(ub, g0 + mypid*bs + bs-1)
//   CYCLIC:  do i = lb + ((mypid - (lb - g0)) mod P), ub, P
//
// (g0 = the global lower bound of dimension d, bs = the block size.)
// Static bounds — rather than run-time mylb()/myub() queries — matter
// beyond speed: they describe the loop's *initial* ownership and keep
// meaning that even if a later-fused loop body migrates ownership while
// iterating, exactly the caveat of paper section 3.1 about querying an
// array "undergoing incremental ownership transfer".
#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"
#include "xdp/support/check.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SecExprKind;
using il::SectionExpr;
using il::SectionExprPtr;
using il::StmtKind;
using il::StmtPtr;
using il::TripletExpr;

bool isScalarRef(const ExprPtr& e, const std::string& name) {
  return e && e->kind == ExprKind::ScalarRef && e->name == name;
}

bool mentionsScalar(const ExprPtr& e, const std::string& name) {
  if (!e) return false;
  bool found = false;
  rewriteExpr(e, [&](const ExprPtr& x) -> std::optional<ExprPtr> {
    if (isScalarRef(x, name)) found = true;
    return std::nullopt;
  });
  return found;
}

/// Dimension of `sec` whose subscript is exactly the single point [var],
/// with no other dimension mentioning var. -1 if the shape doesn't match.
int loopVarDim(const SectionExprPtr& sec, const std::string& var) {
  if (!sec || sec->kind != SecExprKind::Literal) return -1;
  int dim = -1;
  for (std::size_t d = 0; d < sec->dims.size(); ++d) {
    const TripletExpr& t = sec->dims[d];
    const bool isVarPoint = isScalarRef(t.lb, var) && !t.ub && !t.stride;
    if (isVarPoint) {
      if (dim >= 0) return -1;  // var appears in two dimensions
      dim = static_cast<int>(d);
      continue;
    }
    if (mentionsScalar(t.lb, var) || mentionsScalar(t.ub, var) ||
        mentionsScalar(t.stride, var))
      return -1;  // var used in a non-point position
  }
  return dim;
}

}  // namespace

Program computeRuleElimination(const Program& prog) {
  Program out = prog;
  out.body = rewriteStmts(
      prog.body, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        if (s->kind != StmtKind::For || s->step) return std::nullopt;
        // Body must be exactly one iown-guarded statement.
        StmtPtr g = s->body;
        if (g && g->kind == StmtKind::Block && g->stmts.size() == 1)
          g = g->stmts[0];
        if (!g || g->kind != StmtKind::Guarded ||
            g->rule->kind != ExprKind::Iown)
          return std::nullopt;
        const int sym = g->rule->sym;
        const SectionExprPtr& sec = g->rule->section;
        const int d = loopVarDim(sec, s->name);
        if (d < 0) return std::nullopt;
        const dist::Distribution& dist = prog.decl(sym).dist;
        if (d >= dist.rank()) return std::nullopt;
        const dist::DimSpec& spec = dist.specs()[static_cast<unsigned>(d)];
        if (spec.kind != dist::DistKind::Block &&
            spec.kind != dist::DistKind::Cyclic)
          return std::nullopt;
        // The body may not use the guard beyond this dimension's locality:
        // other dimensions must be loop-invariant; ownership of them is
        // exactly what iown() checked. They stay local iff they are
        // collapsed (always owned by everyone who owns dimension d).
        for (int e = 0; e < dist.rank(); ++e) {
          if (e == d) continue;
          if (dist.specs()[static_cast<unsigned>(e)].kind !=
              dist::DistKind::Collapsed)
            return std::nullopt;
        }

        const sec::Index g0 = dist.global().dim(d).lb();
        ExprPtr newLb, newUb, newStep;
        if (spec.kind == dist::DistKind::Block) {
          const sec::Index bs = dist.blockSizeOf(d);
          // first = g0 + mypid*bs ; last = first + bs - 1
          ExprPtr first = il::add(il::intConst(g0),
                                  il::mul(il::mypid(), il::intConst(bs)));
          ExprPtr last = il::add(first, il::intConst(bs - 1));
          newLb = il::bin(il::BinOp::Max, s->lb, first);
          newUb = il::bin(il::BinOp::Min, s->ub, last);
        } else {  // Cyclic: first owned index >= lb, stride = P_d
          const int P = spec.procs;
          // offset = (mypid - (lb - g0)) mod P, made non-negative.
          ExprPtr raw = il::sub(il::mypid(),
                                il::sub(s->lb, il::intConst(g0)));
          ExprPtr offset = il::bin(
              il::BinOp::Mod,
              il::add(il::bin(il::BinOp::Mod, raw, il::intConst(P)),
                      il::intConst(P)),
              il::intConst(P));
          newLb = il::add(s->lb, offset);
          newUb = s->ub;
          newStep = il::intConst(P);
        }
        return il::forLoop(s->name, newLb, newUb, g->body, newStep);
      });
  return out;
}

}  // namespace xdp::opt
