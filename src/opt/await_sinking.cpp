// Await sinking (paper section 4, second transformation): "moving the
// await statement *into* Loop 4. Although this might incur a greater
// run-time overhead, it can allow the FFT operations to proceed while
// other data is still being transferred."
//
// Pattern:   await(A[S]) : { do i = lb, ub { body(i) } }
// becomes:   do i = lb, ub { await(A[S']) : { body(i) } }
// where S' narrows one dimension of S to [i] — the dimension in which the
// body references A with the loop variable as a single-point subscript.
#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SecExprKind;
using il::SectionExpr;
using il::SectionExprPtr;
using il::StmtKind;
using il::StmtPtr;
using il::TripletExpr;

/// Dimension in which the loop body references `sym` with [var] as a
/// single-point subscript (first such reference wins); -1 if none.
int bodyVarDim(const StmtPtr& body, int sym, const std::string& var) {
  int found = -1;
  auto consider = [&](int s, const SectionExprPtr& se) {
    if (found >= 0 || s != sym || !se ||
        se->kind != SecExprKind::Literal)
      return;
    for (std::size_t d = 0; d < se->dims.size(); ++d) {
      const TripletExpr& t = se->dims[d];
      if (t.lb && t.lb->kind == ExprKind::ScalarRef && t.lb->name == var &&
          !t.ub && !t.stride) {
        found = static_cast<int>(d);
        return;
      }
    }
  };
  visitStmts(body, [&](const StmtPtr& s) {
    consider(s->sym, s->lhs);
    consider(s->sym2, s->sec2);
    for (const auto& [as, se] : s->args) consider(as, se);
  });
  return found;
}

bool isFullRange(const TripletExpr& t) {
  // A range (lb:ub) triplet — loop-invariant bounds assumed; the narrowed
  // dimension replaces it entirely, so only the shape matters.
  return t.lb && t.ub;
}

}  // namespace

Program awaitSinking(const Program& prog) {
  Program out = prog;
  out.body = rewriteStmts(
      prog.body, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        if (s->kind != StmtKind::Guarded ||
            s->rule->kind != ExprKind::Await)
          return std::nullopt;
        const SectionExprPtr& S = s->rule->section;
        if (!S || S->kind != SecExprKind::Literal) return std::nullopt;
        StmtPtr loop = s->body;
        if (loop && loop->kind == StmtKind::Block &&
            loop->stmts.size() == 1)
          loop = loop->stmts[0];
        if (!loop || loop->kind != StmtKind::For) return std::nullopt;
        const int sym = s->rule->sym;
        const int d = bodyVarDim(loop->body, sym, loop->name);
        if (d < 0 || d >= static_cast<int>(S->dims.size()))
          return std::nullopt;
        if (!isFullRange(S->dims[static_cast<unsigned>(d)]))
          return std::nullopt;
        auto narrowed = std::make_shared<SectionExpr>(*S);
        narrowed->dims[static_cast<unsigned>(d)] =
            TripletExpr{il::scalar(loop->name), {}, {}};
        StmtPtr inner = il::guarded(
            il::awaitOf(sym, SectionExprPtr(narrowed)), loop->body);
        return il::forLoop(loop->name, loop->lb, loop->ub,
                           il::block({inner}), loop->step);
      });
  return out;
}

}  // namespace xdp::opt
