#include "xdp/opt/rewrite.hpp"

#include "xdp/support/check.hpp"

namespace xdp::opt {

using il::Expr;
using il::ExprKind;
using il::SecExprKind;
using il::SectionExpr;
using il::Stmt;
using il::StmtKind;
using il::TripletExpr;

void visitStmts(const StmtPtr& root,
                const std::function<void(const StmtPtr&)>& fn) {
  if (!root) return;
  fn(root);
  for (const auto& c : root->stmts) visitStmts(c, fn);
  if (root->body) visitStmts(root->body, fn);
}

StmtPtr rewriteStmts(
    const StmtPtr& root,
    const std::function<std::optional<StmtPtr>(const StmtPtr&)>& fn) {
  if (!root) return root;
  StmtPtr rebuilt = root;
  if (root->kind == StmtKind::Block) {
    std::vector<StmtPtr> out;
    bool changed = false;
    for (const auto& c : root->stmts) {
      StmtPtr r = rewriteStmts(c, fn);
      if (r != c) changed = true;
      if (r == nullptr) continue;  // allow deletion
      if (r->kind == StmtKind::Block && c->kind != StmtKind::Block) {
        // Splice an expansion produced by fn for a non-block child.
        out.insert(out.end(), r->stmts.begin(), r->stmts.end());
        changed = true;
      } else {
        out.push_back(std::move(r));
      }
    }
    if (changed) rebuilt = il::withStmts(root, std::move(out));
  } else if (root->body) {
    StmtPtr b = rewriteStmts(root->body, fn);
    if (b != root->body) {
      auto n = std::make_shared<Stmt>(*root);
      n->body = b ? b : il::block({});
      rebuilt = n;
    }
  }
  auto replaced = fn(rebuilt);
  return replaced.has_value() ? *replaced : rebuilt;
}

ExprPtr rewriteExpr(
    const ExprPtr& root,
    const std::function<std::optional<ExprPtr>(const ExprPtr&)>& fn) {
  if (!root) return root;
  auto n = std::make_shared<Expr>(*root);
  bool changed = false;
  auto sub = [&](const ExprPtr& e) {
    ExprPtr r = rewriteExpr(e, fn);
    if (r != e) changed = true;
    return r;
  };
  n->lhs = sub(root->lhs);
  n->rhs = sub(root->rhs);
  if (root->section) {
    auto rewriteSec = [&](auto&& self, const SectionExprPtr& s)
        -> SectionExprPtr {
      if (!s) return s;
      auto sn = std::make_shared<SectionExpr>(*s);
      bool secChanged = false;
      for (auto& t : sn->dims) {
        ExprPtr lb = rewriteExpr(t.lb, fn);
        ExprPtr ub = rewriteExpr(t.ub, fn);
        ExprPtr st = rewriteExpr(t.stride, fn);
        if (lb != t.lb || ub != t.ub || st != t.stride) secChanged = true;
        t.lb = lb;
        t.ub = ub;
        t.stride = st;
      }
      if (s->pid) {
        ExprPtr p = rewriteExpr(s->pid, fn);
        if (p != s->pid) secChanged = true;
        sn->pid = p;
      }
      SectionExprPtr a = self(self, s->a);
      SectionExprPtr b = self(self, s->b);
      if (a != s->a || b != s->b) secChanged = true;
      sn->a = a;
      sn->b = b;
      return secChanged ? SectionExprPtr(sn) : s;
    };
    SectionExprPtr s = rewriteSec(rewriteSec, root->section);
    if (s != root->section) changed = true;
    n->section = s;
  }
  ExprPtr rebuilt = changed ? ExprPtr(n) : root;
  auto replaced = fn(rebuilt);
  return replaced.has_value() ? *replaced : rebuilt;
}

namespace {

SectionExprPtr rewriteSectionExprs(
    const SectionExprPtr& s,
    const std::function<std::optional<ExprPtr>(const ExprPtr&)>& fn) {
  if (!s) return s;
  auto sn = std::make_shared<SectionExpr>(*s);
  bool changed = false;
  for (auto& t : sn->dims) {
    ExprPtr lb = rewriteExpr(t.lb, fn);
    ExprPtr ub = rewriteExpr(t.ub, fn);
    ExprPtr st = rewriteExpr(t.stride, fn);
    if (lb != t.lb || ub != t.ub || st != t.stride) changed = true;
    t.lb = lb;
    t.ub = ub;
    t.stride = st;
  }
  if (s->pid) {
    ExprPtr p = rewriteExpr(s->pid, fn);
    if (p != s->pid) changed = true;
    sn->pid = p;
  }
  SectionExprPtr a = rewriteSectionExprs(s->a, fn);
  SectionExprPtr b = rewriteSectionExprs(s->b, fn);
  if (a != s->a || b != s->b) changed = true;
  sn->a = a;
  sn->b = b;
  return changed ? SectionExprPtr(sn) : s;
}

}  // namespace

StmtPtr rewriteExprsInStmts(
    const StmtPtr& root,
    const std::function<std::optional<ExprPtr>(const ExprPtr&)>& fn) {
  return rewriteStmts(root, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
    auto n = std::make_shared<Stmt>(*s);
    bool changed = false;
    auto doE = [&](ExprPtr& e) {
      ExprPtr r = rewriteExpr(e, fn);
      if (r != e) changed = true;
      e = r;
    };
    auto doS = [&](SectionExprPtr& se) {
      SectionExprPtr r = rewriteSectionExprs(se, fn);
      if (r != se) changed = true;
      se = r;
    };
    doE(n->value);
    doE(n->rhs);
    doE(n->lb);
    doE(n->ub);
    doE(n->step);
    doE(n->rule);
    doE(n->bindHint);
    doS(n->lhs);
    doS(n->sec2);
    for (auto& p : n->dest.pids) doE(p);
    doS(n->dest.section);
    for (auto& [sym, se] : n->args) doS(se);
    if (!changed) return std::nullopt;
    return StmtPtr(n);
  });
}

StmtPtr substituteScalar(const StmtPtr& root, const std::string& name,
                         const ExprPtr& replacement) {
  return rewriteExprsInStmts(
      root, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
        if (e->kind == ExprKind::ScalarRef && e->name == name)
          return replacement;
        return std::nullopt;
      });
}

bool anyExpr(const StmtPtr& root,
             const std::function<bool(const ExprPtr&)>& pred) {
  bool found = false;
  rewriteExprsInStmts(root, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
    if (pred(e)) found = true;
    return std::nullopt;
  });
  return found;
}

ExprPtr rewriteSectionsInExpr(
    const ExprPtr& root,
    const std::function<std::optional<SectionExprPtr>(const SectionExprPtr&)>&
        fn) {
  return rewriteExpr(root, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
    if (!e->section) return std::nullopt;
    auto r = fn(e->section);
    if (!r.has_value()) return std::nullopt;
    auto n = std::make_shared<Expr>(*e);
    n->section = *r;
    return ExprPtr(n);
  });
}

}  // namespace xdp::opt
