// Message vectorization (paper section 2.2: "the compiler may be able to
// move them out of the computation loop and combine or vectorize [8] the
// messages").
//
// Recognized shape — the canonical lowered form over a 1-D loop:
//
//   do i = lb, ub
//     iown(B[i]) : { B[i] -> }                        (link L)
//     iown(A[i]) : { T[mypid] <- B[i]                 (link L)
//                    await(T[mypid])
//                    A[i] = f(..., T[mypid], ...) }
//   enddo
//
// becomes a peer-wise section exchange plus a local copy for the aligned
// part, then a pure compute loop:
//
//   do q = 0, P-1                                     // send phase
//     (q != mypid && nonempty(Sq)) : { B[Sq] -> }     Sq = myPart(B) ∩
//   enddo                                             partq(A) ∩ [lb:ub]
//   nonempty(Lq) : { TB[Lq] = B[Lq] }                 // aligned part
//   do q = 0, P-1                                     // receive phase
//     (q != mypid && nonempty(Rq)) : { TB[Rq] <- B[Rq] }
//   enddo
//   await(TB[myPart(A) ∩ [lb:ub]])
//   do i = lb, ub
//     iown(A[i]) : { A[i] = f(..., TB[i], ...) }
//   enddo
//
// TB is a fresh array with B's global shape and A's distribution, so every
// processor owns exactly the values it will read. Sends stay unspecified —
// routing them directly is CommBinding's job (the pass records the peer in
// the send's bindHint, the auxiliary structure of paper section 3.2).
//
// Applicability: both arrays rank 1 with equal global boxes, both local
// parts single rectangles (BLOCK, CYCLIC, or collapsed dims), loop step 1,
// subscripts exactly [i].
#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SecExprKind;
using il::SectionExprPtr;
using il::StmtKind;
using il::StmtPtr;

bool isVarPoint(const SectionExprPtr& s, const std::string& var) {
  return s && s->kind == SecExprKind::Literal && s->dims.size() == 1 &&
         s->dims[0].lb && s->dims[0].lb->kind == ExprKind::ScalarRef &&
         s->dims[0].lb->name == var && !s->dims[0].ub && !s->dims[0].stride;
}

bool singleRectangleParts(const dist::Distribution& d) {
  for (const auto& spec : d.specs())
    if (spec.kind == dist::DistKind::BlockCyclic) return false;
  return true;
}

struct MatchedLoop {
  int symB = -1, symA = -1, symT = -1;
  ExprPtr lb, ub;
  std::string var;
  StmtPtr assign;  // the guarded computation's ElemAssign
};

/// Match the canonical lowered loop; nullopt if the shape differs.
std::optional<MatchedLoop> match(const Program& prog, const StmtPtr& s) {
  if (s->kind != StmtKind::For || s->step) return std::nullopt;
  const StmtPtr& body = s->body;
  if (!body || body->kind != StmtKind::Block || body->stmts.size() != 2)
    return std::nullopt;
  const StmtPtr& sendG = body->stmts[0];
  const StmtPtr& compG = body->stmts[1];
  if (sendG->kind != StmtKind::Guarded || compG->kind != StmtKind::Guarded)
    return std::nullopt;
  if (sendG->rule->kind != ExprKind::Iown ||
      compG->rule->kind != ExprKind::Iown)
    return std::nullopt;
  // Send side: iown(B[i]) : { B[i] -> } with unspecified destination.
  const StmtPtr& sb = sendG->body;
  if (sb->kind != StmtKind::Block || sb->stmts.size() != 1)
    return std::nullopt;
  const StmtPtr& send = sb->stmts[0];
  if (send->kind != StmtKind::SendData ||
      send->dest.kind != il::DestSpec::Kind::None)
    return std::nullopt;
  if (!isVarPoint(send->lhs, s->name) ||
      !il::sameSectionExpr(send->lhs, sendG->rule->section) ||
      send->sym != sendG->rule->sym)
    return std::nullopt;
  // Compute side: iown(A[i]) : { T[mypid] <- B[i]; await; assign }.
  const StmtPtr& cb = compG->body;
  if (cb->kind != StmtKind::Block || cb->stmts.size() != 3)
    return std::nullopt;
  const StmtPtr& recv = cb->stmts[0];
  const StmtPtr& aw = cb->stmts[1];
  const StmtPtr& assign = cb->stmts[2];
  if (recv->kind != StmtKind::RecvData || aw->kind != StmtKind::Await ||
      assign->kind != StmtKind::ElemAssign)
    return std::nullopt;
  if (recv->linkId < 0 || recv->linkId != send->linkId) return std::nullopt;
  if (recv->sym2 != send->sym || !il::sameSectionExpr(recv->sec2, send->lhs))
    return std::nullopt;
  if (aw->sym != recv->sym) return std::nullopt;
  if (!isVarPoint(compG->rule->section, s->name) ||
      assign->sym != compG->rule->sym ||
      !il::sameSectionExpr(assign->lhs, compG->rule->section))
    return std::nullopt;

  MatchedLoop m;
  m.symB = send->sym;
  m.symA = assign->sym;
  m.symT = recv->sym;
  m.lb = s->lb;
  m.ub = s->ub;
  m.var = s->name;
  m.assign = assign;

  // Distribution applicability.
  const auto& dA = prog.decl(m.symA);
  const auto& dB = prog.decl(m.symB);
  if (dA.global.rank() != 1 || dB.global.rank() != 1) return std::nullopt;
  if (!(dA.global == dB.global)) return std::nullopt;
  if (!singleRectangleParts(dA.dist) || !singleRectangleParts(dB.dist))
    return std::nullopt;
  return m;
}

}  // namespace

Program messageVectorization(const Program& prog) {
  Program out = prog;
  int tbCount = 0;
  out.body = rewriteStmts(
      prog.body, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        auto m = match(out, s);
        if (!m.has_value()) return std::nullopt;

        // Copies, not references: addArray below may reallocate the
        // declaration vector.
        const il::ArrayDecl declA = out.decl(m->symA);
        const il::ArrayDecl declB = out.decl(m->symB);

        // TB: B's values homed where A lives.
        while (out.findSymbol("TB" + std::to_string(tbCount)) >= 0) ++tbCount;
        il::ArrayDecl tb;
        tb.name = "TB" + std::to_string(tbCount++);
        tb.type = declB.type;
        tb.global = declB.global;
        tb.dist = declA.dist;
        const int TB = out.addArray(std::move(tb));

        SectionExprPtr range = il::secRange1(m->lb, m->ub);
        ExprPtr q = il::scalar("q$v");
        // Sq = myPart(B) ∩ part_q under A's dist ∩ [lb:ub]
        SectionExprPtr Sq = il::secIntersect(
            il::secIntersect(il::secLocalPart(m->symB),
                             il::secOwnerPart(m->symB, q, declA.dist)),
            range);
        // Rq = part_q under B's dist ∩ myPart under A's dist ∩ [lb:ub]
        SectionExprPtr Rq = il::secIntersect(
            il::secIntersect(il::secOwnerPart(m->symB, q),
                             il::secLocalPart(m->symB, declA.dist)),
            range);
        // Lq = myPart(B) ∩ myPart under A's dist ∩ [lb:ub]
        SectionExprPtr Lq = il::secIntersect(
            il::secIntersect(il::secLocalPart(m->symB),
                             il::secLocalPart(m->symB, declA.dist)),
            range);

        ExprPtr qNotMe =
            il::bin(il::BinOp::Ne, q, il::mypid());
        auto sendStmt = il::sendData(m->symB, Sq, il::DestSpec::none(),
                                     out.freshLink());
        {
          auto n = std::make_shared<il::Stmt>(*sendStmt);
          n->bindHint = q;  // the matching receiver is processor q
          sendStmt = n;
        }
        StmtPtr sendPhase = il::forLoop(
            "q$v", il::intConst(0), il::intConst(out.nprocs - 1),
            il::block({il::guarded(
                il::land(qNotMe, il::secNonEmpty(m->symB, Sq)),
                il::block({sendStmt}))}));
        StmtPtr localPhase =
            il::guarded(il::secNonEmpty(m->symB, Lq),
                        il::block({il::localCopy(TB, Lq, m->symB, Lq)}));
        StmtPtr recvPhase = il::forLoop(
            "q$v", il::intConst(0), il::intConst(out.nprocs - 1),
            il::block({il::guarded(
                il::land(qNotMe, il::secNonEmpty(m->symB, Rq)),
                il::block({il::recvData(TB, Rq, m->symB, Rq)}))}));
        // await(TB[myPart(A) ∩ range]) — one bulk synchronization.
        SectionExprPtr myTb = il::secIntersect(
            il::secLocalPart(m->symB, declA.dist), range);
        StmtPtr awaitAll = il::awaitStmt(TB, myTb);

        // Compute loop: T[mypid] -> TB[i] in the assignment.
        SectionExprPtr ipt = il::secPoint({il::scalar(m->var)});
        ExprPtr newRhs = rewriteExpr(
            m->assign->rhs, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
              if (e->kind == ExprKind::Elem && e->sym == m->symT)
                return il::elem(TB, ipt);
              return std::nullopt;
            });
        StmtPtr computeLoop = il::forLoop(
            m->var, m->lb, m->ub,
            il::block({il::guarded(
                il::iown(m->symA, ipt),
                il::block({il::elemAssign(m->symA, m->assign->lhs,
                                          newRhs)}))}));

        // The aligned local copy runs first (it writes TB, which must not
        // yet be transitional); then receives are posted *before* the
        // sends (paper 3.2: non-blocking receives should move as early as
        // possible), so arriving sections meet a posted receive instead of
        // the transport's unexpected-buffer path.
        return il::block(
            {localPhase, recvPhase, sendPhase, awaitAll, computeLoop});
      });
  return out;
}

}  // namespace xdp::opt
