// Redundant transfer elimination (paper section 2.2): "if the same
// processor that exclusively owns A[i] also owns B[i], then the data
// transfer statements can be eliminated".
//
// Alignment proof used: the send's operand section and the receive guard's
// lhs section have structurally identical subscripts AND the two arrays
// have identical distributions (same global box, same per-dimension
// specs). Then owner(B[sec]) == owner(A[sec]) for every instantiation, so
// the linked send/receive pair moves data from a processor to itself.
// The pair is deleted and uses of the temporary revert to the operand.
#include <map>
#include <set>

#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::Program;
using il::SectionExprPtr;
using il::Stmt;
using il::StmtKind;
using il::StmtPtr;

struct SendInfo {
  int sym = -1;
  SectionExprPtr section;
};

/// Collect link -> send operand for sends of the canonical lowered shape:
/// Guarded(iown(B,sec), Block[ SendData(B,sec,link) ]).
std::map<int, SendInfo> collectSends(const StmtPtr& root) {
  std::map<int, SendInfo> sends;
  visitStmts(root, [&](const StmtPtr& s) {
    if (s->kind != StmtKind::SendData || s->linkId < 0) return;
    sends[s->linkId] = SendInfo{s->sym, s->lhs};
  });
  return sends;
}

}  // namespace

Program redundantTransferElimination(const Program& prog) {
  Program out = prog;
  const auto sends = collectSends(prog.body);

  // Decide which links are redundant by examining each linked receive in
  // the context of its enclosing iown() guard.
  std::set<int> redundant;               // link ids to delete
  std::map<int, SendInfo> replacement;   // temp sym -> original operand
  std::function<void(const StmtPtr&, const StmtPtr&)> scan =
      [&](const StmtPtr& s, const StmtPtr& guard) {
        if (!s) return;
        const StmtPtr& g =
            (s->kind == StmtKind::Guarded &&
             s->rule->kind == ExprKind::Iown)
                ? s
                : guard;
        for (const auto& c : s->stmts) scan(c, g);
        if (s->body) scan(s->body, g);
        if (s->kind != StmtKind::RecvData || s->linkId < 0 || !g) return;
        auto it = sends.find(s->linkId);
        if (it == sends.end()) return;
        const SendInfo& send = it->second;
        // Receive (sym2, sec2) names the send operand by construction;
        // alignment: guard is iown(A, lsec) with lsec == send.section and
        // dist(A) == dist(B).
        const ExprPtr& rule = g->rule;
        if (!il::sameSectionExpr(rule->section, send.section)) return;
        if (!(prog.decl(rule->sym).dist == prog.decl(send.sym).dist)) return;
        redundant.insert(s->linkId);
        replacement[s->sym] = send;  // temp array -> operand
      };
  scan(prog.body, nullptr);
  if (redundant.empty()) return out;

  // Pass 1: delete the linked sends/receives and the awaits on their
  // temporaries; drop send guards left empty.
  std::set<int> deadTemps;
  for (const auto& [t, info] : replacement) deadTemps.insert(t);
  out.body = rewriteStmts(
      prog.body, [&](const StmtPtr& s) -> std::optional<StmtPtr> {
        if ((s->kind == StmtKind::SendData || s->kind == StmtKind::RecvData) &&
            redundant.count(s->linkId))
          return StmtPtr(nullptr);
        if (s->kind == StmtKind::Await && deadTemps.count(s->sym))
          return StmtPtr(nullptr);
        if (s->kind == StmtKind::Guarded &&
            (!s->body || (s->body->kind == StmtKind::Block &&
                          s->body->stmts.empty())))
          return StmtPtr(nullptr);
        return std::nullopt;
      });

  // Pass 2: substitute temp uses by the original operands.
  out.body = rewriteExprsInStmts(
      out.body, [&](const ExprPtr& e) -> std::optional<ExprPtr> {
        if (e->kind != ExprKind::Elem) return std::nullopt;
        auto it = replacement.find(e->sym);
        if (it == replacement.end()) return std::nullopt;
        return il::elem(it->second.sym, it->second.section);
      });
  return out;
}

}  // namespace xdp::opt
