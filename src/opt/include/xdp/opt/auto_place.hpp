// Auto-placement search (DESIGN.md §10.3): enumerate candidate HPF
// distributions per array (BLOCK / CYCLIC / CYCLIC(b) per distributed
// dimension, block sizes capped at ceil(N/P)), score each candidate with
// the static cost model — lower the program through the standard pipeline,
// verify it, read the modeled bytes — and rewrite the declarations to the
// argmin. Nothing executes: scoring is entirely compile-time, which is
// the paper's premise (placement is explicit, so the compiler can search
// over it).
//
// The original placement is always candidate 0, so ties keep the
// hand-picked distribution and the best candidate's modeled bytes are
// never above the original's (when the original is itself valid).
#pragma once

#include <cstdint>
#include <vector>

#include "xdp/il/program.hpp"

namespace xdp::opt {

struct AutoPlaceOptions {
  /// CYCLIC(b) block sizes to try per distributed dimension (values above
  /// the family cap ceil(N/P) are skipped; 1 would duplicate CYCLIC).
  std::vector<sec::Index> blockSizes = {2, 4, 8};
  /// Hard cap on the cross product over arrays and dimensions.
  std::size_t maxCandidates = 2048;
  /// Lower each candidate through the standard pass pipeline before
  /// scoring (what the driver does before running a program). Disable
  /// only for programs that are already fully lowered.
  bool pipeline = true;
};

/// One scored candidate placement (one Distribution per array).
struct PlacementScore {
  std::vector<dist::Distribution> dists;
  /// The candidate verifies with zero errors and the cost analysis is
  /// exact; invalid candidates never win.
  bool valid = false;
  std::int64_t bytes = 0;
  std::int64_t messages = 0;
};

struct AutoPlaceResult {
  /// The input program with declarations rewritten to the best placement
  /// (still pre-pipeline; lower it to run).
  il::Program program;
  PlacementScore best;
  PlacementScore original;
  std::size_t candidatesTried = 0;
  std::size_t candidatesValid = 0;
  /// Placement-independent lower bound of the program (invariant +
  /// parametric components; see analysis::CostReport).
  std::int64_t lowerBound = 0;
  /// 100 * lowerBound / best.bytes (100 when both are 0).
  double pctOfOptimal() const;
};

AutoPlaceResult autoPlace(const il::Program& prog,
                          const AutoPlaceOptions& opts = {});

}  // namespace xdp::opt
