// Tree-walking utilities shared by the optimization passes. Statements and
// expressions are immutable, so rewriting rebuilds the spine and shares
// untouched subtrees.
#pragma once

#include <functional>
#include <optional>

#include "xdp/il/program.hpp"

namespace xdp::opt {

using il::ExprPtr;
using il::SectionExprPtr;
using il::StmtPtr;

/// Preorder visit of every statement (including Block/For/Guarded bodies).
void visitStmts(const StmtPtr& root,
                const std::function<void(const StmtPtr&)>& fn);

/// Bottom-up rewrite: children are rewritten first, then `fn` is offered
/// the (rebuilt) node; returning nullopt keeps it, returning a statement
/// replaces it. Returning a Block from `fn` splices its children when the
/// parent is a Block (so one statement can expand to many).
StmtPtr rewriteStmts(
    const StmtPtr& root,
    const std::function<std::optional<StmtPtr>(const StmtPtr&)>& fn);

/// Bottom-up expression rewrite over one expression tree.
ExprPtr rewriteExpr(
    const ExprPtr& root,
    const std::function<std::optional<ExprPtr>(const ExprPtr&)>& fn);

/// Rewrite every expression embedded in a statement tree (rules, bounds,
/// subscripts, rhs, destinations) with `fn`.
StmtPtr rewriteExprsInStmts(
    const StmtPtr& root,
    const std::function<std::optional<ExprPtr>(const ExprPtr&)>& fn);

/// Substitute scalar `name` by `replacement` everywhere in a statement.
StmtPtr substituteScalar(const StmtPtr& root, const std::string& name,
                         const ExprPtr& replacement);

/// True iff some expression in the statement satisfies `pred`.
bool anyExpr(const StmtPtr& root,
             const std::function<bool(const ExprPtr&)>& pred);

/// Rewrite the section expressions of one expression tree.
ExprPtr rewriteSectionsInExpr(
    const ExprPtr& root,
    const std::function<std::optional<SectionExprPtr>(const SectionExprPtr&)>&
        fn);

}  // namespace xdp::opt
