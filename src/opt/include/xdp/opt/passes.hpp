// The XDP optimization passes (paper sections 2.2, 2.4, 3.2 and 4).
//
// Every pass is a pure Program -> Program function; the PassManager chains
// them and can print intermediate programs. The passes are deliberately
// pattern-directed: each implements the specific legality conditions the
// paper states for its transformation, and leaves code it cannot prove
// safe untouched (full dependence analysis belongs to the host compiler,
// not the XDP methodology).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "xdp/il/program.hpp"
#include "xdp/support/check.hpp"

namespace xdp::opt {

/// Owner-computes lowering (paper section 2.2, first listing): turn
/// unguarded element assignments over distributed arrays into guarded
/// IL+XDP — the owner of each rhs operand sends it, the owner of the lhs
/// receives into a per-processor temporary, awaits it, and computes.
/// Creates the temporaries and the send<->receive link structure.
il::Program lowerOwnerComputes(const il::Program& prog);

/// Remove transfers whose sender and receiver are provably the same
/// processor: the send and its linked receive sit under iown() guards of
/// sections with identical subscripts and identical distributions
/// (alignment), so the value is already local. Rewrites uses of the
/// temporary back to the original operand (paper 2.2: "if the same
/// processor that exclusively owns A[i] also owns B[i], then the data
/// transfer statements can be eliminated").
il::Program redundantTransferElimination(const il::Program& prog);

/// Message vectorization (paper 2.2: "move them out of the computation
/// loop and combine or vectorize the messages"): per-element transfers in
/// a 1-D loop become one section transfer per peer processor, plus a local
/// copy for the aligned part. Requires both arrays to have
/// single-rectangle local parts (BLOCK/CYCLIC/collapsed dims).
il::Program messageVectorization(const il::Program& prog);

/// Compute rule elimination by loop-bounds localization (paper 2.4/4):
/// for loops whose body is a single iown(A[..i..])-guarded statement,
/// shrink the loop bounds to the locally-owned range via mylb/myub (and
/// stride P for CYCLIC), then drop the guard.
il::Program computeRuleElimination(const il::Program& prog);

/// Replace single-iteration-per-processor loops by mypid substitution
/// (paper section 4: "these single iteration outer loops can also be
/// removed"). Applies when the guard's subscripted dimension is
/// distributed BLOCK with block size 1 over the loop's full range.
il::Program singleIterationElimination(const il::Program& prog);

/// Fuse adjacent loops with identical headers when every section either
/// belongs to a symbol mentioned by only one of the bodies, or is a
/// literal section whose loop-dependent subscript makes per-iteration
/// footprints disjoint (the paper's legality condition for fusing the FFT
/// compute loop with the redistribution send loop in section 4).
il::Program loopFusion(const il::Program& prog);

/// Move an await guarding a whole loop into the loop, narrowing the
/// awaited section to the iteration's footprint (paper section 4, second
/// transformation: per-line await lets FFTs start while other lines are
/// still in flight).
il::Program awaitSinking(const il::Program& prog);

/// Constant folding + guard simplification: ordinary scalar optimization
/// applied to IL+XDP (the point of the paper's key idea 2 — transfers and
/// compute rules live in a normal IL, so normal optimizations apply).
/// Rules folding to true/false inline/delete their guarded statements
/// (sound because compute rules are side-effect-free, section 2.4).
il::Program constantFolding(const il::Program& prog);

/// Receive hoisting (paper 3.2: "move the XDP receive statements as early
/// in the program as possible"): within each block, receive initiations
/// bubble leftward past statements they do not depend on, so receives are
/// posted before their messages arrive (avoiding the transport's
/// unexpected-message copy) and communication overlaps computation.
il::Program recvHoisting(const il::Program& prog);

/// Remove arrays no statement references (the temporaries orphaned by
/// redundantTransferElimination) and renumber the survivors.
il::Program deadArrayElimination(const il::Program& prog);

/// Delayed communication binding (paper 3.2): annotate sends with their
/// receiver where the auxiliary link structure or the receiver's iown()
/// guard determines it, so code generation can route directly instead of
/// through the run-time matchmaker.
il::Program commBinding(const il::Program& prog);

// --- pass manager ----------------------------------------------------------

using PassFn = std::function<il::Program(const il::Program&)>;

struct Pass {
  std::string name;
  PassFn fn;
};

/// The standard pipeline for lowered scalar programs, in the order the
/// paper applies them in section 2.2.
std::vector<Pass> standardPipeline();

/// Thrown by PassManager::run in verifyEachPass mode when a pass's output
/// has Figure-1 violations (analysis::verifyProgram errors) that its input
/// did not have — i.e. the pass itself broke the program.
class PassVerifyError : public XdpError {
 public:
  PassVerifyError(std::string passName, std::string report)
      : XdpError("pass '" + passName +
                 "' introduced section-state violations:\n" + report),
        passName_(std::move(passName)),
        report_(std::move(report)) {}

  const std::string& passName() const { return passName_; }
  /// The formatted diagnostics the pass introduced, one per line.
  const std::string& report() const { return report_; }

 private:
  std::string passName_;
  std::string report_;
};

class PassManager {
 public:
  PassManager& add(std::string name, PassFn fn);
  PassManager& add(const Pass& pass);

  /// Run the static verifier (analysis::verifyProgram) on the output of
  /// every pass and throw PassVerifyError on the first pass whose output
  /// has verifier errors its input lacked. Pre-existing errors are not
  /// blamed on the passes (the input program's author owns those).
  PassManager& verifyEachPass(bool on = true);

  /// Apply all passes in order. If `trace` is non-null, the program is
  /// pretty-printed into it before the first pass and after each pass.
  il::Program run(const il::Program& prog, std::string* trace = nullptr) const;

 private:
  std::vector<Pass> passes_;
  bool verify_ = false;
};

}  // namespace xdp::opt
