// Dead array elimination: redundant-transfer elimination rewires uses of
// the per-processor temporaries back to the original operands, leaving the
// temporary declarations unreferenced; this pass deletes them and
// renumbers the surviving symbols (every statement and expression carries
// symbol indices, so the remap must walk everything).
#include <vector>

#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"
#include "xdp/support/check.hpp"

namespace xdp::opt {
namespace {

using il::Expr;
using il::ExprPtr;
using il::Program;
using il::SectionExpr;
using il::SectionExprPtr;
using il::Stmt;
using il::StmtPtr;

void markExpr(const ExprPtr& e, std::vector<bool>& used);

void markSection(const SectionExprPtr& s, std::vector<bool>& used) {
  if (!s) return;
  if (s->sym >= 0) used[static_cast<std::size_t>(s->sym)] = true;
  for (const auto& t : s->dims) {
    markExpr(t.lb, used);
    markExpr(t.ub, used);
    markExpr(t.stride, used);
  }
  markExpr(s->pid, used);
  markSection(s->a, used);
  markSection(s->b, used);
}

void markExpr(const ExprPtr& e, std::vector<bool>& used) {
  if (!e) return;
  if (e->sym >= 0) used[static_cast<std::size_t>(e->sym)] = true;
  markExpr(e->lhs, used);
  markExpr(e->rhs, used);
  markSection(e->section, used);
}

void markStmt(const StmtPtr& s, std::vector<bool>& used) {
  if (!s) return;
  if (s->sym >= 0) used[static_cast<std::size_t>(s->sym)] = true;
  if (s->sym2 >= 0) used[static_cast<std::size_t>(s->sym2)] = true;
  if (s->dest.sym >= 0) used[static_cast<std::size_t>(s->dest.sym)] = true;
  markExpr(s->value, used);
  markExpr(s->rhs, used);
  markExpr(s->lb, used);
  markExpr(s->ub, used);
  markExpr(s->step, used);
  markExpr(s->rule, used);
  markExpr(s->bindHint, used);
  markSection(s->lhs, used);
  markSection(s->sec2, used);
  markSection(s->dest.section, used);
  for (const auto& [sym, se] : s->args) {
    if (sym >= 0) used[static_cast<std::size_t>(sym)] = true;
    markSection(se, used);
  }
  for (const auto& c : s->stmts) markStmt(c, used);
  markStmt(s->body, used);
}

ExprPtr remapExpr(const ExprPtr& e, const std::vector<int>& map);

SectionExprPtr remapSection(const SectionExprPtr& s,
                            const std::vector<int>& map) {
  if (!s) return s;
  auto n = std::make_shared<SectionExpr>(*s);
  if (s->sym >= 0) n->sym = map[static_cast<std::size_t>(s->sym)];
  for (auto& t : n->dims) {
    t.lb = remapExpr(t.lb, map);
    t.ub = remapExpr(t.ub, map);
    t.stride = remapExpr(t.stride, map);
  }
  n->pid = remapExpr(s->pid, map);
  n->a = remapSection(s->a, map);
  n->b = remapSection(s->b, map);
  return n;
}

ExprPtr remapExpr(const ExprPtr& e, const std::vector<int>& map) {
  if (!e) return e;
  auto n = std::make_shared<Expr>(*e);
  if (e->sym >= 0) n->sym = map[static_cast<std::size_t>(e->sym)];
  n->lhs = remapExpr(e->lhs, map);
  n->rhs = remapExpr(e->rhs, map);
  n->section = remapSection(e->section, map);
  return n;
}

StmtPtr remapStmt(const StmtPtr& s, const std::vector<int>& map) {
  if (!s) return s;
  auto n = std::make_shared<Stmt>(*s);
  if (s->sym >= 0) n->sym = map[static_cast<std::size_t>(s->sym)];
  if (s->sym2 >= 0) n->sym2 = map[static_cast<std::size_t>(s->sym2)];
  if (s->dest.sym >= 0)
    n->dest.sym = map[static_cast<std::size_t>(s->dest.sym)];
  n->value = remapExpr(s->value, map);
  n->rhs = remapExpr(s->rhs, map);
  n->lb = remapExpr(s->lb, map);
  n->ub = remapExpr(s->ub, map);
  n->step = remapExpr(s->step, map);
  n->rule = remapExpr(s->rule, map);
  n->bindHint = remapExpr(s->bindHint, map);
  n->lhs = remapSection(s->lhs, map);
  n->sec2 = remapSection(s->sec2, map);
  n->dest.section = remapSection(s->dest.section, map);
  for (auto& p : n->dest.pids) p = remapExpr(p, map);
  for (auto& [sym, se] : n->args) {
    if (sym >= 0) sym = map[static_cast<std::size_t>(sym)];
    se = remapSection(se, map);
  }
  std::vector<StmtPtr> kids;
  for (const auto& c : s->stmts) kids.push_back(remapStmt(c, map));
  n->stmts = std::move(kids);
  n->body = remapStmt(s->body, map);
  return n;
}

}  // namespace

Program deadArrayElimination(const Program& prog) {
  std::vector<bool> used(prog.arrays.size(), false);
  markStmt(prog.body, used);
  bool anyDead = false;
  for (bool u : used) anyDead |= !u;
  if (!anyDead) return prog;

  std::vector<int> map(prog.arrays.size(), -1);
  Program out;
  out.nprocs = prog.nprocs;
  for (std::size_t i = 0; i < prog.arrays.size(); ++i) {
    if (!used[i]) continue;
    map[i] = out.addArray(prog.arrays[i]);
  }
  out.body = remapStmt(prog.body, map);
  return out;
}

}  // namespace xdp::opt
