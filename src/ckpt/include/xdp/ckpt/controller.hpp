// Coordinated-capture controller (DESIGN.md §11).
//
// One Controller instance per checkpoint-enabled Runtime. It owns the
// per-processor continuation slots and the park/capture rendezvous:
//
//   * Engines *publish* a continuation image into their slot immediately
//     before every possibly-blocking statement (publish-before-block), so
//     a processor parked in an await always has a valid restart point on
//     file: re-executing the published statement from scratch is safe
//     because awaits block before any side effect of their statement.
//   * Auto-checkpointing parks each processor when its own executed-
//     statement count crosses the next multiple of the configured
//     interval. The first parker of a generation becomes the capture
//     leader and runs the Runtime-provided capture function, which waits
//     (bounded) until every processor is parked, finished, or stably
//     blocked, then exports tables + fabric + slots into a Snapshot.
//   * requestRollback()/requestPreempt() raise an asynchronous signal:
//     running engines observe it at statement boundaries, blocked ones
//     are woken through the Runtime-provided interrupt hook, and all
//     unwind with RollbackSignal/PreemptSignal (plain structs, invisible
//     to std::exception handlers).
//
// Thread-safety: every member is callable from any node thread; the hot
// paths (signal(), nextParkAt()) are single relaxed atomic loads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "xdp/ckpt/image.hpp"

namespace xdp::ckpt {

enum class ProcState : std::uint8_t { Running = 0, Parked = 1, Finished = 2 };

class Controller {
 public:
  Controller(int nprocs, CkptOptions opts);

  int nprocs() const { return nprocs_; }
  const CkptOptions& options() const { return opts_; }

  // --- engine hot path -------------------------------------------------
  /// 0 none / 1 rollback / 2 preempt.
  int signal() const { return signal_.load(std::memory_order_relaxed); }
  std::uint64_t parkInterval() const { return opts_.intervalSteps; }
  std::uint64_t nextParkAt(int pid) const {
    return slots_[static_cast<std::size_t>(pid)]->nextParkAt.load(
        std::memory_order_relaxed);
  }

  /// Record `img` as pid's restart point (called before any possibly-
  /// blocking statement, and on park/preempt).
  void publish(int pid, ContImage img);

  /// Throw the pending signal, if any, publishing `img` first so a
  /// preemption snapshot sees the current position. No-op when clear.
  void deliverSignal(int pid, ContImage img);

  /// Throw the pending signal without republishing (blocked engines poll
  /// this from the table's wait-interrupt hook; their slot already holds
  /// the image published before the blocking statement). No-op when clear.
  void checkSignal() {
    if (signal_.load(std::memory_order_acquire) != 0) throwSignal();
  }

  /// Publish `img`, park at this statement boundary, lead or join the
  /// capture rendezvous, advance the park threshold, and resume (or
  /// throw, if a rollback/preempt signal arrives while parked).
  void parkAtBoundary(int pid, ContImage img);

  /// Mark pid's node program complete (its slot becomes a finished
  /// continuation).
  void finish(int pid);

  // --- runtime side ----------------------------------------------------
  /// Capture function: performs validation + export + store; returns
  /// success. Runs on the capture leader's thread with no controller
  /// locks held.
  void setCaptureFn(std::function<bool()> fn);
  /// Interrupt hook: wake every blocked processor so it can observe the
  /// signal (the Runtime notifies every table's condition variable).
  void setInterruptFn(std::function<void()> fn);

  void requestRollback(int source);
  void requestPreempt();
  /// Clear the signal and park/capture state between recovery rounds and
  /// seed resume continuations (empty = fresh start). Thresholds restart
  /// at the next interval multiple above each resumed stats count.
  void beginRound(std::vector<ContImage> resume);

  /// Pid whose simulated crash requested the current/last rollback.
  int rollbackSource() const { return rollbackSource_; }

  /// Resume image seeded by beginRound, if any (consumed once).
  bool hasResume(int pid) const;
  ContImage takeResume(int pid);

  /// Copy of pid's slot for snapshot export.
  ContImage slotImage(int pid) const;
  ProcState slotState(int pid) const;

  /// True when pid is pinned for the capture currently in progress:
  /// finished, or parked *for this capture's generation*. A slot can read
  /// Parked long after its capture ended — the waiter's wake predicate is
  /// already true, it just hasn't been scheduled yet — and such a
  /// processor is logically running, so a capture leader must not treat
  /// it as frozen (it may wake mid-export and mutate tables or fabric).
  bool pinned(int pid);

  /// Deterministic counters.
  std::uint64_t captures() const { return captures_.load(); }
  std::uint64_t captureFailures() const { return captureFailures_.load(); }

 private:
  struct Slot {
    mutable std::mutex mu;
    ContImage img;
    ProcState state = ProcState::Running;
    std::uint64_t parkGen = 0;  ///< generation this park belongs to
    std::atomic<std::uint64_t> nextParkAt{0};
    bool hasResume = false;
    ContImage resume;
  };

  [[noreturn]] void throwSignal();

  const int nprocs_;
  const CkptOptions opts_;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::atomic<int> signal_{0};
  std::atomic<int> rollbackSource_{-1};
  std::atomic<std::uint64_t> captures_{0};
  std::atomic<std::uint64_t> captureFailures_{0};

  std::mutex mu_;  ///< park rendezvous (never held while capturing)
  std::condition_variable cv_;
  bool captureActive_ = false;
  std::uint64_t generation_ = 0;

  std::function<bool()> captureFn_;
  std::function<void()> interruptFn_;
};

}  // namespace xdp::ckpt
