// Snapshot wire format and storage (DESIGN.md §11).
//
// Binary layout of an encoded snapshot:
//
//   magic   8 bytes  "XDPCKPT1"
//   version u32      kSnapshotVersion
//   records          [u16 tag][u64 len][payload bytes][u64 fnv1a(payload)]
//   trailer u64      fnv1a(everything before the trailer)
//
// Every record is individually checksummed (FNV-1a 64) and the whole file
// is checksummed again, so truncation, bit flips, and torn writes are all
// detected at decode time and surface as CkptError — a snapshot is either
// loaded exactly or rejected; garbage is never partially applied.
//
// Writer/Reader are the (bounds-checked) primitives the rt/net/interp
// layers use to encode their own opaque images; a Reader read past the
// end of its buffer throws CkptError rather than reading stale memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "xdp/ckpt/image.hpp"

namespace xdp::ckpt {

/// FNV-1a 64-bit over a byte range (same offset/prime constants as the
/// serve-layer result digest).
std::uint64_t fnv1a(const std::byte* data, std::size_t n,
                    std::uint64_t seed = 1469598103934665603ULL);

inline std::uint64_t fnv1a(const std::vector<std::byte>& v) {
  return fnv1a(v.data(), v.size());
}

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { putLe(v); }
  void u32(std::uint32_t v) { putLe(v); }
  void u64(std::uint64_t v) { putLe(v); }
  void i64(std::int64_t v) { putLe(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putLe(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(const std::byte* data, std::size_t n) {
    u64(n);
    buf_.insert(buf_.end(), data, data + n);
  }
  void bytes(const std::vector<std::byte>& v) { bytes(v.data(), v.size()); }
  /// Append without a length prefix (record framing writes its own).
  void raw(const std::vector<std::byte>& v) {
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void str(const std::string& s) {
    bytes(reinterpret_cast<const std::byte*>(s.data()), s.size());
  }

  const std::vector<std::byte>& buffer() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  template <typename T>
  void putLe(T v) {
    for (unsigned i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian decoder; any overrun throws CkptError.
class Reader {
 public:
  Reader(const std::byte* data, std::size_t n) : data_(data), end_(n) {}
  explicit Reader(const std::vector<std::byte>& v)
      : Reader(v.data(), v.size()) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() { return getLe<std::uint16_t>(); }
  std::uint32_t u32() { return getLe<std::uint32_t>(); }
  std::uint64_t u64() { return getLe<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::vector<std::byte> bytes() {
    std::uint64_t n = u64();
    need(n);
    std::vector<std::byte> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string str() {
    std::uint64_t n = u64();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_ + pos_),
                    static_cast<std::size_t>(n));
    pos_ += n;
    return out;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return end_ - pos_; }
  bool atEnd() const { return pos_ == end_; }

 private:
  void need(std::uint64_t n) const {
    if (n > end_ - pos_) throw CkptError("truncated image (read past end)");
  }
  template <typename T>
  T getLe() {
    need(sizeof(T));
    T v = 0;
    for (unsigned i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }
  const std::byte* data_;
  std::size_t end_;
  std::size_t pos_ = 0;
};

/// Encode a snapshot to the checksummed record format above.
std::vector<std::byte> encodeSnapshot(const Snapshot& snap);

/// Decode and fully verify an encoded snapshot. Throws CkptError on any
/// defect (bad magic, unsupported version, truncation, record or file
/// checksum mismatch, inconsistent record set).
Snapshot decodeSnapshot(const std::vector<std::byte>& buf);

/// Number of records an encoded snapshot carries (1 meta + nprocs tables
/// + 1 fabric + nprocs continuations).
std::uint64_t snapshotRecordCount(const Snapshot& snap);

/// Whole-file save/load. Load rereads and verifies; both throw CkptError
/// on I/O failure.
void saveSnapshotFile(const std::string& path,
                      const std::vector<std::byte>& encoded);
std::vector<std::byte> loadSnapshotFile(const std::string& path);

/// Deterministic counters for the perf trajectory and RecoveryReport.
struct StoreStats {
  std::uint64_t snapshots = 0;      ///< accepted captures
  std::uint64_t lastBytes = 0;      ///< encoded size of the newest snapshot
  std::uint64_t lastRecords = 0;    ///< record count of the newest snapshot
  std::uint64_t totalBytes = 0;     ///< sum of encoded sizes ever added
  std::uint64_t fallbacks = 0;      ///< loads that skipped a bad snapshot
};

/// Holds the last two good snapshots (in memory, optionally mirrored to
/// `dir` as ckpt-<seq>.xdpckpt files) and serves the newest one that
/// still decodes cleanly — a torn or corrupted latest snapshot falls back
/// to the previous good one instead of failing recovery.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir = "");

  /// Encode and retain `snap`; evicts beyond the 2-deep ring (and prunes
  /// older on-disk files to match).
  void add(const Snapshot& snap);

  bool empty() const { return ring_.empty(); }

  /// Decode the newest snapshot that verifies; skips (and drops) corrupt
  /// entries, counting each skip as a fallback. Throws CkptError when no
  /// good snapshot remains.
  Snapshot loadLatestGood();

  /// Re-populate the ring from `dir` (newest two sequence numbers);
  /// corrupt files are skipped and counted as fallbacks. Returns the
  /// number of snapshots adopted.
  int adoptFromDir();

  const StoreStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Held {
    std::uint64_t seq = 0;
    std::vector<std::byte> encoded;
  };
  std::string filePath(std::uint64_t seq) const;

  std::string dir_;
  std::uint64_t nextSeq_ = 0;
  std::deque<Held> ring_;  ///< oldest first, size <= 2
  StoreStats stats_;
};

}  // namespace xdp::ckpt
