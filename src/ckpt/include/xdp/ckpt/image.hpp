// Snapshot images for deterministic checkpoint/restore (DESIGN.md §11).
//
// XDP's thesis — placement as an explicit compile-time representation —
// makes run-time state unusually snapshotable: a processor's entire data
// state is its run-time symbol table (segment descriptor triplets plus
// element payloads), its control state is a statement boundary in a
// program both backends execute deterministically, and the fabric's
// in-flight state is a finite set of named messages and posted receives.
// A snapshot is therefore compact, exact, and *verifiable*: restoring it
// and running to completion must produce a result digest bit-identical to
// the uninterrupted run.
//
// Layering: xdp::ckpt depends only on xdp::support. Each layer (rt, net,
// interp) serializes itself to an opaque byte image using the bounds-
// checked Writer/Reader in io.hpp; this header defines only the
// layer-neutral containers and the error/signal types.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "xdp/support/check.hpp"

namespace xdp::ckpt {

/// Error raised for any snapshot defect: truncated file, bit-flipped
/// record (checksum mismatch), version-mismatched header, image/runtime
/// shape disagreement, or recovery-budget exhaustion. In the XdpError
/// hierarchy so session containment reports it structurally.
class CkptError : public XdpError {
 public:
  explicit CkptError(std::string what)
      : XdpError("checkpoint error: " + std::move(what)) {}
};

/// Thrown through a node program to unwind it for crash recovery. NOT a
/// std::exception on purpose: session containment and SPMD failure
/// aggregation catch std::exception, and a recovery unwind must never be
/// mistaken for a program failure.
struct RollbackSignal {
  int source = -1;  ///< pid whose simulated crash requested the rollback
};

/// Thrown through a node program to unwind it for preemption (the serve
/// layer checkpoints the session to a spill file and resumes it later).
/// Like RollbackSignal, deliberately not a std::exception.
struct PreemptSignal {};

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Engine-agnostic count of per-processor interpreter counters carried in
/// a continuation image (mirrors interp::InterpStats; the ckpt layer
/// treats them as an opaque ordered array).
inline constexpr int kNumContStats = 9;

/// Continuation engines.
enum class ContEngine : std::uint8_t { None = 0, Tree = 1, Vm = 2 };

/// One processor's continuation: where its node program stands, captured
/// at a statement boundary. `payload` is engine-encoded (tree walker:
/// frame cursors + interned-scalar env; VM: flat-IL pc + register file)
/// and opaque to this layer. `unsafe` marks a continuation published
/// before a statement that is not safely re-executable (kernel calls may
/// block mid-way after side effects); a coordinated capture refuses to
/// cut there and retries.
struct ContImage {
  std::uint8_t engine = 0;  ///< ContEngine
  bool finished = false;    ///< node program ran to completion
  bool unsafe = false;      ///< not a clean re-execution point
  std::array<std::uint64_t, kNumContStats> stats{};
  std::vector<std::byte> payload;
};

/// A whole-run snapshot: one table image per processor, one fabric image,
/// one continuation per processor. Byte images are produced/consumed by
/// the owning layer; this struct plus io.hpp define the container format.
struct Snapshot {
  std::uint32_t version = kSnapshotVersion;
  std::uint8_t backend = 0;       ///< interp::Backend the run used
  int nprocs = 0;
  std::uint64_t programHash = 0;  ///< caller-chosen program identity (0 = unchecked)
  std::uint64_t captureStep = 0;  ///< capture generation that produced this
  std::vector<std::vector<std::byte>> tables;  ///< per-pid ProcTable image
  std::vector<std::byte> fabric;               ///< fabric in-flight image
  std::vector<ContImage> conts;                ///< per-pid continuation
};

/// Checkpointing knobs (Runtime::enableCheckpointing).
struct CkptOptions {
  /// Auto-checkpoint: each processor parks at every multiple of this many
  /// executed statements and the first parker coordinates a capture.
  /// 0 disables auto-checkpointing (manual checkpoint() still works).
  std::uint64_t intervalSteps = 0;
  /// Directory for snapshot persistence (empty: in-memory ring only).
  std::string dir;
  /// Crash-recovery budget per run; exhausting it raises CkptError.
  int maxRecoveries = 8;
  /// Coordinated-capture settle timeout: if the run does not reach a
  /// capturable state within this budget the attempt is abandoned (the
  /// run continues; the next interval retries).
  std::uint64_t captureTimeoutMs = 2000;
};

}  // namespace xdp::ckpt
