#include "xdp/ckpt/controller.hpp"

namespace xdp::ckpt {

Controller::Controller(int nprocs, CkptOptions opts)
    : nprocs_(nprocs), opts_(std::move(opts)) {
  slots_.reserve(static_cast<std::size_t>(nprocs_));
  for (int i = 0; i < nprocs_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->nextParkAt.store(
        opts_.intervalSteps == 0 ? ~0ULL : opts_.intervalSteps,
        std::memory_order_relaxed);
  }
}

void Controller::publish(int pid, ContImage img) {
  Slot& s = *slots_[static_cast<std::size_t>(pid)];
  std::lock_guard lk(s.mu);
  s.img = std::move(img);
}

void Controller::throwSignal() {
  if (signal_.load(std::memory_order_relaxed) == 2) throw PreemptSignal{};
  throw RollbackSignal{rollbackSource_.load(std::memory_order_relaxed)};
}

void Controller::deliverSignal(int pid, ContImage img) {
  if (signal_.load(std::memory_order_relaxed) == 0) return;
  publish(pid, std::move(img));
  throwSignal();
}

void Controller::parkAtBoundary(int pid, ContImage img) {
  publish(pid, std::move(img));
  Slot& slot = *slots_[static_cast<std::size_t>(pid)];
  // Advance before anything can throw: a failed or interrupted attempt
  // must not re-park at the same boundary.
  if (opts_.intervalSteps > 0)
    slot.nextParkAt.fetch_add(opts_.intervalSteps, std::memory_order_relaxed);

  std::unique_lock lk(mu_);
  if (signal_.load(std::memory_order_relaxed) != 0) throwSignal();
  {
    std::lock_guard slk(slot.mu);
    slot.state = ProcState::Parked;
    // Tag the park with the generation it belongs to: only a park for the
    // capture currently forming counts as pinned (see pinned()). A stale
    // Parked slot from an earlier generation is a waiter whose wake
    // predicate is already true — logically running.
    slot.parkGen = generation_;
  }
  cv_.notify_all();  // a waiting capture leader polls slot states

  if (!captureActive_) {
    captureActive_ = true;
    lk.unlock();
    bool ok = false;
    if (captureFn_) ok = captureFn_();
    (ok ? captures_ : captureFailures_).fetch_add(1);
    lk.lock();
    captureActive_ = false;
    generation_ += 1;
    {
      std::lock_guard slk(slot.mu);
      slot.state = ProcState::Running;
    }
    cv_.notify_all();
  } else {
    const std::uint64_t gen = generation_;
    cv_.wait(lk, [&] {
      return generation_ != gen ||
             signal_.load(std::memory_order_relaxed) != 0;
    });
    {
      std::lock_guard slk(slot.mu);
      slot.state = ProcState::Running;
    }
  }
  if (signal_.load(std::memory_order_relaxed) != 0) throwSignal();
}

void Controller::finish(int pid) {
  Slot& slot = *slots_[static_cast<std::size_t>(pid)];
  {
    std::lock_guard slk(slot.mu);
    slot.state = ProcState::Finished;
    slot.img.finished = true;
    slot.img.unsafe = false;
  }
  std::lock_guard lk(mu_);
  cv_.notify_all();
}

void Controller::setCaptureFn(std::function<bool()> fn) {
  captureFn_ = std::move(fn);
}

void Controller::setInterruptFn(std::function<void()> fn) {
  interruptFn_ = std::move(fn);
}

void Controller::requestRollback(int source) {
  rollbackSource_.store(source, std::memory_order_relaxed);
  signal_.store(1, std::memory_order_release);
  {
    std::lock_guard lk(mu_);
    cv_.notify_all();
  }
  if (interruptFn_) interruptFn_();
}

void Controller::requestPreempt() {
  // Never downgrade a rollback in flight.
  int expect = 0;
  if (!signal_.compare_exchange_strong(expect, 2)) return;
  {
    std::lock_guard lk(mu_);
    cv_.notify_all();
  }
  if (interruptFn_) interruptFn_();
}

void Controller::beginRound(std::vector<ContImage> resume) {
  std::lock_guard lk(mu_);
  signal_.store(0, std::memory_order_release);
  rollbackSource_.store(-1, std::memory_order_relaxed);
  captureActive_ = false;
  for (int pid = 0; pid < nprocs_; ++pid) {
    Slot& slot = *slots_[static_cast<std::size_t>(pid)];
    std::lock_guard slk(slot.mu);
    slot.state = ProcState::Running;
    slot.img = ContImage{};
    slot.hasResume = false;
    std::uint64_t base = 0;
    if (pid < static_cast<int>(resume.size())) {
      slot.resume = std::move(resume[static_cast<std::size_t>(pid)]);
      slot.hasResume = true;
      base = slot.resume.stats[2];  // InterpStats::stmtsExecuted slot
    }
    if (opts_.intervalSteps == 0) {
      slot.nextParkAt.store(~0ULL, std::memory_order_relaxed);
    } else {
      // Next multiple of the interval strictly above the resumed count.
      const std::uint64_t k = base / opts_.intervalSteps + 1;
      slot.nextParkAt.store(k * opts_.intervalSteps,
                            std::memory_order_relaxed);
    }
  }
}

bool Controller::hasResume(int pid) const {
  Slot& slot = *slots_[static_cast<std::size_t>(pid)];
  std::lock_guard slk(slot.mu);
  return slot.hasResume;
}

ContImage Controller::takeResume(int pid) {
  Slot& slot = *slots_[static_cast<std::size_t>(pid)];
  std::lock_guard slk(slot.mu);
  slot.hasResume = false;
  return std::move(slot.resume);
}

ContImage Controller::slotImage(int pid) const {
  Slot& slot = *slots_[static_cast<std::size_t>(pid)];
  std::lock_guard slk(slot.mu);
  return slot.img;
}

ProcState Controller::slotState(int pid) const {
  Slot& slot = *slots_[static_cast<std::size_t>(pid)];
  std::lock_guard slk(slot.mu);
  return slot.state;
}

bool Controller::pinned(int pid) {
  Slot& slot = *slots_[static_cast<std::size_t>(pid)];
  std::lock_guard lk(mu_);  // generation_ is guarded by mu_
  std::lock_guard slk(slot.mu);
  if (slot.state == ProcState::Finished) return true;
  return slot.state == ProcState::Parked && slot.parkGen == generation_;
}

}  // namespace xdp::ckpt
