#include "xdp/ckpt/io.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace xdp::ckpt {
namespace {

constexpr char kMagic[8] = {'X', 'D', 'P', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// Record tags.
constexpr std::uint16_t kTagMeta = 1;
constexpr std::uint16_t kTagTable = 2;
constexpr std::uint16_t kTagFabric = 3;
constexpr std::uint16_t kTagCont = 4;

void appendRecord(Writer& w, std::uint16_t tag,
                  const std::vector<std::byte>& payload) {
  w.u16(tag);
  w.u64(payload.size());
  w.raw(payload);
  w.u64(fnv1a(payload));
}

}  // namespace

std::uint64_t fnv1a(const std::byte* data, std::size_t n, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t snapshotRecordCount(const Snapshot& snap) {
  return 2 + snap.tables.size() + snap.conts.size();
}

std::vector<std::byte> encodeSnapshot(const Snapshot& snap) {
  Writer w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(snap.version);

  {
    Writer meta;
    meta.u8(snap.backend);
    meta.i64(snap.nprocs);
    meta.u64(snap.programHash);
    meta.u64(snap.captureStep);
    meta.i64(static_cast<std::int64_t>(snap.tables.size()));
    meta.i64(static_cast<std::int64_t>(snap.conts.size()));
    appendRecord(w, kTagMeta, meta.buffer());
  }
  for (std::size_t pid = 0; pid < snap.tables.size(); ++pid) {
    Writer t;
    t.i64(static_cast<std::int64_t>(pid));
    t.bytes(snap.tables[pid]);
    appendRecord(w, kTagTable, t.buffer());
  }
  appendRecord(w, kTagFabric, snap.fabric);
  for (std::size_t pid = 0; pid < snap.conts.size(); ++pid) {
    const ContImage& c = snap.conts[pid];
    Writer t;
    t.i64(static_cast<std::int64_t>(pid));
    t.u8(c.engine);
    t.boolean(c.finished);
    t.boolean(c.unsafe);
    for (std::uint64_t s : c.stats) t.u64(s);
    t.bytes(c.payload);
    appendRecord(w, kTagCont, t.buffer());
  }

  w.u64(fnv1a(w.buffer()));
  return w.take();
}

Snapshot decodeSnapshot(const std::vector<std::byte>& buf) {
  if (buf.size() < sizeof(kMagic) + 4 + 8)
    throw CkptError("snapshot too short to hold header and trailer");
  // Whole-file checksum first: everything before the trailing u64.
  {
    Reader tail(buf.data() + buf.size() - 8, 8);
    std::uint64_t want = tail.u64();
    std::uint64_t got = fnv1a(buf.data(), buf.size() - 8);
    if (want != got) {
      std::ostringstream os;
      os << "whole-file checksum mismatch (stored " << want << ", computed "
         << got << ")";
      throw CkptError(os.str());
    }
  }

  Reader r(buf.data(), buf.size() - 8);
  for (char c : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c))
      throw CkptError("bad snapshot magic");
  }
  std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    std::ostringstream os;
    os << "unsupported snapshot version " << version << " (expected "
       << kSnapshotVersion << ")";
    throw CkptError(os.str());
  }

  Snapshot snap;
  snap.version = version;
  bool haveMeta = false;
  bool haveFabric = false;
  std::int64_t wantTables = -1;
  std::int64_t wantConts = -1;
  while (!r.atEnd()) {
    std::uint16_t tag = r.u16();
    std::vector<std::byte> payload = r.bytes();
    std::uint64_t want = r.u64();
    std::uint64_t got = fnv1a(payload);
    if (want != got) {
      std::ostringstream os;
      os << "record " << tag << " checksum mismatch (stored " << want
         << ", computed " << got << ")";
      throw CkptError(os.str());
    }
    Reader p(payload);
    switch (tag) {
      case kTagMeta: {
        if (haveMeta) throw CkptError("duplicate meta record");
        haveMeta = true;
        snap.backend = p.u8();
        snap.nprocs = static_cast<int>(p.i64());
        snap.programHash = p.u64();
        snap.captureStep = p.u64();
        wantTables = p.i64();
        wantConts = p.i64();
        if (snap.nprocs < 0 || wantTables != snap.nprocs ||
            wantConts != snap.nprocs)
          throw CkptError("meta record is internally inconsistent");
        snap.tables.resize(static_cast<std::size_t>(wantTables));
        snap.conts.resize(static_cast<std::size_t>(wantConts));
        break;
      }
      case kTagTable: {
        if (!haveMeta) throw CkptError("table record before meta record");
        std::int64_t pid = p.i64();
        if (pid < 0 || pid >= wantTables)
          throw CkptError("table record pid out of range");
        snap.tables[static_cast<std::size_t>(pid)] = p.bytes();
        break;
      }
      case kTagFabric: {
        if (haveFabric) throw CkptError("duplicate fabric record");
        haveFabric = true;
        snap.fabric = payload;
        break;
      }
      case kTagCont: {
        if (!haveMeta) throw CkptError("cont record before meta record");
        std::int64_t pid = p.i64();
        if (pid < 0 || pid >= wantConts)
          throw CkptError("cont record pid out of range");
        ContImage& c = snap.conts[static_cast<std::size_t>(pid)];
        c.engine = p.u8();
        c.finished = p.boolean();
        c.unsafe = p.boolean();
        for (auto& s : c.stats) s = p.u64();
        c.payload = p.bytes();
        break;
      }
      default:
        throw CkptError("unknown record tag");
    }
  }
  if (!haveMeta) throw CkptError("snapshot has no meta record");
  if (!haveFabric) throw CkptError("snapshot has no fabric record");
  return snap;
}

void saveSnapshotFile(const std::string& path,
                      const std::vector<std::byte>& encoded) {
  // Write-then-rename so a crash mid-write leaves no torn file under the
  // final name (a torn temp file is ignored by adoptFromDir).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw CkptError("cannot open for write: " + tmp);
    os.write(reinterpret_cast<const char*>(encoded.data()),
             static_cast<std::streamsize>(encoded.size()));
    if (!os) throw CkptError("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw CkptError("rename failed: " + path + ": " + ec.message());
}

std::vector<std::byte> loadSnapshotFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw CkptError("cannot open: " + path);
  std::streamsize n = is.tellg();
  is.seekg(0);
  std::vector<std::byte> buf(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(buf.data()), n);
  if (!is) throw CkptError("read failed: " + path);
  return buf;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) throw CkptError("cannot create dir: " + dir_ + ": " + ec.message());
  }
}

std::string CheckpointStore::filePath(std::uint64_t seq) const {
  std::ostringstream os;
  os << dir_ << "/ckpt-";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%08llu",
                static_cast<unsigned long long>(seq));
  os << buf << ".xdpckpt";
  return os.str();
}

void CheckpointStore::add(const Snapshot& snap) {
  Held h;
  h.seq = nextSeq_++;
  h.encoded = encodeSnapshot(snap);
  stats_.snapshots += 1;
  stats_.lastBytes = h.encoded.size();
  stats_.lastRecords = snapshotRecordCount(snap);
  stats_.totalBytes += h.encoded.size();
  if (!dir_.empty()) saveSnapshotFile(filePath(h.seq), h.encoded);
  ring_.push_back(std::move(h));
  while (ring_.size() > 2) {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove(filePath(ring_.front().seq), ec);
    }
    ring_.pop_front();
  }
}

Snapshot CheckpointStore::loadLatestGood() {
  while (!ring_.empty()) {
    try {
      return decodeSnapshot(ring_.back().encoded);
    } catch (const CkptError&) {
      stats_.fallbacks += 1;
      ring_.pop_back();
    }
  }
  throw CkptError("no good snapshot available");
}

int CheckpointStore::adoptFromDir() {
  if (dir_.empty()) return 0;
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& ent : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0) continue;
    if (name.size() < 13 || name.substr(name.size() - 8) != ".xdpckpt")
      continue;
    std::uint64_t seq = 0;
    try {
      seq = std::stoull(name.substr(5, name.size() - 13));
    } catch (...) {
      continue;
    }
    found.emplace_back(seq, ent.path().string());
  }
  std::sort(found.begin(), found.end());
  int adopted = 0;
  // Newest two, oldest first into the ring.
  std::size_t start = found.size() > 2 ? found.size() - 2 : 0;
  ring_.clear();
  for (std::size_t i = start; i < found.size(); ++i) {
    try {
      std::vector<std::byte> buf = loadSnapshotFile(found[i].second);
      decodeSnapshot(buf);  // verify before adopting
      Held h;
      h.seq = found[i].first;
      h.encoded = std::move(buf);
      ring_.push_back(std::move(h));
      adopted += 1;
    } catch (const CkptError&) {
      stats_.fallbacks += 1;
    }
  }
  if (!found.empty()) nextSeq_ = found.back().first + 1;
  return adopted;
}

}  // namespace xdp::ckpt
