#include "xdp/sections/region_list.hpp"

#include <ostream>

#include "xdp/support/check.hpp"

namespace xdp::sec {

RegionList::RegionList(Section s) {
  if (!s.empty()) sections_.push_back(std::move(s));
}

RegionList::RegionList(std::vector<Section> disjoint) {
  for (auto& s : disjoint)
    if (!s.empty()) sections_.push_back(std::move(s));
}

Index RegionList::count() const {
  Index n = 0;
  for (const Section& s : sections_) n += s.count();
  return n;
}

bool RegionList::contains(const Point& p) const {
  for (const Section& s : sections_)
    if (s.contains(p)) return true;
  return false;
}

bool RegionList::covers(const Section& query) const {
  if (query.empty()) return true;
  Index covered = 0;
  for (const Section& s : sections_) {
    if (s.rank() != query.rank()) continue;
    covered += Section::intersect(s, query).count();
    if (covered >= query.count()) return true;  // pieces are disjoint
  }
  return covered == query.count();
}

void RegionList::add(const Section& s) {
  if (s.empty()) return;
  // Insert only the part not already present, keeping pieces disjoint.
  std::vector<Section> fresh{s};
  for (const Section& existing : sections_) {
    std::vector<Section> next;
    for (const Section& piece : fresh) {
      if (piece.rank() != existing.rank()) {
        next.push_back(piece);
        continue;
      }
      auto rest = Section::subtract(piece, existing);
      next.insert(next.end(), rest.begin(), rest.end());
    }
    fresh = std::move(next);
    if (fresh.empty()) return;
  }
  sections_.insert(sections_.end(), fresh.begin(), fresh.end());
}

void RegionList::subtract(const Section& s) {
  if (s.empty()) return;
  std::vector<Section> out;
  for (const Section& piece : sections_) {
    if (piece.rank() != s.rank()) {
      out.push_back(piece);
      continue;
    }
    auto rest = Section::subtract(piece, s);
    out.insert(out.end(), rest.begin(), rest.end());
  }
  sections_ = std::move(out);
}

std::vector<Section> RegionList::intersect(const Section& query) const {
  std::vector<Section> out;
  for (const Section& s : sections_) {
    if (s.rank() != query.rank()) continue;
    Section i = Section::intersect(s, query);
    if (!i.empty()) out.push_back(i);
  }
  return out;
}

bool RegionList::sameSet(const RegionList& other) const {
  if (count() != other.count()) return false;
  for (const Section& s : sections_)
    if (!other.covers(s)) return false;
  return true;
}

void RegionList::forEach(const std::function<void(const Point&)>& fn) const {
  for (const Section& s : sections_) s.forEach(fn);
}

std::ostream& operator<<(std::ostream& os, const RegionList& rl) {
  os << "{";
  bool first = true;
  for (const Section& s : rl.sections()) {
    if (!first) os << " u ";
    first = false;
    os << s;
  }
  return os << "}";
}

}  // namespace xdp::sec
