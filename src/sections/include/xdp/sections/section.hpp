// A Section is a rectangular, possibly strided, subset of an array's index
// space: the Cartesian product of one Triplet per dimension (paper
// section 2.1). A scalar is a rank-0 section with exactly one element.
//
// Sections are value types. All set operations (intersection, coverage,
// difference) are exact for arbitrary strides.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "xdp/sections/triplet.hpp"

namespace xdp::sec {

/// Maximum array rank supported by the runtime (HPF programs rarely exceed
/// rank 4; raising this is a recompile, not a redesign).
inline constexpr int kMaxRank = 4;

/// A point in an index space.
class Point {
 public:
  Point() : rank_(0), idx_{} {}
  Point(std::initializer_list<Index> idx);
  Point(int rank, const std::array<Index, kMaxRank>& idx);

  int rank() const { return rank_; }
  Index operator[](int d) const { return idx_[static_cast<unsigned>(d)]; }
  Index& operator[](int d) { return idx_[static_cast<unsigned>(d)]; }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.rank_ != b.rank_) return false;
    for (int d = 0; d < a.rank_; ++d)
      if (a.idx_[static_cast<unsigned>(d)] != b.idx_[static_cast<unsigned>(d)])
        return false;
    return true;
  }

 private:
  int rank_;
  std::array<Index, kMaxRank> idx_;
};

std::ostream& operator<<(std::ostream& os, const Point& p);

class Section {
 public:
  /// Rank-0 (scalar) section — one element.
  Section() : rank_(0) {}

  /// Section from one triplet per dimension.
  Section(std::initializer_list<Triplet> dims);
  explicit Section(const std::vector<Triplet>& dims);
  Section(int rank, const std::array<Triplet, kMaxRank>& dims);

  /// The full index space [lb[d], ub[d]] in every dimension.
  static Section box(std::initializer_list<std::pair<Index, Index>> bounds);

  int rank() const { return rank_; }
  const Triplet& dim(int d) const;
  void setDim(int d, const Triplet& t);

  /// Number of elements (product over dims; 1 for rank 0).
  Index count() const;
  bool empty() const { return count() == 0; }

  bool contains(const Point& p) const;

  /// True iff every element of `inner` is an element of this section.
  bool containsAll(const Section& inner) const;

  static Section intersect(const Section& a, const Section& b);

  /// Exact set difference a \ b as a list of disjoint sections
  /// (slab decomposition dimension by dimension).
  static std::vector<Section> subtract(const Section& a, const Section& b);

  /// Set equality (canonical representation makes this memberwise).
  friend bool operator==(const Section& a, const Section& b);

  /// Position of `p` in this section's Fortran-order element enumeration
  /// (dimension 0 fastest). Precondition: contains(p).
  Index fortranPos(const Point& p) const;

  /// Visit every point in Fortran order (first dimension fastest).
  void forEach(const std::function<void(const Point&)>& fn) const;

  /// All points, materialized (test/debug helper — O(count) memory).
  std::vector<Point> points() const;

  std::string str() const;

 private:
  int rank_;
  std::array<Triplet, kMaxRank> dims_{};
};

std::ostream& operator<<(std::ostream& os, const Section& s);

}  // namespace xdp::sec
