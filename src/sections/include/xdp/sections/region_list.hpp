// A RegionList is a set of array indices maintained as a list of pairwise
// disjoint Sections. It is the representation of (a) a processor's local
// partition under a distribution (which for CYCLIC/BLOCK-CYCLIC is not a
// single rectangle) and (b) arbitrary owned index sets after run-time
// ownership transfers have fragmented the original distribution.
#pragma once

#include <functional>
#include <vector>

#include "xdp/sections/section.hpp"

namespace xdp::sec {

class RegionList {
 public:
  RegionList() = default;
  explicit RegionList(Section s);
  explicit RegionList(std::vector<Section> disjoint);

  const std::vector<Section>& sections() const { return sections_; }
  bool empty() const { return sections_.empty(); }
  Index count() const;

  bool contains(const Point& p) const;

  /// True iff every element of `query` is in this set. This is exactly the
  /// paper's iown() evaluation algorithm (section 3.1): intersect the query
  /// with every piece and check the union of the intersections equals the
  /// query — since the pieces are disjoint, a cardinality sum suffices.
  bool covers(const Section& query) const;

  /// Add a section. Any elements already present are not duplicated
  /// (the incoming section is diffed against existing pieces first).
  void add(const Section& s);

  /// Remove every element of `s` from the set.
  void subtract(const Section& s);

  /// Elements of `query` that are in this set, as disjoint sections.
  std::vector<Section> intersect(const Section& query) const;

  /// Set equality against another region list (by mutual coverage).
  bool sameSet(const RegionList& other) const;

  void forEach(const std::function<void(const Point&)>& fn) const;

 private:
  std::vector<Section> sections_;
};

std::ostream& operator<<(std::ostream& os, const RegionList& rl);

}  // namespace xdp::sec
