// Fortran-90 triplet notation lb:ub:stride — the building block of XDP
// sections (paper section 2.1: "we assume that sections are defined by
// Fortran 90 triplet notation").
//
// A Triplet denotes the arithmetic progression
//     { lb, lb+stride, lb+2*stride, ..., <= ub }
// Triplets are canonicalized on construction: ub is clamped to the last
// element actually in the set, and an empty progression is represented
// uniformly (lb=0, ub=-1, stride=1). Strides are strictly positive; a
// descending Fortran triplet (negative stride) denotes the same *set* of
// indices, so callers construct it via Triplet::descending which reverses
// it. XDP ownership is a property of index sets, not traversal order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

namespace xdp::sec {

using Index = std::int64_t;

class Triplet {
 public:
  /// Empty triplet.
  constexpr Triplet() : lb_(0), ub_(-1), stride_(1) {}

  /// Single index i (Fortran `A[i]`).
  constexpr explicit Triplet(Index i) : lb_(i), ub_(i), stride_(1) {}

  /// Range lb:ub with stride 1.
  Triplet(Index lb, Index ub);

  /// Range lb:ub:stride, stride >= 1.
  Triplet(Index lb, Index ub, Index stride);

  /// The index set of a descending Fortran triplet first:last:stride with
  /// stride < 0 (e.g. 10:2:-2 == {10,8,6,4,2} == 2:10:2 as a set).
  static Triplet descending(Index first, Index last, Index stride);

  constexpr Index lb() const { return lb_; }
  constexpr Index ub() const { return ub_; }
  constexpr Index stride() const { return stride_; }

  constexpr bool empty() const { return lb_ > ub_; }
  constexpr Index count() const {
    return empty() ? 0 : (ub_ - lb_) / stride_ + 1;
  }

  constexpr bool contains(Index i) const {
    return i >= lb_ && i <= ub_ && (i - lb_) % stride_ == 0;
  }

  /// k-th element, 0 <= k < count().
  Index at(Index k) const;

  /// Set intersection of two arithmetic progressions (exact, via the
  /// extended Euclidean algorithm / CRT — handles arbitrary strides).
  static Triplet intersect(const Triplet& a, const Triplet& b);

  /// Set difference a \ b as a disjoint union of triplets. The number of
  /// pieces is O(lcm(a.stride,b.stride)/a.stride) in the worst case;
  /// callers that need bounded output should align strides first.
  static std::vector<Triplet> subtract(const Triplet& a, const Triplet& b);

  /// The set { i : a*i + b ∈ this }, a != 0 — itself an arithmetic
  /// progression, so the result is exact. This is how a subscript affine
  /// in a loop variable is pulled back from an owned index range to the
  /// loop iterations that touch it (interpreter guard range-splitting).
  Triplet affinePreimage(Index a, Index b) const;

  /// True iff the two triplets denote the same index set.
  friend constexpr bool operator==(const Triplet& a, const Triplet& b) {
    return (a.empty() && b.empty()) ||
           (a.lb_ == b.lb_ && a.ub_ == b.ub_ && a.stride_ == b.stride_);
  }

 private:
  void canonicalize();

  Index lb_;
  Index ub_;
  Index stride_;
};

std::ostream& operator<<(std::ostream& os, const Triplet& t);

}  // namespace xdp::sec
