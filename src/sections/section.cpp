#include "xdp/sections/section.hpp"

#include <ostream>
#include <sstream>

#include "xdp/support/check.hpp"

namespace xdp::sec {

Point::Point(std::initializer_list<Index> idx) : rank_(0), idx_{} {
  XDP_CHECK(idx.size() <= kMaxRank, "point rank exceeds kMaxRank");
  for (Index i : idx) idx_[static_cast<unsigned>(rank_++)] = i;
}

Point::Point(int rank, const std::array<Index, kMaxRank>& idx)
    : rank_(rank), idx_(idx) {
  XDP_CHECK(rank >= 0 && rank <= kMaxRank, "point rank out of range");
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  os << "(";
  for (int d = 0; d < p.rank(); ++d) {
    if (d) os << ",";
    os << p[d];
  }
  return os << ")";
}

Section::Section(std::initializer_list<Triplet> dims) : rank_(0) {
  XDP_CHECK(dims.size() <= kMaxRank, "section rank exceeds kMaxRank");
  for (const Triplet& t : dims) dims_[static_cast<unsigned>(rank_++)] = t;
}

Section::Section(const std::vector<Triplet>& dims) : rank_(0) {
  XDP_CHECK(dims.size() <= kMaxRank, "section rank exceeds kMaxRank");
  for (const Triplet& t : dims) dims_[static_cast<unsigned>(rank_++)] = t;
}

Section::Section(int rank, const std::array<Triplet, kMaxRank>& dims)
    : rank_(rank), dims_(dims) {
  XDP_CHECK(rank >= 0 && rank <= kMaxRank, "section rank out of range");
}

Section Section::box(std::initializer_list<std::pair<Index, Index>> bounds) {
  Section s;
  XDP_CHECK(bounds.size() <= kMaxRank, "section rank exceeds kMaxRank");
  for (const auto& [lb, ub] : bounds)
    s.dims_[static_cast<unsigned>(s.rank_++)] = Triplet(lb, ub);
  return s;
}

const Triplet& Section::dim(int d) const {
  XDP_CHECK(d >= 0 && d < rank_, "dimension out of range");
  return dims_[static_cast<unsigned>(d)];
}

void Section::setDim(int d, const Triplet& t) {
  XDP_CHECK(d >= 0 && d < rank_, "dimension out of range");
  dims_[static_cast<unsigned>(d)] = t;
}

Index Section::count() const {
  Index n = 1;
  for (int d = 0; d < rank_; ++d) n *= dims_[static_cast<unsigned>(d)].count();
  return n;
}

bool Section::contains(const Point& p) const {
  if (p.rank() != rank_) return false;
  for (int d = 0; d < rank_; ++d)
    if (!dims_[static_cast<unsigned>(d)].contains(p[d])) return false;
  return true;
}

bool Section::containsAll(const Section& inner) const {
  if (inner.empty()) return true;
  if (inner.rank() != rank_) return false;
  Section i = intersect(*this, inner);
  return i.count() == inner.count();
}

Section Section::intersect(const Section& a, const Section& b) {
  XDP_CHECK(a.rank_ == b.rank_, "rank mismatch in section intersection");
  Section out;
  out.rank_ = a.rank_;
  for (int d = 0; d < a.rank_; ++d)
    out.dims_[static_cast<unsigned>(d)] =
        Triplet::intersect(a.dims_[static_cast<unsigned>(d)],
                           b.dims_[static_cast<unsigned>(d)]);
  return out;
}

std::vector<Section> Section::subtract(const Section& a, const Section& b) {
  std::vector<Section> out;
  if (a.empty()) return out;
  if (a.rank_ != b.rank_ || Section::intersect(a, b).empty()) {
    out.push_back(a);
    return out;
  }
  // Slab decomposition: pieces where dims < d are clipped to b and dim d is
  // outside b. The pieces are pairwise disjoint and their union is a \ b.
  for (int d = 0; d < a.rank_; ++d) {
    std::vector<Triplet> rest = Triplet::subtract(
        a.dims_[static_cast<unsigned>(d)], b.dims_[static_cast<unsigned>(d)]);
    for (const Triplet& t : rest) {
      Section piece = a;
      for (int e = 0; e < d; ++e)
        piece.dims_[static_cast<unsigned>(e)] =
            Triplet::intersect(a.dims_[static_cast<unsigned>(e)],
                               b.dims_[static_cast<unsigned>(e)]);
      piece.dims_[static_cast<unsigned>(d)] = t;
      if (!piece.empty()) out.push_back(piece);
    }
  }
  return out;
}

bool operator==(const Section& a, const Section& b) {
  if (a.empty() && b.empty()) return true;
  if (a.rank_ != b.rank_) return false;
  for (int d = 0; d < a.rank_; ++d)
    if (!(a.dims_[static_cast<unsigned>(d)] ==
          b.dims_[static_cast<unsigned>(d)]))
      return false;
  return true;
}

Index Section::fortranPos(const Point& p) const {
  XDP_CHECK(p.rank() == rank_, "fortranPos: rank mismatch");
  Index pos = 0;
  Index mult = 1;
  for (int d = 0; d < rank_; ++d) {
    const Triplet& t = dims_[static_cast<unsigned>(d)];
    pos += ((p[d] - t.lb()) / t.stride()) * mult;
    mult *= t.count();
  }
  return pos;
}

void Section::forEach(const std::function<void(const Point&)>& fn) const {
  if (empty()) return;
  Point p(rank_, {});
  // Iterate in Fortran order: dimension 0 varies fastest.
  std::array<Index, kMaxRank> k{};
  for (int d = 0; d < rank_; ++d) p[d] = dims_[static_cast<unsigned>(d)].lb();
  if (rank_ == 0) {
    fn(p);
    return;
  }
  while (true) {
    fn(p);
    int d = 0;
    while (d < rank_) {
      auto du = static_cast<unsigned>(d);
      if (++k[du] < dims_[du].count()) {
        p[d] = dims_[du].at(k[du]);
        break;
      }
      k[du] = 0;
      p[d] = dims_[du].lb();
      ++d;
    }
    if (d == rank_) return;
  }
}

std::vector<Point> Section::points() const {
  std::vector<Point> out;
  out.reserve(static_cast<std::size_t>(count()));
  forEach([&](const Point& p) { out.push_back(p); });
  return out;
}

std::string Section::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Section& s) {
  os << "[";
  for (int d = 0; d < s.rank(); ++d) {
    if (d) os << ",";
    os << s.dim(d);
  }
  return os << "]";
}

}  // namespace xdp::sec
