#include "xdp/sections/triplet.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "xdp/support/check.hpp"

namespace xdp::sec {
namespace {

/// Extended gcd: returns g = gcd(a,b) and x,y with a*x + b*y = g.
Index extGcd(Index a, Index b, Index& x, Index& y) {
  if (b == 0) {
    x = 1;
    y = 0;
    return a;
  }
  Index x1 = 0, y1 = 0;
  Index g = extGcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

/// Floor division for possibly-negative numerators.
constexpr Index floorDiv(Index a, Index b) {
  Index q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

Triplet::Triplet(Index lb, Index ub) : lb_(lb), ub_(ub), stride_(1) {
  canonicalize();
}

Triplet::Triplet(Index lb, Index ub, Index stride)
    : lb_(lb), ub_(ub), stride_(stride) {
  XDP_CHECK(stride >= 1, "triplet stride must be >= 1 (use descending())");
  canonicalize();
}

Triplet Triplet::descending(Index first, Index last, Index stride) {
  XDP_CHECK(stride <= -1, "descending() requires a negative stride");
  if (first < last) return Triplet();  // empty descending range
  // Elements are first, first+stride, ... >= last. As an ascending set the
  // smallest element is first - k*|stride| for the largest k fitting.
  Index s = -stride;
  Index k = (first - last) / s;
  return Triplet(first - k * s, first, s);
}

void Triplet::canonicalize() {
  if (lb_ > ub_) {
    lb_ = 0;
    ub_ = -1;
    stride_ = 1;
    return;
  }
  ub_ = lb_ + ((ub_ - lb_) / stride_) * stride_;
  if (lb_ == ub_) stride_ = 1;
}

Index Triplet::at(Index k) const {
  XDP_CHECK(k >= 0 && k < count(), "triplet element index out of range");
  return lb_ + k * stride_;
}

Triplet Triplet::intersect(const Triplet& a, const Triplet& b) {
  if (a.empty() || b.empty()) return Triplet();
  // Solve a.lb + i*a.stride == b.lb + j*b.stride.
  Index x = 0, y = 0;
  Index g = extGcd(a.stride_, b.stride_, x, y);
  Index diff = b.lb_ - a.lb_;
  if (diff % g != 0) return Triplet();  // progressions never meet
  // Everything below runs in __int128: the combined stride m = lcm can
  // exceed Index width even for representable inputs, and the Bezout
  // product x * (diff/g) * stride overflows even __int128 unless i0 is
  // first reduced modulo m / a.stride = b.stride / g (the solution is
  // only defined mod that anyway).
  const __int128 sa = a.stride_;
  const __int128 sb = b.stride_;
  const __int128 m = sa / g * sb;  // lcm(sa, sb) < 2^126
  const __int128 q = sb / g;       // = m / sa
  const __int128 i0 = static_cast<__int128>(x) % q *
                      ((static_cast<__int128>(diff) / g) % q) % q;
  const __int128 lo = std::max(a.lb_, b.lb_);
  const __int128 hi = std::min(a.ub_, b.ub_);
  if (lo > hi) return Triplet();
  // cand is one common element (|i0| < q keeps |i0*sa| < m); shift its
  // residue class mod m to the first element >= lo.
  const __int128 cand = static_cast<__int128>(a.lb_) + i0 * sa;
  __int128 off = (cand - lo) % m;
  if (off < 0) off += m;
  const __int128 first = lo + off;
  if (first > hi) return Triplet();
  const __int128 last = first + (hi - first) / m * m;
  if (first == last)
    return Triplet(static_cast<Index>(first), static_cast<Index>(first));
  // Two or more common elements with their gap wider than Index only
  // happens for ranges spanning more than 2^63; such a triplet has no
  // representation, so reject it rather than return a corrupt one.
  XDP_CHECK(m <= std::numeric_limits<Index>::max(),
            "triplet intersection stride exceeds Index range");
  return Triplet(static_cast<Index>(first), static_cast<Index>(last),
                 static_cast<Index>(m));
}

std::vector<Triplet> Triplet::subtract(const Triplet& a, const Triplet& b) {
  std::vector<Triplet> out;
  if (a.empty()) return out;
  Triplet i = intersect(a, b);
  if (i.empty()) {
    out.push_back(a);
    return out;
  }
  // Positions (in units of a.stride from a.lb) of the removed elements form
  // an arithmetic progression: start p0, step q, count i.count().
  Index p0 = (i.lb() - a.lb_) / a.stride_;
  Index q = i.stride() / a.stride_;
  Index pLast = (i.ub() - a.lb_) / a.stride_;
  Index n = a.count();
  // Head: positions [0, p0).
  if (p0 > 0)
    out.emplace_back(a.lb_, a.lb_ + (p0 - 1) * a.stride_, a.stride_);
  // Middle: for each residue r in (0, q), positions p0+r, p0+r+q, ... < pLast.
  if (q > 1) {
    for (Index r = 1; r < q; ++r) {
      Index start = p0 + r;
      if (start > pLast) break;
      // Last position of this residue class that is < pLast + q but also <= n-1
      // and within the removed span [p0, pLast].
      Index stop = std::min(pLast, n - 1);
      Index k = floorDiv(stop - start, q);
      if (k < 0) continue;
      Index end = start + k * q;
      out.emplace_back(a.lb_ + start * a.stride_, a.lb_ + end * a.stride_,
                       q * a.stride_);
    }
  }
  // Tail: positions (pLast, n).
  if (pLast + 1 <= n - 1)
    out.emplace_back(a.lb_ + (pLast + 1) * a.stride_,
                     a.lb_ + (n - 1) * a.stride_, a.stride_);
  return out;
}

Triplet Triplet::affinePreimage(Index a, Index b) const {
  XDP_CHECK(a != 0, "affinePreimage of a constant map is not a set of i");
  if (empty()) return Triplet();
  const Index mag = a > 0 ? a : -a;
  // The image of Z under i -> a*i + b is the residue class b (mod |a|).
  // Materialize its elements inside [lb_, ub_] as a triplet and intersect
  // with this progression; every surviving value pulls back to exactly one
  // integer i = (v - b) / a.
  const Index first = b + floorDiv(lb_ - b + mag - 1, mag) * mag;
  if (first > ub_) return Triplet();
  Triplet image = intersect(Triplet(first, ub_, mag), *this);
  if (image.empty()) return Triplet();
  const Index iFromLow = (image.lb() - b) / a;
  const Index iFromHigh = (image.ub() - b) / a;
  if (image.count() == 1) return Triplet(iFromLow);
  // image.stride is a multiple of |a| (all its elements share the residue
  // class of b mod |a|), so the preimage stride is integral.
  const Index istep = image.stride() / mag;
  return a > 0 ? Triplet(iFromLow, iFromHigh, istep)
               : Triplet(iFromHigh, iFromLow, istep);
}

std::ostream& operator<<(std::ostream& os, const Triplet& t) {
  if (t.empty()) return os << "<empty>";
  os << t.lb() << ":" << t.ub();
  if (t.stride() != 1) os << ":" << t.stride();
  return os;
}

}  // namespace xdp::sec
