#include "xdp/sections/triplet.hpp"

#include <algorithm>
#include <ostream>

#include "xdp/support/check.hpp"

namespace xdp::sec {
namespace {

/// Extended gcd: returns g = gcd(a,b) and x,y with a*x + b*y = g.
Index extGcd(Index a, Index b, Index& x, Index& y) {
  if (b == 0) {
    x = 1;
    y = 0;
    return a;
  }
  Index x1 = 0, y1 = 0;
  Index g = extGcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

/// Floor division for possibly-negative numerators.
constexpr Index floorDiv(Index a, Index b) {
  Index q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Euclidean remainder in [0, b).
constexpr Index mod(Index a, Index b) {
  Index r = a % b;
  return r < 0 ? r + b : r;
}

}  // namespace

Triplet::Triplet(Index lb, Index ub) : lb_(lb), ub_(ub), stride_(1) {
  canonicalize();
}

Triplet::Triplet(Index lb, Index ub, Index stride)
    : lb_(lb), ub_(ub), stride_(stride) {
  XDP_CHECK(stride >= 1, "triplet stride must be >= 1 (use descending())");
  canonicalize();
}

Triplet Triplet::descending(Index first, Index last, Index stride) {
  XDP_CHECK(stride <= -1, "descending() requires a negative stride");
  if (first < last) return Triplet();  // empty descending range
  // Elements are first, first+stride, ... >= last. As an ascending set the
  // smallest element is first - k*|stride| for the largest k fitting.
  Index s = -stride;
  Index k = (first - last) / s;
  return Triplet(first - k * s, first, s);
}

void Triplet::canonicalize() {
  if (lb_ > ub_) {
    lb_ = 0;
    ub_ = -1;
    stride_ = 1;
    return;
  }
  ub_ = lb_ + ((ub_ - lb_) / stride_) * stride_;
  if (lb_ == ub_) stride_ = 1;
}

Index Triplet::at(Index k) const {
  XDP_CHECK(k >= 0 && k < count(), "triplet element index out of range");
  return lb_ + k * stride_;
}

Triplet Triplet::intersect(const Triplet& a, const Triplet& b) {
  if (a.empty() || b.empty()) return Triplet();
  // Solve a.lb + i*a.stride == b.lb + j*b.stride.
  Index x = 0, y = 0;
  Index g = extGcd(a.stride_, b.stride_, x, y);
  Index diff = b.lb_ - a.lb_;
  if (diff % g != 0) return Triplet();  // progressions never meet
  // One solution: i0 = x * (diff / g); combined stride m = lcm.
  Index m = a.stride_ / g * b.stride_;
  // Smallest common element: start from a.lb + i0*a.stride, then shift into
  // [max(lb), ...] by multiples of m.
  // Use __int128 to dodge overflow in the intermediate product.
  __int128 cand128 =
      static_cast<__int128>(a.lb_) +
      static_cast<__int128>(x) * (diff / g) * a.stride_;
  Index lo = std::max(a.lb_, b.lb_);
  Index hi = std::min(a.ub_, b.ub_);
  if (lo > hi) return Triplet();
  // Reduce cand modulo m into the residue class, then find the first
  // element >= lo.
  __int128 rem128 = cand128 % m;
  Index rem = static_cast<Index>(rem128 < 0 ? rem128 + m : rem128);
  Index first = lo + mod(rem - lo, m);
  if (first > hi) return Triplet();
  Index last = first + floorDiv(hi - first, m) * m;
  return Triplet(first, last, m);
}

std::vector<Triplet> Triplet::subtract(const Triplet& a, const Triplet& b) {
  std::vector<Triplet> out;
  if (a.empty()) return out;
  Triplet i = intersect(a, b);
  if (i.empty()) {
    out.push_back(a);
    return out;
  }
  // Positions (in units of a.stride from a.lb) of the removed elements form
  // an arithmetic progression: start p0, step q, count i.count().
  Index p0 = (i.lb() - a.lb_) / a.stride_;
  Index q = i.stride() / a.stride_;
  Index pLast = (i.ub() - a.lb_) / a.stride_;
  Index n = a.count();
  // Head: positions [0, p0).
  if (p0 > 0)
    out.emplace_back(a.lb_, a.lb_ + (p0 - 1) * a.stride_, a.stride_);
  // Middle: for each residue r in (0, q), positions p0+r, p0+r+q, ... < pLast.
  if (q > 1) {
    for (Index r = 1; r < q; ++r) {
      Index start = p0 + r;
      if (start > pLast) break;
      // Last position of this residue class that is < pLast + q but also <= n-1
      // and within the removed span [p0, pLast].
      Index stop = std::min(pLast, n - 1);
      Index k = floorDiv(stop - start, q);
      if (k < 0) continue;
      Index end = start + k * q;
      out.emplace_back(a.lb_ + start * a.stride_, a.lb_ + end * a.stride_,
                       q * a.stride_);
    }
  }
  // Tail: positions (pLast, n).
  if (pLast + 1 <= n - 1)
    out.emplace_back(a.lb_ + (pLast + 1) * a.stride_,
                     a.lb_ + (n - 1) * a.stride_, a.stride_);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Triplet& t) {
  if (t.empty()) return os << "<empty>";
  os << t.lb() << ":" << t.ub();
  if (t.stride() != 1) os << ":" << t.stride();
  return os;
}

}  // namespace xdp::sec
