// Workload generators and the deterministic fill machinery used by every
// verification path.
#include <gtest/gtest.h>

#include <numeric>

#include "xdp/apps/programs.hpp"
#include "xdp/apps/workloads.hpp"

namespace xdp::apps {
namespace {

TEST(Workloads, SkewedCostsPreserveTotal) {
  for (double skew : {1.0, 1.05, 1.3}) {
    auto costs = skewedCosts(50, 2e-3, skew, 7);
    ASSERT_EQ(costs.size(), 50u);
    double total = std::accumulate(costs.begin(), costs.end(), 0.0);
    EXPECT_NEAR(total, 50 * 2e-3, 1e-12);
    for (double c : costs) EXPECT_GT(c, 0.0);
  }
}

TEST(Workloads, SkewOneIsUniform) {
  auto costs = skewedCosts(10, 1e-3, 1.0, 3);
  for (double c : costs) EXPECT_DOUBLE_EQ(c, 1e-3);
}

TEST(Workloads, HigherSkewConcentratesWork) {
  auto mild = skewedCosts(64, 1e-3, 1.02, 42);
  auto harsh = skewedCosts(64, 1e-3, 1.2, 42);
  auto maxOf = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  EXPECT_GT(maxOf(harsh), maxOf(mild));
}

TEST(Workloads, SkewedCostsDeterministicPerSeed) {
  EXPECT_EQ(skewedCosts(20, 1e-3, 1.1, 5), skewedCosts(20, 1e-3, 1.1, 5));
  EXPECT_NE(skewedCosts(20, 1e-3, 1.1, 5), skewedCosts(20, 1e-3, 1.1, 6));
}

TEST(Workloads, CellValueDependsOnAllInputs) {
  sec::Point p1{3, 4};
  sec::Point p2{4, 3};
  EXPECT_EQ(cellValueAt(1, 0, p1), cellValueAt(1, 0, p1));
  EXPECT_NE(cellValueAt(1, 0, p1), cellValueAt(1, 0, p2));  // order matters
  EXPECT_NE(cellValueAt(1, 0, p1), cellValueAt(1, 1, p1));  // symbol matters
  EXPECT_NE(cellValueAt(1, 0, p1), cellValueAt(2, 0, p1));  // seed matters
  double v = cellValueAt(123, 0, p1);
  EXPECT_GE(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(Workloads, ComplexCellValueHasIndependentParts) {
  sec::Point p{1, 2, 3};
  Complex c = complexCellValueAt(9, 0, p);
  EXPECT_NE(c.real(), c.imag());
  EXPECT_EQ(c, complexCellValueAt(9, 0, p));
}

TEST(Workloads, GatherRoundTripsFill) {
  // fill kernel + gather are inverses over the whole array.
  il::Program prog;
  prog.nprocs = 3;
  sec::Section g{sec::Triplet(1, 9), sec::Triplet(1, 4)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 dist::Distribution(g, {dist::DimSpec::block(3),
                                        dist::DimSpec::collapsed()}),
                 {}});
  prog.body = il::block({il::kernel("fill", {{0, il::secLocalPart(0)}})});
  interp::Interpreter in(prog, {});
  registerFillKernel(in, 77);
  in.run();
  auto vals = gatherF64(in.runtime(), 0, g);
  g.forEach([&](const sec::Point& pt) {
    EXPECT_DOUBLE_EQ(vals[static_cast<std::size_t>(g.fortranPos(pt))],
                     cellValueAt(77, 0, pt));
  });
}

}  // namespace
}  // namespace xdp::apps
