// Loop fusion and await sinking: the legality matrix. Fusion's conditions
// come from the paper's section 4 discussion ("the analysis for validity
// of fusion must also check ..."); each rejection case here encodes one
// way the transformation would break the program.
#include <gtest/gtest.h>

#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::ExprPtr;
using il::Program;
using il::SectionExprPtr;
using il::StmtKind;
using il::StmtPtr;
using sec::Section;
using sec::Triplet;

Program makeProg(std::vector<StmtPtr> stmts) {
  Program p;
  p.nprocs = 4;
  Section g{Triplet(1, 8), Triplet(1, 8)};
  p.addArray({"A", rt::ElemType::F64, g,
              dist::Distribution(g, {dist::DimSpec::collapsed(),
                                     dist::DimSpec::block(4)}),
              {}});
  Section g1{Triplet(1, 8)};
  p.addArray({"C", rt::ElemType::F64, g1,
              dist::Distribution(g1, {dist::DimSpec::block(4)}), {}});
  p.body = il::block(std::move(stmts));
  return p;
}

int topLoops(const Program& p) {
  int n = 0;
  for (const auto& s : p.body->stmts)
    if (s->kind == StmtKind::For) ++n;
  return n;
}

ExprPtr j() { return il::scalar("j"); }
SectionExprPtr aPlaneJ() {
  return il::secLit({il::TripletExpr{il::intConst(1), il::intConst(8), {}},
                     il::TripletExpr{j(), {}, {}}});
}
SectionExprPtr aColJ() {  // var in dim 0 instead
  return il::secLit({il::TripletExpr{j(), {}, {}},
                     il::TripletExpr{il::intConst(1), il::intConst(8), {}}});
}

StmtPtr loopOver(const char* var, StmtPtr body) {
  return il::forLoop(var, il::intConst(1), il::intConst(8),
                     il::block({std::move(body)}));
}

TEST(LoopFusion, FusesSameVarDimAndRenames) {
  Program p = makeProg({
      loopOver("j", il::kernel("k1", {{0, aPlaneJ()}})),
      loopOver("n", il::forLoop("q", il::intConst(0), il::intConst(3),
                                il::block({il::sendOwn(
                                    0,
                                    il::secLit({il::TripletExpr{il::intConst(1),
                                                                il::intConst(8),
                                                                {}},
                                                il::TripletExpr{il::scalar("n"),
                                                                {},
                                                                {}}}),
                                    true)}))),
  });
  Program fused = loopFusion(p);
  EXPECT_EQ(topLoops(fused), 1);
  // The second loop's variable was renamed to the first's.
  std::string text = il::printStmt(fused, fused.body);
  EXPECT_EQ(text.find("A[1:8,n]"), std::string::npos);
  EXPECT_NE(text.find("A[1:8,j]"), std::string::npos);
}

TEST(LoopFusion, RejectsDifferentVarDims) {
  Program p = makeProg({
      loopOver("j", il::kernel("k1", {{0, aPlaneJ()}})),
      loopOver("j", il::kernel("k2", {{0, aColJ()}})),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 2);
}

TEST(LoopFusion, RejectsDifferentHeaders) {
  Program p = makeProg({
      loopOver("j", il::kernel("k1", {{0, aPlaneJ()}})),
      il::forLoop("j", il::intConst(2), il::intConst(8),
                  il::block({il::kernel("k2", {{0, aPlaneJ()}})})),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 2);
}

TEST(LoopFusion, RejectsVarFreeSharedSymbol) {
  // Both loops touch A[1:8,1] (no loop-var plane): iterations alias.
  SectionExprPtr fixed =
      il::secLit({il::TripletExpr{il::intConst(1), il::intConst(8), {}},
                  il::TripletExpr{il::intConst(1), {}, {}}});
  Program p = makeProg({
      loopOver("j", il::kernel("k1", {{0, fixed}})),
      loopOver("j", il::kernel("k2", {{0, fixed}})),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 2);
}

TEST(LoopFusion, RejectsVarInRangePosition) {
  // A[1:j, 1]: footprint grows with j — not a disjoint-plane pattern.
  SectionExprPtr growing =
      il::secLit({il::TripletExpr{il::intConst(1), j(), {}},
                  il::TripletExpr{il::intConst(1), {}, {}}});
  Program p = makeProg({
      loopOver("j", il::kernel("k1", {{0, growing}})),
      loopOver("j", il::kernel("k2", {{0, aPlaneJ()}})),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 2);
}

TEST(LoopFusion, RejectsAwaitOnTransferredSymbol) {
  // The paper's Loop-4 case: the consumer's await must not be pulled into
  // the producer loop that ships the ownership.
  Program p = makeProg({
      loopOver("j", il::sendOwn(0, aPlaneJ(), true)),
      loopOver("j", il::guarded(il::awaitOf(0, aPlaneJ()),
                                il::block({il::kernel("k", {{0, aPlaneJ()}})}))),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 2);
}

TEST(LoopFusion, AllowsAwaitOnUnrelatedSymbol) {
  SectionExprPtr cJ = il::secPoint({j()});
  Program p = makeProg({
      loopOver("j", il::sendOwn(0, aPlaneJ(), true)),
      loopOver("j", il::guarded(il::awaitOf(1, cJ),
                                il::block({il::kernel("k", {{1, cJ}})}))),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 1);
}

TEST(LoopFusion, FusesDisjointSymbolLoops) {
  Program p = makeProg({
      loopOver("j", il::kernel("k1", {{0, aPlaneJ()}})),
      loopOver("j", il::kernel("k2", {{1, il::secPoint({j()})}})),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 1);
}

TEST(LoopFusion, ChainsAcrossThreeLoops) {
  Program p = makeProg({
      loopOver("a", il::kernel("k1", {{0, il::secLit(
          {il::TripletExpr{il::intConst(1), il::intConst(8), {}},
           il::TripletExpr{il::scalar("a"), {}, {}}})}})),
      loopOver("b", il::kernel("k2", {{0, il::secLit(
          {il::TripletExpr{il::intConst(1), il::intConst(8), {}},
           il::TripletExpr{il::scalar("b"), {}, {}}})}})),
      loopOver("c", il::kernel("k3", {{1, il::secPoint({il::scalar("c")})}})),
  });
  EXPECT_EQ(topLoops(loopFusion(p)), 1);
}

// --- await sinking ---------------------------------------------------------

TEST(AwaitSinking, SinksIntoLoopAndNarrows) {
  SectionExprPtr lineI =
      il::secLit({il::TripletExpr{il::scalar("i"), {}, {}},
                  il::TripletExpr{il::intConst(1), il::intConst(8), {}}});
  Program p = makeProg({il::guarded(
      il::awaitOf(0, il::secLit(
          {il::TripletExpr{il::intConst(1), il::intConst(8), {}},
           il::TripletExpr{il::intConst(1), il::intConst(8), {}}})),
      il::block({il::forLoop("i", il::intConst(1), il::intConst(8),
                             il::block({il::kernel("k", {{0, lineI}})}))}))});
  Program out = awaitSinking(p);
  std::string text = il::printStmt(out, out.body);
  // The loop is now outermost, awaiting a single line per iteration.
  EXPECT_EQ(out.body->stmts[0]->kind, StmtKind::For);
  EXPECT_NE(text.find("await(A[i,1:8])"), std::string::npos);
}

TEST(AwaitSinking, LeavesNonMatchingShapesAlone) {
  // Body references A loop-invariantly: nothing to narrow by.
  SectionExprPtr whole =
      il::secLit({il::TripletExpr{il::intConst(1), il::intConst(8), {}},
                  il::TripletExpr{il::intConst(1), il::intConst(8), {}}});
  Program p = makeProg({il::guarded(
      il::awaitOf(0, whole),
      il::block({il::forLoop("i", il::intConst(1), il::intConst(8),
                             il::block({il::kernel("k", {{0, whole}})}))}))});
  Program out = awaitSinking(p);
  EXPECT_EQ(out.body->stmts[0]->kind, StmtKind::Guarded);
}

}  // namespace
}  // namespace xdp::opt
