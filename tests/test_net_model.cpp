// Cost-model arithmetic and virtual-clock bookkeeping details not covered
// by the scenario tests.
#include <gtest/gtest.h>

#include "xdp/net/fabric.hpp"
#include "xdp/net/spmd.hpp"

namespace xdp::net {
namespace {

using sec::Section;
using sec::Triplet;

Name nm(int sym) { return Name{sym, Section{Triplet(1, 1)}}; }

TEST(NetModel, SendCostIsAlphaPlusBetaBytes) {
  CostModel m;
  m.alpha = 2.0;
  m.beta = 0.5;
  EXPECT_DOUBLE_EQ(m.sendCost(0), 2.0);
  EXPECT_DOUBLE_EQ(m.sendCost(10), 7.0);
  EXPECT_DOUBLE_EQ(m.unexpectedCost(10),
                   m.unexpectedAlpha + 10 * m.unexpectedBeta);
}

TEST(NetModel, SendToSetAccumulatesPerDestination) {
  CostModel m;
  m.alpha = 1.0;
  m.beta = 0.0;
  Fabric f(4, m);
  for (int p : {1, 2, 3})
    f.postReceive(p, nm(1), TransferKind::Data, [](const Message&) {});
  f.sendToSet(0, nm(1), TransferKind::Data,
              std::vector<std::byte>(8, std::byte{0}), {1, 2, 3});
  EXPECT_DOUBLE_EQ(f.clock(0), 3.0);  // one alpha per copy
}

TEST(NetModel, MakespanIsMaxClock) {
  Fabric f(3);
  f.advance(0, 1.0);
  f.advance(1, 7.0);
  f.advance(2, 3.0);
  EXPECT_DOUBLE_EQ(f.makespan(), 7.0);
  f.resetClocks();
  EXPECT_DOUBLE_EQ(f.makespan(), 0.0);
}

TEST(NetModel, SyncClockNeverMovesBackwards) {
  Fabric f(1);
  f.advance(0, 10.0);
  f.syncClock(0, 4.0);
  EXPECT_DOUBLE_EQ(f.clock(0), 10.0);
  f.syncClock(0, 12.0);
  EXPECT_DOUBLE_EQ(f.clock(0), 12.0);
}

TEST(NetModel, MultiSectionNamesCompareWholeSet) {
  Name a{1, Section{Triplet(1, 2)}, {Section{Triplet(5, 6)}}};
  Name b{1, Section{Triplet(1, 2)}, {Section{Triplet(5, 6)}}};
  Name c{1, Section{Triplet(1, 2)}, {Section{Triplet(5, 7)}}};
  Name d{1, Section{Triplet(1, 2)}, {}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(NetModel, StatsAccumulateAndReset) {
  Fabric f(2);
  f.postReceive(1, nm(1), TransferKind::Data, [](const Message&) {});
  f.send(0, nm(1), TransferKind::Data, std::vector<std::byte>(4), 1);
  NetStats total = f.totalStats();
  EXPECT_EQ(total.messagesSent, 1u);
  EXPECT_EQ(total.bytesSent, 4u);
  EXPECT_EQ(total.messagesReceived, 1u);
  f.resetStats();
  EXPECT_EQ(f.totalStats().messagesSent, 0u);
  // Clocks are independent of stats resets.
  EXPECT_GT(f.clock(0), 0.0);
}

TEST(NetModel, BarrierCostIsChargedOnce) {
  CostModel m;
  m.barrierCost = 5.0;
  Fabric f(2, m);
  f.advance(0, 2.0);
  runSpmd(2, [&](int pid) { f.barrier(pid); });
  EXPECT_DOUBLE_EQ(f.clock(0), 7.0);
  EXPECT_DOUBLE_EQ(f.clock(1), 7.0);
}

TEST(NetModel, ManyBarriersUnderContention) {
  Fabric f(6);
  runSpmd(6, [&](int pid) {
    for (int i = 0; i < 200; ++i) {
      f.advance(pid, 0.001 * (pid + 1));
      f.barrier(pid);
    }
  });
  // All clocks equal after the last barrier.
  double c0 = f.clock(0);
  for (int p = 1; p < 6; ++p) EXPECT_DOUBLE_EQ(f.clock(p), c0);
  // Deterministic value: each round advances max slice (0.006) + cost.
  EXPECT_NEAR(c0, 200 * (0.006 + f.model().barrierCost), 1e-9);
}

}  // namespace
}  // namespace xdp::net
