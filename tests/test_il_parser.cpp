// The IL+XDP text format: parsing the paper's listings, error reporting,
// print/parse round-trip stability, and executing a parsed program.
#include <gtest/gtest.h>

#include "xdp/apps/programs.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/check.hpp"

namespace xdp::il {
namespace {

// The paper's section 2.2 lowered listing, verbatim modulo declarations.
const char* kPaperListing = R"(
procs 4
array A f64 [1:16] (BLOCK)
array B f64 [1:16] (CYCLIC)
array T f64 [0:3] (BLOCK)

do i = 1, 16
  iown(B[i]) : { B[i] -> }
  iown(A[i]) : {
    T[mypid] <- B[i]
    await(T[mypid])
    A[i] = A[i] + T[mypid]
  }
enddo
)";

TEST(IlParser, ParsesThePaperListing) {
  Program prog = parseProgram(kPaperListing);
  EXPECT_EQ(prog.nprocs, 4);
  ASSERT_EQ(prog.arrays.size(), 3u);
  EXPECT_EQ(prog.arrays[0].name, "A");
  EXPECT_EQ(prog.arrays[1].dist.specs()[0].kind, dist::DistKind::Cyclic);
  EXPECT_EQ(prog.arrays[1].dist.nprocs(), 4);  // defaulted to procs
  ASSERT_EQ(prog.body->kind, StmtKind::Block);
  ASSERT_EQ(prog.body->stmts.size(), 1u);
  const StmtPtr& loop = prog.body->stmts[0];
  EXPECT_EQ(loop->kind, StmtKind::For);
  EXPECT_EQ(loop->name, "i");
  ASSERT_EQ(loop->body->stmts.size(), 2u);
  const StmtPtr& sendG = loop->body->stmts[0];
  EXPECT_EQ(sendG->kind, StmtKind::Guarded);
  EXPECT_EQ(sendG->rule->kind, ExprKind::Iown);
  EXPECT_EQ(sendG->body->stmts[0]->kind, StmtKind::SendData);
  const StmtPtr& compG = loop->body->stmts[1];
  ASSERT_EQ(compG->body->stmts.size(), 3u);
  EXPECT_EQ(compG->body->stmts[0]->kind, StmtKind::RecvData);
  EXPECT_EQ(compG->body->stmts[1]->kind, StmtKind::Await);
  EXPECT_EQ(compG->body->stmts[2]->kind, StmtKind::ElemAssign);
}

TEST(IlParser, ParsedPaperListingExecutesCorrectly) {
  Program prog = parseProgram(kPaperListing);
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  interp::Interpreter in(prog, opts);
  // Seed values by a tiny prelude program would need a fill kernel; here
  // zero-init means A stays zero — assert it runs and traffic flows.
  in.run();
  EXPECT_EQ(in.runtime().fabric().totalStats().messagesSent, 16u);
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
}

TEST(IlParser, OwnershipStatements) {
  Program prog = parseProgram(R"(
procs 2
array A f64 [1:8] (BLOCK) seg (2)
(mypid == 0) : {
  A[1:4] -=> {1}
  A[5:8] =>
}
(mypid == 1) : {
  A[1:4] <=-
  A[5:8] <=
}
)");
  const auto& g0 = prog.body->stmts[0]->body->stmts;
  ASSERT_EQ(g0.size(), 2u);
  EXPECT_EQ(g0[0]->kind, StmtKind::SendOwn);
  EXPECT_TRUE(g0[0]->withValue);
  EXPECT_EQ(g0[0]->dest.kind, DestSpec::Kind::Pids);
  EXPECT_EQ(g0[1]->kind, StmtKind::SendOwn);
  EXPECT_FALSE(g0[1]->withValue);
  const auto& g1 = prog.body->stmts[1]->body->stmts;
  EXPECT_TRUE(g1[0]->withValue);
  EXPECT_FALSE(g1[1]->withValue);
  EXPECT_EQ(prog.arrays[0].segShape.elems[0], 2);
}

TEST(IlParser, SectionFormsAndIntrinsics) {
  Program prog = parseProgram(R"(
procs 4
array A f64 [1:8,1:8] (*,BLOCK)
(nonempty(A[1:8,2:6:2]^[mypart]) && iown(A[1,1]) ||
 mylb(A[1:8,1:8],1) <= myub(A[1:8,1:8],1)) : { compute(1.5) }
)");
  SUCCEED();  // shape assertions via printer below
  std::string text = printStmt(prog, prog.body);
  EXPECT_NE(text.find("nonempty"), std::string::npos);
  EXPECT_NE(text.find("^[mypart]"), std::string::npos);
  EXPECT_NE(text.find("compute(1.5)"), std::string::npos);
}

TEST(IlParser, OwnerDestination) {
  Program prog = parseProgram(R"(
procs 2
array A f64 [1:4] (BLOCK)
array B f64 [1:4] (CYCLIC)
do i = 1, 4
  iown(B[i]) : { B[i] -> {owner(A[i])} }
enddo
)");
  const auto& send =
      prog.body->stmts[0]->body->stmts[0]->body->stmts[0];
  EXPECT_EQ(send->dest.kind, DestSpec::Kind::OwnerOf);
  EXPECT_EQ(send->dest.sym, prog.findSymbol("A"));
}

TEST(IlParser, KernelCallsAndLoopsWithStep) {
  Program prog = parseProgram(R"(
procs 2
array A c128 [1:8,1:8] (*,BLOCK)
do k = 1, 8, 2
  fft1d(A[1:8,k])
enddo
)");
  const StmtPtr& loop = prog.body->stmts[0];
  ASSERT_TRUE(loop->step);
  EXPECT_EQ(loop->step->intVal, 2);
  EXPECT_EQ(loop->body->stmts[0]->kind, StmtKind::Kernel);
  EXPECT_EQ(loop->body->stmts[0]->name, "fft1d");
}

TEST(IlParser, MultiDimDistributionsNeedExplicitProcs) {
  EXPECT_THROW(parseProgram(R"(
procs 4
array A f64 [1:8,1:8] (BLOCK,BLOCK)
)"),
               xdp::Error);
  Program ok = parseProgram(R"(
procs 4
array A f64 [1:8,1:8] (BLOCK:2,BLOCK:2)
)");
  EXPECT_EQ(ok.arrays[0].dist.nprocs(), 4);
}

TEST(IlParser, BlockCyclicSyntax) {
  Program prog = parseProgram(R"(
procs 2
array A f64 [1:16] (CYCLIC(3))
)");
  EXPECT_EQ(prog.arrays[0].dist.specs()[0].kind,
            dist::DistKind::BlockCyclic);
  EXPECT_EQ(prog.arrays[0].dist.specs()[0].blockSize, 3);
}

TEST(IlParser, ErrorsCarryLocations) {
  try {
    parseProgram("procs 2\narray A f64 [1:8] (BLOCK)\nA[1] ??\n");
    FAIL() << "expected a parse error";
  } catch (const xdp::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(parseProgram("procs 2\nB[1] = 0\n"), xdp::Error);  // unknown
  EXPECT_THROW(parseProgram("procs 2\narray A f32 [1:8] (BLOCK)\n"),
               xdp::Error);  // bad type
}

TEST(IlParser, RoundTripStability) {
  // print(parse(print(p))) == print(p) for the lowered vecadd program.
  auto cfg = apps::vecAddMisaligned(16, 4);
  Program p = opt::lowerOwnerComputes(apps::buildVecAdd(cfg));
  PrintOptions po;
  po.parseable = true;
  std::string once = printProgram(p, po);
  Program reparsed = parseProgram(once);
  std::string twice = printProgram(reparsed, po);
  EXPECT_EQ(once, twice);
}

TEST(IlParser, RoundTrippedProgramComputesTheSameResult) {
  auto cfg = apps::vecAddMisaligned(16, 4);
  Program p = opt::commBinding(opt::computeRuleElimination(
      opt::redundantTransferElimination(
          opt::lowerOwnerComputes(apps::buildVecAdd(cfg)))));
  PrintOptions po;
  po.parseable = true;
  Program reparsed = parseProgram(printProgram(p, po));

  auto runIt = [&](const Program& prog) {
    rt::RuntimeOptions opts;
    opts.debugChecks = true;
    interp::Interpreter in(prog, opts);
    apps::registerFillKernel(in, cfg.seed);
    in.run();
    return apps::gatherF64(in.runtime(), prog.findSymbol("A"),
                           sec::Section{sec::Triplet(1, cfg.n)});
  };
  EXPECT_EQ(runIt(p), runIt(reparsed));
}

TEST(IlParser, ParseStmtsAgainstExistingProgram) {
  Program prog = parseProgram(R"(
procs 2
array A f64 [1:8] (BLOCK)
compute(0)
)");
  StmtPtr extra = parseStmts(prog, "iown(A[1]) : { A[1] = 42 }");
  ASSERT_EQ(extra->kind, StmtKind::Block);
  EXPECT_EQ(extra->stmts[0]->kind, StmtKind::Guarded);
}

}  // namespace
}  // namespace xdp::il
