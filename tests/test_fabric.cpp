// Fabric tests: direct and rendezvous delivery, name matching, unexpected
// messages, FCFS multi-receiver matching (paper section 2.7), virtual
// clocks and the barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "xdp/net/fabric.hpp"
#include "xdp/net/spmd.hpp"
#include "xdp/support/check.hpp"

namespace xdp::net {
namespace {

using sec::Index;
using sec::Section;
using sec::Triplet;

Name name(int sym, Index lb, Index ub) {
  return Name{sym, Section{Triplet(lb, ub)}};
}

std::vector<std::byte> bytes(std::initializer_list<int> vs) {
  std::vector<std::byte> out;
  for (int v : vs) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Fabric, DirectSendBeforeReceiveIsQueued) {
  Fabric f(2);
  f.send(0, name(1, 1, 4), TransferKind::Data, bytes({1, 2, 3, 4}), 1);
  EXPECT_EQ(f.undeliveredCount(), 1u);
  std::vector<std::byte> got;
  f.postReceive(1, name(1, 1, 4), TransferKind::Data,
                [&](const Message& m) { got = m.payload; });
  EXPECT_EQ(got, bytes({1, 2, 3, 4}));
  EXPECT_EQ(f.undeliveredCount(), 0u);
}

TEST(Fabric, ReceiveBeforeDirectSendCompletesOnDelivery) {
  Fabric f(2);
  std::vector<std::byte> got;
  f.postReceive(1, name(1, 1, 2), TransferKind::Data,
                [&](const Message& m) { got = m.payload; });
  EXPECT_TRUE(got.empty());
  f.send(0, name(1, 1, 2), TransferKind::Data, bytes({7, 8}), 1);
  EXPECT_EQ(got, bytes({7, 8}));
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
}

TEST(Fabric, NamesMustMatchExactly) {
  Fabric f(2);
  f.send(0, name(1, 1, 4), TransferKind::Data, bytes({1}), 1);
  bool fired = false;
  f.postReceive(1, name(1, 1, 5), TransferKind::Data,
                [&](const Message&) { fired = true; });
  EXPECT_FALSE(fired);  // different section: no match
  f.postReceive(1, name(2, 1, 4), TransferKind::Data,
                [&](const Message&) { fired = true; });
  EXPECT_FALSE(fired);  // different symbol: no match
  EXPECT_EQ(f.undeliveredCount(), 1u);
  EXPECT_EQ(f.pendingReceiveCount(), 2u);
}

TEST(Fabric, KindsMustMatch) {
  Fabric f(2);
  f.send(0, name(1, 1, 4), TransferKind::Ownership, {}, 1);
  bool fired = false;
  f.postReceive(1, name(1, 1, 4), TransferKind::Data,
                [&](const Message&) { fired = true; });
  EXPECT_FALSE(fired);
  f.postReceive(1, name(1, 1, 4), TransferKind::Ownership,
                [&](const Message&) { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(Fabric, RendezvousSendFindsLaterReceiver) {
  Fabric f(4);
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({42}), std::nullopt);
  std::vector<std::byte> got;
  f.postReceive(3, name(1, 1, 1), TransferKind::Data,
                [&](const Message& m) { got = m.payload; });
  EXPECT_EQ(got, bytes({42}));
}

TEST(Fabric, RendezvousReceiverFindsLaterSend) {
  Fabric f(4);
  std::vector<std::byte> got;
  f.postReceive(2, name(1, 1, 1), TransferKind::Data,
                [&](const Message& m) { got = m.payload; });
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({9}), std::nullopt);
  EXPECT_EQ(got, bytes({9}));
}

TEST(Fabric, MultiReceiverFcfs) {
  // Paper section 2.7: several processors post receives for the same name;
  // sends are matched to waiters in FCFS order.
  Fabric f(4);
  std::vector<int> order;
  for (int p : {3, 1, 2})
    f.postReceive(p, name(1, 1, 1), TransferKind::Data,
                  [&order, p](const Message&) { order.push_back(p); });
  for (int i = 0; i < 3; ++i)
    f.send(0, name(1, 1, 1), TransferKind::Data, bytes({i}), std::nullopt);
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

TEST(Fabric, DirectDeliveryCancelsMatcherInterest) {
  Fabric f(3);
  int fires = 0;
  f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                [&](const Message&) { ++fires; });
  // Complete it via the direct route.
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  EXPECT_EQ(fires, 1);
  // A later unspecified send must NOT be routed to the completed receive.
  f.send(2, name(1, 1, 1), TransferKind::Data, bytes({2}), std::nullopt);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(f.undeliveredCount(), 1u);
}

TEST(Fabric, SendToSetBroadcasts) {
  Fabric f(4);
  std::atomic<int> got{0};
  for (int p : {1, 2, 3})
    f.postReceive(p, name(1, 1, 1), TransferKind::Data,
                  [&](const Message&) { got++; });
  f.sendToSet(0, name(1, 1, 1), TransferKind::Data, bytes({5}), {1, 2, 3});
  EXPECT_EQ(got, 3);
  auto s = f.stats(0);
  EXPECT_EQ(s.messagesSent, 3u);
  EXPECT_EQ(s.directSends, 3u);
}

TEST(Fabric, StatsCountBytesAndKinds) {
  Fabric f(2);
  f.postReceive(1, name(1, 1, 4), TransferKind::Data,
                [](const Message&) {});
  f.send(0, name(1, 1, 4), TransferKind::Data, bytes({1, 2, 3, 4}), 1);
  f.postReceive(1, name(2, 1, 1), TransferKind::OwnershipAndValue,
                [](const Message&) {});
  f.send(0, name(2, 1, 1), TransferKind::OwnershipAndValue, bytes({1}),
         std::nullopt);
  auto s0 = f.stats(0);
  EXPECT_EQ(s0.messagesSent, 2u);
  EXPECT_EQ(s0.bytesSent, 5u);
  EXPECT_EQ(s0.directSends, 1u);
  EXPECT_EQ(s0.rendezvousSends, 1u);
  EXPECT_EQ(s0.ownershipTransfers, 1u);
  auto s1 = f.stats(1);
  EXPECT_EQ(s1.messagesReceived, 2u);
  EXPECT_EQ(s1.bytesReceived, 5u);
  auto total = f.totalStats();
  EXPECT_EQ(total.messagesSent, total.messagesReceived);
}

TEST(Fabric, ClocksAdvanceWithSends) {
  CostModel m;
  m.alpha = 1.0;
  m.beta = 0.5;
  m.latency = 10.0;
  Fabric f(2, m);
  f.send(0, name(1, 1, 4), TransferKind::Data, bytes({1, 2, 3, 4}), 1);
  // Sender pays alpha + 4*beta = 3.0.
  EXPECT_DOUBLE_EQ(f.clock(0), 3.0);
  double arrival = -1;
  f.postReceive(1, name(1, 1, 4), TransferKind::Data,
                [&](const Message& msg) { arrival = msg.arrival; });
  EXPECT_DOUBLE_EQ(arrival, 13.0);  // send cost + latency
  EXPECT_DOUBLE_EQ(f.makespan(), 3.0);
  f.syncClock(1, arrival);
  EXPECT_DOUBLE_EQ(f.clock(1), 13.0);
}

TEST(Fabric, RendezvousPaysExtraHop) {
  CostModel m;
  m.alpha = 1.0;
  m.beta = 0.0;
  m.latency = 10.0;
  m.matchHop = 100.0;
  Fabric f(2, m);
  double direct = -1, matched = -1;
  f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                [&](const Message& msg) { direct = msg.arrival; });
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({0}), 1);
  f.postReceive(1, name(2, 1, 1), TransferKind::Data,
                [&](const Message& msg) { matched = msg.arrival; });
  f.send(0, name(2, 1, 1), TransferKind::Data, bytes({0}), std::nullopt);
  EXPECT_GT(matched - direct, 99.0);  // matchHop dominates
}

TEST(Fabric, UnexpectedMessageJudgedOnVirtualClocks) {
  CostModel m;
  m.alpha = 1.0;
  m.beta = 0.0;
  m.latency = 10.0;
  m.unexpectedAlpha = 100.0;
  m.unexpectedBeta = 0.0;
  Fabric f(2, m);
  // Case 1: message physically queued first, but the receiver's clock at
  // post time (0) precedes the arrival (11) => NOT unexpected.
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  double arrival1 = -1;
  f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                [&](const Message& msg) { arrival1 = msg.arrival; });
  EXPECT_DOUBLE_EQ(arrival1, 11.0);  // no penalty
  EXPECT_EQ(f.stats(1).unexpectedMessages, 0u);

  // Case 2: receiver's clock has advanced past the arrival => unexpected:
  // the receiver pays the copy and the data is usable only afterwards.
  f.send(0, name(2, 1, 1), TransferKind::Data, bytes({1}), 1);
  f.advance(1, 500.0);
  const double postClock = f.clock(1);
  double arrival2 = -1;
  f.postReceive(1, name(2, 1, 1), TransferKind::Data,
                [&](const Message& msg) { arrival2 = msg.arrival; });
  EXPECT_EQ(f.stats(1).unexpectedMessages, 1u);
  EXPECT_DOUBLE_EQ(arrival2, postClock + 100.0);
  EXPECT_DOUBLE_EQ(f.clock(1), postClock + 100.0);  // copy burned CPU
}

TEST(Fabric, PrePostedReceiveNeverPaysThePenalty) {
  CostModel m;
  m.unexpectedAlpha = 100.0;
  Fabric f(2, m);
  f.advance(1, 0.0);
  double arrival = -1;
  f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                [&](const Message& msg) { arrival = msg.arrival; });
  f.advance(0, 50.0);  // sender is "later" in virtual time
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  EXPECT_EQ(f.stats(1).unexpectedMessages, 0u);
  EXPECT_GT(arrival, 50.0);  // plain arrival, no penalty added
}

TEST(Fabric, BarrierAlignsClocks) {
  Fabric f(3);
  f.advance(0, 5.0);
  f.advance(1, 1.0);
  runSpmd(3, [&](int pid) { f.barrier(pid); });
  double expect = 5.0 + f.model().barrierCost;
  for (int p = 0; p < 3; ++p) EXPECT_DOUBLE_EQ(f.clock(p), expect);
}

TEST(Fabric, BarrierIsReusable) {
  Fabric f(2);
  runSpmd(2, [&](int pid) {
    for (int i = 0; i < 100; ++i) f.barrier(pid);
  });
  SUCCEED();
}

TEST(Fabric, ConcurrentSendsAndReceivesDontLoseMessages) {
  Fabric f(8);
  std::atomic<int> received{0};
  const int kPer = 50;
  runSpmd(8, [&](int pid) {
    if (pid % 2 == 0) {
      for (int i = 0; i < kPer; ++i)
        f.send(pid, name(pid, i, i), TransferKind::Data, bytes({1}),
               pid + 1);
    } else {
      for (int i = 0; i < kPer; ++i)
        f.postReceive(pid, name(pid - 1, i, i), TransferKind::Data,
                      [&](const Message&) { received++; });
    }
  });
  EXPECT_EQ(received, 4 * kPer);
  EXPECT_EQ(f.undeliveredCount(), 0u);
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
}

// Regression: these used to index eps_[pid] unchecked, so a bad pid was
// silent UB. Every pid-taking operation must reject it loudly instead.
TEST(Fabric, OutOfRangePidThrowsUsageError) {
  Fabric f(2);
  EXPECT_THROW(f.clock(-1), UsageError);
  EXPECT_THROW(f.clock(2), UsageError);
  EXPECT_THROW(f.advance(-1, 1.0), UsageError);
  EXPECT_THROW(f.advance(2, 1.0), UsageError);
  EXPECT_THROW(f.syncClock(-1, 1.0), UsageError);
  EXPECT_THROW(f.syncClock(2, 1.0), UsageError);
  EXPECT_THROW(f.stats(-1), UsageError);
  EXPECT_THROW(f.stats(2), UsageError);
  EXPECT_THROW(f.barrier(-1), UsageError);
  EXPECT_THROW(
      f.send(-1, name(1, 0, 0), TransferKind::Data, bytes({1}), std::nullopt),
      UsageError);
  EXPECT_THROW(f.send(0, name(1, 0, 0), TransferKind::Data, bytes({1}), 2),
               UsageError);
  EXPECT_THROW(
      f.postReceive(2, name(1, 0, 0), TransferKind::Data, [](const Message&) {}),
      UsageError);
  // The fabric must be unharmed: a full exchange still works.
  f.send(0, name(1, 0, 0), TransferKind::Data, bytes({7}), 1);
  int got = -1;
  f.postReceive(1, name(1, 0, 0), TransferKind::Data,
                [&](const Message& m) { got = static_cast<int>(m.payload[0]); });
  EXPECT_EQ(got, 7);
}

TEST(Fabric, ClearMatchStateDropsEverything) {
  Fabric f(2);
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  f.postReceive(0, name(9, 1, 1), TransferKind::Data, [](const Message&) {});
  f.clearMatchState();
  EXPECT_EQ(f.undeliveredCount(), 0u);
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
}

}  // namespace
}  // namespace xdp::net
