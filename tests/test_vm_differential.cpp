// Differential testing of the bytecode VM against the tree-walking
// interpreter (the oracle). Both backends must produce bit-identical
// results (FNV-1a digest over every array's final contents), identical
// logical InterpStats, and identical deterministic NetStats on every
// example program and every pipeline stage.
//
// Deliberately NOT compared:
//   * unexpectedMessages / rendezvousSends — the rendezvous-vs-unexpected
//     split of the same messages depends on the wall-clock race between
//     message arrival and receive posting, and varies run-to-run on a
//     single backend;
//   * guardCacheHits / rangeSplits / guardedItersSaved — non-logical
//     fast-path counters; the VM never range-splits by design.
//   * makespan, for programs that use the FCFS matchmaker (taskfarm) —
//     which worker draws which job depends on real-time arrival order, so
//     the virtual-time critical path is not comparable across two
//     independent runs (the data outcome and traffic counters still are).
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "xdp/apps/programs.hpp"
#include "xdp/il/flat.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/interp/bytecode.hpp"
#include "xdp/interp/interpreter.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/serve/session.hpp"

namespace xdp::interp {
namespace {

using sec::Index;
using sec::Section;
using sec::Triplet;

il::Program loadExample(const std::string& name) {
  std::string path = std::string(XDP_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return il::parseProgram(buf.str());
}

/// FNV-1a over every array's final contents in global Fortran order
/// (canonical w.r.t. how ownership happens to be segmented).
std::uint64_t digestState(rt::Runtime& rt) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::byte* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(std::to_integer<unsigned>(p[i]));
      h *= 1099511628211ULL;
    }
  };
  std::vector<std::byte> buf, seg;
  for (const auto& d : rt.decls()) {
    const std::size_t esz = rt::elemSize(d.type);
    buf.assign(static_cast<std::size_t>(d.global.count()) * esz,
               std::byte{0});
    for (int p = 0; p < rt.nprocs(); ++p) {
      for (const auto& sg : rt.table(p).segments(d.index)) {
        if (sg.status != rt::SegState::Accessible) continue;
        seg.resize(static_cast<std::size_t>(sg.count()) * esz);
        rt.table(p).readElems(d.index, sg.bounds, seg.data());
        std::size_t i = 0;
        sg.bounds.forEach([&](const sec::Point& pt) {
          const std::size_t pos =
              static_cast<std::size_t>(d.global.fortranPos(pt));
          std::memcpy(buf.data() + pos * esz, seg.data() + i * esz, esz);
          ++i;
        });
      }
    }
    mix(buf.data(), buf.size());
  }
  return h;
}

struct RunResult {
  std::uint64_t digest = 0;
  InterpStats stats;  // summed over processors
  std::uint64_t messagesSent = 0, bytesSent = 0, ownershipTransfers = 0;
  double makespan = 0.0;
};

RunResult runWith(const il::Program& prog, Backend be,
                  std::uint64_t seed = 42) {
  // No debug checks: raw (pre-lowering) example programs read unowned
  // elements by design — the owner-computes lowering is what makes them
  // Figure-1 clean. Error-surface parity is covered separately below.
  rt::RuntimeOptions opts;
  InterpOptions io;
  io.backend = be;
  Interpreter in(prog, opts, io);
  apps::registerFillKernel(in, seed);
  apps::registerFftKernels(in);
  in.run();
  RunResult r;
  r.digest = digestState(in.runtime());
  r.stats = in.totalStats();
  auto net = in.runtime().fabric().totalStats();
  r.messagesSent = net.messagesSent;
  r.bytesSent = net.bytesSent;
  r.ownershipTransfers = net.ownershipTransfers;
  r.makespan = in.runtime().fabric().makespan();
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  return r;
}

void expectBackendsAgree(const il::Program& prog, const std::string& what,
                         std::uint64_t seed = 42,
                         bool compareMakespan = true) {
  RunResult t = runWith(prog, Backend::TreeWalk, seed);
  RunResult v = runWith(prog, Backend::Bytecode, seed);
  EXPECT_EQ(t.digest, v.digest) << what << ": result digests differ";
  EXPECT_EQ(t.stats.stmtsExecuted, v.stats.stmtsExecuted) << what;
  EXPECT_EQ(t.stats.loopIterations, v.stats.loopIterations) << what;
  EXPECT_EQ(t.stats.rulesEvaluated, v.stats.rulesEvaluated) << what;
  EXPECT_EQ(t.stats.rulesTrue, v.stats.rulesTrue) << what;
  EXPECT_EQ(t.stats.elemAssigns, v.stats.elemAssigns) << what;
  EXPECT_EQ(t.stats.kernelCalls, v.stats.kernelCalls) << what;
  EXPECT_EQ(t.messagesSent, v.messagesSent) << what;
  EXPECT_EQ(t.bytesSent, v.bytesSent) << what;
  EXPECT_EQ(t.ownershipTransfers, v.ownershipTransfers) << what;
  if (compareMakespan) {
    EXPECT_DOUBLE_EQ(t.makespan, v.makespan) << what;
  }
}

class VmExampleDifferential : public ::testing::TestWithParam<const char*> {};

/// Matchmaker-paired job assignment makes the virtual critical path
/// run-dependent (see file comment).
bool makespanComparable(const std::string& name) {
  return name != "taskfarm.xdp";
}

TEST_P(VmExampleDifferential, RawProgramMatchesOracle) {
  expectBackendsAgree(loadExample(GetParam()), GetParam(), 42,
                      makespanComparable(GetParam()));
}

TEST_P(VmExampleDifferential, PipelinedProgramMatchesOracle) {
  il::Program prog = loadExample(GetParam());
  opt::PassManager pm;
  for (const auto& p : opt::standardPipeline()) pm.add(p.name, p.fn);
  expectBackendsAgree(pm.run(prog), std::string(GetParam()) + " (pipeline)",
                      42, makespanComparable(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Examples, VmExampleDifferential,
                         ::testing::Values("vecadd.xdp", "jacobi.xdp",
                                           "cannon.xdp", "ownership.xdp",
                                           "taskfarm.xdp"));

TEST(VmDifferential, VecAddBuilderStagesMatch) {
  for (bool aligned : {true, false}) {
    auto cfg = aligned ? apps::vecAddAligned(32, 4)
                       : apps::vecAddMisaligned(32, 4);
    il::Program seq = apps::buildVecAdd(cfg);
    expectBackendsAgree(seq, "vecadd seq", cfg.seed);
    il::Program lowered = opt::lowerOwnerComputes(seq);
    expectBackendsAgree(lowered, "vecadd lowered", cfg.seed);
    il::Program vec = opt::messageVectorization(lowered);
    expectBackendsAgree(vec, "vecadd vectorized", cfg.seed);
    expectBackendsAgree(opt::computeRuleElimination(vec), "vecadd cre",
                        cfg.seed);
  }
}

TEST(VmDifferential, Fft3dStagesMatch) {
  apps::Fft3dConfig cfg;
  cfg.n = 8;
  cfg.nprocs = 4;
  il::Program s1 = apps::buildFft3dStage1(cfg);
  expectBackendsAgree(s1, "fft3d stage1", cfg.seed);
  il::Program s2 =
      opt::singleIterationElimination(opt::computeRuleElimination(s1));
  expectBackendsAgree(s2, "fft3d stage2", cfg.seed);
  il::Program s3 = opt::awaitSinking(opt::loopFusion(s2));
  expectBackendsAgree(s3, "fft3d stage3", cfg.seed);
}

TEST(VmDifferential, ErrorSurfacesMatchAcrossBackends) {
  // The VM must raise the exact error the oracle raises — same type,
  // same message — for runtime faults in hot and cold code alike.
  auto mk = [](il::ExprPtr rhs) {
    il::Program prog;
    prog.nprocs = 1;
    Section g{Triplet(1, 4)};
    prog.addArray({"A", rt::ElemType::F64, g,
                   dist::Distribution(g, {dist::DimSpec::block(1)}), {}});
    prog.body = il::block({il::elemAssign(
        0, il::secPoint({il::intConst(1)}), std::move(rhs))});
    return prog;
  };
  auto errOf = [&](const il::Program& prog, Backend be) -> std::string {
    rt::RuntimeOptions opts;
    opts.debugChecks = true;
    InterpOptions io;
    io.backend = be;
    Interpreter in(prog, opts, io);
    try {
      in.run();
    } catch (const xdp::Error& e) {
      return e.what();
    }
    return "";
  };
  // XDP_CHECK prefixes messages with file:line, which legitimately
  // differs between the two engines — parity is on the user-meaningful
  // message, so both sides must contain the same diagnostic text.
  const std::pair<il::Program, const char*> cases[] = {
      {mk(il::bin(il::BinOp::Div, il::intConst(1), il::intConst(0))),
       "division by zero"},
      {mk(il::bin(il::BinOp::Mod, il::intConst(1), il::intConst(0))),
       "modulo by zero"},
      {mk(il::bin(il::BinOp::Mod, il::realConst(1.5), il::intConst(2))),
       "mod requires integer operands"},
      {mk(il::scalar("undefined_scalar")),
       "use of undefined universal scalar: undefined_scalar"},
  };
  for (const auto& [prog, msg] : cases) {
    std::string t = errOf(prog, Backend::TreeWalk);
    std::string v = errOf(prog, Backend::Bytecode);
    EXPECT_NE(t.find(msg), std::string::npos) << "tree: " << t;
    EXPECT_NE(v.find(msg), std::string::npos) << "vm: " << v;
  }
}

TEST(VmDifferential, ServeSessionsMatchAcrossBackends) {
  for (bool pipeline : {false, true}) {
    serve::SessionRequest req;
    req.name = "diff";
    req.program = std::make_shared<il::Program>(loadExample("jacobi.xdp"));
    req.usePipeline = pipeline;
    serve::SessionOptions treeOpts, vmOpts;
    vmOpts.backend = Backend::Bytecode;
    serve::SessionReport t = serve::runSession(req, treeOpts, 1);
    serve::SessionReport v = serve::runSession(req, vmOpts, 2);
    ASSERT_EQ(t.outcome, serve::SessionOutcome::Completed) << t.error;
    ASSERT_EQ(v.outcome, serve::SessionOutcome::Completed) << v.error;
    EXPECT_EQ(t.resultDigest, v.resultDigest);
    EXPECT_EQ(t.stats.stmtsExecuted, v.stats.stmtsExecuted);
    EXPECT_EQ(t.stats.rulesEvaluated, v.stats.rulesEvaluated);
    EXPECT_EQ(t.net.messagesSent, v.net.messagesSent);
  }
}

TEST(VmDifferential, DisassemblerShowsCompiledProgram) {
  il::Program prog = loadExample("vecadd.xdp");
  bc::Module m = bc::compile(il::flat::flatten(prog));
  EXPECT_GT(m.hotStmts, 0u);
  std::string dis = bc::disassemble(m);
  EXPECT_NE(dis.find("ForEnter"), std::string::npos);
  EXPECT_NE(dis.find("hot="), std::string::npos);
  EXPECT_EQ(m.fp.nprocs, prog.nprocs);
}

}  // namespace
}  // namespace xdp::interp
