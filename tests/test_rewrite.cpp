// The pass-infrastructure tree utilities: visitation order, functional
// rewriting with deletion and splicing, expression substitution.
#include <gtest/gtest.h>

#include "xdp/opt/rewrite.hpp"

namespace xdp::opt {
namespace {

using il::ExprKind;
using il::ExprPtr;
using il::StmtKind;
using il::StmtPtr;

StmtPtr sampleTree() {
  // do i = 1, 4 { x = i; (i < 2) : { compute(i) } }
  return il::block({il::forLoop(
      "i", il::intConst(1), il::intConst(4),
      il::block({
          il::scalarAssign("x", il::scalar("i")),
          il::guarded(il::bin(il::BinOp::Lt, il::scalar("i"), il::intConst(2)),
                      il::block({il::computeCost(il::scalar("i"))})),
      }))});
}

TEST(Rewrite, VisitReachesEveryStatement) {
  std::vector<StmtKind> kinds;
  visitStmts(sampleTree(), [&](const StmtPtr& s) { kinds.push_back(s->kind); });
  // Preorder: Block, For, Block, ScalarAssign, Guarded, Block, ComputeCost.
  ASSERT_EQ(kinds.size(), 7u);
  EXPECT_EQ(kinds[0], StmtKind::Block);
  EXPECT_EQ(kinds[1], StmtKind::For);
  EXPECT_EQ(kinds[3], StmtKind::ScalarAssign);
  EXPECT_EQ(kinds[6], StmtKind::ComputeCost);
}

TEST(Rewrite, IdentityRewriteSharesNodes) {
  StmtPtr tree = sampleTree();
  StmtPtr same = rewriteStmts(
      tree, [](const StmtPtr&) -> std::optional<StmtPtr> { return std::nullopt; });
  EXPECT_EQ(tree, same);  // untouched trees are shared, not copied
}

TEST(Rewrite, DeleteStatement) {
  StmtPtr tree = sampleTree();
  StmtPtr out = rewriteStmts(tree, [](const StmtPtr& s) -> std::optional<StmtPtr> {
    if (s->kind == StmtKind::ScalarAssign) return StmtPtr(nullptr);
    return std::nullopt;
  });
  int assigns = 0;
  visitStmts(out, [&](const StmtPtr& s) {
    if (s->kind == StmtKind::ScalarAssign) ++assigns;
  });
  EXPECT_EQ(assigns, 0);
}

TEST(Rewrite, ExpandOneToMany) {
  // Replace the assign by a block of two computes; splicing must flatten
  // it into the parent block.
  StmtPtr tree = sampleTree();
  StmtPtr out = rewriteStmts(tree, [](const StmtPtr& s) -> std::optional<StmtPtr> {
    if (s->kind != StmtKind::ScalarAssign) return std::nullopt;
    return il::block(
        {il::computeCost(il::intConst(1)), il::computeCost(il::intConst(2))});
  });
  const StmtPtr& loopBody = out->stmts[0]->body;
  ASSERT_EQ(loopBody->kind, StmtKind::Block);
  EXPECT_EQ(loopBody->stmts.size(), 3u);  // 2 spliced + guard
  EXPECT_EQ(loopBody->stmts[0]->kind, StmtKind::ComputeCost);
  EXPECT_EQ(loopBody->stmts[1]->kind, StmtKind::ComputeCost);
}

TEST(Rewrite, SubstituteScalarEverywhere) {
  StmtPtr out = substituteScalar(sampleTree(), "i", il::mypid());
  bool anyI = anyExpr(out, [](const ExprPtr& e) {
    return e->kind == ExprKind::ScalarRef && e->name == "i";
  });
  EXPECT_FALSE(anyI);
  bool anyPid = anyExpr(out, [](const ExprPtr& e) {
    return e->kind == ExprKind::MyPid;
  });
  EXPECT_TRUE(anyPid);
  // Loop bounds were constant and remain.
  EXPECT_EQ(out->stmts[0]->lb->intVal, 1);
}

TEST(Rewrite, SubstituteInsideSectionExprs) {
  StmtPtr s = il::block({il::sendData(
      0, il::secLit({il::TripletExpr{il::scalar("i"), il::scalar("i"), {}}}))});
  StmtPtr out = substituteScalar(s, "i", il::intConst(7));
  const auto& sec = out->stmts[0]->lhs;
  EXPECT_EQ(sec->dims[0].lb->kind, ExprKind::IntConst);
  EXPECT_EQ(sec->dims[0].lb->intVal, 7);
}

TEST(Rewrite, RewriteExprRebuildsSpineOnly) {
  ExprPtr e = il::add(il::mul(il::scalar("a"), il::intConst(2)),
                      il::scalar("b"));
  ExprPtr shared = e->lhs;  // a*2
  ExprPtr out = rewriteExpr(e, [](const ExprPtr& x) -> std::optional<ExprPtr> {
    if (x->kind == ExprKind::ScalarRef && x->name == "b")
      return il::intConst(9);
    return std::nullopt;
  });
  EXPECT_NE(out, e);
  EXPECT_EQ(out->lhs, shared);  // untouched subtree is shared
  EXPECT_EQ(out->rhs->intVal, 9);
}

TEST(Rewrite, AnyExprSeesGuardsBoundsAndDests) {
  StmtPtr s = il::block({
      il::forLoop("k", il::scalar("needle"), il::intConst(2), il::block({})),
  });
  EXPECT_TRUE(anyExpr(s, [](const ExprPtr& e) {
    return e->kind == ExprKind::ScalarRef && e->name == "needle";
  }));
  StmtPtr send = il::block({il::sendData(
      0, il::secPoint({il::intConst(1)}),
      il::DestSpec::toPids({il::scalar("needle")}))});
  EXPECT_TRUE(anyExpr(send, [](const ExprPtr& e) {
    return e->kind == ExprKind::ScalarRef && e->name == "needle";
  }));
}

}  // namespace
}  // namespace xdp::opt
