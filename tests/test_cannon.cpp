// Cannon's algorithm on the XDP runtime: both shift plans must reproduce
// the sequential product exactly; the ownership plan must get by without
// auxiliary buffers (paper 2.6's storage-reuse claim, quantified).
#include <gtest/gtest.h>

#include "xdp/apps/cannon.hpp"

namespace xdp::apps {
namespace {

void expectMatches(const CannonConfig& cfg, const CannonResult& r) {
  auto expect = cannonReference(cfg);
  ASSERT_EQ(r.c.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_NEAR(r.c[i], expect[i], 1e-12 * static_cast<double>(cfg.n))
        << "element " << i;
}

TEST(Cannon, OwnershipShift2x2) {
  CannonConfig cfg;
  cfg.n = 8;
  cfg.q = 2;
  cfg.plan = ShiftPlan::OwnershipShift;
  expectMatches(cfg, runCannon(cfg));
}

TEST(Cannon, DataShift2x2) {
  CannonConfig cfg;
  cfg.n = 8;
  cfg.q = 2;
  cfg.plan = ShiftPlan::DataShift;
  expectMatches(cfg, runCannon(cfg));
}

TEST(Cannon, BothPlans3x3) {
  for (auto plan : {ShiftPlan::OwnershipShift, ShiftPlan::DataShift}) {
    CannonConfig cfg;
    cfg.n = 12;
    cfg.q = 3;
    cfg.plan = plan;
    expectMatches(cfg, runCannon(cfg));
  }
}

TEST(Cannon, BothPlans4x4) {
  for (auto plan : {ShiftPlan::OwnershipShift, ShiftPlan::DataShift}) {
    CannonConfig cfg;
    cfg.n = 16;
    cfg.q = 4;
    cfg.plan = plan;
    expectMatches(cfg, runCannon(cfg));
  }
}

TEST(Cannon, OwnershipPlanNeedsNoAuxiliaryStorage) {
  CannonConfig cfg;
  cfg.n = 16;
  cfg.q = 2;
  const sec::Index blk = (cfg.n / cfg.q) * (cfg.n / cfg.q);
  cfg.plan = ShiftPlan::OwnershipShift;
  auto ro = runCannon(cfg);
  cfg.plan = ShiftPlan::DataShift;
  auto rd = runCannon(cfg);
  // Data plan: A + B + C + two in-buffers = 5 blocks; ownership plan:
  // 3 blocks + at most transient duplication during a shift.
  EXPECT_EQ(rd.peakElemsPerProc, static_cast<std::size_t>(5 * blk));
  EXPECT_LT(ro.peakElemsPerProc, rd.peakElemsPerProc);
  EXPECT_LE(ro.peakElemsPerProc, static_cast<std::size_t>(4 * blk));
  // Same volume moves under both plans.
  EXPECT_EQ(ro.net.bytesSent, rd.net.bytesSent);
}

TEST(Cannon, TrafficScalesWithRounds) {
  CannonConfig cfg;
  cfg.n = 12;
  cfg.q = 3;
  cfg.plan = ShiftPlan::OwnershipShift;
  auto r = runCannon(cfg);
  // Skew: <= 2 blocks per proc; rounds: 2 blocks x (q-1) per proc.
  const std::uint64_t P = 9;
  EXPECT_LE(r.net.messagesSent, P * (2 + 2 * (cfg.q - 1)));
  EXPECT_GT(r.net.messagesSent, 0u);
}

}  // namespace
}  // namespace xdp::apps
